//! # The engine facade: one Scenario/Backend/Observer API for every solver
//!
//! The paper's central design point is that the DL field solver is a
//! *drop-in replacement* inside an otherwise unchanged PIC cycle. This
//! module makes that a first-class API instead of a per-crate convention:
//!
//! * [`ScenarioSpec`] — a declarative, dimension-tagged, JSON-serializable
//!   description of the physics (domain, species, loading, scale, dt,
//!   steps, tracked modes) with validation. The [`registry`] ships the
//!   classic experiments pre-configured (`two_stream`, `two_stream_2d`,
//!   `landau_damping`, `cold_beam`, `bump_on_tail`, `thermal_noise`).
//! * [`Backend`] — which solver runs it: `Traditional1D`, `Dl1D`,
//!   `Traditional2D`, `Dl2D`, `Vlasov` or `Ddecomp`. Any compatible
//!   pairing is one enum value away.
//! * [`Observer`] + [`RunSummary`]/[`EnergyHistory`] — one diagnostics
//!   shape for all backends, adapting `pic::History`, `pic2d::History2D`
//!   and the Vlasov/distributed diagnostics, directly consumable by
//!   [`crate::analytics`].
//! * [`Session`] — the incremental primitive underneath
//!   [`Engine::run`]: [`Engine::start`] hands back a steppable run that
//!   can stop early ([`Session::run_until`]), checkpoint to JSON and
//!   resume ([`Session::checkpoint`] / [`Engine::resume`]), or advance in
//!   lockstep with other backends ([`compare::lockstep`]).
//!
//! ```no_run
//! use dlpic_repro::engine::{self, Backend};
//! use dlpic_repro::core::Scale;
//!
//! // The paper's validation run on the traditional method…
//! let trad = engine::run_scenario("two_stream", Scale::Scaled, Backend::Traditional1D)?;
//! // …and on the DL method: change one value.
//! let dl = engine::run_scenario("two_stream", Scale::Scaled, Backend::Dl1D)?;
//! println!("ΔE: {:.2}% vs {:.2}%", trad.energy_variation() * 100.0,
//!          dl.energy_variation() * 100.0);
//!
//! // Incrementally: step, watch, stop early, summarize.
//! let spec = engine::scenario("two_stream", Scale::Scaled)?;
//! let mut session = engine::start(&spec, Backend::Traditional1D)?;
//! session.run_until(|sample| sample.field > 0.5 * sample.kinetic);
//! let summary = session.finish();
//! # let _ = summary;
//! # Ok::<(), dlpic_repro::engine::EngineError>(())
//! ```
//!
//! The old per-crate entry points (`pic::PicConfig`, `pic2d::Pic2DConfig`,
//! `vlasov::VlasovConfig`, `ddecomp::DistConfig`) remain available but are
//! implementation detail; new code should target this module. See the
//! README for a migration table.

pub mod backend;
pub mod compare;
pub mod dl;
pub mod ensemble;
pub mod error;
pub mod fault;
pub mod health;
pub mod json;
pub mod observer;
pub mod registry;
pub mod resources;
pub mod runner;
pub mod session;
pub mod spec;

pub use backend::{compatible_backends, Backend};
pub use compare::{lockstep, ComparisonReport, LockstepDiff};
pub use dl::{shared_registry, Dl2DModel, ModelRegistry, RegistryStats, SharedModelRegistry};
pub use ensemble::{Ensemble, SweepSpec, WaveBatch};
pub use error::EngineError;
pub use fault::{FaultKind, FaultPlan, FaultRule};
pub use health::{RunHealth, SessionFault};
pub use observer::{EnergyHistory, Observer, PhaseSpace, ProgressPrinter, RunSummary, Sample};
pub use registry::{
    all_scenarios, apply_sweep_param, names, scenario, sweep_params, sweepable_params, SweepParam,
    SCENARIO_NAMES,
};
pub use resources::{estimate_session, weight_fingerprint, ResourceEstimate};
pub use runner::{run, run_scenario, start, Engine, Numerics1D, WeightProfiler};
pub use session::{BackendSession, Checkpoint, Session};
pub use spec::{Dim, DomainSpec, LoadingSpec, ScenarioSpec, SpeciesSpec};

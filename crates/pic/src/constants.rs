//! The paper's standard configuration (§III).
//!
//! > "We also fix the box size (L) equal to 2π/3.06. This size is chosen to
//! > accommodate the most (un)stable mode for two beams drifting at average
//! > velocity v0 = ±0.2. We also fix the number of cells in the PIC
//! > simulation to 64, the number of electrons to 1,000 per cell and the
//! > simulation time step to 0.2."

/// Fundamental wavenumber of the paper's periodic box: `k₁ = 3.06`, which
/// puts mode 1 at `k·v0 = 0.612 ≈ √(3/8)` — the fastest-growing two-stream
/// wavenumber — when `v0 = 0.2`.
pub const PAPER_K1: f64 = 3.06;

/// Number of grid cells in the paper's PIC configuration.
pub const PAPER_NCELLS: usize = 64;

/// Electrons per cell in the paper's PIC configuration.
pub const PAPER_PARTICLES_PER_CELL: usize = 1000;

/// Simulation time step.
pub const PAPER_DT: f64 = 0.2;

/// Number of steps per run: 200 steps × Δt 0.2 = t_end 40, "after 200 time
/// steps the two-stream instability is fully developed" (paper §IV.A.1).
pub const PAPER_NSTEPS: usize = 200;

/// Beam speed of the validation run (paper §V, Figs. 4–5).
pub const PAPER_VALIDATION_V0: f64 = 0.2;

/// Thermal speed of the validation run (paper §V, Figs. 4–5).
pub const PAPER_VALIDATION_VTH: f64 = 0.025;

/// Beam speed of the cold-beam stress test (paper §V, Fig. 6).
pub const PAPER_COLD_BEAM_V0: f64 = 0.4;

/// Box length `L = 2π/3.06 ≈ 2.0532`.
pub fn paper_box_length() -> f64 {
    2.0 * std::f64::consts::PI / PAPER_K1
}

/// Theoretical maximum two-stream growth rate `γ = 1/(2√2)` in units of
/// `ω_p` — the slope of the "Linear Theory" line in the paper's Fig. 4.
pub fn gamma_max() -> f64 {
    0.125f64.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_puts_mode_one_at_fastest_growing_wavenumber() {
        let l = paper_box_length();
        let k1 = 2.0 * std::f64::consts::PI / l;
        assert!((k1 - PAPER_K1).abs() < 1e-12);
        // k1 * v0 should be within a hair of sqrt(3/8).
        let kv = k1 * PAPER_VALIDATION_V0;
        assert!((kv - (3.0f64 / 8.0).sqrt()).abs() < 1e-3);
    }

    #[test]
    fn expected_initial_energy_matches_figure_axes() {
        // Total kinetic energy of two cold beams: ½·L·v0² in these units.
        let l = paper_box_length();
        let e_02 = 0.5 * l * 0.2 * 0.2; // Fig. 5 axis starts near 0.041
        let e_04 = 0.5 * l * 0.4 * 0.4; // Fig. 6 axis starts near 0.164
        assert!((e_02 - 0.0411).abs() < 2e-4, "{e_02}");
        assert!((e_04 - 0.1643).abs() < 5e-4, "{e_04}");
    }
}

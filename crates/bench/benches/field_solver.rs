//! Criterion benches of the field-solve stage — the quantitative version
//! of the paper's §VII performance discussion (Poisson linear solve vs
//! network inference).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dlpic_core::field_solver::DlFieldSolver;
use dlpic_core::normalize::NormStats;
use dlpic_core::phase_space::BinningShape;
use dlpic_core::presets::Scale;
use dlpic_pic::grid::Grid1D;
use dlpic_pic::init::TwoStreamInit;
use dlpic_pic::poisson::{FdPoisson, PoissonSolver, SpectralPoisson};
use dlpic_pic::solver::{FieldSolver, PoissonKind, TraditionalSolver};
use std::time::Duration;

fn bench_poisson(c: &mut Criterion) {
    let grid = Grid1D::paper();
    let rho: Vec<f64> = (0..64).map(|j| (j as f64 * 0.3).sin()).collect();
    let mut group = c.benchmark_group("field_solver");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("poisson_fd_thomas_64", |b| {
        let mut solver = FdPoisson::new();
        let mut phi = grid.zeros();
        b.iter(|| solver.solve(&grid, &rho, &mut phi));
    });
    group.bench_function("poisson_spectral_64", |b| {
        let mut solver = SpectralPoisson::new();
        let mut phi = grid.zeros();
        b.iter(|| solver.solve(&grid, &rho, &mut phi));
    });
    group.finish();
}

fn dl_solver(scale: Scale) -> DlFieldSolver {
    let arch = scale.mlp_arch();
    DlFieldSolver::new(
        arch.build(1),
        scale.phase_spec(),
        BinningShape::Ngp,
        NormStats {
            min: 0.0,
            max: 300.0,
        },
        arch.input_kind(),
        "dl-mlp",
    )
}

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    // MLP inference at the reduced and paper widths (the paper's argument:
    // "a series of matrix-vector multiplications").
    for scale in [Scale::Scaled, Scale::Paper] {
        let mut solver = dl_solver(scale);
        let hist = vec![0.1f32; scale.phase_spec().cells()];
        group.bench_function(format!("mlp_{}", scale.name()), |b| {
            b.iter(|| solver.predict_from_histogram(&hist));
        });
    }
    // CNN inference at scaled size.
    let arch = Scale::Scaled.cnn_arch();
    let spec = Scale::Scaled.phase_spec();
    let mut cnn = DlFieldSolver::new(
        arch.build(2),
        spec,
        BinningShape::Ngp,
        NormStats {
            min: 0.0,
            max: 300.0,
        },
        arch.input_kind(),
        "dl-cnn",
    );
    let hist = vec![0.1f32; spec.cells()];
    group.bench_function("cnn_scaled", |b| {
        b.iter(|| cnn.predict_from_histogram(&hist));
    });
    group.finish();
}

fn bench_full_solve(c: &mut Criterion) {
    let grid = Grid1D::paper();
    let particles = TwoStreamInit::random(0.2, 0.025, 64_000, 5).build(&grid);
    let mut group = c.benchmark_group("full_solve_64k");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("traditional", |b| {
        let mut solver = TraditionalSolver::new(
            dlpic_pic::shape::Shape::Cic,
            PoissonKind::FiniteDifference,
            1.0,
        );
        let mut e = grid.zeros();
        b.iter(|| solver.solve(&particles, &grid, &mut e));
    });
    group.bench_function("dl_scaled", |b| {
        b.iter_batched(
            || dl_solver(Scale::Scaled),
            |mut solver| {
                let mut e = grid.zeros();
                solver.solve(&particles, &grid, &mut e);
            },
            BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_poisson, bench_inference, bench_full_solve);
criterion_main!(benches);

//! Per-session resource estimation: how much memory a
//! [`Session`](super::Session) for a given spec × backend will hold
//! while it runs.
//!
//! The estimate is the admission currency of the serving tier
//! (`dlpic-serve --memory-budget`) and of capacity planning for
//! [`Ensemble`](super::Ensemble) fleets: a paper-scale DL session owns
//! ~25 MB of MLP weights alone, so a thousand-session fleet is a
//! ~25 GB commitment that should be rejected up front, not discovered
//! by the OOM killer. Numbers are derived from the same backend × scale
//! tables the builders use ([`Scale::mlp_arch`], [`hidden_2d`],
//! the Vlasov velocity-grid table), so the estimate tracks the real
//! allocation shape — it is a budget figure, accurate to the dominant
//! buffers, not a byte-exact audit of every allocation.

use super::backend::Backend;
use super::dl::hidden_2d;
use super::spec::{Dim, ScenarioSpec};
use crate::core::builder::ArchSpec;
use crate::core::presets::Scale;

/// Bytes per f64 diagnostic/field/particle lane.
const F64: usize = 8;
/// Bytes per f32 network parameter.
const F32: usize = 4;

/// The estimated memory footprint of one session, split by what owns it.
/// All figures are bytes; [`Self::total`] is what admission budgets
/// against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceEstimate {
    /// Particle phase-space arrays (positions, velocities, per-particle
    /// field scratch).
    pub particle_bytes: usize,
    /// Grid-resident buffers: density, potential, fields and solver
    /// scratch — for Vlasov, the full phase-space distribution.
    pub grid_bytes: usize,
    /// DL model weights plus inference workspace (zero for traditional
    /// backends).
    pub model_bytes: usize,
    /// The recorded diagnostics history at full length (`n_steps + 1`
    /// rows of energies, momentum and tracked-mode amplitudes).
    pub history_bytes: usize,
    /// The slice of `model_bytes` that is the weight allocation itself
    /// (one f32 parameter copy). Sessions minted from one `Arc`-shared
    /// frozen model all read the same allocation, so cohort-aware
    /// accounting charges this slice **once per distinct model** and
    /// `total() − shared_weight_bytes` per member; the per-session
    /// inference workspace stays private either way.
    pub shared_weight_bytes: usize,
}

impl ResourceEstimate {
    /// Total estimated bytes for a session that owns everything —
    /// the solo admission figure.
    pub fn total(&self) -> usize {
        self.particle_bytes + self.grid_bytes + self.model_bytes + self.history_bytes
    }

    /// Bytes a session costs when its model weights are already resident
    /// (a fleet member joining an existing cohort).
    pub fn without_shared_weights(&self) -> usize {
        self.total() - self.shared_weight_bytes
    }
}

/// Parameter count of the DL architecture the engine would build for this
/// spec × backend, or 0 for non-DL backends.
fn model_params(spec: &ScenarioSpec, backend: Backend) -> usize {
    match backend {
        Backend::Dl1D => spec.scale.mlp_arch().param_count(),
        Backend::Dl2D => {
            // Mirrors `core::twod::arch_2d`: flat nodes in, 2 field
            // components per node out.
            let nodes = spec.domain.cells();
            ArchSpec::Mlp {
                input: nodes,
                hidden: hidden_2d(spec.scale),
                output: 2 * nodes,
            }
            .param_count()
        }
        _ => 0,
    }
}

/// Velocity-grid points of the continuum Vlasov solver at each scale
/// (mirrors the session builder's table).
fn vlasov_nv(scale: Scale) -> usize {
    match scale {
        Scale::Smoke => 64,
        Scale::Scaled => 256,
        Scale::Paper => 512,
    }
}

/// Estimates the memory a [`Session`](super::Session) for `spec` on
/// `backend` holds while running. See the module docs for what the
/// figure covers.
pub fn estimate_session(spec: &ScenarioSpec, backend: Backend) -> ResourceEstimate {
    let cells = spec.domain.cells();
    let n_particles = spec.n_particles();

    // Phase-space lanes per particle: position + velocity + gathered
    // field per axis.
    let particle_lanes = match spec.dim() {
        Dim::OneD => 3,
        Dim::TwoD => 6,
    };
    let particle_bytes = match backend {
        // The continuum solver carries no particles.
        Backend::Vlasov => 0,
        _ => n_particles * particle_lanes * F64,
    };

    // Grid buffers: density, potential, field components and solver
    // scratch — about eight cell-sized f64 arrays on the PIC paths.
    let grid_arrays = 8;
    let grid_bytes = match backend {
        // Distribution f(x, v) plus the semi-Lagrangian advection
        // scratch, on top of the field arrays.
        Backend::Vlasov => cells * vlasov_nv(spec.scale) * F64 * 2 + cells * grid_arrays * F64,
        // Every rank owns halo-padded slab copies of the field arrays.
        Backend::Ddecomp { n_ranks } => cells * grid_arrays * F64 * (n_ranks + 1),
        _ => cells * grid_arrays * F64,
    };

    // DL weights (f32) doubled for the inference workspace, plus the
    // phase-space deposit image the 1-D surrogate consumes. One of the
    // two weight-sized slices is the parameter allocation itself — the
    // slice an `Arc`-shared frozen model amortizes across a cohort.
    let shared_weight_bytes = model_params(spec, backend) * F32;
    let model_bytes = match backend {
        Backend::Dl1D => {
            let phase = spec.scale.phase_spec();
            shared_weight_bytes * 2 + phase.nx * phase.nv * F64
        }
        Backend::Dl2D => shared_weight_bytes * 2,
        _ => 0,
    };

    // One diagnostics row per step plus the initial sample: time,
    // kinetic, field, momentum and each tracked mode.
    let history_bytes = (spec.n_steps + 1) * (4 + spec.tracked_modes.len()) * F64;

    ResourceEstimate {
        particle_bytes,
        grid_bytes,
        model_bytes,
        history_bytes,
        shared_weight_bytes,
    }
}

/// The weight-sharing fingerprint of a spec × backend pairing under the
/// default engine configuration: two admitted runs with equal
/// fingerprints read one weight allocation, so a budget should charge
/// [`ResourceEstimate::shared_weight_bytes`] once per distinct
/// fingerprint. `None` for model-free backends (nothing shareable).
/// Engines with an explicit model or a registry refine this via
/// `Engine::weight_profile`; this free function covers the untrained
/// fallback, whose weights are keyed by dimension and scale alone.
pub fn weight_fingerprint(spec: &ScenarioSpec, backend: Backend) -> Option<String> {
    match backend {
        Backend::Dl1D => Some(format!("dl1d|untrained|{:?}", spec.scale)),
        Backend::Dl2D => Some(format!(
            "dl2d|untrained|{:?}|{}",
            spec.scale,
            spec.domain.cells()
        )),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::registry;

    #[test]
    fn paper_dl_session_is_about_25_mb_of_weights() {
        let spec = registry::scenario("two_stream", Scale::Paper).unwrap();
        let est = estimate_session(&spec, Backend::Dl1D);
        // 4096→1024→1024→1024→64 MLP ≈ 6.36 M params ≈ 25.4 MB of f32,
        // doubled for workspace.
        assert!(
            est.model_bytes > 40 << 20 && est.model_bytes < 70 << 20,
            "paper DL model estimate {} outside the expected band",
            est.model_bytes
        );
        assert!(est.total() > est.model_bytes);
    }

    #[test]
    fn shared_weight_slice_is_one_parameter_copy() {
        let spec = registry::scenario("two_stream", Scale::Smoke).unwrap();
        let est = estimate_session(&spec, Backend::Dl1D);
        assert_eq!(
            est.shared_weight_bytes,
            spec.scale.mlp_arch().param_count() * 4
        );
        assert_eq!(
            est.without_shared_weights() + est.shared_weight_bytes,
            est.total()
        );
        // Fingerprints exist exactly where there are weights to share.
        assert!(weight_fingerprint(&spec, Backend::Dl1D).is_some());
        assert!(weight_fingerprint(&spec, Backend::Traditional1D).is_none());
        assert_eq!(
            estimate_session(&spec, Backend::Traditional1D).shared_weight_bytes,
            0
        );
    }

    #[test]
    fn traditional_backends_carry_no_model() {
        let spec = registry::scenario("two_stream", Scale::Smoke).unwrap();
        let est = estimate_session(&spec, Backend::Traditional1D);
        assert_eq!(est.model_bytes, 0);
        assert_eq!(
            est.particle_bytes,
            spec.n_particles() * 3 * 8,
            "1-D particles are three f64 lanes"
        );
    }

    #[test]
    fn estimate_scales_with_the_knobs_that_matter() {
        let spec = registry::scenario("two_stream", Scale::Smoke).unwrap();
        let base = estimate_session(&spec, Backend::Dl1D);

        let mut heavier = spec.clone();
        heavier.ppc *= 4;
        assert!(
            estimate_session(&heavier, Backend::Dl1D).particle_bytes > base.particle_bytes,
            "more particles must cost more"
        );

        let mut longer = spec.clone();
        longer.n_steps *= 10;
        assert!(
            estimate_session(&longer, Backend::Dl1D).history_bytes > base.history_bytes,
            "longer runs record more history"
        );

        // Vlasov trades particles for a phase-space grid.
        let vlasov = estimate_session(&spec, Backend::Vlasov);
        assert_eq!(vlasov.particle_bytes, 0);
        assert!(vlasov.grid_bytes > base.grid_bytes);

        // More ranks replicate more grid state.
        let d4 = estimate_session(&spec, Backend::Ddecomp { n_ranks: 4 });
        let d8 = estimate_session(&spec, Backend::Ddecomp { n_ranks: 8 });
        assert!(d8.grid_bytes > d4.grid_bytes);
    }
}

//! 2-D convolution (stride 1, "same" zero padding) via im2col + GEMM.
//!
//! The paper's CNN (§IV.A) stacks two blocks of
//! `[conv, conv, maxpool]` before the fully connected head. Kernel size and
//! channel counts are not stated in the paper; the `dlpic-core` builders
//! use 3×3 kernels (recorded as an inferred choice in DESIGN.md).

use crate::init::Init;
use crate::layer::Layer;
use crate::linalg::{matmul_nn, matmul_nt, matmul_tn};
use crate::tensor::Tensor;

/// A same-padded stride-1 2-D convolution on `[batch, channels, h, w]`
/// tensors. Weights are stored `[out_ch, in_ch, k, k]` row-major.
pub struct Conv2d {
    in_ch: usize,
    out_ch: usize,
    k: usize,
    w: Vec<f32>,
    b: Vec<f32>,
    dw: Vec<f32>,
    db: Vec<f32>,
    cached_input: Option<Tensor>,
    // Scratch buffers reused across calls.
    cols: Vec<f32>,
}

impl Conv2d {
    /// Creates a convolution with an odd kernel size (same padding needs
    /// `k/2` on each side).
    ///
    /// # Panics
    /// Panics for even or zero kernel size.
    pub fn new(in_ch: usize, out_ch: usize, k: usize, init: Init, seed: u64) -> Self {
        assert!(k % 2 == 1 && k > 0, "kernel size must be odd, got {k}");
        assert!(in_ch > 0 && out_ch > 0, "degenerate conv");
        let fan_in = in_ch * k * k;
        let fan_out = out_ch * k * k;
        let mut w = vec![0.0f32; out_ch * in_ch * k * k];
        init.fill(&mut w, fan_in, fan_out, seed);
        Self {
            in_ch,
            out_ch,
            k,
            w,
            b: vec![0.0; out_ch],
            dw: vec![0.0; out_ch * in_ch * k * k],
            db: vec![0.0; out_ch],
            cached_input: None,
            cols: Vec::new(),
        }
    }

    /// Kernel size.
    pub fn kernel(&self) -> usize {
        self.k
    }

    /// Unpacks one sample `[C, H, W]` into the column matrix
    /// `[C·K·K, H·W]` with zero padding.
    fn im2col(&self, sample: &[f32], h: usize, w: usize, cols: &mut [f32]) {
        let k = self.k;
        let pad = k / 2;
        let hw = h * w;
        debug_assert_eq!(cols.len(), self.in_ch * k * k * hw);
        cols.fill(0.0);
        for c in 0..self.in_ch {
            let plane = &sample[c * hw..(c + 1) * hw];
            for ky in 0..k {
                for kx in 0..k {
                    let row = ((c * k + ky) * k + kx) * hw;
                    // Valid input-row window for this kernel offset.
                    for oy in 0..h {
                        let iy = oy as isize + ky as isize - pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let iy = iy as usize;
                        // ix = ox + kx - pad must lie in [0, w).
                        let ox_lo = pad.saturating_sub(kx);
                        let ox_hi = (w + pad).saturating_sub(kx).min(w);
                        if ox_lo >= ox_hi {
                            continue;
                        }
                        let src_lo = ox_lo + kx - pad;
                        let dst = &mut cols[row + oy * w + ox_lo..row + oy * w + ox_hi];
                        let src = &plane[iy * w + src_lo..iy * w + src_lo + (ox_hi - ox_lo)];
                        dst.copy_from_slice(src);
                    }
                }
            }
        }
    }

    /// Scatter-adds a column-matrix gradient back to a `[C, H, W]` sample
    /// gradient (the adjoint of [`Self::im2col`]).
    fn col2im_add(&self, dcols: &[f32], h: usize, w: usize, dsample: &mut [f32]) {
        let k = self.k;
        let pad = k / 2;
        let hw = h * w;
        for c in 0..self.in_ch {
            let plane = &mut dsample[c * hw..(c + 1) * hw];
            for ky in 0..k {
                for kx in 0..k {
                    let row = ((c * k + ky) * k + kx) * hw;
                    for oy in 0..h {
                        let iy = oy as isize + ky as isize - pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let iy = iy as usize;
                        let ox_lo = pad.saturating_sub(kx);
                        let ox_hi = (w + pad).saturating_sub(kx).min(w);
                        if ox_lo >= ox_hi {
                            continue;
                        }
                        let src_lo = ox_lo + kx - pad;
                        for (o, ox) in (ox_lo..ox_hi).enumerate() {
                            plane[iy * w + src_lo + o] += dcols[row + oy * w + ox];
                        }
                    }
                }
            }
        }
    }

    fn dims(&self, input: &Tensor) -> (usize, usize, usize) {
        let shape = input.shape();
        assert_eq!(
            shape.len(),
            4,
            "conv2d expects [batch, ch, h, w], got {shape:?}"
        );
        assert_eq!(
            shape[1], self.in_ch,
            "conv2d expected {} channels, got {}",
            self.in_ch, shape[1]
        );
        (shape[0], shape[2], shape[3])
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, training: bool) -> Tensor {
        let (batch, h, w) = self.dims(input);
        let hw = h * w;
        let ckk = self.in_ch * self.k * self.k;
        let mut out = Tensor::zeros(&[batch, self.out_ch, h, w]);
        self.cols.resize(ckk * hw, 0.0);
        let mut cols = std::mem::take(&mut self.cols);
        for bi in 0..batch {
            let sample = input.row(bi);
            self.im2col(sample, h, w, &mut cols);
            let out_b = &mut out.data_mut()[bi * self.out_ch * hw..(bi + 1) * self.out_ch * hw];
            matmul_nn(&self.w, &cols, out_b, self.out_ch, ckk, hw);
            for (o, bias) in self.b.iter().enumerate() {
                for v in &mut out_b[o * hw..(o + 1) * hw] {
                    *v += bias;
                }
            }
        }
        self.cols = cols;
        if training {
            self.cached_input = Some(input.clone());
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .take()
            .expect("backward before forward(training)");
        let (batch, h, w) = self.dims(&input);
        let hw = h * w;
        let ckk = self.in_ch * self.k * self.k;
        assert_eq!(
            grad_out.shape(),
            &[batch, self.out_ch, h, w],
            "grad_out shape"
        );

        let mut grad_in = Tensor::zeros(input.shape());
        self.cols.resize(ckk * hw, 0.0);
        let mut cols = std::mem::take(&mut self.cols);
        let mut dw_step = vec![0.0f32; self.w.len()];
        let mut dcols = vec![0.0f32; ckk * hw];

        for bi in 0..batch {
            let sample = input.row(bi);
            let dy = &grad_out.data()[bi * self.out_ch * hw..(bi + 1) * self.out_ch * hw];

            // dW += dY·colsᵀ.
            self.im2col(sample, h, w, &mut cols);
            matmul_nt(dy, &cols, &mut dw_step, self.out_ch, hw, ckk);
            for (d, s) in self.dw.iter_mut().zip(&dw_step) {
                *d += s;
            }
            // db += per-channel sums of dY.
            for o in 0..self.out_ch {
                self.db[o] += dy[o * hw..(o + 1) * hw].iter().sum::<f32>();
            }
            // dcols = Wᵀ·dY, then scatter back to the input gradient.
            matmul_tn(&self.w, dy, &mut dcols, ckk, self.out_ch, hw);
            let dsample = &mut grad_in.data_mut()[bi * self.in_ch * hw..(bi + 1) * self.in_ch * hw];
            self.col2im_add(&dcols, h, w, dsample);
        }
        self.cols = cols;
        self.cached_input = Some(input);
        grad_in
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(&mut self.w, &mut self.dw);
        f(&mut self.b, &mut self.db);
    }

    fn zero_grads(&mut self) {
        self.dw.fill(0.0);
        self.db.fill(0.0);
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference direct convolution for the oracle tests.
    // The eight arguments are the convolution geometry; a struct would
    // only rename the same numbers in the hot loop.
    #[allow(clippy::too_many_arguments)]
    fn conv_naive(
        input: &[f32],
        w: &[f32],
        b: &[f32],
        in_ch: usize,
        out_ch: usize,
        k: usize,
        h: usize,
        wid: usize,
    ) -> Vec<f32> {
        let pad = k as isize / 2;
        let hw = h * wid;
        let mut out = vec![0.0f32; out_ch * hw];
        for o in 0..out_ch {
            for oy in 0..h {
                for ox in 0..wid {
                    let mut acc = b[o];
                    for c in 0..in_ch {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = oy as isize + ky as isize - pad;
                                let ix = ox as isize + kx as isize - pad;
                                if iy < 0 || ix < 0 || iy >= h as isize || ix >= wid as isize {
                                    continue;
                                }
                                acc += input[c * hw + iy as usize * wid + ix as usize]
                                    * w[((o * in_ch + c) * k + ky) * k + kx];
                            }
                        }
                    }
                    out[o * hw + oy * wid + ox] = acc;
                }
            }
        }
        out
    }

    fn pseudo(len: usize, seed: u64) -> Vec<f32> {
        (0..len)
            .map(|i| (((i as u64 + seed) * 2654435761 % 997) as f32 / 498.5) - 1.0)
            .collect()
    }

    #[test]
    fn identity_kernel_passes_input_through() {
        let mut conv = Conv2d::new(1, 1, 3, Init::Zeros, 0);
        conv.w[4] = 1.0; // center tap
        let x = Tensor::new(pseudo(16, 3), &[1, 1, 4, 4]);
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 4, 4]);
        for (a, b) in y.data().iter().zip(x.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn shift_kernel_moves_image() {
        // Kernel with the tap at (ky=1, kx=0): output(y,x) = input(y, x-1).
        let mut conv = Conv2d::new(1, 1, 3, Init::Zeros, 0);
        conv.w[3] = 1.0; // row 1, col 0 → ix = ox - 1
        let x = Tensor::new((0..16).map(|i| i as f32).collect(), &[1, 1, 4, 4]);
        let y = conv.forward(&x, false);
        // Column 0 sees padding (zero); column j>0 sees input col j-1.
        for row in 0..4 {
            assert_eq!(y.data()[row * 4], 0.0);
            for col in 1..4 {
                assert_eq!(y.data()[row * 4 + col], x.data()[row * 4 + col - 1]);
            }
        }
    }

    #[test]
    fn forward_matches_naive_conv_multichannel() {
        let (in_ch, out_ch, k, h, w) = (3, 4, 3, 6, 5);
        let mut conv = Conv2d::new(in_ch, out_ch, k, Init::Zeros, 0);
        conv.w.copy_from_slice(&pseudo(out_ch * in_ch * k * k, 11));
        conv.b.copy_from_slice(&pseudo(out_ch, 13));
        let x_data = pseudo(in_ch * h * w, 17);
        let x = Tensor::new(x_data.clone(), &[1, in_ch, h, w]);
        let y = conv.forward(&x, false);
        let oracle = conv_naive(&x_data, &conv.w, &conv.b, in_ch, out_ch, k, h, w);
        for (i, (a, b)) in y.data().iter().zip(&oracle).enumerate() {
            assert!((a - b).abs() < 1e-4, "elem {i}: {a} vs {b}");
        }
    }

    #[test]
    fn batch_samples_are_independent() {
        let mut conv = Conv2d::new(1, 2, 3, Init::HeNormal, 5);
        let a = pseudo(9, 1);
        let b = pseudo(9, 2);
        let both = Tensor::new([a.clone(), b.clone()].concat(), &[2, 1, 3, 3]);
        let ya = conv.forward(&Tensor::new(a, &[1, 1, 3, 3]), false);
        let yb = conv.forward(&Tensor::new(b, &[1, 1, 3, 3]), false);
        let yab = conv.forward(&both, false);
        for (i, v) in ya.data().iter().enumerate() {
            assert!((yab.data()[i] - v).abs() < 1e-6);
        }
        for (i, v) in yb.data().iter().enumerate() {
            assert!((yab.data()[ya.len() + i] - v).abs() < 1e-6);
        }
    }

    #[test]
    fn backward_bias_gradient_is_output_sum() {
        let mut conv = Conv2d::new(1, 2, 3, Init::HeNormal, 7);
        let x = Tensor::new(pseudo(2 * 16, 3), &[2, 1, 4, 4]);
        let _ = conv.forward(&x, true);
        let gy = Tensor::full(&[2, 2, 4, 4], 1.0);
        let _ = conv.backward(&gy);
        // Each bias sees 2 samples × 16 pixels of unit gradient.
        assert!((conv.db[0] - 32.0).abs() < 1e-4);
        assert!((conv.db[1] - 32.0).abs() < 1e-4);
    }

    #[test]
    fn five_by_five_kernel_matches_naive_conv() {
        let (in_ch, out_ch, k, h, w) = (2, 3, 5, 8, 6);
        let mut conv = Conv2d::new(in_ch, out_ch, k, Init::Zeros, 0);
        conv.w.copy_from_slice(&pseudo(out_ch * in_ch * k * k, 23));
        conv.b.copy_from_slice(&pseudo(out_ch, 29));
        let x_data = pseudo(in_ch * h * w, 31);
        let x = Tensor::new(x_data.clone(), &[1, in_ch, h, w]);
        let y = conv.forward(&x, false);
        let oracle = conv_naive(&x_data, &conv.w, &conv.b, in_ch, out_ch, k, h, w);
        for (i, (a, b)) in y.data().iter().zip(&oracle).enumerate() {
            assert!((a - b).abs() < 1e-4, "elem {i}: {a} vs {b}");
        }
    }

    #[test]
    fn backward_weight_gradient_matches_finite_difference_probe() {
        // Poke one weight, verify dL/dw against the accumulated gradient
        // for a quadratic loss L = ½Σy².
        let mut conv = Conv2d::new(1, 1, 3, Init::HeNormal, 41);
        let x = Tensor::new(pseudo(2 * 25, 43), &[2, 1, 5, 5]);
        let y = conv.forward(&x, true);
        let gy = y.clone(); // dL/dy = y for L = ½Σy²
        let _ = conv.backward(&gy);
        let analytic = conv.dw[4];

        let loss = |c: &mut Conv2d| -> f64 {
            let out = c.forward(&x, false);
            out.data()
                .iter()
                .map(|&v| 0.5 * (v as f64) * (v as f64))
                .sum()
        };
        let eps = 1e-3;
        conv.w[4] += eps;
        let plus = loss(&mut conv);
        conv.w[4] -= 2.0 * eps;
        let minus = loss(&mut conv);
        conv.w[4] += eps;
        let numeric = ((plus - minus) / (2.0 * eps as f64)) as f32;
        assert!(
            (analytic - numeric).abs() / numeric.abs().max(1e-3) < 5e-2,
            "dW: analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_kernel_rejected() {
        let _ = Conv2d::new(1, 1, 4, Init::Zeros, 0);
    }
}

//! The gate the CI `static-analysis` job enforces, as a plain test:
//! the workspace itself must be clean under the repo-default config and
//! the committed baseline.

use std::fs;
use std::path::PathBuf;

use dlpic_analyze::{analyze_tree, Baseline, Config};

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_is_clean() {
    let root = workspace_root();
    let config = Config::repo_default();
    let baseline_text = fs::read_to_string(root.join("analyze-baseline.txt")).unwrap_or_default();
    let baseline = Baseline::parse(&baseline_text).expect("committed baseline parses");

    let report = analyze_tree(&root, &config, &baseline).expect("workspace scan");
    assert!(
        report.files_scanned > 100,
        "scan looks truncated: only {} files (wrong root?)",
        report.files_scanned
    );
    assert_eq!(
        report.deny_count(),
        0,
        "workspace has deny findings:\n{}",
        report.to_text()
    );
}

#[test]
fn baseline_carries_no_safety_or_phase_debt() {
    // The ISSUE's acceptance bar: unsafe-hygiene and phase-constant
    // violations may never be baselined away — they must be fixed or
    // justified inline. Today the committed baseline is empty outright;
    // this test keeps anyone from quietly parking those two rules in it.
    let text = fs::read_to_string(workspace_root().join("analyze-baseline.txt"))
        .expect("analyze-baseline.txt is committed");
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let rule = line.split('\t').next().unwrap_or("");
        assert!(
            rule != "safety-comment-required" && rule != "phase-constants-only",
            "`{rule}` findings must not be baselined: {line}"
        );
    }
}

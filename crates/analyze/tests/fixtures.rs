//! The fixture corpus: one positive (`bad.rs`) and one negative
//! (`good.rs`) case per shipped rule, plus the malformed-suppression
//! pair. Each `bad.rs` must fire its rule the expected number of times
//! and each `good.rs` must stay silent — both under the single rule and
//! under the full rule set, so fixtures also prove the rules do not
//! interfere with each other.

use std::fs;
use std::path::PathBuf;

use dlpic_analyze::config::{Config, Level, RULE_NAMES};
use dlpic_analyze::engine::analyze_source;
use dlpic_analyze::report::{Baseline, Report};
use dlpic_analyze::source::SourceFile;

/// Loads `tests/fixtures/<dir>/<which>.rs` as a parsed [`SourceFile`].
fn fixture(dir: &str, which: &str) -> SourceFile {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(dir)
        .join(format!("{which}.rs"));
    let source =
        fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    SourceFile::parse(&format!("fixtures/{dir}/{which}.rs"), &source)
}

/// Analyzes `file` with only `rule` active (every other rule at allow);
/// pass `None` to run the full rule set.
fn analyze(file: &SourceFile, only: Option<&str>) -> Report {
    let mut cfg = Config::all_paths();
    if let Some(rule) = only {
        for (name, rc) in cfg.rules.iter_mut() {
            rc.level = if name == rule {
                Level::Deny
            } else {
                Level::Allow
            };
        }
    }
    let mut report = Report::default();
    analyze_source(file, &cfg, &Baseline::default(), &mut report);
    report
}

/// Expected finding count of each rule's `bad.rs`.
fn expected_hits(rule: &str) -> usize {
    match rule {
        "no-hashmap-iter-in-state" => 2, // the `use` and the field type
        "no-wallclock-in-engine" => 2,   // Instant::now + SystemTime::now
        "no-panic-in-request-path" => 4, // unwrap, panic!, expect, unreachable!
        "safety-comment-required" => 2,  // unsafe fn + unsafe block
        "no-alloc-in-hot-loop" => 4,     // with_capacity, format!, to_vec, Box::new
        "phase-constants-only" => 2,     // string literal + computed tag
        "no-weight-clone" => 3,          // bundle, self.model_1d, net
        other => panic!("no fixture expectation for `{other}`"),
    }
}

#[test]
fn every_rule_fires_on_its_bad_fixture() {
    for rule in RULE_NAMES {
        let report = analyze(&fixture(rule, "bad"), Some(rule));
        assert_eq!(
            report.findings.len(),
            expected_hits(rule),
            "{rule}/bad.rs findings:\n{}",
            report.to_text()
        );
        assert!(
            report.findings.iter().all(|f| f.rule == rule),
            "{rule}/bad.rs produced foreign findings:\n{}",
            report.to_text()
        );
        assert_eq!(report.deny_count(), expected_hits(rule));
    }
}

#[test]
fn every_good_fixture_is_silent_under_its_rule() {
    for rule in RULE_NAMES {
        let report = analyze(&fixture(rule, "good"), Some(rule));
        assert!(
            report.findings.is_empty(),
            "{rule}/good.rs should be clean:\n{}",
            report.to_text()
        );
    }
}

#[test]
fn good_fixtures_survive_the_full_rule_set() {
    // Cross-rule interference check: a negative case for one rule must
    // not trip any *other* rule either.
    for rule in RULE_NAMES {
        let report = analyze(&fixture(rule, "good"), None);
        assert_eq!(
            report.deny_count(),
            0,
            "{rule}/good.rs fails under the full rule set:\n{}",
            report.to_text()
        );
    }
}

#[test]
fn wallclock_good_fixture_is_suppressed_not_unflagged() {
    // The negative wallclock case contains a real `Instant::now()` behind
    // an inline allow — prove the suppression (not rule blindness) is
    // what keeps it clean.
    let report = analyze(&fixture("no-wallclock-in-engine", "good"), None);
    assert_eq!(report.suppressed, 1, "{}", report.to_text());
}

#[test]
fn malformed_suppressions_are_deny_findings() {
    // Even with every rule switched off, a typo'd `analyze:allow` is a
    // deny-level finding — it can never silently suppress nothing.
    let mut cfg = Config::all_paths();
    for rc in cfg.rules.values_mut() {
        rc.level = Level::Allow;
    }
    let mut report = Report::default();
    analyze_source(
        &fixture("malformed-suppression", "bad"),
        &cfg,
        &Baseline::default(),
        &mut report,
    );
    assert_eq!(report.findings.len(), 2, "{}", report.to_text());
    assert!(report
        .findings
        .iter()
        .all(|f| f.rule == "malformed-suppression"));
    assert_eq!(report.deny_count(), 2);

    let good = analyze(&fixture("malformed-suppression", "good"), None);
    assert_eq!(good.deny_count(), 0, "{}", good.to_text());
}

#[test]
fn baseline_covers_bad_fixture_findings() {
    // Round-trip: render a baseline from the hashmap fixture's findings,
    // re-analyze against it, and the same findings stop counting toward
    // --deny while still being reported.
    let file = fixture("no-hashmap-iter-in-state", "bad");
    let first = analyze(&file, Some("no-hashmap-iter-in-state"));
    let baseline = Baseline::parse(&Baseline::render(&first.findings)).expect("round-trip");
    assert_eq!(baseline.len(), first.findings.len());

    let mut cfg = Config::all_paths();
    for (name, rc) in cfg.rules.iter_mut() {
        rc.level = if name == "no-hashmap-iter-in-state" {
            Level::Deny
        } else {
            Level::Allow
        };
    }
    let mut second = Report::default();
    analyze_source(&file, &cfg, &baseline, &mut second);
    assert_eq!(second.findings.len(), first.findings.len());
    assert!(second.findings.iter().all(|f| f.baselined));
    assert_eq!(second.deny_count(), 0);
}

//! The fused-pipeline acceptance tests: a full `Simulation` /
//! `Simulation2D` run (which steps through the fused
//! gather→accelerate→move kernel) must reproduce the trajectories of the
//! unfused three-pass pipeline — `gather_field` → `push_velocities` →
//! `push_positions` → field solve, the pre-fusion step structure kept as
//! the oracle — to ≤ 1e-15 for NGP and CIC over several steps, in 1-D
//! and 2-D. The kernels use identical per-particle expressions in the
//! same order, so the match is in fact exact; the assertions still allow
//! the issue's 1e-15 headroom.

use dlpic_repro::pic::gather::gather_field;
use dlpic_repro::pic::mover::{half_step_back, push_positions, push_velocities};
use dlpic_repro::pic::simulation::{PicConfig, Simulation};
use dlpic_repro::pic::solver::{FieldSolver, PoissonKind, TraditionalSolver};
use dlpic_repro::pic::{Grid1D, Shape, TwoStreamInit};
use dlpic_repro::pic2d::gather2d;
use dlpic_repro::pic2d::mover2d;
use dlpic_repro::pic2d::simulation2d::Pic2DConfig;
use dlpic_repro::pic2d::solver2d::FieldSolver2D;
use dlpic_repro::pic2d::{Grid2D, Simulation2D, TwoStream2DInit};

const TOL: f64 = 1e-15;

fn assert_close(label: &str, got: &[f64], want: &[f64]) {
    assert_eq!(got.len(), want.len(), "{label} length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let tol = TOL * (1.0 + w.abs());
        assert!(
            (g - w).abs() <= tol,
            "{label}[{i}]: fused {g} vs unfused {w}"
        );
    }
}

/// 1-D: `Simulation` (fused stepping) against a manual unfused driver
/// built from the oracle functions, both started from the identical
/// particle load and solver configuration.
fn check_1d(shape: Shape, n_steps: usize) {
    let grid = Grid1D::paper();
    let init = TwoStreamInit::random(0.2, 0.01, 4_000, 7);
    let cfg = PicConfig {
        grid: grid.clone(),
        init: Some(init.clone()),
        dt: 0.2,
        n_steps,
        gather_shape: shape,
        tracked_modes: vec![1],
    };
    let mut solver = TraditionalSolver::new(shape, PoissonKind::FiniteDifference, 1.0);
    let mut sim = Simulation::new(
        cfg,
        Box::new(TraditionalSolver::new(
            shape,
            PoissonKind::FiniteDifference,
            1.0,
        )),
    );

    // Unfused reference: replicate the constructor's set-up...
    let mut particles = init.build(&grid);
    let mut e = grid.zeros();
    let mut e_part = vec![0.0; particles.len()];
    solver.solve(&particles, &grid, &mut e);
    gather_field(&particles, &grid, shape, &e, &mut e_part);
    half_step_back(&mut particles, &e_part, 0.2);

    // ...then the original three-pass step loop.
    let mut kinetic = Vec::new();
    let mut momentum = Vec::new();
    for _ in 0..n_steps {
        sim.step();
        gather_field(&particles, &grid, shape, &e, &mut e_part);
        kinetic.push(push_velocities(&mut particles, &e_part, 0.2));
        momentum.push(particles.total_momentum());
        push_positions(&mut particles, &grid, 0.2);
        solver.solve(&particles, &grid, &mut e);
    }

    let (x, v) = sim.phase_space();
    assert_close("x", x, &particles.x);
    assert_close("v", v, &particles.v);
    assert_close("E", sim.efield(), &e);
    assert_close("kinetic", &sim.history().kinetic[..n_steps], &kinetic);
    assert_close("momentum", &sim.history().momentum[..n_steps], &momentum);
}

/// 2-D: `Simulation2D` (fused stepping) against the manual unfused
/// driver.
fn check_2d(shape: Shape, n_steps: usize) {
    let grid = Grid2D::new(16, 16, 2.0532, 2.0532);
    let init = TwoStream2DInit::quiet(0.2, 0.0, 4_096, 1e-3, 3);
    let cfg = Pic2DConfig {
        grid: grid.clone(),
        init: init.clone(),
        dt: 0.2,
        n_steps,
        gather_shape: shape,
        tracked_modes: vec![(1, 0)],
    };
    let solver_for = || {
        dlpic_repro::pic2d::TraditionalSolver2D::new(
            shape,
            dlpic_repro::pic2d::poisson2d::Poisson2DKind::Spectral,
            1.0,
        )
    };
    let mut sim = Simulation2D::new(cfg, Box::new(solver_for()));

    let mut solver = solver_for();
    let mut particles = init.build(&grid);
    let n = particles.len();
    let mut ex = grid.zeros();
    let mut ey = grid.zeros();
    let (mut ex_part, mut ey_part) = (vec![0.0; n], vec![0.0; n]);
    solver.solve(&particles, &grid, &mut ex, &mut ey);
    gather2d::gather_field(
        &particles,
        &grid,
        shape,
        &ex,
        &ey,
        &mut ex_part,
        &mut ey_part,
    );
    mover2d::half_step_back(&mut particles, &ex_part, &ey_part, 0.2);

    let mut momentum_x = Vec::new();
    let mut momentum_y = Vec::new();
    for _ in 0..n_steps {
        sim.step();
        gather2d::gather_field(
            &particles,
            &grid,
            shape,
            &ex,
            &ey,
            &mut ex_part,
            &mut ey_part,
        );
        mover2d::push_velocities(&mut particles, &ex_part, &ey_part, 0.2);
        let (px, py) = particles.total_momentum();
        momentum_x.push(px);
        momentum_y.push(py);
        mover2d::push_positions(&mut particles, &grid, 0.2);
        solver.solve(&particles, &grid, &mut ex, &mut ey);
    }

    let p = sim.particles();
    assert_close("x", &p.x, &particles.x);
    assert_close("y", &p.y, &particles.y);
    assert_close("vx", &p.vx, &particles.vx);
    assert_close("vy", &p.vy, &particles.vy);
    assert_close("Ex", sim.ex(), &ex);
    assert_close("Ey", sim.ey(), &ey);
    assert_close(
        "momentum_x",
        &sim.history().momentum_x[..n_steps],
        &momentum_x,
    );
    assert_close(
        "momentum_y",
        &sim.history().momentum_y[..n_steps],
        &momentum_y,
    );
}

#[test]
fn fused_step_matches_unfused_1d_ngp() {
    check_1d(Shape::Ngp, 25);
}

#[test]
fn fused_step_matches_unfused_1d_cic() {
    check_1d(Shape::Cic, 25);
}

#[test]
fn fused_step_matches_unfused_1d_tsc() {
    // Beyond the issue's NGP/CIC floor: the higher-order shape too.
    check_1d(Shape::Tsc, 15);
}

#[test]
fn fused_step_matches_unfused_2d_ngp() {
    check_2d(Shape::Ngp, 15);
}

#[test]
fn fused_step_matches_unfused_2d_cic() {
    check_2d(Shape::Cic, 15);
}

//! CLI for the repo's static analysis pass.
//!
//! ```text
//! dlpic-analyze [--root DIR] [--deny] [--format text|json]
//!               [--config FILE] [--set rule.attr=value]…
//!               [--baseline FILE] [--write-baseline FILE] [--list-rules]
//! ```
//!
//! Exit codes: 0 clean (or findings without `--deny`), 1 usage/config
//! error, 2 deny-level findings under `--deny`.

use std::path::PathBuf;
use std::process::ExitCode;

use dlpic_analyze::config::{rule_description, Config, RULE_NAMES};
use dlpic_analyze::report::Baseline;

struct Args {
    root: PathBuf,
    deny: bool,
    json: bool,
    config_file: Option<PathBuf>,
    sets: Vec<(String, String)>,
    baseline_file: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    list_rules: bool,
}

fn usage() -> String {
    "usage: dlpic-analyze [--root DIR] [--deny] [--format text|json] \
     [--config FILE] [--set rule.attr=value] [--baseline FILE] \
     [--write-baseline FILE] [--list-rules]"
        .to_string()
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        root: PathBuf::from("."),
        deny: false,
        json: false,
        config_file: None,
        sets: Vec::new(),
        baseline_file: None,
        write_baseline: None,
        list_rules: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} needs a value\n{}", usage()))
        };
        match arg.as_str() {
            "--root" => out.root = PathBuf::from(value("--root")?),
            "--deny" => out.deny = true,
            "--format" => {
                out.json = match value("--format")?.as_str() {
                    "json" => true,
                    "text" => false,
                    other => return Err(format!("unknown format `{other}` (text|json)")),
                }
            }
            "--config" => out.config_file = Some(PathBuf::from(value("--config")?)),
            "--set" => {
                let kv = value("--set")?;
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("--set wants rule.attr=value, got `{kv}`"))?;
                out.sets.push((k.trim().to_string(), v.trim().to_string()));
            }
            "--baseline" => out.baseline_file = Some(PathBuf::from(value("--baseline")?)),
            "--write-baseline" => {
                out.write_baseline = Some(PathBuf::from(value("--write-baseline")?))
            }
            "--list-rules" => out.list_rules = true,
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(out)
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;

    if args.list_rules {
        for rule in RULE_NAMES {
            println!("{rule}\n    {}", rule_description(rule));
        }
        return Ok(ExitCode::SUCCESS);
    }

    let mut config = Config::repo_default();
    if let Some(path) = &args.config_file {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("read config {}: {e}", path.display()))?;
        config
            .apply_file(&text)
            .map_err(|e| format!("config {}: {e}", path.display()))?;
    }
    for (k, v) in &args.sets {
        config.set(k, v)?;
    }

    // Baseline: an explicit --baseline must exist; the default
    // `analyze-baseline.txt` under the root is optional.
    let baseline = match &args.baseline_file {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("read baseline {}: {e}", path.display()))?;
            Baseline::parse(&text).map_err(|e| format!("baseline {}: {e}", path.display()))?
        }
        None => {
            let default = args.root.join("analyze-baseline.txt");
            match std::fs::read_to_string(&default) {
                Ok(text) => Baseline::parse(&text)
                    .map_err(|e| format!("baseline {}: {e}", default.display()))?,
                Err(_) => Baseline::default(),
            }
        }
    };

    let report = dlpic_analyze::analyze_tree(&args.root, &config, &baseline)?;

    if let Some(path) = &args.write_baseline {
        let text = Baseline::render(&report.findings);
        std::fs::write(path, text).map_err(|e| format!("write {}: {e}", path.display()))?;
        eprintln!(
            "dlpic-analyze: wrote {} baseline entrie(s) to {}",
            report.findings.len(),
            path.display()
        );
    }

    if args.json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.to_text());
    }

    if args.deny && report.deny_count() > 0 {
        return Ok(ExitCode::from(2));
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("dlpic-analyze: {msg}");
            ExitCode::FAILURE
        }
    }
}

//! Field interpolation (grid → particles), paper Fig. 1 first phase.
//!
//! Uses the same shape function as the deposition — the combination that
//! makes the explicit scheme momentum-conserving (no self-force; see the
//! property tests at the bottom, which verify `Σ_p q·E(x_p) = 0` exactly
//! for charge distributions deposited with the *same* shape).

use crate::grid::Grid1D;
use crate::particles::Particles;
use crate::shape::Shape;
use rayon::prelude::*;

/// Minimum particle count before the parallel path is worth spawning.
const PAR_THRESHOLD: usize = 1 << 15;

/// Interpolates the grid field `e` to every particle position, writing into
/// `e_part` (reused across steps to avoid per-step allocation).
///
/// # Panics
/// Panics if buffer sizes disagree with the particle count / grid.
pub fn gather_field(
    particles: &Particles,
    grid: &Grid1D,
    shape: Shape,
    e: &[f64],
    e_part: &mut [f64],
) {
    assert_eq!(e.len(), grid.ncells(), "field length mismatch");
    assert_eq!(
        e_part.len(),
        particles.len(),
        "per-particle buffer mismatch"
    );
    let inv_dx = 1.0 / grid.dx();
    let n = grid.ncells();

    let gather_one = |x: f64| -> f64 {
        let a = shape.assign(x * inv_dx);
        match shape {
            Shape::Ngp => e[wrap(a.leftmost, n)],
            Shape::Cic => {
                let j = wrap(a.leftmost, n);
                let j1 = if j + 1 == n { 0 } else { j + 1 };
                a.w[0] * e[j] + a.w[1] * e[j1]
            }
            Shape::Tsc => {
                let mut acc = 0.0;
                for (o, w) in a.w.iter().enumerate() {
                    acc += w * e[wrap(a.leftmost + o as i64, n)];
                }
                acc
            }
        }
    };

    if particles.len() >= PAR_THRESHOLD && rayon::current_num_threads() > 1 {
        particles
            .x
            .par_iter()
            .zip(e_part.par_iter_mut())
            .for_each(|(&x, ep)| *ep = gather_one(x));
    } else {
        for (&x, ep) in particles.x.iter().zip(e_part.iter_mut()) {
            *ep = gather_one(x);
        }
    }
}

#[inline]
fn wrap(j: i64, n: usize) -> usize {
    j.rem_euclid(n as i64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deposit::deposit_charge;
    use proptest::prelude::*;

    fn particles_at(xs: Vec<f64>, grid: &Grid1D) -> Particles {
        let n = xs.len();
        Particles::electrons_normalized(xs, vec![0.0; n], grid.length())
    }

    #[test]
    fn gather_on_node_returns_node_value() {
        let grid = Grid1D::new(8, 8.0);
        let e: Vec<f64> = (0..8).map(|j| j as f64).collect();
        let p = particles_at(vec![5.0], &grid);
        let mut ep = vec![0.0; 1];
        for shape in [Shape::Ngp, Shape::Cic] {
            gather_field(&p, &grid, shape, &e, &mut ep);
            assert!((ep[0] - 5.0).abs() < 1e-15, "{shape:?}");
        }
    }

    #[test]
    fn cic_interpolates_linearly_between_nodes() {
        let grid = Grid1D::new(8, 8.0);
        let e: Vec<f64> = (0..8).map(|j| 2.0 * j as f64).collect();
        let p = particles_at(vec![2.25], &grid);
        let mut ep = vec![0.0; 1];
        gather_field(&p, &grid, Shape::Cic, &e, &mut ep);
        assert!((ep[0] - 4.5).abs() < 1e-15);
    }

    #[test]
    fn constant_field_gathers_exactly_for_all_shapes() {
        let grid = Grid1D::new(16, 2.0532);
        let e = vec![0.321; 16];
        let xs: Vec<f64> = (0..100).map(|i| i as f64 / 100.0 * grid.length()).collect();
        let p = particles_at(xs, &grid);
        let mut ep = vec![0.0; p.len()];
        for shape in [Shape::Ngp, Shape::Cic, Shape::Tsc] {
            gather_field(&p, &grid, shape, &e, &mut ep);
            for &v in &ep {
                assert!((v - 0.321).abs() < 1e-14, "{shape:?}");
            }
        }
    }

    #[test]
    fn wrap_at_box_edge() {
        let grid = Grid1D::new(4, 4.0);
        let e = vec![1.0, 0.0, 0.0, 3.0];
        // Particle at x = 3.5: CIC weights 0.5 on node 3, 0.5 on node 0.
        let p = particles_at(vec![3.5], &grid);
        let mut ep = vec![0.0; 1];
        gather_field(&p, &grid, Shape::Cic, &e, &mut ep);
        assert!((ep[0] - 2.0).abs() < 1e-15);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Momentum conservation identity: the total electric force on the
        /// particles, with E derived from a *symmetric* field solve of their
        /// own charge, vanishes when gather and deposit share the shape.
        /// Here we test the core algebraic part: Σ_p q·E(x_p) equals the
        /// grid sum Σ_j E_j·ρ_j·dx for any field E.
        #[test]
        fn gather_is_adjoint_of_deposit(
            xs in proptest::collection::vec(0.0f64..2.0, 1..128),
            e in proptest::collection::vec(-1.0f64..1.0, 8),
        ) {
            let grid = Grid1D::new(8, 2.0);
            let p = particles_at(xs, &grid);
            for shape in [Shape::Ngp, Shape::Cic, Shape::Tsc] {
                let mut ep = vec![0.0; p.len()];
                gather_field(&p, &grid, shape, &e, &mut ep);
                let force_particles: f64 = ep.iter().sum::<f64>() * p.charge();

                let mut rho = grid.zeros();
                deposit_charge(&p, &grid, shape, &mut rho);
                let force_grid: f64 = rho
                    .iter()
                    .zip(&e)
                    .map(|(r, f)| r * f)
                    .sum::<f64>() * grid.dx();

                prop_assert!((force_particles - force_grid).abs() < 1e-9,
                    "{shape:?}: {force_particles} vs {force_grid}");
            }
        }

        #[test]
        fn gather_bounded_by_field_extrema(
            xs in proptest::collection::vec(0.0f64..2.0, 1..64),
            e in proptest::collection::vec(-5.0f64..5.0, 8),
        ) {
            let grid = Grid1D::new(8, 2.0);
            let p = particles_at(xs, &grid);
            let lo = e.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = e.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            for shape in [Shape::Ngp, Shape::Cic, Shape::Tsc] {
                let mut ep = vec![0.0; p.len()];
                gather_field(&p, &grid, shape, &e, &mut ep);
                for &v in &ep {
                    prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12,
                        "{shape:?}: {v} outside [{lo}, {hi}]");
                }
            }
        }
    }
}

//! Fixture: a hot file allocating inside its loop bodies — every flagged
//! form in one pass.

// analyze:hot — per-particle loop, must stay allocation-free

pub fn step(xs: &[f32]) -> f32 {
    let mut acc = 0.0;
    for &x in xs {
        let scratch = Vec::with_capacity(4);
        let label = format!("{x}");
        let copy = xs.to_vec();
        acc += x + scratch.capacity() as f32 + label.len() as f32 + copy[0];
    }
    let mut i = 0;
    while i < xs.len() {
        let boxed = Box::new(xs[i]);
        acc += *boxed;
        i += 1;
    }
    acc
}

//! Time-history recording of the diagnostics.

use crate::diagnostics::EnergyReport;
use dlpic_analytics::series::TimeSeries;

/// One recorded diagnostics row in the shape shared by every solver
/// family's history type (1-D, 2-D, distributed) — the common currency the
/// engine facade's sessions consume, so per-backend adapters don't each
/// re-spell the column-to-field mapping. The 2-D history reports its `x`
/// momentum component here.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleRow {
    /// Sample time.
    pub time: f64,
    /// Kinetic energy.
    pub kinetic: f64,
    /// Field energy.
    pub field: f64,
    /// Total momentum (the `x` component in 2-D).
    pub momentum: f64,
    /// Amplitudes of the tracked modes, in tracking order.
    pub mode_amps: Vec<f64>,
}

/// Accumulated per-step diagnostics of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct History {
    /// Sample times.
    pub times: Vec<f64>,
    /// Kinetic energy per step.
    pub kinetic: Vec<f64>,
    /// Field energy per step.
    pub field: Vec<f64>,
    /// Total energy per step.
    pub total: Vec<f64>,
    /// Total momentum per step.
    pub momentum: Vec<f64>,
    /// Which field modes are tracked.
    pub tracked_modes: Vec<usize>,
    /// Mode amplitudes: `mode_amps[i][step]` follows `tracked_modes[i]`.
    pub mode_amps: Vec<Vec<f64>>,
}

impl History {
    /// Creates a history tracking the given field modes.
    pub fn new(tracked_modes: Vec<usize>) -> Self {
        let slots = tracked_modes.len();
        Self {
            tracked_modes,
            mode_amps: vec![Vec::new(); slots],
            ..Self::default()
        }
    }

    /// Reserves capacity for `additional` further samples in every series,
    /// so a sized run records without reallocating.
    pub fn reserve(&mut self, additional: usize) {
        self.times.reserve(additional);
        self.kinetic.reserve(additional);
        self.field.reserve(additional);
        self.total.reserve(additional);
        self.momentum.reserve(additional);
        for slot in &mut self.mode_amps {
            slot.reserve(additional);
        }
    }

    /// Appends one step's diagnostics.
    ///
    /// # Panics
    /// Panics if `amps` length differs from the number of tracked modes.
    pub fn push(&mut self, t: f64, report: EnergyReport, amps: &[f64]) {
        assert_eq!(
            amps.len(),
            self.tracked_modes.len(),
            "mode amplitude count mismatch"
        );
        self.times.push(t);
        self.kinetic.push(report.kinetic);
        self.field.push(report.field);
        self.total.push(report.total());
        self.momentum.push(report.momentum);
        for (slot, &a) in self.mode_amps.iter_mut().zip(amps) {
            slot.push(a);
        }
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The most recently recorded row in the cross-solver [`SampleRow`]
    /// shape, or `None` before the first sample.
    pub fn last_sample(&self) -> Option<SampleRow> {
        let i = self.len().checked_sub(1)?;
        Some(SampleRow {
            time: self.times[i],
            kinetic: self.kinetic[i],
            field: self.field[i],
            momentum: self.momentum[i],
            mode_amps: self.mode_amps.iter().map(|s| s[i]).collect(),
        })
    }

    /// The amplitude history of grid mode `m`, if tracked.
    pub fn mode_series(&self, mode: usize) -> Option<TimeSeries> {
        let idx = self.tracked_modes.iter().position(|&m| m == mode)?;
        Some(TimeSeries::from_data(
            format!("E{mode}"),
            self.times.clone(),
            self.mode_amps[idx].clone(),
        ))
    }

    /// Total-energy history as a named series.
    pub fn total_energy_series(&self, name: impl Into<String>) -> TimeSeries {
        TimeSeries::from_data(name, self.times.clone(), self.total.clone())
    }

    /// Momentum history as a named series.
    pub fn momentum_series(&self, name: impl Into<String>) -> TimeSeries {
        TimeSeries::from_data(name, self.times.clone(), self.momentum.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(k: f64, f: f64, p: f64) -> EnergyReport {
        EnergyReport {
            kinetic: k,
            field: f,
            momentum: p,
        }
    }

    #[test]
    fn push_and_series_round_trip() {
        let mut h = History::new(vec![1, 2]);
        h.push(0.0, report(1.0, 0.1, 0.0), &[1e-4, 2e-5]);
        h.push(0.2, report(0.9, 0.2, -1e-3), &[2e-4, 3e-5]);
        assert_eq!(h.len(), 2);
        assert_eq!(h.total, vec![1.1, 1.1]);
        let e1 = h.mode_series(1).unwrap();
        assert_eq!(e1.values, vec![1e-4, 2e-4]);
        assert_eq!(e1.name, "E1");
        assert!(h.mode_series(3).is_none());
        assert_eq!(h.momentum_series("p").values, vec![0.0, -1e-3]);
        let last = h.last_sample().unwrap();
        assert_eq!(last.time, 0.2);
        assert_eq!(last.kinetic, 0.9);
        assert_eq!(last.mode_amps, vec![2e-4, 3e-5]);
        assert!(History::new(vec![1]).last_sample().is_none());
    }

    #[test]
    #[should_panic(expected = "mode amplitude count mismatch")]
    fn wrong_amp_count_rejected() {
        let mut h = History::new(vec![1]);
        h.push(0.0, report(1.0, 0.0, 0.0), &[1.0, 2.0]);
    }
}

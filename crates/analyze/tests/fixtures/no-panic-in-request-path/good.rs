//! Fixture: the same handler with structured errors. Poison propagation
//! on `.lock()`/`.wait()` is the one exempt unwrap family — a poisoned
//! mutex means a handler already panicked, and limping on would serve
//! corrupt state.

use std::sync::Mutex;

pub struct Handler {
    hits: Mutex<u64>,
}

impl Handler {
    pub fn handle(&self, body: &str) -> Result<String, String> {
        let n: u64 = body
            .parse()
            .map_err(|e| format!("bad-request: not a number: {e}"))?;
        if n > 1_000 {
            return Err("bad-request: too large".to_string());
        }
        let mut hits = self.hits.lock().unwrap();
        *hits += 1;
        Ok(format!("ok {n}"))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let h = super::Handler {
            hits: std::sync::Mutex::new(0),
        };
        assert_eq!(h.handle("2").unwrap(), "ok 2");
    }
}

//! The Adam optimizer (Kingma & Ba) — the paper trains both networks with
//! "the Adam optimizer with a batch size of 64 samples and a learning rate
//! of 0.0001" (§IV.A).

use crate::network::Sequential;
use crate::optimizer::Optimizer;

/// Adam with bias-corrected first/second moment estimates.
pub struct Adam {
    /// Learning rate (paper: 1e-4).
    pub lr: f32,
    /// First-moment decay (default 0.9).
    pub beta1: f32,
    /// Second-moment decay (default 0.999).
    pub beta2: f32,
    /// Numerical floor (default 1e-8).
    pub eps: f32,
    t: u32,
    moments: Vec<(Vec<f32>, Vec<f32>)>,
}

impl Adam {
    /// Creates Adam with the standard β/ε defaults.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            moments: Vec::new(),
        }
    }

    /// The paper's configuration: `lr = 1e-4`.
    pub fn paper() -> Self {
        Self::new(1e-4)
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u32 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, net: &mut Sequential) {
        self.t += 1;
        let (b1, b2, eps) = (self.beta1, self.beta2, self.eps);
        // Bias-correction scalars hoisted out of the per-element loop:
        // lr·(m̂) / (√v̂ + ε) with m̂ = m/(1−β₁ᵗ), v̂ = v/(1−β₂ᵗ) becomes
        // one fused step size and one reciprocal, leaving a single
        // division per element.
        let step_size = self.lr / (1.0 - b1.powi(self.t as i32));
        let inv_bc2 = 1.0 / (1.0 - b2.powi(self.t as i32));
        let mut idx = 0;
        let moments = &mut self.moments;
        net.visit_params(&mut |p, g| {
            if moments.len() <= idx {
                moments.push((vec![0.0; p.len()], vec![0.0; p.len()]));
            }
            let (m, v) = &mut moments[idx];
            debug_assert_eq!(m.len(), p.len(), "parameter layout changed between steps");
            for (((pv, &gv), mv), vv) in p
                .iter_mut()
                .zip(g.iter())
                .zip(m.iter_mut())
                .zip(v.iter_mut())
            {
                *mv = b1 * *mv + (1.0 - b1) * gv;
                *vv = b2 * *vv + (1.0 - b2) * gv * gv;
                *pv -= step_size * *mv / ((*vv * inv_bc2).sqrt() + eps);
            }
            idx += 1;
        });
    }

    fn name(&self) -> &'static str {
        "adam"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Init;
    use crate::layers::{Dense, Relu};
    use crate::loss::Mse;
    use crate::optimizer::Sgd;
    use crate::tensor::Tensor;

    /// An ill-conditioned two-feature regression: one feature is 100×
    /// larger than the other. Adam's per-parameter scaling shines here.
    fn ill_conditioned() -> (Tensor, Tensor) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..32 {
            let a = (i as f32 / 16.0) - 1.0;
            let b = 100.0 * (((i * 7) % 13) as f32 / 6.5 - 1.0);
            xs.push(a);
            xs.push(b);
            ys.push(3.0 * a + 0.01 * b);
        }
        (Tensor::new(xs, &[32, 2]), Tensor::new(ys, &[32, 1]))
    }

    #[test]
    fn adam_converges_where_sgd_is_slow() {
        let (x, y) = ill_conditioned();
        let run = |use_adam: bool| -> f32 {
            let mut net = Sequential::new().push(Dense::new(2, 1, Init::Zeros, 0));
            let mut adam = Adam::new(0.05);
            // SGD lr is capped by the large feature: 1e-5 is near the
            // stability limit for this data.
            let mut sgd = Sgd::new(1e-5);
            for _ in 0..400 {
                net.compute_gradients(&Mse, &x, &y);
                if use_adam {
                    adam.step(&mut net);
                } else {
                    sgd.step(&mut net);
                }
            }
            net.compute_gradients(&Mse, &x, &y)
        };
        let adam_loss = run(true);
        let sgd_loss = run(false);
        assert!(
            adam_loss < sgd_loss * 0.5,
            "adam {adam_loss} vs sgd {sgd_loss}"
        );
    }

    #[test]
    fn adam_trains_a_small_mlp() {
        // y = sin-ish nonlinear target; just verify a big loss reduction.
        let x = Tensor::new((0..64).map(|i| i as f32 / 32.0 - 1.0).collect(), &[64, 1]);
        let y = x.map(|v| v * v);
        let mut net = Sequential::new()
            .push(Dense::new(1, 16, Init::HeNormal, 1))
            .push(Relu::new())
            .push(Dense::new(16, 1, Init::HeNormal, 2));
        let mut opt = Adam::new(0.01);
        let first = net.compute_gradients(&Mse, &x, &y);
        for _ in 0..500 {
            net.compute_gradients(&Mse, &x, &y);
            opt.step(&mut net);
        }
        let last = net.compute_gradients(&Mse, &x, &y);
        assert!(last < first * 0.02, "{first} -> {last}");
        assert_eq!(opt.steps(), 500);
    }

    #[test]
    fn first_step_size_is_lr_bounded() {
        // With bias correction, the very first Adam step is ≈ lr·sign(g).
        let mut net = Sequential::new().push(Dense::new(1, 1, Init::Zeros, 0));
        let x = Tensor::new(vec![1.0], &[1, 1]);
        let y = Tensor::new(vec![1.0], &[1, 1]);
        let mut opt = Adam::new(0.1);
        net.compute_gradients(&Mse, &x, &y);
        opt.step(&mut net);
        let mut w = 0.0;
        net.visit_params(&mut |p, _| {
            if p.len() == 1 && w == 0.0 {
                w = p[0];
            }
        });
        assert!((w.abs() - 0.1).abs() < 1e-3, "first step {w}");
    }
}

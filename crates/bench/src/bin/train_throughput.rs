//! Single-core training-pipeline throughput benchmark: conv2d
//! forward+backward, one MLP and one CNN training epoch, and the Vlasov
//! data-generator step, plus the shared `matmul_naive` calibration anchor.
//!
//! The companion of `step_throughput`: that bench gates the *simulate*
//! half of the paper's workflow, this one gates the *train* half — the
//! layers, the mini-batch loop, and the Vlasov solver that generates the
//! noise-free training data (§VII).
//!
//! Usage mirrors `step_throughput`:
//!
//! * `train_throughput` — full measurement, JSON printed to stdout.
//! * `--out FILE` — also write the raw measurement JSON to `FILE`
//!   (used to capture a baseline before an optimization lands).
//! * `--write-bench BASELINE` — measure, read a previously captured
//!   measurement from `BASELINE`, and write `BENCH_train.json` with
//!   `baseline` + `current` sections and the speedup ratios.
//! * `--quick` — smaller workloads (CI-sized; per-unit metrics stay
//!   comparable because the workload *shapes* are unchanged).
//! * `--check` — measure (honours `--quick`), compare against the
//!   committed `BENCH_train.json`, print deltas and exit non-zero on a
//!   throughput regression beyond the tolerance
//!   (`DLPIC_PERF_MAX_REGRESSION`, default 0.25). Committed numbers are
//!   rescaled to this machine by the `matmul_naive` calibration anchor,
//!   exactly like the step gate.

use dlpic_bench::gate::{
    calibration_gflops, fill, indent_block, json_string_after, json_value_after, median,
};
use dlpic_core::presets::Scale;
use dlpic_nn::data::Dataset;
use dlpic_nn::init::Init;
use dlpic_nn::layer::Layer;
use dlpic_nn::layers::Conv2d;
use dlpic_nn::loss::Mse;
use dlpic_nn::optimizer::Adam;
use dlpic_nn::tensor::Tensor;
use dlpic_nn::trainer::{train, TrainConfig};
use dlpic_pic::grid::Grid1D;
use dlpic_vlasov::solver::{VlasovConfig, VlasovSolver};
use std::time::Instant;

/// One throughput measurement: work units processed per second.
struct Throughput {
    units: usize,
    seconds: f64,
    per_sec: f64,
}

struct Measurement {
    calibration: f64,
    /// Kernel path the `nn::linalg` dispatcher picked ("avx512f" or
    /// "portable") — kernel-bound metrics are only comparable between
    /// machines on the same path.
    simd: &'static str,
    conv: Throughput,
    mlp: Throughput,
    cnn: Throughput,
    vlasov: Throughput,
}

/// Forward(training)+backward throughput of the four conv layers of the
/// `Scale::Scaled` CNN (1→8 and 8→8 on 32×32, 8→16 and 16→16 on 16×16) at
/// batch 64. One work unit = one batch sample through all four layers.
fn bench_conv(iters: usize, reps: usize) -> Throughput {
    let batch = 64;
    // (in_ch, out_ch, h, w) of the Scaled CNN's conv layers.
    let shapes = [
        (1usize, 8usize, 32usize, 32usize),
        (8, 8, 32, 32),
        (8, 16, 16, 16),
        (16, 16, 16, 16),
    ];
    let mut layers: Vec<Conv2d> = shapes
        .iter()
        .enumerate()
        .map(|(i, &(ic, oc, _, _))| Conv2d::new(ic, oc, 3, Init::HeNormal, i as u64 + 1))
        .collect();
    let inputs: Vec<Tensor> = shapes
        .iter()
        .enumerate()
        .map(|(i, &(ic, _, h, w))| {
            let mut data = vec![0.0f32; batch * ic * h * w];
            fill(&mut data, 17 + i as u64);
            Tensor::new(data, &[batch, ic, h, w])
        })
        .collect();
    let grads: Vec<Tensor> = shapes
        .iter()
        .enumerate()
        .map(|(i, &(_, oc, h, w))| {
            let mut data = vec![0.0f32; batch * oc * h * w];
            fill(&mut data, 29 + i as u64);
            Tensor::new(data, &[batch, oc, h, w])
        })
        .collect();
    // Reusable output/gradient buffers — the same train_forward_into /
    // backward_into path the trainer drives per batch. (The committed
    // baseline predates these entry points; it ran the then-only
    // allocating forward/backward, so the speedup ratio includes the
    // allocation elimination — which is the point.)
    let mut out = Tensor::zeros(&[0]);
    let mut gx = Tensor::zeros(&[0]);
    // Warm-up.
    for (layer, (x, g)) in layers.iter_mut().zip(inputs.iter().zip(&grads)) {
        layer.train_forward_into(x, &mut out);
        layer.backward_into(g, &mut gx);
    }
    let times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                for (layer, (x, g)) in layers.iter_mut().zip(inputs.iter().zip(&grads)) {
                    layer.zero_grads();
                    layer.train_forward_into(x, &mut out);
                    std::hint::black_box(out.data()[0]);
                    layer.backward_into(g, &mut gx);
                    std::hint::black_box(gx.data()[0]);
                }
            }
            t0.elapsed().as_secs_f64()
        })
        .collect();
    let seconds = median(times);
    let units = batch * iters;
    Throughput {
        units,
        seconds,
        per_sec: units as f64 / seconds,
    }
}

/// A synthetic regression dataset with the given input shape.
fn synth_dataset(n: usize, in_shape: &[usize], out_w: usize, seed: u64) -> Dataset {
    let in_w: usize = in_shape.iter().product();
    let mut xs = vec![0.0f32; n * in_w];
    let mut ys = vec![0.0f32; n * out_w];
    fill(&mut xs, seed);
    fill(&mut ys, seed + 1);
    let mut x_shape = vec![n];
    x_shape.extend_from_slice(in_shape);
    Dataset::new(Tensor::new(xs, &x_shape), Tensor::new(ys, &[n, out_w]))
}

/// Samples/second of full training epochs (shuffle + batching + forward +
/// loss + backward + Adam) on the `Scale::Scaled` MLP (1024-256³-64).
fn bench_mlp_epoch(samples: usize, epochs: usize, reps: usize) -> Throughput {
    let data = synth_dataset(samples, &[1024], 64, 41);
    let times: Vec<f64> = (0..reps)
        .map(|_| {
            let mut net = Scale::Scaled.mlp_arch().build(7);
            let mut opt = Adam::new(1e-3);
            let cfg = TrainConfig {
                epochs,
                batch_size: 64,
                shuffle_seed: 3,
                log_every: 0,
            };
            let t0 = Instant::now();
            let hist = train(&mut net, &Mse, &mut opt, &data, None, &cfg);
            let dt = t0.elapsed().as_secs_f64();
            std::hint::black_box(hist.final_loss());
            dt
        })
        .collect();
    let seconds = median(times);
    let units = samples * epochs;
    Throughput {
        units,
        seconds,
        per_sec: units as f64 / seconds,
    }
}

/// Samples/second of full training epochs on the `Scale::Scaled` CNN
/// (1→8→8 pool 8→16→16 pool, 128³ dense head) over 32×32 images.
fn bench_cnn_epoch(samples: usize, epochs: usize, reps: usize) -> Throughput {
    let data = synth_dataset(samples, &[1, 32, 32], 64, 53);
    let times: Vec<f64> = (0..reps)
        .map(|_| {
            let mut net = Scale::Scaled.cnn_arch().build(7);
            let mut opt = Adam::new(1e-3);
            let cfg = TrainConfig {
                epochs,
                batch_size: 64,
                shuffle_seed: 3,
                log_every: 0,
            };
            let t0 = Instant::now();
            let hist = train(&mut net, &Mse, &mut opt, &data, None, &cfg);
            let dt = t0.elapsed().as_secs_f64();
            std::hint::black_box(hist.final_loss());
            dt
        })
        .collect();
    let seconds = median(times);
    let units = samples * epochs;
    Throughput {
        units,
        seconds,
        per_sec: units as f64 / seconds,
    }
}

/// Steps/second of the Vlasov solver at the dataset-bridge resolution
/// (128×256 phase-space grid — `lcm(32, 64)·2` x-cells, 32·8 v-cells).
fn bench_vlasov(steps: usize, reps: usize) -> Throughput {
    let times: Vec<f64> = (0..reps)
        .map(|_| {
            let cfg = VlasovConfig {
                grid: Grid1D::new(128, dlpic_pic::constants::paper_box_length()),
                nv: 256,
                vmax: 0.8,
                dt: 0.05,
                v0: 0.2,
                vth: 0.02,
                perturbation: 1e-3,
            };
            let mut solver = VlasovSolver::new(cfg);
            let t0 = Instant::now();
            solver.run(steps);
            let dt = t0.elapsed().as_secs_f64();
            std::hint::black_box(solver.field_mode(1));
            dt
        })
        .collect();
    let seconds = median(times);
    Throughput {
        units: steps,
        seconds,
        per_sec: steps as f64 / seconds,
    }
}

fn measure(quick: bool) -> Measurement {
    let reps = if quick { 3 } else { 5 };
    eprintln!("measuring calibration anchor...");
    let calibration = calibration_gflops(reps);
    let conv_iters = if quick { 4 } else { 16 };
    eprintln!("measuring conv2d forward+backward ({conv_iters} iters x {reps} reps)...");
    let conv = bench_conv(conv_iters, reps);
    let (mlp_samples, mlp_epochs) = if quick { (512, 1) } else { (2048, 2) };
    eprintln!("measuring MLP training epoch ({mlp_samples} samples x {mlp_epochs} epochs)...");
    let mlp = bench_mlp_epoch(mlp_samples, mlp_epochs, reps);
    let (cnn_samples, cnn_epochs) = if quick { (128, 1) } else { (256, 2) };
    eprintln!("measuring CNN training epoch ({cnn_samples} samples x {cnn_epochs} epochs)...");
    let cnn = bench_cnn_epoch(cnn_samples, cnn_epochs, reps);
    let vlasov_steps = if quick { 20 } else { 60 };
    eprintln!("measuring Vlasov step ({vlasov_steps} steps x {reps} reps)...");
    let vlasov = bench_vlasov(vlasov_steps, reps);
    Measurement {
        calibration,
        simd: dlpic_nn::linalg::simd_level(),
        conv,
        mlp,
        cnn,
        vlasov,
    }
}

fn measurement_json(m: &Measurement, indent: &str) -> String {
    let tp = |t: &Throughput, unit: &str| {
        format!(
            "{{\n{indent}    \"units\": {},\n{indent}    \"seconds\": {:.4},\n{indent}    \"{unit}\": {:.3e}\n{indent}  }}",
            t.units, t.seconds, t.per_sec
        )
    };
    format!(
        "{{\n{indent}  \"calibration_gflops\": {:.3},\n{indent}  \"simd\": \"{}\",\n{indent}  \"conv2d\": {},\n{indent}  \"mlp_epoch\": {},\n{indent}  \"cnn_epoch\": {},\n{indent}  \"vlasov\": {}\n{indent}}}",
        m.calibration,
        m.simd,
        tp(&m.conv, "fwd_bwd_samples_per_sec"),
        tp(&m.mlp, "samples_per_sec"),
        tp(&m.cnn, "samples_per_sec"),
        tp(&m.vlasov, "steps_per_sec"),
    )
}

fn print_human(m: &Measurement) {
    println!(
        "conv2d fwd+bwd : {:.1} samples/s ({} samples in {:.3}s)",
        m.conv.per_sec, m.conv.units, m.conv.seconds
    );
    println!(
        "MLP epoch      : {:.1} samples/s ({} samples in {:.3}s)",
        m.mlp.per_sec, m.mlp.units, m.mlp.seconds
    );
    println!(
        "CNN epoch      : {:.1} samples/s ({} samples in {:.3}s)",
        m.cnn.per_sec, m.cnn.units, m.cnn.seconds
    );
    println!(
        "Vlasov 128x256 : {:.2} steps/s ({} steps in {:.3}s)",
        m.vlasov.per_sec, m.vlasov.units, m.vlasov.seconds
    );
}

/// First `"key": "<string>"` after position `from` in `text`.
/// The four throughput metrics of a measurement starting at `section`.
fn section_metrics(text: &str, section: &str) -> Option<(f64, f64, f64, f64)> {
    let at = text.find(&format!("\"{section}\""))?;
    let conv_at = at + text[at..].find("\"conv2d\"")?;
    let conv = json_value_after(text, conv_at, "fwd_bwd_samples_per_sec")?;
    let mlp_at = at + text[at..].find("\"mlp_epoch\"")?;
    let mlp = json_value_after(text, mlp_at, "samples_per_sec")?;
    let cnn_at = at + text[at..].find("\"cnn_epoch\"")?;
    let cnn = json_value_after(text, cnn_at, "samples_per_sec")?;
    let vl_at = at + text[at..].find("\"vlasov\"")?;
    let vlasov = json_value_after(text, vl_at, "steps_per_sec")?;
    Some((conv, mlp, cnn, vlasov))
}

fn check(m: &Measurement) -> i32 {
    let text = match std::fs::read_to_string("BENCH_train.json") {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read BENCH_train.json: {e}");
            return 2;
        }
    };
    let Some((cc, cm, cn, cv)) = section_metrics(&text, "current") else {
        eprintln!("BENCH_train.json has no parsable \"current\" section");
        return 2;
    };
    let cur_at = text.find("\"current\"").unwrap_or(0);
    let scale = match json_value_after(&text, cur_at, "calibration_gflops") {
        Some(committed_cal) if committed_cal > 0.0 => {
            let s = m.calibration / committed_cal;
            println!(
                "calibration: committed {committed_cal:.2} GFLOP/s, this machine {:.2} \
                 (scale {s:.2}x)",
                m.calibration
            );
            s
        }
        _ => 1.0,
    };
    // The f32 kernels dispatch on AVX-512 at runtime; the matmul_naive
    // anchor (f64, never explicitly vectorized) cannot see that
    // difference. When the committed numbers come from the stronger
    // kernel path and this machine only has the portable one, derate
    // the kernel-bound expectations instead of failing the machine for
    // hardware it does not have (≈2.5x measured path gap; derate by 3x
    // keeps a real-regression net). The opposite mismatch — portable
    // numbers committed, AVX-512 machine measuring — needs no derate:
    // the faster path can only beat the expectation. The Vlasov metric
    // is f64 solver code on both paths and is compared at full
    // strength either way.
    let committed_simd = json_string_after(&text, cur_at, "simd");
    let kernel_derate = match committed_simd.as_deref() {
        Some("avx512f") if m.simd == "portable" => {
            println!(
                "kernel path mismatch: committed \"avx512f\", this machine \"portable\" — \
                 derating kernel-bound expectations 3x"
            );
            1.0 / 3.0
        }
        _ => 1.0,
    };
    let tolerance: f64 = std::env::var("DLPIC_PERF_MAX_REGRESSION")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    let mut failed = false;
    for (name, measured, committed) in [
        ("conv2d", m.conv.per_sec, cc * scale * kernel_derate),
        ("mlp_epoch", m.mlp.per_sec, cm * scale * kernel_derate),
        ("cnn_epoch", m.cnn.per_sec, cn * scale * kernel_derate),
        ("vlasov", m.vlasov.per_sec, cv * scale),
    ] {
        let delta = measured / committed - 1.0;
        let verdict = if delta < -tolerance {
            failed = true;
            "REGRESSION"
        } else {
            "ok"
        };
        println!(
            "{name:>9}: expected {committed:.3e}, measured {measured:.3e} ({delta:+.1}%) {verdict}",
            delta = delta * 100.0
        );
    }
    if failed {
        println!(
            "FAIL: training throughput regressed more than {:.0}%",
            tolerance * 100.0
        );
        1
    } else {
        println!(
            "PASS: within {:.0}% of committed numbers",
            tolerance * 100.0
        );
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let do_check = args.iter().any(|a| a == "--check");
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };

    let m = measure(quick);
    print_human(&m);

    if let Some(path) = flag_value("--out") {
        std::fs::write(&path, measurement_json(&m, "") + "\n").expect("write --out file");
        println!("wrote {path}");
    }

    if let Some(baseline_path) = flag_value("--write-bench") {
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
        let Some((bc, bm, bn, bv)) = section_metrics(&baseline, "conv2d") else {
            panic!("baseline {baseline_path} is not a train_throughput measurement");
        };
        let json = format!(
            "{{\n  \"bench\": \"train_throughput\",\n  \"note\": \"single-core; compare the speedup ratios, not cross-machine absolutes\",\n  \"baseline\": {},\n  \"current\": {},\n  \"speedup\": {{\n    \"conv2d_fwd_bwd\": {:.3},\n    \"mlp_epoch\": {:.3},\n    \"cnn_epoch\": {:.3},\n    \"vlasov_step\": {:.3}\n  }}\n}}\n",
            indent_block(baseline.trim_end()),
            measurement_json(&m, "  "),
            m.conv.per_sec / bc,
            m.mlp.per_sec / bm,
            m.cnn.per_sec / bn,
            m.vlasov.per_sec / bv,
        );
        std::fs::write("BENCH_train.json", &json).expect("write BENCH_train.json");
        println!(
            "wrote BENCH_train.json (speedups: conv {:.2}x, MLP {:.2}x, CNN {:.2}x, Vlasov {:.2}x)",
            m.conv.per_sec / bc,
            m.mlp.per_sec / bm,
            m.cnn.per_sec / bn,
            m.vlasov.per_sec / bv,
        );
    }

    if do_check {
        std::process::exit(check(&m));
    }
}

//! Facade integration tests: every registry scenario round-trips through
//! JSON, and every scenario×compatible-backend pairing runs at
//! `Scale::Smoke` with finite energies and (where the method promises it)
//! conserved momentum.

use dlpic_repro::core::Scale;
use dlpic_repro::engine::{
    self, compatible_backends, Backend, Engine, Observer, RunSummary, Sample, ScenarioSpec,
    SCENARIO_NAMES,
};

#[test]
fn every_registry_spec_round_trips_through_json() {
    for scale in [Scale::Smoke, Scale::Scaled, Scale::Paper] {
        for name in SCENARIO_NAMES {
            let spec = engine::scenario(name, scale).unwrap();
            let json = spec.to_json();
            let round = ScenarioSpec::from_json(&json).unwrap();
            assert_eq!(round, spec, "{name} at {scale:?} mutated in JSON transit");
        }
    }
}

#[test]
fn every_compatible_pairing_runs_at_smoke_scale() {
    for name in SCENARIO_NAMES {
        let spec = engine::scenario(name, Scale::Smoke).unwrap();
        let backends = compatible_backends(&spec);
        assert!(!backends.is_empty(), "{name} has no compatible backend");
        for backend in backends {
            let summary =
                engine::run(&spec, backend).unwrap_or_else(|e| panic!("{name} on {backend}: {e}"));
            assert_eq!(
                summary.history.len(),
                spec.n_steps + 1,
                "{name} on {backend}: wrong sample count"
            );
            assert!(
                summary.all_finite(),
                "{name} on {backend}: non-finite diagnostics"
            );
            // Mode amplitudes recorded for every tracked mode.
            for &m in &spec.tracked_modes {
                assert!(
                    summary.history.mode_series(m).is_some(),
                    "{name} on {backend}: mode {m} missing"
                );
            }
            if backend.conserves_momentum() {
                // Matched-shape deposit/gather (and the continuum solver)
                // conserve total momentum; normalize by a momentum scale so
                // the bound is meaningful for symmetric (p ≈ 0) loads too.
                let p = &summary.history.momentum;
                let scale_p = summary
                    .history
                    .kinetic
                    .iter()
                    .fold(0.0f64, |m, &v| m.max(v.abs()))
                    .max(1e-12);
                let drift = summary.momentum_drift() / scale_p;
                assert!(
                    drift < 1e-6,
                    "{name} on {backend}: momentum drift {drift:.3e} (p0 = {})",
                    p[0]
                );
            }
        }
    }
}

#[test]
fn traditional_and_dl_swap_is_one_enum_value() {
    // The acceptance criterion of the facade: same spec, two backends,
    // nothing else changes.
    let spec = engine::scenario("two_stream", Scale::Smoke).unwrap();
    let trad = engine::run(&spec, Backend::Traditional1D).unwrap();
    let dl = engine::run(&spec, Backend::Dl1D).unwrap();
    assert_eq!(trad.history.len(), dl.history.len());
    assert!(trad.all_finite() && dl.all_finite());
    assert_eq!(trad.backend, "traditional-1d");
    assert_eq!(dl.backend, "dl-1d");
}

#[test]
fn incompatible_pairings_error_cleanly() {
    let spec_2d = engine::scenario("two_stream_2d", Scale::Smoke).unwrap();
    assert!(engine::run(&spec_2d, Backend::Traditional1D).is_err());
    let bot = engine::scenario("bump_on_tail", Scale::Smoke).unwrap();
    assert!(engine::run(&bot, Backend::Vlasov).is_err());
    assert!(engine::run(&bot, Backend::Ddecomp { n_ranks: 4 }).is_err());
    assert!(engine::scenario("no_such_thing", Scale::Smoke).is_err());
}

#[test]
fn ddecomp_matches_single_process_traditional() {
    // Same spec, same seed: the distributed backend must reproduce the
    // single-process physics (identical load, equivalent field solve).
    let mut spec = engine::scenario("two_stream", Scale::Smoke).unwrap();
    spec.n_steps = 10;
    let single = engine::run(&spec, Backend::Traditional1D).unwrap();
    let dist = engine::run(&spec, Backend::Ddecomp { n_ranks: 4 }).unwrap();
    assert_eq!(single.history.len(), dist.history.len());
    for (a, b) in single.history.total.iter().zip(&dist.history.total) {
        assert!(
            (a - b).abs() / a.abs().max(1e-12) < 1e-8,
            "energy diverged: {a} vs {b}"
        );
    }
    assert!(dist.extra("comm_bytes").unwrap() > 0.0);
    assert!(dist.extra("ranks").unwrap() == 4.0);
}

#[test]
fn observers_stream_every_sample() {
    struct Counter {
        started: usize,
        samples: Vec<usize>,
        finished: usize,
    }
    impl Observer for Counter {
        fn on_start(&mut self, _spec: &ScenarioSpec, _backend: &Backend) {
            self.started += 1;
        }
        fn on_sample(&mut self, sample: &Sample) {
            self.samples.push(sample.step);
        }
        fn on_finish(&mut self, summary: &RunSummary) {
            self.finished += 1;
            assert_eq!(summary.history.len(), self.samples.len());
        }
    }
    // Observers are boxed into the engine; inspect via a shared handle
    // (Arc<Mutex<…>> — observers are Send, sessions can cross threads).
    use std::sync::{Arc, Mutex};
    struct Shared(Arc<Mutex<Counter>>);
    impl Observer for Shared {
        fn on_start(&mut self, spec: &ScenarioSpec, backend: &Backend) {
            self.0.lock().unwrap().on_start(spec, backend);
        }
        fn on_sample(&mut self, sample: &Sample) {
            self.0.lock().unwrap().on_sample(sample);
        }
        fn on_finish(&mut self, summary: &RunSummary) {
            self.0.lock().unwrap().on_finish(summary);
        }
    }
    let state = Arc::new(Mutex::new(Counter {
        started: 0,
        samples: Vec::new(),
        finished: 0,
    }));
    let mut spec = engine::scenario("thermal_noise", Scale::Smoke).unwrap();
    spec.n_steps = 7;
    let mut eng = Engine::new().with_observer(Box::new(Shared(state.clone())));
    eng.run(&spec, Backend::Traditional1D).unwrap();
    let counter = state.lock().unwrap();
    assert_eq!(counter.started, 1);
    assert_eq!(counter.finished, 1);
    assert_eq!(counter.samples, (0..=7).collect::<Vec<_>>());
}

#[test]
fn two_stream_grows_on_the_traditional_backend() {
    // Physics through the facade: the instability must develop and the
    // growth-rate fit must surface through the engine's Result API.
    let mut spec = engine::scenario("two_stream", Scale::Smoke).unwrap();
    spec.n_steps = 120;
    let summary = engine::run(&spec, Backend::Traditional1D).unwrap();
    let e1 = summary.history.mode_series(1).unwrap();
    let start = e1.values[0].max(1e-12);
    let peak = e1.values.iter().copied().fold(0.0f64, f64::max);
    assert!(peak / start > 5.0, "no growth: {start} -> {peak}");
    // The fit either succeeds or reports a typed reason — never panics.
    match summary.growth_rate(1) {
        Ok(fit) => assert!(fit.gamma > 0.0),
        Err(e) => panic!("expected a growth fit, got: {e}"),
    }
}

//! Phase-space binning — the first grey box of the paper's Fig. 2.
//!
//! > "We form a phase space grid by discretizing phase space with a
//! > two-dimensional grid and counting how many particles belong to a cell
//! > of the phase space grid." (§III)
//!
//! The position axis is periodic (it is the PIC box); the velocity axis is
//! a fixed window `[vmin, vmax]` chosen wide enough to contain every
//! configuration in the training sweep *and* the saturated instability
//! (particles outside it are clamped into the edge bins so that total
//! counts are conserved — recorded as a design choice in DESIGN.md).
//!
//! Besides the paper's NGP counting, CIC (bilinear) binning is provided:
//! §VII conjectures that "the usage of higher-order interpolation functions
//! would likely improve the performance of the DL electric field solver" —
//! the `ablation_binning` experiment tests exactly that.

use dlpic_pic::grid::Grid1D;
use dlpic_pic::particles::Particles;

/// Geometry of the phase-space histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseGridSpec {
    /// Bins along the position axis.
    pub nx: usize,
    /// Bins along the velocity axis.
    pub nv: usize,
    /// Lower edge of the velocity window.
    pub vmin: f64,
    /// Upper edge of the velocity window.
    pub vmax: f64,
}

impl PhaseGridSpec {
    /// Creates a spec.
    ///
    /// # Panics
    /// Panics for degenerate dimensions or an empty velocity window.
    pub fn new(nx: usize, nv: usize, vmin: f64, vmax: f64) -> Self {
        assert!(nx > 0 && nv > 0, "degenerate phase grid {nx}x{nv}");
        assert!(vmax > vmin, "empty velocity window [{vmin}, {vmax}]");
        Self { nx, nv, vmin, vmax }
    }

    /// Paper-scale grid: 64×64 over v ∈ [−0.8, 0.8] (wide enough for the
    /// ±0.3 training beams after saturation and the ±0.4 cold-beam test).
    pub fn paper() -> Self {
        Self::new(64, 64, -0.8, 0.8)
    }

    /// Reduced grid for the 1-core default experiments: 32×32.
    pub fn scaled() -> Self {
        Self::new(32, 32, -0.8, 0.8)
    }

    /// Tiny grid for smoke tests: 16×16.
    pub fn smoke() -> Self {
        Self::new(16, 16, -0.8, 0.8)
    }

    /// Total number of bins.
    pub fn cells(&self) -> usize {
        self.nx * self.nv
    }

    /// Velocity bin width.
    pub fn dv(&self) -> f64 {
        (self.vmax - self.vmin) / self.nv as f64
    }
}

/// Binning order for the phase-space histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BinningShape {
    /// Count each particle into its nearest bin — "we use the NGP
    /// interpolation scheme for the phase space binning" (paper §VII).
    #[default]
    Ngp,
    /// Bilinear (Cloud-in-Cell) spreading over the 4 surrounding bins —
    /// the higher-order variant §VII proposes.
    Cic,
}

/// Bins particles into a row-major `[nv, nx]` histogram (row 0 = lowest
/// velocity). `out` is overwritten. Weights sum to the particle count.
///
/// # Panics
/// Panics if `out` length differs from `spec.cells()`.
pub fn bin_phase_space(
    particles: &Particles,
    grid: &Grid1D,
    spec: &PhaseGridSpec,
    shape: BinningShape,
    out: &mut [f32],
) {
    assert_eq!(out.len(), spec.cells(), "phase-grid buffer size mismatch");
    out.fill(0.0);
    let inv_dx = spec.nx as f64 / grid.length();
    let inv_dv = 1.0 / spec.dv();
    let (nx, nv) = (spec.nx, spec.nv);

    match shape {
        BinningShape::Ngp => {
            for (&x, &v) in particles.x.iter().zip(&particles.v) {
                let ix = ((x * inv_dx) as usize).min(nx - 1);
                let fv = (v - spec.vmin) * inv_dv;
                let iv = (fv.max(0.0) as usize).min(nv - 1);
                out[iv * nx + ix] += 1.0;
            }
        }
        BinningShape::Cic => {
            for (&x, &v) in particles.x.iter().zip(&particles.v) {
                // Position: periodic CIC on bin centers.
                let fx = x * inv_dx - 0.5;
                let ix0 = fx.floor();
                let wx1 = fx - ix0;
                let ix0 = (ix0 as i64).rem_euclid(nx as i64) as usize;
                let ix1 = if ix0 + 1 == nx { 0 } else { ix0 + 1 };
                // Velocity: clamped CIC on bin centers.
                let fv = ((v - spec.vmin) * inv_dv - 0.5).clamp(0.0, (nv - 1) as f64);
                let iv0 = fv.floor() as usize;
                let wv1 = fv - iv0 as f64;
                let iv1 = (iv0 + 1).min(nv - 1);
                let (wx0, wv0) = (1.0 - wx1, 1.0 - wv1);
                out[iv0 * nx + ix0] += (wv0 * wx0) as f32;
                out[iv0 * nx + ix1] += (wv0 * wx1) as f32;
                out[iv1 * nx + ix0] += (wv1 * wx0) as f32;
                out[iv1 * nx + ix1] += (wv1 * wx1) as f32;
            }
        }
    }
}

/// Convenience wrapper returning a fresh histogram.
pub fn phase_space_histogram(
    particles: &Particles,
    grid: &Grid1D,
    spec: &PhaseGridSpec,
    shape: BinningShape,
) -> Vec<f32> {
    let mut out = vec![0.0f32; spec.cells()];
    bin_phase_space(particles, grid, spec, shape, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn particles(xv: &[(f64, f64)], grid: &Grid1D) -> Particles {
        let (x, v): (Vec<f64>, Vec<f64>) = xv.iter().copied().unzip();
        Particles::electrons_normalized(x, v, grid.length())
    }

    #[test]
    fn single_particle_ngp_lands_in_one_bin() {
        let grid = Grid1D::new(64, 2.0532);
        let spec = PhaseGridSpec::new(8, 8, -0.4, 0.4);
        // x in bin 2 of 8 (x/L = 0.3 → bin 2), v = 0.15 → (0.15+0.4)/0.1 = 5.5 → bin 5.
        let p = particles(&[(0.3 * grid.length(), 0.15)], &grid);
        let h = phase_space_histogram(&p, &grid, &spec, BinningShape::Ngp);
        assert_eq!(h.iter().filter(|&&c| c > 0.0).count(), 1);
        assert_eq!(h[5 * 8 + 2], 1.0);
    }

    #[test]
    fn out_of_window_velocities_clamp_to_edge_rows() {
        let grid = Grid1D::new(64, 2.0532);
        let spec = PhaseGridSpec::new(4, 4, -0.4, 0.4);
        let p = particles(&[(0.1, 5.0), (0.1, -5.0)], &grid);
        for shape in [BinningShape::Ngp, BinningShape::Cic] {
            let h = phase_space_histogram(&p, &grid, &spec, shape);
            let top_row: f32 = h[3 * 4..].iter().sum();
            let bottom_row: f32 = h[..4].iter().sum();
            assert!((top_row - 1.0).abs() < 1e-6, "{shape:?} top {top_row}");
            assert!(
                (bottom_row - 1.0).abs() < 1e-6,
                "{shape:?} bottom {bottom_row}"
            );
        }
    }

    #[test]
    fn cic_splits_between_bins() {
        let grid = Grid1D::new(64, 2.0);
        let spec = PhaseGridSpec::new(4, 4, -1.0, 1.0);
        // Exactly between x-bin centers 0 and 1 (centers at 0.25, 0.75 in
        // units of L/4 = 0.5): x = 0.5; v exactly on a bin center.
        let p = particles(&[(0.5, -0.75)], &grid); // v bin center 0: -0.75
        let h = phase_space_histogram(&p, &grid, &spec, BinningShape::Cic);
        assert!((h[0] - 0.5).abs() < 1e-6, "{h:?}");
        assert!((h[1] - 0.5).abs() < 1e-6, "{h:?}");
    }

    #[test]
    fn position_axis_wraps_periodically() {
        let grid = Grid1D::new(64, 2.0);
        let spec = PhaseGridSpec::new(4, 2, -1.0, 1.0);
        // x just left of the box end: CIC should wrap into bin 0.
        let p = particles(&[(1.999, 0.0)], &grid);
        let h = phase_space_histogram(&p, &grid, &spec, BinningShape::Cic);
        let col0: f32 = h[0] + h[4];
        let col3: f32 = h[3] + h[7];
        assert!(col0 > 0.2, "wrap weight missing: {h:?}");
        assert!(col3 > 0.2, "home-bin weight missing: {h:?}");
        assert!((col0 + col3 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn two_beams_make_two_rows() {
        let grid = Grid1D::new(64, 2.0532);
        let spec = PhaseGridSpec::scaled();
        let n = 1000;
        let xv: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                let x = (i as f64 + 0.5) / n as f64 * grid.length();
                (x, if i % 2 == 0 { 0.2 } else { -0.2 })
            })
            .collect();
        let p = particles(&xv, &grid);
        let h = phase_space_histogram(&p, &grid, &spec, BinningShape::Ngp);
        // Count nonempty rows.
        let nonempty_rows = (0..spec.nv)
            .filter(|&r| h[r * spec.nx..(r + 1) * spec.nx].iter().sum::<f32>() > 0.0)
            .count();
        assert_eq!(nonempty_rows, 2, "expected exactly the two beam rows");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Total histogram mass equals the particle count for both shapes,
        /// including out-of-window velocities (clamping, not dropping).
        #[test]
        fn mass_conservation(
            xv in proptest::collection::vec((0.0f64..2.05, -2.0f64..2.0), 1..256),
        ) {
            let grid = Grid1D::new(64, 2.0532);
            let spec = PhaseGridSpec::new(16, 12, -0.5, 0.5);
            let p = particles(&xv, &grid);
            for shape in [BinningShape::Ngp, BinningShape::Cic] {
                let h = phase_space_histogram(&p, &grid, &spec, shape);
                let mass: f32 = h.iter().sum();
                prop_assert!((mass - xv.len() as f32).abs() < 1e-3,
                    "{shape:?}: mass {mass} vs {}", xv.len());
                prop_assert!(h.iter().all(|&c| c >= 0.0));
            }
        }

        /// The x-marginal of the histogram matches an NGP charge-deposition
        /// style count (same bin edges) for NGP binning.
        #[test]
        fn x_marginal_counts_positions(
            xs in proptest::collection::vec(0.0f64..2.0, 1..128),
        ) {
            let grid = Grid1D::new(64, 2.0);
            let spec = PhaseGridSpec::new(8, 6, -1.0, 1.0);
            let xv: Vec<(f64, f64)> = xs.iter().map(|&x| (x, 0.0)).collect();
            let p = particles(&xv, &grid);
            let h = phase_space_histogram(&p, &grid, &spec, BinningShape::Ngp);
            for col in 0..8 {
                let marginal: f32 = (0..6).map(|r| h[r * 8 + col]).sum();
                let direct = xs.iter().filter(|&&x| {
                    ((x / 2.0 * 8.0) as usize).min(7) == col
                }).count() as f32;
                prop_assert!((marginal - direct).abs() < 1e-6);
            }
        }
    }
}

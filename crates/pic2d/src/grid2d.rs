//! The periodic two-dimensional field grid.

use crate::constants2d;

/// A uniform periodic grid on `[0, lx) × [0, ly)` with `nx × ny` cells.
///
/// Field quantities (ρ, Φ, Ex, Ey) live on the nodes
/// `(x_i, y_j) = (i·dx, j·dy)`; periodicity identifies node `nx` with node
/// 0 (same in `y`), so arrays hold `nx·ny` entries in row-major order with
/// `x` fastest: `a[iy * nx + ix]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid2D {
    nx: usize,
    ny: usize,
    lx: f64,
    ly: f64,
    dx: f64,
    dy: f64,
}

impl Grid2D {
    /// Creates a grid with `nx × ny` cells over `[0, lx) × [0, ly)`.
    ///
    /// # Panics
    /// Panics for zero cells or non-positive lengths.
    pub fn new(nx: usize, ny: usize, lx: f64, ly: f64) -> Self {
        assert!(
            nx > 0 && ny > 0,
            "grid needs at least one cell per dimension"
        );
        assert!(lx.is_finite() && lx > 0.0, "invalid box length lx = {lx}");
        assert!(ly.is_finite() && ly > 0.0, "invalid box length ly = {ly}");
        Self {
            nx,
            ny,
            lx,
            ly,
            dx: lx / nx as f64,
            dy: ly / ny as f64,
        }
    }

    /// The default extension grid: 32×32 cells over the paper's box length
    /// in both directions (see [`constants2d`]).
    pub fn default_square() -> Self {
        Self::new(
            constants2d::DEFAULT_NX,
            constants2d::DEFAULT_NY,
            constants2d::box_length_x(),
            constants2d::box_length_y(),
        )
    }

    /// Cells along `x`.
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Cells along `y`.
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Total node count `nx·ny`.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.nx * self.ny
    }

    /// Box length along `x`.
    #[inline]
    pub fn lx(&self) -> f64 {
        self.lx
    }

    /// Box length along `y`.
    #[inline]
    pub fn ly(&self) -> f64 {
        self.ly
    }

    /// Cell size along `x`.
    #[inline]
    pub fn dx(&self) -> f64 {
        self.dx
    }

    /// Cell size along `y`.
    #[inline]
    pub fn dy(&self) -> f64 {
        self.dy
    }

    /// Cell area `dx·dy`.
    #[inline]
    pub fn cell_area(&self) -> f64 {
        self.dx * self.dy
    }

    /// Box area `lx·ly`.
    #[inline]
    pub fn area(&self) -> f64 {
        self.lx * self.ly
    }

    /// Flat index of node `(ix, iy)` (both must already be in range).
    #[inline]
    pub fn index(&self, ix: usize, iy: usize) -> usize {
        debug_assert!(ix < self.nx && iy < self.ny);
        iy * self.nx + ix
    }

    /// Wavenumber of periodic mode `m` along `x`: `kx_m = 2π·m/lx`.
    #[inline]
    pub fn mode_wavenumber_x(&self, m: usize) -> f64 {
        2.0 * std::f64::consts::PI * m as f64 / self.lx
    }

    /// Wavenumber of periodic mode `m` along `y`: `ky_m = 2π·m/ly`.
    #[inline]
    pub fn mode_wavenumber_y(&self, m: usize) -> f64 {
        2.0 * std::f64::consts::PI * m as f64 / self.ly
    }

    /// Wraps a (possibly negative) node index into `[0, nx)`.
    #[inline]
    pub fn wrap_ix(&self, i: i64) -> usize {
        i.rem_euclid(self.nx as i64) as usize
    }

    /// Wraps a (possibly negative) node index into `[0, ny)`.
    #[inline]
    pub fn wrap_iy(&self, j: i64) -> usize {
        j.rem_euclid(self.ny as i64) as usize
    }

    /// Wraps a position into `[0, lx)`.
    #[inline]
    pub fn wrap_x(&self, x: f64) -> f64 {
        wrap_periodic(x, self.lx)
    }

    /// Wraps a position into `[0, ly)`.
    #[inline]
    pub fn wrap_y(&self, y: f64) -> f64 {
        wrap_periodic(y, self.ly)
    }

    /// Allocates a zeroed node array.
    pub fn zeros(&self) -> Vec<f64> {
        vec![0.0; self.nodes()]
    }
}

#[inline]
fn wrap_periodic(x: f64, length: f64) -> f64 {
    let wrapped = x.rem_euclid(length);
    // rem_euclid of a tiny negative number can land exactly on `length`.
    if wrapped >= length {
        0.0
    } else {
        wrapped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn default_grid_dimensions() {
        let g = Grid2D::default_square();
        assert_eq!(g.nx(), 32);
        assert_eq!(g.ny(), 32);
        assert!((g.lx() - 2.0532).abs() < 1e-3);
        assert!((g.dx() * 32.0 - g.lx()).abs() < 1e-12);
        assert_eq!(g.nodes(), 1024);
    }

    #[test]
    fn index_is_row_major_x_fastest() {
        let g = Grid2D::new(4, 3, 1.0, 1.0);
        assert_eq!(g.index(0, 0), 0);
        assert_eq!(g.index(3, 0), 3);
        assert_eq!(g.index(0, 1), 4);
        assert_eq!(g.index(3, 2), 11);
    }

    #[test]
    fn wrap_indices_handle_negatives() {
        let g = Grid2D::new(8, 4, 1.0, 1.0);
        assert_eq!(g.wrap_ix(-1), 7);
        assert_eq!(g.wrap_ix(8), 0);
        assert_eq!(g.wrap_iy(-1), 3);
        assert_eq!(g.wrap_iy(9), 1);
    }

    #[test]
    fn mode_wavenumbers_match_box() {
        let g = Grid2D::default_square();
        assert!((g.mode_wavenumber_x(1) - 3.06).abs() < 1e-12);
        assert!((g.mode_wavenumber_y(2) - 6.12).abs() < 1e-12);
    }

    #[test]
    fn cell_area_times_count_is_box_area() {
        let g = Grid2D::new(16, 8, 2.0, 1.0);
        assert!((g.cell_area() * g.nodes() as f64 - g.area()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_cells_rejected() {
        let _ = Grid2D::new(0, 4, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid box length")]
    fn negative_length_rejected() {
        let _ = Grid2D::new(4, 4, -1.0, 1.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn wrap_positions_land_in_box(x in -50.0f64..50.0, y in -50.0f64..50.0) {
            let g = Grid2D::new(8, 8, 2.0532, 1.7);
            prop_assert!((0.0..g.lx()).contains(&g.wrap_x(x)));
            prop_assert!((0.0..g.ly()).contains(&g.wrap_y(y)));
        }

        #[test]
        fn wrap_is_periodic(x in 0.0f64..2.0, shift in -4i32..4) {
            let g = Grid2D::new(8, 8, 2.0, 2.0);
            let w = g.wrap_x(x + shift as f64 * g.lx());
            let diff = (w - x).abs();
            prop_assert!(diff < 1e-9 || (g.lx() - diff) < 1e-9);
        }
    }
}

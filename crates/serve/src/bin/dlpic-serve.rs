//! The daemon binary: bind, (optionally) resume a spooled fleet, serve
//! until drained.
//!
//! ```sh
//! dlpic-serve --listen 127.0.0.1:0 --spool /var/spool/dlpic
//! dlpic-serve --resume /var/spool/dlpic          # continue after a crash
//! ```
//!
//! Prints `listening <addr>` on stdout once ready (with the real port
//! when an ephemeral one was requested) — scripts and the integration
//! tests parse that line.

use dlpic_serve::server::{ServeConfig, Server};

fn usage() -> ! {
    eprintln!(
        "usage: dlpic-serve [--listen HOST:PORT|unix:PATH] [--spool DIR] [--resume DIR]\n\
         \x20                  [--max-sessions N] [--spool-interval WAVES]"
    );
    std::process::exit(2);
}

fn main() {
    let mut config = ServeConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--listen" => config.listen = value("--listen"),
            "--spool" => config = config.spool(value("--spool")),
            "--resume" => config = config.resume(value("--resume")),
            "--max-sessions" => {
                config.max_sessions = value("--max-sessions").parse().unwrap_or_else(|_| usage())
            }
            "--spool-interval" => {
                config.spool_interval = value("--spool-interval")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage()
            }
        }
    }
    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("dlpic-serve: {e}");
            std::process::exit(1);
        }
    };
    println!("listening {}", server.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.wait();
}

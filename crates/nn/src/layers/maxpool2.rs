//! 2×2 max pooling with stride 2 — the "MaxPooling layer" after each
//! convolutional block of the paper's CNN (§IV.A).

use crate::layer::Layer;
use crate::tensor::Tensor;

/// 2×2/stride-2 max pooling on `[batch, ch, h, w]` tensors with even
/// spatial dimensions.
#[derive(Default)]
pub struct MaxPool2 {
    argmax: Vec<usize>,
    input_shape: Vec<usize>,
}

impl MaxPool2 {
    /// Creates a pooling layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MaxPool2 {
    /// Shared forward: writes the pooled output into `out` (resized in
    /// place), recording argmax indices when `training`.
    fn forward_core(&mut self, input: &Tensor, out: &mut Tensor, training: bool) {
        let shape = input.shape();
        assert_eq!(
            shape.len(),
            4,
            "maxpool expects [batch, ch, h, w], got {shape:?}"
        );
        let (batch, ch, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        assert!(
            h % 2 == 0 && w % 2 == 0,
            "maxpool needs even spatial dims, got {h}x{w}"
        );
        let (oh, ow) = (h / 2, w / 2);
        out.resize_in_place(&[batch, ch, oh, ow]);
        if training {
            self.argmax.clear();
            self.argmax.resize(out.len(), 0);
            self.input_shape.clear();
            self.input_shape.extend_from_slice(shape);
        }
        let data = input.data();
        let out_data = out.data_mut();
        for bc in 0..batch * ch {
            let plane = &data[bc * h * w..(bc + 1) * h * w];
            let out_plane = &mut out_data[bc * oh * ow..(bc + 1) * oh * ow];
            for oy in 0..oh {
                for ox in 0..ow {
                    let base = (2 * oy) * w + 2 * ox;
                    let candidates = [base, base + 1, base + w, base + w + 1];
                    let mut best = candidates[0];
                    let mut best_v = plane[best];
                    for &c in &candidates[1..] {
                        if plane[c] > best_v {
                            best_v = plane[c];
                            best = c;
                        }
                    }
                    out_plane[oy * ow + ox] = best_v;
                    if training {
                        self.argmax[bc * oh * ow + oy * ow + ox] = bc * h * w + best;
                    }
                }
            }
        }
    }
}

impl Layer for MaxPool2 {
    fn forward(&mut self, input: &Tensor, training: bool) -> Tensor {
        let mut out = Tensor::zeros(&[0]);
        self.forward_core(input, &mut out, training);
        out
    }

    fn infer_into(&mut self, input: &Tensor, out: &mut Tensor) {
        self.forward_core(input, out, false);
    }

    fn train_forward_into(&mut self, input: &Tensor, out: &mut Tensor) {
        self.forward_core(input, out, true);
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut grad_in = Tensor::zeros(&[0]);
        self.backward_into(grad_out, &mut grad_in);
        grad_in
    }

    fn backward_into(&mut self, grad_out: &Tensor, grad_in: &mut Tensor) {
        assert_eq!(
            grad_out.len(),
            self.argmax.len(),
            "backward before forward(training)"
        );
        grad_in.resize_in_place(&self.input_shape);
        let gi = grad_in.data_mut();
        gi.fill(0.0);
        for (&g, &src) in grad_out.data().iter().zip(&self.argmax) {
            gi[src] += g;
        }
    }

    fn name(&self) -> &'static str {
        "maxpool2"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_picks_block_maxima() {
        let mut pool = MaxPool2::new();
        #[rustfmt::skip]
        let x = Tensor::new(vec![
            1.0, 2.0,  3.0, 4.0,
            5.0, 6.0,  7.0, 8.0,

            9.0, 10.0, 11.0, 12.0,
            13.0, 14.0, 15.0, 16.0,
        ], &[1, 1, 4, 4]);
        let y = pool.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn backward_routes_gradient_to_argmax() {
        let mut pool = MaxPool2::new();
        let x = Tensor::new(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let _ = pool.forward(&x, true);
        let gx = pool.backward(&Tensor::new(vec![5.0], &[1, 1, 1, 1]));
        assert_eq!(gx.data(), &[0.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    fn ties_route_to_first_maximum() {
        let mut pool = MaxPool2::new();
        let x = Tensor::new(vec![7.0, 7.0, 7.0, 7.0], &[1, 1, 2, 2]);
        let _ = pool.forward(&x, true);
        let gx = pool.backward(&Tensor::new(vec![1.0], &[1, 1, 1, 1]));
        assert_eq!(gx.data(), &[1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn channels_pool_independently() {
        let mut pool = MaxPool2::new();
        let x = Tensor::new(
            vec![
                1.0, 0.0, 0.0, 0.0, // ch 0
                0.0, 0.0, 0.0, 9.0, // ch 1
            ],
            &[1, 2, 2, 2],
        );
        let y = pool.forward(&x, false);
        assert_eq!(y.data(), &[1.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "even spatial dims")]
    fn odd_dims_rejected() {
        let mut pool = MaxPool2::new();
        let _ = pool.forward(&Tensor::zeros(&[1, 1, 3, 4]), false);
    }
}

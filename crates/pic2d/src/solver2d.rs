//! The 2-D field-solver abstraction — the seam where a DL 2-D field
//! solver plugs in, mirroring the 1-D `FieldSolver` trait.

use crate::deposit2d::{add_uniform_background, deposit_charge_with_scratch};
use crate::efield2d::efield_from_phi;
use crate::grid2d::Grid2D;
use crate::particles2d::Particles2D;
use crate::poisson2d::{make_solver, Poisson2DKind, Poisson2DSolver};
use dlpic_pic::deposit::DepositScratch;
use dlpic_pic::shape::Shape;

/// Computes the node electric field from the 2-D particle state.
pub trait FieldSolver2D: Send {
    /// Fills `ex`/`ey` (length = grid nodes) from the particle state.
    fn solve(&mut self, particles: &Particles2D, grid: &Grid2D, ex: &mut [f64], ey: &mut [f64]);

    /// Human-readable name for logs/benchmarks.
    fn name(&self) -> &'static str;

    /// The phase-split view of this solver, when its `solve` decomposes
    /// into prepare-input / infer / apply-output stages an external
    /// driver can batch across many simulations (the DL solver). `None`
    /// (the default) for monolithic solvers.
    fn phased(&mut self) -> Option<&mut dyn PhasedFieldSolver2D> {
        None
    }

    /// Identity and size of this solver's model-weight allocation, when
    /// it has one: `(id, bytes)`, with the same contract as
    /// `dlpic_pic::solver::FieldSolver::weight_storage` — equal ids mean
    /// one shared allocation, and fleet accounting charges each distinct
    /// id once. `None` (the default) for solvers without model weights.
    fn weight_storage(&self) -> Option<(usize, usize)> {
        None
    }
}

/// The 2-D analogue of `dlpic_pic::solver::PhasedFieldSolver`: a field
/// solve split into prepare / batched-infer / apply phases, with the same
/// bit-identity contract (prepare + 1-row infer + apply ≡ `solve`; row
/// `i` of an `m`-row infer ≡ a 1-row infer of that row).
pub trait PhasedFieldSolver2D {
    /// Width of one inference input row.
    fn input_len(&self) -> usize;

    /// Width of one inference output row (`[Ex | Ey]` stacked).
    fn output_len(&self) -> usize;

    /// Phase 1: bins/normalizes the particle state into `dst`.
    fn prepare_input(&mut self, particles: &Particles2D, grid: &Grid2D, dst: &mut [f32]);

    /// Phase 2: one inference over `rows` stacked input rows.
    fn infer_batch(&mut self, input: &[f32], rows: usize, output: &mut [f32]);

    /// Phase 3: writes one stacked `[Ex | Ey]` output row onto the grid.
    fn apply_output(&mut self, row: &[f32], ex: &mut [f64], ey: &mut [f64]);
}

/// The traditional 2-D field solver: deposit ρ, add the neutralizing ion
/// background, solve Poisson for Φ, take `E = −∇Φ`.
pub struct TraditionalSolver2D {
    shape: Shape,
    poisson: Box<dyn Poisson2DSolver>,
    background: f64,
    rho: Vec<f64>,
    phi: Vec<f64>,
    deposit_scratch: DepositScratch,
}

impl TraditionalSolver2D {
    /// Creates a solver with the given deposition shape and Poisson
    /// backend; `background` is the uniform ion charge density.
    pub fn new(shape: Shape, kind: Poisson2DKind, background: f64) -> Self {
        Self {
            shape,
            poisson: make_solver(kind),
            background,
            rho: Vec::new(),
            phi: Vec::new(),
            deposit_scratch: DepositScratch::new(),
        }
    }

    /// The extension default: CIC deposition, spectral Poisson, unit ion
    /// background.
    pub fn default_config() -> Self {
        Self::new(Shape::Cic, Poisson2DKind::Spectral, 1.0)
    }

    /// Most recent charge density (valid after a `solve`).
    pub fn rho(&self) -> &[f64] {
        &self.rho
    }

    /// Most recent potential (valid after a `solve`).
    pub fn phi(&self) -> &[f64] {
        &self.phi
    }

    /// The deposition shape this solver uses.
    pub fn shape(&self) -> Shape {
        self.shape
    }
}

impl FieldSolver2D for TraditionalSolver2D {
    fn solve(&mut self, particles: &Particles2D, grid: &Grid2D, ex: &mut [f64], ey: &mut [f64]) {
        let n = grid.nodes();
        assert_eq!(ex.len(), n, "ex length mismatch");
        assert_eq!(ey.len(), n, "ey length mismatch");
        self.rho.clear();
        self.rho.resize(n, 0.0);
        self.phi.clear();
        self.phi.resize(n, 0.0);
        deposit_charge_with_scratch(
            particles,
            grid,
            self.shape,
            &mut self.rho,
            &mut self.deposit_scratch,
        );
        add_uniform_background(&mut self.rho, self.background);
        self.poisson.solve(grid, &self.rho, &mut self.phi);
        efield_from_phi(grid, &self.phi, ex, ey);
    }

    fn name(&self) -> &'static str {
        "traditional-2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A quiet electron lattice displaced sinusoidally along `x` produces
    /// the Gauss-law field `Ex = A·lx·sin(kx·x)`, independent of `y`
    /// (same derivation as the 1-D crate's test, per unit ρ₀ = −1).
    #[test]
    fn displaced_lattice_field_matches_gauss_law() {
        let grid = Grid2D::new(32, 32, 2.0532, 2.0532);
        let per_axis = 192;
        let amp = 1e-3;
        let k = grid.mode_wavenumber_x(1);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for j in 0..per_axis {
            for i in 0..per_axis {
                let x0 = (i as f64 + 0.5) / per_axis as f64 * grid.lx();
                let y0 = (j as f64 + 0.5) / per_axis as f64 * grid.ly();
                xs.push(grid.wrap_x(x0 + amp * grid.lx() * (k * x0).sin()));
                ys.push(y0);
            }
        }
        let n = xs.len();
        let p = Particles2D::electrons_normalized(xs, ys, vec![0.0; n], vec![0.0; n], grid.area());
        let mut solver = TraditionalSolver2D::default_config();
        let mut ex = grid.zeros();
        let mut ey = grid.zeros();
        solver.solve(&p, &grid, &mut ex, &mut ey);

        let expect = amp * grid.lx();
        let measured = crate::diagnostics2d::field_mode_amplitude(&ex, &grid, 1, 0);
        assert!(
            (measured - expect).abs() / expect < 0.02,
            "Ex(1,0) = {measured}, expected ≈ {expect}"
        );
        // No y-dynamics: Ey stays at noise level.
        let ey_peak = ey.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(ey_peak < 0.05 * expect, "Ey peak {ey_peak}");
    }

    #[test]
    fn uniform_plasma_has_no_field() {
        let grid = Grid2D::new(16, 16, 2.0, 2.0);
        let per_axis = 64;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for j in 0..per_axis {
            for i in 0..per_axis {
                xs.push((i as f64 + 0.5) / per_axis as f64 * grid.lx());
                ys.push((j as f64 + 0.5) / per_axis as f64 * grid.ly());
            }
        }
        let n = xs.len();
        let p = Particles2D::electrons_normalized(xs, ys, vec![0.0; n], vec![0.0; n], grid.area());
        for kind in [Poisson2DKind::Spectral, Poisson2DKind::Sor] {
            let mut solver = TraditionalSolver2D::new(Shape::Cic, kind, 1.0);
            let mut ex = grid.zeros();
            let mut ey = grid.zeros();
            solver.solve(&p, &grid, &mut ex, &mut ey);
            let peak = ex
                .iter()
                .chain(ey.iter())
                .fold(0.0f64, |m, v| m.max(v.abs()));
            assert!(peak < 1e-9, "{kind:?}: residual field {peak}");
        }
    }

    #[test]
    fn solver_exposes_rho_and_phi() {
        let grid = Grid2D::new(8, 8, 2.0, 2.0);
        let n = 1024;
        let per_axis = 32;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for j in 0..per_axis {
            for i in 0..per_axis {
                xs.push((i as f64 + 0.5) / per_axis as f64 * grid.lx());
                ys.push((j as f64 + 0.5) / per_axis as f64 * grid.ly());
            }
        }
        let p = Particles2D::electrons_normalized(xs, ys, vec![0.0; n], vec![0.0; n], grid.area());
        let mut solver = TraditionalSolver2D::default_config();
        let mut ex = grid.zeros();
        let mut ey = grid.zeros();
        solver.solve(&p, &grid, &mut ex, &mut ey);
        assert_eq!(solver.rho().len(), 64);
        assert_eq!(solver.phi().len(), 64);
        assert!(solver.rho().iter().all(|r| r.abs() < 1e-9));
    }

    #[test]
    fn spectral_and_sor_fields_agree() {
        let grid = Grid2D::new(16, 16, 2.0, 2.0);
        // Mildly perturbed lattice.
        let per_axis = 64;
        let k = grid.mode_wavenumber_x(1);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for j in 0..per_axis {
            for i in 0..per_axis {
                let x0 = (i as f64 + 0.5) / per_axis as f64 * grid.lx();
                xs.push(grid.wrap_x(x0 + 2e-3 * grid.lx() * (k * x0).sin()));
                ys.push((j as f64 + 0.5) / per_axis as f64 * grid.ly());
            }
        }
        let n = xs.len();
        let p = Particles2D::electrons_normalized(xs, ys, vec![0.0; n], vec![0.0; n], grid.area());
        let mut ex_s = grid.zeros();
        let mut ey_s = grid.zeros();
        let mut ex_f = grid.zeros();
        let mut ey_f = grid.zeros();
        TraditionalSolver2D::new(Shape::Cic, Poisson2DKind::Spectral, 1.0)
            .solve(&p, &grid, &mut ex_s, &mut ey_s);
        TraditionalSolver2D::new(Shape::Cic, Poisson2DKind::Sor, 1.0)
            .solve(&p, &grid, &mut ex_f, &mut ey_f);
        let scale = ex_s.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        for (a, b) in ex_s.iter().zip(&ex_f) {
            assert!((a - b).abs() < 0.02 * scale + 1e-12);
        }
    }
}

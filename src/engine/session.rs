//! Incremental sessions: the engine's stepping primitive.
//!
//! [`Engine::run`](super::Engine::run) is a one-shot convenience; the real
//! primitive is [`Engine::start`](super::Engine::start), which builds the
//! solver stack for a scenario×backend pairing and hands back a
//! [`Session`] that the caller advances one step at a time. Sessions make
//! the paper's comparison methodology an API instead of a script:
//!
//! * **step** — [`Session::step`] advances the solver one `dt` and returns
//!   the diagnostics [`Sample`] recorded for the step's starting time
//!   level (the same `n + 1`-samples convention every solver crate uses).
//! * **stop early** — [`Session::run_until`] steps until a predicate on
//!   the live sample fires (growth saturated, energy drifted, budget
//!   spent); [`Session::finish`] yields a [`RunSummary`] for however many
//!   steps actually ran.
//! * **checkpoint / resume** — [`Session::checkpoint`] serializes the
//!   mutable solver state (particles, fields, distribution function,
//!   per-rank slabs) plus the recorded history through the engine's JSON
//!   layer; [`Engine::resume`](super::Engine::resume) rebuilds the stack
//!   from the embedded spec and continues. Finite `f64` state round-trips
//!   bit-exactly, so a resumed run reproduces the uninterrupted
//!   trajectory.
//! * **lockstep** — two sessions on the same spec advance side by side;
//!   [`super::compare::lockstep`] packages the per-step residuals.
//!
//! Backends plug in through the [`BackendSession`] trait; one
//! implementation per solver family lives in this module.

use super::backend::Backend;
use super::error::EngineError;
use super::health::{RunHealth, SessionFault};
use super::json::{obj, Json};
use super::observer::{EnergyHistory, Observer, PhaseSpace, RunSummary, Sample};
use super::spec::{LoadingSpec, ScenarioSpec};
use crate::core::presets::Scale;
use crate::ddecomp::sim::{DistConfig, DistSimulation, DistState, RankStateSnapshot};
use crate::ddecomp::strategy::GatherScatter;
use crate::pic::history::SampleRow;
use crate::pic::simulation::{PicConfig, Simulation};
use crate::pic::solver::FieldSolver;
use crate::pic::Shape;
use crate::pic2d::simulation2d::Pic2DConfig;
use crate::pic2d::solver2d::FieldSolver2D;
use crate::pic2d::Simulation2D;
use crate::vlasov::{VlasovConfig, VlasovSolver};

/// Smallest thermal spread the continuum backend accepts: below this the
/// velocity grid cannot resolve the Maxwellian and the solver would have
/// to silently alter the spec's physics. `Backend::Vlasov::supports`
/// enforces it.
pub(crate) const VLASOV_MIN_VTH: f64 = 0.01;

/// Velocity-space resolution of the continuum backend per scale.
fn vlasov_nv(scale: Scale) -> usize {
    match scale {
        Scale::Smoke => 64,
        Scale::Scaled => 256,
        Scale::Paper => 512,
    }
}

/// One backend's incremental driver: owns the solver stack of a running
/// scenario and advances it step by step. Implementations adapt each
/// solver family's stepping and diagnostics conventions to the engine's
/// unified [`Sample`] shape; [`Session`] wraps one of these with history
/// recording and observer fan-out.
///
/// `Send` because the ensemble scheduler distributes sessions across
/// worker threads (each session is owned by exactly one worker at a
/// time).
pub trait BackendSession: Send {
    /// Advances one step and returns the diagnostics row recorded for the
    /// step's *starting* time level (the solver crates' convention).
    fn step(&mut self) -> Sample;

    /// Instantaneous diagnostics of the current state (the row
    /// [`Self::finish`] would record), without advancing or recording.
    fn sample(&mut self) -> Sample;

    /// Records the final snapshot row, completing the `n + 1`-samples
    /// convention, and returns it.
    fn finish(&mut self) -> Sample;

    /// Current simulation time.
    fn time(&self) -> f64;

    /// Steps performed so far (including any before a restore).
    fn steps_done(&self) -> usize;

    /// Final `(x, vx)` phase space; `None` for the continuum backend.
    fn phase_space(&self) -> Option<PhaseSpace>;

    /// Serializes the mutable solver state (everything [`Self::restore`]
    /// needs to continue this run in a freshly built stack).
    fn state_checkpoint(&self) -> Json;

    /// Overwrites the mutable solver state with a checkpointed snapshot.
    fn restore(&mut self, state: &Json) -> Result<(), EngineError>;

    /// Backend-specific summary extras (e.g. communication volume).
    fn extras(&self) -> Vec<(String, f64)> {
        Vec::new()
    }

    /// Identity and size of this session's field-solver weight
    /// allocation: `Some((id, bytes))` where equal `id`s mean the *same*
    /// shared allocation (so fleet accounting charges `bytes` once per
    /// distinct id), `None` for model-free backends. The id is only
    /// meaningful while the session is alive and unmoved.
    fn weight_storage(&self) -> Option<(usize, usize)> {
        None
    }

    // -----------------------------------------------------------------
    // Batched-inference phase hooks (the ensemble execution path).
    //
    // A session whose field solve routes through a phase-split solver
    // (`Some` from `infer_shape`) exposes its step as three phases so an
    // external scheduler can gather the inference inputs of many
    // sessions, run ONE batched inference, and scatter the outputs back:
    //
    //   let sample = s.step_prepare(&mut batch[r*in..][..in]);
    //   leader.infer_batch(&batch, rows, &mut out);   // any cohort member
    //   s.step_apply(&out[r*out_w..][..out_w]);
    //
    // prepare → infer(1 row) → apply is bit-identical to `step` (the
    // solvers route their own solve through the same phases), and row
    // `i` of a batched inference is bit-identical to a 1-row inference
    // (row-stable GEMM kernels), so ensemble histories reproduce solo
    // runs exactly. The defaults make every session non-batchable.
    // -----------------------------------------------------------------

    /// `(input, output)` row widths of the batched-inference phases, or
    /// `None` when this session's solve cannot be split (non-DL
    /// backends).
    fn infer_shape(&mut self) -> Option<(usize, usize)> {
        None
    }

    /// Phase 1 of a split step: everything [`Self::step`] does before
    /// the field-solve inference (diagnostics, particle push, history
    /// row), plus the inference-input preparation into `input`. Returns
    /// the step's diagnostics row, exactly as [`Self::step`] would.
    ///
    /// Must be followed by [`Self::step_apply`] before any other
    /// stepping call. Only valid when [`Self::infer_shape`] is `Some`.
    fn step_prepare(&mut self, _input: &mut [f32]) -> Sample {
        unreachable!("step_prepare on a session without batched inference")
    }

    /// Phase 2: one inference over `rows` stacked input rows. Callable on
    /// any cohort member; the ensemble runs the whole batch through one
    /// session's solver (identical network parameters by construction).
    fn infer_batch(&mut self, _input: &[f32], _rows: usize, _output: &mut [f32]) {
        unreachable!("infer_batch on a session without batched inference")
    }

    /// Phase 3: applies this session's inference-output row and
    /// completes the step begun by [`Self::step_prepare`].
    fn step_apply(&mut self, _output: &[f32]) {
        unreachable!("step_apply on a session without batched inference")
    }
}

/// Converts a solver-crate history row into the engine sample for `step`.
fn sample_from_row(step: usize, row: SampleRow) -> Sample {
    Sample {
        step,
        time: row.time,
        kinetic: row.kinetic,
        field: row.field,
        momentum: row.momentum,
        mode_amps: row.mode_amps,
    }
}

fn bad_checkpoint(what: impl Into<String>) -> EngineError {
    EngineError::Checkpoint { what: what.into() }
}

/// Guards resume against a different field solver than the one the
/// checkpoint was taken with — most importantly a DL run resumed in an
/// engine with no model configured, which would otherwise *silently*
/// continue on the untrained fallback and change the physics. The check
/// is by solver name (`"traditional"`, `"dl-mlp"`, `"dl-mlp-untrained"`,
/// …); supplying the *same kind* of model with different trained
/// parameters remains the caller's responsibility.
fn check_solver_name(state: &Json, built: &str) -> Result<(), EngineError> {
    let recorded = state.field("solver")?.as_str()?;
    if recorded != built {
        return Err(bad_checkpoint(format!(
            "checkpoint was taken with field solver `{recorded}` but this engine builds \
             `{built}`; configure the engine with the matching model before resuming"
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// 1-D particle backends (traditional and DL share the session; only the
// injected field solver differs).
// ---------------------------------------------------------------------

/// Session of the 1-D PIC backends (`Traditional1D` and `Dl1D`).
pub struct Pic1DSession {
    sim: Simulation,
}

impl Pic1DSession {
    pub(crate) fn new(spec: &ScenarioSpec, solver: Box<dyn FieldSolver>, gather: Shape) -> Self {
        let grid = spec.grid_1d();
        // The general multi-beam loading covers every 1-D species; the
        // dedicated two-stream builder is kept for the species it can
        // express so existing runs reproduce bit-identically.
        let particles = match spec.two_stream_init() {
            Some(init) => init.build(&grid),
            None => spec.multi_beam_init().build(&grid),
        };
        let cfg = PicConfig {
            grid,
            init: None,
            dt: spec.dt,
            n_steps: spec.n_steps,
            gather_shape: gather,
            tracked_modes: spec.tracked_modes.clone(),
        };
        Self {
            sim: Simulation::from_particles(cfg, particles, solver),
        }
    }
}

impl BackendSession for Pic1DSession {
    fn step(&mut self) -> Sample {
        self.sim.step();
        let row = self.sim.history().last_sample().expect("row just recorded");
        sample_from_row(self.sim.steps_done() - 1, row)
    }

    fn sample(&mut self) -> Sample {
        let report = crate::pic::diagnostics::instantaneous_report(
            self.sim.particles(),
            self.sim.grid(),
            self.sim.efield(),
        );
        Sample {
            step: self.sim.steps_done(),
            time: self.sim.time(),
            kinetic: report.kinetic,
            field: report.field,
            momentum: report.momentum,
            mode_amps: self
                .sim
                .config()
                .tracked_modes
                .iter()
                .map(|&m| crate::pic::diagnostics::field_mode_amplitude(self.sim.efield(), m))
                .collect(),
        }
    }

    fn finish(&mut self) -> Sample {
        self.sim.finish();
        let row = self.sim.history().last_sample().expect("row just recorded");
        sample_from_row(self.sim.steps_done(), row)
    }

    fn time(&self) -> f64 {
        self.sim.time()
    }

    fn steps_done(&self) -> usize {
        self.sim.steps_done()
    }

    fn phase_space(&self) -> Option<PhaseSpace> {
        let (x, v) = self.sim.phase_space();
        Some(PhaseSpace {
            x: x.to_vec(),
            v: v.to_vec(),
        })
    }

    fn weight_storage(&self) -> Option<(usize, usize)> {
        self.sim.solver().weight_storage()
    }

    fn state_checkpoint(&self) -> Json {
        let (x, v) = self.sim.phase_space();
        obj(vec![
            ("solver", Json::Str(self.sim.solver_name().into())),
            ("x", Json::num_arr(x)),
            ("v", Json::num_arr(v)),
            ("e", Json::num_arr(self.sim.efield())),
            ("time", Json::Num(self.sim.time())),
            ("steps_done", Json::Num(self.sim.steps_done() as f64)),
        ])
    }

    fn infer_shape(&mut self) -> Option<(usize, usize)> {
        let (solver, _, _, _) = self.sim.split_for_solve();
        solver.phased().map(|p| (p.input_len(), p.output_len()))
    }

    fn step_prepare(&mut self, input: &mut [f32]) -> Sample {
        self.sim.step_pre_solve();
        let (solver, particles, grid, _e) = self.sim.split_for_solve();
        solver
            .phased()
            .expect("step_prepare on a non-phased solver")
            .prepare_input(particles, grid, input);
        let row = self.sim.history().last_sample().expect("row just recorded");
        // step_post_solve has not run yet, so steps_done is still the
        // step index `step` would report as `steps_done() - 1`.
        sample_from_row(self.sim.steps_done(), row)
    }

    fn infer_batch(&mut self, input: &[f32], rows: usize, output: &mut [f32]) {
        let (solver, _, _, _) = self.sim.split_for_solve();
        solver
            .phased()
            .expect("infer_batch on a non-phased solver")
            .infer_batch(input, rows, output);
    }

    fn step_apply(&mut self, output: &[f32]) {
        let (solver, _, _, e) = self.sim.split_for_solve();
        solver
            .phased()
            .expect("step_apply on a non-phased solver")
            .apply_output(output, e);
        self.sim.step_post_solve();
    }

    fn restore(&mut self, state: &Json) -> Result<(), EngineError> {
        check_solver_name(state, self.sim.solver_name())?;
        let x = state.field("x")?.as_f64_vec()?;
        let v = state.field("v")?.as_f64_vec()?;
        let e = state.field("e")?.as_f64_vec()?;
        let n = self.sim.particles().len();
        if x.len() != n || v.len() != n {
            return Err(bad_checkpoint(format!(
                "1-D state holds {} particles but the spec loads {n}",
                x.len()
            )));
        }
        if e.len() != self.sim.efield().len() {
            return Err(bad_checkpoint(format!(
                "1-D field has {} nodes but the grid has {}",
                e.len(),
                self.sim.efield().len()
            )));
        }
        self.sim.restore_state(
            &x,
            &v,
            &e,
            state.field("time")?.as_f64()?,
            state.field("steps_done")?.as_usize()?,
        );
        Ok(())
    }
}

// ---------------------------------------------------------------------
// 2-D particle backends.
// ---------------------------------------------------------------------

/// Session of the 2-D PIC backends (`Traditional2D` and `Dl2D`). Tracked
/// mode `m` maps to the `(m, 0)` mode of `Ex` — the family carrying the
/// 1-D physics.
pub struct Pic2DSession {
    sim: Simulation2D,
}

impl Pic2DSession {
    pub(crate) fn new(spec: &ScenarioSpec, solver: Box<dyn FieldSolver2D>) -> Self {
        let init = spec.init_2d().expect("compatibility checked");
        let cfg = Pic2DConfig {
            grid: spec.grid_2d(),
            init,
            dt: spec.dt,
            n_steps: spec.n_steps,
            gather_shape: Shape::Cic,
            tracked_modes: spec.tracked_modes.iter().map(|&m| (m, 0)).collect(),
        };
        Self {
            sim: Simulation2D::new(cfg, solver),
        }
    }
}

impl BackendSession for Pic2DSession {
    fn step(&mut self) -> Sample {
        self.sim.step();
        let row = self.sim.history().last_sample().expect("row just recorded");
        sample_from_row(self.sim.steps_done() - 1, row)
    }

    fn sample(&mut self) -> Sample {
        let grid = &self.sim.config().grid;
        let report = crate::pic2d::diagnostics2d::instantaneous_report(
            self.sim.particles(),
            grid,
            self.sim.ex(),
            self.sim.ey(),
        );
        Sample {
            step: self.sim.steps_done(),
            time: self.sim.time(),
            kinetic: report.kinetic,
            field: report.field,
            momentum: report.momentum_x,
            mode_amps: self
                .sim
                .config()
                .tracked_modes
                .iter()
                .map(|&(mx, my)| {
                    crate::pic2d::diagnostics2d::field_mode_amplitude(self.sim.ex(), grid, mx, my)
                })
                .collect(),
        }
    }

    fn finish(&mut self) -> Sample {
        self.sim.finish();
        let row = self.sim.history().last_sample().expect("row just recorded");
        sample_from_row(self.sim.steps_done(), row)
    }

    fn time(&self) -> f64 {
        self.sim.time()
    }

    fn steps_done(&self) -> usize {
        self.sim.steps_done()
    }

    fn phase_space(&self) -> Option<PhaseSpace> {
        let p = self.sim.particles();
        Some(PhaseSpace {
            x: p.x.clone(),
            v: p.vx.clone(),
        })
    }

    fn weight_storage(&self) -> Option<(usize, usize)> {
        self.sim.solver().weight_storage()
    }

    fn state_checkpoint(&self) -> Json {
        let p = self.sim.particles();
        obj(vec![
            ("solver", Json::Str(self.sim.solver().name().into())),
            ("x", Json::num_arr(&p.x)),
            ("y", Json::num_arr(&p.y)),
            ("vx", Json::num_arr(&p.vx)),
            ("vy", Json::num_arr(&p.vy)),
            ("ex", Json::num_arr(self.sim.ex())),
            ("ey", Json::num_arr(self.sim.ey())),
            ("time", Json::Num(self.sim.time())),
            ("steps_done", Json::Num(self.sim.steps_done() as f64)),
        ])
    }

    fn infer_shape(&mut self) -> Option<(usize, usize)> {
        let (solver, _, _, _, _) = self.sim.split_for_solve();
        solver.phased().map(|p| (p.input_len(), p.output_len()))
    }

    fn step_prepare(&mut self, input: &mut [f32]) -> Sample {
        self.sim.step_pre_solve();
        let (solver, particles, grid, _ex, _ey) = self.sim.split_for_solve();
        solver
            .phased()
            .expect("step_prepare on a non-phased solver")
            .prepare_input(particles, grid, input);
        let row = self.sim.history().last_sample().expect("row just recorded");
        sample_from_row(self.sim.steps_done(), row)
    }

    fn infer_batch(&mut self, input: &[f32], rows: usize, output: &mut [f32]) {
        let (solver, _, _, _, _) = self.sim.split_for_solve();
        solver
            .phased()
            .expect("infer_batch on a non-phased solver")
            .infer_batch(input, rows, output);
    }

    fn step_apply(&mut self, output: &[f32]) {
        let (solver, _, _, ex, ey) = self.sim.split_for_solve();
        solver
            .phased()
            .expect("step_apply on a non-phased solver")
            .apply_output(output, ex, ey);
        self.sim.step_post_solve();
    }

    fn restore(&mut self, state: &Json) -> Result<(), EngineError> {
        check_solver_name(state, self.sim.solver().name())?;
        let x = state.field("x")?.as_f64_vec()?;
        let y = state.field("y")?.as_f64_vec()?;
        let vx = state.field("vx")?.as_f64_vec()?;
        let vy = state.field("vy")?.as_f64_vec()?;
        let ex = state.field("ex")?.as_f64_vec()?;
        let ey = state.field("ey")?.as_f64_vec()?;
        let n = self.sim.particles().len();
        if x.len() != n || y.len() != n || vx.len() != n || vy.len() != n {
            return Err(bad_checkpoint(format!(
                "2-D state holds {} particles but the spec loads {n}",
                x.len()
            )));
        }
        let nodes = self.sim.ex().len();
        if ex.len() != nodes || ey.len() != nodes {
            return Err(bad_checkpoint(format!(
                "2-D fields have {}/{} nodes but the grid has {nodes}",
                ex.len(),
                ey.len()
            )));
        }
        self.sim.restore_state(
            &x,
            &y,
            &vx,
            &vy,
            &ex,
            &ey,
            state.field("time")?.as_f64()?,
            state.field("steps_done")?.as_usize()?,
        );
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Continuum Vlasov–Poisson backend.
// ---------------------------------------------------------------------

/// Session of the continuum `Vlasov` backend. Diagnostics are recorded at
/// the *start* of each step plus a final snapshot, matching the PIC
/// sampling convention.
pub struct VlasovSession {
    solver: VlasovSolver,
    tracked_modes: Vec<usize>,
    steps_done: usize,
}

impl VlasovSession {
    pub(crate) fn new(spec: &ScenarioSpec) -> Self {
        // `Backend::Vlasov::supports` has already rejected vth below
        // VLASOV_MIN_VTH and quiet loadings on modes other than 1, so the
        // spec's physics runs unmodified.
        let (v0, vth) = spec.species.as_two_stream().expect("compatibility checked");
        // A quiet PIC loading displaces by ξ = A·L·sin(kx), i.e. a relative
        // density perturbation ε = A·L·k = 2π·A on mode 1, which is the
        // mode the continuum solver seeds.
        let perturbation = match spec.loading {
            LoadingSpec::Quiet { mode: 1, amplitude } => {
                (2.0 * std::f64::consts::PI * amplitude).abs().max(1e-9)
            }
            _ => 1e-3,
        };
        let cfg = VlasovConfig {
            grid: spec.grid_1d(),
            nv: vlasov_nv(spec.scale),
            vmax: (v0 + 6.0 * vth).max(0.8),
            dt: spec.dt,
            v0,
            vth,
            perturbation,
        };
        Self {
            solver: VlasovSolver::new(cfg),
            tracked_modes: spec.tracked_modes.clone(),
            steps_done: 0,
        }
    }

    fn snapshot(&self) -> Sample {
        Sample {
            step: self.steps_done,
            time: self.solver.time(),
            kinetic: self.solver.kinetic_energy(),
            field: self.solver.field_energy(),
            momentum: self.solver.momentum(),
            mode_amps: self
                .tracked_modes
                .iter()
                .map(|&m| self.solver.field_mode(m))
                .collect(),
        }
    }
}

impl BackendSession for VlasovSession {
    fn step(&mut self) -> Sample {
        let sample = self.snapshot();
        self.solver.step();
        self.steps_done += 1;
        sample
    }

    fn sample(&mut self) -> Sample {
        self.snapshot()
    }

    fn finish(&mut self) -> Sample {
        self.snapshot()
    }

    fn time(&self) -> f64 {
        self.solver.time()
    }

    fn steps_done(&self) -> usize {
        self.steps_done
    }

    fn phase_space(&self) -> Option<PhaseSpace> {
        None
    }

    fn state_checkpoint(&self) -> Json {
        obj(vec![
            ("f", Json::num_arr(self.solver.distribution())),
            ("time", Json::Num(self.solver.time())),
            ("steps_done", Json::Num(self.steps_done as f64)),
        ])
    }

    fn restore(&mut self, state: &Json) -> Result<(), EngineError> {
        let f = state.field("f")?.as_f64_vec()?;
        if f.len() != self.solver.distribution().len() {
            return Err(bad_checkpoint(format!(
                "distribution has {} phase cells but the solver grid has {}",
                f.len(),
                self.solver.distribution().len()
            )));
        }
        self.solver
            .restore_state(&f, state.field("time")?.as_f64()?);
        self.steps_done = state.field("steps_done")?.as_usize()?;
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Distributed 1-D backend.
// ---------------------------------------------------------------------

/// Session of the domain-decomposed `Ddecomp` backend. Reports
/// communication volume and migration counts as summary extras.
pub struct DdecompSession {
    sim: DistSimulation,
    tracked_modes: Vec<usize>,
    n_ranks: usize,
}

impl DdecompSession {
    pub(crate) fn new(
        spec: &ScenarioSpec,
        n_ranks: usize,
        numerics: super::runner::Numerics1D,
    ) -> Result<Self, EngineError> {
        // The distributed gather/scatter strategy solves Poisson with the
        // finite-difference backend only; honouring part of a numerics
        // override while ignoring the rest would produce apples-to-oranges
        // comparisons, so reject instead.
        if numerics.poisson != crate::pic::solver::PoissonKind::FiniteDifference {
            return Err(EngineError::Incompatible {
                scenario: spec.name.clone(),
                backend: "ddecomp",
                why: format!(
                    "the distributed solve supports only finite-difference Poisson (asked for {:?})",
                    numerics.poisson
                ),
            });
        }
        let init = spec.two_stream_init().expect("compatibility checked");
        let cfg = DistConfig {
            grid: spec.grid_1d(),
            init,
            dt: spec.dt,
            n_steps: spec.n_steps,
            gather_shape: numerics.gather_shape,
            n_ranks,
            tracked_modes: spec.tracked_modes.clone(),
        };
        Ok(Self {
            sim: DistSimulation::new(
                cfg,
                Box::new(GatherScatter::new(numerics.deposit_shape, 1.0)),
            ),
            tracked_modes: spec.tracked_modes.clone(),
            n_ranks,
        })
    }
}

impl BackendSession for DdecompSession {
    fn step(&mut self) -> Sample {
        self.sim.step();
        let row = self.sim.history().last_sample().expect("row just recorded");
        sample_from_row(self.sim.steps_done() - 1, row)
    }

    fn sample(&mut self) -> Sample {
        let e = self.sim.global_efield();
        Sample {
            step: self.sim.steps_done(),
            time: self.sim.time(),
            kinetic: self.sim.kinetic_energy(),
            field: crate::pic::efield::field_energy(self.sim.grid(), &e),
            momentum: self.sim.total_momentum(),
            mode_amps: self
                .tracked_modes
                .iter()
                .map(|&m| crate::analytics::dft::mode_amplitude(&e, m))
                .collect(),
        }
    }

    fn finish(&mut self) -> Sample {
        self.sim.finish();
        let row = self.sim.history().last_sample().expect("row just recorded");
        sample_from_row(self.sim.steps_done(), row)
    }

    fn time(&self) -> f64 {
        self.sim.time()
    }

    fn steps_done(&self) -> usize {
        self.sim.steps_done()
    }

    fn phase_space(&self) -> Option<PhaseSpace> {
        let (x, v) = self.sim.phase_space();
        Some(PhaseSpace { x, v })
    }

    fn state_checkpoint(&self) -> Json {
        let state = self.sim.export_state();
        obj(vec![
            (
                "ranks",
                Json::Arr(
                    state
                        .ranks
                        .iter()
                        .map(|r| {
                            obj(vec![
                                ("x", Json::num_arr(&r.x)),
                                ("v", Json::num_arr(&r.v)),
                                ("e_ext", Json::num_arr(&r.e_ext)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("time", Json::Num(state.time)),
            ("steps_done", Json::Num(state.steps_done as f64)),
            ("migrated_total", Json::Num(state.migrated_total as f64)),
            ("comm_messages", Json::Num(state.comm.messages as f64)),
            ("comm_bytes", Json::Num(state.comm.bytes as f64)),
            (
                "comm_phases",
                Json::Arr(
                    state
                        .comm_phases
                        .iter()
                        .map(|&(phase, stats)| {
                            obj(vec![
                                ("phase", Json::Str(phase.into())),
                                ("messages", Json::Num(stats.messages as f64)),
                                ("bytes", Json::Num(stats.bytes as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn restore(&mut self, state: &Json) -> Result<(), EngineError> {
        let rank_docs = state.field("ranks")?.as_arr()?;
        if rank_docs.len() != self.n_ranks {
            return Err(bad_checkpoint(format!(
                "state holds {} ranks but the backend runs {}",
                rank_docs.len(),
                self.n_ranks
            )));
        }
        let ext = crate::ddecomp::halo::ext_len(self.sim.topology());
        let mut total_particles = 0usize;
        let mut ranks = Vec::with_capacity(rank_docs.len());
        for doc in rank_docs {
            let snap = RankStateSnapshot {
                x: doc.field("x")?.as_f64_vec()?,
                v: doc.field("v")?.as_f64_vec()?,
                e_ext: doc.field("e_ext")?.as_f64_vec()?,
            };
            if snap.x.len() != snap.v.len() {
                return Err(bad_checkpoint("rank x/v lengths disagree"));
            }
            if snap.e_ext.len() != ext {
                return Err(bad_checkpoint(format!(
                    "rank slab has {} nodes but the topology needs {ext}",
                    snap.e_ext.len()
                )));
            }
            total_particles += snap.x.len();
            ranks.push(snap);
        }
        if total_particles != self.sim.total_particles() {
            return Err(bad_checkpoint(format!(
                "state holds {total_particles} particles but the spec loads {}",
                self.sim.total_particles()
            )));
        }
        // Per-phase traffic breakdown: phase names intern against the
        // closed set the strategies emit (an unknown name means a
        // corrupted or foreign checkpoint, not a new phase). Checkpoints
        // written before the breakdown was persisted lack the field —
        // still valid v1 documents, restored with an empty breakdown
        // (exactly the old behavior).
        let mut comm_phases = Vec::new();
        let phase_docs = match state.field("comm_phases") {
            Ok(docs) => docs.as_arr()?,
            Err(_) => &[],
        };
        for doc in phase_docs {
            let name = doc.field("phase")?.as_str()?;
            let phase = crate::ddecomp::comm::intern_phase(name)
                .ok_or_else(|| bad_checkpoint(format!("unknown comm phase `{name}`")))?;
            comm_phases.push((
                phase,
                crate::ddecomp::comm::CommStats {
                    messages: doc.field("messages")?.as_u64()?,
                    bytes: doc.field("bytes")?.as_u64()?,
                },
            ));
        }
        self.sim.restore_state(&DistState {
            ranks,
            time: state.field("time")?.as_f64()?,
            steps_done: state.field("steps_done")?.as_usize()?,
            migrated_total: state.field("migrated_total")?.as_u64()?,
            comm: crate::ddecomp::comm::CommStats {
                messages: state.field("comm_messages")?.as_u64()?,
                bytes: state.field("comm_bytes")?.as_u64()?,
            },
            comm_phases,
        });
        Ok(())
    }

    fn extras(&self) -> Vec<(String, f64)> {
        let stats = self.sim.comm_stats();
        vec![
            ("ranks".into(), self.n_ranks as f64),
            (
                "migrated_particles".into(),
                self.sim.migrated_total() as f64,
            ),
            ("comm_messages".into(), stats.messages as f64),
            ("comm_bytes".into(), stats.bytes as f64),
        ]
    }
}

// ---------------------------------------------------------------------
// The public session driver.
// ---------------------------------------------------------------------

/// A running, steppable engine run: owns the solver stack (via a
/// [`BackendSession`]), the unified [`EnergyHistory`], and any attached
/// [`Observer`]s. Create with [`Engine::start`](super::Engine::start) or
/// [`Engine::resume`](super::Engine::resume); consume with
/// [`Session::finish`].
pub struct Session {
    spec: ScenarioSpec,
    backend: Backend,
    inner: Box<dyn BackendSession>,
    history: EnergyHistory,
    observers: Vec<Box<dyn Observer>>,
    started: std::time::Instant,
    wall_offset: f64,
    health: RunHealth,
    fault: Option<SessionFault>,
}

impl Session {
    /// `started` is captured by [`Engine::start`](super::Engine::start)
    /// *before* the solver stack is built, so `wall_seconds` keeps
    /// counting construction (particle loading, initial field solve,
    /// model build) exactly as the pre-session `Engine::run` did.
    pub(crate) fn new(
        spec: ScenarioSpec,
        backend: Backend,
        inner: Box<dyn BackendSession>,
        started: std::time::Instant,
    ) -> Self {
        let history = EnergyHistory::new(spec.tracked_modes.clone());
        Self {
            spec,
            backend,
            inner,
            history,
            observers: Vec::new(),
            started,
            wall_offset: 0.0,
            health: RunHealth::new(),
            fault: None,
        }
    }

    /// Attaches a run monitor; its `on_start` hook fires immediately.
    pub fn attach_observer(&mut self, mut observer: Box<dyn Observer>) {
        observer.on_start(&self.spec, &self.backend);
        self.observers.push(observer);
    }

    /// Attaches several monitors (see [`Self::attach_observer`]).
    pub fn attach_observers(&mut self, observers: Vec<Box<dyn Observer>>) {
        for obs in observers {
            self.attach_observer(obs);
        }
    }

    /// The scenario this session runs.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// The backend driving it.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Identity and size of this session's shared weight allocation —
    /// `Some((id, bytes))` with equal ids meaning one shared allocation,
    /// `None` when the session owns its model (or has none). See
    /// [`BackendSession::weight_storage`].
    pub fn weight_storage(&self) -> Option<(usize, usize)> {
        self.inner.weight_storage()
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.inner.time()
    }

    /// Steps performed so far (including steps before a checkpoint for
    /// resumed sessions).
    pub fn steps_done(&self) -> usize {
        self.inner.steps_done()
    }

    /// Steps left until the spec's configured `n_steps`.
    pub fn remaining(&self) -> usize {
        self.spec.n_steps.saturating_sub(self.steps_done())
    }

    /// True once the spec's configured `n_steps` have run.
    pub fn is_complete(&self) -> bool {
        self.remaining() == 0
    }

    /// The rows recorded so far.
    pub fn history(&self) -> &EnergyHistory {
        &self.history
    }

    /// Why this session was quarantined, when it was (a wave scheduler
    /// stops stepping a faulted session; see [`super::health`]).
    pub fn fault(&self) -> Option<&SessionFault> {
        self.fault.as_ref()
    }

    /// True while the session has neither panicked nor diverged.
    pub fn is_healthy(&self) -> bool {
        self.fault.is_none()
    }

    /// Quarantines the session (a wave scheduler records the panic it
    /// caught; a faulted session is never stepped again).
    pub fn set_fault(&mut self, fault: SessionFault) {
        if self.fault.is_none() {
            self.fault = Some(fault);
        }
    }

    /// Scans history rows recorded since the last call for non-finite
    /// diagnostics and quarantines the session at the first bad row. The
    /// bad row and everything after it are discarded — the preserved
    /// partial history is entirely finite, so it survives a JSON
    /// round-trip (non-finite numbers serialize as `null`). Returns the
    /// (possibly pre-existing) fault.
    pub fn check_health(&mut self) -> Option<&SessionFault> {
        if self.fault.is_none() {
            if let Some((step, diagnostic)) = self.health.check(&self.history) {
                self.history.truncate(step);
                self.fault = Some(SessionFault::Diverged { step, diagnostic });
            }
        }
        self.fault.as_ref()
    }

    /// Instantaneous diagnostics of the current state without advancing
    /// or recording — the row [`Self::finish`] would append right now.
    pub fn sample(&mut self) -> Sample {
        self.inner.sample()
    }

    /// Advances one step; records and returns the step's diagnostics row,
    /// streaming it to the attached observers. Stepping past the spec's
    /// `n_steps` is permitted (the summary reports the count that ran).
    pub fn step(&mut self) -> Sample {
        let sample = self.inner.step();
        self.history.push(&sample);
        for obs in &mut self.observers {
            obs.on_sample(&sample);
        }
        sample
    }

    /// `(input, output)` row widths of this session's batched-inference
    /// phases, or `None` when its field solve cannot be split (non-DL
    /// backends). See [`Self::step_prepare`].
    pub fn batched_infer_shape(&mut self) -> Option<(usize, usize)> {
        self.inner.infer_shape()
    }

    /// Phase 1 of a split step (see
    /// [`BackendSession::step_prepare`]): advances everything up to the
    /// field-solve inference, writes the inference input into `input`,
    /// and records/streams the step's diagnostics row exactly as
    /// [`Self::step`] would. Must be completed with [`Self::step_apply`];
    /// the ensemble scheduler pairs them around one batched
    /// [`Self::infer_batch`] shared by a whole cohort of sessions.
    pub fn step_prepare(&mut self, input: &mut [f32]) -> Sample {
        let sample = self.inner.step_prepare(input);
        self.history.push(&sample);
        for obs in &mut self.observers {
            obs.on_sample(&sample);
        }
        sample
    }

    /// Phase 2 of a split step: one inference over `rows` stacked input
    /// rows through this session's solver. The ensemble calls this on
    /// one cohort member for the whole batch.
    pub fn infer_batch(&mut self, input: &[f32], rows: usize, output: &mut [f32]) {
        self.inner.infer_batch(input, rows, output);
    }

    /// Phase 3 of a split step: applies this session's output row and
    /// completes the step begun by [`Self::step_prepare`].
    pub fn step_apply(&mut self, output: &[f32]) {
        self.inner.step_apply(output);
    }

    /// Runs until the spec's `n_steps` have completed.
    pub fn run_to_end(&mut self) {
        while !self.is_complete() {
            self.step();
        }
    }

    /// The early-stop controller: steps until `stop` returns `true` for a
    /// recorded sample or the spec's `n_steps` complete, whichever comes
    /// first. Returns whether the predicate fired.
    pub fn run_until(&mut self, mut stop: impl FnMut(&Sample) -> bool) -> bool {
        while !self.is_complete() {
            let sample = self.step();
            if stop(&sample) {
                return true;
            }
        }
        false
    }

    /// Records the final snapshot row and yields the run summary
    /// (`steps_done + 1` samples — identical to [`super::Engine::run`]'s output
    /// for a full-length run, truncated-but-consistent after an early
    /// stop).
    pub fn finish(self) -> RunSummary {
        self.finish_detach().0
    }

    /// [`Self::finish`], additionally handing back the attached observers
    /// (used by [`super::Engine::run`] to re-own its monitors across runs).
    pub fn finish_detach(mut self) -> (RunSummary, Vec<Box<dyn Observer>>) {
        // A faulted session's solver is never advanced or sampled again:
        // a panicked stack may be mid-step, and a diverged one would only
        // append more garbage. Its summary is built from the rows already
        // recorded — the preserved partial history.
        if self.fault.is_none() {
            let final_sample = self.inner.finish();
            self.history.push(&final_sample);
            for obs in &mut self.observers {
                obs.on_sample(&final_sample);
            }
        }
        let summary = RunSummary {
            scenario: self.spec.name.clone(),
            backend: self.backend.to_string(),
            dim: self.spec.dim(),
            steps: self.inner.steps_done(),
            t_end: self.history.times.last().copied().unwrap_or(0.0),
            phase_space: if self.fault.is_none() {
                self.inner.phase_space()
            } else {
                None
            },
            history: self.history,
            wall_seconds: self.wall_offset + self.started.elapsed().as_secs_f64(),
            extras: self.inner.extras(),
        };
        let mut observers = self.observers;
        for obs in &mut observers {
            obs.on_finish(&summary);
        }
        (summary, observers)
    }

    /// Serializes the session — spec, backend, recorded history, wall
    /// clock and the backend's mutable solver state — into a [`Checkpoint`]
    /// that [`Engine::resume`](super::Engine::resume) can continue from.
    /// Finite `f64` state round-trips bit-exactly through the JSON text.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            spec: self.spec.clone(),
            backend: self.backend,
            steps_done: self.inner.steps_done(),
            time: self.inner.time(),
            wall_seconds: self.wall_offset + self.started.elapsed().as_secs_f64(),
            history: self.history.clone(),
            state: self.inner.state_checkpoint(),
        }
    }

    /// Restores a checkpoint into this freshly started session (the
    /// [`Engine::resume`](super::Engine::resume) back half).
    pub(crate) fn restore(&mut self, checkpoint: &Checkpoint) -> Result<(), EngineError> {
        self.inner.restore(&checkpoint.state)?;
        if self.inner.steps_done() != checkpoint.steps_done {
            return Err(bad_checkpoint(format!(
                "state says {} steps but the checkpoint header says {}",
                self.inner.steps_done(),
                checkpoint.steps_done
            )));
        }
        if self.inner.time().to_bits() != checkpoint.time.to_bits() {
            return Err(bad_checkpoint(format!(
                "state says t = {} but the checkpoint header says t = {}",
                self.inner.time(),
                checkpoint.time
            )));
        }
        if checkpoint.history.tracked_modes != self.spec.tracked_modes {
            return Err(bad_checkpoint(
                "checkpoint history tracks different modes than the spec",
            ));
        }
        self.history = checkpoint.history.clone();
        self.wall_offset = checkpoint.wall_seconds;
        // Re-validate the restored rows on the next health check — a
        // checkpoint of an already-diverged run must not resume silently.
        self.health.reset();
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Checkpoints.
// ---------------------------------------------------------------------

const CHECKPOINT_FORMAT: &str = "dlpic-session-checkpoint";
const CHECKPOINT_VERSION: f64 = 1.0;

/// A serialized mid-run session: the spec and backend to rebuild the
/// solver stack, the mutable solver state to restore into it, and the
/// history recorded so far. Produced by [`Session::checkpoint`], consumed
/// by [`Engine::resume`](super::Engine::resume); persists as JSON via
/// [`Checkpoint::to_json`]/[`Checkpoint::from_json`].
#[derive(Clone)]
pub struct Checkpoint {
    /// The scenario of the checkpointed run.
    pub spec: ScenarioSpec,
    /// The backend that was driving it.
    pub backend: Backend,
    /// Steps performed up to the checkpoint.
    pub steps_done: usize,
    /// Simulation time at the checkpoint.
    pub time: f64,
    /// Wall-clock seconds accumulated up to the checkpoint (carried into
    /// the resumed run's summary).
    pub wall_seconds: f64,
    /// Diagnostics rows recorded up to the checkpoint.
    pub history: EnergyHistory,
    state: Json,
}

impl Checkpoint {
    /// Serializes to a JSON document.
    pub fn to_json(&self) -> String {
        obj(vec![
            ("format", Json::Str(CHECKPOINT_FORMAT.into())),
            ("version", Json::Num(CHECKPOINT_VERSION)),
            ("scenario", self.spec.to_json_value()),
            ("backend", Json::Str(self.backend.to_string())),
            ("steps_done", Json::Num(self.steps_done as f64)),
            ("time", Json::Num(self.time)),
            ("wall_seconds", Json::Num(self.wall_seconds)),
            ("history", self.history.to_json_value()),
            ("state", self.state.clone()),
        ])
        .to_pretty()
    }

    /// Writes the checkpoint to `path` atomically: the document goes to a
    /// sibling `<path>.tmp` first and is renamed into place, so readers
    /// (and a crash mid-write) never observe a torn file. The server
    /// spool relies on this; `examples/saturation.rs` shows the
    /// single-run form.
    pub fn write_file(&self, path: impl AsRef<std::path::Path>) -> Result<(), EngineError> {
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads a checkpoint written by [`Self::write_file`] (or any
    /// [`Self::to_json`] document on disk).
    pub fn read_file(path: impl AsRef<std::path::Path>) -> Result<Self, EngineError> {
        Self::from_json(&std::fs::read_to_string(path)?)
    }

    /// Parses a document produced by [`Self::to_json`].
    pub fn from_json(text: &str) -> Result<Self, EngineError> {
        let doc = Json::parse(text)?;
        let format = doc.field("format")?.as_str()?;
        if format != CHECKPOINT_FORMAT {
            return Err(bad_checkpoint(format!(
                "not a session checkpoint (format `{format}`)"
            )));
        }
        let version = doc.field("version")?.as_f64()?;
        if version != CHECKPOINT_VERSION {
            return Err(bad_checkpoint(format!(
                "unsupported checkpoint version {version}"
            )));
        }
        let backend_name = doc.field("backend")?.as_str()?;
        let backend = Backend::parse(backend_name)
            .ok_or_else(|| bad_checkpoint(format!("unknown backend `{backend_name}`")))?;
        Ok(Self {
            spec: ScenarioSpec::from_json_value(doc.field("scenario")?)?,
            backend,
            steps_done: doc.field("steps_done")?.as_usize()?,
            time: doc.field("time")?.as_f64()?,
            wall_seconds: doc.field("wall_seconds")?.as_f64()?,
            history: EnergyHistory::from_json_value(doc.field("history")?)?,
            state: doc.field("state")?.clone(),
        })
    }
}

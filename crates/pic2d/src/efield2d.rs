//! Electric field from the potential: `E = −∇Φ` by periodic second-order
//! central differences, plus the field-energy diagnostic.

use crate::grid2d::Grid2D;

/// Computes both components of `E = −∇Φ`:
/// `Ex[i,j] = −(Φ[i+1,j] − Φ[i−1,j]) / (2·dx)` and the analogue in `y`.
///
/// # Panics
/// Panics if array lengths disagree with the grid.
pub fn efield_from_phi(grid: &Grid2D, phi: &[f64], ex: &mut [f64], ey: &mut [f64]) {
    let (nx, ny) = (grid.nx(), grid.ny());
    assert_eq!(phi.len(), grid.nodes(), "phi length mismatch");
    assert_eq!(ex.len(), grid.nodes(), "ex length mismatch");
    assert_eq!(ey.len(), grid.nodes(), "ey length mismatch");
    assert!(nx >= 2 && ny >= 2, "need at least two nodes per dimension");
    let inv_2dx = 1.0 / (2.0 * grid.dx());
    let inv_2dy = 1.0 / (2.0 * grid.dy());

    for iy in 0..ny {
        let row = iy * nx;
        let up = grid.wrap_iy(iy as i64 + 1) * nx;
        let down = grid.wrap_iy(iy as i64 - 1) * nx;
        // Bulk of the row (no x-wrap): plain windowed loop.
        for ix in 1..nx - 1 {
            ex[row + ix] = -(phi[row + ix + 1] - phi[row + ix - 1]) * inv_2dx;
        }
        ex[row] = -(phi[row + 1] - phi[row + nx - 1]) * inv_2dx;
        ex[row + nx - 1] = -(phi[row] - phi[row + nx - 2]) * inv_2dx;
        for ix in 0..nx {
            ey[row + ix] = -(phi[up + ix] - phi[down + ix]) * inv_2dy;
        }
    }
}

/// Field energy `½·ε₀·Σ (Ex² + Ey²)·dx·dy` with `ε₀ = 1` — the
/// electrostatic half of the total-energy diagnostic.
pub fn field_energy(grid: &Grid2D, ex: &[f64], ey: &[f64]) -> f64 {
    assert_eq!(ex.len(), grid.nodes(), "ex length mismatch");
    assert_eq!(ey.len(), grid.nodes(), "ey length mismatch");
    let sum: f64 = ex.iter().zip(ey).map(|(x, y)| x * x + y * y).sum();
    0.5 * grid.cell_area() * sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradient_of_separable_cosine_potential() {
        let grid = Grid2D::new(32, 32, 2.0, 2.0);
        let kx = grid.mode_wavenumber_x(1);
        let ky = grid.mode_wavenumber_y(2);
        let mut phi = grid.zeros();
        for iy in 0..grid.ny() {
            for ix in 0..grid.nx() {
                let (x, y) = (ix as f64 * grid.dx(), iy as f64 * grid.dy());
                phi[grid.index(ix, iy)] = (kx * x).cos() * (ky * y).cos();
            }
        }
        let mut ex = grid.zeros();
        let mut ey = grid.zeros();
        efield_from_phi(&grid, &phi, &mut ex, &mut ey);
        // Central differences attenuate each axis by sin(k·h)/(k·h).
        let ax = (kx * grid.dx()).sin() / (kx * grid.dx());
        let ay = (ky * grid.dy()).sin() / (ky * grid.dy());
        for iy in 0..grid.ny() {
            for ix in 0..grid.nx() {
                let (x, y) = (ix as f64 * grid.dx(), iy as f64 * grid.dy());
                let expect_x = kx * (kx * x).sin() * (ky * y).cos() * ax;
                let expect_y = ky * (kx * x).cos() * (ky * y).sin() * ay;
                let i = grid.index(ix, iy);
                assert!((ex[i] - expect_x).abs() < 1e-10, "Ex at ({ix},{iy})");
                assert!((ey[i] - expect_y).abs() < 1e-10, "Ey at ({ix},{iy})");
            }
        }
    }

    #[test]
    fn constant_potential_gives_zero_field() {
        let grid = Grid2D::new(8, 8, 1.0, 1.0);
        let phi = vec![2.5; grid.nodes()];
        let mut ex = vec![1.0; grid.nodes()];
        let mut ey = vec![1.0; grid.nodes()];
        efield_from_phi(&grid, &phi, &mut ex, &mut ey);
        assert!(ex.iter().all(|v| v.abs() < 1e-14));
        assert!(ey.iter().all(|v| v.abs() < 1e-14));
    }

    #[test]
    fn y_independent_potential_has_no_ey() {
        let grid = Grid2D::new(16, 8, 2.0, 1.0);
        let mut phi = grid.zeros();
        for iy in 0..grid.ny() {
            for ix in 0..grid.nx() {
                phi[grid.index(ix, iy)] = (grid.mode_wavenumber_x(1) * ix as f64 * grid.dx()).sin();
            }
        }
        let mut ex = grid.zeros();
        let mut ey = grid.zeros();
        efield_from_phi(&grid, &phi, &mut ex, &mut ey);
        assert!(ey.iter().all(|v| v.abs() < 1e-14));
        assert!(ex.iter().any(|v| v.abs() > 1e-3));
    }

    #[test]
    fn field_energy_of_uniform_field() {
        let grid = Grid2D::new(8, 8, 2.0, 2.0);
        let ex = vec![0.5; grid.nodes()];
        let ey = vec![0.0; grid.nodes()];
        // ½ · 0.25 · area = 0.125 · 4.0
        assert!((field_energy(&grid, &ex, &ey) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn field_energy_is_component_symmetric() {
        let grid = Grid2D::new(8, 8, 2.0, 2.0);
        let a = vec![0.3; grid.nodes()];
        let b = vec![0.0; grid.nodes()];
        assert!((field_energy(&grid, &a, &b) - field_energy(&grid, &b, &a)).abs() < 1e-15);
    }
}

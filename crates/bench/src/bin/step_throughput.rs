//! Single-core step-throughput benchmark: particles·steps/sec for the
//! fig4-scale 1-D and fig6/ext2d-scale 2-D PIC cycles, plus `nn::linalg`
//! matmul GFLOP/s on DL-solver training/inference shapes.
//!
//! The workloads go through `Simulation::step` / `Simulation2D::step` —
//! the exact per-step path the figure binaries and the engine facade
//! drive — so the recorded numbers track the real hot loop, diagnostics
//! included.
//!
//! Usage:
//!
//! * `step_throughput` — full measurement, JSON printed to stdout.
//! * `--out FILE` — also write the raw measurement JSON to `FILE`
//!   (used to capture a baseline before an optimization lands).
//! * `--write-bench BASELINE` — measure, read a previously captured
//!   measurement from `BASELINE`, and write `BENCH_step.json` with
//!   `baseline` + `current` sections and the speedup ratios.
//! * `--quick` — smaller workloads (CI-sized).
//! * `--check` — measure (honours `--quick`), compare against the
//!   committed `BENCH_step.json`, print deltas and exit non-zero on a
//!   throughput regression beyond the tolerance
//!   (`DLPIC_PERF_MAX_REGRESSION`, default 0.25).
//!
//! Committed numbers are machine-specific, so `--check` first rescales
//! them by a calibration anchor — the fixed `matmul_naive` oracle, whose
//! code no kernel optimization touches — measured on both machines.
//! That makes the regression gate compare like with like on CI runners
//! of any speed.

use dlpic_bench::gate::{calibration_gflops, fill, indent_block, json_value_after, median};
use dlpic_nn::linalg::{matmul_nn, matmul_nt, matmul_tn};
use dlpic_pic::init::TwoStreamInit;
use dlpic_pic::simulation::{PicConfig, Simulation};
use dlpic_pic::solver::TraditionalSolver;
use dlpic_pic::{Grid1D, Shape};
use dlpic_pic2d::init2d::TwoStream2DInit;
use dlpic_pic2d::simulation2d::Pic2DConfig;
use dlpic_pic2d::{Grid2D, Simulation2D, TraditionalSolver2D};
use std::time::Instant;

/// One timed stepping workload.
struct StepResult {
    particles: usize,
    steps: usize,
    seconds: f64,
    throughput: f64,
}

/// GFLOP/s of the four matmul shapes plus the aggregate.
struct MatmulResult {
    nn_train: f64,
    tn_grad: f64,
    nt_grad: f64,
    nn_infer: f64,
    total: f64,
}

struct Measurement {
    calibration: f64,
    step_1d: StepResult,
    step_2d: StepResult,
    matmul: MatmulResult,
}

/// Times `steps` calls of `Simulation::step` on the paper's fig4-scale
/// two-stream workload (64 cells × 1000 ppc, CIC, FD Poisson, three
/// tracked modes). Construction and the final snapshot are excluded.
fn bench_1d(steps: usize, reps: usize) -> StepResult {
    let particles = 64_000;
    let times: Vec<f64> = (0..reps)
        .map(|_| {
            let cfg = PicConfig {
                grid: Grid1D::paper(),
                init: Some(TwoStreamInit::random(0.2, 0.025, particles, 9)),
                dt: 0.2,
                n_steps: steps,
                gather_shape: Shape::Cic,
                tracked_modes: vec![1, 2, 3],
            };
            let mut sim = Simulation::new(cfg, Box::new(TraditionalSolver::paper_default()));
            let t0 = Instant::now();
            for _ in 0..steps {
                sim.step();
            }
            let dt = t0.elapsed().as_secs_f64();
            std::hint::black_box(sim.history().len());
            dt
        })
        .collect();
    let seconds = median(times);
    StepResult {
        particles,
        steps,
        seconds,
        throughput: particles as f64 * steps as f64 / seconds,
    }
}

/// Times `steps` calls of `Simulation2D::step` on the ext2d/fig6-scale
/// 2-D workload: 64×64 grid, 16 ppc (65 536 particles), CIC, spectral
/// Poisson, two tracked modes.
fn bench_2d(steps: usize, reps: usize) -> StepResult {
    let grid_n = 64;
    let particles = grid_n * grid_n * 16;
    let times: Vec<f64> = (0..reps)
        .map(|_| {
            let cfg = Pic2DConfig {
                grid: Grid2D::new(grid_n, grid_n, 2.0532, 2.0532),
                init: TwoStream2DInit::quiet(0.2, 0.0, particles, 1e-3, 9),
                dt: 0.2,
                n_steps: steps,
                gather_shape: Shape::Cic,
                tracked_modes: vec![(1, 0), (0, 1)],
            };
            let mut sim = Simulation2D::new(cfg, Box::new(TraditionalSolver2D::default_config()));
            let t0 = Instant::now();
            for _ in 0..steps {
                sim.step();
            }
            let dt = t0.elapsed().as_secs_f64();
            std::hint::black_box(sim.history().len());
            dt
        })
        .collect();
    let seconds = median(times);
    StepResult {
        particles,
        steps,
        seconds,
        throughput: particles as f64 * steps as f64 / seconds,
    }
}

/// GFLOP/s of one kernel at shape `(m, k, n)`, median of `reps` timed
/// batches of `iters` calls.
fn bench_kernel(
    kernel: impl Fn(&[f32], &[f32], &mut [f32]),
    a_len: usize,
    b_len: usize,
    c_len: usize,
    flops: f64,
    iters: usize,
    reps: usize,
) -> f64 {
    let mut a = vec![0.0f32; a_len];
    let mut b = vec![0.0f32; b_len];
    let mut c = vec![0.0f32; c_len];
    fill(&mut a, 7);
    fill(&mut b, 13);
    kernel(&a, &b, &mut c); // warm-up
    let times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                kernel(&a, &b, &mut c);
                std::hint::black_box(&c[0]);
            }
            t0.elapsed().as_secs_f64()
        })
        .collect();
    flops * iters as f64 / median(times) / 1e9
}

/// The four DL-solver shapes: quick-train forward (`nn`), weight gradient
/// (`tn`), input gradient (`nt`) at batch 64 with 512-wide hiddens, and a
/// batch-1 inference layer at the paper's 4096-cell phase-space input.
fn bench_matmul(quick: bool, reps: usize) -> MatmulResult {
    let scale = if quick { 4 } else { 1 };
    let (m, k, n) = (64, 512, 512);
    let flops = 2.0 * (m * k * n) as f64;
    let nn_train = bench_kernel(
        |a, b, c| matmul_nn(a, b, c, m, k, n),
        m * k,
        k * n,
        m * n,
        flops,
        48 / scale,
        reps,
    );
    // dW = Xᵀ·dY: A is k×m (batch-major), output m×n.
    let (tm, tk, tn) = (512, 64, 512);
    let tflops = 2.0 * (tm * tk * tn) as f64;
    let tn_grad = bench_kernel(
        |a, b, c| matmul_tn(a, b, c, tm, tk, tn),
        tk * tm,
        tk * tn,
        tm * tn,
        tflops,
        48 / scale,
        reps,
    );
    // dX = dY·Wᵀ: B is n×k.
    let nt_grad = bench_kernel(
        |a, b, c| matmul_nt(a, b, c, m, k, n),
        m * k,
        n * k,
        m * n,
        flops,
        48 / scale,
        reps,
    );
    let (im, ik, inn) = (1, 4096, 512);
    let iflops = 2.0 * (im * ik * inn) as f64;
    let nn_infer = bench_kernel(
        |a, b, c| matmul_nn(a, b, c, im, ik, inn),
        im * ik,
        ik * inn,
        im * inn,
        iflops,
        256 / scale,
        reps,
    );
    // Aggregate: total flops over total time (harmonic weighting).
    let total = 4.0 / (1.0 / nn_train + 1.0 / tn_grad + 1.0 / nt_grad + 1.0 / nn_infer);
    MatmulResult {
        nn_train,
        tn_grad,
        nt_grad,
        nn_infer,
        total,
    }
}

fn measure(quick: bool) -> Measurement {
    let (steps_1d, steps_2d, reps) = if quick { (40, 12, 3) } else { (200, 60, 5) };
    eprintln!("measuring calibration anchor...");
    let calibration = calibration_gflops(reps);
    eprintln!("measuring 1-D step throughput ({steps_1d} steps x {reps} reps)...");
    let step_1d = bench_1d(steps_1d, reps);
    eprintln!("measuring 2-D step throughput ({steps_2d} steps x {reps} reps)...");
    let step_2d = bench_2d(steps_2d, reps);
    eprintln!("measuring matmul GFLOP/s...");
    let matmul = bench_matmul(quick, reps);
    Measurement {
        calibration,
        step_1d,
        step_2d,
        matmul,
    }
}

fn measurement_json(m: &Measurement, indent: &str) -> String {
    let step = |s: &StepResult| {
        format!(
            "{{\n{indent}    \"particles\": {},\n{indent}    \"steps\": {},\n{indent}    \"seconds\": {:.4},\n{indent}    \"particle_steps_per_sec\": {:.3e}\n{indent}  }}",
            s.particles, s.steps, s.seconds, s.throughput
        )
    };
    format!(
        "{{\n{indent}  \"calibration_gflops\": {:.3},\n{indent}  \"step_1d\": {},\n{indent}  \"step_2d\": {},\n{indent}  \"matmul\": {{\n{indent}    \"nn_train_gflops\": {:.3},\n{indent}    \"tn_grad_gflops\": {:.3},\n{indent}    \"nt_grad_gflops\": {:.3},\n{indent}    \"nn_infer_gflops\": {:.3},\n{indent}    \"gflops_total\": {:.3}\n{indent}  }}\n{indent}}}",
        m.calibration,
        step(&m.step_1d),
        step(&m.step_2d),
        m.matmul.nn_train,
        m.matmul.tn_grad,
        m.matmul.nt_grad,
        m.matmul.nn_infer,
        m.matmul.total,
    )
}

fn print_human(m: &Measurement) {
    println!(
        "1-D  ({} particles, {} steps): {:.1} M particle·steps/s",
        m.step_1d.particles,
        m.step_1d.steps,
        m.step_1d.throughput / 1e6
    );
    println!(
        "2-D  ({} particles, {} steps): {:.1} M particle·steps/s",
        m.step_2d.particles,
        m.step_2d.steps,
        m.step_2d.throughput / 1e6
    );
    println!(
        "matmul: nn {:.2}  tn {:.2}  nt {:.2}  infer {:.2}  | total {:.2} GFLOP/s",
        m.matmul.nn_train, m.matmul.tn_grad, m.matmul.nt_grad, m.matmul.nn_infer, m.matmul.total
    );
}

/// The three throughput metrics of a named section in `BENCH_step.json`.
fn section_metrics(text: &str, section: &str) -> Option<(f64, f64, f64)> {
    let at = text.find(&format!("\"{section}\""))?;
    let t1 = json_value_after(text, at, "particle_steps_per_sec")?;
    let rest_at = at + text[at..].find("step_2d")?;
    let t2 = json_value_after(text, rest_at, "particle_steps_per_sec")?;
    let gf = json_value_after(text, rest_at, "gflops_total")?;
    Some((t1, t2, gf))
}

fn check(m: &Measurement) -> i32 {
    let text = match std::fs::read_to_string("BENCH_step.json") {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read BENCH_step.json: {e}");
            return 2;
        }
    };
    let Some((c1, c2, cg)) = section_metrics(&text, "current") else {
        eprintln!("BENCH_step.json has no parsable \"current\" section");
        return 2;
    };
    // Rescale the committed absolutes to this machine via the anchor
    // (older files without one fall back to unscaled comparison).
    let cur_at = text.find("\"current\"").unwrap_or(0);
    let scale = match json_value_after(&text, cur_at, "calibration_gflops") {
        Some(committed_cal) if committed_cal > 0.0 => {
            let s = m.calibration / committed_cal;
            println!(
                "calibration: committed {committed_cal:.2} GFLOP/s, this machine {:.2} \
                 (scale {s:.2}x)",
                m.calibration
            );
            s
        }
        _ => 1.0,
    };
    let tolerance: f64 = std::env::var("DLPIC_PERF_MAX_REGRESSION")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    let mut failed = false;
    for (name, measured, committed) in [
        ("step_1d", m.step_1d.throughput, c1 * scale),
        ("step_2d", m.step_2d.throughput, c2 * scale),
        ("matmul", m.matmul.total, cg * scale),
    ] {
        let delta = measured / committed - 1.0;
        let verdict = if delta < -tolerance {
            failed = true;
            "REGRESSION"
        } else {
            "ok"
        };
        println!(
            "{name:>8}: expected {committed:.3e}, measured {measured:.3e} ({delta:+.1}%) {verdict}",
            delta = delta * 100.0
        );
    }
    if failed {
        println!(
            "FAIL: throughput regressed more than {:.0}%",
            tolerance * 100.0
        );
        1
    } else {
        println!(
            "PASS: within {:.0}% of committed numbers",
            tolerance * 100.0
        );
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let do_check = args.iter().any(|a| a == "--check");
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };

    let m = measure(quick);
    print_human(&m);

    if let Some(path) = flag_value("--out") {
        std::fs::write(&path, measurement_json(&m, "") + "\n").expect("write --out file");
        println!("wrote {path}");
    }

    if let Some(baseline_path) = flag_value("--write-bench") {
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
        let Some((b1, b2, bg)) = section_metrics(&baseline, "step_1d") else {
            panic!("baseline {baseline_path} is not a step_throughput measurement");
        };
        let json = format!(
            "{{\n  \"bench\": \"step_throughput\",\n  \"note\": \"single-core; compare the speedup ratios, not cross-machine absolutes\",\n  \"baseline\": {},\n  \"current\": {},\n  \"speedup\": {{\n    \"step_1d\": {:.3},\n    \"step_2d\": {:.3},\n    \"matmul_total\": {:.3}\n  }}\n}}\n",
            indent_block(baseline.trim_end()),
            measurement_json(&m, "  "),
            m.step_1d.throughput / b1,
            m.step_2d.throughput / b2,
            m.matmul.total / bg,
        );
        std::fs::write("BENCH_step.json", &json).expect("write BENCH_step.json");
        println!(
            "wrote BENCH_step.json (speedups: 1-D {:.2}x, 2-D {:.2}x, matmul {:.2}x)",
            m.step_1d.throughput / b1,
            m.step_2d.throughput / b2,
            m.matmul.total / bg,
        );
    }

    if do_check {
        std::process::exit(check(&m));
    }
}

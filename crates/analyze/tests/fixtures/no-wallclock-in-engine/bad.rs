//! Fixture: wall-clock reads inside solver code. Both clock types are
//! flagged — any time-dependent value that reaches engine state breaks
//! checkpoint/resume bit-identity.

use std::time::{Instant, SystemTime};

pub struct Stepper {
    seed: u64,
}

impl Stepper {
    pub fn new() -> Self {
        let t = Instant::now();
        let epoch = SystemTime::now();
        let _ = (t, epoch);
        Self { seed: 0 }
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }
}

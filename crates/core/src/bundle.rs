//! Model bundles: everything needed to reconstruct a DL field solver.
//!
//! A trained solver is more than network weights — reproducing the paper's
//! inference step requires the architecture, the phase-grid geometry, the
//! binning order and the training-set normalization statistics (Eq. 5).
//! [`ModelBundle`] packages all of them into one self-describing binary
//! blob so experiment binaries can train once and reload.

use crate::builder::ArchSpec;
use crate::field_solver::DlFieldSolver;
use crate::normalize::NormStats;
use crate::phase_space::{BinningShape, PhaseGridSpec};
use bytes::{Buf, BufMut};
use dlpic_nn::network::Sequential;
use dlpic_nn::serialize::{params_from_bytes, params_to_bytes};
use std::path::Path;

const MAGIC: &[u8; 4] = b"DLPB";
const VERSION: u32 = 2;

/// A complete, serializable trained model.
#[derive(Debug, Clone)]
pub struct ModelBundle {
    /// Network architecture.
    pub arch: ArchSpec,
    /// Phase-grid geometry the model was trained on.
    pub spec: PhaseGridSpec,
    /// Binning order used to build training histograms.
    pub binning: BinningShape,
    /// Training-set normalization statistics.
    pub norm: NormStats,
    /// Total mass (= particle count) of the training histograms; 0 means
    /// "unknown" and disables inference-time mass rescaling.
    pub reference_mass: f32,
    /// Serialized network parameters (`dlpic_nn::serialize` format).
    pub params: Vec<u8>,
}

/// Bundle (de)serialization failure.
#[derive(Debug)]
pub enum BundleError {
    /// Not a bundle / wrong version / truncated.
    Malformed(&'static str),
    /// The parameter blob does not fit the declared architecture.
    Params(dlpic_nn::serialize::SerializeError),
    /// Filesystem error.
    Io(std::io::Error),
}

impl std::fmt::Display for BundleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Malformed(what) => write!(f, "malformed model bundle: {what}"),
            Self::Params(e) => write!(f, "parameter restore failed: {e}"),
            Self::Io(e) => write!(f, "bundle I/O failed: {e}"),
        }
    }
}

impl std::error::Error for BundleError {}

impl From<std::io::Error> for BundleError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl ModelBundle {
    /// Captures a trained network into a bundle.
    pub fn from_network(
        net: &mut Sequential,
        arch: ArchSpec,
        spec: PhaseGridSpec,
        binning: BinningShape,
        norm: NormStats,
    ) -> Self {
        Self {
            params: params_to_bytes(net),
            arch,
            spec,
            binning,
            norm,
            reference_mass: 0.0,
        }
    }

    /// Builder-style setter for the training histogram mass (see
    /// [`DlFieldSolver::with_reference_mass`]).
    pub fn with_reference_mass(mut self, mass: f32) -> Self {
        self.reference_mass = mass;
        self
    }

    /// Serializes the bundle.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + self.params.len());
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        self.arch.encode(&mut buf);
        buf.put_u32_le(self.spec.nx as u32);
        buf.put_u32_le(self.spec.nv as u32);
        buf.put_f64_le(self.spec.vmin);
        buf.put_f64_le(self.spec.vmax);
        buf.put_u8(match self.binning {
            BinningShape::Ngp => 0,
            BinningShape::Cic => 1,
        });
        buf.put_f32_le(self.norm.min);
        buf.put_f32_le(self.norm.max);
        buf.put_f32_le(self.reference_mass);
        buf.put_u64_le(self.params.len() as u64);
        buf.put_slice(&self.params);
        buf
    }

    /// Deserializes a bundle.
    pub fn decode(bytes: &[u8]) -> Result<Self, BundleError> {
        let mut buf = bytes;
        if buf.remaining() < 8 {
            return Err(BundleError::Malformed("truncated header"));
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(BundleError::Malformed("bad magic"));
        }
        if buf.get_u32_le() != VERSION {
            return Err(BundleError::Malformed("unsupported version"));
        }
        let arch =
            ArchSpec::decode(&mut buf).ok_or(BundleError::Malformed("bad architecture spec"))?;
        if buf.remaining() < 4 + 4 + 8 + 8 + 1 + 4 + 4 + 4 + 8 {
            return Err(BundleError::Malformed("truncated metadata"));
        }
        let nx = buf.get_u32_le() as usize;
        let nv = buf.get_u32_le() as usize;
        let vmin = buf.get_f64_le();
        let vmax = buf.get_f64_le();
        // NaN-rejecting form: `vmax <= vmin` would accept NaN bounds.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if nx == 0 || nv == 0 || !(vmax > vmin) {
            return Err(BundleError::Malformed("bad phase-grid geometry"));
        }
        let binning = match buf.get_u8() {
            0 => BinningShape::Ngp,
            1 => BinningShape::Cic,
            _ => return Err(BundleError::Malformed("bad binning tag")),
        };
        let norm = NormStats {
            min: buf.get_f32_le(),
            max: buf.get_f32_le(),
        };
        let reference_mass = buf.get_f32_le();
        // NaN-rejecting form: `reference_mass < 0.0` would accept NaN.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(reference_mass >= 0.0) {
            return Err(BundleError::Malformed("bad reference mass"));
        }
        let plen = buf.get_u64_le() as usize;
        if buf.remaining() < plen {
            return Err(BundleError::Malformed("truncated parameters"));
        }
        let params = buf[..plen].to_vec();
        Ok(Self {
            arch,
            spec: PhaseGridSpec::new(nx, nv, vmin, vmax),
            binning,
            norm,
            reference_mass,
            params,
        })
    }

    /// Writes the bundle to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), BundleError> {
        std::fs::write(path, self.encode())?;
        Ok(())
    }

    /// Reads a bundle from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, BundleError> {
        Self::decode(&std::fs::read(path)?)
    }

    /// Reconstructs a ready-to-run field solver from the bundle.
    pub fn into_solver(self) -> Result<DlFieldSolver, BundleError> {
        let mut net = self.arch.build(0);
        params_from_bytes(&mut net, &self.params).map_err(BundleError::Params)?;
        let name = match self.arch.kind_name() {
            "mlp" => "dl-mlp",
            "cnn" => "dl-cnn",
            _ => "dl-resmlp",
        };
        Ok(DlFieldSolver::new(
            net,
            self.spec,
            self.binning,
            self.norm,
            self.arch.input_kind(),
            name,
        )
        .with_reference_mass(self.reference_mass))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlpic_pic::grid::Grid1D;
    use dlpic_pic::init::TwoStreamInit;
    use dlpic_pic::solver::FieldSolver as _;

    fn tiny_bundle() -> ModelBundle {
        let spec = PhaseGridSpec::smoke();
        let arch = ArchSpec::Mlp {
            input: spec.cells(),
            hidden: vec![8],
            output: 64,
        };
        let mut net = arch.build(77);
        ModelBundle::from_network(
            &mut net,
            arch,
            spec,
            BinningShape::Cic,
            NormStats {
                min: 0.0,
                max: 123.0,
            },
        )
        .with_reference_mass(64_000.0)
    }

    #[test]
    fn encode_decode_round_trip() {
        let bundle = tiny_bundle();
        let decoded = ModelBundle::decode(&bundle.encode()).unwrap();
        assert_eq!(decoded.arch, bundle.arch);
        assert_eq!(decoded.spec, bundle.spec);
        assert_eq!(decoded.binning, bundle.binning);
        assert_eq!(decoded.norm, bundle.norm);
        assert_eq!(decoded.reference_mass, bundle.reference_mass);
        assert_eq!(decoded.params, bundle.params);
    }

    #[test]
    fn solver_from_bundle_reproduces_predictions() {
        let bundle = tiny_bundle();
        let grid = Grid1D::paper();
        let p = TwoStreamInit::random(0.2, 0.01, 1_000, 5).build(&grid);

        let mut s1 = bundle.clone().into_solver().unwrap();
        let mut s2 = ModelBundle::decode(&bundle.encode())
            .unwrap()
            .into_solver()
            .unwrap();
        let mut e1 = grid.zeros();
        let mut e2 = grid.zeros();
        s1.solve(&p, &grid, &mut e1);
        s2.solve(&p, &grid, &mut e2);
        assert_eq!(e1, e2);
        assert_eq!(s1.name(), "dl-mlp");
    }

    #[test]
    fn file_round_trip() {
        let bundle = tiny_bundle();
        let dir = std::env::temp_dir().join("dlpic-bundle-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.dlpb");
        bundle.save(&path).unwrap();
        let loaded = ModelBundle::load(&path).unwrap();
        assert_eq!(loaded.params, bundle.params);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(matches!(
            ModelBundle::decode(b"nope"),
            Err(BundleError::Malformed(_))
        ));
        let mut blob = tiny_bundle().encode();
        blob.truncate(blob.len() - 3);
        assert!(matches!(
            ModelBundle::decode(&blob),
            Err(BundleError::Malformed(_))
        ));
        blob[0] = b'X';
        assert!(matches!(
            ModelBundle::decode(&blob),
            Err(BundleError::Malformed(_))
        ));
    }
}

//! PIC vs Vlasov on the *same* scenario spec — the engine facade's
//! party trick, and the paper §VII's "Vlasov codes … not affected by the
//! PIC numerical noise" improvement path, demonstrated.
//!
//! One `two_stream` spec runs on `Backend::Traditional1D` (noisy,
//! particle-based) and on `Backend::Vlasov` (noise-free continuum). The
//! continuum growth-rate fit lands within a few percent of linear theory
//! with a near-perfect r²; the PIC fit carries the shot-noise penalty.
//!
//! ```sh
//! cargo run --release --example vlasov_two_stream
//! ```

use dlpic_repro::analytics::dispersion::TwoStreamDispersion;
use dlpic_repro::analytics::plot::{line_plot, PlotOptions};
use dlpic_repro::core::Scale;
use dlpic_repro::engine::{self, Backend, EngineError, LoadingSpec, SpeciesSpec};

fn main() -> Result<(), EngineError> {
    println!("== two-stream instability: PIC vs continuum Vlasov, one spec ==\n");

    // The registry scenario, warmed up for the continuum solver (which
    // needs a smooth f) and stepped finely enough to resolve the growth.
    let mut spec = engine::scenario("two_stream", Scale::Scaled)?;
    spec.species = SpeciesSpec::TwoStream { v0: 0.2, vth: 0.02 };
    spec.loading = LoadingSpec::Quiet {
        mode: 1,
        amplitude: 1.6e-4,
    }; // ε ≈ 1e-3
    spec.dt = 0.05;
    spec.n_steps = 800; // t = 40
    spec.ppc = 250;

    let theory = TwoStreamDispersion::new(0.2)
        .mode_growth_rate(1, dlpic_repro::pic::constants::paper_box_length());

    let start = std::time::Instant::now();
    let vlasov = engine::run(&spec, Backend::Vlasov)?;
    let t_vlasov = start.elapsed();
    let start = std::time::Instant::now();
    let pic = engine::run(&spec, Backend::Traditional1D)?;
    let t_pic = start.elapsed();
    println!(
        "ran both: vlasov {t_vlasov:.2?}, traditional PIC {t_pic:.2?} (same spec, two Backend values)\n"
    );

    let mut e1v = vlasov.history.mode_series(1).expect("mode 1");
    e1v.name = "vlasov".into();
    let mut e1p = pic.history.mode_series(1).expect("mode 1");
    e1p.name = "traditional".into();
    println!(
        "{}",
        line_plot(
            &[('*', &e1v), ('o', &e1p)],
            &PlotOptions::titled("E1 amplitude: continuum vs particles (log)").log_y(true),
        )
    );

    println!("growth rate of mode 1 (linear theory γ = {theory:.4}):");
    for summary in [&vlasov, &pic] {
        match summary.growth_rate(1) {
            Ok(f) => println!(
                "  {:<14}: γ = {:.4}  ({:+.2}% vs theory, r² = {:.5})",
                summary.backend,
                f.gamma,
                (f.gamma - theory) / theory * 100.0,
                f.r2
            ),
            Err(e) => println!("  {:<14}: no fit ({e})", summary.backend),
        }
    }

    println!("\nconservation:");
    for summary in [&vlasov, &pic] {
        println!(
            "  {:<14}: ΔE = {:.4}%, momentum drift {:.2e}",
            summary.backend,
            summary.energy_variation() * 100.0,
            summary.momentum_drift()
        );
    }
    println!("\n(distribution-level access — f(x, v) heatmaps, custom moments — stays");
    println!(" available on the lower-level `dlpic_repro::vlasov::VlasovSolver`.)");
    Ok(())
}

//! # dlpic-vlasov
//!
//! A continuum Vlasov–Poisson solver for the 1D-1V electrostatic plasma —
//! the paper's §VII first improvement path:
//!
//! > "more accurate training data sets can be obtained by running Vlasov
//! > codes that are not affected by the PIC numerical noise"
//!
//! The electron distribution `f(x, v)` evolves under
//!
//! ```text
//! ∂f/∂t + v·∂f/∂x + (q/m)·E·∂f/∂v = 0,     ∂E/∂x = ρ = 1 - ∫f dv
//! ```
//!
//! with the same normalized units as `dlpic-pic` (`ω_p = 1`, `ε₀ = 1`,
//! electron `q/m = −1`, neutralizing ion background `+1`).
//!
//! The method is the classic Cheng–Knorr split-step semi-Lagrangian
//! scheme: a half-step of x-advection, a Poisson solve + full v-advection,
//! then another half x-advection (Strang splitting, second order). Each
//! 1-D advection traces characteristics back and interpolates linearly —
//! unconditionally stable and positivity-preserving.
//!
//! [`generator`] converts Vlasov snapshots into DL training samples shaped
//! exactly like the PIC-harvested ones, so the `ablation` comparing
//! PIC-noise training data against noise-free data (the paper's
//! conjecture) is a one-line swap.

#![warn(missing_docs)]

pub mod generator;
pub mod solver;

pub use solver::{VlasovConfig, VlasovSolver};

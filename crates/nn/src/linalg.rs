//! Single-precision matrix kernels.
//!
//! Three GEMM variants cover everything dense and convolutional layers
//! need (with im2col):
//!
//! * [`matmul_nn`] — `C = A·B` (forward pass),
//! * [`matmul_tn`] — `C = Aᵀ·B` (weight gradients `dW = Xᵀ·dY`),
//! * [`matmul_nt`] — `C = A·Bᵀ` (input gradients `dX = dY·Wᵀ`).
//!
//! The kernels are cache-blocked and register-tiled for single-core
//! throughput: `nn`/`tn` run a 4×16 micro-kernel (64 scalar accumulators
//! — eight 8-lane vectors once LLVM vectorizes the fixed-size inner
//! loops) that writes each C tile exactly once instead of streaming the
//! whole C row per k-step; `nt` keeps eight 8-wide lane accumulators per
//! 2×4 output tile so the dot-product reduction vectorizes without
//! `-ffast-math`. Edge rows/columns that don't fill a tile fall back to
//! the axpy/dot forms, so any shape is handled exactly.
//!
//! Accumulation order is deterministic for a given shape.

/// Rows per register tile of the `nn`/`tn` micro-kernels.
const MR: usize = 4;
/// Columns per register tile of the `nn`/`tn` micro-kernels.
const NR: usize = 16;
/// f32 lanes per accumulator vector of the `nt` micro-kernel.
const LANES: usize = 8;

/// `C = A·B` where A is `m×k`, B is `k×n`, C is `m×n`. C is overwritten.
///
/// # Panics
/// Panics if slice lengths disagree with the dimensions.
pub fn matmul_nn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A size");
    assert_eq!(b.len(), k * n, "B size");
    assert_eq!(c.len(), m * n, "C size");
    if n == 0 || m == 0 {
        return;
    }
    let main_n = n - n % NR;
    let mut i0 = 0;
    for c_block in c.chunks_mut(MR * n) {
        let rows = c_block.len() / n;
        if rows == MR {
            let a_rows: [&[f32]; MR] = [
                &a[i0 * k..(i0 + 1) * k],
                &a[(i0 + 1) * k..(i0 + 2) * k],
                &a[(i0 + 2) * k..(i0 + 3) * k],
                &a[(i0 + 3) * k..(i0 + 4) * k],
            ];
            let mut j0 = 0;
            while j0 < main_n {
                let mut acc = [[0.0f32; NR]; MR];
                for kk in 0..k {
                    let bb: &[f32; NR] = b[kk * n + j0..kk * n + j0 + NR].try_into().unwrap();
                    for r in 0..MR {
                        let av = a_rows[r][kk];
                        for (ac, &bv) in acc[r].iter_mut().zip(bb) {
                            *ac += av * bv;
                        }
                    }
                }
                for (r, acc_row) in acc.iter().enumerate() {
                    c_block[r * n + j0..r * n + j0 + NR].copy_from_slice(acc_row);
                }
                j0 += NR;
            }
            if main_n < n {
                axpy_rows(a, b, c_block, i0, rows, k, n, main_n);
            }
        } else {
            axpy_rows(a, b, c_block, i0, rows, k, n, 0);
        }
        i0 += rows;
    }
}

/// The pre-tiling axpy form (`C_row += a_ik·B_row`), restricted to the
/// columns `j_start..n` — handles edge rows and edge columns of
/// [`matmul_nn`].
#[allow(clippy::too_many_arguments)]
fn axpy_rows(
    a: &[f32],
    b: &[f32],
    c_block: &mut [f32],
    i0: usize,
    rows: usize,
    k: usize,
    n: usize,
    j_start: usize,
) {
    for r in 0..rows {
        let c_row = &mut c_block[r * n + j_start..r * n + n];
        c_row.fill(0.0);
        let a_row = &a[(i0 + r) * k..(i0 + r + 1) * k];
        for (kk, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let b_row = &b[kk * n + j_start..kk * n + n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += aik * bv;
            }
        }
    }
}

/// `C = Aᵀ·B` where A is `k×m`, B is `k×n`, C is `m×n`. C is overwritten.
///
/// This is the weight-gradient kernel: `dW[in, out] = Xᵀ[in, batch]·dY[batch, out]`.
///
/// # Panics
/// Panics if slice lengths disagree with the dimensions.
pub fn matmul_tn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), k * m, "A size");
    assert_eq!(b.len(), k * n, "B size");
    assert_eq!(c.len(), m * n, "C size");
    if n == 0 || m == 0 {
        return;
    }
    let main_n = n - n % NR;
    let mut i0 = 0;
    for c_block in c.chunks_mut(MR * n) {
        let rows = c_block.len() / n;
        if rows == MR {
            // A's tile rows are contiguous: a[kk·m + i0 .. + MR].
            let mut j0 = 0;
            while j0 < main_n {
                let mut acc = [[0.0f32; NR]; MR];
                for kk in 0..k {
                    let aa: &[f32; MR] = a[kk * m + i0..kk * m + i0 + MR].try_into().unwrap();
                    let bb: &[f32; NR] = b[kk * n + j0..kk * n + j0 + NR].try_into().unwrap();
                    for r in 0..MR {
                        let av = aa[r];
                        for (ac, &bv) in acc[r].iter_mut().zip(bb) {
                            *ac += av * bv;
                        }
                    }
                }
                for (r, acc_row) in acc.iter().enumerate() {
                    c_block[r * n + j0..r * n + j0 + NR].copy_from_slice(acc_row);
                }
                j0 += NR;
            }
            if main_n < n {
                axpy_rows_tn(a, b, c_block, i0, rows, m, k, n, main_n);
            }
        } else {
            axpy_rows_tn(a, b, c_block, i0, rows, m, k, n, 0);
        }
        i0 += rows;
    }
}

/// Edge-row/edge-column axpy form of [`matmul_tn`] (A accessed as
/// `a[kk·m + i]`), restricted to columns `j_start..n`.
#[allow(clippy::too_many_arguments)]
fn axpy_rows_tn(
    a: &[f32],
    b: &[f32],
    c_block: &mut [f32],
    i0: usize,
    rows: usize,
    m: usize,
    k: usize,
    n: usize,
    j_start: usize,
) {
    for r in 0..rows {
        c_block[r * n + j_start..r * n + n].fill(0.0);
    }
    for kk in 0..k {
        let b_row = &b[kk * n + j_start..kk * n + n];
        for r in 0..rows {
            let aik = a[kk * m + i0 + r];
            if aik == 0.0 {
                continue;
            }
            let c_row = &mut c_block[r * n + j_start..r * n + n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += aik * bv;
            }
        }
    }
}

/// `C = A·Bᵀ` where A is `m×k`, B is `n×k`, C is `m×n`. C is overwritten.
///
/// This is the input-gradient kernel: `dX[batch, in] = dY[batch, out]·Wᵀ`
/// with `W` stored `[in, out]` passed via its transpose-free rows.
///
/// # Panics
/// Panics if slice lengths disagree with the dimensions.
pub fn matmul_nt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A size");
    assert_eq!(b.len(), n * k, "B size");
    assert_eq!(c.len(), m * n, "C size");
    if n == 0 || m == 0 {
        return;
    }
    const DR: usize = 2; // output rows per tile
    const DC: usize = 4; // output cols per tile
    let main_n = n - n % DC;
    let main_k = k - k % LANES;
    let mut i0 = 0;
    for c_block in c.chunks_mut(DR * n) {
        let rows = c_block.len() / n;
        if rows == DR {
            let a0 = &a[i0 * k..(i0 + 1) * k];
            let a1 = &a[(i0 + 1) * k..(i0 + 2) * k];
            let mut j0 = 0;
            while j0 < main_n {
                // Eight 8-lane accumulators: the reduction over k stays
                // vectorized without reassociation flags.
                let mut acc = [[[0.0f32; LANES]; DC]; DR];
                let [acc0, acc1] = &mut acc;
                let mut kb = 0;
                while kb < main_k {
                    let av0: &[f32; LANES] = a0[kb..kb + LANES].try_into().unwrap();
                    let av1: &[f32; LANES] = a1[kb..kb + LANES].try_into().unwrap();
                    for (cdx, (c0, c1)) in acc0.iter_mut().zip(acc1.iter_mut()).enumerate() {
                        let p = (j0 + cdx) * k + kb;
                        let bv: &[f32; LANES] = b[p..p + LANES].try_into().unwrap();
                        for l in 0..LANES {
                            c0[l] += av0[l] * bv[l];
                            c1[l] += av1[l] * bv[l];
                        }
                    }
                    kb += LANES;
                }
                for kk in main_k..k {
                    for (cdx, (c0, c1)) in acc0.iter_mut().zip(acc1.iter_mut()).enumerate() {
                        let bv = b[(j0 + cdx) * k + kk];
                        c0[0] += a0[kk] * bv;
                        c1[0] += a1[kk] * bv;
                    }
                }
                for (r, acc_row) in acc.iter().enumerate() {
                    for (cdx, lanes) in acc_row.iter().enumerate() {
                        c_block[r * n + j0 + cdx] = lanes.iter().sum();
                    }
                }
                j0 += DC;
            }
            for j in main_n..n {
                let b_row = &b[j * k..(j + 1) * k];
                c_block[j] = dot(a0, b_row);
                c_block[n + j] = dot(a1, b_row);
            }
        } else {
            for r in 0..rows {
                let a_row = &a[(i0 + r) * k..(i0 + r + 1) * k];
                for (j, cv) in c_block[r * n..(r + 1) * n].iter_mut().enumerate() {
                    *cv = dot(a_row, &b[j * k..(j + 1) * k]);
                }
            }
        }
        i0 += rows;
    }
}

/// Lane-accumulated dot product (vectorizes without fast-math) — the edge
/// path of [`matmul_nt`].
fn dot(a: &[f32], b: &[f32]) -> f32 {
    let mut lanes = [0.0f32; LANES];
    let a_chunks = a.chunks_exact(LANES);
    let b_chunks = b.chunks_exact(LANES);
    let a_rem = a_chunks.remainder();
    let b_rem = b_chunks.remainder();
    for (x, y) in a_chunks.zip(b_chunks) {
        for l in 0..LANES {
            lanes[l] += x[l] * y[l];
        }
    }
    let mut s: f32 = lanes.iter().sum();
    for (x, y) in a_rem.iter().zip(b_rem) {
        s += x * y;
    }
    s
}

/// Adds a bias row to every row of a `m×n` matrix.
///
/// # Panics
/// Panics if sizes disagree.
pub fn add_bias(c: &mut [f32], bias: &[f32], m: usize, n: usize) {
    assert_eq!(c.len(), m * n, "C size");
    assert_eq!(bias.len(), n, "bias size");
    for row in c.chunks_mut(n) {
        for (cv, &bv) in row.iter_mut().zip(bias) {
            *cv += bv;
        }
    }
}

/// Column sums of a `m×n` matrix, accumulated into `out` (bias gradients).
///
/// # Panics
/// Panics if sizes disagree.
pub fn col_sums_into(c: &[f32], out: &mut [f32], m: usize, n: usize) {
    assert_eq!(c.len(), m * n, "C size");
    assert_eq!(out.len(), n, "out size");
    for row in c.chunks(n) {
        for (o, &v) in out.iter_mut().zip(row) {
            *o += v;
        }
    }
}

/// Reference O(mnk) naive matmul — the oracle for property tests.
pub fn matmul_naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64; // higher-precision accumulation for the oracle
            for kk in 0..k {
                acc += a[i * k + kk] as f64 * b[kk * n + j] as f64;
            }
            c[i * n + j] = acc as f32;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "elem {i}: {x} vs {y}"
            );
        }
    }

    fn gen(len: usize, s: u64) -> Vec<f32> {
        (0..len)
            .map(|i| (((i as u64 + s) * 2654435761 % 1000) as f32 / 500.0) - 1.0)
            .collect()
    }

    #[test]
    fn identity_multiplication() {
        let a = vec![1.0, 2.0, 3.0, 4.0]; // 2x2
        let eye = vec![1.0, 0.0, 0.0, 1.0];
        let mut c = vec![0.0; 4];
        matmul_nn(&a, &eye, &mut c, 2, 2, 2);
        assert_eq!(c, a);
    }

    #[test]
    fn known_product() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![5.0, 6.0, 7.0, 8.0];
        let mut c = vec![0.0; 4];
        matmul_nn(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        // A is k×m = 3×2; Aᵀ·B with B k×n = 3×2.
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 3x2
        let b = vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]; // 3x2
        let at = vec![1.0, 3.0, 5.0, 2.0, 4.0, 6.0]; // 2x3 explicit transpose
        let mut c1 = vec![0.0; 4];
        let mut c2 = vec![0.0; 4];
        matmul_tn(&a, &b, &mut c1, 2, 3, 2);
        matmul_nn(&at, &b, &mut c2, 2, 3, 2);
        assert_close(&c1, &c2, 1e-6);
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let a = vec![1.0, 2.0, 3.0, 4.0]; // 2x2
        let b = vec![5.0, 6.0, 7.0, 8.0]; // 2x2, use Bᵀ
        let bt = vec![5.0, 7.0, 6.0, 8.0];
        let mut c1 = vec![0.0; 4];
        let mut c2 = vec![0.0; 4];
        matmul_nt(&a, &b, &mut c1, 2, 2, 2);
        matmul_nn(&a, &bt, &mut c2, 2, 2, 2);
        assert_close(&c1, &c2, 1e-6);
    }

    #[test]
    fn bias_and_col_sums_round_trip() {
        let mut c = vec![0.0; 6];
        add_bias(&mut c, &[1.0, 2.0, 3.0], 2, 3);
        assert_eq!(c, vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
        let mut sums = vec![0.0; 3];
        col_sums_into(&c, &mut sums, 2, 3);
        assert_eq!(sums, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn tile_multiple_shape_matches_oracle() {
        // 128 is a multiple of every tile dimension: the pure micro-kernel
        // path with no edge handling.
        let m = 128;
        let a = gen(m * m, 3);
        let b = gen(m * m, 11);
        let mut c = vec![0.0; m * m];
        matmul_nn(&a, &b, &mut c, m, m, m);
        let oracle = matmul_naive(&a, &b, m, m, m);
        assert_close(&c, &oracle, 1e-4);
    }

    #[test]
    fn awkward_shapes_match_oracle_all_kernels() {
        // Shapes straddling every tile boundary: rows % 4, cols % 16,
        // k % 8 all nonzero, plus degenerate 1-row/1-col cases.
        let shapes = [
            (1, 1, 1),
            (1, 7, 1),
            (3, 5, 2),
            (4, 16, 16),
            (5, 17, 18),
            (6, 9, 31),
            (7, 33, 15),
            (9, 8, 17),
            (13, 21, 19),
            (16, 24, 33),
            (1, 100, 37),
        ];
        for &(m, k, n) in &shapes {
            let a = gen(m * k, 5);
            let b = gen(k * n, 9);
            let mut c = vec![0.0; m * n];
            matmul_nn(&a, &b, &mut c, m, k, n);
            assert_close(&c, &matmul_naive(&a, &b, m, k, n), 1e-4);

            // tn: A stored k×m; oracle via explicit transpose.
            let a_km = gen(k * m, 21);
            let mut at = vec![0.0f32; m * k];
            for kk in 0..k {
                for i in 0..m {
                    at[i * k + kk] = a_km[kk * m + i];
                }
            }
            let mut c_tn = vec![0.0; m * n];
            matmul_tn(&a_km, &b, &mut c_tn, m, k, n);
            assert_close(&c_tn, &matmul_naive(&at, &b, m, k, n), 1e-4);

            // nt: B stored n×k; oracle via explicit transpose.
            let b_nk = gen(n * k, 33);
            let mut bt = vec![0.0f32; k * n];
            for j in 0..n {
                for kk in 0..k {
                    bt[kk * n + j] = b_nk[j * k + kk];
                }
            }
            let mut c_nt = vec![0.0; m * n];
            matmul_nt(&a, &b_nk, &mut c_nt, m, k, n);
            assert_close(&c_nt, &matmul_naive(&a, &bt, m, k, n), 1e-4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn nn_matches_oracle(
            m in 1usize..20, k in 1usize..20, n in 1usize..36,
            seed in 0u64..1000,
        ) {
            let a = gen(m * k, seed);
            let b = gen(k * n, seed + 1);
            let mut c = vec![0.0; m * n];
            matmul_nn(&a, &b, &mut c, m, k, n);
            let oracle = matmul_naive(&a, &b, m, k, n);
            for (x, y) in c.iter().zip(&oracle) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }

        #[test]
        fn tn_and_nt_consistent_with_nn(
            m in 1usize..10, k in 1usize..12, n in 1usize..20,
            seed in 0u64..1000,
        ) {
            // tn: A (k×m) — build explicit transpose and compare.
            let a_km = gen(k * m, seed);
            let b_kn = gen(k * n, seed + 7);
            let mut at = vec![0.0f32; m * k];
            for kk in 0..k {
                for i in 0..m {
                    at[i * k + kk] = a_km[kk * m + i];
                }
            }
            let mut c_tn = vec![0.0; m * n];
            let mut c_ref = vec![0.0; m * n];
            matmul_tn(&a_km, &b_kn, &mut c_tn, m, k, n);
            matmul_nn(&at, &b_kn, &mut c_ref, m, k, n);
            for (x, y) in c_tn.iter().zip(&c_ref) {
                prop_assert!((x - y).abs() < 1e-4);
            }
            // nt: B (n×k).
            let a_mk = gen(m * k, seed + 13);
            let b_nk = gen(n * k, seed + 19);
            let mut bt = vec![0.0f32; k * n];
            for j in 0..n {
                for kk in 0..k {
                    bt[kk * n + j] = b_nk[j * k + kk];
                }
            }
            let mut c_nt = vec![0.0; m * n];
            let mut c_ref2 = vec![0.0; m * n];
            matmul_nt(&a_mk, &b_nk, &mut c_nt, m, k, n);
            matmul_nn(&a_mk, &bt, &mut c_ref2, m, k, n);
            for (x, y) in c_nt.iter().zip(&c_ref2) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }
    }
}

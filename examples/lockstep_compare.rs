//! Lockstep backend comparison: the paper's figure methodology as one
//! call. Runs the two-stream scenario on the traditional 1-D solver (the
//! reference), the DL solver and the continuum Vlasov solver on identical
//! specs, stepping all three side by side, and prints the per-step
//! residuals and per-backend growth rates.
//!
//! ```sh
//! cargo run --release --example lockstep_compare
//! DLPIC_SCALE=scaled cargo run --release --example lockstep_compare
//! ```

use dlpic_repro::analytics::dispersion::TwoStreamDispersion;
use dlpic_repro::core::Scale;
use dlpic_repro::engine::{self, compare, Backend, EngineError, SpeciesSpec};

fn scale_from_env() -> Scale {
    std::env::var("DLPIC_SCALE")
        .ok()
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Smoke)
}

fn main() -> Result<(), EngineError> {
    let spec = engine::scenario("two_stream", scale_from_env())?;
    let backends = [Backend::Traditional1D, Backend::Dl1D, Backend::Vlasov];
    println!(
        "lockstep `{}`: {} steps on {:?}\n",
        spec.name, spec.n_steps, backends
    );

    let report = compare::lockstep(&spec, &backends)?;

    println!("per-step residuals vs {}:", report.reference);
    for diff in &report.diffs {
        println!(
            "  {:<14} max |ΔE_tot|/E = {:.3e}   max |ΔE1| = {:.3e}",
            diff.backend,
            diff.max_total_energy_rel(),
            diff.max_mode_amp_abs(0).unwrap_or(0.0),
        );
    }

    let theory = match spec.species {
        SpeciesSpec::TwoStream { v0, .. } => Some(
            TwoStreamDispersion::new(v0).mode_growth_rate(1, 2.0 * std::f64::consts::PI / 3.06),
        ),
        _ => None,
    };
    println!("\nE1 growth rates (Table 1's comparison):");
    for (backend, gamma) in report.growth_rates(1) {
        match gamma {
            Ok(g) => {
                print!("  {backend:<14} γ = {g:.4}");
                if let Some(th) = theory {
                    print!("   [theory {th:.4}, {:+.1}%]", (g - th) / th * 100.0);
                }
                println!();
            }
            Err(e) => println!("  {backend:<14} no fit ({e})"),
        }
    }

    println!("\nwall time per backend:");
    for s in &report.summaries {
        println!("  {:<14} {:.3}s", s.backend, s.wall_seconds);
    }
    Ok(())
}

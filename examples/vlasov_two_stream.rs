//! The two-stream instability on the continuum Vlasov–Poisson solver —
//! the paper's §VII "Vlasov codes … not affected by the PIC numerical
//! noise" improvement path, demonstrated.
//!
//! Runs the same physical configuration as the PIC quickstart and shows
//! what noise-free dynamics buy: a growth-rate measurement within a few
//! percent of linear theory with a near-perfect exponential fit, and a
//! clean phase-space picture with no shot noise.
//!
//! ```sh
//! cargo run --release --example vlasov_two_stream
//! ```

use dlpic_repro::analytics::dispersion::TwoStreamDispersion;
use dlpic_repro::analytics::fit::{fit_growth_rate, GrowthFitOptions};
use dlpic_repro::analytics::plot::{heatmap, line_plot, PlotOptions};
use dlpic_repro::analytics::series::TimeSeries;
use dlpic_repro::vlasov::{VlasovConfig, VlasovSolver};

fn main() {
    let (v0, vth) = (0.2, 0.02);
    println!("== Vlasov-Poisson two-stream instability: v0 = ±{v0}, vth = {vth} ==\n");

    let mut solver = VlasovSolver::new(VlasovConfig::two_stream(v0, vth));
    let theory =
        TwoStreamDispersion::new(v0).mode_growth_rate(1, solver.config().grid.length());

    let start = std::time::Instant::now();
    let mut e1 = TimeSeries::new("E1 (vlasov)");
    let steps = 800; // t = 40 at dt = 0.05
    for _ in 0..steps {
        e1.push(solver.time(), solver.field_mode(1));
        solver.step();
    }
    println!(
        "ran {} steps ({}x{} phase grid) to t = {:.0} in {:.2?}\n",
        steps,
        solver.config().grid.ncells(),
        solver.config().nv,
        solver.time(),
        start.elapsed()
    );

    println!(
        "{}",
        line_plot(
            &[('*', &e1)],
            &PlotOptions::titled("E1 amplitude, Vlasov-Poisson (log scale)").log_y(true),
        )
    );

    let fit = fit_growth_rate(&e1.times, &e1.values, GrowthFitOptions::default())
        .expect("growth phase detected");
    println!("growth rate:");
    println!("  linear theory : γ = {theory:.4}");
    println!(
        "  Vlasov        : γ = {:.4}  ({:+.2}% vs theory, r² = {:.5})",
        fit.gamma,
        (fit.gamma - theory) / theory * 100.0,
        fit.r2
    );
    println!("  (compare the PIC quickstart: ~10% off with r² ≈ 0.99 — shot noise)\n");

    // Phase space at the end of the run: the trapping vortex, noise-free.
    // Downsample the 256 velocity rows to 32 for the terminal.
    let nx = solver.config().grid.ncells();
    let nv = solver.config().nv;
    let rows = 32;
    let mut small = vec![0.0f32; rows * nx];
    for (iv, f) in solver.distribution().chunks(nx).enumerate() {
        let r = iv * rows / nv;
        for (j, &v) in f.iter().enumerate() {
            small[r * nx + j] += v as f32;
        }
    }
    println!("{}", heatmap(&small, nx, rows, "f(x, v) at t = 40 (noise-free vortex)"));

    println!("conservation over the run:");
    println!("  mass     : {:.6} (box length = {:.6})", solver.mass(), solver.config().grid.length());
    println!("  momentum : {:.2e}", solver.momentum());
    println!("  energy   : {:.5}", solver.total_energy());
}

//! Growth-rate extraction from simulated mode-amplitude histories.
//!
//! Fig. 4 (bottom) of the paper overlays the measured `E1(t)` of the
//! traditional and DL-based PIC runs on the analytical growth-rate slope.
//! To *quantify* that comparison (rather than eyeball it), this module fits
//! `log E1` against time over the exponential-growth window, which it
//! selects automatically: after the noise floor, before saturation.

/// Why a fit could not be produced.
///
/// The legacy `Option`-returning entry points collapse all of these to
/// `None` (and panicked on length mismatches); the `try_*` variants
/// return the reason so callers — the `dlpic_repro::engine` API in
/// particular — can surface it instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitError {
    /// `xs` and `ys` have different lengths.
    LengthMismatch {
        /// Number of abscissa points.
        xs: usize,
        /// Number of ordinate points.
        ys: usize,
    },
    /// Fewer usable points than the fit requires.
    TooFewPoints {
        /// Points available.
        have: usize,
        /// Points required.
        need: usize,
    },
    /// All abscissa values coincide; the slope is undefined.
    DegenerateAbscissa,
    /// No positive amplitude anywhere — nothing to fit in the log domain.
    NoPositiveAmplitude,
    /// The amplitude never reached the saturation threshold; no credible
    /// growth phase exists (e.g. a stable run at the noise floor).
    NoGrowthPhase,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::LengthMismatch { xs, ys } => {
                write!(f, "x/y length mismatch: {xs} vs {ys}")
            }
            Self::TooFewPoints { have, need } => {
                write!(f, "too few points for a fit: have {have}, need {need}")
            }
            Self::DegenerateAbscissa => write!(f, "all x values coincide"),
            Self::NoPositiveAmplitude => write!(f, "no positive amplitude to fit"),
            Self::NoGrowthPhase => write!(f, "no growth phase detected"),
        }
    }
}

impl std::error::Error for FitError {}

/// Ordinary least-squares line fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r2: f64,
}

/// Fits `y = slope·x + intercept` by least squares.
///
/// Returns `None` on any [`FitError`]; use [`try_linear_fit`] for the
/// reason.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<LinFit> {
    try_linear_fit(xs, ys).ok()
}

/// Fits `y = slope·x + intercept` by least squares, reporting failures.
pub fn try_linear_fit(xs: &[f64], ys: &[f64]) -> Result<LinFit, FitError> {
    if xs.len() != ys.len() {
        return Err(FitError::LengthMismatch {
            xs: xs.len(),
            ys: ys.len(),
        });
    }
    let n = xs.len();
    if n < 2 {
        return Err(FitError::TooFewPoints { have: n, need: 2 });
    }
    let nf = n as f64;
    let mx = xs.iter().sum::<f64>() / nf;
    let my = ys.iter().sum::<f64>() / nf;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mx) * (x - mx);
        sxy += (x - mx) * (y - my);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 {
        return Err(FitError::DegenerateAbscissa);
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r2 = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Ok(LinFit {
        slope,
        intercept,
        r2,
    })
}

/// Options for the automatic growth-window selection.
#[derive(Debug, Clone, Copy)]
pub struct GrowthFitOptions {
    /// Lower amplitude threshold as a fraction of the peak amplitude; points
    /// below it are considered noise floor.
    pub lo_frac: f64,
    /// Upper amplitude threshold as a fraction of the peak; points above it
    /// are considered saturated.
    pub hi_frac: f64,
    /// Minimum number of points required for a fit.
    pub min_points: usize,
}

impl Default for GrowthFitOptions {
    fn default() -> Self {
        Self {
            lo_frac: 0.02,
            hi_frac: 0.5,
            min_points: 5,
        }
    }
}

/// Result of fitting an exponential-growth phase.
#[derive(Debug, Clone, Copy)]
pub struct GrowthFit {
    /// Fitted growth rate (slope of `log amplitude` vs time).
    pub gamma: f64,
    /// Fitted intercept (`log amplitude` at `t = 0`).
    pub log_intercept: f64,
    /// Goodness of fit on the selected window.
    pub r2: f64,
    /// Start time of the window used.
    pub t_start: f64,
    /// End time of the window used.
    pub t_end: f64,
    /// Number of points in the window.
    pub n_points: usize,
}

impl GrowthFit {
    /// Evaluates the fitted exponential at time `t`.
    pub fn amplitude_at(&self, t: f64) -> f64 {
        (self.log_intercept + self.gamma * t).exp()
    }
}

/// Fits the exponential-growth phase of an amplitude history.
///
/// The window is the contiguous run of samples *ending at the first point
/// that exceeds `hi_frac·peak`* and starting at the last point before it
/// that is below `lo_frac·peak`. Non-positive amplitudes are excluded
/// (log-domain fit).
///
/// Returns `None` when no credible growth phase exists — e.g. a stable run
/// whose amplitude stays at the noise floor. Use [`try_fit_growth_rate`]
/// for the reason.
pub fn fit_growth_rate(times: &[f64], amps: &[f64], opts: GrowthFitOptions) -> Option<GrowthFit> {
    try_fit_growth_rate(times, amps, opts).ok()
}

/// Fits the exponential-growth phase, reporting failures (see
/// [`fit_growth_rate`] for the window-selection procedure).
pub fn try_fit_growth_rate(
    times: &[f64],
    amps: &[f64],
    opts: GrowthFitOptions,
) -> Result<GrowthFit, FitError> {
    if times.len() != amps.len() {
        return Err(FitError::LengthMismatch {
            xs: times.len(),
            ys: amps.len(),
        });
    }
    let peak = amps.iter().copied().fold(f64::MIN, f64::max);
    // NaN-rejecting form: `peak <= 0.0` would accept NaN.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(peak > 0.0) {
        return Err(FitError::NoPositiveAmplitude);
    }
    let lo = peak * opts.lo_frac;
    let hi = peak * opts.hi_frac;

    // First crossing of the saturation threshold.
    let end = amps
        .iter()
        .position(|&a| a >= hi)
        .ok_or(FitError::NoGrowthPhase)?;
    // Walk backwards to the last sub-floor sample before `end`.
    let mut start = 0;
    for i in (0..end).rev() {
        if amps[i] <= lo {
            start = i + 1;
            break;
        }
    }
    // Collect the log-domain points.
    let mut xs = Vec::with_capacity(end - start + 1);
    let mut ys = Vec::with_capacity(end - start + 1);
    for i in start..=end {
        if amps[i] > 0.0 {
            xs.push(times[i]);
            ys.push(amps[i].ln());
        }
    }
    if xs.len() < opts.min_points {
        return Err(FitError::TooFewPoints {
            have: xs.len(),
            need: opts.min_points,
        });
    }
    let fit = try_linear_fit(&xs, &ys)?;
    Ok(GrowthFit {
        gamma: fit.slope,
        log_intercept: fit.intercept,
        r2: fit.r2,
        t_start: *xs.first().expect("nonempty"),
        t_end: *xs.last().expect("nonempty"),
        n_points: xs.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_line_recovered() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 1.5).collect();
        let f = linear_fit(&xs, &ys).unwrap();
        assert!((f.slope - 3.0).abs() < 1e-12);
        assert!((f.intercept + 1.5).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(linear_fit(&[1.0], &[2.0]).is_none());
        assert!(linear_fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]).is_none());
        assert!(linear_fit(&[], &[]).is_none());
    }

    #[test]
    fn try_variants_report_the_reason() {
        assert_eq!(
            try_linear_fit(&[1.0], &[1.0, 2.0]),
            Err(FitError::LengthMismatch { xs: 1, ys: 2 })
        );
        assert_eq!(
            try_linear_fit(&[1.0], &[2.0]),
            Err(FitError::TooFewPoints { have: 1, need: 2 })
        );
        assert_eq!(
            try_linear_fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]),
            Err(FitError::DegenerateAbscissa)
        );
        let opts = GrowthFitOptions::default();
        assert_eq!(
            try_fit_growth_rate(&[0.0, 1.0], &[0.0, 0.0], opts).err(),
            Some(FitError::NoPositiveAmplitude)
        );
        assert_eq!(
            try_fit_growth_rate(&[0.0], &[1.0, 2.0], opts).err(),
            Some(FitError::LengthMismatch { xs: 1, ys: 2 })
        );
    }

    #[test]
    fn r2_decreases_with_noise() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        let clean: Vec<f64> = xs.iter().map(|x| 2.0 * x).collect();
        // Deterministic pseudo-noise.
        let noisy: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 2.0 * x + ((i * 2654435761) % 1000) as f64 / 500.0 - 1.0)
            .collect();
        let fc = linear_fit(&xs, &clean).unwrap();
        let fnz = linear_fit(&xs, &noisy).unwrap();
        assert!(fc.r2 > fnz.r2);
        assert!((fnz.slope - 2.0).abs() < 0.3);
    }

    /// Synthetic instability: noise floor, exponential growth, logistic
    /// saturation — the canonical shape of `E1(t)` in a two-stream run.
    fn synthetic_instability(gamma: f64, floor: f64, sat: f64) -> (Vec<f64>, Vec<f64>) {
        let a0 = floor;
        let times: Vec<f64> = (0..200).map(|i| i as f64 * 0.2).collect();
        let amps: Vec<f64> = times
            .iter()
            .map(|&t| {
                let raw = a0 * (gamma * t).exp();
                // Sharp-kneed saturation at `sat` (p = 4 generalized
                // logistic) plus a small constant floor: exponential until
                // very close to the peak, like a real instability trace.
                let r = raw / sat;
                sat * r / (1.0 + r.powi(4)).powf(0.25) + floor * 0.3
            })
            .collect();
        (times, amps)
    }

    #[test]
    fn recovers_growth_rate_from_synthetic_history() {
        let gamma = 0.3536;
        let (t, a) = synthetic_instability(gamma, 1e-4, 0.1);
        let fit = fit_growth_rate(&t, &a, GrowthFitOptions::default()).unwrap();
        assert!(
            (fit.gamma - gamma).abs() / gamma < 0.05,
            "fit {} vs true {gamma}",
            fit.gamma
        );
        assert!(fit.r2 > 0.98);
        assert!(fit.t_end <= t[t.len() - 1]);
    }

    #[test]
    fn stable_history_yields_none_or_tiny_gamma() {
        // Flat noise floor: no saturation crossing beyond floor wiggle.
        let times: Vec<f64> = (0..100).map(|i| i as f64 * 0.2).collect();
        let amps: Vec<f64> = (0..100)
            .map(|i| 1e-4 * (1.0 + 0.2 * ((i * 37 % 17) as f64 / 17.0 - 0.5)))
            .collect();
        match fit_growth_rate(&times, &amps, GrowthFitOptions::default()) {
            None => {}
            Some(f) => assert!(f.gamma.abs() < 0.05, "spurious growth {}", f.gamma),
        }
    }

    #[test]
    fn amplitude_at_matches_fit() {
        let (t, a) = synthetic_instability(0.25, 1e-4, 0.1);
        let fit = fit_growth_rate(&t, &a, GrowthFitOptions::default()).unwrap();
        let mid = (fit.t_start + fit.t_end) / 2.0;
        let idx = t.iter().position(|&x| x >= mid).unwrap();
        let rel = (fit.amplitude_at(t[idx]) - a[idx]).abs() / a[idx];
        assert!(rel < 0.5, "fitted curve should track data, rel err {rel}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn recovers_gamma_across_parameter_space(
            gamma in 0.1f64..0.5,
            floor_exp in -6.0f64..-3.0,
        ) {
            let floor = 10f64.powf(floor_exp);
            let (t, a) = synthetic_instability(gamma, floor, 0.1);
            if let Some(fit) = fit_growth_rate(&t, &a, GrowthFitOptions::default()) {
                prop_assert!((fit.gamma - gamma).abs() / gamma < 0.10,
                    "fit {} vs true {gamma}", fit.gamma);
            } else {
                // Acceptable only if growth never cleared the floor.
                let peak = a.iter().copied().fold(f64::MIN, f64::max);
                prop_assert!(peak < floor * 10.0);
            }
        }

        #[test]
        fn fit_is_shift_invariant(
            slope in -2.0f64..2.0,
            intercept in -5.0f64..5.0,
            shift in -10.0f64..10.0,
        ) {
            let xs: Vec<f64> = (0..20).map(|i| i as f64 * 0.5).collect();
            let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
            let shifted: Vec<f64> = ys.iter().map(|y| y + shift).collect();
            let f1 = linear_fit(&xs, &ys).unwrap();
            let f2 = linear_fit(&xs, &shifted).unwrap();
            prop_assert!((f1.slope - f2.slope).abs() < 1e-9);
            prop_assert!((f2.intercept - f1.intercept - shift).abs() < 1e-9);
        }
    }
}

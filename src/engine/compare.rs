//! Lockstep backend comparison — the paper's figure methodology as an
//! API.
//!
//! The paper's core experiments (Figs. 4–6, Table 1) run the traditional
//! and DL field solvers on *identical initial conditions* and compare the
//! evolutions. [`lockstep`] does exactly that: it starts one
//! [`Session`] per backend on the same spec, advances them side by side,
//! and records per-step diagnostic residuals against the first backend
//! (the reference) while each run's full [`RunSummary`] is collected as
//! usual. Because every backend is driven through the same session
//! primitive, a lockstep run is bit-identical to running each backend
//! alone.

use super::error::EngineError;
use super::observer::{RunSummary, Sample};
use super::runner::Engine;
use super::session::Session;
use super::spec::ScenarioSpec;
use super::Backend;

/// Per-step residuals of one backend against the reference backend.
#[derive(Debug, Clone)]
pub struct LockstepDiff {
    /// Display name of the compared backend.
    pub backend: String,
    /// `|ΔE_total| / max(|E_total_ref|, ε)` per step — the headline
    /// conservation comparison of the paper's Fig. 5.
    pub total_energy_rel: Vec<f64>,
    /// `|ΔE_field|` per step (absolute: field energy starts near zero).
    pub field_energy_abs: Vec<f64>,
    /// `|Δp|` per step.
    pub momentum_abs: Vec<f64>,
    /// `|Δamp|` per tracked mode per step (`[mode slot][step]`).
    pub mode_amp_abs: Vec<Vec<f64>>,
}

impl LockstepDiff {
    fn new(backend: String, modes: usize) -> Self {
        Self {
            backend,
            total_energy_rel: Vec::new(),
            field_energy_abs: Vec::new(),
            momentum_abs: Vec::new(),
            mode_amp_abs: vec![Vec::new(); modes],
        }
    }

    fn push(&mut self, reference: &Sample, other: &Sample) {
        let scale = reference.total().abs().max(1e-300);
        self.total_energy_rel
            .push((other.total() - reference.total()).abs() / scale);
        self.field_energy_abs
            .push((other.field - reference.field).abs());
        self.momentum_abs
            .push((other.momentum - reference.momentum).abs());
        for (slot, (a, b)) in self
            .mode_amp_abs
            .iter_mut()
            .zip(reference.mode_amps.iter().zip(&other.mode_amps))
        {
            slot.push((b - a).abs());
        }
    }

    /// Largest relative total-energy residual over the run.
    pub fn max_total_energy_rel(&self) -> f64 {
        self.total_energy_rel.iter().copied().fold(0.0, f64::max)
    }

    /// Largest absolute mode-amplitude residual of tracked-mode slot `i`.
    pub fn max_mode_amp_abs(&self, slot: usize) -> Option<f64> {
        self.mode_amp_abs
            .get(slot)
            .map(|s| s.iter().copied().fold(0.0, f64::max))
    }
}

/// The result of a lockstep comparison: per-step residuals of every
/// non-reference backend plus the full per-backend run summaries.
#[derive(Debug, Clone)]
pub struct ComparisonReport {
    /// Scenario name.
    pub scenario: String,
    /// Display name of the reference backend (the first one passed).
    pub reference: String,
    /// Sample times (shared by construction — all backends run the same
    /// spec in lockstep).
    pub times: Vec<f64>,
    /// Residual series per non-reference backend, in input order.
    pub diffs: Vec<LockstepDiff>,
    /// Full summaries of every backend (reference first), directly
    /// comparable to individual [`Engine::run`] output.
    pub summaries: Vec<RunSummary>,
}

impl ComparisonReport {
    /// The residuals of a backend, looked up by display name.
    pub fn diff(&self, backend: &str) -> Option<&LockstepDiff> {
        self.diffs.iter().find(|d| d.backend == backend)
    }

    /// The full summary of a backend, looked up by display name.
    pub fn summary(&self, backend: &str) -> Option<&RunSummary> {
        self.summaries.iter().find(|s| s.backend == backend)
    }

    /// Growth rate of tracked mode `m` per backend, in summary order —
    /// the Table 1 comparison (`γ_DL` vs `γ_traditional` vs theory).
    pub fn growth_rates(&self, mode: usize) -> Vec<(String, Result<f64, EngineError>)> {
        self.summaries
            .iter()
            .map(|s| (s.backend.clone(), s.growth_rate(mode).map(|fit| fit.gamma)))
            .collect()
    }
}

/// Runs `spec` on every backend in lockstep (no trained models — DL
/// backends use the untrained fallback; bring models via
/// [`lockstep_with`]). The first backend is the reference the residuals
/// are measured against.
pub fn lockstep(
    spec: &ScenarioSpec,
    backends: &[Backend],
) -> Result<ComparisonReport, EngineError> {
    lockstep_with(&Engine::new(), spec, backends)
}

/// [`lockstep`] with a configured engine (trained models, numerics
/// overrides) building every session.
pub fn lockstep_with(
    engine: &Engine,
    spec: &ScenarioSpec,
    backends: &[Backend],
) -> Result<ComparisonReport, EngineError> {
    let sessions = backends
        .iter()
        .map(|&b| engine.start(spec, b))
        .collect::<Result<Vec<_>, _>>()?;
    lockstep_sessions(sessions)
}

/// The core lockstep driver over pre-built sessions (they must share one
/// scenario; the first is the reference). Steps every session through the
/// spec's `n_steps` side by side, accumulating per-step residuals, then
/// finishes each into its summary.
pub fn lockstep_sessions(mut sessions: Vec<Session>) -> Result<ComparisonReport, EngineError> {
    let invalid = |what: String| EngineError::InvalidSpec {
        scenario: sessions
            .first()
            .map(|s| s.spec().name.clone())
            .unwrap_or_default(),
        what,
    };
    if sessions.len() < 2 {
        return Err(invalid(format!(
            "a lockstep comparison needs at least two backends (got {})",
            sessions.len()
        )));
    }
    let spec = sessions[0].spec().clone();
    for s in &sessions[1..] {
        if *s.spec() != spec {
            return Err(invalid(format!(
                "lockstep sessions must share one spec (`{}` vs `{}`)",
                spec.name,
                s.spec().name
            )));
        }
    }
    if sessions.iter().any(|s| s.steps_done() != 0) {
        return Err(invalid(
            "lockstep sessions must start from step 0 (one was already advanced)".into(),
        ));
    }

    let modes = spec.tracked_modes.len();
    let mut times = Vec::with_capacity(spec.n_steps + 1);
    let mut diffs: Vec<LockstepDiff> = sessions[1..]
        .iter()
        .map(|s| LockstepDiff::new(s.backend().to_string(), modes))
        .collect();

    let record = |samples: &[Sample], times: &mut Vec<f64>, diffs: &mut Vec<LockstepDiff>| {
        times.push(samples[0].time);
        for (diff, other) in diffs.iter_mut().zip(&samples[1..]) {
            diff.push(&samples[0], other);
        }
    };
    for _ in 0..spec.n_steps {
        let samples: Vec<Sample> = sessions.iter_mut().map(|s| s.step()).collect();
        record(&samples, &mut times, &mut diffs);
    }
    let reference = sessions[0].backend().to_string();
    let mut summaries = Vec::with_capacity(sessions.len());
    let mut final_samples = Vec::with_capacity(sessions.len());
    for session in sessions {
        let summary = session.finish();
        final_samples.push(Sample {
            step: summary.steps,
            time: summary.t_end,
            kinetic: *summary.history.kinetic.last().expect("n+1 samples"),
            field: *summary.history.field.last().expect("n+1 samples"),
            momentum: *summary.history.momentum.last().expect("n+1 samples"),
            mode_amps: summary
                .history
                .mode_amps
                .iter()
                .map(|s| *s.last().expect("n+1 samples"))
                .collect(),
        });
        summaries.push(summary);
    }
    record(&final_samples, &mut times, &mut diffs);

    Ok(ComparisonReport {
        scenario: spec.name,
        reference,
        times,
        diffs,
        summaries,
    })
}

//! Fleet execution: many sessions, batched DL inference, multiple cores.
//!
//! The paper's value proposition is amortization — train a field solver
//! once, then run *many* simulations cheaply. This module turns the
//! [`Session`] primitive into a fleet primitive:
//!
//! * [`SweepSpec`] expands a registry scenario into a grid of
//!   [`ScenarioSpec`]s — cartesian parameter axes, explicit point lists,
//!   and seed fans — using the registry's sweepable-parameter metadata
//!   ([`registry::sweep_params`]).
//! * [`Ensemble`] owns N sessions and steps them in **lockstep waves**.
//!   Within a wave, sessions whose field solve is phase-split (the DL
//!   backends) are grouped into cohorts: each session prepares its
//!   inference input row, the cohort runs **one batched inference** —
//!   an `[m, in]` GEMM that hits the 8-row zmm micro-kernels a batch-1
//!   solve bypasses — and each session applies its output row.
//!   Monolithic backends (traditional, Vlasov, distributed) run whole
//!   steps in the same wave.
//! * [`Ensemble::run_to_end`] distributes sessions across worker threads
//!   (contiguous chunks via [`core::pool`](crate::core::pool); the
//!   workspace's `rayon` is a sequential shim). Each chunk batches its
//!   own cohorts with its own warm scratch, so there is no cross-thread
//!   synchronization until the join.
//!
//! ## Determinism
//!
//! Per-run results are **bit-identical to solo runs** at any thread
//! count: a session is driven by exactly one worker; its prepare/apply
//! phases touch only its own state; and the batched inference is
//! row-stable (row `i` of an `m`-row GEMM equals the 1-row product
//! bitwise — see `nn::linalg`), so cohort composition cannot perturb any
//! session's arithmetic. `tests/ensemble_api.rs` asserts this for every
//! backend family at 1 and T > 1 threads.
//!
//! Cohort batching runs every row through **one member's network**. That
//! is sound because an engine configures at most one model per dimension,
//! so all DL sessions an [`Engine`](super::Engine) starts hold identical
//! parameters; cohorts are additionally keyed by backend, scale and
//! phase-grid shape so unrelated sessions never share a batch.
//!
//! ```no_run
//! use dlpic_repro::engine::{Engine, Backend, SweepSpec};
//! use dlpic_repro::core::Scale;
//!
//! let sweep = SweepSpec::grid("two_stream", Scale::Smoke)
//!     .axis("v0", [0.12, 0.16, 0.20])
//!     .seeds([1, 2, 3, 4]);
//! let mut ensemble = Engine::new().start_sweep(&sweep, Backend::Dl1D)?;
//! ensemble.run_to_end(dlpic_repro::core::pool::available_threads());
//! for summary in ensemble.finish() {
//!     println!("{}: γ = {:?}", summary.scenario, summary.growth_rate(1).map(|f| f.gamma));
//! }
//! # Ok::<(), dlpic_repro::engine::EngineError>(())
//! ```

use super::backend::Backend;
use super::error::EngineError;
use super::health::SessionFault;
use super::json::{obj, Json};
use super::observer::RunSummary;
use super::registry;
use super::session::{Checkpoint, Session};
use super::spec::ScenarioSpec;
use crate::core::pool;
use crate::core::presets::Scale;

// ---------------------------------------------------------------------
// Sweep specification.
// ---------------------------------------------------------------------

/// How a [`SweepSpec`] enumerates its parameter points.
#[derive(Debug, Clone)]
enum SweepKind {
    /// The cartesian product of named axes (first axis varies slowest).
    Cartesian(Vec<(String, Vec<f64>)>),
    /// An explicit list of `(param, value)` assignment sets.
    Explicit(Vec<Vec<(String, f64)>>),
}

/// A declarative description of a run fleet over one registry scenario:
/// a parameter grid (cartesian axes or explicit points) crossed with a
/// seed fan. [`SweepSpec::specs`] expands it into validated
/// [`ScenarioSpec`]s; [`Engine::start_sweep`](super::Engine::start_sweep)
/// turns those into a running [`Ensemble`].
///
/// Parameter names come from the registry's sweepable-parameter metadata
/// ([`registry::sweep_params`]); unknown names are rejected with the
/// known list.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    scenario: String,
    scale: Scale,
    kind: SweepKind,
    seeds: Vec<u64>,
}

impl SweepSpec {
    /// A cartesian sweep over `scenario` at `scale`; add axes with
    /// [`Self::axis`] and a seed fan with [`Self::seeds`]. With no axes
    /// and no seeds it expands to the single base spec.
    pub fn grid(scenario: impl Into<String>, scale: Scale) -> Self {
        Self {
            scenario: scenario.into(),
            scale,
            kind: SweepKind::Cartesian(Vec::new()),
            seeds: Vec::new(),
        }
    }

    /// An explicit sweep: one spec per listed `(param, value)` assignment
    /// set (crossed with the seed fan, if any).
    pub fn explicit(
        scenario: impl Into<String>,
        scale: Scale,
        points: Vec<Vec<(String, f64)>>,
    ) -> Self {
        Self {
            scenario: scenario.into(),
            scale,
            kind: SweepKind::Explicit(points),
            seeds: Vec::new(),
        }
    }

    /// Adds a cartesian axis: one run per value, crossed with every other
    /// axis (earlier axes vary slowest).
    ///
    /// # Panics
    /// Panics on an explicit sweep — axes and explicit points don't mix.
    pub fn axis(mut self, name: impl Into<String>, values: impl IntoIterator<Item = f64>) -> Self {
        match &mut self.kind {
            SweepKind::Cartesian(axes) => axes.push((name.into(), values.into_iter().collect())),
            SweepKind::Explicit(_) => panic!("axis() on an explicit sweep"),
        }
        self
    }

    /// Fans every parameter point over these loading seeds (seed
    /// ensembles). Empty (the default) keeps each point's registry seed.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// The scenario this sweep runs.
    pub fn scenario(&self) -> &str {
        &self.scenario
    }

    /// Number of specs [`Self::specs`] will expand to.
    pub fn len(&self) -> usize {
        let points = match &self.kind {
            SweepKind::Cartesian(axes) => axes.iter().map(|(_, v)| v.len()).product::<usize>(),
            SweepKind::Explicit(points) => points.len(),
        };
        points * self.seeds.len().max(1)
    }

    /// True when the sweep expands to no runs (an empty axis or an empty
    /// explicit list).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the sweep into one validated [`ScenarioSpec`] per run.
    /// Each spec's name records its overrides
    /// (`two_stream[v0=0.16, seed=3]`) so summaries stay tellable apart.
    ///
    /// Parameter names are validated up front against the scenario's
    /// sweepable knobs ([`registry::sweepable_params`]) — a typo'd axis
    /// fails here with the known-names list, before any expansion.
    pub fn specs(&self) -> Result<Vec<ScenarioSpec>, EngineError> {
        let base = registry::scenario(&self.scenario, self.scale)?;
        self.validate_names(&base)?;
        let points: Vec<Vec<(String, f64)>> = match &self.kind {
            SweepKind::Explicit(points) => points.clone(),
            SweepKind::Cartesian(axes) => {
                let mut points: Vec<Vec<(String, f64)>> = vec![Vec::new()];
                for (name, values) in axes {
                    let mut next = Vec::with_capacity(points.len() * values.len());
                    for point in &points {
                        for &v in values {
                            let mut p = point.clone();
                            p.push((name.clone(), v));
                            next.push(p);
                        }
                    }
                    points = next;
                }
                points
            }
        };
        let mut specs = Vec::with_capacity(points.len() * self.seeds.len().max(1));
        for point in &points {
            let mut spec = base.clone();
            for (name, value) in point {
                registry::apply_sweep_param(&mut spec, name, *value)?;
            }
            let seeds: &[u64] = if self.seeds.is_empty() {
                std::slice::from_ref(&spec.seed)
            } else {
                &self.seeds
            };
            for &seed in seeds {
                let mut run = spec.clone();
                run.seed = seed;
                let mut tags: Vec<String> = point
                    .iter()
                    .map(|(name, value)| format!("{name}={value}"))
                    .collect();
                if !self.seeds.is_empty() {
                    tags.push(format!("seed={seed}"));
                }
                if !tags.is_empty() {
                    run.name = format!("{}[{}]", base.name, tags.join(", "));
                }
                run.validate()?;
                specs.push(run);
            }
        }
        Ok(specs)
    }

    /// Checks every axis (or explicit-point parameter) name against the
    /// base scenario's sweepable knobs, so a bad name fails fast with the
    /// known list instead of deep inside expansion.
    fn validate_names(&self, base: &ScenarioSpec) -> Result<(), EngineError> {
        let known = registry::sweepable_params(base);
        let names: Vec<&String> = match &self.kind {
            SweepKind::Cartesian(axes) => axes.iter().map(|(name, _)| name).collect(),
            SweepKind::Explicit(points) => points
                .iter()
                .flat_map(|point| point.iter().map(|(name, _)| name))
                .collect(),
        };
        for name in names {
            if !known.iter().any(|p| p.name == name) {
                let list: Vec<&str> = known.iter().map(|p| p.name).collect();
                return Err(EngineError::InvalidSpec {
                    scenario: base.name.clone(),
                    what: format!(
                        "`{name}` is not a sweepable parameter of this scenario (knows {})",
                        list.join(", ")
                    ),
                });
            }
        }
        Ok(())
    }

    /// Serializes the sweep as a JSON value (the wire form `dlpic-serve`
    /// jobs carry); inverse of [`Self::from_json_value`].
    pub fn to_json_value(&self) -> Json {
        let mut fields = vec![
            ("scenario", Json::Str(self.scenario.clone())),
            ("scale", Json::Str(self.scale.name().into())),
        ];
        match &self.kind {
            SweepKind::Cartesian(axes) => fields.push((
                "axes",
                Json::Arr(
                    axes.iter()
                        .map(|(name, values)| {
                            obj(vec![
                                ("name", Json::Str(name.clone())),
                                ("values", Json::num_arr(values)),
                            ])
                        })
                        .collect(),
                ),
            )),
            SweepKind::Explicit(points) => fields.push((
                "points",
                Json::Arr(
                    points
                        .iter()
                        .map(|point| {
                            Json::Arr(
                                point
                                    .iter()
                                    .map(|(name, value)| {
                                        obj(vec![
                                            ("name", Json::Str(name.clone())),
                                            ("value", Json::Num(*value)),
                                        ])
                                    })
                                    .collect(),
                            )
                        })
                        .collect(),
                ),
            )),
        }
        if !self.seeds.is_empty() {
            fields.push((
                "seeds",
                Json::Arr(self.seeds.iter().map(|&s| Json::Num(s as f64)).collect()),
            ));
        }
        obj(fields)
    }

    /// Parses the JSON form produced by [`Self::to_json_value`]. Exactly
    /// one of `axes` (cartesian) or `points` (explicit) must be present;
    /// `seeds` is optional.
    pub fn from_json_value(doc: &Json) -> Result<Self, EngineError> {
        let scenario = doc.field("scenario")?.as_str()?.to_string();
        let scale_name = doc.field("scale")?.as_str()?;
        let scale = Scale::parse(scale_name).ok_or_else(|| EngineError::InvalidSpec {
            scenario: scenario.clone(),
            what: format!("unknown scale `{scale_name}` (knows smoke, scaled, paper)"),
        })?;
        let kind = match (doc.get("axes"), doc.get("points")) {
            (Some(axes), None) => SweepKind::Cartesian(
                axes.as_arr()?
                    .iter()
                    .map(|axis| {
                        Ok((
                            axis.field("name")?.as_str()?.to_string(),
                            axis.field("values")?.as_f64_vec()?,
                        ))
                    })
                    .collect::<Result<_, EngineError>>()?,
            ),
            (None, Some(points)) => SweepKind::Explicit(
                points
                    .as_arr()?
                    .iter()
                    .map(|point| {
                        point
                            .as_arr()?
                            .iter()
                            .map(|assign| {
                                Ok((
                                    assign.field("name")?.as_str()?.to_string(),
                                    assign.field("value")?.as_f64()?,
                                ))
                            })
                            .collect::<Result<Vec<_>, EngineError>>()
                    })
                    .collect::<Result<_, EngineError>>()?,
            ),
            _ => {
                return Err(EngineError::InvalidSpec {
                    scenario,
                    what: "a sweep needs exactly one of `axes` or `points`".into(),
                })
            }
        };
        let seeds = match doc.get("seeds") {
            Some(seeds) => seeds
                .as_arr()?
                .iter()
                .map(Json::as_u64)
                .collect::<Result<_, _>>()?,
            None => Vec::new(),
        };
        Ok(Self {
            scenario,
            scale,
            kind,
            seeds,
        })
    }
}

// ---------------------------------------------------------------------
// The ensemble scheduler.
// ---------------------------------------------------------------------

/// Reusable wave buffers: the stacked inference inputs/outputs of one
/// cohort. Warm after the first wave, so steady-state stepping performs
/// no heap allocation.
#[derive(Default)]
struct WaveScratch {
    input: Vec<f32>,
    output: Vec<f32>,
    /// `(cohort key, member indices)` work list, reused across waves.
    cohorts: Vec<(CohortKey, Vec<usize>)>,
    solo: Vec<usize>,
    /// Cohort members whose prepare phase survived this wave (faulted
    /// members drop out and the surviving rows compact down).
    live: Vec<usize>,
}

/// What must agree for sessions to share one batched inference: backend
/// family, experiment scale (fixes the phase-grid geometry and
/// architecture an engine builds), and the inference row widths. Within
/// one [`Ensemble`] every DL session of a given dimension also shares
/// the engine's (single) model, so equal keys imply equal networks.
type CohortKey = (&'static str, Scale, (usize, usize));

/// Either owned or borrowed storage of a [`Session`] in a wave slice —
/// lets one `step_wave` drive both [`Ensemble`]'s owned `Vec<Session>`
/// and a scheduler's transient `&mut [&mut Session]` ([`WaveBatch`])
/// without per-wave re-borrowing or allocation.
trait SessionSlot {
    fn session(&mut self) -> &mut Session;
}

impl SessionSlot for Session {
    fn session(&mut self) -> &mut Session {
        self
    }
}

impl SessionSlot for &mut Session {
    fn session(&mut self) -> &mut Session {
        self
    }
}

/// Extracts a printable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// Runs `f` with unwinding contained: a panic becomes `Err(message)`
/// instead of tearing down the wave (and with it every co-scheduled
/// session). `AssertUnwindSafe` is sound here because every caller
/// quarantines the touched session on `Err` — its possibly-inconsistent
/// solver state is never stepped or sampled again.
fn contained<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).map_err(panic_message)
}

/// Steps every unfinished, healthy session in `sessions` once:
/// phase-split sessions in batched cohorts, the rest solo. Returns how
/// many sessions advanced.
///
/// Fault containment: each session's prepare/apply/solo step runs with
/// panics contained, and its history is divergence-checked after the
/// step ([`Session::check_health`]). A faulted session is quarantined —
/// dropped from this and every later wave with its partial history
/// intact — and cannot perturb its cohort: surviving rows compact down
/// (row-stable inference makes every row bit-identical at any batch
/// height), and if the *shared* batched inference itself panics, the
/// wave degrades to per-member 1-row inference so one poisoned network
/// only takes down its own run.
fn step_wave<S: SessionSlot>(sessions: &mut [S], scratch: &mut WaveScratch) -> usize {
    for (_, members) in &mut scratch.cohorts {
        members.clear();
    }
    scratch.solo.clear();
    for (i, slot) in sessions.iter_mut().enumerate() {
        let session = slot.session();
        if session.is_complete() || !session.is_healthy() {
            continue;
        }
        match session.batched_infer_shape() {
            Some(shape) => {
                let key: CohortKey = (session.backend().name(), session.spec().scale, shape);
                match scratch.cohorts.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, members)) => members.push(i),
                    None => scratch.cohorts.push((key, vec![i])),
                }
            }
            None => scratch.solo.push(i),
        }
    }
    let mut stepped = 0;
    for c in 0..scratch.cohorts.len() {
        // Move the member list out so `sessions` and the scratch buffers
        // can be borrowed independently of the cohort list.
        let members = std::mem::take(&mut scratch.cohorts[c].1);
        if members.is_empty() {
            scratch.cohorts[c].1 = members;
            continue;
        }
        let (in_w, out_w) = scratch.cohorts[c].0 .2;
        scratch.input.resize(members.len() * in_w, 0.0);
        scratch.output.resize(members.len() * out_w, 0.0);
        // Phase 1: every member prepares its row (and records its
        // diagnostics sample, exactly as a monolithic step would). A
        // member whose prepare panics is quarantined and its row slot is
        // reused by the next survivor.
        scratch.live.clear();
        for &i in &members {
            let r = scratch.live.len();
            let row = &mut scratch.input[r * in_w..(r + 1) * in_w];
            match contained(|| {
                sessions[i].session().step_prepare(row);
            }) {
                Ok(()) => scratch.live.push(i),
                Err(message) => sessions[i]
                    .session()
                    .set_fault(SessionFault::Panicked { message }),
            }
        }
        let m = scratch.live.len();
        if m == 0 {
            scratch.cohorts[c].1 = members;
            continue;
        }
        // Phase 2: ONE inference for the whole cohort, through the first
        // survivor's solver (identical weights across members by
        // construction; row-stable kernels make each row bit-equal to a
        // solo solve). If the shared inference panics, fall back to
        // per-member 1-row inference — bit-identical rows again — so
        // only the member whose own network panics is lost.
        let leader = scratch.live[0];
        let batch_ok = contained(|| {
            sessions[leader].session().infer_batch(
                &scratch.input[..m * in_w],
                m,
                &mut scratch.output[..m * out_w],
            );
        })
        .is_ok();
        if !batch_ok {
            for r in 0..m {
                let i = scratch.live[r];
                let result = contained(|| {
                    sessions[i].session().infer_batch(
                        &scratch.input[r * in_w..(r + 1) * in_w],
                        1,
                        &mut scratch.output[r * out_w..(r + 1) * out_w],
                    );
                });
                if let Err(message) = result {
                    sessions[i]
                        .session()
                        .set_fault(SessionFault::Panicked { message });
                }
            }
        }
        // Phase 3: scatter the rows back, then divergence-check the
        // step's recorded diagnostics.
        for r in 0..m {
            let i = scratch.live[r];
            if !sessions[i].session().is_healthy() {
                continue;
            }
            match contained(|| {
                sessions[i]
                    .session()
                    .step_apply(&scratch.output[r * out_w..(r + 1) * out_w]);
            }) {
                Ok(()) => {
                    stepped += 1;
                    sessions[i].session().check_health();
                }
                Err(message) => sessions[i]
                    .session()
                    .set_fault(SessionFault::Panicked { message }),
            }
        }
        scratch.cohorts[c].1 = members;
    }
    for &i in &scratch.solo {
        match contained(|| {
            sessions[i].session().step();
        }) {
            Ok(()) => {
                stepped += 1;
                sessions[i].session().check_health();
            }
            Err(message) => sessions[i]
                .session()
                .set_fault(SessionFault::Panicked { message }),
        }
    }
    stepped
}

/// Wave stepping over *borrowed* sessions — the scheduler-side sibling of
/// [`Ensemble::step_wave`] for callers that own their sessions elsewhere
/// (e.g. a server multiplexing many independent jobs). Each call batches
/// the slice's phase-split sessions into DL cohorts exactly like an
/// ensemble wave, so co-resident DL runs share one batched inference even
/// though they belong to different owners. Scratch buffers are warm after
/// the first wave.
///
/// The same determinism contract applies: each session's results are
/// bit-identical to a solo run regardless of what else shares the wave.
#[derive(Default)]
pub struct WaveBatch {
    scratch: WaveScratch,
}

impl WaveBatch {
    /// A batcher with cold scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Steps every unfinished session once (batched DL cohorts + solo
    /// monolithic steps); returns how many advanced (0 when all are
    /// complete).
    pub fn step_wave(&mut self, sessions: &mut [&mut Session]) -> usize {
        step_wave(sessions, &mut self.scratch)
    }
}

/// A fleet of concurrently advancing sessions — the ensemble execution
/// layer. Create with [`Engine::start_ensemble`](super::Engine::start_ensemble)
/// or [`Engine::start_sweep`](super::Engine::start_sweep); drive with
/// [`Self::step_wave`] (incremental, single-threaded) or
/// [`Self::run_to_end`] (multi-core); consume with [`Self::finish`].
///
/// Sessions keep their full [`Session`] capabilities: per-run histories,
/// observers (attach via [`Self::session_mut`]), and checkpointing —
/// [`Self::checkpoints`] snapshots every run in the standard per-session
/// [`Checkpoint`] format that
/// [`Engine::resume_ensemble`](super::Engine::resume_ensemble) (or plain
/// [`Engine::resume`](super::Engine::resume)) accepts.
pub struct Ensemble {
    sessions: Vec<Session>,
    scratch: WaveScratch,
}

impl Ensemble {
    pub(crate) fn new(sessions: Vec<Session>) -> Self {
        Self {
            sessions,
            scratch: WaveScratch::default(),
        }
    }

    /// Number of runs.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True for an ensemble of no runs.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// The runs, in sweep order.
    pub fn sessions(&self) -> &[Session] {
        &self.sessions
    }

    /// One run, mutably (attach observers, inspect history mid-flight).
    pub fn session_mut(&mut self, index: usize) -> &mut Session {
        &mut self.sessions[index]
    }

    /// True once every run is terminal: completed its configured steps,
    /// or quarantined by a fault (see [`Self::faults`]).
    pub fn is_complete(&self) -> bool {
        self.sessions
            .iter()
            .all(|s| s.is_complete() || !s.is_healthy())
    }

    /// Quarantined runs as `(session index, fault)` pairs. Healthy
    /// fleets return an empty list; a faulted run's partial history
    /// remains readable via [`Self::sessions`] and flows into its
    /// [`Self::finish`] summary.
    pub fn faults(&self) -> Vec<(usize, &SessionFault)> {
        self.sessions
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.fault().map(|f| (i, f)))
            .collect()
    }

    /// Advances every unfinished run by one step on the calling thread —
    /// DL cohorts share one batched inference per wave. Returns how many
    /// runs advanced (0 when complete). The incremental form of
    /// [`Self::run_to_end`]; between waves the caller may sample
    /// histories, checkpoint, or stop early.
    pub fn step_wave(&mut self) -> usize {
        step_wave(&mut self.sessions, &mut self.scratch)
    }

    /// Runs every session to its configured end across `threads` worker
    /// threads ([`pool::available_threads`] is the natural argument).
    /// Sessions are partitioned into contiguous chunks, one worker per
    /// chunk, each batching its own cohorts — no cross-thread
    /// synchronization until the final join, and per-run results
    /// bit-identical to solo runs at any thread count (see the module
    /// docs).
    pub fn run_to_end(&mut self, threads: usize) {
        pool::for_each_chunk(threads, &mut self.sessions, |_chunk, sessions| {
            let mut scratch = WaveScratch::default();
            while step_wave(sessions, &mut scratch) > 0 {}
        });
    }

    /// Snapshots every run in the standard per-session [`Checkpoint`]
    /// format (same JSON schema as [`Session::checkpoint`]); feed the
    /// lot to [`Engine::resume_ensemble`](super::Engine::resume_ensemble)
    /// or any subset to [`Engine::resume`](super::Engine::resume).
    pub fn checkpoints(&self) -> Vec<Checkpoint> {
        self.sessions.iter().map(Session::checkpoint).collect()
    }

    /// Finishes every run (final snapshot row, observer `on_finish`) and
    /// returns the summaries in sweep order.
    pub fn finish(self) -> Vec<RunSummary> {
        self.sessions.into_iter().map(Session::finish).collect()
    }

    /// The backends driving the runs (diagnostic convenience).
    pub fn backends(&self) -> Vec<Backend> {
        self.sessions.iter().map(Session::backend).collect()
    }

    /// Estimated total memory footprint of the fleet — the figure to
    /// compare against a host's memory before launching (the serving
    /// tier budgets admission the same way). Cohort-aware: sessions
    /// whose [`Session::weight_storage`] ids match read **one** shared
    /// weight allocation, so its bytes are charged once per distinct
    /// model rather than once per run; everything else is the per-run
    /// [`estimate_session`](super::resources::estimate_session).
    pub fn estimated_bytes(&self) -> usize {
        let mut total = 0usize;
        let mut seen_models: Vec<usize> = Vec::new();
        for s in &self.sessions {
            let est = super::resources::estimate_session(s.spec(), s.backend());
            match s.weight_storage() {
                Some((id, bytes)) => {
                    total += est.total() - est.shared_weight_bytes;
                    if !seen_models.contains(&id) {
                        seen_models.push(id);
                        total += bytes;
                    }
                }
                None => total += est.total(),
            }
        }
        total
    }

    /// The fleet's resident weight allocations: `(distinct_models,
    /// weight_bytes)` where `weight_bytes` sums each shared allocation
    /// once (what the whole fleet actually holds in model weights).
    /// Sessions without weight storage contribute nothing.
    pub fn weight_footprint(&self) -> (usize, usize) {
        let mut seen: Vec<usize> = Vec::new();
        let mut bytes = 0usize;
        for s in &self.sessions {
            if let Some((id, b)) = s.weight_storage() {
                if !seen.contains(&id) {
                    seen.push(id);
                    bytes += b;
                }
            }
        }
        (seen.len(), bytes)
    }
}

//! The wire protocol: one JSON object per `\n`-terminated line, in both
//! directions (NDJSON). Requests carry an `"op"` field; the server
//! answers every request line with exactly one response line —
//! `{"ok":true, …}` on success, `{"ok":false,"error":{"code","message"}}`
//! on rejection — except `watch`, whose single `ok` acknowledgement is
//! followed by a stream of `{"event": …}` lines until the job finishes.
//!
//! The parser is strict so that malformed traffic dies at the boundary:
//! lines longer than [`MAX_LINE`] are rejected (and drained, so the
//! connection keeps framing), non-objects and unknown `op`s are rejected,
//! and every op rejects fields it does not define — a misspelled field is
//! an error, not a silently ignored no-op. All rejections are data
//! ([`ProtoError`]), never panics: a hostile peer cannot take the server
//! down or wedge its own connection.

use std::io::BufRead;

use dlpic_repro::engine::json::{obj, Json, JsonError};

use crate::job::JobRequest;

/// Hard cap on one inbound request line, in bytes. The server refuses a
/// line this long before parsing it — a shield against hostile peers.
/// Responses are exempt: a `result` line legitimately embeds a full run
/// history, and the client reads its trusted server without the cap.
pub const MAX_LINE: usize = 1 << 20;

/// Default per-subscriber watch queue capacity, in event lines. Bounded
/// so a stalled watcher backs up its own queue, not the OS socket buffer
/// and not the scheduler.
pub const DEFAULT_WATCH_QUEUE: usize = 256;

/// A structured protocol rejection: a machine-readable `code` plus a
/// human-readable `message`. Serialized into error responses verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// Stable machine-readable discriminator (`bad-json`, `oversized`,
    /// `unknown-op`, `unknown-field`, `missing-field`, `bad-request`,
    /// `unknown-job`, `server-error`, and the overload-governance codes
    /// `overloaded`, `quota-exceeded`, `circuit-open`, …).
    pub code: String,
    /// Human-readable detail.
    pub message: String,
    /// Server advice on when a retry of the same request might succeed
    /// (overload rejections carry it; permanent rejections don't).
    /// Cooperating clients sleep at least this long before resubmitting.
    pub retry_after_ms: Option<u64>,
}

impl ProtoError {
    /// A rejection with this code and message.
    pub fn new(code: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            code: code.into(),
            message: message.into(),
            retry_after_ms: None,
        }
    }

    /// Attaches retry advice: the server predicts capacity in `ms`
    /// milliseconds, and a cooperating client backs off at least that
    /// long.
    pub fn with_retry_after(mut self, ms: u64) -> Self {
        self.retry_after_ms = Some(ms);
        self
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for ProtoError {}

impl From<JsonError> for ProtoError {
    fn from(e: JsonError) -> Self {
        Self::new("bad-json", e.message)
    }
}

/// How a watch subscriber's bounded event queue sheds load when the
/// client reads slower than the scheduler produces. Control events
/// (`run_done`, `run_failed`, `job_done`) are never shed — only samples.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum WatchPolicy {
    /// Evict the oldest queued sample to make room for the newest —
    /// the subscriber always sees the freshest data (the default).
    #[default]
    DropOldest,
    /// Keep only every Nth history row (`row % N == 0`) — a
    /// deterministic thinning that is independent of client timing.
    Decimate(usize),
}

impl WatchPolicy {
    /// Parses the wire form: `drop_oldest` or `decimate:N` (N ≥ 1).
    pub fn parse(s: &str) -> Result<Self, ProtoError> {
        if s == "drop_oldest" {
            return Ok(Self::DropOldest);
        }
        if let Some(n) = s.strip_prefix("decimate:") {
            return match n.parse::<usize>() {
                Ok(n) if n >= 1 => Ok(Self::Decimate(n)),
                _ => Err(ProtoError::new(
                    "bad-request",
                    format!("decimate stride `{n}` is not a positive integer"),
                )),
            };
        }
        Err(ProtoError::new(
            "bad-request",
            format!("unknown watch policy `{s}` (knows drop_oldest, decimate:N)"),
        ))
    }

    /// The wire form accepted by [`Self::parse`].
    pub fn wire(&self) -> String {
        match self {
            Self::DropOldest => "drop_oldest".into(),
            Self::Decimate(n) => format!("decimate:{n}"),
        }
    }
}

/// A parsed client request.
#[derive(Debug)]
pub enum Request {
    /// Enqueue a job under a tenant's queue.
    Submit {
        /// Queue to account the job against (fair scheduling unit).
        tenant: String,
        /// What to run (boxed: a `JobRequest` embeds a full spec, which
        /// would otherwise dominate the enum's size).
        job: Box<JobRequest>,
        /// Client-supplied idempotency key: a resubmit with the same
        /// `(tenant, job_key)` returns the existing job instead of
        /// enqueueing a duplicate.
        job_key: Option<String>,
    },
    /// Report every job, or one job by id.
    Status {
        /// Restrict to this job id.
        job: Option<String>,
    },
    /// Subscribe to a job's event stream (samples, run/job completion).
    Watch {
        /// Job id to follow.
        job: String,
        /// Backpressure policy for this subscriber's sample queue.
        policy: WatchPolicy,
        /// Queue capacity in lines (default 256, min 1).
        queue: usize,
    },
    /// Cancel a job's unfinished runs.
    Cancel {
        /// Job id to cancel.
        job: String,
    },
    /// Spool every session and shut the server down gracefully.
    Drain,
    /// Fetch the stored summary of finished runs.
    Result {
        /// Job id to read.
        job: String,
        /// One run index, or every finished run when absent.
        run: Option<usize>,
    },
    /// Liveness/readiness probe: load factor, budget occupancy, backlog
    /// depth and open circuits, without the per-job detail of `status`.
    Health,
    /// Apply finished-job retention now: keep the newest `keep` finished
    /// jobs per tenant (defaulting to the server's `--spool-retain`) and
    /// drop the rest from the table and the spool.
    Prune {
        /// Per-tenant retention override for this pass.
        keep: Option<usize>,
    },
}

/// Reads one `\n`-terminated line, enforcing [`MAX_LINE`]. Returns
/// `Ok(None)` at EOF. An oversized line is drained to its newline (so the
/// stream stays framed) and reported as a [`ProtoError`] — the caller
/// answers it and keeps serving.
pub fn read_line(reader: &mut impl BufRead) -> std::io::Result<Option<Result<String, ProtoError>>> {
    let mut line = Vec::new();
    let mut overflow = false;
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            // EOF. A part-read line without a newline is a truncated
            // request: report it unless nothing was read at all.
            return match (line.is_empty(), overflow) {
                (true, false) => Ok(None),
                (_, true) => Ok(Some(Err(oversized()))),
                (false, false) => Ok(Some(Err(ProtoError::new(
                    "truncated",
                    "connection closed mid-line (no trailing newline)",
                )))),
            };
        }
        let newline = buf.iter().position(|&b| b == b'\n');
        let take = newline.map_or(buf.len(), |i| i + 1);
        if !overflow {
            if line.len() + take > MAX_LINE + 1 {
                overflow = true;
                line.clear();
            } else {
                line.extend_from_slice(&buf[..take]);
            }
        }
        reader.consume(take);
        if newline.is_some() {
            if overflow {
                return Ok(Some(Err(oversized())));
            }
            while line.last() == Some(&b'\n') || line.last() == Some(&b'\r') {
                line.pop();
            }
            return Ok(Some(match String::from_utf8(line) {
                Ok(text) => Ok(text),
                Err(_) => Err(ProtoError::new("bad-utf8", "request line is not UTF-8")),
            }));
        }
    }
}

fn oversized() -> ProtoError {
    ProtoError::new(
        "oversized",
        format!("request line exceeds the {MAX_LINE}-byte cap"),
    )
}

/// Parses one request line into a typed [`Request`]. Strict: unknown ops
/// and unknown fields are rejected with the accepted set in the message.
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    let doc = Json::parse(line)?;
    let Json::Obj(fields) = &doc else {
        return Err(ProtoError::new(
            "bad-request",
            "a request must be a JSON object",
        ));
    };
    let op = doc
        .get("op")
        .ok_or_else(|| ProtoError::new("missing-field", "a request needs an `op` field"))?
        .as_str()?;
    let allowed: &[&str] = match op {
        "submit" => &["op", "tenant", "job", "job_key"],
        "status" => &["op", "job"],
        "watch" => &["op", "job", "policy", "queue"],
        "cancel" => &["op", "job"],
        "drain" => &["op"],
        "result" => &["op", "job", "run"],
        "health" => &["op"],
        "prune" => &["op", "keep"],
        other => {
            return Err(ProtoError::new(
                "unknown-op",
                format!(
                    "unknown op `{other}` (knows submit, status, watch, cancel, drain, \
                     result, health, prune)"
                ),
            ))
        }
    };
    for (key, _) in fields {
        if !allowed.contains(&key.as_str()) {
            return Err(ProtoError::new(
                "unknown-field",
                format!(
                    "op `{op}` has no field `{key}` (accepts {})",
                    allowed.join(", ")
                ),
            ));
        }
    }
    let job_id = |doc: &Json| -> Result<String, ProtoError> {
        Ok(doc
            .get("job")
            .ok_or_else(|| ProtoError::new("missing-field", format!("op `{op}` needs `job`")))?
            .as_str()?
            .to_string())
    };
    Ok(match op {
        "submit" => Request::Submit {
            tenant: match doc.get("tenant") {
                Some(t) => t.as_str()?.to_string(),
                None => "default".into(),
            },
            job: Box::new(JobRequest::from_json_value(doc.get("job").ok_or_else(
                || ProtoError::new("missing-field", "op `submit` needs a `job` object"),
            )?)?),
            job_key: match doc.get("job_key") {
                Some(k) => {
                    let key = k.as_str()?;
                    if key.is_empty() {
                        return Err(ProtoError::new(
                            "bad-request",
                            "`job_key` must be a non-empty string",
                        ));
                    }
                    Some(key.to_string())
                }
                None => None,
            },
        },
        "status" => Request::Status {
            job: match doc.get("job") {
                Some(j) => Some(j.as_str()?.to_string()),
                None => None,
            },
        },
        "watch" => Request::Watch {
            job: job_id(&doc)?,
            policy: match doc.get("policy") {
                Some(p) => WatchPolicy::parse(p.as_str()?)?,
                None => WatchPolicy::default(),
            },
            queue: match doc.get("queue") {
                Some(q) => {
                    let n = q.as_usize()?;
                    if n == 0 {
                        return Err(ProtoError::new(
                            "bad-request",
                            "`queue` capacity must be at least 1",
                        ));
                    }
                    n
                }
                None => DEFAULT_WATCH_QUEUE,
            },
        },
        "cancel" => Request::Cancel { job: job_id(&doc)? },
        "drain" => Request::Drain,
        "result" => Request::Result {
            job: job_id(&doc)?,
            run: match doc.get("run") {
                Some(r) => Some(r.as_usize()?),
                None => None,
            },
        },
        "health" => Request::Health,
        "prune" => Request::Prune {
            keep: match doc.get("keep") {
                Some(k) => Some(k.as_usize()?),
                None => None,
            },
        },
        // Defensively structured even though the op list above already
        // validated: a future op added to one table but not the other
        // must reject the request, never panic the daemon.
        other => {
            return Err(ProtoError::new(
                "unknown-op",
                format!("op `{other}` recognized but not dispatchable (server bug)"),
            ))
        }
    })
}

/// A success response line: `{"ok":true, …fields}` (compact, no newline).
pub fn ok_response(fields: Vec<(&str, Json)>) -> String {
    let mut all = vec![("ok", Json::Bool(true))];
    all.extend(fields);
    obj(all).to_compact()
}

/// An error response line for a [`ProtoError`] (compact, no newline).
/// Overload rejections additionally carry `retry_after_ms` so clients
/// can back off by the server's estimate instead of guessing.
pub fn error_response(e: &ProtoError) -> String {
    let mut fields = vec![
        ("code", Json::Str(e.code.clone())),
        ("message", Json::Str(e.message.clone())),
    ];
    if let Some(ms) = e.retry_after_ms {
        fields.push(("retry_after_ms", Json::Num(ms as f64)));
    }
    obj(vec![("ok", Json::Bool(false)), ("error", obj(fields))]).to_compact()
}

/// An event line: `{"event": kind, …fields}` (compact, no newline).
pub fn event(kind: &str, fields: Vec<(&str, Json)>) -> String {
    let mut all = vec![("event", Json::Str(kind.into()))];
    all.extend(fields);
    obj(all).to_compact()
}

/// Interprets a response line client-side: `{"ok":true,…}` yields the
/// document, `{"ok":false,…}` yields its [`ProtoError`].
pub fn parse_response(line: &str) -> Result<Json, ProtoError> {
    let doc = Json::parse(line)?;
    match doc.field("ok")? {
        Json::Bool(true) => Ok(doc),
        Json::Bool(false) => {
            let err = doc.field("error")?;
            let mut e = ProtoError::new(
                err.field("code")?.as_str()?,
                err.field("message")?.as_str()?,
            );
            if let Some(ms) = err.get("retry_after_ms") {
                e.retry_after_ms = Some(ms.as_u64()?);
            }
            Err(e)
        }
        other => Err(ProtoError::new(
            "bad-response",
            format!("`ok` is {} rather than a bool", other.to_compact()),
        )),
    }
}

//! Finding collection, the committed baseline, and the two output
//! formats: human text and SARIF-lite JSON for CI annotation.

use std::fmt::Write as _;

use crate::config::{rule_description, Level};

/// One reported finding, after suppression filtering.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: String,
    pub level: Level,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    pub message: String,
    /// Trimmed source line (the baseline fingerprint).
    pub snippet: String,
    /// True when a committed baseline entry covers this finding: it is
    /// reported but does not fail `--deny`.
    pub baselined: bool,
}

/// The result of an analysis run.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Findings silenced by inline `analyze:allow` annotations.
    pub suppressed: usize,
}

impl Report {
    /// Deny-level findings not covered by the baseline — what `--deny`
    /// fails on.
    pub fn deny_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.level == Level::Deny && !f.baselined)
            .count()
    }

    /// Renders the human-readable report.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let tag = if f.baselined {
                "baselined".to_string()
            } else {
                f.level.to_string()
            };
            let _ = writeln!(
                out,
                "{}:{}: {}[{}]: {}\n    > {}",
                f.path, f.line, tag, f.rule, f.message, f.snippet
            );
        }
        let deny = self.deny_count();
        let warn = self
            .findings
            .iter()
            .filter(|f| f.level == Level::Warn && !f.baselined)
            .count();
        let baselined = self.findings.iter().filter(|f| f.baselined).count();
        let _ = writeln!(
            out,
            "dlpic-analyze: {} file(s) scanned, {} finding(s) ({} deny, {} warn, {} baselined), {} suppressed by inline allows",
            self.files_scanned,
            self.findings.len(),
            deny,
            warn,
            baselined,
            self.suppressed
        );
        out
    }

    /// Renders SARIF-lite JSON: the minimal subset of SARIF 2.1.0 that CI
    /// annotators consume (tool + rules + results with one physical
    /// location each).
    pub fn to_json(&self) -> String {
        let mut rules_seen: Vec<&str> = self.findings.iter().map(|f| f.rule.as_str()).collect();
        rules_seen.sort_unstable();
        rules_seen.dedup();
        let rules = rules_seen
            .iter()
            .map(|r| {
                format!(
                    "{{\"id\":{},\"shortDescription\":{{\"text\":{}}}}}",
                    json_str(r),
                    json_str(rule_description(r))
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let results = self
            .findings
            .iter()
            .map(|f| {
                let level = if f.baselined {
                    "note"
                } else {
                    match f.level {
                        Level::Deny => "error",
                        Level::Warn => "warning",
                        Level::Allow => "none",
                    }
                };
                format!(
                    "{{\"ruleId\":{},\"level\":{},\"baselined\":{},\"message\":{{\"text\":{}}},\
                     \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":{}}},\
                     \"region\":{{\"startLine\":{},\"snippet\":{{\"text\":{}}}}}}}}}]}}",
                    json_str(&f.rule),
                    json_str(level),
                    f.baselined,
                    json_str(&f.message),
                    json_str(&f.path),
                    f.line,
                    json_str(&f.snippet)
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"version\":\"2.1.0\",\"runs\":[{{\"tool\":{{\"driver\":{{\"name\":\"dlpic-analyze\",\
             \"rules\":[{rules}]}}}},\"results\":[{results}],\
             \"properties\":{{\"filesScanned\":{},\"suppressed\":{},\"denyFindings\":{}}}}}]}}",
            self.files_scanned,
            self.suppressed,
            self.deny_count()
        )
    }
}

/// JSON string escaping (std-only; the analyzer deliberately has zero
/// dependencies, including on the workspace's own json module).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The committed baseline: one entry per known, justified finding. An
/// entry matches a finding by rule + path + trimmed source line, so the
/// baseline survives unrelated edits that shift line numbers but goes
/// stale (and starts failing) when the flagged code itself changes.
#[derive(Debug, Default)]
pub struct Baseline {
    entries: Vec<(String, String, String)>,
}

impl Baseline {
    /// Parses the baseline format: `#` comments and blank lines ignored,
    /// entries are `rule<TAB>path<TAB>trimmed-source-line`.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim_end();
            if line.trim().is_empty() || line.trim_start().starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, '\t');
            match (parts.next(), parts.next(), parts.next()) {
                (Some(rule), Some(path), Some(snippet)) => {
                    entries.push((rule.to_string(), path.to_string(), snippet.to_string()));
                }
                _ => {
                    return Err(format!(
                        "baseline line {}: want rule<TAB>path<TAB>snippet",
                        idx + 1
                    ))
                }
            }
        }
        Ok(Self { entries })
    }

    /// True when the baseline covers this finding.
    pub fn covers(&self, rule: &str, path: &str, snippet: &str) -> bool {
        self.entries
            .iter()
            .any(|(r, p, s)| r == rule && p == path && s == snippet)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes `findings` as a fresh baseline file.
    pub fn render(findings: &[Finding]) -> String {
        let mut out = String::from(
            "# dlpic-analyze baseline — known findings excluded from --deny.\n\
             # One entry per line: rule<TAB>path<TAB>trimmed-source-line.\n\
             # Regenerate with: dlpic-analyze --write-baseline <this file>\n",
        );
        for f in findings {
            let _ = writeln!(out, "{}\t{}\t{}", f.rule, f.path, f.snippet);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &str, baselined: bool) -> Finding {
        Finding {
            rule: rule.to_string(),
            level: Level::Deny,
            path: "src/x.rs".to_string(),
            line: 3,
            message: "msg with \"quotes\" and\nnewline".to_string(),
            snippet: "let x = y;".to_string(),
            baselined,
        }
    }

    #[test]
    fn baseline_round_trip_and_matching() {
        let text = Baseline::render(&[finding("rule-a", false)]);
        let b = Baseline::parse(&text).unwrap();
        assert_eq!(b.len(), 1);
        assert!(b.covers("rule-a", "src/x.rs", "let x = y;"));
        assert!(
            !b.covers("rule-a", "src/x.rs", "let x = z;"),
            "stale entry stops covering"
        );
        assert!(Baseline::parse("garbage without tabs\n").is_err());
        assert!(Baseline::parse("# only comments\n\n").unwrap().is_empty());
    }

    #[test]
    fn deny_count_ignores_baselined_and_json_is_escaped() {
        let report = Report {
            findings: vec![finding("rule-a", false), finding("rule-a", true)],
            files_scanned: 2,
            suppressed: 1,
        };
        assert_eq!(report.deny_count(), 1);
        let json = report.to_json();
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json.contains("\\n"));
        assert!(json.contains("\"denyFindings\":1"));
        let text = report.to_text();
        assert!(text.contains("baselined[rule-a]"));
        assert!(text.contains("1 deny"));
    }
}

//! Per-step diagnostics for the 2-D extension: energies, momentum
//! components and 2-D field-mode amplitudes.

use crate::efield2d::field_energy;
use crate::grid2d::Grid2D;
use crate::particles2d::Particles2D;
use dlpic_analytics::dft2;

/// One snapshot of the conserved-quantity diagnostics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport2D {
    /// Kinetic energy (time-centred when produced by the mover).
    pub kinetic: f64,
    /// Electrostatic field energy (both components).
    pub field: f64,
    /// Total momentum along `x`.
    pub momentum_x: f64,
    /// Total momentum along `y`.
    pub momentum_y: f64,
}

impl EnergyReport2D {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.kinetic + self.field
    }
}

/// Computes an instantaneous report from the current state (used at
/// `t = 0`; later steps use the mover's time-centred kinetic energy).
pub fn instantaneous_report(
    particles: &Particles2D,
    grid: &Grid2D,
    ex: &[f64],
    ey: &[f64],
) -> EnergyReport2D {
    let (px, py) = particles.total_momentum();
    EnergyReport2D {
        kinetic: particles.kinetic_energy(),
        field: field_energy(grid, ex, ey),
        momentum_x: px,
        momentum_y: py,
    }
}

/// Amplitude of field mode `(mx, my)` — the 2-D analogue of the paper's
/// `E1` diagnostic; the two-stream mode of the extension runs is `(1, 0)`.
///
/// # Panics
/// Panics if the field length mismatches the grid.
pub fn field_mode_amplitude(field: &[f64], grid: &Grid2D, mx: usize, my: usize) -> f64 {
    assert_eq!(field.len(), grid.nodes(), "field length mismatch");
    dft2::mode_amplitude2(field, grid.nx(), grid.ny(), mx, my)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_totals_add_up() {
        let grid = Grid2D::new(8, 8, 2.0, 2.0);
        let p = Particles2D::new(
            vec![0.0, 1.0],
            vec![0.0, 1.0],
            vec![1.0, -1.0],
            vec![0.5, 0.5],
            -1.0,
            2.0,
        );
        let ex = vec![0.5; grid.nodes()];
        let ey = vec![0.0; grid.nodes()];
        let r = instantaneous_report(&p, &grid, &ex, &ey);
        // KE = ½·2·(1+0.25 + 1+0.25) = 2.5
        assert!((r.kinetic - 2.5).abs() < 1e-12);
        assert!((r.field - 0.5 * 0.25 * grid.area()).abs() < 1e-12);
        assert!((r.total() - r.kinetic - r.field).abs() < 1e-15);
        assert!(r.momentum_x.abs() < 1e-15);
        assert!((r.momentum_y - 2.0).abs() < 1e-15);
    }

    #[test]
    fn mode_amplitude_extracts_planted_wave() {
        let grid = Grid2D::new(32, 16, 2.0, 1.0);
        let kx = grid.mode_wavenumber_x(1);
        let mut ex = grid.zeros();
        for iy in 0..grid.ny() {
            for ix in 0..grid.nx() {
                ex[grid.index(ix, iy)] = 0.04 * (kx * ix as f64 * grid.dx()).sin();
            }
        }
        assert!((field_mode_amplitude(&ex, &grid, 1, 0) - 0.04).abs() < 1e-12);
        assert!(field_mode_amplitude(&ex, &grid, 0, 1) < 1e-12);
        assert!(field_mode_amplitude(&ex, &grid, 2, 0) < 1e-12);
    }
}

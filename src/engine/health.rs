//! Run supervision: divergence detection over recorded diagnostics, and
//! the fault state a quarantined session carries.
//!
//! The DL field solve can silently leave the physical regime the moment
//! its inputs drift off the training distribution — the first observable
//! symptom is a non-finite diagnostics row (field energy, kinetic energy
//! or a tracked mode amplitude). [`RunHealth`] scans each new history row
//! incrementally (the same consume-new-rows pattern as the server's
//! stop-policy evaluator), so a wave scheduler can quarantine the run at
//! the first bad row instead of letting NaNs poison a cohort batch or a
//! downstream fit. A quarantined run keeps its partial history; the
//! fault itself is a [`SessionFault`] and converts to the typed
//! [`EngineError::Diverged`].

use super::error::EngineError;
use super::observer::EnergyHistory;

/// Why a session was quarantined mid-run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionFault {
    /// The solver stack panicked inside a step; the session's solver
    /// state is mid-step and must not be advanced or sampled again.
    Panicked {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A diagnostics row went non-finite (see [`RunHealth`]).
    Diverged {
        /// Index of the first non-finite row.
        step: usize,
        /// Which quantity went non-finite, and how.
        diagnostic: String,
    },
}

impl SessionFault {
    /// The typed engine error for a divergence fault; `None` for panics
    /// (a panic payload has no engine-level error shape — use the
    /// [`Display`](std::fmt::Display) form).
    pub fn to_error(&self) -> Option<EngineError> {
        match self {
            Self::Panicked { .. } => None,
            Self::Diverged { step, diagnostic } => Some(EngineError::Diverged {
                step: *step,
                diagnostic: diagnostic.clone(),
            }),
        }
    }
}

impl std::fmt::Display for SessionFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Panicked { message } => write!(f, "solver panicked: {message}"),
            Self::Diverged { step, diagnostic } => {
                write!(f, "run diverged at step {step}: {diagnostic}")
            }
        }
    }
}

/// Incremental divergence guard over a run's [`EnergyHistory`]: feed it
/// the history after each wave; it scans only the rows recorded since the
/// last call and reports the first non-finite kinetic energy, field
/// energy, momentum or tracked-mode amplitude.
#[derive(Debug, Clone, Default)]
pub struct RunHealth {
    rows_checked: usize,
}

impl RunHealth {
    /// A guard that has seen no rows yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forgets all scanned rows (after a checkpoint restore replaces the
    /// history, the restored rows are re-validated on the next check).
    pub fn reset(&mut self) {
        self.rows_checked = 0;
    }

    /// Consumes rows recorded since the last call; on the first
    /// non-finite value returns `(row index, diagnostic)`.
    pub fn check(&mut self, history: &EnergyHistory) -> Option<(usize, String)> {
        while self.rows_checked < history.len() {
            let i = self.rows_checked;
            self.rows_checked += 1;
            let scalars = [
                ("kinetic energy", history.kinetic[i]),
                ("field energy", history.field[i]),
                ("momentum", history.momentum[i]),
            ];
            for (what, v) in scalars {
                if !v.is_finite() {
                    return Some((i, format!("{what} is {v}")));
                }
            }
            for (slot, series) in history.mode_amps.iter().enumerate() {
                if let Some(&a) = series.get(i) {
                    if !a.is_finite() {
                        let mode = history.tracked_modes.get(slot).copied().unwrap_or(slot);
                        return Some((i, format!("mode {mode} amplitude is {a}")));
                    }
                }
            }
        }
        None
    }
}

//! Particle storage for the 2-D extension.
//!
//! Structure-of-arrays layout (four component vectors), matching the 1-D
//! crate: the mover, gather and deposit loops each stream over exactly the
//! components they need.

/// A species of macro-particles in 2D-2V phase space.
#[derive(Debug, Clone, PartialEq)]
pub struct Particles2D {
    /// Positions along `x`, each in `[0, lx)`.
    pub x: Vec<f64>,
    /// Positions along `y`, each in `[0, ly)`.
    pub y: Vec<f64>,
    /// Velocities along `x` (half-integer time levels under leap-frog).
    pub vx: Vec<f64>,
    /// Velocities along `y`.
    pub vy: Vec<f64>,
    charge: f64,
    mass: f64,
}

impl Particles2D {
    /// Creates a buffer from positions, velocities and per-macro-particle
    /// charge and mass.
    ///
    /// # Panics
    /// Panics if component lengths mismatch or mass is not positive.
    pub fn new(
        x: Vec<f64>,
        y: Vec<f64>,
        vx: Vec<f64>,
        vy: Vec<f64>,
        charge: f64,
        mass: f64,
    ) -> Self {
        assert_eq!(x.len(), y.len(), "x/y length mismatch");
        assert_eq!(x.len(), vx.len(), "x/vx length mismatch");
        assert_eq!(x.len(), vy.len(), "x/vy length mismatch");
        assert!(mass > 0.0, "mass must be positive");
        Self {
            x,
            y,
            vx,
            vy,
            charge,
            mass,
        }
    }

    /// Electron macro-particles normalized to `ω_p = 1` in a box of area
    /// `area`: `q = −A/N`, `m = A/N` (so `q/m = −1`, mean density
    /// `n·|q| = 1`).
    pub fn electrons_normalized(
        x: Vec<f64>,
        y: Vec<f64>,
        vx: Vec<f64>,
        vy: Vec<f64>,
        area: f64,
    ) -> Self {
        let n = x.len();
        assert!(n > 0, "need at least one particle");
        let w = area / n as f64;
        Self::new(x, y, vx, vy, -w, w)
    }

    /// Number of macro-particles.
    #[inline]
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when the buffer holds no particles.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Macro-particle charge (negative for electrons).
    #[inline]
    pub fn charge(&self) -> f64 {
        self.charge
    }

    /// Macro-particle mass.
    #[inline]
    pub fn mass(&self) -> f64 {
        self.mass
    }

    /// Charge-to-mass ratio (−1 for the normalized electrons).
    #[inline]
    pub fn charge_over_mass(&self) -> f64 {
        self.charge / self.mass
    }

    /// Total charge carried by the species.
    pub fn total_charge(&self) -> f64 {
        self.charge * self.len() as f64
    }

    /// Total momentum components `(m·Σvx, m·Σvy)`.
    pub fn total_momentum(&self) -> (f64, f64) {
        (
            self.mass * self.vx.iter().sum::<f64>(),
            self.mass * self.vy.iter().sum::<f64>(),
        )
    }

    /// Kinetic energy `½·m·Σ(vx² + vy²)` (instantaneous; the time-centred
    /// estimate used in conservation plots lives in the mover).
    pub fn kinetic_energy(&self) -> f64 {
        let sum: f64 = self
            .vx
            .iter()
            .zip(&self.vy)
            .map(|(vx, vy)| vx * vx + vy * vy)
            .sum();
        0.5 * self.mass * sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_electrons_have_unit_plasma_frequency() {
        let n = 1024;
        let area = 2.0532 * 2.0532;
        let p = Particles2D::electrons_normalized(
            vec![0.0; n],
            vec![0.0; n],
            vec![0.0; n],
            vec![0.0; n],
            area,
        );
        let density = n as f64 / area;
        let omega_p_sq = density * p.charge() * p.charge() / p.mass();
        assert!((omega_p_sq - 1.0).abs() < 1e-12);
        assert!((p.charge_over_mass() + 1.0).abs() < 1e-12);
        assert!((p.total_charge() / area + 1.0).abs() < 1e-12);
    }

    #[test]
    fn momentum_and_energy_on_simple_data() {
        let p = Particles2D::new(
            vec![0.0, 1.0],
            vec![0.0, 0.5],
            vec![2.0, -1.0],
            vec![0.0, 3.0],
            -0.5,
            0.5,
        );
        let (px, py) = p.total_momentum();
        assert!((px - 0.5).abs() < 1e-15);
        assert!((py - 1.5).abs() < 1e-15);
        // ½·0.5·(4 + 1 + 0 + 9) = 3.5
        assert!((p.kinetic_energy() - 3.5).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "x/vx length mismatch")]
    fn mismatched_lengths_rejected() {
        let _ = Particles2D::new(vec![0.0], vec![0.0], vec![], vec![0.0], -1.0, 1.0);
    }

    #[test]
    fn drifting_population_energy() {
        // N particles all drifting at (v0, 0): KE = ½·m·N·v0² = ½·A·v0².
        let n = 100;
        let area = 4.0;
        let v0 = 0.3;
        let p = Particles2D::electrons_normalized(
            vec![0.0; n],
            vec![0.0; n],
            vec![v0; n],
            vec![0.0; n],
            area,
        );
        assert!((p.kinetic_energy() - 0.5 * area * v0 * v0).abs() < 1e-12);
    }
}

//! Shuffle and split — "The data set was shuffled and then divided into
//! 38,000 images for training, 1,000 images for validation, and 1,000
//! images for testing" (paper §IV.A.1).

use crate::sample::PhaseDataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sizes of the three standard portions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitSizes {
    /// Training samples.
    pub train: usize,
    /// Validation samples.
    pub val: usize,
    /// Test (Set I) samples.
    pub test: usize,
}

impl SplitSizes {
    /// The paper's proportions (38k/1k/1k of 40k = 95% / 2.5% / 2.5%)
    /// applied to a dataset of `n` samples. Guarantees at least one sample
    /// per portion for small `n`.
    ///
    /// # Panics
    /// Panics for datasets smaller than 3 samples.
    pub fn paper_proportions(n: usize) -> Self {
        assert!(n >= 3, "cannot split fewer than 3 samples");
        let val = (n / 40).max(1);
        let test = (n / 40).max(1);
        Self {
            train: n - val - test,
            val,
            test,
        }
    }

    /// Total samples consumed.
    pub fn total(&self) -> usize {
        self.train + self.val + self.test
    }
}

/// Shuffles the dataset with a seeded permutation and splits it into
/// (train, validation, test).
///
/// # Panics
/// Panics if the sizes exceed the dataset.
pub fn shuffle_split(
    ds: &PhaseDataset,
    sizes: SplitSizes,
    seed: u64,
) -> (PhaseDataset, PhaseDataset, PhaseDataset) {
    assert!(
        sizes.total() <= ds.len(),
        "split {}+{}+{} exceeds dataset {}",
        sizes.train,
        sizes.val,
        sizes.test,
        ds.len()
    );
    let n = ds.len();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..n).rev() {
        perm.swap(i, rng.gen_range(0..=i));
    }
    let train = ds.select(&perm[..sizes.train]);
    let val = ds.select(&perm[sizes.train..sizes.train + sizes.val]);
    let test = ds.select(&perm[sizes.train + sizes.val..sizes.total()]);
    (train, val, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlpic_core::phase_space::{BinningShape, PhaseGridSpec};

    fn numbered_dataset(n: usize) -> PhaseDataset {
        let spec = PhaseGridSpec::new(2, 2, -1.0, 1.0);
        let mut ds = PhaseDataset::new(spec, BinningShape::Ngp, 2);
        for i in 0..n {
            ds.push(&[i as f32; 4], &[i as f64, -(i as f64)]);
        }
        ds
    }

    #[test]
    fn paper_proportions_of_forty_thousand() {
        let s = SplitSizes::paper_proportions(40_000);
        assert_eq!(
            s,
            SplitSizes {
                train: 38_000,
                val: 1_000,
                test: 1_000
            }
        );
    }

    #[test]
    fn small_datasets_get_nonempty_portions() {
        let s = SplitSizes::paper_proportions(10);
        assert_eq!(s.val, 1);
        assert_eq!(s.test, 1);
        assert_eq!(s.train, 8);
    }

    #[test]
    fn split_is_a_partition() {
        let ds = numbered_dataset(50);
        let sizes = SplitSizes::paper_proportions(50);
        let (train, val, test) = shuffle_split(&ds, sizes, 7);
        assert_eq!(train.len() + val.len() + test.len(), 50);
        // Collect all sample ids and verify each appears exactly once.
        let mut seen = vec![0usize; 50];
        for part in [&train, &val, &test] {
            for i in 0..part.len() {
                let id = part.input_row(i)[0] as usize;
                seen[id] += 1;
                // Pairing intact: target matches input id.
                assert_eq!(part.target_row(i)[0], id as f32);
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "not a partition: {seen:?}");
    }

    #[test]
    fn shuffling_actually_shuffles() {
        let ds = numbered_dataset(100);
        let (train, ..) = shuffle_split(&ds, SplitSizes::paper_proportions(100), 3);
        let in_order = (0..train.len()).all(|i| train.input_row(i)[0] as usize == i);
        assert!(!in_order, "split came out unshuffled");
    }

    #[test]
    fn deterministic_under_seed() {
        let ds = numbered_dataset(30);
        let sizes = SplitSizes::paper_proportions(30);
        let (a, ..) = shuffle_split(&ds, sizes, 11);
        let (b, ..) = shuffle_split(&ds, sizes, 11);
        assert_eq!(a.inputs(), b.inputs());
        let (c, ..) = shuffle_split(&ds, sizes, 12);
        assert_ne!(a.inputs(), c.inputs());
    }

    #[test]
    #[should_panic(expected = "exceeds dataset")]
    fn oversized_split_rejected() {
        let ds = numbered_dataset(5);
        let _ = shuffle_split(
            &ds,
            SplitSizes {
                train: 4,
                val: 1,
                test: 1,
            },
            0,
        );
    }
}

//! Binary persistence of datasets.
//!
//! Format:
//!
//! ```text
//! magic "DLDS" | version u32 | nx u32 | nv u32 | vmin f64 | vmax f64 |
//! binning u8 | e_cells u32 | n u64 | inputs f32·(n·nx·nv) |
//! targets f32·(n·e_cells)
//! ```
//!
//! The paper's dataset was 5.2 GB of PNG + text files; a packed binary of
//! the same 40,000 samples at 64×64 resolution is ~680 MB.

use crate::sample::PhaseDataset;
use bytes::{Buf, BufMut};
use dlpic_core::phase_space::{BinningShape, PhaseGridSpec};
use std::path::Path;

const MAGIC: &[u8; 4] = b"DLDS";
const VERSION: u32 = 1;

/// Store/load failure.
#[derive(Debug)]
pub enum StoreError {
    /// Structural problem with the byte stream.
    Malformed(&'static str),
    /// Filesystem error.
    Io(std::io::Error),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Malformed(what) => write!(f, "malformed dataset blob: {what}"),
            Self::Io(e) => write!(f, "dataset I/O failed: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Serializes a dataset.
pub fn encode(ds: &PhaseDataset) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64 + 4 * (ds.inputs().len() + ds.targets().len()));
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(ds.spec.nx as u32);
    buf.put_u32_le(ds.spec.nv as u32);
    buf.put_f64_le(ds.spec.vmin);
    buf.put_f64_le(ds.spec.vmax);
    buf.put_u8(match ds.binning {
        BinningShape::Ngp => 0,
        BinningShape::Cic => 1,
    });
    buf.put_u32_le(ds.e_cells as u32);
    buf.put_u64_le(ds.len() as u64);
    for &v in ds.inputs() {
        buf.put_f32_le(v);
    }
    for &v in ds.targets() {
        buf.put_f32_le(v);
    }
    buf
}

/// Deserializes a dataset.
pub fn decode(bytes: &[u8]) -> Result<PhaseDataset, StoreError> {
    let mut buf = bytes;
    if buf.remaining() < 8 {
        return Err(StoreError::Malformed("truncated header"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(StoreError::Malformed("bad magic"));
    }
    if buf.get_u32_le() != VERSION {
        return Err(StoreError::Malformed("unsupported version"));
    }
    if buf.remaining() < 4 + 4 + 8 + 8 + 1 + 4 + 8 {
        return Err(StoreError::Malformed("truncated metadata"));
    }
    let nx = buf.get_u32_le() as usize;
    let nv = buf.get_u32_le() as usize;
    let vmin = buf.get_f64_le();
    let vmax = buf.get_f64_le();
    // NaN-rejecting form: `vmax <= vmin` would accept NaN bounds.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if nx == 0 || nv == 0 || !(vmax > vmin) {
        return Err(StoreError::Malformed("bad phase-grid geometry"));
    }
    let binning = match buf.get_u8() {
        0 => BinningShape::Ngp,
        1 => BinningShape::Cic,
        _ => return Err(StoreError::Malformed("bad binning tag")),
    };
    let e_cells = buf.get_u32_le() as usize;
    if e_cells == 0 {
        return Err(StoreError::Malformed("bad field width"));
    }
    let n = buf.get_u64_le() as usize;
    let need = 4 * n * (nx * nv + e_cells);
    if buf.remaining() < need {
        return Err(StoreError::Malformed("truncated payload"));
    }

    let spec = PhaseGridSpec::new(nx, nv, vmin, vmax);
    let mut ds = PhaseDataset::new(spec, binning, e_cells);
    let cells = spec.cells();
    let mut hist = vec![0.0f32; cells];
    let mut field = vec![0.0f64; e_cells];
    // Inputs come first as one block, then targets; stage through per-row
    // buffers to reuse `push` (which validates widths).
    let mut all_inputs = Vec::with_capacity(n * cells);
    for _ in 0..n * cells {
        all_inputs.push(buf.get_f32_le());
    }
    let mut all_targets = Vec::with_capacity(n * e_cells);
    for _ in 0..n * e_cells {
        all_targets.push(buf.get_f32_le());
    }
    for i in 0..n {
        hist.copy_from_slice(&all_inputs[i * cells..(i + 1) * cells]);
        for (f, &t) in field
            .iter_mut()
            .zip(&all_targets[i * e_cells..(i + 1) * e_cells])
        {
            *f = t as f64;
        }
        ds.push(&hist, &field);
    }
    Ok(ds)
}

/// Writes a dataset to a file.
pub fn save(ds: &PhaseDataset, path: impl AsRef<Path>) -> Result<(), StoreError> {
    std::fs::write(path, encode(ds))?;
    Ok(())
}

/// Reads a dataset from a file.
pub fn load(path: impl AsRef<Path>) -> Result<PhaseDataset, StoreError> {
    decode(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dataset() -> PhaseDataset {
        let spec = PhaseGridSpec::new(4, 4, -0.5, 0.5);
        let mut ds = PhaseDataset::new(spec, BinningShape::Cic, 8);
        for i in 0..5 {
            let hist: Vec<f32> = (0..16).map(|j| (i * 16 + j) as f32 * 0.5).collect();
            let field: Vec<f64> = (0..8).map(|j| (i + j) as f64 * -0.01).collect();
            ds.push(&hist, &field);
        }
        ds
    }

    #[test]
    fn round_trip_preserves_everything() {
        let ds = sample_dataset();
        let decoded = decode(&encode(&ds)).unwrap();
        assert_eq!(decoded.len(), ds.len());
        assert_eq!(decoded.spec, ds.spec);
        assert_eq!(decoded.binning, ds.binning);
        assert_eq!(decoded.e_cells, ds.e_cells);
        assert_eq!(decoded.inputs(), ds.inputs());
        assert_eq!(decoded.targets(), ds.targets());
    }

    #[test]
    fn file_round_trip() {
        let ds = sample_dataset();
        let dir = std::env::temp_dir().join("dlpic-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.dlds");
        save(&ds, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.inputs(), ds.inputs());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_is_detected() {
        let ds = sample_dataset();
        let blob = encode(&ds);
        assert!(matches!(decode(&blob[..10]), Err(StoreError::Malformed(_))));
        let mut bad_magic = blob.clone();
        bad_magic[1] = b'X';
        assert!(matches!(decode(&bad_magic), Err(StoreError::Malformed(_))));
        let mut truncated = blob;
        truncated.truncate(truncated.len() - 2);
        assert!(matches!(decode(&truncated), Err(StoreError::Malformed(_))));
    }

    #[test]
    fn empty_dataset_round_trips() {
        let spec = PhaseGridSpec::new(2, 2, -1.0, 1.0);
        let ds = PhaseDataset::new(spec, BinningShape::Ngp, 4);
        let decoded = decode(&encode(&ds)).unwrap();
        assert_eq!(decoded.len(), 0);
        assert_eq!(decoded.e_cells, 4);
    }
}

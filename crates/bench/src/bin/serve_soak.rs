//! Chaos soak for the serve tier: the overload-governance contract under
//! real process churn. One budgeted `dlpic-serve` daemon (spawned as a
//! subprocess from the sibling binary) is hit with a job burst sized to
//! overflow both the memory budget and the backlog cap, then SIGKILLed
//! and `--resume`d repeatedly while the accepted jobs are mid-flight,
//! and finally fed a poison spec to trip the circuit breaker. The
//! invariants asserted throughout:
//!
//! * every rejection is a structured protocol error (`overloaded` /
//!   `quota-exceeded` / `circuit-open`) carrying `retry_after_ms` where
//!   retry can help — never a dropped connection or a panic;
//! * the spool stays consistent at every kill point (manifest parses,
//!   no leaked atomic-write temp files);
//! * every accepted job finishes `done` and bit-identical to a solo
//!   `Engine::run`, no matter how many kill/resume cycles interleaved;
//! * the breaker quarantines the poison spec after its failure budget.
//!
//! Usage:
//!
//! * `serve_soak` — full soak: paper-scale fleet, 5 kill/resume cycles.
//! * `serve_soak --quick` — CI-sized: smoke-scale fleet, 3 cycles.
//!
//! Prints a one-line JSON summary on success; exits nonzero (via panic)
//! on any violated invariant.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use dlpic_repro::core::Scale;
use dlpic_repro::engine::json::Json;
use dlpic_repro::engine::{estimate_session, Backend, EnergyHistory, Engine, SweepSpec};
use dlpic_serve::client::Client;
use dlpic_serve::job::JobRequest;
use dlpic_serve::ServeError;

/// The soak daemon's knobs: budget for ~4 co-resident DL sessions, a
/// 6-slot backlog, a hair-trigger breaker with a cooldown longer than
/// the soak (half-open behaviour is covered by the overload tests).
const BUDGET_SESSIONS: usize = 4;
const MAX_QUEUED: usize = 6;
const POISON_SEED: u64 = 13;

struct Params {
    scale: Scale,
    burst: usize,
    steps: usize,
    cycles: usize,
}

impl Params {
    fn new(quick: bool) -> Self {
        if quick {
            // Smoke fleets step fast in release: the step budget keeps
            // runs in flight through the submit loop and the kill cycles.
            Params {
                scale: Scale::Smoke,
                burst: 16,
                steps: 8000,
                cycles: 3,
            }
        } else {
            Params {
                scale: Scale::Paper,
                burst: 32,
                steps: 600,
                cycles: 5,
            }
        }
    }

    fn job(&self, seed: u64) -> JobRequest {
        JobRequest::sweep(
            SweepSpec::grid("two_stream", self.scale).seeds([seed]),
            Backend::Dl1D,
        )
        .with_steps(self.steps)
    }
}

/// The shipped daemon binary sits next to this one in the target dir.
fn sibling(name: &str) -> PathBuf {
    let mut path = std::env::current_exe().expect("current_exe");
    path.pop();
    if path.ends_with("deps") {
        path.pop();
    }
    let path = path.join(name);
    assert!(
        path.exists(),
        "{} not found — build the workspace first (cargo build --release)",
        path.display()
    );
    path
}

/// Kills the daemon on drop so a failed invariant can't leak a process.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(args: &[&str]) -> Self {
        let mut child = Command::new(sibling("dlpic-serve"))
            .args(["--listen", "127.0.0.1:0"])
            .args(args)
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn dlpic-serve");
        let stdout = child.stdout.take().expect("stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read ready line");
        let addr = line
            .strip_prefix("listening ")
            .unwrap_or_else(|| panic!("unexpected ready line {line:?}"))
            .trim()
            .to_string();
        Self { child, addr }
    }

    fn kill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        std::mem::forget(self);
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spool consistency at a rest point: the manifest parses, every job
/// directory is known to it, and no `.tmp` from an interrupted atomic
/// write survived.
fn check_spool(spool: &std::path::Path) {
    let manifest = std::fs::read_to_string(spool.join("meta.json")).expect("manifest readable");
    let doc = Json::parse(&manifest).expect("manifest is JSON");
    let known: Vec<String> = doc
        .field("jobs")
        .and_then(Json::as_arr)
        .expect("manifest jobs")
        .iter()
        .map(|j| {
            j.field("id")
                .and_then(Json::as_str)
                .expect("id")
                .to_string()
        })
        .collect();
    for entry in std::fs::read_dir(spool).expect("read spool") {
        let entry = entry.expect("entry");
        let name = entry.file_name().into_string().expect("utf-8 name");
        assert!(!name.ends_with(".tmp"), "leaked atomic-write temp {name}");
        if entry.file_type().expect("file type").is_dir() {
            assert!(known.contains(&name), "orphan job dir {name} survived gc");
        }
    }
}

/// (done, total steps) across a job's runs.
fn job_progress(client: &mut Client, job: &str) -> (bool, usize) {
    let doc = client.status(Some(job)).expect("status");
    let runs = doc.field("jobs").and_then(Json::as_arr).expect("jobs")[0]
        .field("runs")
        .and_then(Json::as_arr)
        .expect("runs");
    let done = runs
        .iter()
        .all(|r| r.field("state").and_then(Json::as_str).expect("state") == "done");
    let steps = runs
        .iter()
        .map(|r| {
            r.field("steps_done")
                .and_then(Json::as_usize)
                .expect("steps")
        })
        .sum();
    (done, steps)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let p = Params::new(quick);

    let spool = std::env::temp_dir().join(format!("dlpic-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spool);
    let spool_arg = spool.display().to_string();

    let est = estimate_session(&p.job(0).expand().expect("expand")[0], Backend::Dl1D).total();
    let budget = (BUDGET_SESSIONS * est).to_string();
    let max_queued = MAX_QUEUED.to_string();
    let inject = format!("seed={POISON_SEED}=panic@1");
    let daemon_args = |resume: bool| {
        let spool_flag = if resume { "--resume" } else { "--spool" };
        vec![
            spool_flag,
            &spool_arg,
            "--spool-interval",
            "4",
            "--max-sessions",
            "16",
            "--memory-budget",
            &budget,
            "--max-queued",
            &max_queued,
            "--breaker-threshold",
            "1",
            "--breaker-cooldown",
            "600",
            "--inject",
            &inject,
        ]
    };
    let mut daemon = Daemon::spawn(&daemon_args(false));
    eprintln!(
        "soak: daemon on {} (budget {budget} B = {BUDGET_SESSIONS} sessions, backlog {MAX_QUEUED})",
        daemon.addr
    );

    // --- Phase 1: overload burst. Poison seed 13 is excluded from the
    // burst range so the injected fault only ever hits the poison job.
    let mut client = Client::connect(&daemon.addr).expect("connect");
    let mut accepted: Vec<(u64, String)> = Vec::new();
    let mut rejected = 0usize;
    for seed in 200..200 + p.burst as u64 {
        match client.submit(&p.job(seed), "soak") {
            Ok((id, runs)) => {
                assert_eq!(runs, 1);
                accepted.push((seed, id));
            }
            Err(ServeError::Protocol(e)) => {
                assert_eq!(
                    e.code, "overloaded",
                    "burst rejection must be the structured overload code, got {e}"
                );
                let advice = e
                    .retry_after_ms
                    .expect("overload rejection must carry retry_after_ms");
                assert!((100..=10_000).contains(&advice), "advice {advice}ms");
                rejected += 1;
            }
            Err(other) => panic!("seed {seed}: unstructured rejection {other}"),
        }
    }
    assert!(
        rejected > 0,
        "a {}-job burst must overflow a {MAX_QUEUED}-slot backlog over {BUDGET_SESSIONS} budgeted sessions",
        p.burst
    );
    assert!(
        accepted.len() >= BUDGET_SESSIONS,
        "the budget admits at least its own capacity"
    );
    eprintln!(
        "soak: burst of {} -> {} accepted, {rejected} shed with retry advice",
        p.burst,
        accepted.len()
    );

    // --- Phase 2: kill/resume cycles while the accepted jobs run.
    let deadline = Instant::now() + Duration::from_secs(600);
    let mut watermark = 0usize;
    let mut cycles_done = 0usize;
    for cycle in 0..p.cycles {
        let (all_done, advanced) = loop {
            assert!(Instant::now() < deadline, "cycle {cycle}: no progress");
            let mut done = true;
            let mut total = 0usize;
            for (_, id) in &accepted {
                let (job_done, steps) = job_progress(&mut client, id);
                done &= job_done;
                total += steps;
            }
            if done || total > watermark + accepted.len() {
                watermark = total;
                break (done, total);
            }
            std::thread::sleep(Duration::from_millis(2));
        };
        if all_done {
            eprintln!("soak: fleet drained after {cycle} kill cycles ({advanced} steps)");
            break;
        }
        daemon.kill();
        check_spool(&spool);
        daemon = Daemon::spawn(&daemon_args(true));
        client = Client::connect(&daemon.addr).expect("reconnect");
        cycles_done += 1;
        eprintln!(
            "soak: cycle {cycle}: killed at {advanced} fleet steps, resumed on {}",
            daemon.addr
        );
    }

    // --- Phase 3: completion and bit-identity against solo runs.
    let mut engine = Engine::new();
    for (seed, id) in &accepted {
        let results = client
            .wait_for(id, Duration::from_millis(10))
            .expect("wait for accepted job");
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].state, "done", "seed {seed}");
        let served =
            EnergyHistory::from_json_value(results[0].summary.field("history").expect("history"))
                .expect("history parses");
        let spec = &p.job(*seed).expand().expect("expand")[0];
        let solo = engine.run(spec, Backend::Dl1D).expect("solo run");
        assert!(
            served == solo.history,
            "seed {seed}: served history differs from solo after {cycles_done} kill cycles"
        );
    }
    eprintln!(
        "soak: all {} accepted jobs bit-identical to solo across {cycles_done} kill/resume cycles",
        accepted.len()
    );

    // --- Phase 4: the breaker quarantines the poison spec. The injected
    // panic fails the first attempt; with threshold 1 the next submit of
    // the same spec must be refused outright.
    let poison = p.job(POISON_SEED).with_steps(50);
    let (poison_id, _) = client.submit(&poison, "soak").expect("poison submit");
    let results = client
        .wait_for(&poison_id, Duration::from_millis(10))
        .expect("wait for poison job");
    assert_eq!(
        results[0].state, "failed",
        "injected panic must fail the run"
    );
    match client.submit(&poison, "soak") {
        Err(ServeError::Protocol(e)) => {
            assert_eq!(e.code, "circuit-open", "got {e}");
            assert!(
                e.retry_after_ms.is_some(),
                "circuit-open carries cooldown advice"
            );
        }
        other => panic!("poison resubmit must trip the breaker, got {other:?}"),
    }
    eprintln!("soak: breaker quarantined the poison spec after 1 failure");

    // --- Summary from the daemon's own meters.
    let health = client.health().expect("health");
    let status = client.status(None).expect("status");
    let p99 = status
        .field("wave_latency")
        .and_then(|w| w.field("p99_ms"))
        .and_then(Json::as_f64)
        .expect("wave latency p99");
    let trips = health
        .field("breaker_trips")
        .and_then(Json::as_usize)
        .expect("breaker_trips");
    assert!(trips >= 1);
    println!(
        "{{\"quick\":{quick},\"burst\":{},\"accepted\":{},\"rejected\":{rejected},\"kill_cycles\":{cycles_done},\"breaker_trips\":{trips},\"wave_p99_ms\":{p99:.3}}}",
        p.burst,
        accepted.len()
    );

    client.drain().expect("drain");
    daemon.kill();
    let _ = std::fs::remove_dir_all(&spool);
}

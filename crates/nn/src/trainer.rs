//! The mini-batch training loop.

use crate::data::{shuffle_permutation, Dataset};
use crate::loss::Loss;
use crate::metrics::evaluate;
use crate::network::{Sequential, TrainWorkspace};
use crate::optimizer::Optimizer;
use crate::tensor::Tensor;

/// Training-loop configuration (the paper trains with batch 64; 150 epochs
/// for the MLP, 100 for the CNN).
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Base seed for the per-epoch shuffles.
    pub shuffle_seed: u64,
    /// Print a progress line every `n` epochs (0 = silent).
    pub log_every: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            batch_size: 64,
            shuffle_seed: 0,
            log_every: 0,
        }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, Default)]
pub struct TrainHistory {
    /// Mean training loss of each epoch.
    pub train_loss: Vec<f64>,
    /// Validation MAE after each epoch (empty when no validation set).
    pub val_mae: Vec<f64>,
    /// Total wall-clock seconds spent in `train`.
    pub seconds: f64,
}

impl TrainHistory {
    /// Final training loss.
    pub fn final_loss(&self) -> Option<f64> {
        self.train_loss.last().copied()
    }

    /// Best (lowest) validation MAE seen.
    pub fn best_val_mae(&self) -> Option<f64> {
        self.val_mae
            .iter()
            .copied()
            .fold(None, |best, v| match best {
                None => Some(v),
                Some(b) => Some(b.min(v)),
            })
    }
}

/// Trains `net` on `train_set`, optionally tracking MAE on a validation
/// set after each epoch.
///
/// The mini-batch loop is allocation-free after warm-up: epochs shuffle
/// an index permutation instead of copying the dataset, batches gather
/// into two reused tensors, and forward/loss/backward run through a
/// reused [`TrainWorkspace`]. Batch composition is identical to the
/// historical copy-the-dataset implementation.
pub fn train(
    net: &mut Sequential,
    loss: &dyn Loss,
    opt: &mut dyn Optimizer,
    train_set: &Dataset,
    validation: Option<&Dataset>,
    cfg: &TrainConfig,
) -> TrainHistory {
    assert!(!train_set.is_empty(), "empty training set");
    assert!(cfg.batch_size > 0, "batch size must be positive");
    // analyze:allow(no-wallclock-in-engine): feeds only TrainHistory's elapsed-seconds diagnostic, never weights or optimizer state
    let start = std::time::Instant::now();
    let mut history = TrainHistory::default();
    let mut perm = Vec::new();
    let mut bx = Tensor::zeros(&[0]);
    let mut by = Tensor::zeros(&[0]);
    let mut workspace = TrainWorkspace::new();

    for epoch in 0..cfg.epochs {
        shuffle_permutation(
            &mut perm,
            train_set.len(),
            cfg.shuffle_seed.wrapping_add(epoch as u64),
        );
        let mut loss_sum = 0.0f64;
        let mut batches = 0usize;
        for (bstart, bsize) in train_set.batch_ranges(cfg.batch_size) {
            train_set.gather_into(&perm[bstart..bstart + bsize], &mut bx, &mut by);
            let l = net.compute_gradients_into(loss, &bx, &by, &mut workspace);
            opt.step(net);
            loss_sum += l as f64;
            batches += 1;
        }
        let epoch_loss = loss_sum / batches.max(1) as f64;
        history.train_loss.push(epoch_loss);

        if let Some(val) = validation {
            let (v_mae, _) = evaluate(net, val, cfg.batch_size);
            history.val_mae.push(v_mae as f64);
        }
        if cfg.log_every > 0 && (epoch + 1) % cfg.log_every == 0 {
            let val_part = history
                .val_mae
                .last()
                .map(|v| format!("  val MAE {v:.5}"))
                .unwrap_or_default();
            eprintln!(
                "epoch {:>4}/{}  loss {epoch_loss:.6}{val_part}",
                epoch + 1,
                cfg.epochs
            );
        }
    }
    history.seconds = start.elapsed().as_secs_f64();
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Init;
    use crate::layers::{Dense, Relu};
    use crate::loss::Mse;
    use crate::optimizer::Adam;
    use crate::tensor::Tensor;

    /// Regression task: y = 0.5·x0 − 0.25·x1 + 0.1.
    fn linear_task(n: usize) -> Dataset {
        let mut xs = Vec::with_capacity(n * 2);
        let mut ys = Vec::with_capacity(n);
        for i in 0..n {
            let a = ((i * 13 % 29) as f32 / 14.5) - 1.0;
            let b = ((i * 7 % 31) as f32 / 15.5) - 1.0;
            xs.push(a);
            xs.push(b);
            ys.push(0.5 * a - 0.25 * b + 0.1);
        }
        Dataset::new(Tensor::new(xs, &[n, 2]), Tensor::new(ys, &[n, 1]))
    }

    #[test]
    fn training_reduces_loss_monotonically_in_aggregate() {
        let data = linear_task(256);
        let mut net = Sequential::new()
            .push(Dense::new(2, 8, Init::HeNormal, 1))
            .push(Relu::new())
            .push(Dense::new(8, 1, Init::HeNormal, 2));
        let mut opt = Adam::new(0.01);
        let cfg = TrainConfig {
            epochs: 30,
            batch_size: 32,
            ..Default::default()
        };
        let hist = train(&mut net, &Mse, &mut opt, &data, None, &cfg);
        assert_eq!(hist.train_loss.len(), 30);
        assert!(
            hist.final_loss().unwrap() < hist.train_loss[0] * 0.1,
            "{} -> {}",
            hist.train_loss[0],
            hist.final_loss().unwrap()
        );
        assert!(hist.seconds > 0.0);
    }

    #[test]
    fn validation_mae_is_tracked_and_improves() {
        let data = linear_task(300);
        let parts = data.split(&[256, 44]);
        let mut net = Sequential::new().push(Dense::new(2, 1, Init::HeNormal, 3));
        let mut opt = Adam::new(0.02);
        let cfg = TrainConfig {
            epochs: 20,
            batch_size: 32,
            ..Default::default()
        };
        let hist = train(&mut net, &Mse, &mut opt, &parts[0], Some(&parts[1]), &cfg);
        assert_eq!(hist.val_mae.len(), 20);
        assert!(hist.best_val_mae().unwrap() < hist.val_mae[0]);
    }

    #[test]
    fn deterministic_training_under_fixed_seeds() {
        let data = linear_task(128);
        let run = || {
            let mut net = Sequential::new().push(Dense::new(2, 1, Init::GlorotUniform, 9));
            let mut opt = Adam::new(0.01);
            let cfg = TrainConfig {
                epochs: 5,
                batch_size: 16,
                shuffle_seed: 77,
                ..Default::default()
            };
            train(&mut net, &Mse, &mut opt, &data, None, &cfg).train_loss
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_training_set_rejected() {
        let empty = Dataset::new(Tensor::zeros(&[0, 2]), Tensor::zeros(&[0, 1]));
        let mut net = Sequential::new().push(Dense::new(2, 1, Init::Zeros, 0));
        let mut opt = Adam::new(0.01);
        let _ = train(
            &mut net,
            &Mse,
            &mut opt,
            &empty,
            None,
            &TrainConfig::default(),
        );
    }
}

//! Particle shape (assignment) functions.
//!
//! The paper (§II) names the standard interpolation hierarchy: Nearest Grid
//! Point (constant), Cloud-in-Cell (linear) and "higher-order interpolation
//! functions". All three orders are implemented; the same weights are used
//! for both charge deposition (scatter) and field interpolation (gather),
//! which is what makes the explicit scheme momentum-conserving.

/// Interpolation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Shape {
    /// Nearest Grid Point — zeroth order, one node.
    Ngp,
    /// Cloud-in-Cell — linear, two nodes. The common default.
    #[default]
    Cic,
    /// Triangular-Shaped Cloud — quadratic, three nodes ("higher-order").
    Tsc,
}

/// Assignment weights of one particle: up to three consecutive nodes
/// starting at (wrapped) `leftmost`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Assignment {
    /// Unwrapped index of the first supporting node (may be negative or
    /// ≥ ncells; callers wrap it).
    pub leftmost: i64,
    /// Weights of nodes `leftmost`, `leftmost+1`, `leftmost+2`. Unused
    /// entries are zero. Weights always sum to 1.
    pub w: [f64; 3],
}

impl Shape {
    /// Number of supporting nodes.
    #[inline]
    pub fn support(self) -> usize {
        match self {
            Shape::Ngp => 1,
            Shape::Cic => 2,
            Shape::Tsc => 3,
        }
    }

    /// Computes the assignment of a particle at normalized position
    /// `xdx = x/dx` (grid nodes sit at integers).
    #[inline]
    pub fn assign(self, xdx: f64) -> Assignment {
        match self {
            Shape::Ngp => {
                let j = (xdx + 0.5).floor() as i64;
                Assignment {
                    leftmost: j,
                    w: [1.0, 0.0, 0.0],
                }
            }
            Shape::Cic => {
                let j = xdx.floor();
                let f = xdx - j;
                Assignment {
                    leftmost: j as i64,
                    w: [1.0 - f, f, 0.0],
                }
            }
            Shape::Tsc => {
                let j = (xdx + 0.5).floor();
                let f = xdx - j; // f ∈ [-0.5, 0.5)
                Assignment {
                    leftmost: j as i64 - 1,
                    w: [
                        0.5 * (0.5 - f) * (0.5 - f),
                        0.75 - f * f,
                        0.5 * (0.5 + f) * (0.5 + f),
                    ],
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ngp_picks_nearest_node() {
        let a = Shape::Ngp.assign(3.4);
        assert_eq!(a.leftmost, 3);
        assert_eq!(a.w, [1.0, 0.0, 0.0]);
        let b = Shape::Ngp.assign(3.6);
        assert_eq!(b.leftmost, 4);
    }

    #[test]
    fn cic_on_node_gives_full_weight() {
        let a = Shape::Cic.assign(5.0);
        assert_eq!(a.leftmost, 5);
        assert!((a.w[0] - 1.0).abs() < 1e-15);
        assert!(a.w[1].abs() < 1e-15);
    }

    #[test]
    fn cic_midpoint_splits_evenly() {
        let a = Shape::Cic.assign(5.5);
        assert_eq!(a.leftmost, 5);
        assert!((a.w[0] - 0.5).abs() < 1e-15);
        assert!((a.w[1] - 0.5).abs() < 1e-15);
    }

    #[test]
    fn tsc_on_node_gives_three_quarters_center() {
        let a = Shape::Tsc.assign(4.0);
        assert_eq!(a.leftmost, 3);
        assert!((a.w[1] - 0.75).abs() < 1e-15);
        assert!((a.w[0] - 0.125).abs() < 1e-15);
        assert!((a.w[2] - 0.125).abs() < 1e-15);
    }

    #[test]
    fn negative_positions_handled() {
        // Particle just left of the origin (callers wrap the indices).
        let a = Shape::Cic.assign(-0.25);
        assert_eq!(a.leftmost, -1);
        assert!((a.w[0] - 0.25).abs() < 1e-15);
        assert!((a.w[1] - 0.75).abs() < 1e-15);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        #[test]
        fn partition_of_unity(xdx in -50.0f64..50.0) {
            for shape in [Shape::Ngp, Shape::Cic, Shape::Tsc] {
                let a = shape.assign(xdx);
                let sum: f64 = a.w.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-12, "{shape:?} at {xdx}: Σw = {sum}");
            }
        }

        #[test]
        fn weights_nonnegative(xdx in -50.0f64..50.0) {
            for shape in [Shape::Ngp, Shape::Cic, Shape::Tsc] {
                let a = shape.assign(xdx);
                for w in a.w {
                    prop_assert!(w >= -1e-15, "{shape:?} at {xdx}: negative weight {w}");
                }
            }
        }

        #[test]
        fn translation_covariance(xdx in 0.0f64..10.0, shift in 1i64..20) {
            // Shifting by a whole cell shifts the support, not the weights.
            for shape in [Shape::Ngp, Shape::Cic, Shape::Tsc] {
                let a = shape.assign(xdx);
                let b = shape.assign(xdx + shift as f64);
                prop_assert_eq!(b.leftmost, a.leftmost + shift);
                for (wa, wb) in a.w.iter().zip(b.w.iter()) {
                    prop_assert!((wa - wb).abs() < 1e-10);
                }
            }
        }

        #[test]
        fn first_moment_preserved_for_linear_and_quadratic(xdx in 0.0f64..10.0) {
            // CIC and TSC reproduce the particle position exactly:
            // Σ w_i · node_i = xdx.
            for shape in [Shape::Cic, Shape::Tsc] {
                let a = shape.assign(xdx);
                let centroid: f64 = a
                    .w
                    .iter()
                    .enumerate()
                    .map(|(i, w)| w * (a.leftmost + i as i64) as f64)
                    .sum();
                prop_assert!((centroid - xdx).abs() < 1e-10,
                    "{shape:?}: centroid {centroid} vs {xdx}");
            }
        }
    }
}

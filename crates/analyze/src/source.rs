//! A lexed source file plus the repo-specific annotations the rules
//! consume: `#[cfg(test)]` masking, inline `// analyze:allow(rule): why`
//! suppressions, and the `// analyze:hot` opt-in marker.

use crate::lexer::{lex, Token};

/// An inline suppression parsed from a comment.
#[derive(Debug, Clone)]
pub struct AllowAnnotation {
    /// Line of the comment.
    pub line: usize,
    /// The suppressed rule name.
    pub rule: String,
    /// The mandatory justification after `):`.
    pub reason: String,
}

/// A file ready for rule checks.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Raw source lines (for snippets and line-context checks).
    pub lines: Vec<String>,
    /// Full token stream, comments included.
    pub tokens: Vec<Token>,
    /// Per-token: true when the token sits inside `#[cfg(test)] mod … { }`
    /// or a `#[test] fn … { }` body. Rules skip masked tokens — test
    /// code may unwrap, allocate, and fake phases at will.
    pub test_mask: Vec<bool>,
    /// Parsed `analyze:allow` suppressions.
    pub allows: Vec<AllowAnnotation>,
    /// Comments containing `analyze:allow` that did not parse — reported
    /// so a typo'd suppression cannot silently reopen a hole.
    pub malformed_allows: Vec<usize>,
    /// True when any comment contains `analyze:hot`.
    pub hot: bool,
}

impl SourceFile {
    /// Lexes and annotates `source`.
    pub fn parse(path: &str, source: &str) -> Self {
        let tokens = lex(source);
        let test_mask = compute_test_mask(&tokens);
        let mut allows = Vec::new();
        let mut malformed_allows = Vec::new();
        let mut hot = false;
        for tok in tokens.iter().filter(|t| t.is_comment()) {
            // A directive must LEAD the comment (`// analyze:…`); prose
            // that merely mentions the syntax mid-sentence is not one.
            let Some(body) = directive(&tok.text) else {
                continue;
            };
            if body.starts_with("analyze:hot") {
                hot = true;
            } else if body.starts_with("analyze:allow") {
                match parse_allow(body) {
                    Some((rule, reason)) => allows.push(AllowAnnotation {
                        line: tok.line,
                        rule,
                        reason,
                    }),
                    None => malformed_allows.push(tok.line),
                }
            }
        }
        Self {
            path: path.to_string(),
            lines: source.lines().map(|l| l.to_string()).collect(),
            tokens,
            test_mask,
            allows,
            malformed_allows,
            hot,
        }
    }

    /// The trimmed source line `line` (1-based), or `""`.
    pub fn snippet(&self, line: usize) -> &str {
        self.lines
            .get(line.wrapping_sub(1))
            .map(|l| l.trim())
            .unwrap_or("")
    }

    /// True when a finding of `rule` at `line` is suppressed by an
    /// `analyze:allow` on the same line or the line directly above.
    pub fn is_allowed(&self, rule: &str, line: usize) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && (a.line == line || a.line + 1 == line))
    }

    /// Indices of non-comment tokens, excluding test-masked ones — what
    /// most rules iterate.
    pub fn code_indices(&self) -> Vec<usize> {
        (0..self.tokens.len())
            .filter(|&i| !self.tokens[i].is_comment() && !self.test_mask[i])
            .collect()
    }
}

/// Strips comment markers (`//`, `///`, `//!`, `/*`) and leading
/// whitespace; `Some(body)` when the remaining text begins a directive.
fn directive(comment: &str) -> Option<&str> {
    let body = comment
        .trim_start_matches('/')
        .trim_start_matches(['*', '!'])
        .trim_start();
    body.starts_with("analyze:").then_some(body)
}

/// Parses `analyze:allow(rule-name): reason`, requiring a non-empty
/// reason — an unjustified suppression is a malformed one.
fn parse_allow(text: &str) -> Option<(String, String)> {
    let rest = text.strip_prefix("analyze:allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim();
    let after = rest[close + 1..].trim_start();
    let reason = after.strip_prefix(':')?.trim();
    if rule.is_empty() || reason.is_empty() {
        return None;
    }
    Some((rule.to_string(), reason.to_string()))
}

/// Marks every token inside `#[cfg(test)] mod … { }` blocks and
/// `#[test] fn … { }` bodies. Works on the token stream, so braces in
/// strings or comments cannot unbalance it.
fn compute_test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();

    let is_cfg_test = |w: &[usize]| -> bool {
        // #[cfg(test)] or #[cfg(all(test, …))]-style: `#` `[` `cfg` `(`
        // … `test` … at any position inside the attribute.
        if w.len() < 3 {
            return false;
        }
        if !(tokens[w[0]].is_punct('#')
            && tokens[w[1]].is_punct('[')
            && tokens[w[2]].is_ident("cfg"))
        {
            return false;
        }
        // Scan to the closing `]` of the attribute looking for `test`.
        let mut depth = 0usize;
        for &i in &w[1..] {
            let t = &tokens[i];
            if t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            } else if t.is_ident("test") {
                return true;
            }
        }
        false
    };

    let mut k = 0usize;
    while k < code.len() {
        let w = &code[k..];
        let is_test_attr = tokens[code[k]].is_punct('#')
            && w.len() >= 3
            && tokens[w[1]].is_punct('[')
            && tokens[w[2]].is_ident("test")
            && w.len() > 3
            && tokens[w[3]].is_punct(']');
        if is_cfg_test(w) || is_test_attr {
            // Skip any further attributes, then expect `mod name {` or
            // `fn name … {`; mask through the matching `}`.
            let mut j = k;
            // advance past this attribute
            let mut depth = 0usize;
            while j < code.len() {
                let t = &tokens[code[j]];
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
            // skip stacked attributes
            while j + 1 < code.len()
                && tokens[code[j]].is_punct('#')
                && tokens[code[j + 1]].is_punct('[')
            {
                let mut d = 0usize;
                while j < code.len() {
                    let t = &tokens[code[j]];
                    if t.is_punct('[') {
                        d += 1;
                    } else if t.is_punct(']') {
                        d -= 1;
                        if d == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            }
            let is_item = j < code.len()
                && (tokens[code[j]].is_ident("mod")
                    || tokens[code[j]].is_ident("fn")
                    || tokens[code[j]].is_ident("pub"));
            if is_item {
                // Find the item's opening `{` at zero bracket depth, then
                // mask to its matching `}`.
                let mut paren = 0isize;
                while j < code.len() {
                    let t = &tokens[code[j]];
                    if t.is_punct('(') || t.is_punct('[') {
                        paren += 1;
                    } else if t.is_punct(')') || t.is_punct(']') {
                        paren -= 1;
                    } else if t.is_punct('{') && paren == 0 {
                        break;
                    } else if t.is_punct(';') && paren == 0 {
                        // `#[cfg(test)] mod tests;` — nothing inline.
                        j = code.len();
                        break;
                    }
                    j += 1;
                }
                let open = j;
                let mut brace = 0isize;
                while j < code.len() {
                    let t = &tokens[code[j]];
                    if t.is_punct('{') {
                        brace += 1;
                    } else if t.is_punct('}') {
                        brace -= 1;
                        if brace == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                // Mask every token (comments included) from the attribute
                // through the closing brace.
                if open < code.len() {
                    let start_tok = code[k];
                    let end_tok = if j < code.len() {
                        code[j]
                    } else {
                        tokens.len() - 1
                    };
                    for m in mask.iter_mut().take(end_tok + 1).skip(start_tok) {
                        *m = true;
                    }
                    k = j + 1;
                    continue;
                }
            }
        }
        k += 1;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n\
                   fn also_live() {}\n";
        let f = SourceFile::parse("x.rs", src);
        let unwraps: Vec<usize> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!f.test_mask[unwraps[0]], "live code stays unmasked");
        assert!(f.test_mask[unwraps[1]], "test-mod code is masked");
        let live: Vec<&str> = f
            .code_indices()
            .into_iter()
            .map(|i| f.tokens[i].text.as_str())
            .collect();
        assert!(live.contains(&"also_live"), "masking ends at the mod brace");
    }

    #[test]
    fn test_fn_attr_is_masked() {
        let src = "#[test]\nfn check() { a.unwrap(); }\nfn live() { b.unwrap(); }\n";
        let f = SourceFile::parse("x.rs", src);
        let masked: Vec<bool> = f
            .tokens
            .iter()
            .zip(&f.test_mask)
            .filter(|(t, _)| t.is_ident("unwrap"))
            .map(|(_, &m)| m)
            .collect();
        assert_eq!(masked, vec![true, false]);
    }

    #[test]
    fn allow_annotations_parse_and_match() {
        let src = "// analyze:allow(no-wallclock-in-engine): diagnostics only\n\
                   let t = Instant::now();\n\
                   // analyze:allow(broken-no-reason):\n\
                   // analyze:hot\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.is_allowed("no-wallclock-in-engine", 2));
        assert!(!f.is_allowed("no-wallclock-in-engine", 4));
        assert!(!f.is_allowed("other-rule", 2));
        assert_eq!(f.malformed_allows, vec![3]);
        assert!(f.hot);
    }
}

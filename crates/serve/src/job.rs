//! What a client submits: a scenario or sweep, the backend to run it on,
//! an optional step-budget override, and an optional server-side
//! early-stop policy. One `JobRequest` expands to one *run* per spec
//! (sweeps expand exactly like [`SweepSpec::specs`]), and each run is
//! scheduled, streamed, spooled and reported independently.

use dlpic_repro::engine::json::{obj, Json};
use dlpic_repro::engine::{Backend, EnergyHistory, ScenarioSpec, SweepSpec};

use crate::protocol::ProtoError;

/// The circuit-breaker identity of one expanded run: backend plus the
/// full canonical spec JSON. Two runs share a fingerprint exactly when
/// the engine would execute them identically, so consecutive failures of
/// a resubmitted poison spec accumulate, while a neighbouring sweep point
/// (different seed, different parameters) is never punished for them.
pub fn spec_fingerprint(backend: Backend, spec: &ScenarioSpec) -> String {
    format!("{backend}|{}", spec.to_json_value().to_compact())
}

/// The workload of a job: one explicit scenario, or a sweep expanded
/// server-side.
#[derive(Debug, Clone)]
pub enum JobSource {
    /// A single fully-specified scenario.
    Scenario(ScenarioSpec),
    /// A declarative sweep (grid or explicit points × seed fan).
    Sweep(SweepSpec),
}

/// A submitted unit of work, as carried in the `job` field of a `submit`
/// request and in the spool manifest.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Backend every run of the job uses.
    pub backend: Backend,
    /// The spec(s) to run.
    pub source: JobSource,
    /// Overrides each expanded spec's `n_steps` (the job's step budget).
    pub steps: Option<usize>,
    /// Server-side early-stop predicate, evaluated after every wave.
    pub stop: Option<StopPolicy>,
    /// Hard per-run step ceiling: a run still unfinished after this many
    /// steps is marked `failed` (`deadline exceeded`), not `done`.
    pub deadline_steps: Option<usize>,
    /// Hard wall-clock ceiling measured from admission: an active run
    /// whose job has been running longer is marked `failed`.
    pub deadline_seconds: Option<f64>,
}

impl JobRequest {
    /// A job running one scenario.
    pub fn scenario(spec: ScenarioSpec, backend: Backend) -> Self {
        Self {
            backend,
            source: JobSource::Scenario(spec),
            steps: None,
            stop: None,
            deadline_steps: None,
            deadline_seconds: None,
        }
    }

    /// A job expanding a sweep.
    pub fn sweep(sweep: SweepSpec, backend: Backend) -> Self {
        Self {
            backend,
            source: JobSource::Sweep(sweep),
            steps: None,
            stop: None,
            deadline_steps: None,
            deadline_seconds: None,
        }
    }

    /// Caps every run at `steps` steps.
    pub fn with_steps(mut self, steps: usize) -> Self {
        self.steps = Some(steps);
        self
    }

    /// Stops every run early once `stop` fires.
    pub fn with_stop(mut self, stop: StopPolicy) -> Self {
        self.stop = Some(stop);
        self
    }

    /// Fails any run still unfinished after `steps` steps.
    pub fn with_deadline_steps(mut self, steps: usize) -> Self {
        self.deadline_steps = Some(steps);
        self
    }

    /// Fails any active run once the job has been running `seconds` of
    /// wall clock.
    pub fn with_deadline_seconds(mut self, seconds: f64) -> Self {
        self.deadline_seconds = Some(seconds);
        self
    }

    /// Expands the job into one validated spec per run, with the step
    /// budget applied.
    pub fn expand(&self) -> Result<Vec<ScenarioSpec>, ProtoError> {
        let mut specs = match &self.source {
            JobSource::Scenario(spec) => {
                spec.validate()
                    .map_err(|e| ProtoError::new("bad-job", e.to_string()))?;
                vec![spec.clone()]
            }
            JobSource::Sweep(sweep) => sweep
                .specs()
                .map_err(|e| ProtoError::new("bad-job", e.to_string()))?,
        };
        if let Some(steps) = self.steps {
            for spec in &mut specs {
                spec.n_steps = steps;
            }
        }
        for spec in &specs {
            self.backend
                .supports(spec)
                .map_err(|e| ProtoError::new("bad-job", e.to_string()))?;
        }
        Ok(specs)
    }

    /// The wire/spool form; inverse of [`Self::from_json_value`].
    pub fn to_json_value(&self) -> Json {
        let mut fields = vec![("backend", Json::Str(self.backend.to_string()))];
        match &self.source {
            JobSource::Scenario(spec) => fields.push(("scenario", spec.to_json_value())),
            JobSource::Sweep(sweep) => fields.push(("sweep", sweep.to_json_value())),
        }
        if let Some(steps) = self.steps {
            fields.push(("steps", Json::Num(steps as f64)));
        }
        if let Some(stop) = &self.stop {
            fields.push(("stop", stop.to_json_value()));
        }
        if let Some(d) = self.deadline_steps {
            fields.push(("deadline_steps", Json::Num(d as f64)));
        }
        if let Some(d) = self.deadline_seconds {
            fields.push(("deadline_seconds", Json::Num(d)));
        }
        obj(fields)
    }

    /// Parses the `job` object of a `submit` request. Strict like the
    /// rest of the protocol: exactly one of `scenario`/`sweep`, and no
    /// fields beyond the defined set.
    pub fn from_json_value(doc: &Json) -> Result<Self, ProtoError> {
        let Json::Obj(fields) = doc else {
            return Err(ProtoError::new("bad-job", "`job` must be a JSON object"));
        };
        const ALLOWED: &[&str] = &[
            "backend",
            "scenario",
            "sweep",
            "steps",
            "stop",
            "deadline_steps",
            "deadline_seconds",
        ];
        for (key, _) in fields {
            if !ALLOWED.contains(&key.as_str()) {
                return Err(ProtoError::new(
                    "unknown-field",
                    format!(
                        "`job` has no field `{key}` (accepts {})",
                        ALLOWED.join(", ")
                    ),
                ));
            }
        }
        let backend_name = doc
            .get("backend")
            .ok_or_else(|| ProtoError::new("missing-field", "`job` needs `backend`"))?
            .as_str()?;
        let backend = Backend::parse(backend_name).ok_or_else(|| {
            ProtoError::new("bad-job", format!("unknown backend `{backend_name}`"))
        })?;
        let source = match (doc.get("scenario"), doc.get("sweep")) {
            (Some(spec), None) => JobSource::Scenario(
                ScenarioSpec::from_json_value(spec)
                    .map_err(|e| ProtoError::new("bad-job", e.to_string()))?,
            ),
            (None, Some(sweep)) => JobSource::Sweep(
                SweepSpec::from_json_value(sweep)
                    .map_err(|e| ProtoError::new("bad-job", e.to_string()))?,
            ),
            _ => {
                return Err(ProtoError::new(
                    "bad-job",
                    "`job` needs exactly one of `scenario` or `sweep`",
                ))
            }
        };
        Ok(Self {
            backend,
            source,
            steps: match doc.get("steps") {
                Some(s) => Some(s.as_usize()?),
                None => None,
            },
            stop: match doc.get("stop") {
                Some(s) => Some(StopPolicy::from_json_value(s)?),
                None => None,
            },
            deadline_steps: match doc.get("deadline_steps") {
                Some(d) => {
                    let steps = d.as_usize()?;
                    if steps == 0 {
                        return Err(ProtoError::new(
                            "bad-job",
                            "`deadline_steps` must be at least 1",
                        ));
                    }
                    Some(steps)
                }
                None => None,
            },
            deadline_seconds: match doc.get("deadline_seconds") {
                Some(d) => {
                    let seconds = d.as_f64()?;
                    if seconds.is_nan() || seconds <= 0.0 {
                        return Err(ProtoError::new(
                            "bad-job",
                            "`deadline_seconds` must be a positive number",
                        ));
                    }
                    Some(seconds)
                }
                None => None,
            },
        })
    }
}

// ---------------------------------------------------------------------
// Early-stop policies.
// ---------------------------------------------------------------------

/// A `run_until`-style predicate expressed as data, so clients can ask
/// the server to reclaim capacity the moment a run stops being
/// interesting. Evaluated against the run's recorded history after every
/// wave.
#[derive(Debug, Clone, PartialEq)]
pub enum StopPolicy {
    /// Stop when the tracked mode amplitude saturates: a factor above its
    /// starting floor and no new peak for `patience` consecutive samples
    /// (the nonlinear-trapping plateau — the `examples/saturation.rs`
    /// controller as a service-side policy).
    Saturation {
        /// Index into the run's tracked modes.
        mode: usize,
        /// How far above the noise floor the peak must be.
        factor: f64,
        /// Samples without a new peak before stopping.
        patience: usize,
    },
    /// Stop once simulation time reaches `t`.
    Time {
        /// Stop threshold in simulation time units.
        t: f64,
    },
    /// Stop once field energy reaches `above`.
    FieldEnergy {
        /// Stop threshold on the field-energy diagnostic.
        above: f64,
    },
}

impl StopPolicy {
    /// The wire form; inverse of [`Self::from_json_value`].
    pub fn to_json_value(&self) -> Json {
        match self {
            Self::Saturation {
                mode,
                factor,
                patience,
            } => obj(vec![
                ("kind", Json::Str("saturation".into())),
                ("mode", Json::Num(*mode as f64)),
                ("factor", Json::Num(*factor)),
                ("patience", Json::Num(*patience as f64)),
            ]),
            Self::Time { t } => obj(vec![
                ("kind", Json::Str("time".into())),
                ("t", Json::Num(*t)),
            ]),
            Self::FieldEnergy { above } => obj(vec![
                ("kind", Json::Str("field_energy".into())),
                ("above", Json::Num(*above)),
            ]),
        }
    }

    /// Parses the `stop` object of a job.
    pub fn from_json_value(doc: &Json) -> Result<Self, ProtoError> {
        let kind = doc
            .get("kind")
            .ok_or_else(|| ProtoError::new("missing-field", "`stop` needs `kind`"))?
            .as_str()?;
        Ok(match kind {
            "saturation" => Self::Saturation {
                mode: match doc.get("mode") {
                    Some(m) => m.as_usize()?,
                    None => 0,
                },
                factor: match doc.get("factor") {
                    Some(f) => f.as_f64()?,
                    None => 10.0,
                },
                patience: match doc.get("patience") {
                    Some(p) => p.as_usize()?,
                    None => 15,
                },
            },
            "time" => Self::Time {
                t: doc
                    .get("t")
                    .ok_or_else(|| ProtoError::new("missing-field", "stop `time` needs `t`"))?
                    .as_f64()?,
            },
            "field_energy" => Self::FieldEnergy {
                above: doc
                    .get("above")
                    .ok_or_else(|| {
                        ProtoError::new("missing-field", "stop `field_energy` needs `above`")
                    })?
                    .as_f64()?,
            },
            other => {
                return Err(ProtoError::new(
                    "bad-job",
                    format!("unknown stop kind `{other}` (knows saturation, time, field_energy)"),
                ))
            }
        })
    }

    /// A fresh incremental evaluator for this policy.
    pub fn evaluator(&self) -> StopEval {
        StopEval {
            policy: self.clone(),
            rows_seen: 0,
            floor: None,
            peak: f64::NEG_INFINITY,
            stalled: 0,
        }
    }
}

/// Incremental evaluation state of one run's [`StopPolicy`]: feed it the
/// run's history after each wave; it fires at most once.
#[derive(Debug, Clone)]
pub struct StopEval {
    policy: StopPolicy,
    rows_seen: usize,
    floor: Option<f64>,
    peak: f64,
    stalled: usize,
}

impl StopEval {
    /// Consumes rows recorded since the last call; true once the policy
    /// says the run should stop.
    pub fn should_stop(&mut self, history: &EnergyHistory) -> bool {
        let mut fired = false;
        while self.rows_seen < history.len() {
            let i = self.rows_seen;
            self.rows_seen += 1;
            fired |= match &self.policy {
                StopPolicy::Saturation {
                    mode,
                    factor,
                    patience,
                } => {
                    let Some(amp) = history.mode_amps.get(*mode).and_then(|a| a.get(i)) else {
                        continue;
                    };
                    let floor = *self.floor.get_or_insert(*amp);
                    if *amp > self.peak {
                        self.peak = *amp;
                        self.stalled = 0;
                    } else {
                        self.stalled += 1;
                    }
                    self.peak > factor * floor && self.stalled >= *patience
                }
                StopPolicy::Time { t } => history.times[i] >= *t,
                StopPolicy::FieldEnergy { above } => history.field[i] >= *above,
            };
        }
        fired
    }
}

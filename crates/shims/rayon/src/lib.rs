//! Offline stand-in for `rayon`: the same method names, sequential
//! execution.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a shim exposing the `par_iter`/`par_chunks`/`fold`/`reduce` surface its
//! kernels call. [`current_num_threads`] returns 1, which makes every
//! `len >= THRESHOLD && current_num_threads() > 1` gate in the hot kernels
//! take the tuned serial path; the parallel branches still type-check and,
//! where they run unconditionally (dataset generation), execute
//! sequentially with identical results.

/// Number of worker threads. Always 1 in the shim: callers gate their
/// parallel branches on `> 1`, so they fall back to their serial paths.
pub fn current_num_threads() -> usize {
    1
}

/// Wrapper that gives a std iterator the rayon-shaped adapter surface.
pub struct ParIter<I>(pub I);

impl<I: Iterator> ParIter<I> {
    /// Pairs two "parallel" iterators (sequentially).
    pub fn zip<J: Iterator>(self, other: ParIter<J>) -> ParIter<std::iter::Zip<I, J>> {
        ParIter(self.0.zip(other.0))
    }

    /// Index-annotating adapter.
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    /// Mapping adapter.
    pub fn map<B, F: FnMut(I::Item) -> B>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    /// Consumes the iterator, applying `f` to every item.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// Sums the items.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// Collects the items.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// Rayon-shaped fold: `identity` builds the accumulator, `fold` merges
    /// every item into it. Sequentially there is exactly one partial
    /// accumulator, which [`Folded::reduce`] then returns.
    pub fn fold<T, Id, F>(self, identity: Id, mut fold: F) -> Folded<T>
    where
        Id: Fn() -> T,
        F: FnMut(T, I::Item) -> T,
    {
        let mut acc = identity();
        for item in self.0 {
            acc = fold(acc, item);
        }
        Folded(acc)
    }
}

/// The single partial result of a sequential [`ParIter::fold`].
pub struct Folded<T>(pub T);

impl<T> Folded<T> {
    /// Merges the partials; with one partial this is the identity.
    pub fn reduce<Id, F>(self, _identity: Id, _reduce: F) -> T
    where
        Id: Fn() -> T,
        F: FnMut(T, T) -> T,
    {
        self.0
    }
}

/// `par_iter`/`par_chunks` on shared slices.
pub trait ParSlice<T> {
    /// Sequential stand-in for `rayon::par_iter`.
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;
    /// Sequential stand-in for `rayon::par_chunks`.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
}

impl<T> ParSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
        ParIter(self.iter())
    }

    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter(self.chunks(chunk_size))
    }
}

/// `par_iter_mut`/`par_chunks_mut` on mutable slices.
pub trait ParSliceMut<T> {
    /// Sequential stand-in for `rayon::par_iter_mut`.
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>>;
    /// Sequential stand-in for `rayon::par_chunks_mut`.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
}

impl<T> ParSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>> {
        ParIter(self.iter_mut())
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter(self.chunks_mut(chunk_size))
    }
}

/// The glob the kernels import.
pub mod prelude {
    pub use super::{ParSlice, ParSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_sum_matches_serial() {
        let v: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s: f64 = v.par_iter().map(|x| x * 2.0).sum();
        assert_eq!(s, 9900.0);
    }

    #[test]
    fn fold_reduce_accumulates_everything() {
        let v: Vec<u64> = (1..=10).collect();
        let total = v
            .par_chunks(3)
            .fold(|| 0u64, |acc, c| acc + c.iter().sum::<u64>())
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 55);
    }

    #[test]
    fn zip_mutates_in_lockstep() {
        let mut a = vec![0.0; 4];
        let b = [1.0, 2.0, 3.0, 4.0];
        a.par_iter_mut()
            .zip(b.par_iter())
            .for_each(|(x, &y)| *x = y * y);
        assert_eq!(a, [1.0, 4.0, 9.0, 16.0]);
    }
}

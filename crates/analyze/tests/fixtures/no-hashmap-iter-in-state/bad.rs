//! Fixture: HashMap in a state-serialization path. The map's iteration
//! order leaks into the rendered bytes, so two identical runs can write
//! different checkpoint files.

use std::collections::HashMap;

pub struct RunIndex {
    runs: HashMap<String, u64>,
}

impl RunIndex {
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (id, steps) in &self.runs {
            out.push_str(&format!("{id}={steps}\n"));
        }
        out
    }
}

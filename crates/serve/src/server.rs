//! The daemon: one acceptor thread, one handler thread per connection,
//! and one **scheduler** thread that owns every live [`Session`].
//!
//! The scheduler is the only thread that touches solver state, so the
//! engine's single-threaded determinism story carries over unchanged: it
//! admits queued runs (round-robin across tenants, capped at
//! `max_sessions`), steps every admitted session in lockstep waves
//! through [`WaveBatch`] — co-resident DL runs share one batched
//! inference per wave, exactly like an [`Ensemble`](dlpic_repro::engine::Ensemble)
//! — then briefly takes the control-plane lock to publish progress,
//! stream new diagnostics rows to watchers, evaluate early-stop
//! policies and finalize finished runs. Checkpoints flush to the spool
//! every `spool_interval` waves and on drain, so a killed server resumes
//! bit-identically (the engine re-runs the at-most-`spool_interval`
//! trailing waves deterministically).
//!
//! Connection handlers never block the scheduler for longer than a
//! control-plane update: submissions only append to the job table, and
//! watch subscriptions are `mpsc` senders the scheduler fans samples
//! into.

use std::collections::VecDeque;
use std::io::{BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use dlpic_repro::engine::json::{obj, Json};
use dlpic_repro::engine::{
    estimate_session, Backend, Checkpoint, Engine, RunSummary, ScenarioSpec, Session, WaveBatch,
    WeightProfiler,
};

use crate::error::ServeError;
use crate::job::{spec_fingerprint, JobRequest, StopEval};
use crate::protocol::{self, ProtoError, Request, WatchPolicy};
use crate::spool::{Spool, SpoolJob, SpoolRun};
use crate::stats::{CircuitBreakers, LatencyHistogram};

// ---------------------------------------------------------------------
// Configuration.
// ---------------------------------------------------------------------

/// Server configuration; build with the fluent setters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// `host:port` for TCP, or `unix:<path>` for a Unix socket. Port 0
    /// binds an ephemeral port (the bound address is
    /// [`Server::addr`]).
    pub listen: String,
    /// Durable state directory; `None` serves from memory only.
    pub spool: Option<PathBuf>,
    /// Reload a previous fleet from the spool manifest before serving.
    pub resume: bool,
    /// Admission cap: at most this many sessions step concurrently.
    pub max_sessions: usize,
    /// Waves between spool flushes (checkpoints + manifest).
    pub spool_interval: usize,
    /// Budgeted admission: upper bound (bytes) on the summed resource
    /// estimate of concurrently *stepping* runs. `None` disables the
    /// budget and admission is capped by `max_sessions` alone.
    pub memory_budget: Option<usize>,
    /// Backlog cap: at most this many runs may sit queued across all
    /// tenants; past it `submit` sheds load with a structured
    /// `overloaded` rejection carrying `retry_after_ms`.
    pub max_queued: usize,
    /// Per-tenant backlog cap; past it `submit` rejects that tenant with
    /// `quota-exceeded` while other tenants keep submitting.
    pub tenant_max_queued: usize,
    /// Circuit breaker: consecutive failed runs of one spec fingerprint
    /// before its circuit opens (0 disables the breaker).
    pub breaker_threshold: usize,
    /// How long an open circuit rejects resubmissions before half-opening.
    pub breaker_cooldown: Duration,
    /// Spool retention: keep at most this many *finished* jobs per tenant
    /// in the table/manifest; older ones are pruned on the scheduler's
    /// retention pass. `None` keeps everything (the `prune` op then needs
    /// an explicit `keep`).
    pub spool_retain: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            listen: "127.0.0.1:0".into(),
            spool: None,
            resume: false,
            max_sessions: 16,
            spool_interval: 32,
            memory_budget: None,
            max_queued: 1024,
            tenant_max_queued: 256,
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(60),
            spool_retain: None,
        }
    }
}

impl ServeConfig {
    /// Sets the listen address (`host:port` or `unix:<path>`).
    pub fn listen(mut self, addr: impl Into<String>) -> Self {
        self.listen = addr.into();
        self
    }

    /// Enables the spool directory.
    pub fn spool(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spool = Some(dir.into());
        self
    }

    /// Resumes a previous fleet from the spool manifest.
    pub fn resume(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spool = Some(dir.into());
        self.resume = true;
        self
    }

    /// Sets the admission cap.
    pub fn max_sessions(mut self, n: usize) -> Self {
        self.max_sessions = n.max(1);
        self
    }

    /// Sets the spool flush interval in waves.
    pub fn spool_interval(mut self, waves: usize) -> Self {
        self.spool_interval = waves.max(1);
        self
    }

    /// Caps the summed resource estimate of concurrently stepping runs.
    pub fn memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// Caps the global queued-run backlog.
    pub fn max_queued(mut self, runs: usize) -> Self {
        self.max_queued = runs.max(1);
        self
    }

    /// Caps each tenant's queued-run backlog.
    pub fn tenant_max_queued(mut self, runs: usize) -> Self {
        self.tenant_max_queued = runs.max(1);
        self
    }

    /// Sets the circuit-breaker trip threshold (0 disables) and cooldown.
    pub fn breaker(mut self, threshold: usize, cooldown: Duration) -> Self {
        self.breaker_threshold = threshold;
        self.breaker_cooldown = cooldown;
        self
    }

    /// Keeps at most `jobs` finished jobs per tenant in spool/table.
    pub fn spool_retain(mut self, jobs: usize) -> Self {
        self.spool_retain = Some(jobs);
        self
    }
}

// ---------------------------------------------------------------------
// Control-plane state (behind the mutex).
// ---------------------------------------------------------------------

/// Lifecycle of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Queued,
    Active,
    Done,
    Stopped,
    Cancelled,
    Failed,
}

impl Phase {
    fn name(self) -> &'static str {
        match self {
            Self::Queued => "queued",
            Self::Active => "active",
            Self::Done => "done",
            Self::Stopped => "stopped",
            Self::Cancelled => "cancelled",
            Self::Failed => "failed",
        }
    }

    fn is_final(self) -> bool {
        matches!(
            self,
            Self::Done | Self::Stopped | Self::Cancelled | Self::Failed
        )
    }
}

/// What the scheduler admits: a fresh spec, or a spooled checkpoint.
enum PendingRun {
    Fresh(ScenarioSpec),
    Resume(Box<Checkpoint>),
}

struct RunEntry {
    name: String,
    phase: Phase,
    steps_done: usize,
    steps_total: usize,
    pending: Option<PendingRun>,
    result: Option<Json>,
    error: Option<String>,
    /// Global completion order (fairness is observable, not a timing
    /// guess): the n-th run to reach a final state gets n.
    finish_seq: Option<u64>,
    /// The run's *private* resource estimate charged against the memory
    /// budget while it steps: [`estimate_session`] total minus the
    /// shared-weight slice when `weight_key` is `Some` (the weights are
    /// charged separately, once per distinct key), the full total when
    /// the run owns its model. 0 for final runs reloaded without a spec
    /// (nothing left to charge).
    est_bytes: usize,
    /// Bytes of the shared weight allocation this run reads, charged
    /// **once per distinct `weight_key`** across all active runs. 0 when
    /// `weight_key` is `None`.
    weight_bytes: usize,
    /// The engine's weight-sharing fingerprint
    /// ([`Engine::weight_profile`](dlpic_repro::engine::Engine::weight_profile)):
    /// active runs with equal keys read one allocation. `None` for
    /// model-free backends and per-copy models.
    weight_key: Option<String>,
    /// Circuit-breaker key ([`spec_fingerprint`]); empty when the spec is
    /// gone (final runs reloaded from results only).
    fingerprint: String,
}

/// Budget and breaker bookkeeping of one run under the server's weight
/// profiler: the private estimate, the shared-weight charge, and the keys
/// both are filed under.
struct RunAccounting {
    est_bytes: usize,
    weight_bytes: usize,
    weight_key: Option<String>,
    fingerprint: String,
}

fn run_accounting(
    profiler: &WeightProfiler,
    backend: Backend,
    spec: &ScenarioSpec,
) -> RunAccounting {
    let est = estimate_session(spec, backend);
    let fingerprint = spec_fingerprint(backend, spec);
    match profiler.profile(spec, backend) {
        Some((key, bytes)) => RunAccounting {
            est_bytes: est.total() - est.shared_weight_bytes,
            weight_bytes: bytes,
            weight_key: Some(key),
            fingerprint,
        },
        None => RunAccounting {
            est_bytes: est.total(),
            weight_bytes: 0,
            weight_key: None,
            fingerprint,
        },
    }
}

/// One watch subscriber's bounded event queue. The scheduler pushes under
/// its control-plane pass; the subscriber's connection thread pops and
/// writes to the socket at the client's pace. When the client is slower
/// than the fleet, the queue sheds *samples* by its [`WatchPolicy`] —
/// control events (`run_done`, `run_failed`, `job_done`) always land, so
/// a slow watcher loses resolution, never outcomes, and a stalled one
/// bounds its memory here instead of in an unbounded channel or the OS
/// socket buffer.
struct SubQueue {
    policy: WatchPolicy,
    capacity: usize,
    state: Mutex<SubState>,
    ready: Condvar,
}

struct SubState {
    items: VecDeque<String>,
    closed: bool,
    queued_total: u64,
    dropped: u64,
    decimated: u64,
}

impl SubQueue {
    fn new(policy: WatchPolicy, capacity: usize) -> Self {
        Self {
            policy,
            capacity: capacity.max(1),
            state: Mutex::new(SubState {
                items: VecDeque::new(),
                closed: false,
                queued_total: 0,
                dropped: 0,
                decimated: 0,
            }),
            ready: Condvar::new(),
        }
    }

    /// Enqueues one sample line for history row `row`, shedding by
    /// policy: decimation keeps every Nth row, and a full queue evicts
    /// its oldest sample.
    fn push_sample(&self, line: &str, row: usize) {
        let mut st = self.state.lock().unwrap();
        if st.closed {
            return;
        }
        if let WatchPolicy::Decimate(n) = self.policy {
            if !row.is_multiple_of(n) {
                st.decimated += 1;
                return;
            }
        }
        if st.items.len() >= self.capacity {
            st.items.pop_front();
            st.dropped += 1;
        }
        st.items.push_back(line.to_string());
        st.queued_total += 1;
        self.ready.notify_one();
    }

    /// Enqueues a control event; never shed (outcomes must arrive).
    fn push_control(&self, line: &str) {
        let mut st = self.state.lock().unwrap();
        if st.closed {
            return;
        }
        st.items.push_back(line.to_string());
        st.queued_total += 1;
        self.ready.notify_one();
    }

    /// Blocks for the next line; `None` once closed and drained.
    fn pop(&self) -> Option<String> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(line) = st.items.pop_front() {
                return Some(line);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).unwrap();
        }
    }

    /// Marks the queue finished; queued lines still drain via [`pop`].
    fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.ready.notify_all();
    }

    fn is_closed(&self) -> bool {
        self.state.lock().unwrap().closed
    }

    /// `(depth, queued_total, dropped, decimated)` for `status`.
    fn stats(&self) -> (usize, u64, u64, u64) {
        let st = self.state.lock().unwrap();
        (st.items.len(), st.queued_total, st.dropped, st.decimated)
    }
}

struct JobEntry {
    id: String,
    tenant: String,
    request: JobRequest,
    /// Client-supplied idempotency key (resubmits dedupe against it).
    job_key: Option<String>,
    /// When this job entered the table (or re-entered it on resume) —
    /// the epoch `deadline_seconds` is measured from.
    submitted: Instant,
    runs: Vec<RunEntry>,
    subscribers: Vec<Arc<SubQueue>>,
}

impl JobEntry {
    fn is_final(&self) -> bool {
        self.runs.iter().all(|r| r.phase.is_final())
    }

    fn publish_control(&mut self, line: &str) {
        self.subscribers.retain(|q| !q.is_closed());
        for q in &self.subscribers {
            q.push_control(line);
        }
    }

    fn publish_sample(&mut self, line: &str, row: usize) {
        for q in &self.subscribers {
            q.push_sample(line, row);
        }
    }
}

struct Shared {
    jobs: Vec<JobEntry>,
    next_job: u64,
    /// Tenant admitted last, for round-robin fairness.
    last_tenant: Option<String>,
    /// Monotonic counter handed to runs as they reach a final state.
    finish_counter: u64,
    /// Cumulative seconds the scheduler spent stepping waves and doing
    /// post-wave work (streaming, finalizing, spooling) — the serving
    /// tier's whole per-step cost, excluding session construction and
    /// idle waits. `serve_throughput` gates on this.
    stepping_seconds: f64,
    /// Per-wave latency distribution (same interval `stepping_seconds`
    /// accumulates); `status`/`health` surface it and the perf gate
    /// bounds its p99.
    wave_latency: LatencyHistogram,
    /// Poison-job circuit breakers, keyed by spec fingerprint. The
    /// scheduler records outcomes; `submit` consults them.
    breakers: CircuitBreakers,
    /// A handler asking the scheduler for a retention pass: `Some(keep)`
    /// until the scheduler picks it up, then the pruned count lands in
    /// `prune_result`. Funneled through the scheduler because active-run
    /// bookkeeping holds indices into `jobs`.
    prune_request: Option<usize>,
    prune_result: Option<usize>,
    draining: bool,
    stopped: bool,
}

impl Shared {
    fn queued_runs(&self) -> usize {
        self.jobs
            .iter()
            .flat_map(|j| &j.runs)
            .filter(|r| r.phase == Phase::Queued)
            .count()
    }

    fn active_runs(&self) -> usize {
        self.jobs
            .iter()
            .flat_map(|j| &j.runs)
            .filter(|r| r.phase == Phase::Active)
            .count()
    }

    fn tenant_queued(&self, tenant: &str) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.tenant == tenant)
            .flat_map(|j| &j.runs)
            .filter(|r| r.phase == Phase::Queued)
            .count()
    }

    /// Bytes charged against the memory budget right now: every `Active`
    /// run's private estimate, plus each distinct shared weight
    /// allocation **once** — N cohort members over one model charge N
    /// private estimates and one weight copy, matching what the engine
    /// actually allocates.
    fn active_bytes(&self) -> usize {
        let private: usize = self
            .jobs
            .iter()
            .flat_map(|j| &j.runs)
            .filter(|r| r.phase == Phase::Active)
            .map(|r| r.est_bytes)
            .sum();
        private + self.active_weight_stats().1
    }

    /// Distinct shared weight allocations read by active runs:
    /// `(distinct_models, weight_bytes)` with each allocation counted
    /// once.
    fn active_weight_stats(&self) -> (usize, usize) {
        let mut seen: Vec<&str> = Vec::new();
        let mut bytes = 0usize;
        for r in self
            .jobs
            .iter()
            .flat_map(|j| &j.runs)
            .filter(|r| r.phase == Phase::Active)
        {
            if let Some(key) = r.weight_key.as_deref() {
                if !seen.contains(&key) {
                    seen.push(key);
                    bytes += r.weight_bytes;
                }
            }
        }
        (seen.len(), bytes)
    }

    /// Waiting bytes, counted pessimistically (each queued run charged
    /// its weights as if nothing were shared — what admission would cost
    /// in the worst case).
    fn queued_bytes(&self) -> usize {
        self.jobs
            .iter()
            .flat_map(|j| &j.runs)
            .filter(|r| r.phase == Phase::Queued)
            .map(|r| r.est_bytes + r.weight_bytes)
            .sum()
    }

    /// Retry advice for shed load: roughly one backlog's worth of waves
    /// at the recently observed wave latency, clamped to [100 ms, 10 s].
    /// Before any wave has run the histogram is empty and the estimate
    /// falls back to a flat 500 ms.
    fn retry_after_ms(&self) -> u64 {
        let mean = self.wave_latency.mean_ms();
        if mean <= 0.0 {
            return 500;
        }
        let eta = mean * (self.queued_runs() as f64 + 1.0);
        eta.clamp(100.0, 10_000.0) as u64
    }
}

struct Inner {
    shared: Mutex<Shared>,
    wake: Condvar,
    max_sessions: usize,
    spool_interval: usize,
    spool: Option<Spool>,
    memory_budget: Option<usize>,
    max_queued: usize,
    tenant_max_queued: usize,
    spool_retain: Option<usize>,
    /// Snapshot of the engine's weight-sharing configuration, so request
    /// handlers account submissions without the engine (which the
    /// scheduler thread owns).
    profiler: WeightProfiler,
}

// ---------------------------------------------------------------------
// The server.
// ---------------------------------------------------------------------

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

/// One accepted client connection (TCP or Unix).
enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Conn {
    fn try_clone(&self) -> std::io::Result<Conn> {
        Ok(match self {
            Self::Tcp(s) => Self::Tcp(s.try_clone()?),
            Self::Unix(s) => Self::Unix(s.try_clone()?),
        })
    }
}

impl std::io::Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Self::Tcp(s) => s.read(buf),
            Self::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Self::Tcp(s) => s.write(buf),
            Self::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Self::Tcp(s) => s.flush(),
            Self::Unix(s) => s.flush(),
        }
    }
}

/// A running server: the bound address plus the scheduler/acceptor
/// threads. Dropping the handle does **not** stop the server; send a
/// `drain` request (or [`Client::drain`](crate::client::Client::drain))
/// and [`Self::wait`].
pub struct Server {
    addr: String,
    inner: Arc<Inner>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, loads the spool when resuming, and starts serving with a
    /// default (untrained-model) [`Engine`].
    pub fn start(config: ServeConfig) -> Result<Self, ServeError> {
        Self::start_with_engine(config, Engine::new())
    }

    /// [`Self::start`] with a caller-built engine (trained models,
    /// custom numerics). The scheduler thread takes sole ownership of
    /// the engine.
    pub fn start_with_engine(config: ServeConfig, engine: Engine) -> Result<Self, ServeError> {
        let listener = match config.listen.strip_prefix("unix:") {
            Some(path) => {
                let _ = std::fs::remove_file(path);
                Listener::Unix(UnixListener::bind(path)?)
            }
            None => Listener::Tcp(TcpListener::bind(&config.listen)?),
        };
        let addr = match &listener {
            Listener::Tcp(l) => l.local_addr()?.to_string(),
            Listener::Unix(_) => config.listen.clone(),
        };

        let spool = match &config.spool {
            Some(dir) => Some(Spool::open(dir.clone())?),
            None => None,
        };
        let mut shared = Shared {
            jobs: Vec::new(),
            next_job: 1,
            last_tenant: None,
            finish_counter: 0,
            stepping_seconds: 0.0,
            wave_latency: LatencyHistogram::default(),
            breakers: CircuitBreakers::new(config.breaker_threshold, config.breaker_cooldown),
            prune_request: None,
            prune_result: None,
            draining: false,
            stopped: false,
        };
        let profiler = engine.weight_profiler();
        if config.resume {
            let spool = spool.as_ref().ok_or_else(|| {
                ServeError::Protocol(ProtoError::new(
                    "bad-request",
                    "--resume requires a spool directory",
                ))
            })?;
            let (next_job, jobs) = spool.load_manifest()?;
            shared.next_job = next_job;
            shared.jobs = jobs
                .into_iter()
                .map(|job| load_spooled_job(spool, job, &profiler))
                .collect::<Result<_, _>>()?;
        }

        let inner = Arc::new(Inner {
            shared: Mutex::new(shared),
            wake: Condvar::new(),
            max_sessions: config.max_sessions,
            spool_interval: config.spool_interval,
            spool,
            memory_budget: config.memory_budget,
            max_queued: config.max_queued,
            tenant_max_queued: config.tenant_max_queued,
            spool_retain: config.spool_retain,
            profiler,
        });

        let mut threads = Vec::new();
        {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name("dlpic-serve-scheduler".into())
                    .spawn(move || Scheduler::new(inner, engine).run())?,
            );
        }
        {
            let inner = Arc::clone(&inner);
            threads.push(
                std::thread::Builder::new()
                    .name("dlpic-serve-acceptor".into())
                    .spawn(move || accept_loop(listener, inner))?,
            );
        }
        Ok(Self {
            addr,
            inner,
            threads,
        })
    }

    /// The bound address clients connect to (`host:port` with the real
    /// port for TCP, the `unix:<path>` string for Unix sockets).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// True once a drain completed and the scheduler exited.
    pub fn is_stopped(&self) -> bool {
        self.inner.shared.lock().unwrap().stopped
    }

    /// Blocks until the server drains (scheduler and acceptor exited).
    pub fn wait(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

// ---------------------------------------------------------------------
// Spool resume.
// ---------------------------------------------------------------------

/// Rehydrates one manifest job: finished runs reload their stored
/// summaries, in-flight runs re-queue from their checkpoint (or from
/// step 0 via the embedded spec when the kill landed before their first
/// flush), queued runs re-queue from their spec.
///
/// Self-healing: a truncated or corrupt per-run file never aborts the
/// resume. A bad checkpoint restarts that run from step 0 when its spec
/// survived (with a warning), else quarantines just that run as `failed`;
/// a bad result file quarantines likewise. Every other run resumes
/// untouched.
fn load_spooled_job(
    spool: &Spool,
    job: SpoolJob,
    profiler: &WeightProfiler,
) -> Result<JobEntry, ServeError> {
    let backend = job.request.backend;
    // Budget/breaker bookkeeping for reloaded runs: recompute from the
    // stored spec when it survived (final runs without one charge 0 bytes
    // and carry an empty fingerprint — neither is consulted again).
    let accounting = |spec: Option<&ScenarioSpec>| -> RunAccounting {
        spec.map_or(
            RunAccounting {
                est_bytes: 0,
                weight_bytes: 0,
                weight_key: None,
                fingerprint: String::new(),
            },
            |s| run_accounting(profiler, backend, s),
        )
    };
    let quarantine = |run: &SpoolRun, k: usize, why: String| -> RunEntry {
        eprintln!("warning: spool: {} run {k} quarantined: {why}", job.id);
        let acct = accounting(run.spec.as_ref());
        RunEntry {
            name: run.name.clone(),
            phase: Phase::Failed,
            steps_done: 0,
            steps_total: run.spec.as_ref().map_or(0, |s| s.n_steps),
            pending: None,
            result: None,
            error: Some(format!("unrecoverable after restart: {why}")),
            finish_seq: None,
            est_bytes: acct.est_bytes,
            weight_bytes: acct.weight_bytes,
            weight_key: acct.weight_key,
            fingerprint: acct.fingerprint,
        }
    };
    let mut runs = Vec::with_capacity(job.runs.len());
    for (k, run) in job.runs.iter().enumerate() {
        let entry = match run.state.as_str() {
            "done" | "stopped" => match spool.read_result(&job.id, k) {
                Ok(result) => {
                    let steps = result.field("steps").and_then(Json::as_usize).unwrap_or(0);
                    let acct = accounting(run.spec.as_ref());
                    RunEntry {
                        name: run.name.clone(),
                        phase: if run.state == "done" {
                            Phase::Done
                        } else {
                            Phase::Stopped
                        },
                        steps_done: steps,
                        steps_total: steps.max(run.spec.as_ref().map_or(0, |s| s.n_steps)),
                        pending: None,
                        result: Some(result),
                        error: None,
                        finish_seq: None,
                        est_bytes: acct.est_bytes,
                        weight_bytes: acct.weight_bytes,
                        weight_key: acct.weight_key,
                        fingerprint: acct.fingerprint,
                    }
                }
                Err(e) => quarantine(run, k, format!("corrupt result file: {e}")),
            },
            "cancelled" | "failed" => {
                let acct = accounting(run.spec.as_ref());
                RunEntry {
                    name: run.name.clone(),
                    phase: if run.state == "cancelled" {
                        Phase::Cancelled
                    } else {
                        Phase::Failed
                    },
                    steps_done: 0,
                    steps_total: run.spec.as_ref().map_or(0, |s| s.n_steps),
                    pending: None,
                    // Failed runs may have a stored partial summary.
                    result: spool.read_result(&job.id, k).ok(),
                    error: run.error.clone(),
                    finish_seq: None,
                    est_bytes: acct.est_bytes,
                    weight_bytes: acct.weight_bytes,
                    weight_key: acct.weight_key,
                    fingerprint: acct.fingerprint,
                }
            }
            // "active" and "queued" both re-queue; an active run prefers
            // its checkpoint and falls back to a fresh start.
            _ => {
                let recovered: Result<(PendingRun, usize), String> = if spool
                    .has_checkpoint(&job.id, k)
                {
                    match spool.read_checkpoint(&job.id, k) {
                        Ok(ckpt) => {
                            let done = ckpt.steps_done;
                            Ok((PendingRun::Resume(Box::new(ckpt)), done))
                        }
                        Err(e) => match run.spec.clone() {
                            Some(spec) => {
                                eprintln!(
                                    "warning: spool: {} run {k}: corrupt checkpoint \
                                         ({e}); restarting from step 0",
                                    job.id
                                );
                                Ok((PendingRun::Fresh(spec), 0))
                            }
                            None => Err(format!("corrupt checkpoint and no spec to restart: {e}")),
                        },
                    }
                } else {
                    match run.spec.clone() {
                        Some(spec) => Ok((PendingRun::Fresh(spec), 0)),
                        None => Err("neither checkpoint nor spec on disk".into()),
                    }
                };
                match recovered {
                    Ok((pending, steps_done)) => {
                        let spec = match &pending {
                            PendingRun::Resume(c) => &c.spec,
                            PendingRun::Fresh(s) => s,
                        };
                        let steps_total = spec.n_steps;
                        let acct = accounting(Some(spec));
                        RunEntry {
                            name: run.name.clone(),
                            phase: Phase::Queued,
                            steps_done,
                            steps_total,
                            pending: Some(pending),
                            result: None,
                            error: None,
                            finish_seq: None,
                            est_bytes: acct.est_bytes,
                            weight_bytes: acct.weight_bytes,
                            weight_key: acct.weight_key,
                            fingerprint: acct.fingerprint,
                        }
                    }
                    Err(why) => quarantine(run, k, why),
                }
            }
        };
        runs.push(entry);
    }
    Ok(JobEntry {
        id: job.id,
        tenant: job.tenant,
        request: job.request,
        job_key: job.job_key,
        submitted: Instant::now(),
        runs,
        subscribers: Vec::new(),
    })
}

// ---------------------------------------------------------------------
// The scheduler.
// ---------------------------------------------------------------------

/// A session the scheduler is stepping, with its control-plane address.
struct ActiveRun {
    job: usize,
    run: usize,
    session: Session,
    /// History rows already streamed to watchers.
    emitted: usize,
    stop: Option<StopEval>,
}

struct Scheduler {
    inner: Arc<Inner>,
    engine: Engine,
    active: Vec<ActiveRun>,
    batch: WaveBatch,
    waves_since_flush: usize,
}

impl Scheduler {
    fn new(inner: Arc<Inner>, engine: Engine) -> Self {
        Self {
            inner,
            engine,
            active: Vec::new(),
            batch: WaveBatch::new(),
            waves_since_flush: 0,
        }
    }

    fn run(mut self) {
        // A local handle so mutex guards don't pin `self` borrowed.
        let inner = Arc::clone(&self.inner);
        loop {
            // Control-plane sync: cancellations, drain, admission.
            let admissions = {
                let mut sh = inner.shared.lock().unwrap();
                self.sweep_cancelled(&mut sh);
                // Retention runs here — on the scheduler thread — because
                // active-run bookkeeping holds indices into `sh.jobs` that
                // must be remapped in the same critical section.
                if let Some(keep) = sh.prune_request.take() {
                    let pruned = self.apply_retention(&mut sh, keep);
                    self.flush_spool(&sh);
                    // Retention also releases the model-registry cache:
                    // an operator pruning jobs wants the memory back, and
                    // sessions still stepping keep their own `Arc`s.
                    if let Some(registry) = self.engine.registry() {
                        registry.lock().unwrap_or_else(|p| p.into_inner()).prune();
                    }
                    sh.prune_result = Some(pruned);
                    inner.wake.notify_all();
                }
                if let Some(retain) = inner.spool_retain {
                    if self.apply_retention(&mut sh, retain) > 0 {
                        self.flush_spool(&sh);
                    }
                }
                if sh.draining {
                    self.flush_spool(&sh);
                    for job in &mut sh.jobs {
                        for q in &job.subscribers {
                            q.close();
                        }
                        job.subscribers.clear();
                    }
                    sh.stopped = true;
                    inner.wake.notify_all();
                    return;
                }
                let admissions = self.admit(&mut sh);
                if self.active.is_empty() && admissions.is_empty() {
                    // Idle: nothing runs, nothing to admit — sleep until
                    // a handler wakes us (timeout as a safety net).
                    let _ = inner
                        .wake
                        .wait_timeout(sh, Duration::from_millis(200))
                        .unwrap();
                    continue;
                }
                admissions
            };

            // Build admitted sessions without holding the lock (model
            // setup is the expensive part of a DL run's lifecycle).
            for (job, run, pending) in admissions {
                self.build(job, run, pending);
            }

            // One lockstep wave across every active session.
            let t0 = std::time::Instant::now();
            let mut refs: Vec<&mut Session> =
                self.active.iter_mut().map(|a| &mut a.session).collect();
            self.batch.step_wave(&mut refs);
            self.waves_since_flush += 1;

            // Publish progress, stream samples, finalize, flush.
            let mut sh = inner.shared.lock().unwrap();
            self.publish_wave(&mut sh);
            if self.waves_since_flush >= self.inner.spool_interval {
                self.flush_spool(&sh);
                self.waves_since_flush = 0;
            }
            let elapsed = t0.elapsed();
            sh.stepping_seconds += elapsed.as_secs_f64();
            sh.wave_latency.record(elapsed);
        }
    }

    /// One retention pass: per tenant, keep the newest `keep` *finished*
    /// jobs (insertion order is id order) and drop the rest from the
    /// table; the next manifest flush garbage-collects their spool
    /// directories. In-flight jobs are never touched, so no `ActiveRun`
    /// can reference a removed entry — remaining active indices are
    /// remapped over the holes. Returns how many jobs were pruned.
    ///
    /// A pruned job forgets everything about itself, including its
    /// `job_key` — a later resubmit with the same key schedules fresh
    /// work instead of deduping.
    fn apply_retention(&mut self, sh: &mut Shared, keep: usize) -> usize {
        let mut drop_idx: Vec<usize> = Vec::new();
        let mut tenants: Vec<&str> = Vec::new();
        for job in &sh.jobs {
            if !tenants.contains(&job.tenant.as_str()) {
                tenants.push(&job.tenant);
            }
        }
        for tenant in tenants {
            let finished: Vec<usize> = sh
                .jobs
                .iter()
                .enumerate()
                .filter(|(_, j)| j.tenant == tenant && j.is_final())
                .map(|(i, _)| i)
                .collect();
            if finished.len() > keep {
                drop_idx.extend_from_slice(&finished[..finished.len() - keep]);
            }
        }
        if drop_idx.is_empty() {
            return 0;
        }
        drop_idx.sort_unstable();
        let mut idx = 0usize;
        sh.jobs.retain(|_| {
            let dropped = drop_idx.binary_search(&idx).is_ok();
            idx += 1;
            !dropped
        });
        for a in &mut self.active {
            a.job -= drop_idx.partition_point(|&d| d < a.job);
        }
        drop_idx.len()
    }

    /// Admits queued runs round-robin across tenants until the session
    /// cap — or the memory budget — is reached. Marks them `Active` in
    /// the control plane and returns what to build. Queued runs whose
    /// spec's circuit is open are failed here (`circuit-open`) without
    /// consuming a session slot.
    fn admit(&mut self, sh: &mut Shared) -> Vec<(usize, usize, PendingRun)> {
        let now = Instant::now();
        let mut admissions = Vec::new();
        while self.active.len() + admissions.len() < self.inner.max_sessions {
            // The rotation: distinct tenants with queued work, in job
            // order; serve the one after the last-served tenant.
            let mut tenants: Vec<String> = Vec::new();
            for job in &sh.jobs {
                if job.runs.iter().any(|r| r.phase == Phase::Queued)
                    && !tenants.contains(&job.tenant)
                {
                    tenants.push(job.tenant.clone());
                }
            }
            if tenants.is_empty() {
                break;
            }
            let start = sh
                .last_tenant
                .as_ref()
                .and_then(|last| tenants.iter().position(|t| t == last))
                .map_or(0, |pos| (pos + 1) % tenants.len());
            let tenant = tenants[start].clone();
            let slot = sh.jobs.iter().enumerate().find_map(|(j, job)| {
                if job.tenant != tenant {
                    return None;
                }
                job.runs
                    .iter()
                    .position(|r| r.phase == Phase::Queued)
                    .map(|k| (j, k))
            });
            let Some((j, k)) = slot else { break };
            // A quarantined spec fails at the admission gate: the run
            // never gets a session, so a poison job resubmitted in a
            // loop cannot occupy scheduler waves during its cooldown.
            let fingerprint = sh.jobs[j].runs[k].fingerprint.clone();
            if let Some(remaining) = sh.breakers.open_remaining(&fingerprint, now) {
                let seq = sh.finish_counter;
                sh.finish_counter += 1;
                let run = &mut sh.jobs[j].runs[k];
                run.phase = Phase::Failed;
                run.pending = None;
                run.error = Some(format!(
                    "circuit-open: spec quarantined for another {:.1}s",
                    remaining.as_secs_f64()
                ));
                run.finish_seq = Some(seq);
                let line = run_failed_event(&sh.jobs[j].id, k, &sh.jobs[j].runs[k]);
                sh.jobs[j].publish_control(&line);
                finish_job_if_final(&mut sh.jobs[j]);
                // The tenant used its rotation turn on a shed run.
                sh.last_tenant = Some(tenant);
                continue;
            }
            // Budgeted admission: the next candidate must fit in the
            // remaining budget, else admission pauses until an active
            // run frees its estimate (head-of-line, so a large run
            // cannot starve behind a stream of small ones). A lone run
            // bigger than the whole budget is admitted anyway when
            // nothing else is stepping — submit-time checks reject such
            // specs, but a spool resumed under a tighter budget must
            // still make progress.
            if let Some(budget) = self.inner.memory_budget {
                let used = sh.active_bytes();
                // Incremental cost: the private estimate always, the
                // shared weight allocation only when no active run
                // already holds the same weight key — a cohort member
                // joining resident weights is cheap by exactly the
                // weights' size.
                let entry = &sh.jobs[j].runs[k];
                let weights_resident = entry.weight_key.as_deref().is_some_and(|key| {
                    sh.jobs
                        .iter()
                        .flat_map(|jb| &jb.runs)
                        .any(|r| r.phase == Phase::Active && r.weight_key.as_deref() == Some(key))
                });
                let need = entry.est_bytes
                    + if weights_resident {
                        0
                    } else {
                        entry.weight_bytes
                    };
                if used > 0 && used + need > budget {
                    break;
                }
            }
            let run = &mut sh.jobs[j].runs[k];
            run.phase = Phase::Active;
            let pending = run
                .pending
                .take()
                // analyze:allow(no-panic-in-request-path): scheduler-thread invariant — a Queued run always carries its pending work (set at submit and at spool resume), and this loop is the only taker
                .unwrap_or_else(|| unreachable!("queued run without pending work"));
            admissions.push((j, k, pending));
            sh.last_tenant = Some(tenant);
        }
        admissions
    }

    /// Builds one admitted session (engine work, lock-free) and
    /// activates it, or records the failure. Construction runs inside
    /// `catch_unwind`, so a panicking solver build fails one run, not the
    /// scheduler thread.
    fn build(&mut self, job: usize, run: usize, pending: PendingRun) {
        let built = contained(|| match &pending {
            PendingRun::Fresh(spec) => {
                let backend = {
                    let sh = self.inner.shared.lock().unwrap();
                    sh.jobs[job].request.backend
                };
                self.engine.start(spec, backend)
            }
            PendingRun::Resume(ckpt) => self.engine.resume(ckpt),
        })
        .map_err(|panic| ServeError::Protocol(ProtoError::new("server-error", panic)))
        .and_then(|r| r.map_err(ServeError::from));
        match built {
            Ok(session) => {
                let stop = {
                    let sh = self.inner.shared.lock().unwrap();
                    sh.jobs[job].request.stop.as_ref().map(|p| p.evaluator())
                };
                // Rows restored from a checkpoint were already streamed
                // before the restart; only new rows go out.
                let emitted = session.history().len();
                self.active.push(ActiveRun {
                    job,
                    run,
                    session,
                    emitted,
                    stop,
                });
            }
            Err(e) => {
                let mut sh = self.inner.shared.lock().unwrap();
                let seq = sh.finish_counter;
                sh.finish_counter += 1;
                let entry = &mut sh.jobs[job].runs[run];
                entry.phase = Phase::Failed;
                entry.error = Some(e.to_string());
                entry.finish_seq = Some(seq);
                let fingerprint = entry.fingerprint.clone();
                sh.breakers.record_failure(&fingerprint, Instant::now());
                let line = run_failed_event(&sh.jobs[job].id, run, &sh.jobs[job].runs[run]);
                sh.jobs[job].publish_control(&line);
                finish_job_if_final(&mut sh.jobs[job]);
            }
        }
    }

    /// Drops sessions whose runs were cancelled by a handler.
    fn sweep_cancelled(&mut self, sh: &mut Shared) {
        self.active.retain(|a| {
            let phase = sh.jobs[a.job].runs[a.run].phase;
            if phase == Phase::Cancelled {
                if let Some(spool) = &self.inner.spool {
                    spool.remove_run(&sh.jobs[a.job].id, a.run);
                }
                let line = run_done_event(&sh.jobs[a.job].id, a.run, &sh.jobs[a.job].runs[a.run]);
                sh.jobs[a.job].publish_control(&line);
                finish_job_if_final(&mut sh.jobs[a.job]);
                return false;
            }
            true
        });
    }

    /// Post-wave control-plane update: progress counters, sample
    /// streaming, stop policies, fault quarantine, deadline enforcement,
    /// and finalization of finished runs.
    fn publish_wave(&mut self, sh: &mut Shared) {
        let mut finished: Vec<(usize, Phase, Option<String>)> = Vec::new();
        for (i, a) in self.active.iter_mut().enumerate() {
            let job = &mut sh.jobs[a.job];
            job.runs[a.run].steps_done = a.session.steps_done();
            if !job.subscribers.is_empty() {
                let history = a.session.history();
                while a.emitted < history.len() {
                    let line =
                        sample_event(&job.id, a.run, &job.runs[a.run].name, history, a.emitted);
                    job.publish_sample(&line, a.emitted);
                    a.emitted += 1;
                }
            } else {
                a.emitted = a.session.history().len();
            }
            let stopped = a
                .stop
                .as_mut()
                .is_some_and(|s| s.should_stop(a.session.history()));
            let deadline = {
                let req = &job.request;
                let over_steps = req
                    .deadline_steps
                    .is_some_and(|d| a.session.steps_done() >= d);
                let over_wall = req
                    .deadline_seconds
                    .is_some_and(|d| job.submitted.elapsed().as_secs_f64() > d);
                if over_steps {
                    Some(format!(
                        "deadline exceeded: {} steps without finishing",
                        a.session.steps_done()
                    ))
                } else if over_wall {
                    Some(format!(
                        "deadline exceeded: job ran past {} wall seconds",
                        req.deadline_seconds.unwrap_or(0.0)
                    ))
                } else {
                    None
                }
            };
            // Quarantine beats completion beats deadline beats stop: a
            // faulted run is failed even if its step counter looks done.
            if let Some(fault) = a.session.fault() {
                finished.push((i, Phase::Failed, Some(fault.to_string())));
            } else if a.session.is_complete() {
                finished.push((i, Phase::Done, None));
            } else if let Some(why) = deadline {
                finished.push((i, Phase::Failed, Some(why)));
            } else if stopped {
                finished.push((i, Phase::Stopped, None));
            }
        }
        // Finalize back-to-front so indices stay valid across removal.
        for (i, phase, error) in finished.iter().rev() {
            let a = self.active.remove(*i);
            let (job_idx, run_idx) = (a.job, a.run);
            // `finish` is fault-aware: a quarantined session's summary is
            // built from its recorded history only — the solver state is
            // never touched again.
            let summary = a.session.finish();
            let mut result = summary_to_json(&summary);
            if let (Phase::Failed, Json::Obj(fields)) = (*phase, &mut result) {
                fields.push(("error".into(), Json::Str(error.clone().unwrap_or_default())));
                fields.push(("partial".into(), Json::Bool(true)));
            }
            if let Some(spool) = &self.inner.spool {
                let _ = spool.write_result(&sh.jobs[job_idx].id, run_idx, &result);
            }
            let seq = sh.finish_counter;
            sh.finish_counter += 1;
            let entry = &mut sh.jobs[job_idx].runs[run_idx];
            entry.phase = *phase;
            entry.steps_done = summary.steps;
            entry.result = Some(result);
            entry.error = error.clone();
            entry.finish_seq = Some(seq);
            // Feed the breaker: consecutive failures of one spec
            // fingerprint open its circuit; any success closes it.
            let fingerprint = entry.fingerprint.clone();
            if *phase == Phase::Failed {
                sh.breakers.record_failure(&fingerprint, Instant::now());
            } else {
                sh.breakers.record_success(&fingerprint);
            }
            let line = if *phase == Phase::Failed {
                run_failed_event(
                    &sh.jobs[job_idx].id,
                    run_idx,
                    &sh.jobs[job_idx].runs[run_idx],
                )
            } else {
                run_done_event(
                    &sh.jobs[job_idx].id,
                    run_idx,
                    &sh.jobs[job_idx].runs[run_idx],
                )
            };
            sh.jobs[job_idx].publish_control(&line);
            finish_job_if_final(&mut sh.jobs[job_idx]);
        }
        if !finished.is_empty() {
            self.flush_spool(sh);
            self.waves_since_flush = 0;
        }
    }

    /// Writes every active checkpoint and the manifest — the durable
    /// snapshot `--resume` restarts from.
    fn flush_spool(&self, sh: &Shared) {
        let Some(spool) = &self.inner.spool else {
            return;
        };
        for a in &self.active {
            let _ = spool.write_checkpoint(&sh.jobs[a.job].id, a.run, &a.session.checkpoint());
        }
        let jobs: Vec<SpoolJob> = sh
            .jobs
            .iter()
            .enumerate()
            .map(|(j, job)| SpoolJob {
                id: job.id.clone(),
                tenant: job.tenant.clone(),
                request: job.request.clone(),
                job_key: job.job_key.clone(),
                runs: job
                    .runs
                    .iter()
                    .enumerate()
                    .map(|(k, run)| SpoolRun {
                        name: run.name.clone(),
                        state: run.phase.name().into(),
                        // Queued runs resume from this spec; active runs
                        // keep it as the no-checkpoint-yet fallback.
                        spec: match &run.pending {
                            Some(PendingRun::Fresh(spec)) => Some(spec.clone()),
                            Some(PendingRun::Resume(ckpt)) => Some(ckpt.spec.clone()),
                            None => self
                                .active
                                .iter()
                                .find(|a| (a.job, a.run) == (j, k))
                                .map(|a| a.session.spec().clone()),
                        },
                        error: run.error.clone(),
                    })
                    .collect(),
            })
            .collect();
        let _ = spool.save_manifest(sh.next_job, &jobs);
        spool.gc(&jobs);
    }
}

/// The panic payload as text, for fault records.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// Runs `f` with panics contained to an `Err(message)`.
fn contained<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).map_err(panic_message)
}

/// Sends `job_done` once every run of the job is final, and releases the
/// watchers (their queues drain, then their handlers exit).
fn finish_job_if_final(job: &mut JobEntry) {
    if job.is_final() {
        let line = protocol::event("job_done", vec![("job", Json::Str(job.id.clone()))]);
        job.publish_control(&line);
        for q in &job.subscribers {
            q.close();
        }
        job.subscribers.clear();
    }
}

fn sample_event(
    job: &str,
    run: usize,
    name: &str,
    history: &dlpic_repro::engine::EnergyHistory,
    row: usize,
) -> String {
    let amps: Vec<f64> = history.mode_amps.iter().map(|m| m[row]).collect();
    protocol::event(
        "sample",
        vec![
            ("job", Json::Str(job.into())),
            ("run", Json::Num(run as f64)),
            ("name", Json::Str(name.into())),
            ("step", Json::Num(row as f64)),
            ("time", Json::Num(history.times[row])),
            ("kinetic", Json::Num(history.kinetic[row])),
            ("field", Json::Num(history.field[row])),
            ("momentum", Json::Num(history.momentum[row])),
            ("mode_amps", Json::num_arr(&amps)),
        ],
    )
}

fn run_done_event(job: &str, run: usize, entry: &RunEntry) -> String {
    protocol::event(
        "run_done",
        vec![
            ("job", Json::Str(job.into())),
            ("run", Json::Num(run as f64)),
            ("name", Json::Str(entry.name.clone())),
            ("state", Json::Str(entry.phase.name().into())),
            ("steps", Json::Num(entry.steps_done as f64)),
        ],
    )
}

/// The structured failure event: like `run_done`, plus the stored error.
/// A distinct event kind so dashboards and retry logic can react without
/// string-matching states.
fn run_failed_event(job: &str, run: usize, entry: &RunEntry) -> String {
    protocol::event(
        "run_failed",
        vec![
            ("job", Json::Str(job.into())),
            ("run", Json::Num(run as f64)),
            ("name", Json::Str(entry.name.clone())),
            ("state", Json::Str(entry.phase.name().into())),
            ("steps", Json::Num(entry.steps_done as f64)),
            ("error", Json::Str(entry.error.clone().unwrap_or_default())),
        ],
    )
}

/// The stored form of a finished run: identity, scalars, and the full
/// history (bit-exact through JSON — the restart tests diff this against
/// solo runs).
fn summary_to_json(summary: &RunSummary) -> Json {
    obj(vec![
        ("scenario", Json::Str(summary.scenario.clone())),
        ("backend", Json::Str(summary.backend.clone())),
        ("steps", Json::Num(summary.steps as f64)),
        ("t_end", Json::Num(summary.t_end)),
        ("wall_seconds", Json::Num(summary.wall_seconds)),
        ("history", summary.history.to_json_value()),
        (
            "extras",
            obj(summary
                .extras
                .iter()
                .map(|(k, v)| (k.as_str(), Json::Num(*v)))
                .collect()),
        ),
    ])
}

// ---------------------------------------------------------------------
// The data plane: acceptor + per-connection handlers.
// ---------------------------------------------------------------------

fn accept_loop(listener: Listener, inner: Arc<Inner>) {
    let set_nonblocking = |l: &Listener| match l {
        Listener::Tcp(l) => l.set_nonblocking(true),
        Listener::Unix(l) => l.set_nonblocking(true),
    };
    if set_nonblocking(&listener).is_err() {
        return;
    }
    loop {
        if inner.shared.lock().unwrap().stopped {
            return;
        }
        let accepted = match &listener {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
        };
        match accepted {
            Ok(conn) => {
                let inner = Arc::clone(&inner);
                // Handlers are detached: they die with the process, and
                // a drained in-process server only joins scheduler +
                // acceptor.
                let _ = std::thread::Builder::new()
                    .name("dlpic-serve-conn".into())
                    .spawn(move || {
                        let _ = handle_connection(conn, inner);
                    });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => return,
        }
    }
}

fn handle_connection(conn: Conn, inner: Arc<Inner>) -> std::io::Result<()> {
    let mut reader = BufReader::new(conn.try_clone()?);
    let mut writer = conn;
    while let Some(line) = protocol::read_line(&mut reader)? {
        let request = line.and_then(|text| protocol::parse_request(&text));
        match request {
            Err(e) => send_line(&mut writer, &protocol::error_response(&e))?,
            Ok(request) => handle_request(request, &inner, &mut writer)?,
        }
    }
    Ok(())
}

fn send_line(writer: &mut Conn, line: &str) -> std::io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

fn handle_request(request: Request, inner: &Arc<Inner>, writer: &mut Conn) -> std::io::Result<()> {
    match request {
        Request::Submit {
            tenant,
            job,
            job_key,
        } => {
            let response = submit(inner, tenant, *job, job_key);
            send_line(writer, &respond(response))
        }
        Request::Status { job } => {
            let response = status(inner, job.as_deref());
            send_line(writer, &respond(response))
        }
        Request::Cancel { job } => {
            let response = cancel(inner, &job);
            send_line(writer, &respond(response))
        }
        Request::Drain => {
            let mut sh = inner.shared.lock().unwrap();
            sh.draining = true;
            inner.wake.notify_all();
            drop(sh);
            send_line(
                writer,
                &protocol::ok_response(vec![("draining", Json::Bool(true))]),
            )
        }
        Request::Result { job, run } => {
            let response = results(inner, &job, run);
            send_line(writer, &respond(response))
        }
        Request::Health => send_line(writer, &respond(health(inner))),
        Request::Prune { keep } => send_line(writer, &respond(prune(inner, keep))),
        Request::Watch { job, policy, queue } => watch(inner, &job, policy, queue, writer),
    }
}

fn respond(result: Result<Vec<(&str, Json)>, ProtoError>) -> String {
    match result {
        Ok(fields) => protocol::ok_response(fields),
        Err(e) => protocol::error_response(&e),
    }
}

fn submit(
    inner: &Arc<Inner>,
    tenant: String,
    job: JobRequest,
    job_key: Option<String>,
) -> Result<Vec<(&'static str, Json)>, ProtoError> {
    let specs = job.expand()?;
    let mut sh = inner.shared.lock().unwrap();
    // Idempotent submit: the same (tenant, job_key) maps to the already
    // accepted job, so a client retrying a submit whose response was lost
    // cannot double-schedule. Checked before the drain gate — the job the
    // key names was accepted, and pointing at it is always safe.
    if let Some(key) = &job_key {
        if let Some(existing) = sh
            .jobs
            .iter()
            .find(|j| j.tenant == tenant && j.job_key.as_deref() == Some(key.as_str()))
        {
            return Ok(vec![
                ("job", Json::Str(existing.id.clone())),
                ("runs", Json::Num(existing.runs.len() as f64)),
                ("deduped", Json::Bool(true)),
            ]);
        }
    }
    if sh.draining || sh.stopped {
        return Err(ProtoError::new("draining", "server is draining"));
    }
    // Overload governance, cheapest check first. Every rejection is
    // structured; the retryable ones carry `retry_after_ms`.
    let backend = job.backend;
    let estimates: Vec<RunAccounting> = specs
        .iter()
        .map(|spec| run_accounting(&inner.profiler, backend, spec))
        .collect();
    // 1. Circuit breaker: a quarantined spec is rejected up front so the
    //    client backs off instead of queueing work the scheduler would
    //    shed at admission anyway.
    let now = Instant::now();
    let open = estimates
        .iter()
        .filter_map(|a| sh.breakers.open_remaining(&a.fingerprint, now))
        .max();
    if let Some(remaining) = open {
        return Err(ProtoError::new(
            "circuit-open",
            format!(
                "spec quarantined after {} consecutive failures; retry after cooldown",
                sh.breakers.threshold()
            ),
        )
        .with_retry_after(remaining.as_millis() as u64));
    }
    // 2. A single run that cannot fit the whole budget can never be
    //    admitted — permanent rejection, no retry advice. The check uses
    //    the solo cost (private estimate plus its own weight copy): a
    //    run is only cheaper when its weights are already resident, which
    //    cannot be relied on at submit time.
    if let Some(budget) = inner.memory_budget {
        if let Some(a) = estimates
            .iter()
            .find(|a| a.est_bytes + a.weight_bytes > budget)
        {
            let est = a.est_bytes + a.weight_bytes;
            return Err(ProtoError::new(
                "quota-exceeded",
                format!("run needs ~{est} bytes but the memory budget is {budget} bytes"),
            ));
        }
    }
    // 3. Bounded backlog, global then per-tenant.
    let queued = sh.queued_runs();
    if queued + specs.len() > inner.max_queued {
        let retry = sh.retry_after_ms();
        return Err(ProtoError::new(
            "overloaded",
            format!(
                "backlog full: {queued} queued + {} new > {} cap",
                specs.len(),
                inner.max_queued
            ),
        )
        .with_retry_after(retry));
    }
    let tenant_queued = sh.tenant_queued(&tenant);
    if tenant_queued + specs.len() > inner.tenant_max_queued {
        let retry = sh.retry_after_ms();
        return Err(ProtoError::new(
            "quota-exceeded",
            format!(
                "tenant backlog full: {tenant_queued} queued + {} new > {} cap",
                specs.len(),
                inner.tenant_max_queued
            ),
        )
        .with_retry_after(retry));
    }
    let id = format!("job-{:04}", sh.next_job);
    sh.next_job += 1;
    let runs = specs
        .into_iter()
        .zip(estimates)
        .map(|(spec, acct)| RunEntry {
            name: spec.name.clone(),
            phase: Phase::Queued,
            steps_done: 0,
            steps_total: spec.n_steps,
            pending: Some(PendingRun::Fresh(spec)),
            result: None,
            error: None,
            finish_seq: None,
            est_bytes: acct.est_bytes,
            weight_bytes: acct.weight_bytes,
            weight_key: acct.weight_key,
            fingerprint: acct.fingerprint,
        })
        .collect::<Vec<_>>();
    let n_runs = runs.len();
    sh.jobs.push(JobEntry {
        id: id.clone(),
        tenant,
        request: job,
        job_key,
        submitted: Instant::now(),
        runs,
        subscribers: Vec::new(),
    });
    inner.wake.notify_all();
    Ok(vec![
        ("job", Json::Str(id)),
        ("runs", Json::Num(n_runs as f64)),
    ])
}

fn status(inner: &Arc<Inner>, job: Option<&str>) -> Result<Vec<(&'static str, Json)>, ProtoError> {
    let sh = inner.shared.lock().unwrap();
    let jobs: Vec<&JobEntry> = match job {
        Some(id) => vec![find_job(&sh, id)?],
        None => sh.jobs.iter().collect(),
    };
    let jobs_json = jobs
        .into_iter()
        .map(|job| {
            obj(vec![
                ("job", Json::Str(job.id.clone())),
                ("tenant", Json::Str(job.tenant.clone())),
                // Registered watch subscriptions. Lets a client confirm a
                // subscription landed before acting on it (tests rely on
                // this to sequence watch-then-release deterministically).
                ("watchers", Json::Num(job.subscribers.len() as f64)),
                // Per-subscriber queue accounting: shed samples are
                // observable, not silent.
                (
                    "watch_stats",
                    Json::Arr(
                        job.subscribers
                            .iter()
                            .map(|q| {
                                let (depth, queued_total, dropped, decimated) = q.stats();
                                obj(vec![
                                    ("policy", Json::Str(q.policy.wire())),
                                    ("capacity", Json::Num(q.capacity as f64)),
                                    ("depth", Json::Num(depth as f64)),
                                    ("queued_total", Json::Num(queued_total as f64)),
                                    ("dropped", Json::Num(dropped as f64)),
                                    ("decimated", Json::Num(decimated as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "runs",
                    Json::Arr(
                        job.runs
                            .iter()
                            .enumerate()
                            .map(|(k, run)| {
                                let mut fields = vec![
                                    ("run", Json::Num(k as f64)),
                                    ("name", Json::Str(run.name.clone())),
                                    ("state", Json::Str(run.phase.name().into())),
                                    ("steps_done", Json::Num(run.steps_done as f64)),
                                    ("steps_total", Json::Num(run.steps_total as f64)),
                                ];
                                if let Some(seq) = run.finish_seq {
                                    fields.push(("finish_seq", Json::Num(seq as f64)));
                                }
                                if let Some(error) = &run.error {
                                    fields.push(("error", Json::Str(error.clone())));
                                }
                                obj(fields)
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    Ok(vec![
        ("draining", Json::Bool(sh.draining)),
        ("stepping_seconds", Json::Num(sh.stepping_seconds)),
        ("queued_runs", Json::Num(sh.queued_runs() as f64)),
        ("active_runs", Json::Num(sh.active_runs() as f64)),
        ("backlog", backlog_json(&sh)),
        ("budget", budget_json(inner, &sh)),
        ("wave_latency", sh.wave_latency.to_json()),
        ("jobs", Json::Arr(jobs_json)),
    ])
}

/// Per-tenant backlog depth: every tenant in the table, with its queued
/// and active run counts — an operator reads which tenant the pressure
/// comes from straight off `status`.
fn backlog_json(sh: &Shared) -> Json {
    let mut tenants: Vec<&str> = Vec::new();
    for job in &sh.jobs {
        if !tenants.contains(&job.tenant.as_str()) {
            tenants.push(&job.tenant);
        }
    }
    Json::Arr(
        tenants
            .into_iter()
            .map(|tenant| {
                let (mut queued, mut active) = (0usize, 0usize);
                for run in sh
                    .jobs
                    .iter()
                    .filter(|j| j.tenant == tenant)
                    .flat_map(|j| &j.runs)
                {
                    match run.phase {
                        Phase::Queued => queued += 1,
                        Phase::Active => active += 1,
                        _ => {}
                    }
                }
                obj(vec![
                    ("tenant", Json::Str(tenant.into())),
                    ("queued", Json::Num(queued as f64)),
                    ("active", Json::Num(active as f64)),
                ])
            })
            .collect(),
    )
}

/// Budget occupancy: the configured limit (null when unbudgeted), the
/// bytes currently charged by stepping runs (cohort-aware — each shared
/// weight allocation counted once) and waiting in queue, plus the
/// shared-weight breakdown: how many distinct model allocations are
/// resident, their total bytes, and how many bytes weight sharing is
/// saving versus per-run copies.
fn budget_json(inner: &Inner, sh: &Shared) -> Json {
    let (distinct_models, weight_bytes) = sh.active_weight_stats();
    let per_copy: usize = sh
        .jobs
        .iter()
        .flat_map(|j| &j.runs)
        .filter(|r| r.phase == Phase::Active)
        .map(|r| r.weight_bytes)
        .sum();
    obj(vec![
        (
            "limit_bytes",
            inner
                .memory_budget
                .map_or(Json::Null, |b| Json::Num(b as f64)),
        ),
        ("active_bytes", Json::Num(sh.active_bytes() as f64)),
        ("queued_bytes", Json::Num(sh.queued_bytes() as f64)),
        ("distinct_models", Json::Num(distinct_models as f64)),
        ("active_weight_bytes", Json::Num(weight_bytes as f64)),
        (
            "weight_sharing_saved_bytes",
            Json::Num(per_copy.saturating_sub(weight_bytes) as f64),
        ),
    ])
}

/// The `health` op: liveness/readiness plus the load signals a client or
/// balancer needs to decide whether to send work here — session and
/// backlog occupancy, budget occupancy, breaker state, and the wave
/// latency distribution.
fn health(inner: &Arc<Inner>) -> Result<Vec<(&'static str, Json)>, ProtoError> {
    let sh = inner.shared.lock().unwrap();
    let active = sh.active_runs();
    let queued = sh.queued_runs();
    Ok(vec![
        ("live", Json::Bool(true)),
        ("ready", Json::Bool(!sh.draining && !sh.stopped)),
        ("draining", Json::Bool(sh.draining)),
        ("active_runs", Json::Num(active as f64)),
        ("max_sessions", Json::Num(inner.max_sessions as f64)),
        ("load", Json::Num(active as f64 / inner.max_sessions as f64)),
        ("queued_runs", Json::Num(queued as f64)),
        ("max_queued", Json::Num(inner.max_queued as f64)),
        ("budget", budget_json(inner, &sh)),
        (
            "circuits_open",
            Json::Num(sh.breakers.open_count(Instant::now()) as f64),
        ),
        ("breaker_trips", Json::Num(sh.breakers.total_trips() as f64)),
        ("wave_latency", sh.wave_latency.to_json()),
    ])
}

/// The `prune` op: ask the scheduler for a retention pass keeping the
/// newest `keep` finished jobs per tenant (falling back to the server's
/// `--spool-retain`). Blocks until the pass ran so the reported count is
/// exact.
fn prune(inner: &Arc<Inner>, keep: Option<usize>) -> Result<Vec<(&'static str, Json)>, ProtoError> {
    let Some(keep) = keep.or(inner.spool_retain) else {
        return Err(ProtoError::new(
            "bad-request",
            "no retention configured: pass `keep` or start the server with --spool-retain",
        ));
    };
    let mut sh = inner.shared.lock().unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    // Serialize concurrent prunes: wait until any in-flight request was
    // consumed and its result claimed before posting ours.
    while sh.prune_request.is_some() || sh.prune_result.is_some() {
        if sh.draining || sh.stopped {
            return Err(ProtoError::new("draining", "server is draining"));
        }
        if Instant::now() >= deadline {
            return Err(ProtoError::new("server-error", "prune timed out"));
        }
        let (guard, _) = inner
            .wake
            .wait_timeout(sh, Duration::from_millis(100))
            .unwrap();
        sh = guard;
    }
    if sh.draining || sh.stopped {
        return Err(ProtoError::new("draining", "server is draining"));
    }
    sh.prune_request = Some(keep);
    inner.wake.notify_all();
    loop {
        if let Some(pruned) = sh.prune_result.take() {
            inner.wake.notify_all();
            return Ok(vec![
                ("pruned", Json::Num(pruned as f64)),
                ("keep", Json::Num(keep as f64)),
            ]);
        }
        if sh.stopped || (sh.draining && sh.prune_request.is_some()) {
            // The scheduler exited (or will exit) without serving us.
            sh.prune_request = None;
            return Err(ProtoError::new("draining", "server is draining"));
        }
        if Instant::now() >= deadline {
            sh.prune_request = None;
            return Err(ProtoError::new("server-error", "prune timed out"));
        }
        let (guard, _) = inner
            .wake
            .wait_timeout(sh, Duration::from_millis(100))
            .unwrap();
        sh = guard;
    }
}

fn cancel(inner: &Arc<Inner>, id: &str) -> Result<Vec<(&'static str, Json)>, ProtoError> {
    let mut sh = inner.shared.lock().unwrap();
    let idx = sh
        .jobs
        .iter()
        .position(|j| j.id == id)
        .ok_or_else(|| unknown_job(id))?;
    let mut cancelled = 0usize;
    let mut was_queued = Vec::new();
    let mut seq = sh.finish_counter;
    let job = &mut sh.jobs[idx];
    for (k, run) in job.runs.iter_mut().enumerate() {
        if !run.phase.is_final() {
            // Queued runs finalize here; active ones when the scheduler
            // notices and drops their session.
            if run.phase == Phase::Queued {
                was_queued.push(k);
            }
            run.phase = Phase::Cancelled;
            run.pending = None;
            run.finish_seq = Some(seq);
            seq += 1;
            cancelled += 1;
        }
    }
    for k in was_queued {
        let line = run_done_event(&job.id, k, &job.runs[k]);
        job.publish_control(&line);
    }
    finish_job_if_final(job);
    sh.finish_counter = seq;
    inner.wake.notify_all();
    Ok(vec![
        ("job", Json::Str(id.into())),
        ("cancelled", Json::Num(cancelled as f64)),
    ])
}

fn results(
    inner: &Arc<Inner>,
    id: &str,
    run: Option<usize>,
) -> Result<Vec<(&'static str, Json)>, ProtoError> {
    let sh = inner.shared.lock().unwrap();
    let job = find_job(&sh, id)?;
    let indices: Vec<usize> = match run {
        Some(k) => {
            if k >= job.runs.len() {
                return Err(ProtoError::new(
                    "unknown-run",
                    format!("{id} has {} runs", job.runs.len()),
                ));
            }
            vec![k]
        }
        None => (0..job.runs.len()).collect(),
    };
    let mut results = Vec::new();
    for k in indices {
        let entry = &job.runs[k];
        let Some(result) = &entry.result else {
            if run.is_some() {
                return Err(ProtoError::new(
                    "not-finished",
                    format!("{id} run {k} is {}", entry.phase.name()),
                ));
            }
            continue;
        };
        results.push(obj(vec![
            ("run", Json::Num(k as f64)),
            ("name", Json::Str(entry.name.clone())),
            ("state", Json::Str(entry.phase.name().into())),
            ("summary", result.clone()),
        ]));
    }
    Ok(vec![
        ("job", Json::Str(id.into())),
        ("results", Json::Arr(results)),
    ])
}

fn watch(
    inner: &Arc<Inner>,
    id: &str,
    policy: WatchPolicy,
    queue: usize,
    writer: &mut Conn,
) -> std::io::Result<()> {
    let subscription = {
        let mut sh = inner.shared.lock().unwrap();
        let Some(job) = sh.jobs.iter_mut().find(|j| j.id == id) else {
            drop(sh);
            return send_line(writer, &protocol::error_response(&unknown_job(id)));
        };
        if job.is_final() {
            let id = job.id.clone();
            drop(sh);
            send_line(
                writer,
                &protocol::ok_response(vec![("watching", Json::Str(id.clone()))]),
            )?;
            return send_line(
                writer,
                &protocol::event("job_done", vec![("job", Json::Str(id))]),
            );
        }
        let q = Arc::new(SubQueue::new(policy, queue));
        job.subscribers.push(Arc::clone(&q));
        q
    };
    send_line(
        writer,
        &protocol::ok_response(vec![
            ("watching", Json::Str(id.into())),
            ("policy", Json::Str(policy.wire())),
        ]),
    )?;
    // Forward events at the client's pace until the scheduler closes the
    // queue (job done or server drained) or the client goes away. A dead
    // client closes its own queue so the scheduler stops feeding it.
    while let Some(line) = subscription.pop() {
        if send_line(writer, &line).is_err() {
            subscription.close();
            break;
        }
    }
    Ok(())
}

fn find_job<'a>(sh: &'a Shared, id: &str) -> Result<&'a JobEntry, ProtoError> {
    sh.jobs
        .iter()
        .find(|j| j.id == id)
        .ok_or_else(|| unknown_job(id))
}

fn unknown_job(id: &str) -> ProtoError {
    ProtoError::new("unknown-job", format!("no job `{id}`"))
}

//! Domain-decomposed PIC: the paper §VII's distributed-memory claim, live.
//!
//! The registry's `two_stream` scenario runs on `Backend::Ddecomp` — same
//! spec as every other backend, with communication volume and migration
//! counts reported as summary extras. A second section compares the
//! traditional gather/scatter field solve against the replicated-DL
//! strategy on the lower-level `ddecomp` API (the strategy comparison is
//! that crate's specialty).
//!
//! ```sh
//! cargo run --release --example distributed_pic
//! ```

use dlpic_repro::analytics::dispersion::TwoStreamDispersion;
use dlpic_repro::core::Scale;
use dlpic_repro::ddecomp::sim::{DistConfig, DistSimulation};
use dlpic_repro::ddecomp::strategy::{GatherScatter, ReplicatedDl};
use dlpic_repro::engine::{self, Backend, EngineError, LoadingSpec};
use dlpic_repro::pic::grid::Grid1D;
use dlpic_repro::pic::init::TwoStreamInit;
use dlpic_repro::pic::shape::Shape;

fn main() -> Result<(), EngineError> {
    println!("== Distributed PIC: 64k particles over 4 ranks, 200 steps ==\n");

    // 1. Through the facade: one more backend for the same scenario.
    let mut spec = engine::scenario("two_stream", Scale::Scaled)?;
    spec.loading = LoadingSpec::Quiet {
        mode: 1,
        amplitude: 1e-3,
    };
    spec.seed = 42;
    let summary = engine::run(&spec, Backend::Ddecomp { n_ranks: 4 })?;

    let theory = TwoStreamDispersion::new(0.2).growth_rate(dlpic_repro::pic::constants::PAPER_K1);
    println!("physics across 4 ranks (gather/scatter), via the engine:");
    match summary.growth_rate(1) {
        Ok(fit) => println!(
            "  growth rate γ = {:.4} vs theory {:.4} ({:+.1}%)",
            fit.gamma,
            theory,
            100.0 * (fit.gamma - theory) / theory
        ),
        Err(e) => println!("  growth fit: {e}"),
    }
    println!(
        "  momentum drift = {:.2e} (conserved across rank boundaries)",
        summary.momentum_drift()
    );
    println!(
        "  particles migrated: {} over the run",
        summary.extra("migrated_particles").unwrap_or(0.0) as u64
    );
    println!(
        "  fabric traffic    : {} messages, {} bytes\n",
        summary.extra("comm_messages").unwrap_or(0.0) as u64,
        summary.extra("comm_bytes").unwrap_or(0.0) as u64
    );

    // 2. Strategy comparison on the ddecomp crate directly: the engine's
    //    Ddecomp backend is the traditional gather/scatter; the
    //    replicated-DL strategy exists to show the paper's communication
    //    argument, so measure both side by side.
    let config = || DistConfig {
        grid: Grid1D::paper(),
        init: TwoStreamInit::quiet(0.2, 0.0, 64_000, 1e-3, 42),
        dt: 0.2,
        n_steps: 200,
        gather_shape: Shape::Cic,
        n_ranks: 4,
        tracked_modes: vec![1],
    };
    let start = std::time::Instant::now();
    let mut gs = DistSimulation::new(config(), Box::new(GatherScatter::new(Shape::Cic, 1.0)));
    gs.run();
    let gs_time = start.elapsed();

    println!("training a quick DL field solver for the replicated strategy...");
    let bundle = engine::dl::quick_train_1d(Scale::Smoke, 7);
    let dl_solver = bundle.into_solver()?;
    let start = std::time::Instant::now();
    let mut dl = DistSimulation::new(config(), Box::new(ReplicatedDl::new(dl_solver)));
    dl.run();
    let dl_time = start.elapsed();

    for (name, sim, time) in [
        ("gather-scatter", &gs, gs_time),
        ("replicated-dl", &dl, dl_time),
    ] {
        println!("\n{name} ({time:.2?} wall, all ranks serial):");
        for (phase, stats) in sim.comm_phases() {
            println!(
                "  {phase:<14} {:>10} msgs  {:>12} bytes",
                stats.messages, stats.bytes
            );
        }
        let total = sim.comm_stats();
        println!(
            "  {:<14} {:>10} msgs  {:>12} bytes",
            "TOTAL", total.messages, total.bytes
        );
    }

    println!(
        "\nthe DL strategy's only field-solve traffic is the fixed-size histogram\n\
         all-reduce — no charge gather, no field scatter, no deposition halos —\n\
         independent of particle count and grid size (paper §VII)."
    );
    Ok(())
}

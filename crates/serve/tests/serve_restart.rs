//! The durability contract across every backend family: a fleet covering
//! all six families is spooled mid-run, the server is dropped, a fresh
//! server resumes from the spool, and every final history is
//! bit-identical to an uninterrupted solo `Engine::run` — the restart is
//! arithmetically invisible.

use std::time::Duration;

use dlpic_repro::core::Scale;
use dlpic_repro::engine::json::Json;
use dlpic_repro::engine::{self, Backend, EnergyHistory, Engine};
use dlpic_serve::client::Client;
use dlpic_serve::job::JobRequest;
use dlpic_serve::server::{ServeConfig, Server};

/// One (scenario, backend, budget) per backend family. The whole fleet
/// is admitted in one scheduler pass (see the blocker below) and then
/// steps in lockstep, so budgets only need to outlast the status poll
/// that triggers the drain.
fn fleet() -> Vec<(&'static str, Backend, usize)> {
    vec![
        ("two_stream", Backend::Traditional1D, 40),
        ("two_stream", Backend::Dl1D, 36),
        ("two_stream_2d", Backend::Traditional2D, 24),
        ("two_stream_2d", Backend::Dl2D, 24),
        ("warm_two_stream", Backend::Vlasov, 24),
        ("two_stream", Backend::Ddecomp { n_ranks: 4 }, 40),
    ]
}

fn spec_for(scenario: &str, n_steps: usize, seed: u64) -> engine::ScenarioSpec {
    let mut spec = engine::scenario(scenario, Scale::Smoke).expect("registry");
    spec.n_steps = n_steps;
    spec.seed = seed;
    spec.name = format!("{scenario}[seed={seed}]");
    spec
}

fn temp_spool(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dlpic-spool-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn mixed_backend_fleet_survives_a_restart_bit_identically() {
    let spool = temp_spool("mixed");
    // spool_interval=1: a checkpoint lands after every wave, so the
    // drain is guaranteed to catch live in-flight state.
    let server = Server::start(
        ServeConfig::default()
            .spool(&spool)
            .spool_interval(1)
            .max_sessions(6),
    )
    .expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");

    // A six-run blocker sweep holds every slot while the fleet is
    // submitted, so the whole fleet is admitted in ONE scheduler pass
    // once the blocker is cancelled and then advances in lockstep.
    // Without the barrier, fast backends finish their small budgets
    // while Vlasov/ddecomp sessions are still being built.
    let blocker = JobRequest::sweep(
        engine::SweepSpec::grid("two_stream", Scale::Smoke).seeds([90, 91, 92, 93, 94, 95]),
        Backend::Traditional1D,
    )
    .with_steps(200_000);
    let (blocker_id, n) = client.submit(&blocker, "blocker").expect("submit blocker");
    assert_eq!(n, 6);
    loop {
        let doc = client.status(Some(&blocker_id)).expect("status");
        let all_active = doc.field("jobs").and_then(Json::as_arr).expect("jobs")[0]
            .field("runs")
            .and_then(Json::as_arr)
            .expect("runs")
            .iter()
            .all(|r| r.field("state").and_then(Json::as_str).unwrap() == "active");
        if all_active {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }

    let mut jobs = Vec::new();
    for (i, (scenario, backend, steps)) in fleet().into_iter().enumerate() {
        let spec = spec_for(scenario, steps, 10 + i as u64);
        let (id, _) = client
            .submit(&JobRequest::scenario(spec, backend), "fleet")
            .expect("submit");
        jobs.push((id, scenario, backend, steps, 10 + i as u64));
    }
    assert_eq!(client.cancel(&blocker_id).expect("cancel blocker"), 6);

    // Wait until every run has stepped at least once but none is done,
    // so the drain interrupts all six families mid-flight.
    loop {
        let doc = client.status(None).expect("status");
        let runs: Vec<(usize, usize, String)> = doc
            .field("jobs")
            .and_then(Json::as_arr)
            .expect("jobs")
            .iter()
            .filter(|job| job.field("job").and_then(Json::as_str).unwrap() != blocker_id)
            .map(|job| {
                let run = &job.field("runs").and_then(Json::as_arr).expect("runs")[0];
                (
                    run.field("steps_done").and_then(Json::as_usize).unwrap(),
                    run.field("steps_total").and_then(Json::as_usize).unwrap(),
                    run.field("state").and_then(Json::as_str).unwrap().into(),
                )
            })
            .collect();
        assert!(
            runs.iter().all(|(_, _, state)| state != "done"),
            "a run completed before the drain; raise its budget ({runs:?})"
        );
        if runs.iter().all(|(done, _, _)| *done >= 1) {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    client.drain().expect("drain");
    server.wait(); // the old server is gone; only the spool remains

    // Every job must be mid-flight in the manifest (none final).
    let manifest = std::fs::read_to_string(spool.join("meta.json")).expect("manifest");
    assert!(manifest.contains("active") || manifest.contains("queued"));

    // Resurrect from the spool alone and let the fleet run out.
    let server = Server::start(ServeConfig::default().resume(&spool)).expect("resume");
    let mut client = Client::connect(server.addr()).expect("connect");
    for (id, scenario, backend, steps, seed) in &jobs {
        let results = client
            .wait_for(id, Duration::from_millis(5))
            .expect("wait after resume");
        assert_eq!(results.len(), 1, "{id}");
        assert_eq!(results[0].state, "done", "{id}");
        let served =
            EnergyHistory::from_json_value(results[0].summary.field("history").expect("history"))
                .expect("history parses");
        let solo = Engine::new()
            .run(&spec_for(scenario, *steps, *seed), *backend)
            .expect("solo");
        assert_eq!(
            served, solo.history,
            "{scenario}/{backend}: resumed history differs from the uninterrupted run"
        );
    }

    client.drain().expect("drain");
    server.wait();

    // Atomic writes leave no temp droppings behind.
    for entry in walk(&spool) {
        assert!(
            !entry.to_string_lossy().ends_with(".tmp"),
            "stray temp file {entry:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&spool);
}

fn walk(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            out.extend(walk(&path));
        } else {
            out.push(path);
        }
    }
    out
}

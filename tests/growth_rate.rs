//! Integration test: the traditional PIC reproduces two-stream linear
//! theory at full paper scale (the physics backbone of the paper's Fig. 4)
//! and stays quiescent where theory says stable (the premise of Fig. 6).

use dlpic_repro::analytics::dispersion::TwoStreamDispersion;
use dlpic_repro::analytics::fit::{fit_growth_rate, GrowthFitOptions};
use dlpic_repro::pic::presets::paper_config;
use dlpic_repro::pic::simulation::Simulation;
use dlpic_repro::pic::solver::TraditionalSolver;

#[test]
fn two_stream_growth_rate_matches_linear_theory() {
    // Full paper scale: 64 cells, 64 000 particles, Δt = 0.2, t ≤ 40.
    let mut sim = Simulation::new(
        paper_config(0.2, 0.025, 123),
        Box::new(TraditionalSolver::paper_default()),
    );
    sim.run();

    let theory = TwoStreamDispersion::new(0.2).mode_growth_rate(1, sim.grid().length());
    assert!((theory - 0.3536).abs() < 1e-3, "theory value sanity");

    let e1 = sim.history().mode_series(1).expect("mode 1 tracked");
    let fit = fit_growth_rate(&e1.times, &e1.values, GrowthFitOptions::default())
        .expect("growth phase detected");
    let rel_err = (fit.gamma - theory).abs() / theory;
    assert!(
        rel_err < 0.2,
        "measured γ = {} vs theory {theory} ({:.1}% off)",
        fit.gamma,
        rel_err * 100.0
    );
    assert!(fit.r2 > 0.9, "poor exponential fit: r² = {}", fit.r2);
}

#[test]
fn growth_rate_scales_with_wavenumber_prediction() {
    // At v0 = 0.15, mode 1 has k·v0 = 0.459 — off the optimum, slower
    // growth than the v0 = 0.2 case. The measured ordering must match.
    // Quiet start: a deterministic mode-1 displacement excites exactly the
    // mode being fitted, so the measured slope is the linear rate rather
    // than whatever transient a particular shot-noise realization seeds.
    let run = |v0: f64| -> f64 {
        use dlpic_repro::pic::init::TwoStreamInit;
        use dlpic_repro::pic::simulation::two_stream_config;
        let init = TwoStreamInit::quiet(v0, 0.0, 25_600, 1e-4, 7);
        let mut sim = Simulation::new(
            two_stream_config(init, 200),
            Box::new(TraditionalSolver::paper_default()),
        );
        sim.run();
        let e1 = sim.history().mode_series(1).unwrap();
        fit_growth_rate(&e1.times, &e1.values, GrowthFitOptions::default())
            .map(|f| f.gamma)
            .unwrap_or(0.0)
    };
    let gamma_020 = run(0.2);
    let gamma_015 = run(0.15);
    let th_020 = TwoStreamDispersion::new(0.2).growth_rate(3.06);
    let th_015 = TwoStreamDispersion::new(0.15).growth_rate(3.06);
    assert!(th_015 < th_020, "theory ordering sanity");
    assert!(
        gamma_015 < gamma_020,
        "measured ordering: γ(0.15) = {gamma_015} should be < γ(0.2) = {gamma_020}"
    );
}

#[test]
fn cold_beam_configuration_shows_no_physical_growth() {
    // v0 = 0.4: k1·v0 = 1.224 > 1, linearly stable. E1 must stay at the
    // noise floor (no exponential growth to saturation).
    let mut sim = Simulation::new(
        paper_config(0.4, 0.0, 321),
        Box::new(TraditionalSolver::paper_default()),
    );
    sim.run();
    let e1 = sim.history().mode_series(1).unwrap();
    let start = e1.values[..10].iter().copied().fold(f64::MIN, f64::max);
    let peak = e1.values.iter().copied().fold(f64::MIN, f64::max);
    assert!(
        peak < start * 20.0,
        "stable configuration grew: floor {start}, peak {peak}"
    );
}

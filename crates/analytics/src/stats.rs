//! Small statistics helpers used across the reproduction.
//!
//! These are the metrics the paper actually reports: Mean Absolute Error and
//! maximum error for Table I, and relative variation for the conservation
//! plots of Figs. 5–6.

/// Arithmetic mean. Returns 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance. Returns 0 for slices with fewer than two elements.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Minimum value. Returns +inf for an empty slice.
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum value. Returns -inf for an empty slice.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Mean Absolute Error between two equal-length slices (paper Eq. 6).
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn mae(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    assert!(!a.is_empty(), "empty input");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>() / a.len() as f64
}

/// Maximum absolute difference between two equal-length slices
/// ("Max Error" row of the paper's Table I).
///
/// # Panics
/// Panics on length mismatch.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Root-mean-square error between two equal-length slices.
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn rmse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    assert!(!a.is_empty(), "empty input");
    (a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / a.len() as f64).sqrt()
}

/// Relative peak-to-peak variation of a history, normalized by its first
/// value: `(max - min) / |first|`. This is how "the total energy is not
/// conserved with maximum variation of approximately 2%" (paper §V) is
/// quantified.
///
/// # Panics
/// Panics if the history is empty or starts at zero.
pub fn relative_variation(history: &[f64]) -> f64 {
    assert!(!history.is_empty(), "empty history");
    let first = history[0];
    assert!(
        first != 0.0,
        "history starts at zero; relative variation undefined"
    );
    (max(history) - min(history)) / first.abs()
}

/// Maximum absolute drift of a history from its initial value, as an
/// absolute number (used for momentum, which starts near zero).
pub fn max_drift(history: &[f64]) -> f64 {
    assert!(!history.is_empty(), "empty history");
    let first = history[0];
    history
        .iter()
        .map(|x| (x - first).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_variance_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-12);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
        assert!((std_dev(&xs) - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert_eq!(min(&[]), f64::INFINITY);
        assert_eq!(max(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn mae_and_max_err() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.5, 2.0, 1.0];
        assert!((mae(&a, &b) - (0.5 + 0.0 + 2.0) / 3.0).abs() < 1e-12);
        assert!((max_abs_diff(&a, &b) - 2.0).abs() < 1e-12);
        assert!((rmse(&a, &b) - ((0.25 + 4.0) / 3.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn variation_of_two_percent_history() {
        // Energy history drifting from 0.0410 up to 0.04182: 2% variation.
        let h = [0.0410, 0.0412, 0.04182, 0.0411];
        assert!((relative_variation(&h) - 0.02).abs() < 1e-3);
    }

    #[test]
    fn drift_from_zero_start() {
        let h = [0.0, -1e-3, -5e-3, -9e-3];
        assert!((max_drift(&h) - 9e-3).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mae_rejects_mismatch() {
        let _ = mae(&[1.0], &[1.0, 2.0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn mae_bounded_by_max_error(
            a in proptest::collection::vec(-10.0f64..10.0, 1..64),
            shift in -1.0f64..1.0,
        ) {
            let b: Vec<f64> = a.iter().map(|x| x + shift).collect();
            prop_assert!(mae(&a, &b) <= max_abs_diff(&a, &b) + 1e-12);
            prop_assert!(rmse(&a, &b) >= mae(&a, &b) - 1e-12); // RMS ≥ mean of |e|
        }

        #[test]
        fn mae_identity_and_symmetry(a in proptest::collection::vec(-10.0f64..10.0, 1..32)) {
            prop_assert!(mae(&a, &a) < 1e-15);
            let b: Vec<f64> = a.iter().map(|x| x * 0.9 + 0.1).collect();
            prop_assert!((mae(&a, &b) - mae(&b, &a)).abs() < 1e-12);
        }

        #[test]
        fn variance_is_translation_invariant(
            a in proptest::collection::vec(-5.0f64..5.0, 2..32),
            shift in -100.0f64..100.0,
        ) {
            let b: Vec<f64> = a.iter().map(|x| x + shift).collect();
            prop_assert!((variance(&a) - variance(&b)).abs() < 1e-8);
        }
    }
}

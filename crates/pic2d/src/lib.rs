//! # dlpic-pic2d
//!
//! A two-dimensional electrostatic Particle-in-Cell method — the
//! "two-dimensional systems" extension that Aguilar & Markidis name as
//! future work in §VII of *"A Deep Learning-Based Particle-in-Cell Method
//! for Plasma Simulations"* (CLUSTER 2021).
//!
//! The computational cycle is the 2-D version of the paper's Fig. 1:
//!
//! 1. **Gather** — interpolate `(Ex, Ey)` from grid nodes to particle
//!    positions ([`gather2d`]).
//! 2. **Push** — leap-frog update of `(vx, vy)` and `(x, y)`
//!    ([`mover2d`]).
//! 3. **Deposit** — tensor-product shape-function charge deposition
//!    ([`deposit2d`]).
//! 4. **Field solve** — periodic 2-D Poisson solve (spectral or SOR) and
//!    `E = −∇Φ` by central differences ([`poisson2d`], [`efield2d`]).
//!
//! Steps 3–4 hide behind [`solver2d::FieldSolver2D`] so the DL-based field
//! solver of `dlpic-core` can replace them, mirroring the 1-D seam.
//!
//! ## Units and layout
//!
//! Same dimensionless units as the 1-D crate (`ω_p = 1`, `ε₀ = 1`,
//! electron `|q|/m = 1`). All node arrays are row-major with `x` fastest:
//! `a[iy * nx + ix]`.
//!
//! ## Validation strategy
//!
//! A two-stream configuration that is uniform in `y` must reproduce the
//! 1-D physics exactly: the `(kx, ky) = (k₁, 0)` mode grows at the 1-D
//! two-stream rate `γ = 1/(2√2)` and nothing grows in `ky`. The
//! integration tests enforce both.

#![warn(missing_docs)]

pub mod constants2d;
pub mod deposit2d;
pub mod diagnostics2d;
pub mod efield2d;
pub mod fused2d;
pub mod gather2d;
pub mod grid2d;
pub mod init2d;
pub mod mover2d;
pub mod particles2d;
pub mod poisson2d;
pub mod simulation2d;
pub mod solver2d;

pub use fused2d::{fused_gather_push_move, StepMoments2D};
pub use grid2d::Grid2D;
pub use init2d::TwoStream2DInit;
pub use particles2d::Particles2D;
pub use poisson2d::{Poisson2DSolver, SorPoisson2D, SpectralPoisson2D};
pub use simulation2d::{Pic2DConfig, Simulation2D};
pub use solver2d::{FieldSolver2D, TraditionalSolver2D};

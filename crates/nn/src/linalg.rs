//! Single-precision matrix kernels.
//!
//! Three GEMM variants cover everything dense and convolutional layers
//! need (with im2col):
//!
//! * [`matmul_nn`] — `C = A·B` (forward pass),
//! * [`matmul_tn`] — `C = Aᵀ·B` (weight gradients `dW = Xᵀ·dY`),
//! * [`matmul_nt`] — `C = A·Bᵀ` (input gradients `dX = dY·Wᵀ`).
//!
//! The kernels use the axpy/dot inner-loop forms that LLVM autovectorizes
//! cleanly (AVX-512 + FMA with `target-cpu=native`), and parallelize over
//! output row blocks with rayon once the work is large enough — the
//! data-parallel idiom of the HPC guide. Accumulation order is
//! deterministic for a fixed thread split.

use rayon::prelude::*;

/// FLOP threshold below which the sequential path is used.
const PAR_FLOPS: usize = 1 << 20;

/// `C = A·B` where A is `m×k`, B is `k×n`, C is `m×n`. C is overwritten.
///
/// # Panics
/// Panics if slice lengths disagree with the dimensions.
pub fn matmul_nn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A size");
    assert_eq!(b.len(), k * n, "B size");
    assert_eq!(c.len(), m * n, "C size");
    let row_job = |i: usize, c_row: &mut [f32]| {
        c_row.fill(0.0);
        let a_row = &a[i * k..(i + 1) * k];
        for (kk, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += aik * bv;
            }
        }
    };
    if 2 * m * k * n >= PAR_FLOPS && rayon::current_num_threads() > 1 {
        c.par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, row)| row_job(i, row));
    } else {
        for (i, row) in c.chunks_mut(n).enumerate() {
            row_job(i, row);
        }
    }
}

/// `C = Aᵀ·B` where A is `k×m`, B is `k×n`, C is `m×n`. C is overwritten.
///
/// This is the weight-gradient kernel: `dW[in, out] = Xᵀ[in, batch]·dY[batch, out]`.
///
/// # Panics
/// Panics if slice lengths disagree with the dimensions.
pub fn matmul_tn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), k * m, "A size");
    assert_eq!(b.len(), k * n, "B size");
    assert_eq!(c.len(), m * n, "C size");
    let block_job = |i0: usize, c_block: &mut [f32]| {
        c_block.fill(0.0);
        let rows = c_block.len() / n;
        for kk in 0..k {
            let b_row = &b[kk * n..(kk + 1) * n];
            let a_row = &a[kk * m..(kk + 1) * m];
            for r in 0..rows {
                let aik = a_row[i0 + r];
                if aik == 0.0 {
                    continue;
                }
                let c_row = &mut c_block[r * n..(r + 1) * n];
                for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                    *cv += aik * bv;
                }
            }
        }
    };
    if 2 * m * k * n >= PAR_FLOPS && rayon::current_num_threads() > 1 {
        // Block rows so each worker scans A/B once per block.
        let block = (m / rayon::current_num_threads().max(1))
            .max(8)
            .min(m.max(1));
        c.par_chunks_mut(block * n)
            .enumerate()
            .for_each(|(bi, cb)| block_job(bi * block, cb));
    } else {
        block_job(0, c);
    }
}

/// `C = A·Bᵀ` where A is `m×k`, B is `n×k`, C is `m×n`. C is overwritten.
///
/// This is the input-gradient kernel: `dX[batch, in] = dY[batch, out]·Wᵀ`
/// with `W` stored `[in, out]` passed via its transpose-free rows.
///
/// # Panics
/// Panics if slice lengths disagree with the dimensions.
pub fn matmul_nt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A size");
    assert_eq!(b.len(), n * k, "B size");
    assert_eq!(c.len(), m * n, "C size");
    let row_job = |i: usize, c_row: &mut [f32]| {
        let a_row = &a[i * k..(i + 1) * k];
        for (j, cv) in c_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            *cv = acc;
        }
    };
    if 2 * m * k * n >= PAR_FLOPS && rayon::current_num_threads() > 1 {
        c.par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, row)| row_job(i, row));
    } else {
        for (i, row) in c.chunks_mut(n).enumerate() {
            row_job(i, row);
        }
    }
}

/// Adds a bias row to every row of a `m×n` matrix.
///
/// # Panics
/// Panics if sizes disagree.
pub fn add_bias(c: &mut [f32], bias: &[f32], m: usize, n: usize) {
    assert_eq!(c.len(), m * n, "C size");
    assert_eq!(bias.len(), n, "bias size");
    for row in c.chunks_mut(n) {
        for (cv, &bv) in row.iter_mut().zip(bias) {
            *cv += bv;
        }
    }
}

/// Column sums of a `m×n` matrix, accumulated into `out` (bias gradients).
///
/// # Panics
/// Panics if sizes disagree.
pub fn col_sums_into(c: &[f32], out: &mut [f32], m: usize, n: usize) {
    assert_eq!(c.len(), m * n, "C size");
    assert_eq!(out.len(), n, "out size");
    for row in c.chunks(n) {
        for (o, &v) in out.iter_mut().zip(row) {
            *o += v;
        }
    }
}

/// Reference O(mnk) naive matmul — the oracle for property tests.
pub fn matmul_naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64; // higher-precision accumulation for the oracle
            for kk in 0..k {
                acc += a[i * k + kk] as f64 * b[kk * n + j] as f64;
            }
            c[i * n + j] = acc as f32;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "elem {i}: {x} vs {y}"
            );
        }
    }

    #[test]
    fn identity_multiplication() {
        let a = vec![1.0, 2.0, 3.0, 4.0]; // 2x2
        let eye = vec![1.0, 0.0, 0.0, 1.0];
        let mut c = vec![0.0; 4];
        matmul_nn(&a, &eye, &mut c, 2, 2, 2);
        assert_eq!(c, a);
    }

    #[test]
    fn known_product() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![5.0, 6.0, 7.0, 8.0];
        let mut c = vec![0.0; 4];
        matmul_nn(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        // A is k×m = 3×2; Aᵀ·B with B k×n = 3×2.
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 3x2
        let b = vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]; // 3x2
        let at = vec![1.0, 3.0, 5.0, 2.0, 4.0, 6.0]; // 2x3 explicit transpose
        let mut c1 = vec![0.0; 4];
        let mut c2 = vec![0.0; 4];
        matmul_tn(&a, &b, &mut c1, 2, 3, 2);
        matmul_nn(&at, &b, &mut c2, 2, 3, 2);
        assert_close(&c1, &c2, 1e-6);
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let a = vec![1.0, 2.0, 3.0, 4.0]; // 2x2
        let b = vec![5.0, 6.0, 7.0, 8.0]; // 2x2, use Bᵀ
        let bt = vec![5.0, 7.0, 6.0, 8.0];
        let mut c1 = vec![0.0; 4];
        let mut c2 = vec![0.0; 4];
        matmul_nt(&a, &b, &mut c1, 2, 2, 2);
        matmul_nn(&a, &bt, &mut c2, 2, 2, 2);
        assert_close(&c1, &c2, 1e-6);
    }

    #[test]
    fn bias_and_col_sums_round_trip() {
        let mut c = vec![0.0; 6];
        add_bias(&mut c, &[1.0, 2.0, 3.0], 2, 3);
        assert_eq!(c, vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
        let mut sums = vec![0.0; 3];
        col_sums_into(&c, &mut sums, 2, 3);
        assert_eq!(sums, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn big_enough_to_trigger_parallel_path() {
        // 128×128×128 ≈ 4 MFLOPs > threshold; verify against the oracle.
        let m = 128;
        let a: Vec<f32> = (0..m * m)
            .map(|i| ((i * 7 % 13) as f32 - 6.0) / 13.0)
            .collect();
        let b: Vec<f32> = (0..m * m)
            .map(|i| ((i * 11 % 17) as f32 - 8.0) / 17.0)
            .collect();
        let mut c = vec![0.0; m * m];
        matmul_nn(&a, &b, &mut c, m, m, m);
        let oracle = matmul_naive(&a, &b, m, m, m);
        assert_close(&c, &oracle, 1e-4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn nn_matches_oracle(
            m in 1usize..8, k in 1usize..8, n in 1usize..8,
            seed in 0u64..1000,
        ) {
            let gen = |len: usize, s: u64| -> Vec<f32> {
                (0..len).map(|i| (((i as u64 + s) * 2654435761 % 1000) as f32 / 500.0) - 1.0).collect()
            };
            let a = gen(m * k, seed);
            let b = gen(k * n, seed + 1);
            let mut c = vec![0.0; m * n];
            matmul_nn(&a, &b, &mut c, m, k, n);
            let oracle = matmul_naive(&a, &b, m, k, n);
            for (x, y) in c.iter().zip(&oracle) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }

        #[test]
        fn tn_and_nt_consistent_with_nn(
            m in 1usize..6, k in 1usize..6, n in 1usize..6,
            seed in 0u64..1000,
        ) {
            let gen = |len: usize, s: u64| -> Vec<f32> {
                (0..len).map(|i| (((i as u64 + s) * 40503 % 997) as f32 / 499.0) - 1.0).collect()
            };
            // tn: A (k×m) — build explicit transpose and compare.
            let a_km = gen(k * m, seed);
            let b_kn = gen(k * n, seed + 7);
            let mut at = vec![0.0f32; m * k];
            for kk in 0..k {
                for i in 0..m {
                    at[i * k + kk] = a_km[kk * m + i];
                }
            }
            let mut c_tn = vec![0.0; m * n];
            let mut c_ref = vec![0.0; m * n];
            matmul_tn(&a_km, &b_kn, &mut c_tn, m, k, n);
            matmul_nn(&at, &b_kn, &mut c_ref, m, k, n);
            for (x, y) in c_tn.iter().zip(&c_ref) {
                prop_assert!((x - y).abs() < 1e-4);
            }
            // nt: B (n×k).
            let a_mk = gen(m * k, seed + 13);
            let b_nk = gen(n * k, seed + 19);
            let mut bt = vec![0.0f32; k * n];
            for j in 0..n {
                for kk in 0..k {
                    bt[kk * n + j] = b_nk[j * k + kk];
                }
            }
            let mut c_nt = vec![0.0; m * n];
            let mut c_ref2 = vec![0.0; m * n];
            matmul_nt(&a_mk, &b_nk, &mut c_nt, m, k, n);
            matmul_nn(&a_mk, &bt, &mut c_ref2, m, k, n);
            for (x, y) in c_nt.iter().zip(&c_ref2) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }
    }
}

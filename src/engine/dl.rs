//! DL model plumbing for the engine's `Dl1D`/`Dl2D` backends.
//!
//! Three ways to get a model into an [`Engine`](super::Engine):
//!
//! 1. **Bring a trained bundle** — `engine.with_model_1d(bundle)` with a
//!    [`ModelBundle`] from `dlpic-bench` or [`quick_train_1d`].
//! 2. **Quick-train here** — [`quick_train_1d`]/[`quick_train_2d`] run the
//!    full harvest→train pipeline at the spec's scale (seconds at
//!    `Scale::Smoke`).
//! 3. **Untrained fallback** — with no model configured, the engine builds
//!    an untrained network of the scale's architecture. The produced
//!    fields are physically meaningless (finite, near-zero) but every
//!    plumbing path is exercised; runs report the solver name
//!    `dl-*-untrained` so nobody mistakes them for physics.

use super::backend::Backend;
use super::error::EngineError;
use super::spec::ScenarioSpec;
use crate::core::normalize::NormStats;
use crate::core::phase_space::BinningShape;
use crate::core::presets::Scale;
use crate::core::twod::{
    arch_2d, harvest_2d, train_2d_solver, DensityBinning, Dl2DFieldSolver, Frozen2DModel,
    Train2DConfig,
};
use crate::core::{DlFieldSolver, FrozenBundle, ModelBundle};
use crate::nn::frozen::{FrozenModel, Precision};
use crate::nn::serialize::{params_from_bytes, params_to_bytes};
use crate::pic2d::{Grid2D, Pic2DConfig};
use std::sync::{Arc, Mutex};

/// A persisted-in-memory 2-D DL model (the 2-D analogue of
/// [`ModelBundle`]): enough to rebuild a [`Dl2DFieldSolver`] any number of
/// times.
#[derive(Debug, Clone)]
pub struct Dl2DModel {
    /// Hidden-layer widths of the MLP.
    pub hidden: Vec<usize>,
    /// Serialized network parameters.
    pub params: Vec<u8>,
    /// Density-binning order used in training.
    pub binning: DensityBinning,
    /// Training-input normalization statistics.
    pub norm: NormStats,
    /// Total mass of the training histograms (0 disables rescaling).
    pub reference_mass: f32,
}

impl Dl2DModel {
    /// Rebuilds the solver for the given grid. Fails if the grid's node
    /// count mismatches the trained parameter shapes.
    pub fn into_solver(&self, grid: &Grid2D) -> Result<Dl2DFieldSolver, EngineError> {
        let arch = arch_2d(grid, self.hidden.clone());
        let mut net = arch.build(0);
        params_from_bytes(&mut net, &self.params).map_err(|_| EngineError::InvalidSpec {
            scenario: String::new(),
            what: format!(
                "2-D model parameters do not fit a {}×{} grid",
                grid.nx(),
                grid.ny()
            ),
        })?;
        Ok(
            Dl2DFieldSolver::new(net, self.binning, self.norm, "dl-2d-mlp")
                .with_reference_mass(self.reference_mass),
        )
    }
}

/// Hidden widths of the default 2-D architecture at each scale.
pub fn hidden_2d(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Smoke => vec![32, 32],
        Scale::Scaled => vec![256, 256],
        Scale::Paper => vec![512, 512],
    }
}

/// An untrained 1-D DL solver with the scale's MLP architecture. The
/// network output width is the paper's 64 cells, so the scenario domain
/// must match (checked by the engine before building).
pub fn untrained_1d(scale: Scale) -> DlFieldSolver {
    let arch = scale.mlp_arch();
    DlFieldSolver::new(
        arch.build(0xD15E),
        scale.phase_spec(),
        BinningShape::Ngp,
        NormStats::identity(),
        arch.input_kind(),
        "dl-mlp-untrained",
    )
}

/// The frozen weight allocation behind [`untrained_1d`]: same seed, same
/// architecture, one `Arc` a whole fleet of untrained sessions shares.
pub fn untrained_frozen_1d(scale: Scale) -> Arc<FrozenModel> {
    let net = scale.mlp_arch().build(0xD15E);
    Arc::new(
        net.freeze(Precision::F32)
            .expect("the scale MLP architectures have frozen forms"),
    )
}

/// One untrained fleet member over a shared weight allocation from
/// [`untrained_frozen_1d`]. Bit-identical to [`untrained_1d`] at the same
/// scale.
pub fn untrained_1d_shared(scale: Scale, model: Arc<FrozenModel>) -> DlFieldSolver {
    let arch = scale.mlp_arch();
    DlFieldSolver::shared(
        model,
        scale.phase_spec(),
        BinningShape::Ngp,
        NormStats::identity(),
        arch.input_kind(),
        "dl-mlp-untrained",
    )
}

/// An untrained 2-D DL solver sized for the grid.
pub fn untrained_2d(scale: Scale, grid: &Grid2D) -> Dl2DFieldSolver {
    let arch = arch_2d(grid, hidden_2d(scale));
    Dl2DFieldSolver::new(
        arch.build(0xD15E),
        DensityBinning::Ngp,
        NormStats::identity(),
        "dl-2d-mlp-untrained",
    )
}

/// The frozen weight allocation behind [`untrained_2d`] for this grid.
pub fn untrained_frozen_2d(scale: Scale, grid: &Grid2D) -> Arc<FrozenModel> {
    let net = arch_2d(grid, hidden_2d(scale)).build(0xD15E);
    Arc::new(
        net.freeze(Precision::F32)
            .expect("the 2-D MLP architecture has a frozen form"),
    )
}

/// One untrained 2-D fleet member over a shared allocation from
/// [`untrained_frozen_2d`]. Bit-identical to [`untrained_2d`] on the same
/// grid.
pub fn untrained_2d_shared(model: Arc<FrozenModel>) -> Dl2DFieldSolver {
    Dl2DFieldSolver::shared(
        model,
        DensityBinning::Ngp,
        NormStats::identity(),
        "dl-2d-mlp-untrained",
    )
}

/// Output width (field cells) of a 1-D bundle's network.
pub fn bundle_output_cells(bundle: &ModelBundle) -> usize {
    bundle.arch.output_len()
}

/// Trains a 1-D MLP field solver from scratch at the given scale — the
/// full paper pipeline (traditional-PIC harvest → shuffle/split →
/// Adam/MSE training) with the scale's sweep and architecture. Seconds at
/// `Scale::Smoke`; see `dlpic-bench` for cached, full-size training.
pub fn quick_train_1d(scale: Scale, seed: u64) -> ModelBundle {
    use crate::dataset::generator::{generate, GeneratorConfig};
    use crate::dataset::spec::SweepSpec;
    use crate::nn::optimizer::Adam;
    use crate::nn::trainer::{train, TrainConfig};

    let mut cfg = GeneratorConfig::new(SweepSpec::training_for(scale), scale.phase_spec());
    cfg.ppc = scale.dataset_ppc();
    let data = generate(&cfg);
    let norm = data.input_norm_stats();
    let arch = scale.mlp_arch();
    let kind = arch.input_kind();
    let mut net = arch.build(seed);
    let mut opt = Adam::new(scale.learning_rate());
    let tc = TrainConfig {
        epochs: scale.mlp_epochs(),
        batch_size: 64,
        shuffle_seed: seed,
        log_every: 0,
    };
    train(
        &mut net,
        &crate::nn::Mse,
        &mut opt,
        &data.to_nn_dataset(&norm, kind),
        None,
        &tc,
    );
    let reference_mass: f32 = data.input_row(0).iter().sum();
    ModelBundle::from_network(&mut net, arch, data.spec, data.binning, norm)
        .with_reference_mass(reference_mass)
}

/// Trains a 2-D DL field solver by harvesting a traditional 2-D run of the
/// given scenario, then fitting the scale's MLP.
pub fn quick_train_2d(spec: &ScenarioSpec, seed: u64) -> Result<Dl2DModel, EngineError> {
    let grid = match spec.dim() {
        super::spec::Dim::TwoD => spec.grid_2d(),
        super::spec::Dim::OneD => {
            return Err(EngineError::InvalidSpec {
                scenario: spec.name.clone(),
                what: "quick_train_2d needs a 2-D scenario".into(),
            })
        }
    };
    let init = spec.init_2d().ok_or_else(|| EngineError::InvalidSpec {
        scenario: spec.name.clone(),
        what: "2-D training harvest needs a symmetric two-beam species".into(),
    })?;
    let cfg = Pic2DConfig {
        grid: grid.clone(),
        init,
        dt: spec.dt,
        n_steps: spec.n_steps,
        gather_shape: crate::pic::Shape::Cic,
        tracked_modes: vec![],
    };
    let binning = DensityBinning::Ngp;
    let samples = harvest_2d(cfg, binning, 1);
    let tc = Train2DConfig {
        hidden: hidden_2d(spec.scale),
        learning_rate: spec.scale.learning_rate().max(1e-3),
        epochs: match spec.scale {
            Scale::Smoke => 10,
            Scale::Scaled => 40,
            Scale::Paper => 80,
        },
        batch_size: 32,
        seed,
    };
    let (mut solver, _history) = train_2d_solver(&grid, &samples, binning, &tc);
    let reference_mass: f32 = samples.first().map(|s| s.hist.iter().sum()).unwrap_or(0.0);
    let params = params_to_bytes(
        solver
            .network_mut()
            .expect("a freshly trained solver owns its network"),
    );
    Ok(Dl2DModel {
        hidden: hidden_2d(spec.scale),
        params,
        binning,
        norm: solver.norm(),
        reference_mass,
    })
}

/// Observable counters of a [`ModelRegistry`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Lookups served from a cached bundle.
    pub hits: u64,
    /// Lookups that trained a fresh model.
    pub misses: u64,
    /// Entries dropped by LRU pressure or [`ModelRegistry::prune`].
    pub evictions: u64,
    /// Bundles currently resident.
    pub entries: usize,
    /// Bytes currently resident (serialized parameters plus the frozen
    /// inference copy).
    pub bytes: usize,
    /// The configured byte capacity.
    pub capacity_bytes: usize,
}

/// What one registry lookup is keyed by: train once per (scenario, scale,
/// seed) per dimension, share everywhere.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RegistryKey {
    two_d: bool,
    scenario: String,
    scale: Scale,
    seed: u64,
}

enum RegistryPayload {
    OneD {
        bundle: Arc<ModelBundle>,
        frozen: Option<FrozenBundle>,
    },
    TwoD {
        model: Arc<Dl2DModel>,
        frozen: Option<Frozen2DModel>,
        nodes: usize,
    },
}

struct RegistryEntry {
    key: RegistryKey,
    payload: RegistryPayload,
    bytes: usize,
    last_used: u64,
}

/// A get-or-train cache of DL model bundles keyed by
/// `(scenario, scale, seed)`: the first lookup runs the quick-train
/// pipeline, every later lookup for the same key returns the **same**
/// `Arc`-shared bundle plus its frozen inference snapshot, so fleets and
/// serve runs share one weight allocation per distinct model instead of
/// retraining (or re-deserializing) per session.
///
/// The cache is LRU-bounded by bytes ([`ResourceEstimate`]
/// currency): inserting past `capacity_bytes` evicts the
/// least-recently-used entries, never the one just inserted. A cache hit
/// whose trained architecture cannot serve the requesting spec — the
/// domain was resized after the model was trained — is rejected with
/// [`EngineError::Incompatible`] naming both shapes rather than silently
/// returning a mis-sized network.
///
/// [`ResourceEstimate`]: super::resources::ResourceEstimate
pub struct ModelRegistry {
    capacity_bytes: usize,
    precision: Precision,
    clock: u64,
    entries: Vec<RegistryEntry>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A registry shared across engine handles (and serve schedulers):
/// lookups lock, training happens under the lock so concurrent requests
/// for the same key train once.
pub type SharedModelRegistry = Arc<Mutex<ModelRegistry>>;

/// A fresh [`SharedModelRegistry`] with the given byte capacity.
pub fn shared_registry(capacity_bytes: usize) -> SharedModelRegistry {
    Arc::new(Mutex::new(ModelRegistry::new(capacity_bytes)))
}

impl ModelRegistry {
    /// An empty registry holding at most `capacity_bytes` of cached
    /// models (f32 weight storage).
    pub fn new(capacity_bytes: usize) -> Self {
        Self {
            capacity_bytes,
            precision: Precision::F32,
            clock: 0,
            entries: Vec::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Sets the weight-storage precision newly trained bundles freeze
    /// into. `Bf16` halves resident weight bytes at an accuracy cost
    /// gated by physics tolerance, not bit-identity — see the README's
    /// precision contract.
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Gets (or trains) the 1-D bundle for this spec. The frozen
    /// snapshot is `None` only for architectures without a frozen form
    /// (the CNN); callers then fall back to per-session owned networks.
    pub fn model_1d(
        &mut self,
        spec: &ScenarioSpec,
    ) -> Result<(Arc<ModelBundle>, Option<FrozenBundle>), EngineError> {
        let key = self.key_for(spec, false);
        self.clock += 1;
        if let Some(idx) = self.entries.iter().position(|e| e.key == key) {
            let (cells, want) = match &self.entries[idx].payload {
                RegistryPayload::OneD { bundle, .. } => {
                    (bundle.arch.output_len(), spec.domain.cells())
                }
                RegistryPayload::TwoD { .. } => unreachable!("1-D key holds a 2-D payload"),
            };
            if cells != want {
                return Err(self.arch_mismatch(spec, Backend::Dl1D, cells, want));
            }
            self.hits += 1;
            self.entries[idx].last_used = self.clock;
            match &self.entries[idx].payload {
                RegistryPayload::OneD { bundle, frozen } => {
                    return Ok((Arc::clone(bundle), frozen.clone()))
                }
                RegistryPayload::TwoD { .. } => unreachable!(),
            }
        }
        self.misses += 1;
        let bundle = quick_train_1d(spec.scale, spec.seed).with_precision(self.precision);
        let frozen = bundle.freeze().ok();
        let bundle = Arc::new(bundle);
        let bytes = bundle.params.len() + frozen.as_ref().map(|f| f.weight_bytes()).unwrap_or(0);
        self.entries.push(RegistryEntry {
            key,
            payload: RegistryPayload::OneD {
                bundle: Arc::clone(&bundle),
                frozen: frozen.clone(),
            },
            bytes,
            last_used: self.clock,
        });
        self.evict_over_capacity();
        Ok((bundle, frozen))
    }

    /// Gets (or trains) the 2-D model for this spec.
    pub fn model_2d(
        &mut self,
        spec: &ScenarioSpec,
    ) -> Result<(Arc<Dl2DModel>, Option<Frozen2DModel>), EngineError> {
        let key = self.key_for(spec, true);
        self.clock += 1;
        if let Some(idx) = self.entries.iter().position(|e| e.key == key) {
            let (nodes, want) = match &self.entries[idx].payload {
                RegistryPayload::TwoD { nodes, .. } => (*nodes, spec.domain.cells()),
                RegistryPayload::OneD { .. } => unreachable!("2-D key holds a 1-D payload"),
            };
            if nodes != want {
                return Err(self.arch_mismatch(spec, Backend::Dl2D, nodes, want));
            }
            self.hits += 1;
            self.entries[idx].last_used = self.clock;
            match &self.entries[idx].payload {
                RegistryPayload::TwoD { model, frozen, .. } => {
                    return Ok((Arc::clone(model), frozen.clone()))
                }
                RegistryPayload::OneD { .. } => unreachable!(),
            }
        }
        self.misses += 1;
        let nodes = spec.domain.cells();
        let model = Arc::new(quick_train_2d(spec, spec.seed)?);
        let frozen = model
            .into_solver(&spec.grid_2d())
            .ok()
            .and_then(|s| s.freeze(self.precision).ok());
        let bytes = model.params.len() + frozen.as_ref().map(|f| f.weight_bytes()).unwrap_or(0);
        self.entries.push(RegistryEntry {
            key,
            payload: RegistryPayload::TwoD {
                model: Arc::clone(&model),
                frozen: frozen.clone(),
                nodes,
            },
            bytes,
            last_used: self.clock,
        });
        self.evict_over_capacity();
        Ok((model, frozen))
    }

    /// Drops every cached entry, returning how many were released.
    /// Sessions already minted keep their `Arc`s alive; the registry just
    /// stops pinning the allocations.
    pub fn prune(&mut self) -> usize {
        let n = self.entries.len();
        self.evictions += n as u64;
        self.entries.clear();
        n
    }

    /// Current counters.
    pub fn stats(&self) -> RegistryStats {
        RegistryStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.entries.len(),
            bytes: self.resident_bytes(),
            capacity_bytes: self.capacity_bytes,
        }
    }

    fn key_for(&self, spec: &ScenarioSpec, two_d: bool) -> RegistryKey {
        RegistryKey {
            two_d,
            scenario: spec.name.clone(),
            scale: spec.scale,
            seed: spec.seed,
        }
    }

    fn arch_mismatch(
        &self,
        spec: &ScenarioSpec,
        backend: Backend,
        cached: usize,
        want: usize,
    ) -> EngineError {
        EngineError::Incompatible {
            scenario: spec.name.clone(),
            backend: backend.name(),
            why: format!(
                "registry entry for this (scenario, scale, seed) was trained for {cached} \
                 field cells but the requesting domain has {want}; prune the registry or \
                 match the training grid"
            ),
        }
    }

    fn resident_bytes(&self) -> usize {
        self.entries.iter().map(|e| e.bytes).sum()
    }

    fn evict_over_capacity(&mut self) {
        // Never evict the freshest entry (the one the caller is about to
        // use); a single over-budget model stays resident rather than
        // thrashing the trainer.
        while self.entries.len() > 1 && self.resident_bytes() > self.capacity_bytes {
            let oldest = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("entries is non-empty");
            self.entries.remove(oldest);
            self.evictions += 1;
        }
    }
}

//! Particle storage.
//!
//! Structure-of-arrays layout (separate `x` and `v` vectors), per the
//! HPC-parallel guide: the mover, gather and deposit loops each touch only
//! the component they need, which keeps them vectorizable and
//! cache-friendly.
//!
//! All particles of a [`Particles`] buffer belong to one species with a
//! single macro-particle charge and mass — the paper simulates electrons
//! only, with protons as a fixed neutralizing background (§III).

/// A species of macro-particles in 1D-1V phase space.
#[derive(Debug, Clone, PartialEq)]
pub struct Particles {
    /// Positions, each in `[0, L)`.
    pub x: Vec<f64>,
    /// Velocities (at half-integer time levels once leap-frog is running).
    pub v: Vec<f64>,
    charge: f64,
    mass: f64,
}

impl Particles {
    /// Creates a buffer from positions, velocities and per-macro-particle
    /// charge and mass.
    ///
    /// # Panics
    /// Panics if lengths mismatch or mass is not positive.
    pub fn new(x: Vec<f64>, v: Vec<f64>, charge: f64, mass: f64) -> Self {
        assert_eq!(x.len(), v.len(), "position/velocity length mismatch");
        assert!(mass > 0.0, "mass must be positive");
        Self { x, v, charge, mass }
    }

    /// Electron macro-particles normalized so that the species produces
    /// `ω_p = 1` in a box of length `box_len`: `q = -L/N`, `m = L/N`
    /// (thus `q/m = -1` and mean density `n·|q| = 1`).
    pub fn electrons_normalized(x: Vec<f64>, v: Vec<f64>, box_len: f64) -> Self {
        let n = x.len();
        assert!(n > 0, "need at least one particle");
        let w = box_len / n as f64;
        Self::new(x, v, -w, w)
    }

    /// Number of macro-particles.
    #[inline]
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when the buffer holds no particles.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Macro-particle charge (negative for electrons).
    #[inline]
    pub fn charge(&self) -> f64 {
        self.charge
    }

    /// Macro-particle mass.
    #[inline]
    pub fn mass(&self) -> f64 {
        self.mass
    }

    /// Charge-to-mass ratio (−1 for the normalized electrons).
    #[inline]
    pub fn charge_over_mass(&self) -> f64 {
        self.charge / self.mass
    }

    /// Total charge carried by the species.
    pub fn total_charge(&self) -> f64 {
        self.charge * self.len() as f64
    }

    /// Total momentum `m·Σv`.
    pub fn total_momentum(&self) -> f64 {
        self.mass * self.v.iter().sum::<f64>()
    }

    /// Kinetic energy `½·m·Σv²` (instantaneous; the time-centred estimate
    /// used in conservation plots lives in the mover).
    pub fn kinetic_energy(&self) -> f64 {
        0.5 * self.mass * self.v.iter().map(|v| v * v).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_electrons_have_unit_plasma_frequency() {
        let n = 1000;
        let l = 2.0532;
        let p = Particles::electrons_normalized(vec![0.0; n], vec![0.0; n], l);
        // ω_p² = (N/L)·q²/m·(1/ε₀) with ε₀ = 1.
        let density = n as f64 / l;
        let omega_p_sq = density * p.charge() * p.charge() / p.mass();
        assert!((omega_p_sq - 1.0).abs() < 1e-12);
        assert!((p.charge_over_mass() + 1.0).abs() < 1e-12);
        // Mean charge density −1 (neutralized by the +1 ion background).
        assert!((p.total_charge() / l + 1.0).abs() < 1e-12);
    }

    #[test]
    fn diagnostics_on_simple_data() {
        let p = Particles::new(vec![0.0, 1.0], vec![2.0, -1.0], -0.5, 0.5);
        assert_eq!(p.len(), 2);
        assert!((p.total_momentum() - 0.5).abs() < 1e-15);
        assert!((p.kinetic_energy() - 0.25 * 5.0).abs() < 1e-15);
        assert!((p.total_charge() + 1.0).abs() < 1e-15);
    }

    #[test]
    fn two_beam_energy_matches_half_l_v0_squared() {
        // The paper's Fig. 5/6 energy scales: KE = ½·L·v0².
        let n = 10_000;
        let l = 2.0 * std::f64::consts::PI / 3.06;
        let v0 = 0.2;
        let v: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { v0 } else { -v0 }).collect();
        let p = Particles::electrons_normalized(vec![0.0; n], v, l);
        assert!((p.kinetic_energy() - 0.5 * l * v0 * v0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_rejected() {
        let _ = Particles::new(vec![0.0], vec![], 1.0, 1.0);
    }
}

//! Field gather: interpolate `(Ex, Ey)` from grid nodes to particle
//! positions with the same tensor-product weights as the deposition
//! (using identical scatter/gather weights is what keeps the explicit
//! scheme free of self-forces).

use crate::grid2d::Grid2D;
use crate::particles2d::Particles2D;
use dlpic_pic::shape::Shape;

/// Interpolates both field components at every particle position.
///
/// # Panics
/// Panics if field arrays don't match the grid or output slices don't
/// match the particle count.
pub fn gather_field(
    particles: &Particles2D,
    grid: &Grid2D,
    shape: Shape,
    ex: &[f64],
    ey: &[f64],
    ex_part: &mut [f64],
    ey_part: &mut [f64],
) {
    assert_eq!(ex.len(), grid.nodes(), "ex length mismatch");
    assert_eq!(ey.len(), grid.nodes(), "ey length mismatch");
    assert_eq!(ex_part.len(), particles.len(), "ex_part length mismatch");
    assert_eq!(ey_part.len(), particles.len(), "ey_part length mismatch");
    let inv_dx = 1.0 / grid.dx();
    let inv_dy = 1.0 / grid.dy();
    let nx = grid.nx();
    let support = shape.support();

    for (idx, (&x, &y)) in particles.x.iter().zip(&particles.y).enumerate() {
        let ax = shape.assign(x * inv_dx);
        let ay = shape.assign(y * inv_dy);
        let mut ex_acc = 0.0;
        let mut ey_acc = 0.0;
        for jy in 0..support {
            let wy = ay.w[jy];
            if wy == 0.0 {
                continue;
            }
            let row = grid.wrap_iy(ay.leftmost + jy as i64) * nx;
            for jx in 0..support {
                let w = ax.w[jx] * wy;
                if w == 0.0 {
                    continue;
                }
                let node = row + grid.wrap_ix(ax.leftmost + jx as i64);
                ex_acc += w * ex[node];
                ey_acc += w * ey[node];
            }
        }
        ex_part[idx] = ex_acc;
        ey_part[idx] = ey_acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn particle_at(x: f64, y: f64) -> Particles2D {
        Particles2D::new(vec![x], vec![y], vec![0.0], vec![0.0], -1.0, 1.0)
    }

    #[test]
    fn uniform_field_gathers_exactly() {
        let grid = Grid2D::new(8, 8, 2.0, 2.0);
        let ex = vec![0.7; grid.nodes()];
        let ey = vec![-0.3; grid.nodes()];
        for shape in [Shape::Ngp, Shape::Cic, Shape::Tsc] {
            let p = particle_at(0.37, 1.91);
            let mut gx = vec![0.0];
            let mut gy = vec![0.0];
            gather_field(&p, &grid, shape, &ex, &ey, &mut gx, &mut gy);
            assert!((gx[0] - 0.7).abs() < 1e-12, "{shape:?}: {gx:?}");
            assert!((gy[0] + 0.3).abs() < 1e-12, "{shape:?}: {gy:?}");
        }
    }

    #[test]
    fn particle_on_node_reads_node_value_cic() {
        let grid = Grid2D::new(8, 8, 2.0, 2.0);
        let mut ex = grid.zeros();
        let mut ey = grid.zeros();
        ex[grid.index(3, 5)] = 2.0;
        ey[grid.index(3, 5)] = -1.0;
        let p = particle_at(3.0 * grid.dx(), 5.0 * grid.dy());
        let mut gx = vec![0.0];
        let mut gy = vec![0.0];
        gather_field(&p, &grid, Shape::Cic, &ex, &ey, &mut gx, &mut gy);
        assert!((gx[0] - 2.0).abs() < 1e-12);
        assert!((gy[0] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_field_interpolated_exactly_by_cic() {
        // CIC reproduces linear functions exactly (between nodes).
        let grid = Grid2D::new(16, 16, 2.0, 2.0);
        let (a, b) = (0.4, -0.2);
        let mut ex = grid.zeros();
        for iy in 0..grid.ny() {
            for ix in 0..grid.nx() {
                // Avoid the periodic seam by keeping the test particle
                // away from the boundary.
                ex[grid.index(ix, iy)] = a * ix as f64 * grid.dx() + b * iy as f64 * grid.dy();
            }
        }
        let ey = grid.zeros();
        let (x, y) = (0.613, 0.471);
        let p = particle_at(x, y);
        let mut gx = vec![0.0];
        let mut gy = vec![0.0];
        gather_field(&p, &grid, Shape::Cic, &ex, &ey, &mut gx, &mut gy);
        assert!((gx[0] - (a * x + b * y)).abs() < 1e-12);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn gather_is_convex_combination(
            x in 0.0f64..2.0, y in 0.0f64..2.0, seed in 0u64..1000,
        ) {
            // Gathered value lies within [min, max] of the field for all
            // shapes (weights are a partition of unity and non-negative).
            let grid = Grid2D::new(8, 8, 2.0, 2.0);
            let field: Vec<f64> = (0..grid.nodes())
                .map(|i| (((i as u64 + 1) * (seed + 7)) % 101) as f64 / 50.5 - 1.0)
                .collect();
            let lo = field.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = field.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let zero = grid.zeros();
            for shape in [Shape::Ngp, Shape::Cic, Shape::Tsc] {
                let p = particle_at(x, y);
                let mut gx = vec![0.0];
                let mut gy = vec![0.0];
                gather_field(&p, &grid, shape, &field, &zero, &mut gx, &mut gy);
                prop_assert!(gx[0] >= lo - 1e-12 && gx[0] <= hi + 1e-12,
                    "{shape:?}: {} outside [{lo}, {hi}]", gx[0]);
            }
        }

        #[test]
        fn no_self_force_after_deposit_gather_round_trip(
            x in 0.05f64..1.95, y in 0.05f64..1.95,
        ) {
            // A single particle's own deposited charge, pushed through the
            // Poisson solve and gathered back with the same shape, exerts
            // no net force on the particle (momentum conservation of the
            // scheme). Verified through the full traditional pipeline.
            use crate::solver2d::{FieldSolver2D, TraditionalSolver2D};
            let grid = Grid2D::new(8, 8, 2.0, 2.0);
            let p = Particles2D::new(
                vec![x], vec![y], vec![0.0], vec![0.0], -0.05, 0.05);
            let mut solver = TraditionalSolver2D::new(
                Shape::Cic, crate::poisson2d::Poisson2DKind::Spectral, 0.0125);
            let mut ex = grid.zeros();
            let mut ey = grid.zeros();
            solver.solve(&p, &grid, &mut ex, &mut ey);
            let mut gx = vec![0.0];
            let mut gy = vec![0.0];
            gather_field(&p, &grid, Shape::Cic, &ex, &ey, &mut gx, &mut gy);
            prop_assert!(gx[0].abs() < 1e-10, "self-force Ex = {}", gx[0]);
            prop_assert!(gy[0].abs() < 1e-10, "self-force Ey = {}", gy[0]);
        }
    }
}

#[cfg(test)]
mod adjointness_tests {
    use super::*;
    use crate::deposit2d::deposit_charge;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The total-force identity behind momentum conservation: with
        /// matched deposit/gather weights,
        /// `Σ_p q·E(x_p) == ΔA·Σ_j ρ_j·E_j` for *any* field and any
        /// particle set — deposit and gather are adjoint operators.
        #[test]
        fn deposit_and_gather_are_adjoint(
            seed in 0u64..500,
            n in 1usize..60,
        ) {
            let grid = Grid2D::new(8, 8, 2.0, 2.0);
            // Deterministic scrambled particles and field from the seed.
            let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            let xs: Vec<f64> = (0..n).map(|_| next() * grid.lx()).collect();
            let ys: Vec<f64> = (0..n).map(|_| next() * grid.ly()).collect();
            let ex: Vec<f64> = (0..grid.nodes()).map(|_| next() * 2.0 - 1.0).collect();
            let ey: Vec<f64> = (0..grid.nodes()).map(|_| next() * 2.0 - 1.0).collect();
            let p = Particles2D::new(
                xs, ys, vec![0.0; n], vec![0.0; n], -0.37, 0.37);

            for shape in [Shape::Ngp, Shape::Cic, Shape::Tsc] {
                let mut rho = grid.zeros();
                deposit_charge(&p, &grid, shape, &mut rho);
                let mut gx = vec![0.0; n];
                let mut gy = vec![0.0; n];
                gather_field(&p, &grid, shape, &ex, &ey, &mut gx, &mut gy);

                let force_particles: f64 =
                    p.charge() * (gx.iter().sum::<f64>() + gy.iter().sum::<f64>());
                let force_grid: f64 = grid.cell_area()
                    * rho.iter().zip(ex.iter().zip(&ey))
                        .map(|(r, (fx, fy))| r * (fx + fy))
                        .sum::<f64>();
                prop_assert!(
                    (force_particles - force_grid).abs()
                        < 1e-10 * (1.0 + force_grid.abs()),
                    "{shape:?}: particle force {force_particles} vs grid {force_grid}"
                );
            }
        }
    }
}

//! # dlpic-nn
//!
//! A from-scratch neural-network library: the substitute for the
//! TensorFlow/Keras substrate of Aguilar & Markidis (CLUSTER 2021).
//!
//! It implements exactly what the paper's §IV.A requires — and is validated
//! far more aggressively than a paper appendix would be:
//!
//! * dense and convolutional layers with hand-written backprop, checked
//!   against central finite differences ([`gradcheck`]);
//! * ReLU / max-pool / flatten / residual blocks;
//! * MSE loss, [`optimizer::Adam`] (the paper's optimizer, lr 1e-4,
//!   batch 64) and SGD;
//! * a deterministic mini-batch [`trainer`] with shuffling and validation
//!   tracking;
//! * MAE / max-error [`metrics`] (the paper's Table I columns);
//! * parameter [`serialize`] for model persistence.
//!
//! The GEMM kernels in [`linalg`] parallelize with rayon and autovectorize
//! (AVX-512/FMA with `target-cpu=native`); everything is `f32`, matching
//! common DL-framework defaults.

#![warn(missing_docs)]

pub mod bf16;
pub mod data;
pub mod frozen;
pub mod gradcheck;
pub mod init;
pub mod layer;
pub mod layers;
pub mod linalg;
pub mod loss;
pub mod metrics;
pub mod network;
pub mod optimizer;
pub mod serialize;
pub mod tensor;
pub mod trainer;

pub use data::Dataset;
pub use frozen::{FreezeError, FrozenModel, Precision};
pub use init::Init;
pub use layer::Layer;
pub use layers::{Conv2d, Dense, Flatten, MaxPool2, Relu, ResidualDense};
pub use loss::{Loss, Mse};
pub use network::{PredictWorkspace, Sequential};
pub use optimizer::{Adam, Optimizer, Sgd};
pub use tensor::Tensor;
pub use trainer::{train, TrainConfig, TrainHistory};

//! Crash-safe persistence of the server's fleet. The spool directory is
//! the server's only durable state; every write lands atomically
//! (tmp + rename), so a `kill -9` at any instant leaves either the old
//! or the new file — never a torn one — and `dlpic-serve --resume <dir>`
//! continues every job bit-identically from its last spooled wave.
//!
//! Layout:
//!
//! ```text
//! <spool>/meta.json                  fleet manifest (jobs, runs, states)
//! <spool>/<job-id>/run-<k>.ckpt.json in-flight session checkpoint (v1)
//! <spool>/<job-id>/run-<k>.done.json finished-run summary (history, …)
//! ```
//!
//! A run's durable state is read back by precedence: a `done` file wins
//! (the run finished), else a checkpoint resumes mid-flight, else the
//! manifest's embedded spec re-queues it from step 0. Checkpoints of
//! finished runs are deleted once their `done` file is in place.

use std::path::{Path, PathBuf};

use dlpic_repro::engine::json::{obj, Json};
use dlpic_repro::engine::{Checkpoint, ScenarioSpec};

use crate::error::ServeError;
use crate::job::JobRequest;
use crate::protocol::ProtoError;

const MANIFEST_FORMAT: &str = "dlpic-serve-spool";
const MANIFEST_VERSION: f64 = 1.0;

/// One job as recorded in the manifest.
#[derive(Debug, Clone)]
pub struct SpoolJob {
    /// Server-assigned id (`job-0001`).
    pub id: String,
    /// Fair-scheduling queue the job belongs to.
    pub tenant: String,
    /// The original request (backend, source, budget, stop policy).
    pub request: JobRequest,
    /// Client-supplied idempotency key, so dedupe survives a restart.
    pub job_key: Option<String>,
    /// Per-run durable state.
    pub runs: Vec<SpoolRun>,
}

/// One run of a job as recorded in the manifest.
#[derive(Debug, Clone)]
pub struct SpoolRun {
    /// Display name (the expanded spec's name).
    pub name: String,
    /// `queued`, `active`, `done`, `stopped`, `cancelled` or `failed`.
    pub state: String,
    /// The expanded spec — what re-queues the run when no checkpoint
    /// exists yet.
    pub spec: Option<ScenarioSpec>,
    /// Failure detail for `failed` runs.
    pub error: Option<String>,
}

/// A spool directory handle: path bookkeeping plus atomic reads/writes
/// of the manifest, checkpoints and results.
#[derive(Debug, Clone)]
pub struct Spool {
    dir: PathBuf,
}

impl Spool {
    /// Opens (creating if needed) a spool directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, ServeError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The spool directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn job_dir(&self, job: &str) -> PathBuf {
        self.dir.join(job)
    }

    /// Path of a run's in-flight checkpoint.
    pub fn checkpoint_path(&self, job: &str, run: usize) -> PathBuf {
        self.job_dir(job).join(format!("run-{run}.ckpt.json"))
    }

    /// Path of a run's finished-summary file.
    pub fn done_path(&self, job: &str, run: usize) -> PathBuf {
        self.job_dir(job).join(format!("run-{run}.done.json"))
    }

    /// Atomically replaces the fleet manifest.
    pub fn save_manifest(&self, next_job: u64, jobs: &[SpoolJob]) -> Result<(), ServeError> {
        let doc = obj(vec![
            ("format", Json::Str(MANIFEST_FORMAT.into())),
            ("version", Json::Num(MANIFEST_VERSION)),
            ("next_job", Json::Num(next_job as f64)),
            ("jobs", Json::Arr(jobs.iter().map(job_to_json).collect())),
        ]);
        atomic_write(&self.dir.join("meta.json"), &doc.to_pretty())
    }

    /// Loads the fleet manifest; `(next_job, jobs)`. Every failure names
    /// the offending file — "bad-json" alone is useless when the operator
    /// is deciding which spool file to inspect or delete.
    pub fn load_manifest(&self) -> Result<(u64, Vec<SpoolJob>), ServeError> {
        let path = self.dir.join("meta.json");
        let name_file = |what: String| -> ServeError {
            ProtoError::new("bad-spool", format!("{}: {what}", path.display())).into()
        };
        let text = std::fs::read_to_string(&path)
            .map_err(|e| name_file(format!("cannot read manifest: {e}")))?;
        let doc = Json::parse(&text).map_err(|e| name_file(format!("bad json: {}", e.message)))?;
        let format = doc
            .field("format")
            .map_err(|e| name_file(e.message.clone()))?;
        if format.as_str().map_err(ProtoError::from)? != MANIFEST_FORMAT {
            return Err(name_file("not a dlpic-serve spool manifest".into()));
        }
        let next_job = doc
            .field("next_job")
            .and_then(Json::as_u64)
            .map_err(ProtoError::from)?;
        let jobs = doc
            .field("jobs")
            .and_then(Json::as_arr)
            .map_err(ProtoError::from)?
            .iter()
            .map(job_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok((next_job, jobs))
    }

    /// Atomically writes a run's mid-flight checkpoint.
    pub fn write_checkpoint(
        &self,
        job: &str,
        run: usize,
        checkpoint: &Checkpoint,
    ) -> Result<(), ServeError> {
        std::fs::create_dir_all(self.job_dir(job))?;
        checkpoint.write_file(self.checkpoint_path(job, run))?;
        Ok(())
    }

    /// Reads a run's mid-flight checkpoint.
    pub fn read_checkpoint(&self, job: &str, run: usize) -> Result<Checkpoint, ServeError> {
        Ok(Checkpoint::read_file(self.checkpoint_path(job, run))?)
    }

    /// True when the run has a spooled checkpoint.
    pub fn has_checkpoint(&self, job: &str, run: usize) -> bool {
        self.checkpoint_path(job, run).exists()
    }

    /// Atomically writes a run's finished summary and drops its now
    /// redundant checkpoint.
    pub fn write_result(&self, job: &str, run: usize, result: &Json) -> Result<(), ServeError> {
        std::fs::create_dir_all(self.job_dir(job))?;
        atomic_write(&self.done_path(job, run), &result.to_pretty())?;
        let _ = std::fs::remove_file(self.checkpoint_path(job, run));
        Ok(())
    }

    /// Reads a run's finished summary.
    pub fn read_result(&self, job: &str, run: usize) -> Result<Json, ServeError> {
        let text = std::fs::read_to_string(self.done_path(job, run))?;
        Ok(Json::parse(&text).map_err(ProtoError::from)?)
    }

    /// True when the run has a finished summary on disk.
    pub fn has_result(&self, job: &str, run: usize) -> bool {
        self.done_path(job, run).exists()
    }

    /// Drops a run's spool files (cancelled runs keep the spool clean).
    pub fn remove_run(&self, job: &str, run: usize) {
        let _ = std::fs::remove_file(self.checkpoint_path(job, run));
        let _ = std::fs::remove_file(self.done_path(job, run));
    }

    /// Garbage-collects the spool against the manifest just written:
    /// drops job directories the manifest no longer mentions, stray
    /// `.tmp` files from interrupted atomic writes, and checkpoints of
    /// runs that reached a final state (their `done` file, when one
    /// exists, is the record). Best-effort — GC never fails a flush.
    pub fn gc(&self, jobs: &[SpoolJob]) {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            if path.extension().is_some_and(|e| e == "tmp") {
                let _ = std::fs::remove_file(&path);
                continue;
            }
            if !path.is_dir() {
                continue;
            }
            match jobs.iter().find(|j| j.id == name) {
                None => {
                    let _ = std::fs::remove_dir_all(&path);
                }
                Some(job) => {
                    for (k, run) in job.runs.iter().enumerate() {
                        let final_state =
                            matches!(run.state.as_str(), "done" | "stopped" | "cancelled");
                        if final_state {
                            let _ = std::fs::remove_file(self.checkpoint_path(&job.id, k));
                        }
                    }
                    if let Ok(inner) = std::fs::read_dir(&path) {
                        for file in inner.flatten() {
                            if file.path().extension().is_some_and(|e| e == "tmp") {
                                let _ = std::fs::remove_file(file.path());
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Write-to-sibling-then-rename: the same atomicity discipline as
/// [`Checkpoint::write_file`], for manifest and result documents.
fn atomic_write(path: &Path, text: &str) -> Result<(), ServeError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

fn job_to_json(job: &SpoolJob) -> Json {
    let mut fields = vec![
        ("id", Json::Str(job.id.clone())),
        ("tenant", Json::Str(job.tenant.clone())),
        ("request", job.request.to_json_value()),
    ];
    if let Some(key) = &job.job_key {
        fields.push(("job_key", Json::Str(key.clone())));
    }
    fields.push((
        "runs",
        Json::Arr(
            job.runs
                .iter()
                .map(|run| {
                    let mut fields = vec![
                        ("name", Json::Str(run.name.clone())),
                        ("state", Json::Str(run.state.clone())),
                    ];
                    if let Some(spec) = &run.spec {
                        fields.push(("spec", spec.to_json_value()));
                    }
                    if let Some(error) = &run.error {
                        fields.push(("error", Json::Str(error.clone())));
                    }
                    obj(fields)
                })
                .collect(),
        ),
    ));
    obj(fields)
}

fn job_from_json(doc: &Json) -> Result<SpoolJob, ServeError> {
    let run_from_json = |doc: &Json| -> Result<SpoolRun, ServeError> {
        Ok(SpoolRun {
            name: doc
                .field("name")
                .and_then(Json::as_str)
                .map_err(ProtoError::from)?
                .to_string(),
            state: doc
                .field("state")
                .and_then(Json::as_str)
                .map_err(ProtoError::from)?
                .to_string(),
            spec: match doc.get("spec") {
                Some(spec) => Some(ScenarioSpec::from_json_value(spec)?),
                None => None,
            },
            error: match doc.get("error") {
                Some(e) => Some(e.as_str().map_err(ProtoError::from)?.to_string()),
                None => None,
            },
        })
    };
    Ok(SpoolJob {
        id: doc
            .field("id")
            .and_then(Json::as_str)
            .map_err(ProtoError::from)?
            .to_string(),
        tenant: doc
            .field("tenant")
            .and_then(Json::as_str)
            .map_err(ProtoError::from)?
            .to_string(),
        request: JobRequest::from_json_value(doc.field("request").map_err(ProtoError::from)?)?,
        job_key: match doc.get("job_key") {
            Some(k) => Some(k.as_str().map_err(ProtoError::from)?.to_string()),
            None => None,
        },
        runs: doc
            .field("runs")
            .and_then(Json::as_arr)
            .map_err(ProtoError::from)?
            .iter()
            .map(run_from_json)
            .collect::<Result<Vec<_>, _>>()?,
    })
}

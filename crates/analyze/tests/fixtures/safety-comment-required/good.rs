//! Fixture: every `unsafe` justified — a `# Safety` doc section on the
//! unsafe fn (attributes may sit between it and the fn) and a
//! `// SAFETY:` comment on the call-site block.

/// Sums the first `n` elements without bounds checks.
///
/// # Safety
///
/// Caller must guarantee `n <= v.len()`.
#[inline]
pub unsafe fn sum_unchecked(v: &[f32], n: usize) -> f32 {
    let mut acc = 0.0;
    for i in 0..n {
        acc += *v.get_unchecked(i);
    }
    acc
}

pub fn sum(v: &[f32]) -> f32 {
    // SAFETY: n is exactly v.len(), so every index is in bounds.
    unsafe { sum_unchecked(v, v.len()) }
}

//! Stochastic gradient descent with optional momentum.

use crate::network::Sequential;
use crate::optimizer::Optimizer;

/// Plain SGD: `p ← p − lr·g`, optionally with heavy-ball momentum.
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables).
    pub momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates plain SGD.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Creates SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, net: &mut Sequential) {
        let lr = self.lr;
        let mu = self.momentum;
        let mut idx = 0;
        let velocity = &mut self.velocity;
        net.visit_params(&mut |p, g| {
            if mu == 0.0 {
                for (pv, gv) in p.iter_mut().zip(g.iter()) {
                    *pv -= lr * gv;
                }
            } else {
                if velocity.len() <= idx {
                    velocity.push(vec![0.0; p.len()]);
                }
                let v = &mut velocity[idx];
                debug_assert_eq!(v.len(), p.len(), "parameter layout changed between steps");
                for ((pv, gv), vv) in p.iter_mut().zip(g.iter()).zip(v.iter_mut()) {
                    *vv = mu * *vv - lr * gv;
                    *pv += *vv;
                }
            }
            idx += 1;
        });
    }

    fn name(&self) -> &'static str {
        "sgd"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Init;
    use crate::layers::Dense;
    use crate::loss::Mse;
    use crate::tensor::Tensor;

    /// Builds a 1-parameter problem: fit y = 2x with a single 1→1 dense.
    fn one_weight_problem() -> (Sequential, Tensor, Tensor) {
        let net = Sequential::new().push(Dense::new(1, 1, Init::Zeros, 0));
        let x = Tensor::new(vec![1.0, 2.0, -1.0, 0.5], &[4, 1]);
        let y = Tensor::new(vec![2.0, 4.0, -2.0, 1.0], &[4, 1]);
        (net, x, y)
    }

    #[test]
    fn sgd_converges_on_linear_fit() {
        let (mut net, x, y) = one_weight_problem();
        let mut opt = Sgd::new(0.1);
        for _ in 0..200 {
            net.compute_gradients(&Mse, &x, &y);
            opt.step(&mut net);
        }
        let final_loss = net.compute_gradients(&Mse, &x, &y);
        assert!(final_loss < 1e-6, "loss {final_loss}");
    }

    #[test]
    fn momentum_accelerates_on_same_problem() {
        let run = |mut opt: Sgd| -> f32 {
            let (mut net, x, y) = one_weight_problem();
            for _ in 0..25 {
                net.compute_gradients(&Mse, &x, &y);
                opt.step(&mut net);
            }
            let (.., loss) = (0, net.compute_gradients(&Mse, &x, &y));
            loss
        };
        let plain = run(Sgd::new(0.02));
        let heavy = run(Sgd::with_momentum(0.02, 0.9));
        assert!(heavy < plain, "momentum {heavy} vs plain {plain}");
    }
}

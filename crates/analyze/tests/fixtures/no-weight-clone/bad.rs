//! Fixture: weight sets cloned per session. Every one of these turns a
//! shared-fleet deployment into N private copies of the same weights.

pub struct Engine {
    model_1d: Bundle,
}

impl Engine {
    pub fn spawn(&self, bundle: &Bundle, net: &Network) -> Vec<Bundle> {
        let mine = bundle.clone();
        let also_mine = self.model_1d.clone();
        let trained_network = net.clone();
        let _ = trained_network;
        vec![mine, also_mine]
    }
}

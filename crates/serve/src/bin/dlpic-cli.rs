//! The control-plane CLI: submit jobs to a running `dlpic-serve`, watch
//! their sample streams, poll status, fetch results, cancel, drain.
//!
//! ```sh
//! dlpic-cli submit --addr 127.0.0.1:7700 --job '{"backend":"dl-1d","sweep":{…}}'
//! dlpic-cli watch  --addr 127.0.0.1:7700 job-0001
//! dlpic-cli wait   --addr 127.0.0.1:7700 job-0001   # block, then print results
//! dlpic-cli drain  --addr 127.0.0.1:7700
//! ```
//!
//! Every subcommand prints the server's JSON to stdout, one document (or
//! one event) per line, so output pipes straight into `jq`-style tools.

use std::time::Duration;

use dlpic_repro::engine::json::Json;
use dlpic_serve::client::Client;
use dlpic_serve::job::JobRequest;
use dlpic_serve::protocol::ProtoError;
use dlpic_serve::ServeError;

fn usage() -> ! {
    eprintln!(
        "usage: dlpic-cli <submit|status|watch|cancel|drain|result|wait> --addr ADDR [args]\n\
         \x20 submit --addr A [--tenant T] (--job JSON | --job-file PATH)\n\
         \x20 status --addr A [JOB]\n\
         \x20 watch  --addr A JOB\n\
         \x20 cancel --addr A JOB\n\
         \x20 drain  --addr A\n\
         \x20 result --addr A JOB [RUN]\n\
         \x20 wait   --addr A JOB"
    );
    std::process::exit(2);
}

struct Args {
    addr: Option<String>,
    tenant: String,
    job_json: Option<String>,
    positional: Vec<String>,
}

fn parse_args(mut args: std::env::Args) -> Args {
    let mut out = Args {
        addr: None,
        tenant: "default".into(),
        job_json: None,
        positional: Vec::new(),
    };
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => out.addr = Some(value("--addr")),
            "--tenant" => out.tenant = value("--tenant"),
            "--job" => out.job_json = Some(value("--job")),
            "--job-file" => {
                let path = value("--job-file");
                out.job_json = Some(std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(1);
                }));
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown flag `{other}`");
                usage()
            }
            other => out.positional.push(other.to_string()),
        }
    }
    out
}

fn run() -> Result<(), ServeError> {
    let mut env_args = std::env::args();
    let _ = env_args.next();
    let Some(command) = env_args.next() else {
        usage()
    };
    let args = parse_args(env_args);
    let addr = args.addr.clone().unwrap_or_else(|| {
        eprintln!("--addr is required");
        usage()
    });
    let mut client = Client::connect(&addr)?;
    match command.as_str() {
        "submit" => {
            let text = args.job_json.clone().unwrap_or_else(|| {
                eprintln!("submit needs --job JSON or --job-file PATH");
                usage()
            });
            let doc = Json::parse(&text).map_err(ProtoError::from)?;
            let job = JobRequest::from_json_value(&doc)?;
            let (id, runs) = client.submit(&job, &args.tenant)?;
            println!("{{\"job\":{:?},\"runs\":{runs}}}", id);
        }
        "status" => {
            let doc = client.status(args.positional.first().map(String::as_str))?;
            println!("{}", doc.to_compact());
        }
        "watch" => {
            let job = args.positional.first().unwrap_or_else(|| usage());
            client.watch(job, |event| println!("{}", event.to_compact()))?;
        }
        "cancel" => {
            let job = args.positional.first().unwrap_or_else(|| usage());
            let n = client.cancel(job)?;
            println!("{{\"cancelled\":{n}}}");
        }
        "drain" => {
            client.drain()?;
            println!("{{\"draining\":true}}");
        }
        "result" => {
            let job = args.positional.first().unwrap_or_else(|| usage());
            let run = args.positional.get(1).map(|r| {
                r.parse().unwrap_or_else(|_| {
                    eprintln!("RUN must be an index");
                    usage()
                })
            });
            for result in client.results(job, run)? {
                println!(
                    "{{\"run\":{},\"name\":{:?},\"state\":{:?},\"summary\":{}}}",
                    result.run,
                    result.name,
                    result.state,
                    result.summary.to_compact()
                );
            }
        }
        "wait" => {
            let job = args.positional.first().unwrap_or_else(|| usage());
            for result in client.wait_for(job, Duration::from_millis(50))? {
                println!(
                    "{{\"run\":{},\"name\":{:?},\"state\":{:?},\"summary\":{}}}",
                    result.run,
                    result.name,
                    result.state,
                    result.summary.to_compact()
                );
            }
        }
        _ => usage(),
    }
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("dlpic-cli: {e}");
        std::process::exit(1);
    }
}

//! The in-memory dataset: phase-space histograms paired with electric
//! fields.

use dlpic_core::builder::InputKind;
use dlpic_core::normalize::NormStats;
use dlpic_core::phase_space::{BinningShape, PhaseGridSpec};
use dlpic_nn::data::Dataset;
use dlpic_nn::tensor::Tensor;

/// A flat collection of (histogram, E-field) sample pairs.
#[derive(Debug, Clone)]
pub struct PhaseDataset {
    /// Histogram geometry.
    pub spec: PhaseGridSpec,
    /// Binning order used to build the histograms.
    pub binning: BinningShape,
    /// Field-grid width (64 in the paper).
    pub e_cells: usize,
    inputs: Vec<f32>,
    targets: Vec<f32>,
    n: usize,
}

impl PhaseDataset {
    /// Creates an empty dataset.
    pub fn new(spec: PhaseGridSpec, binning: BinningShape, e_cells: usize) -> Self {
        assert!(e_cells > 0, "field grid must have cells");
        Self {
            spec,
            binning,
            e_cells,
            inputs: Vec::new(),
            targets: Vec::new(),
            n: 0,
        }
    }

    /// Pre-reserves room for `n` more samples (the generators know their
    /// harvest length up front; this keeps the push loop re-growth-free).
    pub fn reserve(&mut self, n: usize) {
        self.inputs.reserve(n * self.spec.cells());
        self.targets.reserve(n * self.e_cells);
    }

    /// Appends one sample.
    ///
    /// # Panics
    /// Panics if slice widths disagree with the dataset geometry.
    pub fn push(&mut self, histogram: &[f32], efield: &[f64]) {
        assert_eq!(
            histogram.len(),
            self.spec.cells(),
            "histogram width mismatch"
        );
        assert_eq!(efield.len(), self.e_cells, "e-field width mismatch");
        self.inputs.extend_from_slice(histogram);
        self.targets.extend(efield.iter().map(|&v| v as f32));
        self.n += 1;
    }

    /// Appends every sample of another dataset with identical geometry.
    ///
    /// # Panics
    /// Panics on geometry mismatch.
    pub fn extend(&mut self, other: &PhaseDataset) {
        assert_eq!(self.spec, other.spec, "phase-grid mismatch");
        assert_eq!(self.binning, other.binning, "binning mismatch");
        assert_eq!(self.e_cells, other.e_cells, "field width mismatch");
        self.inputs.extend_from_slice(&other.inputs);
        self.targets.extend_from_slice(&other.targets);
        self.n += other.n;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when no samples are stored.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Raw input block (`n × cells`).
    pub fn inputs(&self) -> &[f32] {
        &self.inputs
    }

    /// Raw target block (`n × e_cells`).
    pub fn targets(&self) -> &[f32] {
        &self.targets
    }

    /// The histogram of sample `i`.
    pub fn input_row(&self, i: usize) -> &[f32] {
        let w = self.spec.cells();
        &self.inputs[i * w..(i + 1) * w]
    }

    /// The E-field of sample `i`.
    pub fn target_row(&self, i: usize) -> &[f32] {
        &self.targets[i * self.e_cells..(i + 1) * self.e_cells]
    }

    /// Input min/max statistics (paper Eq. 5 is computed on the *training*
    /// portion and then applied everywhere).
    pub fn input_norm_stats(&self) -> NormStats {
        NormStats::from_data(&self.inputs)
    }

    /// Largest |E| in the targets — the paper quotes "approximately 0.1"
    /// as the reference scale for Table I.
    pub fn max_abs_field(&self) -> f32 {
        self.targets.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// Builds a new dataset with the rows given by `indices`.
    pub fn select(&self, indices: &[usize]) -> Self {
        let mut out = Self::new(self.spec, self.binning, self.e_cells);
        for &i in indices {
            assert!(i < self.n, "index {i} out of range {}", self.n);
            out.inputs.extend_from_slice(self.input_row(i));
            out.targets.extend_from_slice(self.target_row(i));
            out.n += 1;
        }
        out
    }

    /// Converts into a trainable `dlpic_nn` dataset, applying the given
    /// normalization to the inputs and shaping them for the architecture
    /// (`Flat` → `[n, cells]`, `Image` → `[n, 1, nv, nx]`).
    pub fn to_nn_dataset(&self, norm: &NormStats, kind: InputKind) -> Dataset {
        let mut x = self.inputs.clone();
        norm.apply(&mut x);
        let x = match kind {
            InputKind::Flat => Tensor::new(x, &[self.n, self.spec.cells()]),
            InputKind::Image => Tensor::new(x, &[self.n, 1, self.spec.nv, self.spec.nx]),
        };
        let y = Tensor::new(self.targets.clone(), &[self.n, self.e_cells]);
        Dataset::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PhaseDataset {
        let spec = PhaseGridSpec::new(4, 2, -1.0, 1.0);
        let mut ds = PhaseDataset::new(spec, BinningShape::Ngp, 3);
        ds.push(&[1.0; 8], &[0.1, 0.2, 0.3]);
        ds.push(&[2.0; 8], &[-0.1, -0.2, -0.3]);
        ds
    }

    #[test]
    fn push_and_row_access() {
        let ds = tiny();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.input_row(1), &[2.0; 8]);
        assert_eq!(ds.target_row(0), &[0.1, 0.2, 0.3]);
        assert!((ds.max_abs_field() - 0.3).abs() < 1e-7);
    }

    #[test]
    fn norm_stats_span_inputs() {
        let ds = tiny();
        let stats = ds.input_norm_stats();
        assert_eq!(stats.min, 1.0);
        assert_eq!(stats.max, 2.0);
    }

    #[test]
    fn select_reorders_rows() {
        let ds = tiny();
        let sel = ds.select(&[1, 0, 1]);
        assert_eq!(sel.len(), 3);
        assert_eq!(sel.input_row(0), &[2.0; 8]);
        assert_eq!(sel.target_row(1), &[0.1, 0.2, 0.3]);
    }

    #[test]
    fn to_nn_dataset_shapes() {
        let ds = tiny();
        let norm = ds.input_norm_stats();
        let flat = ds.to_nn_dataset(&norm, InputKind::Flat);
        assert_eq!(flat.x.shape(), &[2, 8]);
        assert_eq!(flat.y.shape(), &[2, 3]);
        // Normalized inputs: row 0 all zeros, row 1 all ones.
        assert!(flat.x.row(0).iter().all(|&v| v == 0.0));
        assert!(flat.x.row(1).iter().all(|&v| v == 1.0));
        let img = ds.to_nn_dataset(&norm, InputKind::Image);
        assert_eq!(img.x.shape(), &[2, 1, 2, 4]);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = tiny();
        let b = tiny();
        a.extend(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.input_row(2), b.input_row(0));
    }

    #[test]
    #[should_panic(expected = "histogram width mismatch")]
    fn wrong_width_rejected() {
        let mut ds = tiny();
        ds.push(&[0.0; 5], &[0.0; 3]);
    }
}

//! Two-stream initialization (paper §II–III).
//!
//! > "We can initialize particle positions uniformly in space and particle
//! > velocities with Gaussian distribution (with mean velocity v0 and
//! > thermal spread vth)."
//!
//! Two loading strategies are provided:
//!
//! * [`Loading::Random`] — the paper's: positions uniform at random,
//!   velocities `±v0 + vth·N(0,1)`, instability seeded by shot noise.
//! * [`Loading::Quiet`] — deterministic equispaced positions with an
//!   optional sinusoidal displacement seed; used by tests that need a
//!   clean, reproducible single-mode excitation.

use crate::grid::Grid1D;
use crate::particles::Particles;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Particle loading strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Loading {
    /// Uniform random positions; Gaussian velocities. The paper's choice.
    Random,
    /// Equispaced positions per beam; exact beam velocities plus optional
    /// Gaussian thermal spread; optional sinusoidal displacement of
    /// amplitude `amplitude` in units of the box length on grid mode
    /// `mode` to seed the instability deterministically.
    Quiet {
        /// Seeded grid mode (0 disables the perturbation).
        mode: usize,
        /// Displacement amplitude as a fraction of the box length.
        amplitude: f64,
    },
}

/// Builder for the two counter-streaming electron beams.
#[derive(Debug, Clone)]
pub struct TwoStreamInit {
    /// Beam drift speed; beams move at `+v0` and `−v0`.
    pub v0: f64,
    /// Thermal spread added to each beam.
    pub vth: f64,
    /// Total number of macro-electrons (split evenly between beams).
    pub n_particles: usize,
    /// Loading strategy.
    pub loading: Loading,
    /// RNG seed (used by both loadings when they draw random numbers).
    pub seed: u64,
}

impl TwoStreamInit {
    /// Random loading with the paper's conventions.
    pub fn random(v0: f64, vth: f64, n_particles: usize, seed: u64) -> Self {
        Self {
            v0,
            vth,
            n_particles,
            loading: Loading::Random,
            seed,
        }
    }

    /// Quiet start with a seeded mode-1 perturbation.
    pub fn quiet(v0: f64, vth: f64, n_particles: usize, amplitude: f64, seed: u64) -> Self {
        Self {
            v0,
            vth,
            n_particles,
            loading: Loading::Quiet { mode: 1, amplitude },
            seed,
        }
    }

    /// Builds the particle buffer on the given grid.
    ///
    /// # Panics
    /// Panics if `n_particles` is zero or odd (the beams must be balanced
    /// so total momentum starts at zero).
    pub fn build(&self, grid: &Grid1D) -> Particles {
        assert!(self.n_particles > 0, "need particles");
        assert!(
            self.n_particles.is_multiple_of(2),
            "particle count must be even to balance the two beams"
        );
        let n = self.n_particles;
        let l = grid.length();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut x = Vec::with_capacity(n);
        let mut v = Vec::with_capacity(n);

        match self.loading {
            Loading::Random => {
                for i in 0..n {
                    x.push(rng.gen::<f64>() * l);
                    let beam = if i % 2 == 0 { self.v0 } else { -self.v0 };
                    v.push(beam + self.vth * gaussian(&mut rng));
                }
            }
            Loading::Quiet { mode, amplitude } => {
                let per_beam = n / 2;
                let k = grid.mode_wavenumber(mode.max(1));
                for b in 0..2 {
                    let sign = if b == 0 { 1.0 } else { -1.0 };
                    for i in 0..per_beam {
                        // Offset the second beam half a spacing to avoid
                        // perfect charge cancellation artifacts.
                        let x0 = (i as f64 + 0.25 + 0.5 * b as f64) / per_beam as f64 * l;
                        let xp = if mode > 0 && amplitude != 0.0 {
                            grid.wrap_position(x0 + amplitude * l * (k * x0).sin())
                        } else {
                            x0
                        };
                        x.push(xp);
                        let vt = if self.vth > 0.0 {
                            self.vth * gaussian(&mut rng)
                        } else {
                            0.0
                        };
                        v.push(sign * self.v0 + vt);
                    }
                }
            }
        }
        Particles::electrons_normalized(x, v, l)
    }
}

/// One population of a [`MultiBeamInit`] load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeamSpec {
    /// Mean (drift) velocity of this population.
    pub drift: f64,
    /// Thermal spread of this population.
    pub vth: f64,
    /// Fraction of the total macro-particle count this population
    /// carries; the weights of an init must sum to ≈ 1.
    pub weight: f64,
}

/// Builder for an arbitrary superposition of drifting Maxwellian
/// populations — the general loading behind the engine's scenario registry
/// (bump-on-tail, asymmetric beams, multi-temperature plasmas).
/// [`TwoStreamInit`] is the symmetric two-beam special case.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiBeamInit {
    /// The populations; macro-particles are apportioned by `weight`.
    pub beams: Vec<BeamSpec>,
    /// Total number of macro-electrons across all populations.
    pub n_particles: usize,
    /// Loading strategy (applies to every population).
    pub loading: Loading,
    /// RNG seed.
    pub seed: u64,
}

impl MultiBeamInit {
    /// The bump-on-tail configuration: a bulk Maxwellian at rest plus a
    /// fast tenuous beam carrying `beam_fraction` of the density.
    pub fn bump_on_tail(
        bulk_vth: f64,
        beam_v: f64,
        beam_vth: f64,
        beam_fraction: f64,
        n_particles: usize,
        seed: u64,
    ) -> Self {
        Self {
            beams: vec![
                BeamSpec {
                    drift: 0.0,
                    vth: bulk_vth,
                    weight: 1.0 - beam_fraction,
                },
                BeamSpec {
                    drift: beam_v,
                    vth: beam_vth,
                    weight: beam_fraction,
                },
            ],
            n_particles,
            loading: Loading::Random,
            seed,
        }
    }

    /// Builds the particle buffer on the given grid. Macro-particle counts
    /// per population are `weight·n` rounded, with the largest population
    /// absorbing the rounding remainder, so the total is exactly
    /// `n_particles`.
    ///
    /// # Panics
    /// Panics if there are no beams, no particles, weights are
    /// non-positive, or the weights do not sum to ≈ 1.
    pub fn build(&self, grid: &Grid1D) -> Particles {
        assert!(!self.beams.is_empty(), "need at least one beam");
        assert!(self.n_particles > 0, "need particles");
        assert!(
            self.beams.iter().all(|b| b.weight > 0.0 && b.vth >= 0.0),
            "beam weights must be positive and spreads non-negative"
        );
        let total_w: f64 = self.beams.iter().map(|b| b.weight).sum();
        assert!(
            (total_w - 1.0).abs() < 1e-9,
            "beam weights must sum to 1, got {total_w}"
        );

        // Apportion counts; largest population takes the remainder.
        let mut counts: Vec<usize> = self
            .beams
            .iter()
            .map(|b| (b.weight * self.n_particles as f64).round() as usize)
            .collect();
        let assigned: usize = counts.iter().sum();
        let largest = self
            .beams
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.weight.total_cmp(&b.1.weight))
            .map(|(i, _)| i)
            .expect("nonempty");
        if assigned > self.n_particles {
            let excess = assigned - self.n_particles;
            assert!(
                counts[largest] > excess,
                "weights too skewed for the particle count"
            );
            counts[largest] -= excess;
        } else {
            counts[largest] += self.n_particles - assigned;
        }

        let l = grid.length();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut x = Vec::with_capacity(self.n_particles);
        let mut v = Vec::with_capacity(self.n_particles);
        for (beam, &count) in self.beams.iter().zip(&counts) {
            match self.loading {
                Loading::Random => {
                    for _ in 0..count {
                        x.push(rng.gen::<f64>() * l);
                        v.push(beam.drift + beam.vth * gaussian(&mut rng));
                    }
                }
                Loading::Quiet { mode, amplitude } => {
                    let k = grid.mode_wavenumber(mode.max(1));
                    for i in 0..count {
                        let x0 = (i as f64 + 0.5) / count as f64 * l;
                        let xp = if mode > 0 && amplitude != 0.0 {
                            grid.wrap_position(x0 + amplitude * l * (k * x0).sin())
                        } else {
                            x0
                        };
                        x.push(xp);
                        let vt = if beam.vth > 0.0 {
                            beam.vth * gaussian(&mut rng)
                        } else {
                            0.0
                        };
                        v.push(beam.drift + vt);
                    }
                }
            }
        }
        Particles::electrons_normalized(x, v, l)
    }
}

/// Standard normal deviate by Box–Muller (rand 0.8 does not ship Gaussian
/// sampling without `rand_distr`; ten lines beat a dependency).
pub fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 > f64::MIN_POSITIVE {
            let u2: f64 = rng.gen();
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Grid1D {
        Grid1D::paper()
    }

    #[test]
    fn random_loading_balances_beams() {
        let p = TwoStreamInit::random(0.2, 0.0, 10_000, 7).build(&grid());
        assert_eq!(p.len(), 10_000);
        let plus = p.v.iter().filter(|v| **v > 0.0).count();
        assert_eq!(plus, 5_000);
        // Cold beams: momentum exactly zero by construction.
        assert!(p.total_momentum().abs() < 1e-12);
    }

    #[test]
    fn positions_inside_box() {
        let g = grid();
        for loading in [
            Loading::Random,
            Loading::Quiet {
                mode: 1,
                amplitude: 1e-3,
            },
        ] {
            let init = TwoStreamInit {
                v0: 0.2,
                vth: 0.01,
                n_particles: 2_000,
                loading,
                seed: 3,
            };
            let p = init.build(&g);
            for &x in &p.x {
                assert!((0.0..g.length()).contains(&x), "x = {x}");
            }
        }
    }

    #[test]
    fn thermal_spread_statistics() {
        let vth = 0.01;
        let p = TwoStreamInit::random(0.2, vth, 200_000, 42).build(&grid());
        // Split by beam and check the spread of one beam.
        let beam_plus: Vec<f64> = p.v.iter().copied().filter(|v| *v > 0.0).collect();
        let mean = beam_plus.iter().sum::<f64>() / beam_plus.len() as f64;
        let var = beam_plus
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / beam_plus.len() as f64;
        assert!((mean - 0.2).abs() < 1e-3, "beam mean {mean}");
        assert!(
            (var.sqrt() - vth).abs() < 5e-4,
            "beam spread {}",
            var.sqrt()
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = TwoStreamInit::random(0.2, 0.025, 1_000, 11).build(&grid());
        let b = TwoStreamInit::random(0.2, 0.025, 1_000, 11).build(&grid());
        assert_eq!(a, b);
        let c = TwoStreamInit::random(0.2, 0.025, 1_000, 12).build(&grid());
        assert_ne!(a.x, c.x);
    }

    #[test]
    fn quiet_start_cold_beams_have_exact_velocities() {
        let p = TwoStreamInit::quiet(0.3, 0.0, 1_000, 0.0, 0).build(&grid());
        for &v in &p.v {
            assert!((v.abs() - 0.3).abs() < 1e-15);
        }
        assert!(p.total_momentum().abs() < 1e-12);
    }

    #[test]
    fn quiet_perturbation_displaces_particles() {
        let g = grid();
        let flat = TwoStreamInit::quiet(0.2, 0.0, 2_000, 0.0, 0).build(&g);
        let pert = TwoStreamInit::quiet(0.2, 0.0, 2_000, 1e-2, 0).build(&g);
        let max_shift = flat
            .x
            .iter()
            .zip(&pert.x)
            .map(|(a, b)| {
                let d = (a - b).abs();
                d.min(g.length() - d)
            })
            .fold(0.0f64, f64::max);
        assert!(max_shift > 1e-3, "perturbation had no effect");
        assert!(
            max_shift < 0.05 * g.length(),
            "perturbation too large: {max_shift}"
        );
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_particle_count_rejected() {
        let _ = TwoStreamInit::random(0.2, 0.0, 999, 0).build(&grid());
    }

    #[test]
    fn multi_beam_counts_and_moments() {
        let g = grid();
        let init = MultiBeamInit::bump_on_tail(0.05, 0.3, 0.01, 0.1, 30_000, 9);
        let p = init.build(&g);
        assert_eq!(p.len(), 30_000);
        // ~10% of particles in the fast beam around v = 0.3.
        let beam = p.v.iter().filter(|v| **v > 0.2).count();
        assert!(
            (beam as f64 / 30_000.0 - 0.1).abs() < 0.02,
            "beam fraction {}",
            beam as f64 / 30_000.0
        );
        // Net momentum equals the beam's drift contribution.
        let p_total = p.total_momentum();
        let expected = 0.1 * 0.3 * p.mass() * 30_000.0;
        assert!(
            (p_total - expected).abs() / expected.abs() < 0.1,
            "momentum {p_total} vs expected {expected}"
        );
        for &xi in &p.x {
            assert!((0.0..g.length()).contains(&xi));
        }
    }

    #[test]
    fn multi_beam_matches_two_stream_structure() {
        // A 50/50 symmetric multi-beam load carries the same first moments
        // as the dedicated two-stream loading.
        let g = grid();
        let init = MultiBeamInit {
            beams: vec![
                BeamSpec {
                    drift: 0.2,
                    vth: 0.0,
                    weight: 0.5,
                },
                BeamSpec {
                    drift: -0.2,
                    vth: 0.0,
                    weight: 0.5,
                },
            ],
            n_particles: 10_000,
            loading: Loading::Random,
            seed: 3,
        };
        let p = init.build(&g);
        assert_eq!(p.len(), 10_000);
        assert!(p.total_momentum().abs() < 1e-12);
        let plus = p.v.iter().filter(|v| **v > 0.0).count();
        assert_eq!(plus, 5_000);
    }

    #[test]
    fn multi_beam_quiet_loading_is_deterministic() {
        let g = grid();
        let init = MultiBeamInit {
            beams: vec![BeamSpec {
                drift: 0.0,
                vth: 0.05,
                weight: 1.0,
            }],
            n_particles: 2_000,
            loading: Loading::Quiet {
                mode: 1,
                amplitude: 1e-3,
            },
            seed: 5,
        };
        assert_eq!(init.build(&g), init.build(&g));
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn multi_beam_bad_weights_rejected() {
        let init = MultiBeamInit {
            beams: vec![BeamSpec {
                drift: 0.0,
                vth: 0.1,
                weight: 0.4,
            }],
            n_particles: 100,
            loading: Loading::Random,
            seed: 0,
        };
        let _ = init.build(&grid());
    }
}

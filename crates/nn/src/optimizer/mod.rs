//! Optimizers.
//!
//! [`Adam`] with learning rate 1e-4 is the paper's training configuration
//! (§IV.A); [`Sgd`] exists as a baseline and for tests that contrast the
//! two on ill-conditioned problems.

pub mod adam;
pub mod sgd;

pub use adam::Adam;
pub use sgd::Sgd;

use crate::network::Sequential;

/// An optimizer updates network parameters from their accumulated
/// gradients (then the caller zeroes the gradients via the next
/// `compute_gradients`).
pub trait Optimizer {
    /// Applies one update step.
    fn step(&mut self, net: &mut Sequential);

    /// Optimizer name for logs.
    fn name(&self) -> &'static str;
}

//! # `dlpic-serve`: simulation as a service
//!
//! The engine crates run simulations as library calls; this crate runs
//! them as a *service*. A long-lived daemon loads solver models once,
//! accepts jobs over a line-delimited JSON protocol (TCP or Unix
//! socket), multiplexes every admitted run in lockstep waves through
//! [`engine::WaveBatch`](dlpic_repro::engine::WaveBatch) — so co-resident
//! DL jobs share one batched inference per wave, exactly like an
//! [`Ensemble`](dlpic_repro::engine::Ensemble) — and spools v1
//! [`Checkpoint`](dlpic_repro::engine::Checkpoint)s so any job survives a
//! restart bit-identically.
//!
//! * [`protocol`] — the wire format: one JSON object per line, typed
//!   requests/responses/events, structured errors, hard line-length cap.
//! * [`job`] — what a client submits: a scenario or sweep, a backend, an
//!   optional step budget and an optional server-side early-stop policy.
//! * [`server`] — the daemon: acceptor + per-connection handlers + one
//!   scheduler thread that owns every session.
//! * [`spool`] — crash-safe persistence: atomic checkpoint files plus a
//!   `meta.json` fleet manifest, reloaded by `dlpic-serve --resume`.
//! * [`client`] — a blocking client library; the `dlpic-cli` binary is a
//!   thin wrapper over it.
//! * [`stats`] — overload-governance instrumentation: the scheduler's
//!   log-bucketed wave-latency histogram and per-spec circuit breakers
//!   backing budgeted admission and load shedding.
//!
//! ```no_run
//! use dlpic_serve::{client::Client, job::JobRequest, server::{Server, ServeConfig}};
//! use dlpic_repro::engine::{Backend, SweepSpec};
//! use dlpic_repro::core::Scale;
//!
//! let server = Server::start(ServeConfig::default().listen("127.0.0.1:0"))?;
//! let mut client = Client::connect(server.addr())?;
//! let sweep = SweepSpec::grid("two_stream", Scale::Smoke).seeds([1, 2, 3]);
//! let job = client.submit(&JobRequest::sweep(sweep, Backend::Dl1D), "demo")?;
//! client.drain()?;
//! server.wait();
//! # Ok::<(), dlpic_serve::ServeError>(())
//! ```

pub mod client;
pub mod job;
pub mod protocol;
pub mod server;
pub mod spool;
pub mod stats;

mod error;

pub use error::ServeError;

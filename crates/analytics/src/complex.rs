//! Minimal double-precision complex arithmetic.
//!
//! The reproduction deliberately avoids external numerics crates; the few
//! complex operations required by the FFT and by the dispersion-relation
//! solver are implemented here. The API mirrors the subset of `num_complex`
//! that is actually used so that a future swap would be mechanical.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// Imaginary unit.
    pub const I: Self = Self { re: 0.0, im: 1.0 };
    /// Additive identity.
    pub const ZERO: Self = Self { re: 0.0, im: 0.0 };
    /// Multiplicative identity.
    pub const ONE: Self = Self { re: 1.0, im: 0.0 };

    /// Builds a complex number from Cartesian components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Builds a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Builds `r * exp(i * theta)`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self::new(r * theta.cos(), r * theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared magnitude `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude (uses `hypot` for numerical robustness).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex exponential `exp(z)`.
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        if self.re == 0.0 && self.im == 0.0 {
            return Self::ZERO;
        }
        let r = self.abs();
        // Stable half-angle formulation.
        let re = ((r + self.re) / 2.0).sqrt();
        let im = ((r - self.re) / 2.0).sqrt().copysign(self.im);
        Self::new(re, im)
    }

    /// Multiplicative inverse. Returns NaN components for zero input, like
    /// `1.0 / 0.0` does for floats.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Self::new(self.re / d, -self.im / d)
    }

    /// Integer power by repeated squaring.
    pub fn powi(self, mut n: i32) -> Self {
        if n < 0 {
            return self.powi(-n).inv();
        }
        let mut base = self;
        let mut acc = Self::ONE;
        while n > 0 {
            if n & 1 == 1 {
                acc *= base;
            }
            base *= base;
            n >>= 1;
        }
        acc
    }

    /// True if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Self::new(self.re * s, self.im * s)
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}{:+}i)", self.re, self.im)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}{:+.6}i", self.re, self.im)
    }
}

impl Add for Complex64 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Div for Complex64 {
    type Output = Self;
    // Division *is* multiplication by the inverse here.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }
}

impl Div<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        Self::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Self::from_real(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).abs() < EPS
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(3.0, -4.0);
        assert!(close(z + Complex64::ZERO, z));
        assert!(close(z * Complex64::ONE, z));
        assert!(close(z - z, Complex64::ZERO));
        assert!(close(z * z.inv(), Complex64::ONE));
        assert!(close(-(-z), z));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!(close(
            Complex64::I * Complex64::I,
            Complex64::from_real(-1.0)
        ));
    }

    #[test]
    fn abs_and_norm() {
        let z = Complex64::new(3.0, 4.0);
        assert!((z.abs() - 5.0).abs() < EPS);
        assert!((z.norm_sqr() - 25.0).abs() < EPS);
    }

    #[test]
    fn conjugate_multiplication_gives_norm() {
        let z = Complex64::new(1.5, -2.5);
        let p = z * z.conj();
        assert!((p.re - z.norm_sqr()).abs() < EPS);
        assert!(p.im.abs() < EPS);
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex64::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < EPS);
        assert!((z.arg() - 0.7).abs() < EPS);
    }

    #[test]
    fn exp_of_i_pi_is_minus_one() {
        let z = (Complex64::I * std::f64::consts::PI).exp();
        assert!((z.re + 1.0).abs() < EPS);
        assert!(z.im.abs() < 1e-12);
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[
            (4.0, 0.0),
            (-4.0, 0.0),
            (1.0, 1.0),
            (-3.0, -4.0),
            (0.0, 2.0),
        ] {
            let z = Complex64::new(re, im);
            let r = z.sqrt();
            assert!(close(r * r, z), "sqrt({z:?})^2 = {:?}", r * r);
            // Principal branch: non-negative real part.
            assert!(r.re >= -EPS);
        }
    }

    #[test]
    fn powi_matches_repeated_multiplication() {
        let z = Complex64::new(0.9, 0.4);
        let mut acc = Complex64::ONE;
        for n in 0..8 {
            assert!(close(z.powi(n), acc));
            acc *= z;
        }
        // Negative powers.
        assert!(close(z.powi(-2), (z * z).inv()));
    }

    #[test]
    fn division_matches_multiplication_by_inverse() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-0.5, 0.25);
        assert!(close(a / b, a * b.inv()));
        assert!(close((a / b) * b, a));
    }
}

//! The cold-beam numerical instability (paper Fig. 6) as a runnable
//! example.
//!
//! Two cold beams at `v0 = ±0.4` in the paper's box are *linearly stable*
//! (`k·v0 > 1` for every grid mode) — physically nothing should happen.
//! The explicit momentum-conserving PIC nevertheless heats: aliasing
//! between the beam modes and the grid drives the "cold-beam instability"
//! (Birdsall & Langdon ch. 8). This example demonstrates and quantifies
//! it, and — when a trained model is available — shows the DL-based PIC
//! gliding through unaffected, as the paper reports.
//!
//! ```sh
//! cargo run --release --example cold_beam
//! ```

use dlpic_repro::analytics::dispersion::TwoStreamDispersion;
use dlpic_repro::analytics::plot::{line_plot, scatter_density, PlotOptions};
use dlpic_repro::analytics::stats;
use dlpic_repro::core::ModelBundle;
use dlpic_repro::pic::presets::reduced_config;
use dlpic_repro::pic::simulation::Simulation;
use dlpic_repro::pic::solver::TraditionalSolver;

fn main() {
    let v0 = 0.4;
    println!("== cold-beam numerical instability, v0 = ±{v0}, vth = 0 ==\n");

    // Linear theory says: stable.
    let disp = TwoStreamDispersion::new(v0);
    let l = 2.0 * std::f64::consts::PI / 3.06;
    println!("linear growth rates of the first grid modes (all should be 0):");
    for m in 1..=4 {
        println!("  mode {m}: γ = {}", disp.mode_growth_rate(m, l));
    }

    let seed = 13;
    let (ppc, steps) = (1000, 200);
    let mut trad = Simulation::new(
        reduced_config(v0, 0.0, ppc, steps, seed),
        Box::new(TraditionalSolver::paper_default()),
    );
    trad.run();

    let (tx, tv) = trad.phase_space();
    println!(
        "\n{}",
        scatter_density(tx, tv, (0.0, l), (-0.6, 0.6), 64, 14,
            "Traditional PIC at t = 40: ripples = numerical instability")
    );

    let te = trad.history().total_energy_series("traditional");
    println!(
        "{}",
        line_plot(&[('*', &te)], &PlotOptions::titled("Total energy (should be flat!)"))
    );
    let ev = stats::relative_variation(&trad.history().total);
    let beam_spread = {
        let beam: Vec<f64> = tv.iter().copied().filter(|v| *v > 0.0).collect();
        stats::std_dev(&beam)
    };
    println!("energy variation  : {:.2}% (paper Fig. 6: visible rise)", ev * 100.0);
    println!("beam velocity spread at t = 40: {beam_spread:.4} (started at exactly 0)");

    // DL comparison when a trained model is on disk.
    let model = ["out/models/mlp-scaled.dlpb", "out/models/example-mlp-scaled.dlpb"]
        .iter()
        .find_map(|p| ModelBundle::load(p).ok());
    match model {
        Some(bundle) => {
            let mut dl = Simulation::new(
                reduced_config(v0, 0.0, ppc, steps, seed),
                Box::new(bundle.into_solver().expect("bundle -> solver")),
            );
            dl.run();
            let (dx, dv) = dl.phase_space();
            println!(
                "{}",
                scatter_density(dx, dv, (0.0, l), (-0.6, 0.6), 64, 14,
                    "DL-based PIC at t = 40: stable against the cold-beam instability")
            );
            let dl_spread = {
                let beam: Vec<f64> = dv.iter().copied().filter(|v| *v > 0.0).collect();
                stats::std_dev(&beam)
            };
            println!("DL beam velocity spread: {dl_spread:.4} vs traditional {beam_spread:.4}");
            println!(
                "DL momentum drift      : {:.2e} (the price the paper reports)",
                stats::max_drift(&dl.history().momentum)
            );
        }
        None => {
            println!("\n(no trained model found — run `--example train_field_solver` or");
            println!(" `cargo run -p dlpic-bench --release --bin fig6` for the DL comparison)");
        }
    }
}

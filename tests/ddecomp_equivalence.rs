//! Integration tests of the domain-decomposed PIC: the distributed run is
//! the *same algorithm* as the single-process baseline (identical physics,
//! different data layout), and the communication volumes behave as the
//! paper's §VII discussion predicts — the DL strategy's field solve needs
//! a fixed-size histogram all-reduce and nothing else.

use dlpic_repro::core::builder::ArchSpec;
use dlpic_repro::core::field_solver::DlFieldSolver;
use dlpic_repro::core::normalize::NormStats;
use dlpic_repro::core::phase_space::{BinningShape, PhaseGridSpec};
use dlpic_repro::ddecomp::sim::{DistConfig, DistSimulation};
use dlpic_repro::ddecomp::strategy::{GatherScatter, ReplicatedDl};
use dlpic_repro::pic::grid::Grid1D;
use dlpic_repro::pic::init::TwoStreamInit;
use dlpic_repro::pic::shape::Shape;
use dlpic_repro::pic::simulation::{PicConfig, Simulation};
use dlpic_repro::pic::solver::{PoissonKind, TraditionalSolver};

fn dist_config(n_ranks: usize, n_steps: usize) -> DistConfig {
    DistConfig {
        grid: Grid1D::paper(),
        init: TwoStreamInit::quiet(0.2, 0.0, 16_000, 1e-3, 5),
        dt: 0.2,
        n_steps,
        gather_shape: Shape::Cic,
        n_ranks,
        tracked_modes: vec![1],
    }
}

fn single_process_reference(n_steps: usize) -> Simulation {
    let cfg = PicConfig {
        grid: Grid1D::paper(),
        init: Some(TwoStreamInit::quiet(0.2, 0.0, 16_000, 1e-3, 5)),
        dt: 0.2,
        n_steps,
        gather_shape: Shape::Cic,
        tracked_modes: vec![1],
    };
    Simulation::new(
        cfg,
        Box::new(TraditionalSolver::new(
            Shape::Cic,
            PoissonKind::FiniteDifference,
            1.0,
        )),
    )
}

#[test]
fn distributed_matches_single_process_over_short_horizon() {
    // Identical algorithm, different summation order: series must agree
    // to tight tolerance over a horizon where round-off has not yet been
    // amplified by the instability.
    let n_steps = 30;
    let mut reference = single_process_reference(n_steps);
    reference.run();
    let ref_e1 = &reference.history().mode_amps[0];
    let ref_total = &reference.history().total;

    for n_ranks in [1, 2, 4, 8] {
        let mut dist = DistSimulation::new(
            dist_config(n_ranks, n_steps),
            Box::new(GatherScatter::new(Shape::Cic, 1.0)),
        );
        dist.run();
        let d_e1 = &dist.history().mode_amps[0];
        let d_total = &dist.history().total;
        assert_eq!(d_e1.len(), ref_e1.len());
        for (i, (a, b)) in d_e1.iter().zip(ref_e1).enumerate() {
            assert!(
                (a - b).abs() < 1e-9 + 1e-6 * b.abs(),
                "R={n_ranks} step {i}: E1 {a} vs {b}"
            );
        }
        for (i, (a, b)) in d_total.iter().zip(ref_total).enumerate() {
            assert!(
                (a - b).abs() < 1e-9 * b.abs().max(1.0),
                "R={n_ranks} step {i}: energy {a} vs {b}"
            );
        }
    }
}

#[test]
fn distributed_run_reproduces_growth_at_full_length() {
    use dlpic_repro::analytics::dispersion::TwoStreamDispersion;
    use dlpic_repro::analytics::fit::{fit_growth_rate, GrowthFitOptions};

    let mut dist = DistSimulation::new(
        dist_config(4, 200),
        Box::new(GatherScatter::new(Shape::Cic, 1.0)),
    );
    dist.run();
    let h = dist.history();
    let theory = TwoStreamDispersion::new(0.2).growth_rate(3.06);
    let fit = fit_growth_rate(&h.times, &h.mode_amps[0], GrowthFitOptions::default())
        .expect("growth detected");
    assert!(
        (fit.gamma - theory).abs() / theory < 0.2,
        "distributed γ = {} vs theory {theory}",
        fit.gamma
    );
    // Momentum still conserved across rank boundaries.
    for p in &h.momentum {
        assert!(p.abs() < 1e-8, "momentum {p}");
    }
}

fn tiny_dl_solver() -> DlFieldSolver {
    let spec = PhaseGridSpec::smoke();
    let arch = ArchSpec::Mlp {
        input: spec.cells(),
        hidden: vec![8],
        output: 64,
    };
    DlFieldSolver::new(
        arch.build(0),
        spec,
        BinningShape::Ngp,
        NormStats::identity(),
        arch.input_kind(),
        "dl-mlp",
    )
}

#[test]
fn dl_strategy_traffic_is_particle_count_independent() {
    // Double the particles: migration bytes grow, but the DL field-solve
    // traffic (histogram all-reduce) must not change by a single byte.
    let field_bytes = |n_particles: usize| -> u64 {
        let mut cfg = dist_config(4, 10);
        cfg.init = TwoStreamInit::quiet(0.2, 0.0, n_particles, 1e-3, 5);
        let mut dist = DistSimulation::new(cfg, Box::new(ReplicatedDl::new(tiny_dl_solver())));
        dist.run();
        let phases = dist.comm_phases();
        phases
            .iter()
            .filter(|(p, _)| *p == "hist-reduce" || *p == "hist-bcast")
            .map(|(_, s)| s.bytes)
            .sum()
    };
    assert_eq!(field_bytes(8_000), field_bytes(16_000));
}

#[test]
fn traditional_strategy_traffic_scales_with_grid() {
    // Twice the cells → roughly twice the gather/scatter bytes per step.
    let field_bytes = |ncells: usize| -> u64 {
        let cfg = DistConfig {
            grid: Grid1D::new(ncells, 2.0532),
            init: TwoStreamInit::quiet(0.2, 0.0, 8_000, 1e-3, 5),
            dt: 0.2,
            n_steps: 10,
            gather_shape: Shape::Cic,
            n_ranks: 4,
            tracked_modes: vec![],
        };
        let mut dist = DistSimulation::new(cfg, Box::new(GatherScatter::new(Shape::Cic, 1.0)));
        dist.run();
        dist.comm_phases()
            .iter()
            .filter(|(p, _)| *p == "rho-gather" || *p == "e-scatter")
            .map(|(_, s)| s.bytes)
            .sum()
    };
    let b64 = field_bytes(64);
    let b128 = field_bytes(128);
    let ratio = b128 as f64 / b64 as f64;
    assert!(
        (1.7..2.3).contains(&ratio),
        "expected ≈2× scaling, got {b64} → {b128} (×{ratio:.2})"
    );
}

#[test]
fn migration_volume_matches_ballistic_estimate() {
    // During the linear phase the fields are tiny, so the beams stream
    // ballistically: per step, the fraction of each rank's particles that
    // crosses a slab boundary is v0·Δt / slab_width. With 16 000
    // particles on 4 ranks (slab width 16·dx ≈ 0.513) at v0·Δt = 0.04,
    // that predicts ≈ 16 000 · 0.078 ≈ 1 250 migrations per step.
    let n_steps = 20;
    let mut dist = DistSimulation::new(
        dist_config(4, n_steps),
        Box::new(GatherScatter::new(Shape::Cic, 1.0)),
    );
    dist.run();
    let grid = Grid1D::paper();
    let slab_width = grid.dx() * 16.0;
    let predicted = 16_000.0 * (0.2 * 0.2 / slab_width) * n_steps as f64;
    let measured = dist.migrated_total() as f64;
    let rel = (measured - predicted).abs() / predicted;
    assert!(
        rel < 0.1,
        "migration {measured} vs ballistic estimate {predicted} ({:.0}% off)",
        rel * 100.0
    );
    // The DL strategy migrates too (its per-step volume depends on the
    // model's fields, so only existence is asserted here).
    let mut dl = DistSimulation::new(
        dist_config(4, n_steps),
        Box::new(ReplicatedDl::new(tiny_dl_solver())),
    );
    dl.run();
    assert!(dl.migrated_total() > 0);
}

#[test]
fn load_stays_balanced_for_streaming_beams() {
    let mut dist = DistSimulation::new(
        dist_config(8, 50),
        Box::new(GatherScatter::new(Shape::Cic, 1.0)),
    );
    dist.run();
    let per_rank = dist.particles_per_rank();
    let expect = 16_000 / 8;
    for (rank, n) in per_rank.iter().enumerate() {
        let dev = (*n as f64 - expect as f64).abs() / expect as f64;
        assert!(dev < 0.2, "rank {rank} holds {n} (expected ≈{expect})");
    }
}

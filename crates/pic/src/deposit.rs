//! Charge deposition (particles → grid), paper Fig. 1 third phase.
//!
//! The scatter is parallelized with the fold/reduce idiom: each rayon
//! worker accumulates into a private grid which are then summed, keeping
//! the hot loop free of atomics. On a single-core machine rayon degrades to
//! the sequential path with no contention overhead.

use crate::grid::Grid1D;
use crate::particles::Particles;
use crate::shape::Shape;
use rayon::prelude::*;

/// Minimum particle count before the parallel deposition path is worth
/// spawning (shared with the 2-D crate's deposition).
pub const PAR_THRESHOLD: usize = 1 << 15;

/// Reusable per-worker partial grids for the parallel deposition path.
///
/// The old fold/reduce idiom built two fresh `vec![0.0; ncells]`
/// identities on every call; a caller that owns a `DepositScratch` (the
/// traditional field solver keeps one per run) re-zeroes the same
/// buffers instead, so repeated deposits allocate only until the scratch
/// has grown to the worker count.
#[derive(Debug, Clone, Default)]
pub struct DepositScratch {
    partials: Vec<Vec<f64>>,
}

impl DepositScratch {
    /// An empty scratch; buffers grow on first parallel deposit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures `workers` zeroed partial grids of `ncells` nodes each.
    fn prepare(&mut self, workers: usize, ncells: usize) -> &mut [Vec<f64>] {
        self.partials.resize(workers, Vec::new());
        for p in &mut self.partials {
            p.clear();
            p.resize(ncells, 0.0);
        }
        &mut self.partials
    }
}

/// Deposits particle charge density onto grid nodes: `ρ_j += Σ_p q·W/dx`.
///
/// `rho` is *accumulated into* (callers zero it or pre-fill with the ion
/// background). Allocates fresh partial grids when the parallel path
/// fires; stepping loops use [`deposit_charge_with_scratch`] to reuse a
/// caller-owned scratch instead.
///
/// # Panics
/// Panics if `rho` length differs from the grid node count.
pub fn deposit_charge(particles: &Particles, grid: &Grid1D, shape: Shape, rho: &mut [f64]) {
    let mut scratch = DepositScratch::new();
    deposit_charge_with_scratch(particles, grid, shape, rho, &mut scratch);
}

/// [`deposit_charge`] with a caller-owned [`DepositScratch`]: the
/// parallel path scatters into the scratch's reused per-worker partial
/// grids and reduces them into `rho`, performing no allocation once the
/// scratch is warm. The sequential path ignores the scratch entirely.
///
/// # Panics
/// Panics if `rho` length differs from the grid node count.
pub fn deposit_charge_with_scratch(
    particles: &Particles,
    grid: &Grid1D,
    shape: Shape,
    rho: &mut [f64],
    scratch: &mut DepositScratch,
) {
    assert_eq!(rho.len(), grid.ncells(), "rho length mismatch");
    let scale = particles.charge() / grid.dx();
    if particles.len() >= PAR_THRESHOLD && rayon::current_num_threads() > 1 {
        scatter_reduce_parallel(particles.len(), rho, scratch, |range, partial| {
            scatter_chunk(&particles.x[range], grid, shape, scale, partial)
        });
    } else {
        scatter_chunk(&particles.x, grid, shape, scale, rho);
    }
}

/// The parallel scatter-reduce scaffolding shared by the 1-D and 2-D
/// depositions: splits `0..len` into one contiguous range per rayon
/// worker, runs `scatter` on each range into a reused zeroed partial
/// grid from `scratch`, then reduces the partials into `rho`. The caller
/// chooses *what* a range scatters (1-D positions, 2-D position pairs)
/// through the closure.
pub fn scatter_reduce_parallel(
    len: usize,
    rho: &mut [f64],
    scratch: &mut DepositScratch,
    scatter: impl Fn(std::ops::Range<usize>, &mut [f64]) + Sync,
) {
    let workers = rayon::current_num_threads();
    let chunk = len.div_ceil(workers);
    let partials = scratch.prepare(workers, rho.len());
    partials
        .par_iter_mut()
        .enumerate()
        .for_each(|(w, partial)| {
            let start = (w * chunk).min(len);
            let end = ((w + 1) * chunk).min(len);
            if start < end {
                scatter(start..end, partial);
            }
        });
    for partial in partials.iter() {
        for (r, p) in rho.iter_mut().zip(partial) {
            *r += p;
        }
    }
}

/// Sequential scatter of one chunk of positions. Node indices are wrapped
/// with the compare-and-fold of [`crate::fused::wrap_cell`] — the same
/// values `Grid1D::wrap_index` produces, without the per-particle integer
/// division.
fn scatter_chunk(xs: &[f64], grid: &Grid1D, shape: Shape, scale: f64, rho: &mut [f64]) {
    use crate::fused::wrap_cell;
    let inv_dx = 1.0 / grid.dx();
    let n = grid.ncells();
    let ni = n as i64;
    match shape {
        Shape::Ngp => {
            for &x in xs {
                let a = shape.assign(x * inv_dx);
                rho[wrap_cell(a.leftmost, ni)] += scale;
            }
        }
        Shape::Cic => {
            for &x in xs {
                let a = shape.assign(x * inv_dx);
                let j = wrap_cell(a.leftmost, ni);
                let j1 = if j + 1 == n { 0 } else { j + 1 };
                rho[j] += scale * a.w[0];
                rho[j1] += scale * a.w[1];
            }
        }
        Shape::Tsc => {
            for &x in xs {
                let a = shape.assign(x * inv_dx);
                for (o, w) in a.w.iter().enumerate() {
                    rho[wrap_cell(a.leftmost + o as i64, ni)] += scale * w;
                }
            }
        }
    }
}

/// Adds the uniform neutralizing ion background (+1 in normalized units for
/// the paper's setup) to a charge-density array.
pub fn add_uniform_background(rho: &mut [f64], density: f64) {
    for r in rho.iter_mut() {
        *r += density;
    }
}

/// Net charge ∫ρ dx of a density array — zero for a neutralized plasma.
pub fn net_charge(rho: &[f64], grid: &Grid1D) -> f64 {
    rho.iter().sum::<f64>() * grid.dx()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn electrons_at(xs: Vec<f64>, grid: &Grid1D) -> Particles {
        let n = xs.len();
        Particles::electrons_normalized(xs, vec![0.0; n], grid.length())
    }

    #[test]
    fn particle_on_node_deposits_fully_there() {
        let grid = Grid1D::new(8, 8.0); // dx = 1
        for shape in [Shape::Ngp, Shape::Cic] {
            let p = electrons_at(vec![3.0], &grid);
            let mut rho = grid.zeros();
            deposit_charge(&p, &grid, shape, &mut rho);
            assert!((rho[3] - p.charge() / grid.dx()).abs() < 1e-15, "{shape:?}");
            let off: f64 = rho
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != 3)
                .map(|(_, r)| r.abs())
                .sum();
            assert!(off < 1e-15, "{shape:?} leaked charge {off}");
        }
    }

    #[test]
    fn cic_splits_between_adjacent_nodes() {
        let grid = Grid1D::new(8, 8.0);
        let p = electrons_at(vec![3.25], &grid);
        let mut rho = grid.zeros();
        deposit_charge(&p, &grid, Shape::Cic, &mut rho);
        let q_dx = p.charge() / grid.dx();
        assert!((rho[3] - 0.75 * q_dx).abs() < 1e-15);
        assert!((rho[4] - 0.25 * q_dx).abs() < 1e-15);
    }

    #[test]
    fn periodic_wrap_at_right_edge() {
        let grid = Grid1D::new(8, 8.0);
        // Particle between the last node and the (periodic) first node.
        let p = electrons_at(vec![7.5], &grid);
        let mut rho = grid.zeros();
        deposit_charge(&p, &grid, Shape::Cic, &mut rho);
        let q_dx = p.charge() / grid.dx();
        assert!((rho[7] - 0.5 * q_dx).abs() < 1e-15);
        assert!((rho[0] - 0.5 * q_dx).abs() < 1e-15);
    }

    #[test]
    fn scratch_variant_matches_plain_deposit() {
        let grid = Grid1D::new(16, 2.0532);
        let xs: Vec<f64> = (0..40_000)
            .map(|i| (i as f64 * 0.618_033_988_749_894_9).fract() * grid.length())
            .collect();
        let p = electrons_at(xs, &grid);
        let mut scratch = DepositScratch::new();
        for shape in [Shape::Ngp, Shape::Cic, Shape::Tsc] {
            let mut plain = grid.zeros();
            let mut with_scratch = grid.zeros();
            deposit_charge(&p, &grid, shape, &mut plain);
            // Twice through the same scratch: re-zeroing must be complete.
            deposit_charge_with_scratch(&p, &grid, shape, &mut with_scratch, &mut scratch);
            with_scratch.iter_mut().for_each(|r| *r = 0.0);
            deposit_charge_with_scratch(&p, &grid, shape, &mut with_scratch, &mut scratch);
            assert_eq!(plain, with_scratch, "{shape:?}");
        }
    }

    #[test]
    fn uniform_background_neutralizes_uniform_plasma() {
        let grid = Grid1D::paper();
        let n = 64_000;
        // Exactly uniform particle positions.
        let xs: Vec<f64> = (0..n)
            .map(|i| (i as f64 + 0.5) / n as f64 * grid.length())
            .collect();
        let p = electrons_at(xs, &grid);
        let mut rho = grid.zeros();
        deposit_charge(&p, &grid, Shape::Cic, &mut rho);
        add_uniform_background(&mut rho, 1.0);
        for (j, r) in rho.iter().enumerate() {
            assert!(r.abs() < 1e-9, "node {j}: residual {r}");
        }
    }

    #[test]
    fn net_charge_of_neutralized_system_is_zero() {
        let grid = Grid1D::paper();
        let p = TwoStreamInitHelper::build(4_000, &grid);
        let mut rho = grid.zeros();
        deposit_charge(&p, &grid, Shape::Tsc, &mut rho);
        add_uniform_background(&mut rho, 1.0);
        assert!(net_charge(&rho, &grid).abs() < 1e-10);
    }

    /// Local helper: random-ish particle placement without pulling init.rs
    /// into these unit tests.
    struct TwoStreamInitHelper;
    impl TwoStreamInitHelper {
        fn build(n: usize, grid: &Grid1D) -> Particles {
            let xs: Vec<f64> = (0..n)
                .map(|i| {
                    let golden = 0.618_033_988_749_894_9_f64;
                    (i as f64 * golden).fract() * grid.length()
                })
                .collect();
            electrons_at(xs, grid)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn total_charge_conserved_for_all_shapes(
            xs in proptest::collection::vec(0.0f64..2.05, 1..200),
        ) {
            let grid = Grid1D::new(16, 2.0532);
            let xs: Vec<f64> = xs.into_iter().map(|x| grid.wrap_position(x)).collect();
            let p = electrons_at(xs, &grid);
            for shape in [Shape::Ngp, Shape::Cic, Shape::Tsc] {
                let mut rho = grid.zeros();
                deposit_charge(&p, &grid, shape, &mut rho);
                let total = net_charge(&rho, &grid);
                prop_assert!((total - p.total_charge()).abs() < 1e-9 * p.len() as f64,
                    "{shape:?}: {total} vs {}", p.total_charge());
            }
        }

        #[test]
        fn deposition_is_permutation_invariant(
            xs in proptest::collection::vec(0.0f64..2.0, 2..64),
        ) {
            let grid = Grid1D::new(8, 2.0);
            let p1 = electrons_at(xs.clone(), &grid);
            let mut reversed = xs;
            reversed.reverse();
            let p2 = electrons_at(reversed, &grid);
            let mut r1 = grid.zeros();
            let mut r2 = grid.zeros();
            deposit_charge(&p1, &grid, Shape::Cic, &mut r1);
            deposit_charge(&p2, &grid, Shape::Cic, &mut r2);
            for (a, b) in r1.iter().zip(&r2) {
                prop_assert!((a - b).abs() < 1e-12);
            }
        }
    }
}

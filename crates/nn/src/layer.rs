//! The layer abstraction: forward, backward, parameter visitation.

use crate::frozen::{FrozenLayer, Precision};
use crate::tensor::Tensor;

/// A differentiable layer.
///
/// The backward contract: [`Layer::forward`] with `training = true` caches
/// whatever the backward pass needs; [`Layer::backward`] consumes the
/// gradient w.r.t. the layer *output*, accumulates parameter gradients
/// internally (`+=`, so callers zero them between optimizer steps via
/// [`Layer::zero_grads`]) and returns the gradient w.r.t. the layer
/// *input*.
pub trait Layer: Send {
    /// Computes the layer output. With `training = true` the activation
    /// cache for backprop is retained.
    fn forward(&mut self, input: &Tensor, training: bool) -> Tensor;

    /// Backpropagates: accumulates parameter gradients and returns the
    /// input gradient. Must be preceded by a `forward(.., true)`.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Inference into a caller-owned output tensor, retaining no
    /// activation cache. Implementations resize `out` in place and reuse
    /// its buffer, so repeated calls perform no heap allocation once the
    /// buffer is warm — the per-step path of the DL field solvers. The
    /// default falls back to the allocating [`Layer::forward`]; layers on
    /// the inference hot path (dense, relu, flatten) override it.
    fn infer_into(&mut self, input: &Tensor, out: &mut Tensor) {
        *out = self.forward(input, false);
    }

    /// Training-time forward into a caller-owned output tensor: same
    /// contract as `forward(.., true)` (the activation cache is
    /// retained), but the output buffer is resized in place and reused,
    /// so repeated calls perform no heap allocation once warm — the
    /// per-batch path of `nn::trainer`. The default falls back to the
    /// allocating [`Layer::forward`]; every built-in layer overrides it.
    fn train_forward_into(&mut self, input: &Tensor, out: &mut Tensor) {
        *out = self.forward(input, true);
    }

    /// Backpropagation into a caller-owned gradient tensor: same
    /// contract as [`Layer::backward`] (parameter gradients accumulate
    /// internally) with the input-gradient buffer resized in place and
    /// reused. The default falls back to the allocating
    /// [`Layer::backward`]; every built-in layer overrides it.
    fn backward_into(&mut self, grad_out: &Tensor, grad_in: &mut Tensor) {
        *grad_in = self.backward(grad_out);
    }

    /// Visits each (parameter, gradient) pair in a stable order. Layers
    /// without parameters do nothing (default).
    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut [f32], &mut [f32])) {}

    /// Zeros the accumulated parameter gradients (default: no-op).
    fn zero_grads(&mut self) {}

    /// The immutable inference form of this layer at the given weight
    /// precision, or `None` when the layer has no frozen form (the
    /// default) — then [`crate::Sequential::freeze`] fails and callers
    /// keep an owned network. Frozen inference must match
    /// [`Layer::infer_into`] exactly at [`Precision::F32`].
    fn freeze(&self, _precision: Precision) -> Option<FrozenLayer> {
        None
    }

    /// Layer name for summaries.
    fn name(&self) -> &'static str;

    /// Total trainable parameter count (default 0).
    fn param_count(&self) -> usize {
        0
    }
}

/// Stores `input` in a layer's activation-cache slot, reusing the slot's
/// existing allocation when warm (the training loop runs the same batch
/// shape for thousands of steps — only the first step allocates).
pub(crate) fn cache_input(slot: &mut Option<Tensor>, input: &Tensor) {
    match slot {
        Some(t) => t.copy_from(input),
        None => *slot = Some(input.clone()),
    }
}

//! # dlpic-bench
//!
//! The experiment harness: one binary per table/figure of the paper
//! (`src/bin/`) plus Criterion performance benches (`benches/`).
//!
//! This library holds the shared plumbing: dataset preparation, model
//! training/caching, CLI parsing and output-file management. Binaries:
//!
//! | binary            | reproduces                                        |
//! |-------------------|---------------------------------------------------|
//! | `table1`          | Table I (MLP/CNN MAE + max error, test sets I/II)  |
//! | `fig4`            | Fig. 4 (phase space + E1 growth vs linear theory)  |
//! | `fig5`            | Fig. 5 (energy/momentum, v0 = 0.2, vth = 0.025)    |
//! | `fig6`            | Fig. 6 (cold beams v0 = 0.4: numerical stability)  |
//! | `perf`            | §VII performance discussion (solve-stage timing)   |
//! | `ablations`       | binning / physics-loss / architecture / grid-size / data source / temporal |
//! | `spectral_error`  | §VII "spectral analysis of errors" follow-up       |
//! | `ext2d`           | §VII extension: 2-D DL-PIC vs traditional 2-D      |
//! | `perf_dist`       | §VII extension: distributed communication volume   |
//!
//! All binaries accept `--scale smoke|scaled|paper` (default: scaled, or
//! the `DLPIC_SCALE` environment variable) and `--retrain` to ignore model
//! caches. Outputs (CSVs, model bundles) land in `./out/`.

#![warn(missing_docs)]

use dlpic_core::builder::ArchSpec;
use dlpic_core::bundle::ModelBundle;
use dlpic_core::normalize::NormStats;
use dlpic_core::phase_space::BinningShape;
use dlpic_core::presets::Scale;
use dlpic_dataset::generator::{generate, GeneratorConfig};
use dlpic_dataset::sample::PhaseDataset;
use dlpic_dataset::spec::SweepSpec;
use dlpic_dataset::split::{shuffle_split, SplitSizes};
use dlpic_nn::loss::Loss;
use dlpic_nn::metrics::evaluate;
use dlpic_nn::optimizer::Adam;
use dlpic_nn::trainer::{train, TrainConfig, TrainHistory};
use std::path::PathBuf;

/// Parsed command-line options shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Experiment scale.
    pub scale: Scale,
    /// Ignore cached model bundles.
    pub retrain: bool,
}

impl Cli {
    /// Parses `std::env::args`, honouring `DLPIC_SCALE` as the default.
    pub fn parse() -> Self {
        let mut scale = Scale::from_env();
        let mut retrain = false;
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    i += 1;
                    let value = args.get(i).map(String::as_str).unwrap_or("");
                    match Scale::parse(value) {
                        Some(s) => scale = s,
                        None => {
                            eprintln!("unknown scale `{value}`; use smoke|scaled|paper");
                            std::process::exit(2);
                        }
                    }
                }
                "--retrain" => retrain = true,
                "--help" | "-h" => {
                    eprintln!("options: --scale smoke|scaled|paper   --retrain");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown option `{other}`");
                    std::process::exit(2);
                }
            }
            i += 1;
        }
        Self { scale, retrain }
    }
}

/// The engine scenario a figure binary runs: the named registry entry at
/// full paper physics (1000 electrons/cell, 200 steps) regardless of
/// `scale` — the scale shrinks only the *learning* problem, exactly as the
/// original figure binaries did with `paper_config`. Seeds match the
/// historical figure runs.
pub fn paper_figure_spec(name: &str, scale: Scale) -> dlpic_repro::engine::ScenarioSpec {
    let mut spec = dlpic_repro::engine::scenario(name, scale).expect("registry entry");
    spec.ppc = dlpic_pic::constants::PAPER_PARTICLES_PER_CELL;
    spec.n_steps = dlpic_pic::constants::PAPER_NSTEPS;
    spec.seed = match name {
        "cold_beam" => 20210706,
        _ => 20210705,
    };
    spec
}

/// Output directory (`./out`), created on demand.
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from("out");
    std::fs::create_dir_all(&dir).expect("create out/");
    dir
}

/// Model-cache directory (`./out/models`), created on demand.
pub fn models_dir() -> PathBuf {
    let dir = out_dir().join("models");
    std::fs::create_dir_all(&dir).expect("create out/models/");
    dir
}

/// The generated-and-split data of one scale.
pub struct DataBundle {
    /// Training portion (paper: 38,000 of 40,000).
    pub train: PhaseDataset,
    /// Validation portion.
    pub val: PhaseDataset,
    /// Test Set I — same parameters as training.
    pub test1: PhaseDataset,
    /// Test Set II — parameters never seen in training.
    pub test2: PhaseDataset,
    /// Input normalization statistics computed on the training portion.
    pub norm: NormStats,
}

/// Generates the training sweep and Test Set II for a scale, with the
/// paper's shuffle/split procedure.
pub fn prepare_data(scale: Scale, binning: BinningShape, verbose: bool) -> DataBundle {
    let phase = scale.phase_spec();
    let mut cfg = GeneratorConfig::new(SweepSpec::training_for(scale), phase);
    cfg.binning = binning;
    cfg.ppc = scale.dataset_ppc();
    cfg.verbose = verbose;
    let full = generate(&cfg);
    let sizes = SplitSizes::paper_proportions(full.len());
    let (train, val, test1) = shuffle_split(&full, sizes, 0xA11CE);

    let mut cfg2 = GeneratorConfig::new(SweepSpec::test_set_ii_for(scale), phase);
    cfg2.binning = binning;
    cfg2.ppc = scale.dataset_ppc();
    cfg2.verbose = verbose;
    let test2 = generate(&cfg2);

    let norm = train.input_norm_stats();
    DataBundle {
        train,
        val,
        test1,
        test2,
        norm,
    }
}

/// A trained model plus its Table-I row numbers.
pub struct TrainedModel {
    /// Persistable model.
    pub bundle: ModelBundle,
    /// Training curve.
    pub history: TrainHistory,
    /// MAE on Test Set I.
    pub mae1: f32,
    /// Max error on Test Set I.
    pub max1: f32,
    /// MAE on Test Set II.
    pub mae2: f32,
    /// Max error on Test Set II.
    pub max2: f32,
}

/// Trains an architecture on prepared data with the paper's optimizer
/// (Adam, batch 64; lr 1e-4 at paper scale, see `Scale::learning_rate`)
/// and evaluates it on both test sets.
pub fn train_arch(
    arch: &ArchSpec,
    data: &DataBundle,
    loss: &dyn Loss,
    epochs: usize,
    lr: f32,
    seed: u64,
    log_every: usize,
) -> TrainedModel {
    let kind = arch.input_kind();
    let train_set = data.train.to_nn_dataset(&data.norm, kind);
    let val_set = data.val.to_nn_dataset(&data.norm, kind);
    let test1_set = data.test1.to_nn_dataset(&data.norm, kind);
    let test2_set = data.test2.to_nn_dataset(&data.norm, kind);

    let mut net = arch.build(seed);
    let mut opt = Adam::new(lr);
    let cfg = TrainConfig {
        epochs,
        batch_size: 64,
        shuffle_seed: seed,
        log_every,
    };
    let history = train(&mut net, loss, &mut opt, &train_set, Some(&val_set), &cfg);

    let (mae1, max1) = evaluate(&mut net, &test1_set, 64);
    let (mae2, max2) = evaluate(&mut net, &test2_set, 64);
    // A histogram's total mass equals the harvest particle count; record
    // it so the solver can rescale out-of-distribution particle counts.
    let reference_mass: f32 = data.train.input_row(0).iter().sum();
    let bundle = ModelBundle::from_network(
        &mut net,
        arch.clone(),
        data.train.spec,
        data.train.binning,
        data.norm,
    )
    .with_reference_mass(reference_mass);
    TrainedModel {
        bundle,
        history,
        mae1,
        max1,
        mae2,
        max2,
    }
}

/// Loads a cached MLP bundle for the scale, or trains (and caches) one.
/// This is the model the figure binaries (fig4/5/6) run DL-PIC with.
pub fn get_or_train_mlp(scale: Scale, retrain: bool, verbose: bool) -> ModelBundle {
    let path = models_dir().join(format!("mlp-{}.dlpb", scale.name()));
    if !retrain {
        if let Ok(bundle) = ModelBundle::load(&path) {
            if bundle.arch == scale.mlp_arch() {
                if verbose {
                    eprintln!("loaded cached MLP from {}", path.display());
                }
                return bundle;
            }
        }
    }
    if verbose {
        eprintln!(
            "training MLP at {} scale (cache: {})",
            scale.name(),
            path.display()
        );
    }
    let data = prepare_data(scale, BinningShape::Ngp, verbose);
    let arch = scale.mlp_arch();
    let model = train_arch(
        &arch,
        &data,
        &dlpic_nn::loss::Mse,
        scale.mlp_epochs(),
        scale.learning_rate(),
        0xD1,
        if verbose { 5 } else { 0 },
    );
    if verbose {
        eprintln!(
            "trained: test-I MAE {:.5}, test-II MAE {:.5} ({:.1}s)",
            model.mae1, model.mae2, model.history.seconds
        );
    }
    model.bundle.save(&path).expect("save model cache");
    model.bundle
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlpic_nn::loss::Mse;

    #[test]
    fn smoke_scale_end_to_end_training() {
        // The full pipeline at smoke scale: generate → split → train →
        // evaluate. Asserts the learned model beats the trivial
        // zero-predictor on Test Set I.
        let data = prepare_data(Scale::Smoke, BinningShape::Ngp, false);
        assert!(data.train.len() > data.val.len());
        assert!(!data.test2.is_empty());

        let arch = Scale::Smoke.mlp_arch();
        let model = train_arch(&arch, &data, &Mse, 20, 3e-3, 1, 0);
        // Zero predictor MAE = mean |E|.
        let zero_mae = data
            .test1
            .targets()
            .iter()
            .map(|v| v.abs() as f64)
            .sum::<f64>()
            / data.test1.targets().len() as f64;
        assert!(
            (model.mae1 as f64) < zero_mae,
            "model MAE {} not better than zero-predictor {zero_mae}",
            model.mae1
        );
        assert!(model.max1 >= model.mae1);
    }
}

/// Shared plumbing of the throughput-gate binaries (`step_throughput`,
/// `train_throughput`, `ensemble_throughput`): the calibration anchor,
/// timing medians and the minimal JSON scraping of the committed
/// `BENCH_*.json` files. One copy, so an anchor or gate-policy change
/// cannot silently diverge between the gates.
pub mod gate {
    use dlpic_nn::linalg::matmul_naive;
    use std::time::Instant;

    /// Median of the samples (ties to the upper middle).
    ///
    /// # Panics
    /// Panics on an empty input.
    pub fn median(mut xs: Vec<f64>) -> f64 {
        xs.sort_by(|a, b| a.total_cmp(b));
        xs[xs.len() / 2]
    }

    /// Deterministic pseudo-random fill in [-1, 1).
    pub fn fill(buf: &mut [f32], mut seed: u64) {
        for v in buf.iter_mut() {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *v = ((seed >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0;
        }
    }

    /// Machine-speed anchor: GFLOP/s of the fixed-shape f64
    /// `matmul_naive` oracle. The oracle is the property-test reference
    /// and never part of the optimized kernels, so its throughput tracks
    /// only the machine (CPU + codegen flags), not the repo's
    /// performance work. All gates use this one implementation so their
    /// committed numbers rescale consistently.
    pub fn calibration_gflops(reps: usize) -> f64 {
        let n = 192;
        let mut a = vec![0.0f32; n * n];
        let mut b = vec![0.0f32; n * n];
        fill(&mut a, 3);
        fill(&mut b, 5);
        std::hint::black_box(matmul_naive(&a, &b, n, n, n));
        let flops = 2.0 * (n * n * n) as f64;
        let times: Vec<f64> = (0..reps)
            .map(|_| {
                let t0 = Instant::now();
                std::hint::black_box(matmul_naive(&a, &b, n, n, n));
                t0.elapsed().as_secs_f64()
            })
            .collect();
        flops / median(times) / 1e9
    }

    /// First `"key": <number>` after position `from` in `text`.
    pub fn json_value_after(text: &str, from: usize, key: &str) -> Option<f64> {
        let needle = format!("\"{key}\":");
        let at = text[from..].find(&needle)? + from + needle.len();
        let rest = text[at..].trim_start();
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    }

    /// First `"key": "<string>"` after position `from` in `text`.
    pub fn json_string_after(text: &str, from: usize, key: &str) -> Option<String> {
        let needle = format!("\"{key}\":");
        let at = text[from..].find(&needle)? + from + needle.len();
        let rest = text[at..].trim_start().strip_prefix('"')?;
        Some(rest[..rest.find('"')?].to_string())
    }

    /// Re-indents a captured measurement JSON by two spaces for
    /// embedding as a `baseline` section.
    pub fn indent_block(block: &str) -> String {
        block
            .lines()
            .enumerate()
            .map(|(i, l)| {
                if i == 0 {
                    l.to_string()
                } else {
                    format!("  {l}")
                }
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

//! Parameter-sweep specifications (paper §IV.A.1).
//!
//! > "Our data set consists of 40,000 images … generated from several
//! > traditional PIC simulations using combinations of the initial beam
//! > velocities (±v0) and the thermal speed (vth). More concretely, we
//! > collected data for 20 combinations of these two parameters, being
//! > v0 = [±0.05, ±0.15, ±0.18, ±0.1, ±0.3] and
//! > vth = [0.0, 0.01, 0.001, 0.005]. For each single combination we
//! > collected data from 10 experiments … as a way of data augmentation …
//! > we run 200 time steps in each traditional PIC simulation."
//!
//! Test Set II uses "samples from simulations using parameters not included
//! in the initial data set" — here: v0 ∈ {0.12, 0.2, 0.25} crossed with
//! vth ∈ {0.002, 0.025} (the validation configuration v0 = 0.2,
//! vth = 0.025 of §V is deliberately among them, as in the paper).

use dlpic_core::presets::Scale;

/// The paper's training beam speeds.
pub const PAPER_V0S: [f64; 5] = [0.05, 0.1, 0.15, 0.18, 0.3];

/// The paper's training thermal speeds.
pub const PAPER_VTHS: [f64; 4] = [0.0, 0.001, 0.005, 0.01];

/// Beam speeds *not* in the training sweep, for Test Set II.
pub const UNSEEN_V0S: [f64; 3] = [0.12, 0.2, 0.25];

/// Thermal speeds *not* in the training sweep, for Test Set II.
pub const UNSEEN_VTHS: [f64; 2] = [0.002, 0.025];

/// One (v0, vth) configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepCombo {
    /// Beam drift speed (beams at ±v0).
    pub v0: f64,
    /// Thermal spread.
    pub vth: f64,
}

/// A full sweep: combinations × repeated experiments × steps.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Parameter combinations.
    pub combos: Vec<SweepCombo>,
    /// Independent seeded runs per combination ("data augmentation" in the
    /// paper).
    pub experiments_per_combo: usize,
    /// Steps per run; one sample is harvested per step.
    pub steps: usize,
    /// Base RNG seed; each run derives a distinct seed from it.
    pub base_seed: u64,
}

impl SweepSpec {
    /// Cartesian product of the given parameter lists.
    pub fn cross(v0s: &[f64], vths: &[f64], experiments: usize, steps: usize, seed: u64) -> Self {
        let mut combos = Vec::with_capacity(v0s.len() * vths.len());
        for &v0 in v0s {
            for &vth in vths {
                combos.push(SweepCombo { v0, vth });
            }
        }
        Self {
            combos,
            experiments_per_combo: experiments,
            steps,
            base_seed: seed,
        }
    }

    /// The paper's full training sweep: 20 combos × 10 experiments × 200
    /// steps = 40,000 samples.
    pub fn paper_training() -> Self {
        Self::cross(&PAPER_V0S, &PAPER_VTHS, 10, 200, 0x5eed_0001)
    }

    /// Training sweep for the given scale. `Scaled` keeps all 20 combos
    /// (coverage of parameter space matters more than augmentation depth on
    /// one core) with 3 seeded experiments each — enough augmentation for
    /// the DL-PIC loop to stay well-conditioned on unseen noise
    /// realizations (12,000 samples; the paper used 40,000).
    pub fn training_for(scale: Scale) -> Self {
        match scale {
            Scale::Paper => Self::paper_training(),
            Scale::Scaled => Self::cross(&PAPER_V0S, &PAPER_VTHS, 3, 200, 0x5eed_0001),
            // 80 steps so the instability develops real field structure
            // (40 steps of Δt = 0.2 is still deep in the linear phase).
            Scale::Smoke => Self::cross(&[0.1, 0.2], &[0.0, 0.01], 1, 80, 0x5eed_0001),
        }
    }

    /// Test Set II: unseen parameters (paper: 1,000 samples).
    pub fn test_set_ii_for(scale: Scale) -> Self {
        match scale {
            Scale::Paper | Scale::Scaled => {
                // 6 combos × 1 experiment × 200 steps = 1,200 samples.
                Self::cross(&UNSEEN_V0S, &UNSEEN_VTHS, 1, 200, 0x5eed_0002)
            }
            Scale::Smoke => Self::cross(&[0.25], &[0.002], 1, 80, 0x5eed_0002),
        }
    }

    /// Total number of simulation runs.
    pub fn total_runs(&self) -> usize {
        self.combos.len() * self.experiments_per_combo
    }

    /// Total number of samples the sweep yields.
    pub fn total_samples(&self) -> usize {
        self.total_runs() * self.steps
    }

    /// Deterministic seed of run (`combo_idx`, `experiment`).
    pub fn run_seed(&self, combo_idx: usize, experiment: usize) -> u64 {
        // SplitMix64-style mixing keeps distinct runs decorrelated.
        let mut z = self
            .base_seed
            .wrapping_add((combo_idx as u64) << 32)
            .wrapping_add(experiment as u64)
            .wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_training_sweep_is_forty_thousand_samples() {
        let s = SweepSpec::paper_training();
        assert_eq!(s.combos.len(), 20);
        assert_eq!(s.experiments_per_combo, 10);
        assert_eq!(s.steps, 200);
        assert_eq!(s.total_samples(), 40_000);
        assert_eq!(s.total_runs(), 200);
    }

    #[test]
    fn test_set_ii_uses_only_unseen_parameters() {
        let train = SweepSpec::paper_training();
        let test2 = SweepSpec::test_set_ii_for(Scale::Paper);
        for tc in &test2.combos {
            for trc in &train.combos {
                assert!(
                    (tc.v0 - trc.v0).abs() > 1e-9 && (tc.vth - trc.vth).abs() > 1e-9,
                    "Test Set II combo {tc:?} overlaps training {trc:?}"
                );
            }
        }
        assert!(test2.total_samples() >= 1_000);
    }

    #[test]
    fn validation_configuration_is_in_test_set_ii() {
        // The paper validates DL-PIC at v0 = 0.2, vth = 0.025 — parameters
        // "that ha[ve] not been included in the … training" sets.
        let test2 = SweepSpec::test_set_ii_for(Scale::Scaled);
        assert!(test2
            .combos
            .iter()
            .any(|c| (c.v0 - 0.2).abs() < 1e-12 && (c.vth - 0.025).abs() < 1e-12));
    }

    #[test]
    fn run_seeds_are_distinct() {
        let s = SweepSpec::paper_training();
        let mut seeds = std::collections::HashSet::new();
        for c in 0..s.combos.len() {
            for e in 0..s.experiments_per_combo {
                assert!(
                    seeds.insert(s.run_seed(c, e)),
                    "duplicate seed for ({c}, {e})"
                );
            }
        }
    }

    #[test]
    fn scaled_sweep_keeps_full_parameter_coverage() {
        let s = SweepSpec::training_for(Scale::Scaled);
        assert_eq!(s.combos.len(), 20);
        assert_eq!(s.experiments_per_combo, 3);
        assert_eq!(s.total_samples(), 12_000);
    }
}

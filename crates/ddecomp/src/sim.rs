//! The distributed PIC driver: a bulk-synchronous step loop over all
//! ranks with every inter-rank transfer routed through the [`Fabric`].
//!
//! Physics-wise this is exactly the 1-D `Simulation` of `dlpic-pic` — the
//! same leap-frog stagger, the same diagnostics conventions (an `n`-step
//! run records `n + 1` samples, kinetic energy time-centred) — so its
//! results are directly comparable to the single-process baseline, which
//! the integration tests exploit.

use crate::comm::{CommStats, Fabric};
use crate::halo::{ext_len, HALO};
use crate::migrate::{recv_arrivals, send_leavers};
use crate::strategy::DistFieldStrategy;
use crate::topology::Topology;
use dlpic_analytics::dft;
use dlpic_pic::diagnostics::EnergyReport;
use dlpic_pic::grid::Grid1D;
use dlpic_pic::history::History;
use dlpic_pic::init::TwoStreamInit;
use dlpic_pic::mover::{half_step_back, push_positions, push_velocities};
use dlpic_pic::particles::Particles;
use dlpic_pic::shape::Shape;

/// Per-rank simulation state.
pub struct RankState {
    /// This rank's id.
    pub rank: usize,
    /// The locally owned particles.
    pub particles: Particles,
    /// Extended charge-density slab (owned nodes + [`HALO`] each side).
    pub rho_ext: Vec<f64>,
    /// Extended electric-field slab (owned nodes + [`HALO`] ghosts).
    pub e_ext: Vec<f64>,
    /// Local phase-space histogram scratch (DL strategy).
    pub hist: Vec<f32>,
    /// Per-particle gathered field scratch.
    e_part: Vec<f64>,
}

impl RankState {
    /// Creates the state for `rank` holding `particles`.
    pub fn new(rank: usize, particles: Particles, topo: &Topology) -> Self {
        let len = ext_len(topo);
        Self {
            rank,
            particles,
            rho_ext: vec![0.0; len],
            e_ext: vec![0.0; len],
            hist: Vec::new(),
            e_part: Vec::new(),
        }
    }
}

/// Gathers the extended-slab field at this rank's particle positions
/// (the distributed counterpart of `dlpic_pic::gather::gather_field`).
///
/// # Panics
/// Panics on buffer-size mismatches; debug-asserts slab ownership.
pub fn gather_local(
    particles: &Particles,
    grid: &Grid1D,
    topo: &Topology,
    rank: usize,
    shape: Shape,
    e_ext: &[f64],
    e_part: &mut [f64],
) {
    assert_eq!(e_ext.len(), ext_len(topo), "extended field length mismatch");
    assert_eq!(
        e_part.len(),
        particles.len(),
        "per-particle buffer mismatch"
    );
    let inv_dx = 1.0 / grid.dx();
    let start = topo.slab_start(rank) as i64;
    let support = shape.support();

    for (i, &x) in particles.x.iter().enumerate() {
        let a = shape.assign(x * inv_dx);
        let local = a.leftmost - start + HALO as i64;
        debug_assert!(
            local >= 0 && local + support as i64 <= e_ext.len() as i64,
            "particle at x = {x} gathers outside rank {rank}'s extended slab"
        );
        let mut acc = 0.0;
        for (k, &w) in a.w[..support].iter().enumerate() {
            acc += w * e_ext[(local + k as i64) as usize];
        }
        e_part[i] = acc;
    }
}

/// Full configuration of a distributed run.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// The global periodic grid.
    pub grid: Grid1D,
    /// Two-stream initial condition (built globally, scattered by
    /// position).
    pub init: TwoStreamInit,
    /// Time step.
    pub dt: f64,
    /// Number of steps a [`DistSimulation::run`] performs.
    pub n_steps: usize,
    /// Shape used to gather E to the particles.
    pub gather_shape: Shape,
    /// Number of ranks (must divide the cell count).
    pub n_ranks: usize,
    /// Field modes whose amplitudes are recorded each step.
    pub tracked_modes: Vec<usize>,
}

/// A running distributed PIC simulation.
pub struct DistSimulation {
    cfg: DistConfig,
    topo: Topology,
    fabric: Fabric,
    states: Vec<RankState>,
    strategy: Box<dyn DistFieldStrategy>,
    history: History,
    /// Global E reassembled each step for diagnostics (not counted as
    /// traffic: a production code samples diagnostics sparsely and they
    /// are identical for both strategies).
    e_diag: Vec<f64>,
    migrated_total: u64,
    time: f64,
    steps_done: usize,
}

impl DistSimulation {
    /// Initializes the distributed run: builds the global particle load,
    /// scatters it by position, performs the initial field solve and sets
    /// up the leap-frog stagger on every rank.
    ///
    /// # Panics
    /// Panics if the rank count does not divide the cell count, or the
    /// slabs are narrower than the halo.
    pub fn new(cfg: DistConfig, strategy: Box<dyn DistFieldStrategy>) -> Self {
        let topo = Topology::new(cfg.n_ranks, cfg.grid.ncells());
        assert!(
            topo.cells_per_rank() >= 2 * HALO,
            "slabs must be at least {} cells wide",
            2 * HALO
        );
        let fabric = Fabric::new(cfg.n_ranks);

        // Build globally, scatter by position — same load as the
        // single-process baseline.
        let global = cfg.init.build(&cfg.grid);
        let (q, m) = (global.charge(), global.mass());
        let mut xs: Vec<Vec<f64>> = vec![Vec::new(); cfg.n_ranks];
        let mut vs: Vec<Vec<f64>> = vec![Vec::new(); cfg.n_ranks];
        for (&x, &v) in global.x.iter().zip(&global.v) {
            let owner = topo.rank_of_position(x, &cfg.grid);
            xs[owner].push(x);
            vs[owner].push(v);
        }
        let states: Vec<RankState> = xs
            .into_iter()
            .zip(vs)
            .enumerate()
            .map(|(rank, (x, v))| RankState::new(rank, Particles::new(x, v, q, m), &topo))
            .collect();

        let mut sim = Self {
            history: History::new(cfg.tracked_modes.clone()),
            e_diag: cfg.grid.zeros(),
            topo,
            fabric,
            states,
            strategy,
            migrated_total: 0,
            time: 0.0,
            steps_done: 0,
            cfg,
        };

        // E⁰ and the v⁰ → v^{-1/2} stagger.
        sim.strategy
            .solve(&mut sim.states, &sim.cfg.grid, &sim.topo, &mut sim.fabric);
        for state in sim.states.iter_mut() {
            state.e_part.resize(state.particles.len(), 0.0);
            gather_local(
                &state.particles,
                &sim.cfg.grid,
                &sim.topo,
                state.rank,
                sim.cfg.gather_shape,
                &state.e_ext,
                &mut state.e_part,
            );
            half_step_back(&mut state.particles, &state.e_part, sim.cfg.dt);
        }
        sim
    }

    /// Advances one step, recording diagnostics for the starting time
    /// level (identical conventions to the single-process simulation).
    pub fn step(&mut self) {
        let grid = self.cfg.grid.clone();
        let dt = self.cfg.dt;

        // Diagnostics on Eⁿ from the reassembled global field.
        self.assemble_diag_field();
        let fe = dlpic_pic::efield::field_energy(&grid, &self.e_diag);
        let amps: Vec<f64> = self
            .cfg
            .tracked_modes
            .iter()
            .map(|&m| dft::mode_amplitude(&self.e_diag, m))
            .collect();

        // Gather + velocity push on every rank.
        let mut kinetic = 0.0;
        let mut momentum = 0.0;
        for state in self.states.iter_mut() {
            state.e_part.resize(state.particles.len(), 0.0);
            gather_local(
                &state.particles,
                &grid,
                &self.topo,
                state.rank,
                self.cfg.gather_shape,
                &state.e_ext,
                &mut state.e_part,
            );
            kinetic += push_velocities(&mut state.particles, &state.e_part, dt);
            momentum += state.particles.total_momentum();
        }

        self.history.push(
            self.time,
            EnergyReport {
                kinetic,
                field: fe,
                momentum,
            },
            &amps,
        );

        // Position push + migration.
        for state in self.states.iter_mut() {
            push_positions(&mut state.particles, &grid, dt);
        }
        for state in self.states.iter_mut() {
            self.migrated_total += send_leavers(
                state.rank,
                &mut state.particles,
                &grid,
                &self.topo,
                &mut self.fabric,
            ) as u64;
        }
        for state in self.states.iter_mut() {
            recv_arrivals(state.rank, &mut state.particles, &mut self.fabric);
        }

        // Field solve for E^{n+1}.
        self.strategy
            .solve(&mut self.states, &grid, &self.topo, &mut self.fabric);

        self.time += dt;
        self.steps_done += 1;
    }

    /// Runs the configured number of steps and appends a final snapshot.
    pub fn run(&mut self) {
        for _ in 0..self.cfg.n_steps {
            self.step();
        }
        self.finish();
    }

    /// Appends the final diagnostics snapshot at the current time.
    /// External step-by-step drivers (the engine facade) call this once at
    /// the end to reproduce the `n + 1`-sample convention of [`Self::run`].
    pub fn finish(&mut self) {
        self.assemble_diag_field();
        let kinetic: f64 = self
            .states
            .iter()
            .map(|s| s.particles.kinetic_energy())
            .sum();
        let momentum: f64 = self
            .states
            .iter()
            .map(|s| s.particles.total_momentum())
            .sum();
        let fe = dlpic_pic::efield::field_energy(&self.cfg.grid, &self.e_diag);
        let amps: Vec<f64> = self
            .cfg
            .tracked_modes
            .iter()
            .map(|&m| dft::mode_amplitude(&self.e_diag, m))
            .collect();
        self.history.push(
            self.time,
            EnergyReport {
                kinetic,
                field: fe,
                momentum,
            },
            &amps,
        );
    }

    /// Reassembles the global E from the owned slab centers (diagnostics
    /// only; not routed through the fabric).
    fn assemble_diag_field(&mut self) {
        let cpr = self.topo.cells_per_rank();
        for state in &self.states {
            let start = self.topo.slab_start(state.rank);
            self.e_diag[start..start + cpr].copy_from_slice(&state.e_ext[HALO..HALO + cpr]);
        }
    }

    /// The recorded history (same layout as the single-process run).
    pub fn history(&self) -> &History {
        &self.history
    }

    /// Aggregate fabric traffic since the start of the run (includes the
    /// initial field solve).
    pub fn comm_stats(&self) -> CommStats {
        self.fabric.stats()
    }

    /// Per-phase traffic breakdown.
    pub fn comm_phases(&self) -> Vec<(&'static str, CommStats)> {
        self.fabric.phases().collect()
    }

    /// Total particles migrated across ranks so far.
    pub fn migrated_total(&self) -> u64 {
        self.migrated_total
    }

    /// Particles currently held per rank.
    pub fn particles_per_rank(&self) -> Vec<usize> {
        self.states.iter().map(|s| s.particles.len()).collect()
    }

    /// The global `(x, v)` phase space concatenated across ranks, in rank
    /// order (diagnostics; the engine facade's final snapshot).
    pub fn phase_space(&self) -> (Vec<f64>, Vec<f64>) {
        let n = self.total_particles();
        let mut x = Vec::with_capacity(n);
        let mut v = Vec::with_capacity(n);
        for state in &self.states {
            x.extend_from_slice(&state.particles.x);
            v.extend_from_slice(&state.particles.v);
        }
        (x, v)
    }

    /// Total particle count (conserved across migration).
    pub fn total_particles(&self) -> usize {
        self.states.iter().map(|s| s.particles.len()).sum()
    }

    /// The rank topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The global field grid.
    pub fn grid(&self) -> &Grid1D {
        &self.cfg.grid
    }

    /// Steps performed so far.
    pub fn steps_done(&self) -> usize {
        self.steps_done
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The globally reassembled field from the last diagnostics pass.
    pub fn global_efield(&mut self) -> Vec<f64> {
        self.assemble_diag_field();
        self.e_diag.clone()
    }

    /// The strategy name.
    pub fn strategy_name(&self) -> &'static str {
        self.strategy.name()
    }

    /// Instantaneous kinetic energy summed across ranks.
    pub fn kinetic_energy(&self) -> f64 {
        self.states
            .iter()
            .map(|s| s.particles.kinetic_energy())
            .sum()
    }

    /// Instantaneous total momentum summed across ranks.
    pub fn total_momentum(&self) -> f64 {
        self.states
            .iter()
            .map(|s| s.particles.total_momentum())
            .sum()
    }

    /// Snapshot of the mutable distributed state — per-rank particles and
    /// field slabs plus clock, step counter, migration and traffic
    /// totals — sufficient for [`Self::restore_state`] to continue a run
    /// bit-identically.
    pub fn export_state(&self) -> DistState {
        DistState {
            ranks: self
                .states
                .iter()
                .map(|s| RankStateSnapshot {
                    x: s.particles.x.clone(),
                    v: s.particles.v.clone(),
                    e_ext: s.e_ext.clone(),
                })
                .collect(),
            time: self.time,
            steps_done: self.steps_done,
            migrated_total: self.migrated_total,
            comm: self.fabric.stats(),
            comm_phases: self.fabric.phases().collect(),
        }
    }

    /// Overwrites the mutable state with a checkpointed snapshot (the
    /// inverse of [`Self::export_state`]). Per-rank particle *order* is
    /// preserved, so deposition sums re-associate identically and the
    /// resumed trajectory is bit-identical to an uninterrupted run.
    /// Traffic counters are restored in full — the aggregate totals and
    /// the per-phase breakdown both continue across the resume.
    ///
    /// # Panics
    /// Panics if the snapshot's rank count or slab widths do not match
    /// this simulation.
    pub fn restore_state(&mut self, state: &DistState) {
        assert_eq!(state.ranks.len(), self.states.len(), "rank count mismatch");
        for (rank, snap) in self.states.iter_mut().zip(&state.ranks) {
            assert_eq!(snap.x.len(), snap.v.len(), "x/v length mismatch");
            assert_eq!(
                snap.e_ext.len(),
                rank.e_ext.len(),
                "extended slab width mismatch"
            );
            let (q, m) = (rank.particles.charge(), rank.particles.mass());
            rank.particles = Particles::new(snap.x.clone(), snap.v.clone(), q, m);
            rank.e_ext.copy_from_slice(&snap.e_ext);
        }
        self.time = state.time;
        self.steps_done = state.steps_done;
        self.migrated_total = state.migrated_total;
        self.fabric.restore_stats(state.comm, &state.comm_phases);
    }
}

/// One rank's share of a [`DistState`] snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct RankStateSnapshot {
    /// Locally owned particle positions, in storage order.
    pub x: Vec<f64>,
    /// Locally owned particle velocities (staggered half-step level).
    pub v: Vec<f64>,
    /// The extended field slab (owned nodes + halo ghosts).
    pub e_ext: Vec<f64>,
}

/// The mutable state of a [`DistSimulation`] at a step boundary, as
/// exported by [`DistSimulation::export_state`].
#[derive(Debug, Clone, PartialEq)]
pub struct DistState {
    /// Per-rank particle and field state, in rank order.
    pub ranks: Vec<RankStateSnapshot>,
    /// Simulation clock.
    pub time: f64,
    /// Steps performed.
    pub steps_done: usize,
    /// Particles migrated across ranks so far.
    pub migrated_total: u64,
    /// Aggregate fabric traffic so far.
    pub comm: CommStats,
    /// Per-phase traffic breakdown, in the fabric's first-seen order.
    pub comm_phases: Vec<(crate::comm::Phase, CommStats)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::GatherScatter;

    fn config(n_ranks: usize, n_steps: usize) -> DistConfig {
        DistConfig {
            grid: Grid1D::paper(),
            init: TwoStreamInit::quiet(0.2, 0.0, 8_000, 1e-3, 1),
            dt: 0.2,
            n_steps,
            gather_shape: Shape::Cic,
            n_ranks,
            tracked_modes: vec![1],
        }
    }

    #[test]
    fn run_produces_n_plus_one_samples() {
        let mut sim =
            DistSimulation::new(config(4, 10), Box::new(GatherScatter::new(Shape::Cic, 1.0)));
        sim.run();
        assert_eq!(sim.history().len(), 11);
        assert_eq!(sim.steps_done(), 10);
        assert_eq!(sim.total_particles(), 8_000);
    }

    #[test]
    fn particle_count_is_conserved_through_migration() {
        let mut sim =
            DistSimulation::new(config(8, 30), Box::new(GatherScatter::new(Shape::Cic, 1.0)));
        sim.run();
        assert_eq!(sim.total_particles(), 8_000);
        assert!(sim.migrated_total() > 0, "beams must cross slabs");
    }

    #[test]
    fn momentum_conserved_with_matched_shapes() {
        let mut sim =
            DistSimulation::new(config(4, 25), Box::new(GatherScatter::new(Shape::Cic, 1.0)));
        sim.run();
        for (i, p) in sim.history().momentum.iter().enumerate() {
            assert!(p.abs() < 1e-9, "step {i}: momentum {p}");
        }
    }

    #[test]
    fn export_restore_resumes_bit_identically() {
        let strategy = || Box::new(GatherScatter::new(Shape::Cic, 1.0));
        let mut straight = DistSimulation::new(config(4, 30), strategy());
        for _ in 0..12 {
            straight.step();
        }
        let snapshot = straight.export_state();
        let mut resumed = DistSimulation::new(config(4, 30), strategy());
        resumed.restore_state(&snapshot);
        assert_eq!(resumed.steps_done(), 12);
        assert_eq!(resumed.migrated_total(), straight.migrated_total());
        assert_eq!(resumed.comm_stats(), straight.comm_stats());
        for _ in 0..10 {
            straight.step();
            resumed.step();
        }
        assert_eq!(straight.phase_space(), resumed.phase_space());
        assert_eq!(straight.comm_stats(), resumed.comm_stats());
        assert_eq!(straight.migrated_total(), resumed.migrated_total());
        // The per-phase breakdown continues across the resume too (it
        // used to restart from zero — CHANGES.md PR 4 known wart).
        assert_eq!(straight.comm_phases(), resumed.comm_phases());
        assert!(!resumed.comm_phases().is_empty());
    }

    #[test]
    fn gather_local_matches_global_gather() {
        use dlpic_pic::gather::gather_field;
        let grid = Grid1D::paper();
        let topo = Topology::new(4, 64);
        // A known global field.
        let e: Vec<f64> = (0..64)
            .map(|j| (grid.mode_wavenumber(1) * grid.node_position(j)).sin())
            .collect();
        // Particles on rank 2's slab.
        let start = topo.slab_start(2) as f64 * grid.dx();
        let width = topo.cells_per_rank() as f64 * grid.dx();
        let xs: Vec<f64> = (0..100)
            .map(|i| start + (i as f64 + 0.5) / 100.0 * width)
            .collect();
        let p = Particles::new(xs, vec![0.0; 100], -1.0, 1.0);

        let mut reference = vec![0.0; 100];
        gather_field(&p, &grid, Shape::Tsc, &e, &mut reference);

        let mut e_ext = vec![0.0; ext_len(&topo)];
        let s = topo.slab_start(2) as i64;
        for (i, v) in e_ext.iter_mut().enumerate() {
            *v = e[grid.wrap_index(s - HALO as i64 + i as i64)];
        }
        let mut local = vec![0.0; 100];
        gather_local(&p, &grid, &topo, 2, Shape::Tsc, &e_ext, &mut local);
        for (a, b) in local.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-15);
        }
    }
}

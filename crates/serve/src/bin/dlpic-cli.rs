//! The control-plane CLI: submit jobs to a running `dlpic-serve`, watch
//! their sample streams, poll status, fetch results, cancel, drain.
//!
//! ```sh
//! dlpic-cli submit --addr 127.0.0.1:7700 --job '{"backend":"dl-1d","sweep":{…}}'
//! dlpic-cli watch  --addr 127.0.0.1:7700 job-0001
//! dlpic-cli wait   --addr 127.0.0.1:7700 job-0001   # block, then print results
//! dlpic-cli drain  --addr 127.0.0.1:7700
//! ```
//!
//! Every subcommand prints the server's JSON to stdout, one document (or
//! one event) per line, so output pipes straight into `jq`-style tools.

use std::time::Duration;

use dlpic_repro::engine::json::Json;
use dlpic_serve::client::{Backoff, Client};
use dlpic_serve::job::JobRequest;
use dlpic_serve::protocol::{ProtoError, WatchPolicy, DEFAULT_WATCH_QUEUE};
use dlpic_serve::ServeError;

fn usage() -> ! {
    eprintln!(
        "usage: dlpic-cli <submit|status|watch|cancel|drain|result|wait|health|prune> --addr ADDR [args]\n\
         \x20 submit --addr A [--tenant T] [--job-key K] [--retries N] (--job JSON | --job-file PATH)\n\
         \x20 status --addr A [JOB]\n\
         \x20 watch  --addr A [--policy drop_oldest|decimate:N] [--queue N] [--retries N] JOB\n\
         \x20 cancel --addr A JOB\n\
         \x20 drain  --addr A\n\
         \x20 result --addr A JOB [RUN]\n\
         \x20 wait   --addr A [--retries N] JOB\n\
         \x20 health --addr A\n\
         \x20 prune  --addr A [KEEP]\n\
         global: --timeout SECS   connect/read deadline (0 = block forever; default 30)\n\
         submit --retries also honors the server's retry_after_ms advice on\n\
         overloaded / quota-exceeded / circuit-open rejections"
    );
    std::process::exit(2);
}

struct Args {
    addr: Option<String>,
    tenant: String,
    job_json: Option<String>,
    job_key: Option<String>,
    timeout: Option<Duration>,
    retries: usize,
    policy: WatchPolicy,
    queue: usize,
    positional: Vec<String>,
}

fn parse_args(mut args: std::env::Args) -> Args {
    let mut out = Args {
        addr: None,
        tenant: "default".into(),
        job_json: None,
        job_key: None,
        timeout: Some(Duration::from_secs(30)),
        retries: 0,
        policy: WatchPolicy::default(),
        queue: DEFAULT_WATCH_QUEUE,
        positional: Vec::new(),
    };
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => out.addr = Some(value("--addr")),
            "--tenant" => out.tenant = value("--tenant"),
            "--job" => out.job_json = Some(value("--job")),
            "--job-file" => {
                let path = value("--job-file");
                out.job_json = Some(std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(1);
                }));
            }
            "--job-key" => out.job_key = Some(value("--job-key")),
            "--timeout" => {
                let secs: f64 = value("--timeout").parse().unwrap_or_else(|_| {
                    eprintln!("--timeout needs seconds");
                    usage()
                });
                out.timeout = if secs <= 0.0 {
                    None
                } else {
                    Some(Duration::from_secs_f64(secs))
                };
            }
            "--retries" => {
                out.retries = value("--retries").parse().unwrap_or_else(|_| {
                    eprintln!("--retries needs a count");
                    usage()
                })
            }
            "--policy" => {
                out.policy = WatchPolicy::parse(&value("--policy")).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                })
            }
            "--queue" => {
                out.queue = value("--queue").parse().unwrap_or_else(|_| {
                    eprintln!("--queue needs a capacity");
                    usage()
                })
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown flag `{other}`");
                usage()
            }
            other => out.positional.push(other.to_string()),
        }
    }
    out
}

fn run() -> Result<(), ServeError> {
    let mut env_args = std::env::args();
    let _ = env_args.next();
    let Some(command) = env_args.next() else {
        usage()
    };
    let args = parse_args(env_args);
    let addr = args.addr.clone().unwrap_or_else(|| {
        eprintln!("--addr is required");
        usage()
    });
    let mut client = Client::connect_with(&addr, args.timeout)?;
    match command.as_str() {
        "submit" => {
            let text = args.job_json.clone().unwrap_or_else(|| {
                eprintln!("submit needs --job JSON or --job-file PATH");
                usage()
            });
            let doc = Json::parse(&text).map_err(ProtoError::from)?;
            let job = JobRequest::from_json_value(&doc)?;
            let (id, runs, deduped) = if args.retries > 0 {
                client.submit_keyed_retry(
                    &job,
                    &args.tenant,
                    args.job_key.as_deref(),
                    Backoff::attempts(args.retries),
                )?
            } else {
                client.submit_keyed(&job, &args.tenant, args.job_key.as_deref())?
            };
            if deduped {
                println!("{{\"job\":{id:?},\"runs\":{runs},\"deduped\":true}}");
            } else {
                println!("{{\"job\":{id:?},\"runs\":{runs}}}");
            }
        }
        "status" => {
            let doc = client.status(args.positional.first().map(String::as_str))?;
            println!("{}", doc.to_compact());
        }
        "watch" => {
            let job = args.positional.first().unwrap_or_else(|| usage());
            let on_event = |event: &Json| println!("{}", event.to_compact());
            if args.retries > 0 {
                client.watch_retry(
                    job,
                    args.policy,
                    args.queue,
                    Backoff::attempts(args.retries),
                    on_event,
                )?;
            } else {
                client.watch_with(job, args.policy, args.queue, on_event)?;
            }
        }
        "cancel" => {
            let job = args.positional.first().unwrap_or_else(|| usage());
            let n = client.cancel(job)?;
            println!("{{\"cancelled\":{n}}}");
        }
        "drain" => {
            client.drain()?;
            println!("{{\"draining\":true}}");
        }
        "result" => {
            let job = args.positional.first().unwrap_or_else(|| usage());
            let run = args.positional.get(1).map(|r| {
                r.parse().unwrap_or_else(|_| {
                    eprintln!("RUN must be an index");
                    usage()
                })
            });
            for result in client.results(job, run)? {
                println!(
                    "{{\"run\":{},\"name\":{:?},\"state\":{:?},\"summary\":{}}}",
                    result.run,
                    result.name,
                    result.state,
                    result.summary.to_compact()
                );
            }
        }
        "wait" => {
            let job = args.positional.first().unwrap_or_else(|| usage());
            let interval = Duration::from_millis(50);
            let results = if args.retries > 0 {
                client.wait_for_retry(job, interval, Backoff::attempts(args.retries))?
            } else {
                client.wait_for(job, interval)?
            };
            for result in results {
                println!(
                    "{{\"run\":{},\"name\":{:?},\"state\":{:?},\"summary\":{}}}",
                    result.run,
                    result.name,
                    result.state,
                    result.summary.to_compact()
                );
            }
        }
        "health" => {
            let doc = client.health()?;
            println!("{}", doc.to_compact());
        }
        "prune" => {
            let keep = args.positional.first().map(|k| {
                k.parse().unwrap_or_else(|_| {
                    eprintln!("KEEP must be a count");
                    usage()
                })
            });
            let pruned = client.prune(keep)?;
            println!("{{\"pruned\":{pruned}}}");
        }
        _ => usage(),
    }
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("dlpic-cli: {e}");
        std::process::exit(1);
    }
}

//! The shipped rules. Each rule scans a [`SourceFile`]'s token stream
//! (test-masked and comment tokens already excluded) and emits findings;
//! the engine applies levels, inline suppressions, and the baseline.

use crate::source::SourceFile;

/// A raw rule hit, before suppression/baseline filtering.
#[derive(Debug, Clone)]
pub struct RuleHit {
    pub rule: &'static str,
    pub line: usize,
    pub message: String,
}

/// Runs `rule` (by name) against `file`. Unknown names produce nothing —
/// the config layer validates names before this is reached.
pub fn run_rule(rule: &str, file: &SourceFile, out: &mut Vec<RuleHit>) {
    match rule {
        "no-hashmap-iter-in-state" => no_hashmap_in_state(file, out),
        "no-wallclock-in-engine" => no_wallclock(file, out),
        "no-panic-in-request-path" => no_panic_in_request_path(file, out),
        "safety-comment-required" => safety_comment_required(file, out),
        "no-alloc-in-hot-loop" => no_alloc_in_hot_loop(file, out),
        "phase-constants-only" => phase_constants_only(file, out),
        "no-weight-clone" => no_weight_clone(file, out),
        _ => {}
    }
}

/// `no-hashmap-iter-in-state`: the configured state-serialization paths
/// must not mention `HashMap`/`HashSet` at all. Banning the type rather
/// than chasing `.iter()` call sites is deliberate: if the type never
/// enters the module, no refactor can reintroduce order-dependent output.
fn no_hashmap_in_state(file: &SourceFile, out: &mut Vec<RuleHit>) {
    for &i in &file.code_indices() {
        let t = &file.tokens[i];
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            out.push(RuleHit {
                rule: "no-hashmap-iter-in-state",
                line: t.line,
                message: format!(
                    "`{}` in a state-serialization path: its iteration order is \
                     nondeterministic and can leak into checkpoint/spool/status \
                     bytes — use `BTreeMap`/`BTreeSet` or sort keys explicitly",
                    t.text
                ),
            });
        }
    }
}

/// `no-wallclock-in-engine`: flags `Instant::now` / `SystemTime::now`.
fn no_wallclock(file: &SourceFile, out: &mut Vec<RuleHit>) {
    let code = file.code_indices();
    for w in code.windows(4) {
        let [a, b, c, d] = [w[0], w[1], w[2], w[3]];
        let clock = &file.tokens[a];
        if (clock.is_ident("Instant") || clock.is_ident("SystemTime"))
            && file.tokens[b].is_punct(':')
            && file.tokens[c].is_punct(':')
            && file.tokens[d].is_ident("now")
        {
            out.push(RuleHit {
                rule: "no-wallclock-in-engine",
                line: clock.line,
                message: format!(
                    "`{}::now()` in engine/solver code: wall-clock reads in \
                     state-affecting paths break checkpoint/resume bit-identity — \
                     thread timing in from the caller, or annotate a diagnostics-only \
                     site with `// analyze:allow(no-wallclock-in-engine): <why>`",
                    clock.text
                ),
            });
        }
    }
}

/// `no-panic-in-request-path`: flags `.unwrap()` / `.expect(` and the
/// panicking macros in serve request-path modules. One structural
/// exemption: `.unwrap()`/`.expect(..)` directly on `lock()`, `wait(..)`,
/// or `wait_timeout(..)` — propagating Mutex/Condvar poisoning is itself
/// the panic-containment strategy (a poisoned lock means a handler
/// already panicked; limping on would serve corrupt state).
fn no_panic_in_request_path(file: &SourceFile, out: &mut Vec<RuleHit>) {
    let code = file.code_indices();
    for k in 0..code.len() {
        let t = &file.tokens[code[k]];
        // panic-family macros
        if k + 1 < code.len()
            && file.tokens[code[k + 1]].is_punct('!')
            && (t.is_ident("panic")
                || t.is_ident("unreachable")
                || t.is_ident("todo")
                || t.is_ident("unimplemented"))
        {
            out.push(RuleHit {
                rule: "no-panic-in-request-path",
                line: t.line,
                message: format!(
                    "`{}!` in a request-path module: a malformed or hostile \
                     request must produce a structured error response, not a \
                     daemon panic",
                    t.text
                ),
            });
            continue;
        }
        // .unwrap( / .expect(
        if (t.is_ident("unwrap") || t.is_ident("expect"))
            && k >= 1
            && file.tokens[code[k - 1]].is_punct('.')
            && k + 1 < code.len()
            && file.tokens[code[k + 1]].is_punct('(')
        {
            if poison_exempt_receiver(file, &code, k - 1) {
                continue;
            }
            out.push(RuleHit {
                rule: "no-panic-in-request-path",
                line: t.line,
                message: format!(
                    "`.{}(…)` in a request-path module: convert the failure \
                     into a structured `server-error`/`bad-request` response \
                     (Mutex/Condvar poisoning propagation via \
                     `.lock()/.wait()/.wait_timeout()` is exempt)",
                    t.text
                ),
            });
        }
    }
}

/// True when the expression before the `.` at code index `dot` is a call
/// of `lock`, `wait`, or `wait_timeout` — i.e. `x.lock().unwrap()`.
fn poison_exempt_receiver(file: &SourceFile, code: &[usize], dot: usize) -> bool {
    if dot == 0 || !file.tokens[code[dot - 1]].is_punct(')') {
        return false;
    }
    // Walk back to the matching `(`.
    let mut depth = 0isize;
    let mut j = dot - 1;
    loop {
        let t = &file.tokens[code[j]];
        if t.is_punct(')') {
            depth += 1;
        } else if t.is_punct('(') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        if j == 0 {
            return false;
        }
        j -= 1;
    }
    if j == 0 {
        return false;
    }
    let callee = &file.tokens[code[j - 1]];
    callee.is_ident("lock") || callee.is_ident("wait") || callee.is_ident("wait_timeout")
}

/// `safety-comment-required`: every `unsafe` token must have a
/// `// SAFETY:` comment or a `# Safety` doc section in the comment /
/// attribute block directly above it (or on its own line).
fn safety_comment_required(file: &SourceFile, out: &mut Vec<RuleHit>) {
    for &i in &file.code_indices() {
        let t = &file.tokens[i];
        if !t.is_ident("unsafe") {
            continue;
        }
        if has_safety_context(file, t.line) {
            continue;
        }
        out.push(RuleHit {
            rule: "safety-comment-required",
            line: t.line,
            message: "`unsafe` without a justification: put a `// SAFETY: …` \
                      comment (or a `/// # Safety` doc section) directly above \
                      stating why the contract holds"
                .to_string(),
        });
    }
}

/// Scans the line of the `unsafe` token and the contiguous block of
/// comment/attribute lines above it for a safety marker.
fn has_safety_context(file: &SourceFile, line: usize) -> bool {
    let marker = |l: &str| l.contains("SAFETY:") || l.contains("# Safety");
    if marker(file.snippet(line)) {
        return true;
    }
    let mut n = line - 1; // 1-based line above
    while n >= 1 {
        let s = file.snippet(n);
        let attached = s.starts_with("//")
            || s.starts_with("#[")
            || s.starts_with("#!")
            || s.starts_with(")]");
        if !attached {
            return false;
        }
        if marker(s) {
            return true;
        }
        n -= 1;
    }
    false
}

const ALLOC_CTORS: [&str; 3] = ["Vec", "String", "Box"];
const ALLOC_CTOR_FNS: [&str; 3] = ["new", "with_capacity", "from"];
const ALLOC_METHODS: [&str; 5] = ["to_vec", "to_string", "to_owned", "clone", "collect"];
const ALLOC_MACROS: [&str; 2] = ["vec", "format"];

/// `no-alloc-in-hot-loop`: in files opted in with `// analyze:hot`,
/// flags allocation-shaped calls inside `for`/`while`/`loop` bodies.
fn no_alloc_in_hot_loop(file: &SourceFile, out: &mut Vec<RuleHit>) {
    if !file.hot {
        return;
    }
    let code = file.code_indices();
    // Loop-body tracking: after a loop keyword, the body is the first `{`
    // at zero paren/bracket depth (Rust forbids bare struct literals in
    // loop headers, so this is reliable without a parser).
    let mut pending_loops = 0usize; // loop keywords whose `{` we await
    let mut header_depth = 0isize;
    let mut loop_stack: Vec<isize> = Vec::new(); // brace depth of each open loop body
    let mut brace = 0isize;

    for k in 0..code.len() {
        let t = &file.tokens[code[k]];
        if pending_loops > 0 {
            if t.is_punct('(') || t.is_punct('[') {
                header_depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                header_depth -= 1;
            } else if t.is_punct('{') && header_depth == 0 {
                brace += 1;
                loop_stack.push(brace);
                pending_loops -= 1;
                continue;
            }
        }
        if t.is_punct('{') {
            brace += 1;
        } else if t.is_punct('}') {
            if loop_stack.last() == Some(&brace) {
                loop_stack.pop();
            }
            brace -= 1;
        } else if t.is_ident("while") || t.is_ident("loop") {
            pending_loops += 1;
            header_depth = 0;
        } else if t.is_ident("for") && for_is_a_loop(file, &code, k) {
            // `for` also appears in `impl Trait for Type` and `for<'a>`
            // bounds — only a header containing a top-level `in` before
            // its `{` is a loop.
            pending_loops += 1;
            header_depth = 0;
        }

        if loop_stack.is_empty() {
            continue;
        }
        let mut hit: Option<String> = None;
        // Vec::new / String::with_capacity / Box::new / Vec::from …
        if ALLOC_CTORS.iter().any(|c| t.is_ident(c))
            && k + 3 < code.len()
            && file.tokens[code[k + 1]].is_punct(':')
            && file.tokens[code[k + 2]].is_punct(':')
            && ALLOC_CTOR_FNS
                .iter()
                .any(|f| file.tokens[code[k + 3]].is_ident(f))
        {
            hit = Some(format!("{}::{}", t.text, file.tokens[code[k + 3]].text));
        }
        // vec![…] / format!(…)
        if ALLOC_MACROS.iter().any(|m| t.is_ident(m))
            && k + 1 < code.len()
            && file.tokens[code[k + 1]].is_punct('!')
        {
            hit = Some(format!("{}!", t.text));
        }
        // .to_vec() / .clone() / .collect::<…>() …
        if ALLOC_METHODS.iter().any(|m| t.is_ident(m))
            && k >= 1
            && file.tokens[code[k - 1]].is_punct('.')
        {
            hit = Some(format!(".{}()", t.text));
        }
        if let Some(what) = hit {
            out.push(RuleHit {
                rule: "no-alloc-in-hot-loop",
                line: t.line,
                message: format!(
                    "`{what}` inside a loop body of an `analyze:hot` file: \
                     hoist the allocation out of the loop or reuse a \
                     caller-owned scratch buffer"
                ),
            });
        }
    }
}

/// True when the `for` at code index `k` heads a real loop: an `in`
/// appears at zero paren/bracket depth before the first top-level `{`.
fn for_is_a_loop(file: &SourceFile, code: &[usize], k: usize) -> bool {
    let mut depth = 0isize;
    for &idx in &code[k + 1..] {
        let t = &file.tokens[idx];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 {
            if t.is_ident("in") {
                return true;
            }
            if t.is_punct('{') || t.is_punct(';') {
                return false;
            }
        }
    }
    false
}

/// `phase-constants-only`: every `.send(from, to, phase, payload)` call
/// must pass a `PHASE_*` constant as its third argument.
fn phase_constants_only(file: &SourceFile, out: &mut Vec<RuleHit>) {
    let code = file.code_indices();
    for k in 0..code.len() {
        let t = &file.tokens[code[k]];
        if !(t.is_ident("send")
            && k >= 1
            && file.tokens[code[k - 1]].is_punct('.')
            && k + 1 < code.len()
            && file.tokens[code[k + 1]].is_punct('('))
        {
            continue;
        }
        // Split the argument list at top-level commas; collect arg 2.
        let mut depth = 0isize;
        let mut arg = 0usize;
        let mut phase_ok = false;
        let mut arg_count = 0usize;
        let mut j = k + 1;
        while j < code.len() {
            let a = &file.tokens[code[j]];
            if a.is_punct('(') || a.is_punct('[') || a.is_punct('{') {
                depth += 1;
            } else if a.is_punct(')') || a.is_punct(']') || a.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if a.is_punct(',') && depth == 1 {
                arg += 1;
            } else if depth >= 1 {
                if arg == 0 && arg_count == 0 {
                    arg_count = 1; // saw at least one token → ≥1 arg
                }
                if arg == 2
                    && a.kind == crate::lexer::TokenKind::Ident
                    && a.text.starts_with("PHASE_")
                {
                    phase_ok = true;
                }
            }
            j += 1;
        }
        let total_args = if arg_count == 0 { 0 } else { arg + 1 };
        if total_args < 3 || !phase_ok {
            out.push(RuleHit {
                rule: "phase-constants-only",
                line: t.line,
                message: "`.send(…)` without a `comm::PHASE_*` constant as the \
                          phase argument: ad-hoc phase strings drift from \
                          `KNOWN_PHASES` and break checkpoint restore — add a \
                          constant to `comm.rs` and use it here"
                    .to_string(),
            });
        }
    }
}

/// Identifier fragments that name a weight-carrying value. Matched
/// case-insensitively as substrings (`model_1d`, `trained_bundle`, …);
/// `net` alone is matched exactly to avoid `planet`/`netmask` noise.
const WEIGHT_NAMES: [&str; 3] = ["bundle", "model", "network"];

/// `no-weight-clone`: flags `<ident>.clone()` where the receiver names a
/// model/bundle/network. Cloning a trained network duplicates its entire
/// weight allocation per session — the shared-fleet memory wins depend on
/// every session holding the same `Arc<FrozenModel>`. `Arc::clone(&x)`
/// (path syntax, no `.`) is the sanctioned way to take another handle and
/// is structurally exempt.
fn no_weight_clone(file: &SourceFile, out: &mut Vec<RuleHit>) {
    let code = file.code_indices();
    for k in 2..code.len() {
        let t = &file.tokens[code[k]];
        if !(t.is_ident("clone")
            && file.tokens[code[k - 1]].is_punct('.')
            && k + 1 < code.len()
            && file.tokens[code[k + 1]].is_punct('('))
        {
            continue;
        }
        let recv = &file.tokens[code[k - 2]];
        if recv.kind != crate::lexer::TokenKind::Ident {
            continue;
        }
        let name = recv.text.to_ascii_lowercase();
        if name != "net" && !WEIGHT_NAMES.iter().any(|w| name.contains(w)) {
            continue;
        }
        out.push(RuleHit {
            rule: "no-weight-clone",
            line: t.line,
            message: format!(
                "`{}.clone()` duplicates a full weight allocation: freeze \
                 once and share an `Arc<FrozenModel>`/`FrozenBundle` across \
                 sessions (take extra handles with `Arc::clone(&…)`), or \
                 annotate a genuinely per-copy site with \
                 `// analyze:allow(no-weight-clone): <why>`",
                recv.text
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn hits(rule: &str, src: &str) -> Vec<RuleHit> {
        let f = SourceFile::parse("x.rs", src);
        let mut out = Vec::new();
        run_rule(rule, &f, &mut out);
        out
    }

    #[test]
    fn poison_exemption_covers_chained_locks_only() {
        let src = "fn f() {\n\
                   let a = state.lock().unwrap();\n\
                   let b = cv.wait_timeout(g, d).unwrap();\n\
                   let c = maybe.unwrap();\n\
                   let d = spool.as_ref().expect(\"set\");\n\
                   }\n";
        let got = hits("no-panic-in-request-path", src);
        let lines: Vec<usize> = got.iter().map(|h| h.line).collect();
        assert_eq!(lines, vec![4, 5], "{got:?}");
    }

    #[test]
    fn loop_tracking_flags_only_loop_bodies() {
        let src = "// analyze:hot\n\
                   fn f(v: &[f32]) -> Vec<f32> {\n\
                   let mut out = Vec::new();\n\
                   for x in v.iter() {\n\
                       let s = format!(\"{x}\");\n\
                       while s.len() > 0 { let t = s.clone(); }\n\
                   }\n\
                   let fine = v.to_vec();\n\
                   out\n\
                   }\n";
        let got = hits("no-alloc-in-hot-loop", src);
        let lines: Vec<usize> = got.iter().map(|h| h.line).collect();
        assert_eq!(lines, vec![5, 6], "{got:?}");
    }

    #[test]
    fn impl_for_is_not_a_loop() {
        let src = "// analyze:hot\n\
                   impl Clone for Thing {\n\
                       fn clone(&self) -> Self { self.inner.clone() }\n\
                   }\n\
                   fn f(v: &[f32]) { for x in v { let y = x.clone(); } }\n";
        let got = hits("no-alloc-in-hot-loop", src);
        let lines: Vec<usize> = got.iter().map(|h| h.line).collect();
        assert_eq!(lines, vec![5], "{got:?}");
    }

    #[test]
    fn send_arg_positions() {
        let src = "fn f() {\n\
                   fabric.send(rank, 0, crate::comm::PHASE_RHO_GATHER, buf.to_vec());\n\
                   fabric.send(rank, 0, \"halo\", buf.to_vec());\n\
                   fabric.send(g(1, 2), h(3, 4), PHASE_X, v);\n\
                   tx.send(value);\n\
                   }\n";
        let got = hits("phase-constants-only", src);
        let lines: Vec<usize> = got.iter().map(|h| h.line).collect();
        assert_eq!(lines, vec![3, 5], "{got:?}");
    }

    #[test]
    fn weight_clone_matches_receiver_names_not_arc_handles() {
        let src = "fn f() {\n\
                   let a = bundle.clone();\n\
                   let b = self.model_1d.clone();\n\
                   let c = trained_network.clone();\n\
                   let d = net.clone();\n\
                   let e = Arc::clone(&bundle);\n\
                   let f = frozen.clone();\n\
                   let g = planet.clone();\n\
                   let h = spec.scenario.clone();\n\
                   }\n";
        let got = hits("no-weight-clone", src);
        let lines: Vec<usize> = got.iter().map(|h| h.line).collect();
        assert_eq!(lines, vec![2, 3, 4, 5], "{got:?}");
    }

    #[test]
    fn safety_scan_accepts_comment_doc_and_attr_stacks() {
        let ok = "/// Does things.\n\
                  /// # Safety\n\
                  /// Caller upholds X.\n\
                  #[target_feature(enable = \"avx512f\")]\n\
                  pub unsafe fn k() {}\n\
                  fn f() {\n\
                      // SAFETY: bounds asserted above.\n\
                      unsafe { k() }\n\
                  }\n";
        assert!(hits("safety-comment-required", ok).is_empty());
        let bad =
            "fn f() {\n    let x = 1;\n    unsafe { core::hint::unreachable_unchecked() }\n}\n";
        assert_eq!(hits("safety-comment-required", bad).len(), 1);
    }
}

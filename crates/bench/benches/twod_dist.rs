//! Criterion benches of the extension subsystems: the 2-D PIC cycle
//! stages, the two 2-D Poisson backends, and one distributed step under
//! each field-solve strategy.

use criterion::{criterion_group, criterion_main, Criterion};
use dlpic_core::builder::ArchSpec;
use dlpic_core::field_solver::DlFieldSolver;
use dlpic_core::normalize::NormStats;
use dlpic_core::phase_space::{BinningShape, PhaseGridSpec};
use dlpic_core::twod::{arch_2d, bin_density, DensityBinning, Dl2DFieldSolver};
use dlpic_ddecomp::sim::{DistConfig, DistSimulation};
use dlpic_ddecomp::strategy::{DistFieldStrategy, GatherScatter, ReplicatedDl};
use dlpic_pic::grid::Grid1D;
use dlpic_pic::init::TwoStreamInit;
use dlpic_pic::shape::Shape;
use dlpic_pic2d::deposit2d::deposit_charge;
use dlpic_pic2d::grid2d::Grid2D;
use dlpic_pic2d::init2d::TwoStream2DInit;
use dlpic_pic2d::poisson2d::{Poisson2DSolver, SorPoisson2D, SpectralPoisson2D};
use dlpic_pic2d::simulation2d::{Pic2DConfig, Simulation2D};
use dlpic_pic2d::solver2d::TraditionalSolver2D;
use std::time::Duration;

fn tune(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
}

fn bench_deposit_2d(c: &mut Criterion) {
    let grid = Grid2D::new(32, 32, 2.0532, 2.0532);
    let particles = TwoStream2DInit::random(0.2, 0.01, 131_072, 3).build(&grid);
    let mut group = c.benchmark_group("pic2d_deposit_128k");
    tune(&mut group);
    for shape in [Shape::Ngp, Shape::Cic, Shape::Tsc] {
        group.bench_function(format!("{shape:?}"), |b| {
            let mut rho = grid.zeros();
            b.iter(|| {
                rho.iter_mut().for_each(|r| *r = 0.0);
                deposit_charge(&particles, &grid, shape, &mut rho);
            });
        });
    }
    group.finish();
}

fn bench_poisson_2d(c: &mut Criterion) {
    let grid = Grid2D::new(64, 64, 2.0532, 2.0532);
    let kx = grid.mode_wavenumber_x(1);
    let ky = grid.mode_wavenumber_y(1);
    let mut rho = grid.zeros();
    for iy in 0..grid.ny() {
        for ix in 0..grid.nx() {
            let (x, y) = (ix as f64 * grid.dx(), iy as f64 * grid.dy());
            rho[grid.index(ix, iy)] = (kx * kx + ky * ky) * (kx * x).cos() * (ky * y).cos();
        }
    }
    let mut group = c.benchmark_group("pic2d_poisson_64x64");
    tune(&mut group);
    group.bench_function("spectral", |b| {
        let mut solver = SpectralPoisson2D::new();
        let mut phi = grid.zeros();
        b.iter(|| solver.solve(&grid, &rho, &mut phi));
    });
    group.bench_function("sor", |b| {
        let mut solver = SorPoisson2D {
            tolerance: 1e-8,
            ..Default::default()
        };
        let mut phi = grid.zeros();
        b.iter(|| solver.solve(&grid, &rho, &mut phi));
    });
    group.finish();
}

fn bench_field_solve_2d(c: &mut Criterion) {
    // Traditional (deposit + Poisson + gradient) vs DL (bin + inference):
    // the §VII performance comparison, 2-D edition.
    let grid = Grid2D::new(32, 32, 2.0532, 2.0532);
    let particles = TwoStream2DInit::random(0.2, 0.01, 131_072, 5).build(&grid);
    let mut group = c.benchmark_group("pic2d_field_solve_128k");
    tune(&mut group);
    group.bench_function("traditional", |b| {
        use dlpic_pic2d::solver2d::FieldSolver2D;
        let mut solver = TraditionalSolver2D::default_config();
        let mut ex = grid.zeros();
        let mut ey = grid.zeros();
        b.iter(|| solver.solve(&particles, &grid, &mut ex, &mut ey));
    });
    group.bench_function("dl_mlp_256", |b| {
        use dlpic_pic2d::solver2d::FieldSolver2D;
        let arch = arch_2d(&grid, vec![256]);
        let mut solver = Dl2DFieldSolver::new(
            arch.build(0),
            DensityBinning::Cic,
            NormStats::identity(),
            "dl-2d",
        );
        let mut ex = grid.zeros();
        let mut ey = grid.zeros();
        b.iter(|| solver.solve(&particles, &grid, &mut ex, &mut ey));
    });
    group.bench_function("bin_density_only", |b| {
        let mut hist = vec![0.0f32; grid.nodes()];
        b.iter(|| bin_density(&particles, &grid, DensityBinning::Cic, &mut hist));
    });
    group.finish();
}

fn bench_simulation_step_2d(c: &mut Criterion) {
    let cfg = Pic2DConfig {
        grid: Grid2D::new(32, 32, 2.0532, 2.0532),
        init: TwoStream2DInit::quiet(0.2, 0.01, 131_072, 1e-3, 7),
        dt: 0.2,
        n_steps: 0,
        gather_shape: Shape::Cic,
        tracked_modes: vec![(1, 0)],
    };
    let mut sim = Simulation2D::new(cfg, Box::new(TraditionalSolver2D::default_config()));
    let mut group = c.benchmark_group("pic2d_full_step_128k");
    tune(&mut group);
    group.bench_function("traditional", |b| b.iter(|| sim.step()));
    group.finish();
}

fn bench_distributed_step(c: &mut Criterion) {
    let config = |n_ranks: usize| DistConfig {
        grid: Grid1D::paper(),
        init: TwoStreamInit::quiet(0.2, 0.025, 64_000, 1e-3, 11),
        dt: 0.2,
        n_steps: 0,
        gather_shape: Shape::Cic,
        n_ranks,
        tracked_modes: vec![],
    };
    let dl_solver = || {
        let spec = PhaseGridSpec::scaled();
        let arch = ArchSpec::Mlp {
            input: spec.cells(),
            hidden: vec![64],
            output: 64,
        };
        DlFieldSolver::new(
            arch.build(0),
            spec,
            BinningShape::Ngp,
            NormStats::identity(),
            arch.input_kind(),
            "dl-mlp",
        )
    };
    let mut group = c.benchmark_group("dist_step_64k_4ranks");
    tune(&mut group);
    group.bench_function("gather_scatter", |b| {
        let mut sim = DistSimulation::new(config(4), Box::new(GatherScatter::new(Shape::Cic, 1.0)));
        b.iter(|| sim.step());
    });
    group.bench_function("replicated_dl", |b| {
        let strat: Box<dyn DistFieldStrategy> = Box::new(ReplicatedDl::new(dl_solver()));
        let mut sim = DistSimulation::new(config(4), strat);
        b.iter(|| sim.step());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_deposit_2d,
    bench_poisson_2d,
    bench_field_solve_2d,
    bench_simulation_step_2d,
    bench_distributed_step
);
criterion_main!(benches);

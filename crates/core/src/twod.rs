//! The two-dimensional DL field solver — the "two-dimensional systems"
//! extension named as future work in the paper's §VII.
//!
//! ## Input representation
//!
//! In 1-D the paper feeds the network the `(x, v)` phase-space histogram.
//! The direct 2-D analogue is the four-dimensional `(x, y, vx, vy)` grid,
//! which is intractable as a dense network input (a 32⁴ grid has one
//! million bins). The electrostatic field, however, depends on the
//! particle state *only through the charge density* — in 1-D the
//! phase-space histogram strictly contains ρ(x) as its column sums, which
//! is the part the network needs. The 2-D extension therefore feeds the
//! configuration-space histogram ρ(x, y) (the 2-D column-sum analogue) and
//! predicts both field components stacked as `[Ex | Ey]`. This is recorded
//! as a substitution in DESIGN.md.
//!
//! The rest of the method is unchanged: histograms are min–max normalized
//! with the training-set statistics (paper Eq. 5), the network is an MLP
//! with ReLU hidden layers and a linear output trained with Adam on MSE,
//! and the solver drops into the shared 2-D simulation loop behind
//! [`FieldSolver2D`].

use crate::builder::ArchSpec;
use crate::field_solver::NetExec;
use crate::normalize::NormStats;
use dlpic_nn::data::Dataset;
use dlpic_nn::frozen::{FreezeError, FrozenModel, Precision};
use dlpic_nn::loss::Mse;
use dlpic_nn::network::{PredictWorkspace, Sequential};
use dlpic_nn::optimizer::adam::Adam;
use dlpic_nn::tensor::Tensor;
use dlpic_nn::trainer::{train, TrainConfig, TrainHistory};
use dlpic_pic2d::grid2d::Grid2D;
use dlpic_pic2d::particles2d::Particles2D;
use dlpic_pic2d::simulation2d::{Pic2DConfig, Simulation2D};
use dlpic_pic2d::solver2d::{FieldSolver2D, PhasedFieldSolver2D, TraditionalSolver2D};
use std::sync::Arc;

/// Binning order for the 2-D density histogram (mirrors the 1-D
/// `BinningShape`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DensityBinning {
    /// Count each particle into its nearest cell.
    #[default]
    Ngp,
    /// Bilinear spreading over the four surrounding cells.
    Cic,
}

/// Bins particle positions into a row-major `nx×ny` count histogram
/// (`out[iy * nx + ix]`, `x` fastest). Weights sum to the particle count.
/// `out` is overwritten.
///
/// # Panics
/// Panics if `out` length differs from the grid node count.
pub fn bin_density(particles: &Particles2D, grid: &Grid2D, shape: DensityBinning, out: &mut [f32]) {
    assert_eq!(out.len(), grid.nodes(), "density buffer size mismatch");
    out.fill(0.0);
    let (nx, ny) = (grid.nx(), grid.ny());
    let inv_dx = 1.0 / grid.dx();
    let inv_dy = 1.0 / grid.dy();

    match shape {
        DensityBinning::Ngp => {
            for (&x, &y) in particles.x.iter().zip(&particles.y) {
                let ix = ((x * inv_dx + 0.5) as usize) % nx;
                let iy = ((y * inv_dy + 0.5) as usize) % ny;
                out[iy * nx + ix] += 1.0;
            }
        }
        DensityBinning::Cic => {
            for (&x, &y) in particles.x.iter().zip(&particles.y) {
                let fx = x * inv_dx;
                let ix0 = fx.floor();
                let wx1 = fx - ix0;
                let ix0 = (ix0 as i64).rem_euclid(nx as i64) as usize;
                let ix1 = if ix0 + 1 == nx { 0 } else { ix0 + 1 };
                let fy = y * inv_dy;
                let iy0 = fy.floor();
                let wy1 = fy - iy0;
                let iy0 = (iy0 as i64).rem_euclid(ny as i64) as usize;
                let iy1 = if iy0 + 1 == ny { 0 } else { iy0 + 1 };
                let (wx0, wy0) = (1.0 - wx1, 1.0 - wy1);
                out[iy0 * nx + ix0] += (wy0 * wx0) as f32;
                out[iy0 * nx + ix1] += (wy0 * wx1) as f32;
                out[iy1 * nx + ix0] += (wy1 * wx0) as f32;
                out[iy1 * nx + ix1] += (wy1 * wx1) as f32;
            }
        }
    }
}

/// One training sample of the 2-D extension: a density histogram and the
/// associated field components.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample2D {
    /// Raw (unnormalized) density histogram, `nx·ny` counts.
    pub hist: Vec<f32>,
    /// `Ex` on the nodes.
    pub ex: Vec<f32>,
    /// `Ey` on the nodes.
    pub ey: Vec<f32>,
}

/// Runs a traditional 2-D PIC simulation and harvests one sample every
/// `stride` steps (stride 1 = every step), mirroring the paper's 1-D
/// harvesting procedure.
pub fn harvest_2d(cfg: Pic2DConfig, binning: DensityBinning, stride: usize) -> Vec<Sample2D> {
    assert!(stride > 0, "stride must be positive");
    let n_steps = cfg.n_steps;
    let grid = cfg.grid.clone();
    let mut sim = Simulation2D::new(cfg, Box::new(TraditionalSolver2D::default_config()));
    let mut samples = Vec::with_capacity(n_steps / stride + 1);
    let mut hist = vec![0.0f32; grid.nodes()];
    for step in 0..n_steps {
        sim.step();
        if step % stride != 0 {
            continue;
        }
        bin_density(sim.particles(), &grid, binning, &mut hist);
        samples.push(Sample2D {
            hist: hist.clone(),
            ex: sim.ex().iter().map(|&v| v as f32).collect(),
            ey: sim.ey().iter().map(|&v| v as f32).collect(),
        });
    }
    samples
}

/// Assembles an [`Dataset`] from samples: inputs are min–max normalized
/// histograms (statistics returned for inference-time reuse), targets are
/// `[Ex | Ey]` stacked per sample.
///
/// # Panics
/// Panics on an empty sample list.
pub fn build_dataset_2d(samples: &[Sample2D]) -> (Dataset, NormStats) {
    assert!(!samples.is_empty(), "no samples");
    let in_len = samples[0].hist.len();
    let out_len = samples[0].ex.len() + samples[0].ey.len();
    let mut all_inputs: Vec<f32> = Vec::with_capacity(samples.len() * in_len);
    for s in samples {
        all_inputs.extend_from_slice(&s.hist);
    }
    let norm = NormStats::from_data(&all_inputs);
    norm.apply(&mut all_inputs);
    let mut targets: Vec<f32> = Vec::with_capacity(samples.len() * out_len);
    for s in samples {
        targets.extend_from_slice(&s.ex);
        targets.extend_from_slice(&s.ey);
    }
    let x = Tensor::new(all_inputs, &[samples.len(), in_len]);
    let y = Tensor::new(targets, &[samples.len(), out_len]);
    (Dataset::new(x, y), norm)
}

/// The default 2-D architecture: an MLP from `nodes` density bins to
/// `2·nodes` field values, with the same ReLU-hidden / linear-output
/// structure as the paper's 1-D MLP.
pub fn arch_2d(grid: &Grid2D, hidden: Vec<usize>) -> ArchSpec {
    ArchSpec::Mlp {
        input: grid.nodes(),
        hidden,
        output: 2 * grid.nodes(),
    }
}

/// Configuration for [`train_2d_solver`].
#[derive(Debug, Clone)]
pub struct Train2DConfig {
    /// Hidden-layer widths.
    pub hidden: Vec<usize>,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Weight-init / shuffle seed.
    pub seed: u64,
}

impl Default for Train2DConfig {
    fn default() -> Self {
        Self {
            hidden: vec![256, 256],
            learning_rate: 1e-3,
            epochs: 40,
            batch_size: 32,
            seed: 0,
        }
    }
}

/// Trains a 2-D DL field solver on harvested samples.
///
/// # Panics
/// Panics on an empty sample list.
pub fn train_2d_solver(
    grid: &Grid2D,
    samples: &[Sample2D],
    binning: DensityBinning,
    cfg: &Train2DConfig,
) -> (Dl2DFieldSolver, TrainHistory) {
    let (dataset, norm) = build_dataset_2d(samples);
    let arch = arch_2d(grid, cfg.hidden.clone());
    let mut net = arch.build(cfg.seed);
    let mut opt = Adam::new(cfg.learning_rate);
    let tc = TrainConfig {
        epochs: cfg.epochs,
        batch_size: cfg.batch_size,
        shuffle_seed: cfg.seed,
        log_every: 0,
    };
    let history = train(&mut net, &Mse, &mut opt, &dataset, None, &tc);
    let reference_mass: f32 = samples[0].hist.iter().sum();
    let solver =
        Dl2DFieldSolver::new(net, binning, norm, "dl-2d-mlp").with_reference_mass(reference_mass);
    (solver, history)
}

/// A frozen, `Arc`-shareable snapshot of a trained 2-D solver: the
/// immutable model plus the inference-time metadata needed to mint
/// fleet members that all read **one** weight allocation (the 2-D
/// analogue of the 1-D `FrozenBundle`).
#[derive(Debug, Clone)]
pub struct Frozen2DModel {
    model: Arc<FrozenModel>,
    binning: DensityBinning,
    norm: NormStats,
    reference_mass: f32,
    name: &'static str,
}

impl Frozen2DModel {
    /// Freezes a trained network into a shareable 2-D model.
    pub fn from_network(
        net: &Sequential,
        binning: DensityBinning,
        norm: NormStats,
        reference_mass: f32,
        name: &'static str,
        precision: Precision,
    ) -> Result<Self, FreezeError> {
        Ok(Self {
            model: Arc::new(net.freeze(precision)?),
            binning,
            norm,
            reference_mass,
            name,
        })
    }

    /// Mints one fleet member over the shared weight allocation. At
    /// [`Precision::F32`] the member is bit-identical to the solver the
    /// model was frozen from.
    pub fn solver(&self) -> Dl2DFieldSolver {
        Dl2DFieldSolver::shared(Arc::clone(&self.model), self.binning, self.norm, self.name)
            .with_reference_mass(self.reference_mass)
    }

    /// The shared frozen model.
    pub fn model(&self) -> &Arc<FrozenModel> {
        &self.model
    }

    /// Bytes of the one shared weight allocation.
    pub fn weight_bytes(&self) -> usize {
        self.model.weight_bytes()
    }
}

/// A neural-network-backed 2-D field solver (density histogram in,
/// `[Ex | Ey]` out), pluggable into [`Simulation2D`].
pub struct Dl2DFieldSolver {
    net: NetExec,
    binning: DensityBinning,
    norm: NormStats,
    name: &'static str,
    reference_mass: f32,
    scratch: Vec<f32>,
    out_scratch: Vec<f32>,
    input: Tensor,
    workspace: PredictWorkspace,
    /// Input/output widths, learned at the first solve (0 = unknown; the
    /// initial field solve during simulation construction fills them).
    in_nodes: usize,
    out_len: usize,
}

impl Dl2DFieldSolver {
    /// Wraps a trained network. `norm` must be the training-input
    /// statistics.
    pub fn new(
        net: Sequential,
        binning: DensityBinning,
        norm: NormStats,
        name: &'static str,
    ) -> Self {
        Self::with_exec(NetExec::Owned(net), binning, norm, name)
    }

    /// Wraps an `Arc`-shared frozen model (see [`Frozen2DModel`]).
    pub fn shared(
        model: Arc<FrozenModel>,
        binning: DensityBinning,
        norm: NormStats,
        name: &'static str,
    ) -> Self {
        Self::with_exec(NetExec::Shared(model), binning, norm, name)
    }

    fn with_exec(
        net: NetExec,
        binning: DensityBinning,
        norm: NormStats,
        name: &'static str,
    ) -> Self {
        Self {
            net,
            binning,
            norm,
            name,
            reference_mass: 0.0,
            scratch: Vec::new(),
            out_scratch: Vec::new(),
            input: Tensor::zeros(&[0]),
            workspace: PredictWorkspace::new(),
            in_nodes: 0,
            out_len: 0,
        }
    }

    /// Sets the training histograms' total mass; inference histograms are
    /// rescaled to it (same extensivity argument as the 1-D solver).
    pub fn with_reference_mass(mut self, mass: f32) -> Self {
        self.reference_mass = mass;
        self
    }

    /// Immutable access to the wrapped network, when this solver owns a
    /// private copy (`None` on the `Arc`-shared frozen path).
    pub fn network(&self) -> Option<&Sequential> {
        match &self.net {
            NetExec::Owned(net) => Some(net),
            NetExec::Shared(_) => None,
        }
    }

    /// Mutable access to the owned network (parameter serialization and
    /// benchmark reuse); `None` on the shared frozen path.
    pub fn network_mut(&mut self) -> Option<&mut Sequential> {
        match &mut self.net {
            NetExec::Owned(net) => Some(net),
            NetExec::Shared(_) => None,
        }
    }

    /// The shared frozen model, when this solver runs on one.
    pub fn frozen(&self) -> Option<&Arc<FrozenModel>> {
        match &self.net {
            NetExec::Owned(_) => None,
            NetExec::Shared(model) => Some(model),
        }
    }

    /// Freezes this solver's network into a shareable [`Frozen2DModel`].
    /// On the shared path the existing allocation is re-shared (its
    /// stored precision wins — re-quantizing without the f32 source is
    /// impossible).
    pub fn freeze(&self, precision: Precision) -> Result<Frozen2DModel, FreezeError> {
        let model = match &self.net {
            NetExec::Owned(net) => Arc::new(net.freeze(precision)?),
            NetExec::Shared(model) => Arc::clone(model),
        };
        Ok(Frozen2DModel {
            model,
            binning: self.binning,
            norm: self.norm,
            reference_mass: self.reference_mass,
            name: self.name,
        })
    }

    /// The training-input normalization statistics.
    pub fn norm(&self) -> NormStats {
        self.norm
    }

    /// The training histograms' total mass (0 = unknown).
    pub fn reference_mass(&self) -> f32 {
        self.reference_mass
    }

    /// Runs one inference from an already-normalized histogram; returns
    /// the stacked `[Ex | Ey]` prediction.
    pub fn predict_from_histogram(&mut self, histogram: &[f32]) -> Vec<f32> {
        self.input.resize_in_place(&[1, histogram.len()]);
        self.input.data_mut().copy_from_slice(histogram);
        self.net
            .predict_batch_into(&self.input, &mut self.workspace)
            .data()
            .to_vec()
    }

    /// Inference + field write from the prepared `self.scratch` — phases
    /// 2–3 on the solver's own buffers (the in-process solo path).
    fn infer_scratch_into(&mut self, ex: &mut [f64], ey: &mut [f64]) {
        let scratch = std::mem::take(&mut self.scratch);
        let mut out = std::mem::take(&mut self.out_scratch);
        out.resize(2 * ex.len(), 0.0);
        self.infer_batch(&scratch, 1, &mut out);
        self.apply_output(&out, ex, ey);
        self.scratch = scratch;
        self.out_scratch = out;
    }
}

impl FieldSolver2D for Dl2DFieldSolver {
    fn solve(&mut self, particles: &Particles2D, grid: &Grid2D, ex: &mut [f64], ey: &mut [f64]) {
        // The same three phases the ensemble scheduler drives externally:
        // prepare (bin + mass-rescale + normalize), one m = 1 inference,
        // apply — bit-identical to a batched solve of the same state.
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.resize(grid.nodes(), 0.0);
        self.prepare_input(particles, grid, &mut scratch);
        self.scratch = scratch;
        self.infer_scratch_into(ex, ey);
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn phased(&mut self) -> Option<&mut dyn PhasedFieldSolver2D> {
        Some(self)
    }

    fn weight_storage(&self) -> Option<(usize, usize)> {
        Some(self.net.weight_storage())
    }
}

impl PhasedFieldSolver2D for Dl2DFieldSolver {
    fn input_len(&self) -> usize {
        assert!(
            self.in_nodes > 0,
            "input width is unknown before the first solve"
        );
        self.in_nodes
    }

    fn output_len(&self) -> usize {
        assert!(
            self.out_len > 0,
            "output width is unknown before the first inference"
        );
        self.out_len
    }

    fn prepare_input(&mut self, particles: &Particles2D, grid: &Grid2D, dst: &mut [f32]) {
        bin_density(particles, grid, self.binning, dst);
        if self.reference_mass > 0.0 {
            let mass = particles.len() as f32;
            if (mass - self.reference_mass).abs() > 0.5 {
                let factor = self.reference_mass / mass;
                for v in dst.iter_mut() {
                    *v *= factor;
                }
            }
        }
        self.norm.apply(dst);
        self.in_nodes = grid.nodes();
    }

    fn infer_batch(&mut self, input: &[f32], rows: usize, output: &mut [f32]) {
        assert_eq!(input.len() % rows, 0, "batch input size");
        self.input.resize_in_place(&[rows, input.len() / rows]);
        self.input.data_mut().copy_from_slice(input);
        let pred = self
            .net
            .predict_batch_into(&self.input, &mut self.workspace);
        assert_eq!(
            pred.len(),
            output.len(),
            "network output width {} does not match the requested {} values ({rows} rows)",
            pred.len(),
            output.len(),
        );
        output.copy_from_slice(pred.data());
        self.out_len = pred.len() / rows;
    }

    fn apply_output(&mut self, row: &[f32], ex: &mut [f64], ey: &mut [f64]) {
        let nodes = ex.len();
        assert_eq!(
            row.len(),
            2 * nodes,
            "network output width {} does not match 2·nodes = {}",
            row.len(),
            2 * nodes
        );
        for (dst, &src) in ex.iter_mut().zip(&row[..nodes]) {
            *dst = src as f64;
        }
        for (dst, &src) in ey.iter_mut().zip(&row[nodes..]) {
            *dst = src as f64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlpic_pic::shape::Shape;
    use dlpic_pic2d::init2d::TwoStream2DInit;

    fn tiny_grid() -> Grid2D {
        Grid2D::new(8, 8, 2.0532, 2.0532)
    }

    #[test]
    fn density_binning_conserves_counts() {
        let grid = tiny_grid();
        let p = TwoStream2DInit::random(0.2, 0.01, 500, 3).build(&grid);
        for shape in [DensityBinning::Ngp, DensityBinning::Cic] {
            let mut hist = vec![0.0f32; grid.nodes()];
            bin_density(&p, &grid, shape, &mut hist);
            let total: f32 = hist.iter().sum();
            assert!((total - 500.0).abs() < 1e-3, "{shape:?}: {total}");
        }
    }

    #[test]
    fn cic_density_of_node_centred_particle() {
        let grid = tiny_grid();
        let p = Particles2D::new(
            vec![2.0 * grid.dx()],
            vec![3.0 * grid.dy()],
            vec![0.0],
            vec![0.0],
            -1.0,
            1.0,
        );
        let mut hist = vec![0.0f32; grid.nodes()];
        bin_density(&p, &grid, DensityBinning::Cic, &mut hist);
        assert!((hist[grid.index(2, 3)] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn harvest_produces_expected_sample_count() {
        let cfg = Pic2DConfig {
            grid: tiny_grid(),
            init: TwoStream2DInit::quiet(0.2, 0.0, 1024, 1e-3, 0),
            dt: 0.2,
            n_steps: 10,
            gather_shape: Shape::Cic,
            tracked_modes: vec![],
        };
        let samples = harvest_2d(cfg, DensityBinning::Ngp, 2);
        assert_eq!(samples.len(), 5);
        assert!(samples.iter().all(|s| s.hist.len() == 64));
        assert!(samples.iter().all(|s| s.ex.len() == 64 && s.ey.len() == 64));
        assert!(samples
            .iter()
            .all(|s| s.ex.iter().chain(&s.ey).all(|v| v.is_finite())));
    }

    #[test]
    fn dataset_shapes_and_normalization() {
        let samples = vec![
            Sample2D {
                hist: vec![0.0, 4.0],
                ex: vec![1.0, -1.0],
                ey: vec![0.5, 0.0],
            },
            Sample2D {
                hist: vec![2.0, 2.0],
                ex: vec![0.0, 0.0],
                ey: vec![0.0, 0.5],
            },
        ];
        let (ds, norm) = build_dataset_2d(&samples);
        assert_eq!(ds.len(), 2);
        // Min 0, max 4 → normalized inputs within [0, 1].
        assert!((norm.span() - 4.0).abs() < 1e-6);
        let (x, y) = ds.batch(0, 2);
        assert_eq!(x.shape(), &[2, 2]);
        assert_eq!(y.shape(), &[2, 4]);
        assert!(x.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn untrained_solver_writes_finite_fields() {
        let grid = tiny_grid();
        let arch = arch_2d(&grid, vec![16]);
        let mut solver = Dl2DFieldSolver::new(
            arch.build(0),
            DensityBinning::Ngp,
            NormStats::identity(),
            "dl-2d",
        );
        let p = TwoStream2DInit::random(0.2, 0.0, 512, 1).build(&grid);
        let mut ex = grid.zeros();
        let mut ey = grid.zeros();
        solver.solve(&p, &grid, &mut ex, &mut ey);
        assert!(ex.iter().chain(ey.iter()).all(|v| v.is_finite()));
    }

    #[test]
    fn trained_solver_beats_untrained_on_training_data() {
        // A minimal learning sanity check: after a few epochs the MSE on
        // the training samples must drop well below the untrained level.
        let grid = tiny_grid();
        let cfg = Pic2DConfig {
            grid: grid.clone(),
            init: TwoStream2DInit::quiet(0.2, 0.0, 2048, 1e-2, 0),
            dt: 0.2,
            n_steps: 30,
            gather_shape: Shape::Cic,
            tracked_modes: vec![],
        };
        let samples = harvest_2d(cfg, DensityBinning::Ngp, 1);
        let tc = Train2DConfig {
            hidden: vec![32],
            learning_rate: 3e-3,
            epochs: 30,
            batch_size: 8,
            seed: 1,
        };
        let (_, history) = train_2d_solver(&grid, &samples, DensityBinning::Ngp, &tc);
        let first = history.train_loss.first().copied().unwrap();
        let last = history.final_loss().unwrap();
        assert!(
            last < 0.5 * first,
            "training did not reduce loss: {first} → {last}"
        );
    }

    #[test]
    fn frozen_2d_solver_is_bit_identical_to_owned() {
        let grid = tiny_grid();
        let arch = arch_2d(&grid, vec![16]);
        let mut owned = Dl2DFieldSolver::new(
            arch.build(3),
            DensityBinning::Cic,
            NormStats::identity(),
            "dl-2d",
        )
        .with_reference_mass(512.0);
        let frozen = owned.freeze(Precision::F32).unwrap();
        let mut m1 = frozen.solver();
        let mut m2 = frozen.solver();
        let p = TwoStream2DInit::random(0.2, 0.01, 512, 5).build(&grid);

        let solve = |s: &mut Dl2DFieldSolver, grid: &Grid2D| {
            let mut ex = grid.zeros();
            let mut ey = grid.zeros();
            s.solve(&p, grid, &mut ex, &mut ey);
            (ex, ey)
        };
        let (ex0, ey0) = solve(&mut owned, &grid);
        let (ex1, ey1) = solve(&mut m1, &grid);
        let (ex2, ey2) = solve(&mut m2, &grid);
        assert_eq!(ex0, ex1);
        assert_eq!(ey0, ey1);
        assert_eq!(ex1, ex2);
        assert_eq!(ey1, ey2);

        // One allocation across sharers, distinct from the owned copy.
        let (id1, bytes1) = m1.weight_storage().unwrap();
        let (id2, _) = m2.weight_storage().unwrap();
        let (id0, _) = owned.weight_storage().unwrap();
        assert_eq!(id1, id2);
        assert_ne!(id0, id1);
        assert_eq!(bytes1, frozen.weight_bytes());
        assert_eq!(m1.name(), "dl-2d");
        assert_eq!(m1.reference_mass(), 512.0);
    }

    #[test]
    fn solver_plugs_into_simulation_2d() {
        let grid = tiny_grid();
        let arch = arch_2d(&grid, vec![16]);
        let solver = Dl2DFieldSolver::new(
            arch.build(0),
            DensityBinning::Ngp,
            NormStats::identity(),
            "dl-2d",
        );
        let cfg = Pic2DConfig {
            grid,
            init: TwoStream2DInit::quiet(0.2, 0.0, 1024, 1e-3, 0),
            dt: 0.2,
            n_steps: 5,
            gather_shape: Shape::Cic,
            tracked_modes: vec![(1, 0)],
        };
        let mut sim = Simulation2D::new(cfg, Box::new(solver));
        sim.run();
        assert_eq!(sim.history().len(), 6);
        assert!(sim.history().total.iter().all(|e| e.is_finite()));
    }
}

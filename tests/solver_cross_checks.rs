//! Integration test: cross-validation of the numerical substrates against
//! each other and against analytic solutions — the checks that make the
//! physics results trustworthy.

use dlpic_repro::analytics::dft;
use dlpic_repro::pic::deposit::{add_uniform_background, deposit_charge, net_charge};
use dlpic_repro::pic::gather::gather_field;
use dlpic_repro::pic::poisson::{fd_residual, FdPoisson, PoissonSolver, SpectralPoisson};
use dlpic_repro::pic::shape::Shape;
use dlpic_repro::pic::solver::{FieldSolver as _, PoissonKind, TraditionalSolver};
use dlpic_repro::pic::{Grid1D, Particles, TwoStreamInit};

/// A sinusoidally displaced equispaced electron population: the textbook
/// configuration with a closed-form field, `E(x) = A·L·sin(kx)` for
/// displacement `ξ = A·L·sin(kx)` (ρ₀ = −1, ε₀ = 1).
fn displaced_plasma(grid: &Grid1D, n: usize, amp: f64, mode: usize) -> Particles {
    let l = grid.length();
    let k = grid.mode_wavenumber(mode);
    let xs: Vec<f64> = (0..n)
        .map(|i| {
            let x0 = (i as f64 + 0.5) / n as f64 * l;
            grid.wrap_position(x0 + amp * l * (k * x0).sin())
        })
        .collect();
    Particles::electrons_normalized(xs, vec![0.0; n], l)
}

#[test]
fn full_solver_chain_reproduces_gauss_law_for_all_shapes() {
    let grid = Grid1D::paper();
    let p = displaced_plasma(&grid, 128_000, 2e-3, 1);
    let expect_e1 = 2e-3 * grid.length();
    for shape in [Shape::Ngp, Shape::Cic, Shape::Tsc] {
        for kind in [PoissonKind::FiniteDifference, PoissonKind::Spectral] {
            let mut solver = TraditionalSolver::new(shape, kind, 1.0);
            let mut e = grid.zeros();
            solver.solve(&p, &grid, &mut e);
            let e1 = dft::mode_amplitude(&e, 1);
            let tol = match shape {
                Shape::Ngp => 0.08, // NGP binning noise on a smooth mode
                _ => 0.03,
            };
            assert!(
                (e1 - expect_e1).abs() / expect_e1 < tol,
                "{shape:?}/{kind:?}: E1 = {e1} vs {expect_e1}"
            );
        }
    }
}

#[test]
fn poisson_solvers_agree_on_pic_generated_density() {
    // Not synthetic smooth data: an actual noisy PIC charge density.
    let grid = Grid1D::paper();
    let p = TwoStreamInit::random(0.2, 0.01, 64_000, 9).build(&grid);
    let mut rho = grid.zeros();
    deposit_charge(&p, &grid, Shape::Cic, &mut rho);
    add_uniform_background(&mut rho, 1.0);
    assert!(net_charge(&rho, &grid).abs() < 1e-9, "not neutral");

    let mut phi_fd = grid.zeros();
    let mut phi_sp = grid.zeros();
    FdPoisson::new().solve(&grid, &rho, &mut phi_fd);
    SpectralPoisson::new().solve(&grid, &rho, &mut phi_sp);
    assert!(fd_residual(&grid, &rho, &phi_fd) < 1e-9, "FD residual");

    // The dominant (low-k) structure must agree; high-k differs by the
    // operators' O(k²dx²) discrepancy.
    for mode in 1..=4 {
        let a = dft::mode_amplitude(&phi_fd, mode);
        let b = dft::mode_amplitude(&phi_sp, mode);
        let scale = a.abs().max(b.abs()).max(1e-12);
        assert!((a - b).abs() / scale < 0.05, "mode {mode}: {a} vs {b}");
    }
}

#[test]
fn no_self_force_on_isolated_particle() {
    // A single particle must not accelerate itself (momentum-conserving
    // scheme property) — for every matched shape pair and both solvers.
    let grid = Grid1D::paper();
    for shape in [Shape::Ngp, Shape::Cic, Shape::Tsc] {
        for kind in [PoissonKind::FiniteDifference, PoissonKind::Spectral] {
            // Position chosen off-node and off-midpoint.
            let p = Particles::electrons_normalized(vec![0.7234], vec![0.0], grid.length());
            let mut solver = TraditionalSolver::new(shape, kind, 0.0);
            let mut e = grid.zeros();
            solver.solve(&p, &grid, &mut e);
            let mut ep = vec![0.0];
            gather_field(&p, &grid, shape, &e, &mut ep);
            assert!(
                ep[0].abs() < 1e-10,
                "{shape:?}/{kind:?}: self-force {}",
                ep[0]
            );
        }
    }
}

#[test]
fn langmuir_oscillation_frequency_is_unity() {
    // The most fundamental validation of the unit system: a displaced
    // plasma slab oscillates at ω_p = 1. Track E1(t) over a few periods
    // and measure the period by zero crossings of dE1... simpler: fit
    // the oscillation count over a fixed window.
    use dlpic_repro::pic::simulation::{PicConfig, Simulation};
    let grid = Grid1D::paper();
    let n = 64_000;
    let cfg = PicConfig {
        grid: grid.clone(),
        init: Some(TwoStreamInit {
            v0: 0.0,
            vth: 0.0,
            n_particles: n,
            loading: dlpic_repro::pic::Loading::Quiet {
                mode: 1,
                amplitude: 1e-3,
            },
            seed: 0,
        }),
        dt: 0.05,
        n_steps: 500, // t = 25 ≈ 3.98 plasma periods
        gather_shape: Shape::Cic,
        tracked_modes: vec![1],
    };
    let mut sim = Simulation::new(cfg, Box::new(TraditionalSolver::paper_default()));
    sim.run();

    // E1 oscillates as |cos(ω t)|-ish; count minima (each ≈ half period).
    let e1 = sim.history().mode_series(1).unwrap();
    let v = &e1.values;
    let mut minima = 0;
    for i in 1..v.len() - 1 {
        if v[i] < v[i - 1] && v[i] < v[i + 1] && v[i] < 0.3 * v[0] {
            minima += 1;
        }
    }
    // ω = 1 → period 2π ≈ 6.283; over t = 25 that is ~3.98 periods and
    // E1 = |E₀ cos t| has 2 minima per period → expect ≈ 8.
    assert!(
        (7..=9).contains(&minima),
        "expected ~8 field minima for ω_p = 1, found {minima}"
    );
}

#[test]
fn tsc_deposit_is_smoother_than_ngp() {
    // Higher-order shapes reduce deposition noise: the high-k spectral
    // content of ρ from a random uniform load must be smaller for TSC.
    let grid = Grid1D::paper();
    let p = TwoStreamInit::random(0.0, 0.05, 64_000, 31).build(&grid);
    let high_k_power = |shape: Shape| -> f64 {
        let mut rho = grid.zeros();
        deposit_charge(&p, &grid, shape, &mut rho);
        add_uniform_background(&mut rho, 1.0);
        let amps = dft::mode_amplitudes(&rho);
        amps[16..].iter().map(|a| a * a).sum()
    };
    let ngp = high_k_power(Shape::Ngp);
    let tsc = high_k_power(Shape::Tsc);
    assert!(
        tsc < ngp * 0.5,
        "TSC high-k power {tsc} not meaningfully below NGP {ngp}"
    );
}

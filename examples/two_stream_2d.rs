//! The 2-D extension in action: the registry's `two_stream_2d` scenario
//! (paper §VII's "two-dimensional systems" future-work item) on the
//! engine facade.
//!
//! Two counter-streaming electron beams along `x`, uniform in `y`: the
//! `(kx, ky) = (1, 0)` mode must grow at the 1-D linear-theory rate — the
//! cleanest way to validate a 2-D PIC against closed-form theory. (The
//! transverse-quiescence check — nothing grows in `ky` — lives in the
//! `pic2d_physics` integration tests.)
//!
//! ```sh
//! cargo run --release --example two_stream_2d
//! ```

use dlpic_repro::analytics::dispersion::TwoStreamDispersion;
use dlpic_repro::analytics::plot::{line_plot, PlotOptions};
use dlpic_repro::core::Scale;
use dlpic_repro::engine::{self, Backend, EngineError, LoadingSpec};

fn main() -> Result<(), EngineError> {
    println!("== 2-D extension: two-stream instability in a 2-D box ==\n");

    let mut spec = engine::scenario("two_stream_2d", Scale::Scaled)?;
    spec.ppc = 128; // 131 072 electrons on the 32×32 grid
    spec.n_steps = 200;
    spec.loading = LoadingSpec::Quiet {
        mode: 1,
        amplitude: 1e-4,
    };
    spec.seed = 20210705;
    println!(
        "domain {:?}, {} electrons, backend {}",
        spec.domain,
        spec.n_particles(),
        Backend::Traditional2D
    );

    let start = std::time::Instant::now();
    let summary = engine::run(&spec, Backend::Traditional2D)?;
    println!(
        "ran {} steps to t = {} in {:.2?}\n",
        summary.steps,
        summary.t_end,
        start.elapsed()
    );

    // Growth of the streaming mode vs 1-D theory. In 2-D the engine maps
    // tracked mode m to the (m, 0) mode of Ex — the 1-D physics family.
    let theory = TwoStreamDispersion::new(0.2).growth_rate(dlpic_repro::pic::constants::PAPER_K1);
    let streaming = summary.history.mode_series(1).expect("mode (1,0) tracked");
    let second = summary.history.mode_series(2).expect("mode (2,0) tracked");

    match summary.growth_rate(1) {
        Ok(fit) => {
            println!("streaming mode (1, 0):");
            println!("  1-D linear theory : γ = {theory:.4}");
            println!(
                "  measured (2-D)    : γ = {:.4}  (r² = {:.4})",
                fit.gamma, fit.r2
            );
            println!(
                "  relative error    : {:.1}%\n",
                (fit.gamma - theory).abs() / theory * 100.0
            );
            let energy_var = summary.energy_variation();
            println!(
                "{}",
                line_plot(
                    &[('*', &streaming), ('.', &second)],
                    &PlotOptions::titled("2-D two-stream: (1,0) and (2,0) modes (log)").log_y(true),
                )
            );
            println!("total-energy variation: {:.2}%", 100.0 * energy_var);
            println!("momentum drift (x)    : {:.2e}", summary.momentum_drift());
            let ok = (fit.gamma - theory).abs() / theory < 0.2 && energy_var < 0.05;
            println!(
                "\nverdict: {}",
                if ok {
                    "PASS — 2-D PIC reproduces the 1-D dispersion"
                } else {
                    "CHECK — outside expected bands"
                }
            );
        }
        Err(e) => println!("no growth fit: {e}"),
    }
    Ok(())
}

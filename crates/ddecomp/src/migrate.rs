//! Particle migration: after the position push, particles whose new
//! position lies outside their rank's slab move to the owning rank.
//!
//! With the paper's parameters a particle can cross several cells per step
//! (`v·Δt ≈ 3·dx` at `v = 0.5`), so destinations are not restricted to
//! neighbours: leavers are routed directly to their owner, packed as
//! `(x, v)` pairs — 16 bytes per migrated particle.

use crate::comm::Fabric;
use crate::topology::Topology;
use dlpic_pic::grid::Grid1D;
use dlpic_pic::particles::Particles;

/// Extracts every particle that no longer belongs to `rank` and sends it
/// to its new owner (one message per destination rank that receives at
/// least one particle). Returns the number of particles that left.
///
/// Uses `swap_remove`, so the surviving particles' order changes; PIC
/// results are permutation-invariant up to floating-point summation order.
pub fn send_leavers(
    rank: usize,
    particles: &mut Particles,
    grid: &Grid1D,
    topo: &Topology,
    fabric: &mut Fabric,
) -> usize {
    let n_ranks = topo.n_ranks();
    if n_ranks == 1 {
        return 0;
    }
    // Pack per destination: [x0, v0, x1, v1, ...].
    let mut outbound: Vec<Vec<f64>> = vec![Vec::new(); n_ranks];
    let mut i = 0;
    let mut moved = 0;
    while i < particles.x.len() {
        let dest = topo.rank_of_position(particles.x[i], grid);
        if dest == rank {
            i += 1;
        } else {
            outbound[dest].push(particles.x[i]);
            outbound[dest].push(particles.v[i]);
            particles.x.swap_remove(i);
            particles.v.swap_remove(i);
            moved += 1;
        }
    }
    for (dest, payload) in outbound.into_iter().enumerate() {
        if !payload.is_empty() {
            fabric.send(rank, dest, crate::comm::PHASE_MIGRATION, payload);
        }
    }
    moved
}

/// Receives every pending migration message addressed to `rank` and
/// appends the arriving particles. Returns the number received.
///
/// Call after *all* ranks have run [`send_leavers`] for the step.
pub fn recv_arrivals(rank: usize, particles: &mut Particles, fabric: &mut Fabric) -> usize {
    let mut received = 0;
    while let Some((_from, payload)) = fabric.recv_any(rank) {
        assert!(
            payload.len() % 2 == 0,
            "migration payload must be (x, v) pairs"
        );
        for pair in payload.chunks_exact(2) {
            particles.x.push(pair[0]);
            particles.v.push(pair[1]);
            received += 1;
        }
    }
    received
}

#[cfg(test)]
mod tests {
    use super::*;

    fn local(xs: Vec<f64>, vs: Vec<f64>) -> Particles {
        Particles::new(xs, vs, -0.1, 0.1)
    }

    #[test]
    fn stayers_stay_and_leavers_arrive() {
        let grid = Grid1D::new(64, 2.0532);
        let topo = Topology::new(4, 64);
        let mut fabric = Fabric::new(4);
        let dx = grid.dx();
        // Rank 0 owns cells [0, 16): one stayer, one bound for rank 1,
        // one that wrapped around to the last rank's slab.
        let mut p0 = local(vec![5.0 * dx, 20.0 * dx, 62.0 * dx], vec![1.0, 2.0, 3.0]);
        let moved = send_leavers(0, &mut p0, &grid, &topo, &mut fabric);
        assert_eq!(moved, 2);
        assert_eq!(p0.len(), 1);
        assert!((p0.v[0] - 1.0).abs() < 1e-15);

        let mut p1 = local(vec![], vec![]);
        assert_eq!(recv_arrivals(1, &mut p1, &mut fabric), 1);
        assert!((p1.v[0] - 2.0).abs() < 1e-15);

        let mut p3 = local(vec![], vec![]);
        assert_eq!(recv_arrivals(3, &mut p3, &mut fabric), 1);
        assert!((p3.v[0] - 3.0).abs() < 1e-15);
    }

    #[test]
    fn single_rank_never_migrates() {
        let grid = Grid1D::new(64, 2.0532);
        let topo = Topology::new(1, 64);
        let mut fabric = Fabric::new(1);
        let mut p = local(vec![0.1, 1.0, 2.0], vec![0.0; 3]);
        assert_eq!(send_leavers(0, &mut p, &grid, &topo, &mut fabric), 0);
        assert_eq!(p.len(), 3);
        assert_eq!(fabric.stats().messages, 0);
    }

    #[test]
    fn migration_conserves_particles_and_phase_space() {
        let grid = Grid1D::new(64, 2.0532);
        let topo = Topology::new(8, 64);
        let mut fabric = Fabric::new(8);
        // Scatter particles everywhere and hand them all to rank 3.
        let xs: Vec<f64> = (0..500)
            .map(|i| (i as f64 + 0.5) / 500.0 * grid.length())
            .collect();
        let vs: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let mut holders: Vec<Particles> = (0..8).map(|_| local(vec![], vec![])).collect();
        holders[3] = local(xs.clone(), vs.clone());

        for rank in topo.ranks() {
            send_leavers(rank, &mut holders[rank], &grid, &topo, &mut fabric);
        }
        for rank in topo.ranks() {
            recv_arrivals(rank, &mut holders[rank], &mut fabric);
        }

        let total: usize = holders.iter().map(|p| p.len()).sum();
        assert_eq!(total, 500);
        // Every particle sits on its owner, with its (x, v) pair intact.
        let mut seen: Vec<(u64, u64)> = Vec::new();
        for rank in topo.ranks() {
            for (x, v) in holders[rank].x.iter().zip(&holders[rank].v) {
                assert_eq!(topo.rank_of_position(*x, &grid), rank);
                seen.push((x.to_bits(), v.to_bits()));
            }
        }
        seen.sort_unstable();
        let mut expect: Vec<(u64, u64)> = xs
            .iter()
            .zip(&vs)
            .map(|(x, v)| (x.to_bits(), v.to_bits()))
            .collect();
        expect.sort_unstable();
        assert_eq!(seen, expect);
    }

    #[test]
    fn migration_bytes_scale_with_leavers() {
        let grid = Grid1D::new(64, 2.0532);
        let topo = Topology::new(2, 64);
        let mut fabric = Fabric::new(2);
        // 10 particles on rank 0, all belonging to rank 1.
        let xs = vec![grid.length() * 0.75; 10];
        let mut p = local(xs, vec![0.0; 10]);
        send_leavers(0, &mut p, &grid, &topo, &mut fabric);
        let stats = fabric.phase_stats("migration");
        assert_eq!(stats.messages, 1);
        assert_eq!(stats.bytes, 10 * 16);
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Any in-box particle set split across any valid rank count is
        /// conserved exactly through a send/recv round, and every
        /// particle ends on its owner.
        #[test]
        fn migration_is_a_permutation_to_owners(
            xs in proptest::collection::vec(0.0f64..2.0532, 0..80),
            n_ranks in prop::sample::select(vec![1usize, 2, 4, 8, 16]),
            holder in 0usize..16,
        ) {
            let grid = Grid1D::new(64, 2.0532);
            let topo = Topology::new(n_ranks, 64);
            let holder = holder % n_ranks;
            let mut fabric = Fabric::new(n_ranks);
            let n = xs.len();
            let vs: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let mut ranks: Vec<Particles> = (0..n_ranks)
                .map(|_| Particles::new(vec![], vec![], -0.1, 0.1))
                .collect();
            ranks[holder] = Particles::new(xs.clone(), vs, -0.1, 0.1);

            for r in topo.ranks() {
                send_leavers(r, &mut ranks[r], &grid, &topo, &mut fabric);
            }
            for r in topo.ranks() {
                recv_arrivals(r, &mut ranks[r], &mut fabric);
            }

            let total: usize = ranks.iter().map(|p| p.len()).sum();
            prop_assert_eq!(total, n);
            prop_assert_eq!(fabric.pending(), 0);
            for r in topo.ranks() {
                for &x in &ranks[r].x {
                    prop_assert_eq!(topo.rank_of_position(x, &grid), r);
                }
            }
        }
    }
}

//! Quickstart: run the paper's baseline experiment in under a minute.
//!
//! Simulates the two-stream instability with the traditional PIC method at
//! full paper scale (64 cells, 64 000 electrons, Δt = 0.2, t ≤ 40), then
//! checks the three headline physics facts of the paper's §V:
//!
//! 1. the most unstable mode grows at the linear-theory rate γ ≈ 0.354,
//! 2. total energy varies by only a couple of percent,
//! 3. total momentum is conserved to rounding noise.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dlpic_repro::analytics::dispersion::TwoStreamDispersion;
use dlpic_repro::analytics::fit::{fit_growth_rate, GrowthFitOptions};
use dlpic_repro::analytics::plot::{line_plot, PlotOptions};
use dlpic_repro::analytics::stats;
use dlpic_repro::pic::presets;

fn main() {
    println!("== DL-PIC reproduction: quickstart (traditional PIC baseline) ==\n");

    // The validation configuration of the paper's Figs. 4-5.
    let (v0, vth) = (0.2, 0.025);
    println!("two-stream instability: v0 = ±{v0}, vth = {vth}, 64 cells, 64k electrons");

    let start = std::time::Instant::now();
    let mut sim = presets::validation_simulation(20210705);
    sim.run();
    println!("ran {} steps to t = {} in {:.2?}\n", sim.steps_done(), sim.time(), start.elapsed());

    // 1. Growth rate vs linear theory.
    let theory = TwoStreamDispersion::new(v0).mode_growth_rate(1, sim.grid().length());
    let e1 = sim.history().mode_series(1).expect("mode 1 tracked");
    let fit = fit_growth_rate(&e1.times, &e1.values, GrowthFitOptions::default())
        .expect("growth phase detected");
    println!("growth rate of mode 1:");
    println!("  linear theory : γ = {theory:.4}");
    println!(
        "  measured      : γ = {:.4}  (r² = {:.4}, window t = {:.1}..{:.1})",
        fit.gamma, fit.r2, fit.t_start, fit.t_end
    );
    println!("  relative error: {:.1}%\n", (fit.gamma - theory).abs() / theory * 100.0);

    // 2-3. Conservation.
    let h = sim.history();
    let energy_var = stats::relative_variation(&h.total);
    let momentum_drift = stats::max_drift(&h.momentum);
    println!("conservation over the run:");
    println!("  total energy variation : {:.2}% (paper: ~2%)", energy_var * 100.0);
    println!("  total momentum drift   : {momentum_drift:.2e} (paper: ~0 for traditional PIC)\n");

    // E1(t) amplitude plot (the paper's Fig. 4 bottom, traditional curve).
    println!(
        "{}",
        line_plot(
            &[('*', &e1)],
            &PlotOptions::titled(format!("E1 amplitude, v0 = {v0}, vth = {vth} (log scale)"))
                .log_y(true),
        )
    );

    let ok = (fit.gamma - theory).abs() / theory < 0.2 && energy_var < 0.05;
    println!("verdict: {}", if ok { "PASS — matches the paper's baseline" } else { "CHECK — outside expected bands" });
}

//! Local charge deposition and the halo reduction that completes it.
//!
//! Each rank deposits its particles into an *extended* slab buffer with
//! [`HALO`] extra nodes on each side; contributions landing in the halo
//! belong to the neighbouring ranks and are shipped there and added — the
//! standard PIC guard-cell reduction, organized as two periodic shifts
//! (the `MPI_Sendrecv` pattern):
//!
//! * **round A** — every rank sends its *right* halo to its right
//!   neighbour and receives, from its left neighbour, the contribution to
//!   its own *head* nodes;
//! * **round B** — the mirror shift for the *left* halos / *tail* nodes.
//!
//! Two messages of `HALO` words per rank per step, independent of both
//! particle count and grid size. The shift structure is what keeps the
//! exchange unambiguous even when a rank's two neighbours are the same
//! rank (2 ranks) or itself (1 rank).

use crate::comm::Fabric;
use crate::topology::Topology;
use dlpic_pic::grid::Grid1D;
use dlpic_pic::particles::Particles;
use dlpic_pic::shape::Shape;

/// Guard nodes on each side of a slab. Two covers the full support of
/// every [`Shape`] in the hierarchy (TSC touches `j−1..=j+1` with `j`
/// possibly one past the slab edge).
pub const HALO: usize = 2;

/// Length of an extended slab buffer.
pub fn ext_len(topo: &Topology) -> usize {
    topo.cells_per_rank() + 2 * HALO
}

/// Deposits `particles` (all owned by `rank`) into the extended buffer
/// `rho_ext`, whose index 0 is global node `slab_start − HALO`.
/// The buffer is overwritten.
///
/// # Panics
/// Panics if the buffer length is wrong; debug-asserts that every
/// particle deposits inside the extended slab (i.e. is actually owned).
pub fn deposit_local(
    particles: &Particles,
    grid: &Grid1D,
    topo: &Topology,
    rank: usize,
    shape: Shape,
    rho_ext: &mut [f64],
) {
    assert_eq!(
        rho_ext.len(),
        ext_len(topo),
        "extended buffer length mismatch"
    );
    rho_ext.fill(0.0);
    let inv_dx = 1.0 / grid.dx();
    let q_over_dx = particles.charge() * inv_dx;
    let start = topo.slab_start(rank) as i64;
    let support = shape.support();
    let cpr = topo.cells_per_rank() as i64;

    for &x in &particles.x {
        let a = shape.assign(x * inv_dx);
        // Local index of the leftmost support node.
        let local = a.leftmost - start + HALO as i64;
        debug_assert!(
            local >= 0 && local + support as i64 <= cpr + 2 * HALO as i64,
            "particle at x = {x} deposits outside rank {rank}'s extended slab"
        );
        for (k, &w) in a.w[..support].iter().enumerate() {
            rho_ext[(local + k as i64) as usize] += q_over_dx * w;
        }
    }
}

/// Round A send: ships this rank's right halo to its right neighbour.
pub fn send_halo_right(rank: usize, topo: &Topology, fabric: &mut Fabric, rho_ext: &[f64]) {
    let cpr = topo.cells_per_rank();
    fabric.send(
        rank,
        topo.right(rank),
        crate::comm::PHASE_DEPOSIT_HALO,
        rho_ext[HALO + cpr..].to_vec(),
    );
}

/// Round A receive: adds the left neighbour's right-halo contribution onto
/// this rank's head nodes. Call after every rank's [`send_halo_right`].
///
/// # Panics
/// Panics if the message is missing (driver bug).
pub fn recv_halo_from_left(rank: usize, topo: &Topology, fabric: &mut Fabric, rho_ext: &mut [f64]) {
    let msg = fabric
        .recv(rank, topo.left(rank))
        .expect("missing right-halo message from left neighbour");
    assert_eq!(msg.len(), HALO, "bad halo width from left");
    for (k, v) in msg.iter().enumerate() {
        rho_ext[HALO + k] += v;
    }
}

/// Round B send: ships this rank's left halo to its left neighbour.
pub fn send_halo_left(rank: usize, topo: &Topology, fabric: &mut Fabric, rho_ext: &[f64]) {
    fabric.send(
        rank,
        topo.left(rank),
        crate::comm::PHASE_DEPOSIT_HALO,
        rho_ext[..HALO].to_vec(),
    );
}

/// Round B receive: adds the right neighbour's left-halo contribution onto
/// this rank's tail nodes. After this the owned region
/// `rho_ext[HALO .. HALO + cells_per_rank]` is complete.
///
/// # Panics
/// Panics if the message is missing (driver bug).
pub fn recv_halo_from_right(
    rank: usize,
    topo: &Topology,
    fabric: &mut Fabric,
    rho_ext: &mut [f64],
) {
    let cpr = topo.cells_per_rank();
    let msg = fabric
        .recv(rank, topo.right(rank))
        .expect("missing left-halo message from right neighbour");
    assert_eq!(msg.len(), HALO, "bad halo width from right");
    for (k, v) in msg.iter().enumerate() {
        rho_ext[HALO + cpr - HALO + k] += v;
    }
}

/// Runs the complete two-round reduction over all ranks' buffers (the
/// BSP driver's halo phase).
pub fn reduce_halos(topo: &Topology, fabric: &mut Fabric, buffers: &mut [Vec<f64>]) {
    assert_eq!(buffers.len(), topo.n_ranks(), "one buffer per rank");
    for rank in topo.ranks() {
        send_halo_right(rank, topo, fabric, &buffers[rank]);
    }
    for rank in topo.ranks() {
        recv_halo_from_left(rank, topo, fabric, &mut buffers[rank]);
    }
    for rank in topo.ranks() {
        send_halo_left(rank, topo, fabric, &buffers[rank]);
    }
    for rank in topo.ranks() {
        recv_halo_from_right(rank, topo, fabric, &mut buffers[rank]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlpic_pic::deposit::deposit_charge;

    /// Splits positions by owner and runs the full local-deposit + halo
    /// pipeline; returns the assembled global density.
    fn distributed_density(xs: &[f64], grid: &Grid1D, topo: &Topology, shape: Shape) -> Vec<f64> {
        let mut fabric = Fabric::new(topo.n_ranks());
        let w = grid.length() / xs.len() as f64;
        let mut buffers: Vec<Vec<f64>> = Vec::new();
        for rank in topo.ranks() {
            let local: Vec<f64> = xs
                .iter()
                .copied()
                .filter(|&x| topo.rank_of_position(x, grid) == rank)
                .collect();
            let n = local.len();
            let p = Particles::new(local, vec![0.0; n], -w, w);
            let mut ext = vec![0.0; ext_len(topo)];
            deposit_local(&p, grid, topo, rank, shape, &mut ext);
            buffers.push(ext);
        }
        reduce_halos(topo, &mut fabric, &mut buffers);
        let mut global = vec![0.0; grid.ncells()];
        for rank in topo.ranks() {
            let start = topo.slab_start(rank);
            global[start..start + topo.cells_per_rank()]
                .copy_from_slice(&buffers[rank][HALO..HALO + topo.cells_per_rank()]);
        }
        global
    }

    fn scrambled_positions(n: usize, length: f64) -> Vec<f64> {
        (0..n)
            .map(|i| (i.wrapping_mul(2654435761) % 100_000) as f64 / 100_000.0 * length)
            .collect()
    }

    #[test]
    fn distributed_deposit_matches_global_deposit() {
        let grid = Grid1D::new(64, 2.0532);
        let xs = scrambled_positions(4096, grid.length());
        let w = grid.length() / xs.len() as f64;
        let reference_particles = Particles::new(xs.clone(), vec![0.0; xs.len()], -w, w);
        for shape in [Shape::Ngp, Shape::Cic, Shape::Tsc] {
            let mut reference = grid.zeros();
            deposit_charge(&reference_particles, &grid, shape, &mut reference);
            for n_ranks in [1, 2, 4, 8] {
                let topo = Topology::new(n_ranks, 64);
                let dist = distributed_density(&xs, &grid, &topo, shape);
                for (j, (d, r)) in dist.iter().zip(&reference).enumerate() {
                    assert!(
                        (d - r).abs() < 1e-12,
                        "{shape:?} R={n_ranks} node {j}: {d} vs {r}"
                    );
                }
            }
        }
    }

    #[test]
    fn halo_traffic_is_constant_per_rank() {
        let topo = Topology::new(4, 64);
        let mut fabric = Fabric::new(4);
        let mut buffers: Vec<Vec<f64>> = (0..4).map(|_| vec![0.0; ext_len(&topo)]).collect();
        reduce_halos(&topo, &mut fabric, &mut buffers);
        let stats = fabric.phase_stats("deposit-halo");
        assert_eq!(stats.messages, 8); // 2 per rank
        assert_eq!(stats.bytes, 8 * 8 * HALO as u64);
    }

    #[test]
    fn single_rank_wraps_onto_itself() {
        let grid = Grid1D::new(8, 2.0);
        let topo = Topology::new(1, 8);
        // One particle near the right edge: CIC spills onto wrapped node 0.
        let xs = vec![grid.length() - 0.25 * grid.dx()];
        let dist = distributed_density(&xs, &grid, &topo, Shape::Cic);
        let p = Particles::new(xs, vec![0.0], -grid.length(), grid.length());
        let mut reference = grid.zeros();
        deposit_charge(&p, &grid, Shape::Cic, &mut reference);
        for (j, (d, r)) in dist.iter().zip(&reference).enumerate() {
            assert!((d - r).abs() < 1e-12, "node {j}: {d} vs {r}");
        }
    }

    #[test]
    fn two_rank_case_routes_both_halos_correctly() {
        // Both neighbours of a rank are the *same* rank when R = 2; the
        // shift rounds must still route head/tail contributions to the
        // right edges. A particle at each slab boundary probes exactly
        // that.
        let grid = Grid1D::new(8, 2.0);
        let topo = Topology::new(2, 8);
        let boundary = topo.slab_start(1) as f64 * grid.dx();
        let xs = vec![boundary - 0.3 * grid.dx(), grid.length() - 0.3 * grid.dx()];
        let dist = distributed_density(&xs, &grid, &topo, Shape::Tsc);
        let w = grid.length() / 2.0;
        let p = Particles::new(xs, vec![0.0; 2], -w, w);
        let mut reference = grid.zeros();
        deposit_charge(&p, &grid, Shape::Tsc, &mut reference);
        for (j, (d, r)) in dist.iter().zip(&reference).enumerate() {
            assert!((d - r).abs() < 1e-12, "node {j}: {d} vs {r}");
        }
    }
}

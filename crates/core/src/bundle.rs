//! Model bundles: everything needed to reconstruct a DL field solver.
//!
//! A trained solver is more than network weights — reproducing the paper's
//! inference step requires the architecture, the phase-grid geometry, the
//! binning order and the training-set normalization statistics (Eq. 5).
//! [`ModelBundle`] packages all of them into one self-describing binary
//! blob so experiment binaries can train once and reload.

use crate::builder::{ArchSpec, InputKind};
use crate::field_solver::DlFieldSolver;
use crate::normalize::NormStats;
use crate::phase_space::{BinningShape, PhaseGridSpec};
use bytes::{Buf, BufMut};
use dlpic_nn::frozen::{FreezeError, FrozenModel, Precision};
use dlpic_nn::network::Sequential;
use dlpic_nn::serialize::{params_from_bytes, params_to_bytes};
use std::path::Path;
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"DLPB";
/// v3 appends one inference-precision byte; v2 bundles (no byte) still
/// decode, as f32.
const VERSION: u32 = 3;
const V2: u32 = 2;

/// A complete, serializable trained model.
#[derive(Debug, Clone)]
pub struct ModelBundle {
    /// Network architecture.
    pub arch: ArchSpec,
    /// Phase-grid geometry the model was trained on.
    pub spec: PhaseGridSpec,
    /// Binning order used to build training histograms.
    pub binning: BinningShape,
    /// Training-set normalization statistics.
    pub norm: NormStats,
    /// Total mass (= particle count) of the training histograms; 0 means
    /// "unknown" and disables inference-time mass rescaling.
    pub reference_mass: f32,
    /// Serialized network parameters (`dlpic_nn::serialize` format —
    /// always full-precision f32, regardless of `precision`).
    pub params: Vec<u8>,
    /// Weight storage precision [`Self::freeze`] snapshots into. The
    /// serialized `params` stay f32 either way, so the choice is
    /// revisable after the fact; bf16 is opt-in per bundle and gated on
    /// physics tolerance by callers.
    pub precision: Precision,
}

/// Bundle (de)serialization failure.
#[derive(Debug)]
pub enum BundleError {
    /// Not a bundle / wrong version / truncated.
    Malformed(&'static str),
    /// The parameter blob does not fit the declared architecture.
    Params(dlpic_nn::serialize::SerializeError),
    /// The architecture has a layer without a frozen inference form.
    Freeze(FreezeError),
    /// Filesystem error.
    Io(std::io::Error),
}

impl std::fmt::Display for BundleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Malformed(what) => write!(f, "malformed model bundle: {what}"),
            Self::Params(e) => write!(f, "parameter restore failed: {e}"),
            Self::Freeze(e) => write!(f, "bundle cannot be frozen: {e}"),
            Self::Io(e) => write!(f, "bundle I/O failed: {e}"),
        }
    }
}

impl std::error::Error for BundleError {}

impl From<std::io::Error> for BundleError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl ModelBundle {
    /// Captures a trained network into a bundle.
    pub fn from_network(
        net: &mut Sequential,
        arch: ArchSpec,
        spec: PhaseGridSpec,
        binning: BinningShape,
        norm: NormStats,
    ) -> Self {
        Self {
            params: params_to_bytes(net),
            arch,
            spec,
            binning,
            norm,
            reference_mass: 0.0,
            precision: Precision::F32,
        }
    }

    /// Builder-style setter for the training histogram mass (see
    /// [`DlFieldSolver::with_reference_mass`]).
    pub fn with_reference_mass(mut self, mass: f32) -> Self {
        self.reference_mass = mass;
        self
    }

    /// Builder-style setter for the inference weight precision (see the
    /// `precision` field; the stored parameters stay f32).
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Serializes the bundle.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + self.params.len());
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        self.arch.encode(&mut buf);
        buf.put_u32_le(self.spec.nx as u32);
        buf.put_u32_le(self.spec.nv as u32);
        buf.put_f64_le(self.spec.vmin);
        buf.put_f64_le(self.spec.vmax);
        buf.put_u8(match self.binning {
            BinningShape::Ngp => 0,
            BinningShape::Cic => 1,
        });
        buf.put_f32_le(self.norm.min);
        buf.put_f32_le(self.norm.max);
        buf.put_f32_le(self.reference_mass);
        buf.put_u8(match self.precision {
            Precision::F32 => 0,
            Precision::Bf16 => 1,
        });
        buf.put_u64_le(self.params.len() as u64);
        buf.put_slice(&self.params);
        buf
    }

    /// Deserializes a bundle.
    pub fn decode(bytes: &[u8]) -> Result<Self, BundleError> {
        let mut buf = bytes;
        if buf.remaining() < 8 {
            return Err(BundleError::Malformed("truncated header"));
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(BundleError::Malformed("bad magic"));
        }
        let version = buf.get_u32_le();
        if version != VERSION && version != V2 {
            return Err(BundleError::Malformed("unsupported version"));
        }
        let arch =
            ArchSpec::decode(&mut buf).ok_or(BundleError::Malformed("bad architecture spec"))?;
        let precision_bytes = if version >= VERSION { 1 } else { 0 };
        if buf.remaining() < 4 + 4 + 8 + 8 + 1 + 4 + 4 + 4 + precision_bytes + 8 {
            return Err(BundleError::Malformed("truncated metadata"));
        }
        let nx = buf.get_u32_le() as usize;
        let nv = buf.get_u32_le() as usize;
        let vmin = buf.get_f64_le();
        let vmax = buf.get_f64_le();
        // NaN-rejecting form: `vmax <= vmin` would accept NaN bounds.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if nx == 0 || nv == 0 || !(vmax > vmin) {
            return Err(BundleError::Malformed("bad phase-grid geometry"));
        }
        let binning = match buf.get_u8() {
            0 => BinningShape::Ngp,
            1 => BinningShape::Cic,
            _ => return Err(BundleError::Malformed("bad binning tag")),
        };
        let norm = NormStats {
            min: buf.get_f32_le(),
            max: buf.get_f32_le(),
        };
        let reference_mass = buf.get_f32_le();
        // NaN-rejecting form: `reference_mass < 0.0` would accept NaN.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(reference_mass >= 0.0) {
            return Err(BundleError::Malformed("bad reference mass"));
        }
        // v2 predates the precision byte: those bundles are f32.
        let precision = if version >= VERSION {
            match buf.get_u8() {
                0 => Precision::F32,
                1 => Precision::Bf16,
                _ => return Err(BundleError::Malformed("bad precision tag")),
            }
        } else {
            Precision::F32
        };
        let plen = buf.get_u64_le() as usize;
        if buf.remaining() < plen {
            return Err(BundleError::Malformed("truncated parameters"));
        }
        let params = buf[..plen].to_vec();
        Ok(Self {
            arch,
            spec: PhaseGridSpec::new(nx, nv, vmin, vmax),
            binning,
            norm,
            reference_mass,
            params,
            precision,
        })
    }

    /// Writes the bundle to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), BundleError> {
        std::fs::write(path, self.encode())?;
        Ok(())
    }

    /// Reads a bundle from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, BundleError> {
        Self::decode(&std::fs::read(path)?)
    }

    /// The solver name this bundle's architecture maps to.
    pub fn solver_name(&self) -> &'static str {
        match self.arch.kind_name() {
            "mlp" => "dl-mlp",
            "cnn" => "dl-cnn",
            _ => "dl-resmlp",
        }
    }

    /// Rebuilds the trained network (architecture + restored parameters).
    fn build_network(&self) -> Result<Sequential, BundleError> {
        let mut net = self.arch.build(0);
        params_from_bytes(&mut net, &self.params).map_err(BundleError::Params)?;
        Ok(net)
    }

    /// Reconstructs a ready-to-run field solver with its **own** network
    /// copy, without consuming the bundle (fleets that want one shared
    /// allocation use [`Self::freeze`] instead).
    pub fn solver(&self) -> Result<DlFieldSolver, BundleError> {
        Ok(DlFieldSolver::new(
            self.build_network()?,
            self.spec,
            self.binning,
            self.norm,
            self.arch.input_kind(),
            self.solver_name(),
        )
        .with_reference_mass(self.reference_mass))
    }

    /// Reconstructs a ready-to-run field solver from the bundle.
    pub fn into_solver(self) -> Result<DlFieldSolver, BundleError> {
        self.solver()
    }

    /// Snapshots the bundle into an `Arc`-shared [`FrozenBundle`] at the
    /// bundle's `precision`, so any number of fleet members mint solvers
    /// over one weight allocation. Errs ([`BundleError::Freeze`], naming
    /// the layer) on architectures without a frozen inference form — the
    /// CNN — which callers handle by falling back to [`Self::solver`].
    pub fn freeze(&self) -> Result<FrozenBundle, BundleError> {
        let net = self.build_network()?;
        let model = net.freeze(self.precision).map_err(BundleError::Freeze)?;
        Ok(FrozenBundle {
            model: Arc::new(model),
            spec: self.spec,
            binning: self.binning,
            norm: self.norm,
            reference_mass: self.reference_mass,
            input_kind: self.arch.input_kind(),
            name: self.solver_name(),
        })
    }
}

/// A frozen, `Arc`-shareable snapshot of a [`ModelBundle`]: the immutable
/// model plus the inference-time metadata needed to mint fleet members
/// that all read **one** weight allocation. Cloning is cheap (one `Arc`
/// bump) and every [`Self::solver`] shares the same weights.
#[derive(Debug, Clone)]
pub struct FrozenBundle {
    model: Arc<FrozenModel>,
    spec: PhaseGridSpec,
    binning: BinningShape,
    norm: NormStats,
    reference_mass: f32,
    input_kind: InputKind,
    name: &'static str,
}

impl FrozenBundle {
    /// Mints one fleet member over the shared weight allocation. At
    /// [`Precision::F32`] the member is bit-identical to
    /// [`ModelBundle::solver`] on the source bundle.
    pub fn solver(&self) -> DlFieldSolver {
        DlFieldSolver::shared(
            Arc::clone(&self.model),
            self.spec,
            self.binning,
            self.norm,
            self.input_kind,
            self.name,
        )
        .with_reference_mass(self.reference_mass)
    }

    /// The shared frozen model.
    pub fn model(&self) -> &Arc<FrozenModel> {
        &self.model
    }

    /// The phase-grid geometry members bin into.
    pub fn spec(&self) -> &PhaseGridSpec {
        &self.spec
    }

    /// The weight storage precision.
    pub fn precision(&self) -> Precision {
        self.model.precision()
    }

    /// Bytes of the one shared weight allocation.
    pub fn weight_bytes(&self) -> usize {
        self.model.weight_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlpic_pic::grid::Grid1D;
    use dlpic_pic::init::TwoStreamInit;
    use dlpic_pic::solver::FieldSolver as _;

    fn tiny_bundle() -> ModelBundle {
        let spec = PhaseGridSpec::smoke();
        let arch = ArchSpec::Mlp {
            input: spec.cells(),
            hidden: vec![8],
            output: 64,
        };
        let mut net = arch.build(77);
        ModelBundle::from_network(
            &mut net,
            arch,
            spec,
            BinningShape::Cic,
            NormStats {
                min: 0.0,
                max: 123.0,
            },
        )
        .with_reference_mass(64_000.0)
    }

    #[test]
    fn encode_decode_round_trip() {
        let bundle = tiny_bundle();
        let decoded = ModelBundle::decode(&bundle.encode()).unwrap();
        assert_eq!(decoded.arch, bundle.arch);
        assert_eq!(decoded.spec, bundle.spec);
        assert_eq!(decoded.binning, bundle.binning);
        assert_eq!(decoded.norm, bundle.norm);
        assert_eq!(decoded.reference_mass, bundle.reference_mass);
        assert_eq!(decoded.params, bundle.params);
    }

    #[test]
    fn solver_from_bundle_reproduces_predictions() {
        let bundle = tiny_bundle();
        let grid = Grid1D::paper();
        let p = TwoStreamInit::random(0.2, 0.01, 1_000, 5).build(&grid);

        let mut s1 = bundle.clone().into_solver().unwrap();
        let mut s2 = ModelBundle::decode(&bundle.encode())
            .unwrap()
            .into_solver()
            .unwrap();
        let mut e1 = grid.zeros();
        let mut e2 = grid.zeros();
        s1.solve(&p, &grid, &mut e1);
        s2.solve(&p, &grid, &mut e2);
        assert_eq!(e1, e2);
        assert_eq!(s1.name(), "dl-mlp");
    }

    #[test]
    fn file_round_trip() {
        let bundle = tiny_bundle();
        let dir = std::env::temp_dir().join("dlpic-bundle-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.dlpb");
        bundle.save(&path).unwrap();
        let loaded = ModelBundle::load(&path).unwrap();
        assert_eq!(loaded.params, bundle.params);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn precision_round_trips_and_defaults_to_f32() {
        let bundle = tiny_bundle();
        assert_eq!(bundle.precision, Precision::F32);
        let bf16 = tiny_bundle().with_precision(Precision::Bf16);
        let decoded = ModelBundle::decode(&bf16.encode()).unwrap();
        assert_eq!(decoded.precision, Precision::Bf16);
    }

    #[test]
    fn v2_bundles_without_precision_byte_still_decode_as_f32() {
        // Re-serialize a bundle in the v2 layout: same fields, version 2,
        // no precision byte.
        let bundle = tiny_bundle().with_precision(Precision::Bf16);
        let v3 = bundle.encode();
        let mut v2 = Vec::with_capacity(v3.len() - 1);
        v2.extend_from_slice(&v3[..4]);
        v2.put_u32_le(V2);
        // Everything between the version and the precision byte is
        // layout-identical; the byte sits right before the u64 length.
        let plen_at = v3.len() - 8 - bundle.params.len() - 1;
        v2.extend_from_slice(&v3[8..plen_at]);
        v2.extend_from_slice(&v3[plen_at + 1..]);
        let decoded = ModelBundle::decode(&v2).unwrap();
        assert_eq!(decoded.precision, Precision::F32);
        assert_eq!(decoded.params, bundle.params);
        assert_eq!(decoded.arch, bundle.arch);
    }

    #[test]
    fn frozen_bundle_members_share_weights_and_match_owned_solver() {
        let bundle = tiny_bundle();
        let frozen = bundle.freeze().unwrap();
        let grid = Grid1D::paper();
        let p = TwoStreamInit::random(0.2, 0.01, 1_000, 6).build(&grid);

        let mut owned = bundle.solver().unwrap();
        let mut m1 = frozen.solver();
        let mut m2 = frozen.clone().solver();
        let mut e0 = grid.zeros();
        let mut e1 = grid.zeros();
        let mut e2 = grid.zeros();
        owned.solve(&p, &grid, &mut e0);
        m1.solve(&p, &grid, &mut e1);
        m2.solve(&p, &grid, &mut e2);
        assert_eq!(e0, e1);
        assert_eq!(e1, e2);

        let (id1, bytes) = m1.weight_storage().unwrap();
        let (id2, _) = m2.weight_storage().unwrap();
        assert_eq!(id1, id2, "members must share one allocation");
        assert_eq!(bytes, frozen.weight_bytes());
        assert_eq!(frozen.precision(), Precision::F32);
        assert_eq!(m1.name(), "dl-mlp");
    }

    #[test]
    fn cnn_bundles_refuse_to_freeze_with_a_named_error() {
        let spec = PhaseGridSpec::new(16, 16, -0.8, 0.8);
        let arch = ArchSpec::Cnn {
            nv: 16,
            nx: 16,
            channels: (2, 2),
            kernel: 3,
            hidden: vec![8],
            output: 64,
        };
        let mut net = arch.build(2);
        let bundle = ModelBundle::from_network(
            &mut net,
            arch,
            spec,
            BinningShape::Cic,
            NormStats::identity(),
        );
        match bundle.freeze() {
            Err(BundleError::Freeze(e)) => assert!(e.to_string().contains("conv2d"), "{e}"),
            other => panic!("expected a freeze error, got {other:?}"),
        }
        // The owned fallback still works.
        assert!(bundle.solver().is_ok());
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(matches!(
            ModelBundle::decode(b"nope"),
            Err(BundleError::Malformed(_))
        ));
        let mut blob = tiny_bundle().encode();
        blob.truncate(blob.len() - 3);
        assert!(matches!(
            ModelBundle::decode(&blob),
            Err(BundleError::Malformed(_))
        ));
        blob[0] = b'X';
        assert!(matches!(
            ModelBundle::decode(&blob),
            Err(BundleError::Malformed(_))
        ));
    }
}

//! Integration tests of the 2-D extension (paper §VII): a two-stream
//! configuration uniform in `y` must carry exactly the 1-D physics on its
//! `(kx, 0)` modes — growth at the 1-D rate, nothing growing in `ky`, and
//! the same conservation behaviour as the 1-D scheme.

use dlpic_repro::analytics::dispersion::TwoStreamDispersion;
use dlpic_repro::analytics::fit::{fit_growth_rate, GrowthFitOptions};
use dlpic_repro::pic::shape::Shape;
use dlpic_repro::pic2d::grid2d::Grid2D;
use dlpic_repro::pic2d::init2d::TwoStream2DInit;
use dlpic_repro::pic2d::simulation2d::{Pic2DConfig, Simulation2D};
use dlpic_repro::pic2d::solver2d::TraditionalSolver2D;

fn two_stream_2d(v0: f64, vth: f64, n_steps: usize, seed: u64) -> Simulation2D {
    let grid = Grid2D::new(32, 32, 2.0532, 2.0532);
    let cfg = Pic2DConfig {
        grid,
        init: TwoStream2DInit::quiet(v0, vth, 65_536, 1e-4, seed),
        dt: 0.2,
        n_steps,
        gather_shape: Shape::Cic,
        tracked_modes: vec![(1, 0), (2, 0), (0, 1)],
    };
    Simulation2D::new(cfg, Box::new(TraditionalSolver2D::default_config()))
}

#[test]
fn two_stream_growth_rate_matches_1d_linear_theory() {
    let mut sim = two_stream_2d(0.2, 0.0, 200, 11);
    sim.run();

    // The (1, 0) mode of the y-uniform configuration obeys the 1-D
    // dispersion relation at kx = 3.06.
    let theory = TwoStreamDispersion::new(0.2).growth_rate(3.06);
    assert!((theory - 0.3536).abs() < 1e-3, "theory sanity");

    let (times, amps) = sim.history().mode_series((1, 0)).expect("mode tracked");
    let fit =
        fit_growth_rate(times, amps, GrowthFitOptions::default()).expect("growth phase detected");
    let rel_err = (fit.gamma - theory).abs() / theory;
    assert!(
        rel_err < 0.2,
        "measured γ = {} vs theory {theory} ({:.1}% off, r² = {})",
        fit.gamma,
        rel_err * 100.0,
        fit.r2
    );
    assert!(fit.r2 > 0.9, "poor exponential fit: r² = {}", fit.r2);
}

#[test]
fn transverse_modes_stay_quiet() {
    // Nothing in the initial state couples to ky ≠ 0; the (0, 1) mode must
    // stay at shot-noise level while (1, 0) grows by orders of magnitude.
    let mut sim = two_stream_2d(0.2, 0.0, 150, 13);
    sim.run();
    let h = sim.history();
    let (_, streaming) = h.mode_series((1, 0)).unwrap();
    let (_, transverse) = h.mode_series((0, 1)).unwrap();
    let growth = streaming.last().unwrap() / streaming.first().unwrap().max(1e-300);
    assert!(growth > 50.0, "two-stream mode barely grew: ×{growth}");
    let max_transverse = transverse.iter().cloned().fold(0.0f64, f64::max);
    let max_streaming = streaming.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        max_transverse < 0.05 * max_streaming,
        "transverse mode grew: {max_transverse} vs streaming {max_streaming}"
    );
}

#[test]
fn energy_bounded_and_momentum_conserved_through_saturation() {
    let mut sim = two_stream_2d(0.2, 0.025, 200, 17);
    sim.run();
    let h = sim.history();
    let e0 = h.total[0];
    for (i, e) in h.total.iter().enumerate() {
        assert!(e.is_finite(), "step {i}: energy not finite");
        assert!(
            (e - e0).abs() / e0 < 0.05,
            "step {i}: total energy drifted {e} vs {e0}"
        );
    }
    // Momentum-conserving scheme: with vth > 0 the finite thermal sample
    // starts at a small nonzero momentum, which must then stay *constant*
    // to round-off.
    let p_scale = 65_536.0 * sim.particles().mass() * 0.2;
    let (px0, py0) = (h.momentum_x[0], h.momentum_y[0]);
    for (px, py) in h.momentum_x.iter().zip(&h.momentum_y) {
        assert!(
            (px - px0).abs() < 1e-8 * p_scale.max(1.0),
            "Δpx = {}",
            px - px0
        );
        assert!(
            (py - py0).abs() < 1e-8 * p_scale.max(1.0),
            "Δpy = {}",
            py - py0
        );
    }
}

#[test]
fn stable_beams_do_not_grow() {
    // v0 = 0.4 puts kx·v0 = 1.224 > 1: linearly stable, same as the 1-D
    // cold-beam premise of the paper's Fig. 6.
    let mut sim = two_stream_2d(0.4, 0.0, 100, 19);
    sim.run();
    let (_, amps) = sim.history().mode_series((1, 0)).unwrap();
    let start = amps[..10].iter().cloned().fold(0.0f64, f64::max);
    let end = amps[amps.len() - 10..]
        .iter()
        .cloned()
        .fold(0.0f64, f64::max);
    // CIC + spectral solve keeps the numerical cold-beam heating small at
    // this resolution; physical growth would be ×e⁷ over this window.
    assert!(
        end < 20.0 * start.max(1e-12),
        "stable configuration grew: {start} → {end}"
    );
}

//! **Fig. 5** — total energy and total momentum evolution of the
//! traditional and DL-based PIC in the two-stream validation run
//! (`v0 = ±0.2`, `vth = 0.025`).
//!
//! Paper findings this binary checks:
//! * both methods show a total-energy variation of roughly 2% (neither is
//!   exactly energy-conserving);
//! * the traditional (momentum-conserving) PIC keeps `P ≈ 0` to rounding,
//!   while the DL-based PIC's momentum *drifts* (reaching ~−9·10⁻³ by
//!   t = 40 in the paper) because the predicted field carries a small net
//!   bias force.
//!
//! Run: `cargo run -p dlpic-bench --release --bin fig5 [--scale ...]`

use dlpic_analytics::plot::{line_plot, PlotOptions};
use dlpic_analytics::series::write_csv;
use dlpic_analytics::stats;
use dlpic_bench::{get_or_train_mlp, out_dir, Cli};
use dlpic_pic::constants;
use dlpic_pic::presets::paper_config;
use dlpic_pic::shape::Shape;
use dlpic_pic::simulation::Simulation;
use dlpic_pic::solver::TraditionalSolver;

fn main() {
    let cli = Cli::parse();
    let (v0, vth) = (constants::PAPER_VALIDATION_V0, constants::PAPER_VALIDATION_VTH);
    println!(
        "== Fig. 5: conservation properties, v0 = ±{v0}, vth = {vth} [{} scale] ==\n",
        cli.scale.name()
    );

    let bundle = get_or_train_mlp(cli.scale, cli.retrain, true);
    let dl_solver = bundle.into_solver().expect("bundle -> solver");

    let seed = 20210705;
    // The paper's traditional baseline is the "basic NGP scheme" (§II);
    // both methods share the NGP gather so the comparison is apples to
    // apples (the DL method "retains the interpolation step", Fig. 2).
    let mut cfg_trad = paper_config(v0, vth, seed);
    cfg_trad.gather_shape = Shape::Ngp;
    let cfg_dl = cfg_trad.clone();
    let mut trad = Simulation::new(cfg_trad, Box::new(TraditionalSolver::basic_ngp()));
    let mut dl = Simulation::new(cfg_dl, Box::new(dl_solver));
    eprintln!("running traditional PIC...");
    trad.run();
    eprintln!("running DL-based PIC...");
    dl.run();

    let te_trad = trad.history().total_energy_series("energy-traditional");
    let te_dl = dl.history().total_energy_series("energy-dl-mlp");
    let p_trad = trad.history().momentum_series("momentum-traditional");
    let p_dl = dl.history().momentum_series("momentum-dl-mlp");

    println!(
        "{}",
        line_plot(
            &[('*', &te_trad), ('o', &te_dl)],
            &PlotOptions::titled(format!(
                "Total Energy for Different PIC Methods - v0 = {v0}, vth = {vth}"
            )),
        )
    );
    println!(
        "{}",
        line_plot(
            &[('*', &p_trad), ('o', &p_dl)],
            &PlotOptions::titled(format!(
                "Total Momentum for Different PIC Methods - v0 = {v0}, vth = {vth}"
            )),
        )
    );

    let ev_trad = stats::relative_variation(&trad.history().total);
    let ev_dl = stats::relative_variation(&dl.history().total);
    let pd_trad = stats::max_drift(&trad.history().momentum);
    let pd_dl = stats::max_drift(&dl.history().momentum);

    println!("total energy variation:");
    println!("  traditional : {:.2}%  (paper: ~2%)", ev_trad * 100.0);
    println!("  DL-based    : {:.2}%  (paper: ~2%)", ev_dl * 100.0);
    println!("total momentum drift:");
    println!("  traditional : {pd_trad:.2e}  (paper: conserved)");
    println!("  DL-based    : {pd_dl:.2e}  (paper: drifts to ~9e-3 magnitude)");

    let csv = out_dir().join(format!("fig5-{}.csv", cli.scale.name()));
    write_csv(&csv, &[&te_trad, &te_dl, &p_trad, &p_dl]).expect("write CSV");
    println!("\nwrote {}", csv.display());

    // Shape verdicts per the paper: bounded energy for both, conserved
    // momentum only for the traditional method.
    let pass = ev_trad < 0.05
        && ev_dl < 0.20
        && pd_trad < 1e-9
        && pd_dl > pd_trad * 100.0;
    println!(
        "verdict: {}",
        if pass {
            "PASS — traditional conserves momentum, DL drifts; energy bounded for both"
        } else {
            "CHECK — see numbers above"
        }
    );
}

//! The [`Engine`]: validates a scenario×backend pairing, builds the
//! matching solver stack, drives the run step by step, and streams unified
//! diagnostics to observers.
//!
//! Every backend follows the same protocol: build → step `n_steps` times →
//! final snapshot, emitting one [`Sample`] per recorded diagnostics row
//! (so a run yields `n_steps + 1` samples, matching the solver crates'
//! long-standing convention).

use super::backend::Backend;
use super::dl::{self, Dl2DModel};
use super::error::EngineError;
use super::observer::{EnergyHistory, Observer, PhaseSpace, RunSummary, Sample};
use super::spec::{LoadingSpec, ScenarioSpec};
use crate::core::presets::Scale;
use crate::core::ModelBundle;
use crate::ddecomp::sim::{DistConfig, DistSimulation};
use crate::ddecomp::strategy::GatherScatter;
use crate::pic::simulation::{PicConfig, Simulation};
use crate::pic::solver::{FieldSolver, PoissonKind, TraditionalSolver};
use crate::pic::{Shape, TwoStreamInit};
use crate::pic2d::simulation2d::Pic2DConfig;
use crate::pic2d::solver2d::FieldSolver2D;
use crate::pic2d::{Simulation2D, TraditionalSolver2D};
use crate::vlasov::{VlasovConfig, VlasovSolver};

/// Numerical options of the 1-D particle backends that the paper's figure
/// experiments vary; the scenario spec stays purely physical. Defaults
/// match `TraditionalSolver::paper_default()`: CIC deposit and gather,
/// finite-difference Poisson.
#[derive(Debug, Clone, Copy)]
pub struct Numerics1D {
    /// Shape used to gather E to the particles (shared by all backends).
    pub gather_shape: Shape,
    /// Deposition shape of the traditional solver (keep equal to
    /// `gather_shape` for momentum conservation).
    pub deposit_shape: Shape,
    /// Poisson backend of the traditional solver.
    pub poisson: PoissonKind,
}

impl Default for Numerics1D {
    fn default() -> Self {
        Self {
            gather_shape: Shape::Cic,
            deposit_shape: Shape::Cic,
            poisson: PoissonKind::FiniteDifference,
        }
    }
}

impl Numerics1D {
    /// The paper §II "basic NGP scheme" — the traditional baseline of the
    /// figure experiments, which exhibits the cold-beam instability most
    /// clearly.
    pub fn basic_ngp() -> Self {
        Self {
            gather_shape: Shape::Ngp,
            deposit_shape: Shape::Ngp,
            poisson: PoissonKind::FiniteDifference,
        }
    }
}

/// The facade entry point: holds optional DL models and observers, and
/// runs any compatible scenario×backend pairing.
#[derive(Default)]
pub struct Engine {
    model_1d: Option<ModelBundle>,
    model_2d: Option<Dl2DModel>,
    numerics_1d: Numerics1D,
    observers: Vec<Box<dyn Observer>>,
}

impl Engine {
    /// An engine with no models and no observers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Uses this trained 1-D bundle for `Backend::Dl1D` runs.
    pub fn with_model_1d(mut self, bundle: ModelBundle) -> Self {
        self.model_1d = Some(bundle);
        self
    }

    /// Uses this trained 2-D model for `Backend::Dl2D` runs.
    pub fn with_model_2d(mut self, model: Dl2DModel) -> Self {
        self.model_2d = Some(model);
        self
    }

    /// Overrides the 1-D numerical options (gather/deposit shapes, Poisson
    /// backend).
    pub fn with_numerics_1d(mut self, numerics: Numerics1D) -> Self {
        self.numerics_1d = numerics;
        self
    }

    /// Registers a run monitor.
    pub fn with_observer(mut self, observer: Box<dyn Observer>) -> Self {
        self.observers.push(observer);
        self
    }

    /// True when a trained 1-D model is configured.
    pub fn has_model_1d(&self) -> bool {
        self.model_1d.is_some()
    }

    /// Runs a registry scenario by name.
    pub fn run_named(
        &mut self,
        name: &str,
        scale: Scale,
        backend: Backend,
    ) -> Result<RunSummary, EngineError> {
        let spec = super::registry::scenario(name, scale)?;
        self.run(&spec, backend)
    }

    /// Runs a scenario on a backend: validate, build, step, summarize.
    pub fn run(
        &mut self,
        spec: &ScenarioSpec,
        backend: Backend,
    ) -> Result<RunSummary, EngineError> {
        spec.validate()?;
        backend.supports(spec)?;
        for obs in &mut self.observers {
            obs.on_start(spec, &backend);
        }
        let start = std::time::Instant::now();
        let numerics = self.numerics_1d;
        // Solvers are built before the observer borrow below.
        let solver_1d = match backend {
            Backend::Traditional1D | Backend::Dl1D => Some(self.build_1d_solver(spec, backend)?),
            _ => None,
        };
        let solver_2d = match backend {
            Backend::Traditional2D | Backend::Dl2D => Some(self.build_2d_solver(spec, backend)?),
            _ => None,
        };
        let mut history = EnergyHistory::new(spec.tracked_modes.clone());
        let mut extras: Vec<(String, f64)> = Vec::new();
        let phase_space;
        {
            // Each driver pushes every recorded row through this one sink.
            let observers = &mut self.observers;
            let mut emit = |sample: Sample| {
                history.push(&sample);
                for obs in observers.iter_mut() {
                    obs.on_sample(&sample);
                }
            };
            phase_space = match backend {
                Backend::Traditional1D | Backend::Dl1D => drive_1d(
                    spec,
                    solver_1d.expect("built above"),
                    numerics.gather_shape,
                    &mut emit,
                )?,
                Backend::Traditional2D | Backend::Dl2D => {
                    drive_2d(spec, solver_2d.expect("built above"), &mut emit)?
                }
                Backend::Vlasov => {
                    drive_vlasov(spec, &mut emit);
                    None
                }
                Backend::Ddecomp { n_ranks } => {
                    drive_ddecomp(spec, n_ranks, numerics, &mut emit, &mut extras)?
                }
            };
        }
        let summary = RunSummary {
            scenario: spec.name.clone(),
            backend: backend.to_string(),
            dim: spec.dim(),
            steps: spec.n_steps,
            t_end: history.times.last().copied().unwrap_or(0.0),
            history,
            phase_space,
            wall_seconds: start.elapsed().as_secs_f64(),
            extras,
        };
        for obs in &mut self.observers {
            obs.on_finish(&summary);
        }
        Ok(summary)
    }

    fn build_1d_solver(
        &self,
        spec: &ScenarioSpec,
        backend: Backend,
    ) -> Result<Box<dyn FieldSolver>, EngineError> {
        let n = &self.numerics_1d;
        match backend {
            Backend::Traditional1D => Ok(Box::new(TraditionalSolver::new(
                n.deposit_shape,
                n.poisson,
                1.0,
            ))),
            Backend::Dl1D => {
                let ncells = spec.domain.cells();
                let output = match &self.model_1d {
                    Some(bundle) => dl::bundle_output_cells(bundle),
                    None => spec.scale.mlp_arch().output_len(),
                };
                if output != ncells {
                    return Err(EngineError::Incompatible {
                        scenario: spec.name.clone(),
                        backend: backend.name(),
                        why: format!(
                            "DL solver predicts {output} cells but the domain has {ncells}"
                        ),
                    });
                }
                match &self.model_1d {
                    Some(bundle) => Ok(Box::new(bundle.clone().into_solver()?)),
                    None => Ok(Box::new(dl::untrained_1d(spec.scale))),
                }
            }
            _ => unreachable!("1-D solver for non-1-D backend"),
        }
    }

    fn build_2d_solver(
        &self,
        spec: &ScenarioSpec,
        backend: Backend,
    ) -> Result<Box<dyn FieldSolver2D>, EngineError> {
        match backend {
            Backend::Traditional2D => Ok(Box::new(TraditionalSolver2D::default_config())),
            Backend::Dl2D => match &self.model_2d {
                Some(model) => Ok(Box::new(model.into_solver(&spec.grid_2d())?)),
                None => Ok(Box::new(dl::untrained_2d(spec.scale, &spec.grid_2d()))),
            },
            _ => unreachable!("2-D solver for non-2-D backend"),
        }
    }
}

/// Builds and steps a 1-D PIC run, emitting each history row as it lands.
fn drive_1d(
    spec: &ScenarioSpec,
    solver: Box<dyn FieldSolver>,
    gather_shape: Shape,
    emit: &mut impl FnMut(Sample),
) -> Result<Option<PhaseSpace>, EngineError> {
    let grid = spec.grid_1d();
    let particles = match spec.two_stream_init() {
        Some(init) => init.build(&grid),
        None => spec.multi_beam_init().build(&grid),
    };
    // `PicConfig.init` is a record, not the load: `from_particles` below
    // receives the actual particle buffer (which for bump-on-tail has no
    // TwoStreamInit spelling).
    let cfg = PicConfig {
        grid,
        init: placeholder_init(spec),
        dt: spec.dt,
        n_steps: spec.n_steps,
        gather_shape,
        tracked_modes: spec.tracked_modes.clone(),
    };
    let mut sim = Simulation::from_particles(cfg, particles, solver);
    for _ in 0..spec.n_steps {
        sim.step();
        emit(last_row_1d(sim.history()));
    }
    sim.finish();
    emit(last_row_1d(sim.history()));
    let (x, v) = sim.phase_space();
    Ok(Some(PhaseSpace {
        x: x.to_vec(),
        v: v.to_vec(),
    }))
}

/// A `TwoStreamInit` standing in for loads `PicConfig` cannot express.
fn placeholder_init(spec: &ScenarioSpec) -> TwoStreamInit {
    let (v0, vth) = spec.species.as_two_stream().unwrap_or((0.0, 0.0));
    TwoStreamInit {
        v0,
        vth,
        n_particles: spec.n_particles(),
        loading: crate::pic::Loading::Random,
        seed: spec.seed,
    }
}

fn last_row_1d(h: &crate::pic::History) -> Sample {
    let i = h.len() - 1;
    Sample {
        step: i,
        time: h.times[i],
        kinetic: h.kinetic[i],
        field: h.field[i],
        momentum: h.momentum[i],
        mode_amps: h.mode_amps.iter().map(|s| s[i]).collect(),
    }
}

/// Builds and steps a 2-D PIC run. Tracked mode `m` maps to the `(m, 0)`
/// mode of `Ex` — the mode family carrying the 1-D physics.
fn drive_2d(
    spec: &ScenarioSpec,
    solver: Box<dyn FieldSolver2D>,
    emit: &mut impl FnMut(Sample),
) -> Result<Option<PhaseSpace>, EngineError> {
    let init = spec.init_2d().expect("compatibility checked");
    let cfg = Pic2DConfig {
        grid: spec.grid_2d(),
        init,
        dt: spec.dt,
        n_steps: spec.n_steps,
        gather_shape: Shape::Cic,
        tracked_modes: spec.tracked_modes.iter().map(|&m| (m, 0)).collect(),
    };
    let mut sim = Simulation2D::new(cfg, solver);
    for _ in 0..spec.n_steps {
        sim.step();
        emit(last_row_2d(sim.history()));
    }
    sim.finish();
    emit(last_row_2d(sim.history()));
    let p = sim.particles();
    Ok(Some(PhaseSpace {
        x: p.x.clone(),
        v: p.vx.clone(),
    }))
}

fn last_row_2d(h: &crate::pic2d::simulation2d::History2D) -> Sample {
    let i = h.len() - 1;
    Sample {
        step: i,
        time: h.times[i],
        kinetic: h.kinetic[i],
        field: h.field[i],
        momentum: h.momentum_x[i],
        mode_amps: h.mode_amps.iter().map(|s| s[i]).collect(),
    }
}

/// Smallest thermal spread the continuum backend accepts: below this the
/// velocity grid cannot resolve the Maxwellian and the solver would have
/// to silently alter the spec's physics. `Backend::Vlasov::supports`
/// enforces it.
pub(crate) const VLASOV_MIN_VTH: f64 = 0.01;

/// Velocity-space resolution of the continuum backend per scale.
fn vlasov_nv(scale: Scale) -> usize {
    match scale {
        Scale::Smoke => 64,
        Scale::Scaled => 256,
        Scale::Paper => 512,
    }
}

/// Builds and steps a Vlasov–Poisson run. Diagnostics are recorded at the
/// *start* of each step plus a final snapshot, matching the PIC sampling
/// convention.
fn drive_vlasov(spec: &ScenarioSpec, emit: &mut impl FnMut(Sample)) {
    // `Backend::Vlasov::supports` has already rejected vth below
    // VLASOV_MIN_VTH and quiet loadings on modes other than 1, so the
    // spec's physics runs unmodified.
    let (v0, vth) = spec.species.as_two_stream().expect("compatibility checked");
    // A quiet PIC loading displaces by ξ = A·L·sin(kx), i.e. a relative
    // density perturbation ε = A·L·k = 2π·A on mode 1, which is the mode
    // the continuum solver seeds.
    let perturbation = match spec.loading {
        LoadingSpec::Quiet { mode: 1, amplitude } => {
            (2.0 * std::f64::consts::PI * amplitude).abs().max(1e-9)
        }
        _ => 1e-3,
    };
    let cfg = VlasovConfig {
        grid: spec.grid_1d(),
        nv: vlasov_nv(spec.scale),
        vmax: (v0 + 6.0 * vth).max(0.8),
        dt: spec.dt,
        v0,
        vth,
        perturbation,
    };
    let mut solver = VlasovSolver::new(cfg);
    let mut record = |step: usize, solver: &VlasovSolver| {
        emit(Sample {
            step,
            time: solver.time(),
            kinetic: solver.kinetic_energy(),
            field: solver.field_energy(),
            momentum: solver.momentum(),
            mode_amps: spec
                .tracked_modes
                .iter()
                .map(|&m| solver.field_mode(m))
                .collect(),
        });
    };
    for step in 0..spec.n_steps {
        record(step, &solver);
        solver.step();
    }
    record(spec.n_steps, &solver);
}

/// Builds and steps a distributed 1-D run, reporting communication volume
/// and migration counts as summary extras.
fn drive_ddecomp(
    spec: &ScenarioSpec,
    n_ranks: usize,
    numerics: Numerics1D,
    emit: &mut impl FnMut(Sample),
    extras: &mut Vec<(String, f64)>,
) -> Result<Option<PhaseSpace>, EngineError> {
    // The distributed gather/scatter strategy solves Poisson with the
    // finite-difference backend only; honouring part of a numerics
    // override while ignoring the rest would produce apples-to-oranges
    // comparisons, so reject instead.
    if numerics.poisson != PoissonKind::FiniteDifference {
        return Err(EngineError::Incompatible {
            scenario: spec.name.clone(),
            backend: "ddecomp",
            why: format!(
                "the distributed solve supports only finite-difference Poisson (asked for {:?})",
                numerics.poisson
            ),
        });
    }
    let init = spec.two_stream_init().expect("compatibility checked");
    let cfg = DistConfig {
        grid: spec.grid_1d(),
        init,
        dt: spec.dt,
        n_steps: spec.n_steps,
        gather_shape: numerics.gather_shape,
        n_ranks,
        tracked_modes: spec.tracked_modes.clone(),
    };
    let mut sim = DistSimulation::new(
        cfg,
        Box::new(GatherScatter::new(numerics.deposit_shape, 1.0)),
    );
    for _ in 0..spec.n_steps {
        sim.step();
        emit(last_row_1d(sim.history()));
    }
    sim.finish();
    emit(last_row_1d(sim.history()));
    let stats = sim.comm_stats();
    extras.push(("ranks".into(), n_ranks as f64));
    extras.push(("migrated_particles".into(), sim.migrated_total() as f64));
    extras.push(("comm_messages".into(), stats.messages as f64));
    extras.push(("comm_bytes".into(), stats.bytes as f64));
    let (x, v) = sim.phase_space();
    Ok(Some(PhaseSpace { x, v }))
}

/// One-shot convenience: runs `spec` on `backend` with no observers and no
/// trained models (DL backends fall back to untrained networks).
pub fn run(spec: &ScenarioSpec, backend: Backend) -> Result<RunSummary, EngineError> {
    Engine::new().run(spec, backend)
}

/// One-shot convenience: runs a registry scenario by name.
pub fn run_scenario(name: &str, scale: Scale, backend: Backend) -> Result<RunSummary, EngineError> {
    Engine::new().run_named(name, scale, backend)
}

//! End-to-end test of the 2-D extension: harvest training data from
//! traditional 2-D PIC runs, train the 2-D DL field solver, drop it into
//! the shared 2-D simulation loop and verify it reproduces the physics —
//! the 2-D version of the paper's whole pipeline (Figs. 2–4).

use dlpic_repro::analytics::dispersion::TwoStreamDispersion;
use dlpic_repro::analytics::fit::{fit_growth_rate, GrowthFitOptions};
use dlpic_repro::core::twod::{harvest_2d, train_2d_solver, DensityBinning, Train2DConfig};
use dlpic_repro::pic::shape::Shape;
use dlpic_repro::pic2d::grid2d::Grid2D;
use dlpic_repro::pic2d::init2d::TwoStream2DInit;
use dlpic_repro::pic2d::simulation2d::{Pic2DConfig, Simulation2D};
use dlpic_repro::pic2d::solver2d::TraditionalSolver2D;

fn grid() -> Grid2D {
    Grid2D::new(16, 16, 2.0532, 2.0532)
}

fn config(v0: f64, vth: f64, n_steps: usize, seed: u64) -> Pic2DConfig {
    Pic2DConfig {
        grid: grid(),
        init: TwoStream2DInit::quiet(v0, vth, 16_384, 1e-3, seed),
        dt: 0.2,
        n_steps,
        gather_shape: Shape::Cic,
        tracked_modes: vec![(1, 0)],
    }
}

#[test]
fn trained_2d_solver_reproduces_two_stream_growth() {
    // Training data: three seeds of the validation configuration (the
    // same augmentation-by-seed idea as the paper's §IV.A.1 sweep,
    // shrunk to test size).
    let mut samples = Vec::new();
    for seed in [1, 2, 3] {
        samples.extend(harvest_2d(
            config(0.2, 0.0, 160, seed),
            DensityBinning::Cic,
            1,
        ));
    }
    let tc = Train2DConfig {
        hidden: vec![128],
        learning_rate: 1e-3,
        epochs: 60,
        batch_size: 32,
        seed: 7,
    };
    let g = grid();
    let (solver, history) = train_2d_solver(&g, &samples, DensityBinning::Cic, &tc);
    let final_loss = history.final_loss().unwrap();
    assert!(final_loss.is_finite() && final_loss > 0.0);

    // Evaluate in the loop on an unseen seed.
    let mut dl = Simulation2D::new(config(0.2, 0.0, 160, 99), Box::new(solver));
    dl.run();
    let h = dl.history();
    assert!(
        h.total.iter().all(|e| e.is_finite()),
        "energy stayed finite"
    );

    let theory = TwoStreamDispersion::new(0.2).growth_rate(3.06);
    let (times, amps) = h.mode_series((1, 0)).unwrap();
    let fit = fit_growth_rate(times, amps, GrowthFitOptions::default())
        .expect("growth phase detected in DL-PIC 2D");
    let rel = (fit.gamma - theory).abs() / theory;
    assert!(
        rel < 0.35,
        "DL-PIC 2D γ = {} vs theory {theory} ({:.0}% off, r² = {})",
        fit.gamma,
        rel * 100.0,
        fit.r2
    );
}

#[test]
fn dl_2d_field_error_is_small_against_traditional() {
    // Train on two seeds, compare predicted vs Poisson fields along a
    // trajectory from a third seed — the 2-D analogue of Table I's MAE.
    let mut samples = Vec::new();
    for seed in [5, 6] {
        samples.extend(harvest_2d(
            config(0.2, 0.0, 120, seed),
            DensityBinning::Cic,
            1,
        ));
    }
    let g = grid();
    let tc = Train2DConfig {
        hidden: vec![128],
        learning_rate: 1e-3,
        epochs: 50,
        batch_size: 32,
        seed: 3,
    };
    let (mut solver, _) = train_2d_solver(&g, &samples, DensityBinning::Cic, &tc);

    // Drive a traditional run and query both solvers on the same states.
    let mut sim = Simulation2D::new(
        config(0.2, 0.0, 120, 42),
        Box::new(TraditionalSolver2D::default_config()),
    );
    let mut abs_err_sum = 0.0f64;
    let mut count = 0usize;
    let mut field_scale = 0.0f64;
    for step in 0..120 {
        sim.step();
        if step % 10 != 0 {
            continue;
        }
        let mut ex_dl = g.zeros();
        let mut ey_dl = g.zeros();
        use dlpic_repro::pic2d::solver2d::FieldSolver2D;
        solver.solve(sim.particles(), &g, &mut ex_dl, &mut ey_dl);
        for (a, b) in ex_dl.iter().zip(sim.ex()).chain(ey_dl.iter().zip(sim.ey())) {
            abs_err_sum += (a - b).abs();
            field_scale = field_scale.max(b.abs());
            count += 1;
        }
    }
    let mae = abs_err_sum / count as f64;
    // Paper Table I: MAE ≈ 2% of the max field. The shrunken 2-D model is
    // given more headroom; the point is order-of-magnitude fidelity.
    assert!(
        mae < 0.15 * field_scale,
        "2-D DL MAE {mae} too large vs field scale {field_scale}"
    );
}

//! Default configuration of the 2-D extension runs.
//!
//! The paper fixes its 1-D box at `L = 2π/3.06` so that grid mode 1 is the
//! fastest-growing two-stream mode at `v0 = 0.2` (§III). The 2-D extension
//! keeps that box along `x` — the streaming direction — and uses a square
//! box, so the `(1, 0)` mode carries the same physics as the paper's 1-D
//! mode 1 and the 1-D linear theory applies unchanged.
//!
//! Cell counts and particle counts are reduced relative to the paper's 1-D
//! numbers (64 cells × 1000/cell): a faithful 2-D equivalent would be
//! 64² cells × 1000/cell = 4.1 M particles, which is sized for the paper's
//! 24-core node, not this container. 32² cells at 128/cell keeps every
//! qualitative feature (growth, saturation, conservation behaviour) and is
//! what the 2-D tests and benches use by default; the paper-scale values
//! remain reachable through [`crate::grid2d::Grid2D::new`].

/// Fundamental wavenumber along the streaming direction, as in the paper.
pub const K1: f64 = dlpic_pic::constants::PAPER_K1;

/// Default cells along `x`.
pub const DEFAULT_NX: usize = 32;

/// Default cells along `y`.
pub const DEFAULT_NY: usize = 32;

/// Default macro-electrons per cell.
pub const DEFAULT_PARTICLES_PER_CELL: usize = 128;

/// Default time step (the paper's Δt).
pub const DEFAULT_DT: f64 = dlpic_pic::constants::PAPER_DT;

/// Default number of steps (the paper's 200 → t_end = 40).
pub const DEFAULT_NSTEPS: usize = 200;

/// Box length along the streaming direction: `Lx = 2π/3.06`.
pub fn box_length_x() -> f64 {
    dlpic_pic::constants::paper_box_length()
}

/// Box length along `y` (square box).
pub fn box_length_y() -> f64 {
    box_length_x()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_one_matches_paper_wavenumber() {
        let k1 = 2.0 * std::f64::consts::PI / box_length_x();
        assert!((k1 - K1).abs() < 1e-12);
    }

    #[test]
    fn default_grid_is_square() {
        assert_eq!(DEFAULT_NX, DEFAULT_NY);
        assert!((box_length_x() - box_length_y()).abs() < 1e-15);
    }
}

//! Fixture: unjustified `unsafe`. Neither the block nor the unsafe fn
//! states why the contract holds.

pub unsafe fn sum_unchecked(v: &[f32], n: usize) -> f32 {
    let mut acc = 0.0;
    for i in 0..n {
        acc += *v.get_unchecked(i);
    }
    acc
}

pub fn sum(v: &[f32]) -> f32 {
    unsafe { sum_unchecked(v, v.len()) }
}

//! The 2-D leap-frog particle mover — the paper's Eqs. (1)–(2) applied per
//! component (no magnetic field, so the components decouple):
//!
//! ```text
//! v^{n+1/2} = v^{n-1/2} + (q/m)·E^n(x_p)·Δt     (both components)
//! x^{n+1}   = x^n + v^{n+1/2}·Δt                (both components)
//! ```

use crate::grid2d::Grid2D;
use crate::particles2d::Particles2D;
use rayon::prelude::*;

/// Minimum particle count before the parallel path is worth spawning.
const PAR_THRESHOLD: usize = 1 << 15;

/// Advances both velocity components by one step and returns the
/// time-centred kinetic energy `½·m·Σ(vx⁻·vx⁺ + vy⁻·vy⁺)` — the standard
/// leap-frog energy estimate at the starting time level.
///
/// # Panics
/// Panics if the per-particle field slices mismatch the particle count.
pub fn push_velocities(
    particles: &mut Particles2D,
    ex_part: &[f64],
    ey_part: &[f64],
    dt: f64,
) -> f64 {
    assert_eq!(ex_part.len(), particles.len(), "ex_part length mismatch");
    assert_eq!(ey_part.len(), particles.len(), "ey_part length mismatch");
    let qm_dt = particles.charge_over_mass() * dt;
    let half_m = 0.5 * particles.mass();

    let advance = |v: &mut f64, ep: f64| {
        let v_old = *v;
        let v_new = v_old + qm_dt * ep;
        *v = v_new;
        v_old * v_new
    };

    let ke_sum: f64 = if particles.len() >= PAR_THRESHOLD && rayon::current_num_threads() > 1 {
        let kx: f64 = particles
            .vx
            .par_iter_mut()
            .zip(ex_part.par_iter())
            .map(|(v, &ep)| advance(v, ep))
            .sum();
        let ky: f64 = particles
            .vy
            .par_iter_mut()
            .zip(ey_part.par_iter())
            .map(|(v, &ep)| advance(v, ep))
            .sum();
        kx + ky
    } else {
        let mut acc = 0.0;
        for (v, &ep) in particles.vx.iter_mut().zip(ex_part) {
            acc += advance(v, ep);
        }
        for (v, &ep) in particles.vy.iter_mut().zip(ey_part) {
            acc += advance(v, ep);
        }
        acc
    };
    half_m * ke_sum
}

/// Advances both position components with periodic wrap.
pub fn push_positions(particles: &mut Particles2D, grid: &Grid2D, dt: f64) {
    let (lx, ly) = (grid.lx(), grid.ly());
    let advance = |pos: &mut f64, v: f64, length: f64| {
        let mut np = *pos + v * dt;
        if np < 0.0 || np >= length {
            np = np.rem_euclid(length);
            if np >= length {
                np = 0.0;
            }
        }
        *pos = np;
    };
    if particles.len() >= PAR_THRESHOLD && rayon::current_num_threads() > 1 {
        particles
            .x
            .par_iter_mut()
            .zip(particles.vx.par_iter())
            .for_each(|(x, &v)| advance(x, v, lx));
        particles
            .y
            .par_iter_mut()
            .zip(particles.vy.par_iter())
            .for_each(|(y, &v)| advance(y, v, ly));
    } else {
        for (x, &v) in particles.x.iter_mut().zip(particles.vx.iter()) {
            advance(x, v, lx);
        }
        for (y, &v) in particles.y.iter_mut().zip(particles.vy.iter()) {
            advance(y, v, ly);
        }
    }
}

/// Rewinds both velocity components by half a step to set up the
/// leap-frog stagger.
///
/// # Panics
/// Panics if the per-particle field slices mismatch the particle count.
pub fn half_step_back(particles: &mut Particles2D, ex_part: &[f64], ey_part: &[f64], dt: f64) {
    assert_eq!(ex_part.len(), particles.len(), "ex_part length mismatch");
    assert_eq!(ey_part.len(), particles.len(), "ey_part length mismatch");
    let qm_half_dt = particles.charge_over_mass() * 0.5 * dt;
    for (v, &ep) in particles.vx.iter_mut().zip(ex_part) {
        *v -= qm_half_dt * ep;
    }
    for (v, &ep) in particles.vy.iter_mut().zip(ey_part) {
        *v -= qm_half_dt * ep;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn free(x: Vec<f64>, y: Vec<f64>, vx: Vec<f64>, vy: Vec<f64>) -> Particles2D {
        Particles2D::new(x, y, vx, vy, -1.0, 1.0)
    }

    #[test]
    fn ballistic_motion_without_field() {
        let grid = Grid2D::new(8, 8, 2.0, 2.0);
        let mut p = free(vec![0.5], vec![0.5], vec![0.1], vec![-0.2]);
        let zero = vec![0.0];
        for _ in 0..10 {
            push_velocities(&mut p, &zero, &zero, 0.1);
            push_positions(&mut p, &grid, 0.1);
        }
        // 10 steps × v·Δt: Δx = 0.1·0.1·10 = 0.1, Δy = −0.2.
        assert!((p.x[0] - 0.6).abs() < 1e-12);
        assert!((p.y[0] - 0.3).abs() < 1e-12);
    }

    #[test]
    fn constant_field_accelerates_linearly() {
        let mut p = free(vec![0.0], vec![0.0], vec![0.0], vec![0.0]);
        let ex = vec![2.0];
        let ey = vec![-1.0];
        push_velocities(&mut p, &ex, &ey, 0.5);
        // q/m = -1: Δvx = -1·2.0·0.5 = -1, Δvy = +0.5.
        assert!((p.vx[0] + 1.0).abs() < 1e-15);
        assert!((p.vy[0] - 0.5).abs() < 1e-15);
    }

    #[test]
    fn time_centred_energy_matches_hand_computation() {
        let mut p = free(vec![0.0], vec![0.0], vec![1.0], vec![2.0]);
        let ke = push_velocities(&mut p, &[1.0], &[1.0], 1.0);
        // v⁻ = (1, 2), v⁺ = (0, 1): KE = ½·(1·0 + 2·1) = 1.
        assert!((ke - 1.0).abs() < 1e-15);
    }

    #[test]
    fn half_step_back_then_forward_is_identity() {
        let mut p = free(vec![0.0], vec![0.0], vec![0.3], vec![-0.4]);
        let ex = vec![0.7];
        let ey = vec![-0.1];
        half_step_back(&mut p, &ex, &ey, 0.2);
        // A forward half-push with the same field undoes the rewind.
        let qm_half_dt = p.charge_over_mass() * 0.1;
        p.vx[0] += qm_half_dt * ex[0];
        p.vy[0] += qm_half_dt * ey[0];
        assert!((p.vx[0] - 0.3).abs() < 1e-15);
        assert!((p.vy[0] + 0.4).abs() < 1e-15);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn leapfrog_is_time_reversible(
            x in 0.0f64..2.0, y in 0.0f64..2.0,
            vx in -0.5f64..0.5, vy in -0.5f64..0.5,
            steps in 1usize..20,
        ) {
            // Drift-only reversibility: run forward, negate velocities,
            // run the same number of steps, arrive back.
            let grid = Grid2D::new(8, 8, 2.0, 2.0);
            let mut p = free(vec![x], vec![y], vec![vx], vec![vy]);
            for _ in 0..steps {
                push_positions(&mut p, &grid, 0.1);
            }
            p.vx[0] = -p.vx[0];
            p.vy[0] = -p.vy[0];
            for _ in 0..steps {
                push_positions(&mut p, &grid, 0.1);
            }
            let dx = (p.x[0] - x).abs();
            let dy = (p.y[0] - y).abs();
            prop_assert!(dx < 1e-9 || (grid.lx() - dx) < 1e-9, "x: {dx}");
            prop_assert!(dy < 1e-9 || (grid.ly() - dy) < 1e-9, "y: {dy}");
        }

        #[test]
        fn positions_stay_in_box(
            vx in -10.0f64..10.0, vy in -10.0f64..10.0, steps in 1usize..50,
        ) {
            let grid = Grid2D::new(8, 8, 2.0, 2.0);
            let mut p = free(vec![1.0], vec![1.0], vec![vx], vec![vy]);
            for _ in 0..steps {
                push_positions(&mut p, &grid, 0.2);
                prop_assert!((0.0..grid.lx()).contains(&p.x[0]));
                prop_assert!((0.0..grid.ly()).contains(&p.y[0]));
            }
        }
    }
}

//! Traditional vs DL-based PIC on the two-stream instability — the
//! paper's headline validation (Figs. 4–5) as a runnable example.
//!
//! Loads the model bundle written by `train_field_solver` (falling back to
//! training a quick one), then runs both methods from *identical* initial
//! conditions and compares growth rate, phase space and conservation.
//!
//! ```sh
//! cargo run --release --example train_field_solver   # once
//! cargo run --release --example two_stream
//! ```

use dlpic_repro::analytics::dispersion::TwoStreamDispersion;
use dlpic_repro::analytics::fit::{fit_growth_rate, GrowthFitOptions};
use dlpic_repro::analytics::plot::{line_plot, scatter_density, PlotOptions};
use dlpic_repro::analytics::stats;
use dlpic_repro::core::{ModelBundle, Scale};
use dlpic_repro::pic::presets::reduced_config;
use dlpic_repro::pic::simulation::Simulation;
use dlpic_repro::pic::solver::TraditionalSolver;

/// Loads the example bundle, preferring the scaled one if present.
fn load_bundle() -> ModelBundle {
    for name in ["out/models/example-mlp-scaled.dlpb", "out/models/mlp-scaled.dlpb",
                 "out/models/example-mlp-smoke.dlpb", "out/models/mlp-smoke.dlpb"] {
        if let Ok(b) = ModelBundle::load(name) {
            println!("using model {name}");
            return b;
        }
    }
    println!("no cached model found; run `--example train_field_solver` first.");
    println!("training a quick smoke-scale model now...\n");
    // Minimal inline training so the example always works stand-alone.
    let scale = Scale::Smoke;
    let data = {
        use dlpic_repro::dataset::generator::{generate, GeneratorConfig};
        use dlpic_repro::dataset::spec::SweepSpec;
        let mut cfg = GeneratorConfig::new(SweepSpec::training_for(scale), scale.phase_spec());
        cfg.ppc = scale.dataset_ppc();
        generate(&cfg)
    };
    let norm = data.input_norm_stats();
    let arch = scale.mlp_arch();
    let mut net = arch.build(1);
    let mut opt = dlpic_repro::nn::Adam::new(scale.learning_rate());
    let cfg = dlpic_repro::nn::TrainConfig { epochs: 12, batch_size: 64, shuffle_seed: 3, log_every: 0 };
    let kind = arch.input_kind();
    dlpic_repro::nn::train(
        &mut net,
        &dlpic_repro::nn::Mse,
        &mut opt,
        &data.to_nn_dataset(&norm, kind),
        None,
        &cfg,
    );
    let reference_mass: f32 = data.input_row(0).iter().sum();
    ModelBundle::from_network(
        &mut net,
        arch,
        scale.phase_spec(),
        dlpic_repro::core::BinningShape::Ngp,
        norm,
    )
    .with_reference_mass(reference_mass)
}

fn main() {
    let (v0, vth) = (0.2, 0.025);
    println!("== two-stream instability: traditional vs DL-based PIC ==\n");
    let bundle = load_bundle();
    let dl_solver = bundle.into_solver().expect("bundle -> solver");

    // Identical initial conditions; 500 particles/cell keeps the example
    // under a few seconds while staying physical.
    let seed = 7;
    let (ppc, steps) = (500, 200);
    let mut trad = Simulation::new(
        reduced_config(v0, vth, ppc, steps, seed),
        Box::new(TraditionalSolver::paper_default()),
    );
    let mut dl = Simulation::new(reduced_config(v0, vth, ppc, steps, seed), Box::new(dl_solver));
    trad.run();
    dl.run();

    // Phase space at t = 40.
    let l = trad.grid().length();
    let (tx, tv) = trad.phase_space();
    println!("{}", scatter_density(tx, tv, (0.0, l), (-0.4, 0.4), 64, 14, "Traditional PIC (t = 40)"));
    let (dx, dv) = dl.phase_space();
    println!("{}", scatter_density(dx, dv, (0.0, l), (-0.4, 0.4), 64, 14, "DL-based PIC (t = 40)"));

    // E1 growth.
    let mut e1t = trad.history().mode_series(1).unwrap();
    e1t.name = "traditional".into();
    let mut e1d = dl.history().mode_series(1).unwrap();
    e1d.name = "dl-based".into();
    println!(
        "{}",
        line_plot(
            &[('*', &e1t), ('o', &e1d)],
            &PlotOptions::titled("E1 amplitude (log)").log_y(true)
        )
    );

    let gamma = TwoStreamDispersion::new(v0).mode_growth_rate(1, l);
    println!("growth rates (theory γ = {gamma:.4}):");
    for (name, s) in [("traditional", &e1t), ("dl-based", &e1d)] {
        match fit_growth_rate(&s.times, &s.values, GrowthFitOptions::default()) {
            Some(f) => println!(
                "  {name:<12}: γ = {:.4} ({:+.1}% vs theory)",
                f.gamma,
                (f.gamma - gamma) / gamma * 100.0
            ),
            None => println!("  {name:<12}: no growth phase found"),
        }
    }

    println!("\nconservation:");
    println!(
        "  energy variation : traditional {:.2}%, dl-based {:.2}%",
        stats::relative_variation(&trad.history().total) * 100.0,
        stats::relative_variation(&dl.history().total) * 100.0
    );
    println!(
        "  momentum drift   : traditional {:.2e}, dl-based {:.2e}",
        stats::max_drift(&trad.history().momentum),
        stats::max_drift(&dl.history().momentum)
    );
    println!("\n(the paper's full-scale version of this comparison: `cargo run -p dlpic-bench --release --bin fig4`)");
}

//! Residual dense block: `y = relu(x + Dense(x))`.
//!
//! The paper's §VII suggests that "the usage of neural networks fit to
//! encode time sequences, such as Residual networks (ResNet), might be a
//! better fit to DL-based PIC methods than MLPs" — this block lets the
//! `ablation_arch` experiment test a residual MLP against the plain one.

use crate::init::Init;
use crate::layer::Layer;
use crate::layers::dense::Dense;
use crate::tensor::Tensor;

/// A width-preserving residual block around one dense layer.
pub struct ResidualDense {
    inner: Dense,
    mask: Vec<bool>,
    // Reusable scratch for the dense-branch activation (forward) and the
    // ReLU-masked gradient (backward).
    scratch: Tensor,
}

impl ResidualDense {
    /// Creates a residual block of the given width.
    pub fn new(width: usize, init: Init, seed: u64) -> Self {
        Self {
            inner: Dense::new(width, width, init, seed),
            mask: Vec::new(),
            scratch: Tensor::zeros(&[0]),
        }
    }
}

impl Layer for ResidualDense {
    fn forward(&mut self, input: &Tensor, training: bool) -> Tensor {
        let mut y = self.inner.forward(input, training);
        y.add_assign(input);
        if training {
            self.mask.clear();
            self.mask.extend(y.data().iter().map(|&v| v > 0.0));
        }
        y.map(|v| v.max(0.0))
    }

    fn infer_into(&mut self, input: &Tensor, out: &mut Tensor) {
        self.inner.infer_into(input, out);
        for (o, &x) in out.data_mut().iter_mut().zip(input.data()) {
            *o = (*o + x).max(0.0);
        }
    }

    fn train_forward_into(&mut self, input: &Tensor, out: &mut Tensor) {
        self.inner.train_forward_into(input, out);
        self.mask.clear();
        for (o, &x) in out.data_mut().iter_mut().zip(input.data()) {
            let pre = *o + x;
            self.mask.push(pre > 0.0);
            *o = pre.max(0.0);
        }
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut grad_in = Tensor::zeros(&[0]);
        self.backward_into(grad_out, &mut grad_in);
        grad_in
    }

    fn backward_into(&mut self, grad_out: &Tensor, grad_in: &mut Tensor) {
        assert_eq!(
            grad_out.len(),
            self.mask.len(),
            "backward before forward(training)"
        );
        // Through the ReLU.
        self.scratch.resize_in_place(grad_out.shape());
        for ((s, &g), &m) in self
            .scratch
            .data_mut()
            .iter_mut()
            .zip(grad_out.data())
            .zip(&self.mask)
        {
            *s = if m { g } else { 0.0 };
        }
        // Through the dense branch, plus the skip connection.
        self.inner.backward_into(&self.scratch, grad_in);
        grad_in.add_assign(&self.scratch);
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        self.inner.visit_params(f);
    }

    fn zero_grads(&mut self) {
        self.inner.zero_grads();
    }

    fn name(&self) -> &'static str {
        "residual-dense"
    }

    fn param_count(&self) -> usize {
        self.inner.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_weights_reduce_to_relu_identity() {
        let mut block = ResidualDense::new(3, Init::Zeros, 0);
        let x = Tensor::new(vec![1.0, -2.0, 0.5], &[1, 3]);
        let y = block.forward(&x, false);
        assert_eq!(y.data(), &[1.0, 0.0, 0.5]);
    }

    #[test]
    fn skip_connection_carries_gradient() {
        let mut block = ResidualDense::new(2, Init::Zeros, 0);
        let x = Tensor::new(vec![1.0, 2.0], &[1, 2]); // all positive → mask open
        let _ = block.forward(&x, true);
        let gx = block.backward(&Tensor::new(vec![1.0, 1.0], &[1, 2]));
        // Zero weights: gradient flows only through the skip → identity.
        assert_eq!(gx.data(), &[1.0, 1.0]);
    }

    #[test]
    fn parameter_count_matches_inner_dense() {
        let block = ResidualDense::new(8, Init::HeNormal, 1);
        assert_eq!(block.param_count(), 8 * 8 + 8);
    }
}

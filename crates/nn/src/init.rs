//! Weight initialization.
//!
//! He-normal for ReLU layers, Glorot-uniform as the general default — the
//! same defaults Keras would have applied to the paper's models
//! (`Dense(..., activation='relu')` uses Glorot by default in Keras; both
//! are provided and the builders in `dlpic-core` pick He for the
//! ReLU-activated hidden layers, which trains slightly faster and makes no
//! qualitative difference).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Weight-initialization scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Init {
    /// He normal: `N(0, sqrt(2/fan_in))`.
    HeNormal,
    /// Glorot (Xavier) uniform: `U(±sqrt(6/(fan_in+fan_out)))`.
    GlorotUniform,
    /// All zeros (biases).
    Zeros,
}

impl Init {
    /// Fills a buffer of `len` weights with the scheme, deterministically
    /// from `seed`.
    pub fn fill(self, buf: &mut [f32], fan_in: usize, fan_out: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        match self {
            Init::Zeros => buf.fill(0.0),
            Init::HeNormal => {
                let std = (2.0 / fan_in.max(1) as f64).sqrt();
                for w in buf.iter_mut() {
                    *w = (std * gaussian(&mut rng)) as f32;
                }
            }
            Init::GlorotUniform => {
                let limit = (6.0 / (fan_in + fan_out).max(1) as f64).sqrt();
                for w in buf.iter_mut() {
                    *w = (limit * (2.0 * rng.gen::<f64>() - 1.0)) as f32;
                }
            }
        }
    }
}

/// Standard normal deviate (Box–Muller; `rand` 0.8 has no Gaussian without
/// `rand_distr`).
fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 > f64::MIN_POSITIVE {
            let u2: f64 = rng.gen();
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn he_normal_variance() {
        let fan_in = 256;
        let mut buf = vec![0.0f32; 100_000];
        Init::HeNormal.fill(&mut buf, fan_in, 64, 1);
        let mean = buf.iter().sum::<f32>() / buf.len() as f32;
        let var = buf.iter().map(|w| (w - mean) * (w - mean)).sum::<f32>() / buf.len() as f32;
        let expect = 2.0 / fan_in as f32;
        // SE of the mean ≈ σ/√n ≈ 2.8e-4; allow 5 SE.
        assert!(mean.abs() < 1.5e-3, "mean {mean}");
        assert!(
            (var - expect).abs() / expect < 0.05,
            "var {var} vs {expect}"
        );
    }

    #[test]
    fn glorot_uniform_bounds() {
        let (fan_in, fan_out) = (100, 50);
        let limit = (6.0 / 150.0f32).sqrt();
        let mut buf = vec![0.0f32; 10_000];
        Init::GlorotUniform.fill(&mut buf, fan_in, fan_out, 2);
        assert!(buf.iter().all(|w| w.abs() <= limit + 1e-6));
        // Spread should actually use the range.
        let max = buf.iter().fold(0.0f32, |m, w| m.max(w.abs()));
        assert!(max > 0.9 * limit);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = vec![0.0f32; 64];
        let mut b = vec![0.0f32; 64];
        Init::HeNormal.fill(&mut a, 8, 8, 42);
        Init::HeNormal.fill(&mut b, 8, 8, 42);
        assert_eq!(a, b);
        Init::HeNormal.fill(&mut b, 8, 8, 43);
        assert_ne!(a, b);
    }

    #[test]
    fn zeros_is_zeros() {
        let mut buf = vec![1.0f32; 16];
        Init::Zeros.fill(&mut buf, 4, 4, 0);
        assert!(buf.iter().all(|&w| w == 0.0));
    }
}

//! # dlpic-analytics
//!
//! Analysis toolkit for the DL-PIC reproduction of Aguilar & Markidis,
//! *"A Deep Learning-Based Particle-in-Cell Method for Plasma Simulations"*
//! (IEEE CLUSTER 2021).
//!
//! This crate is dependency-free and provides everything needed to turn raw
//! simulation output into the quantities the paper reports:
//!
//! * [`complex`] — a minimal `Complex64` type (no external num crate).
//! * [`dft`] — radix-2 FFT and a naive DFT reference, plus helpers to
//!   extract per-mode field amplitudes (the `E1` series of the paper's
//!   Fig. 4).
//! * [`dft2`] — separable 2-D FFT and 2-D mode amplitudes, the substrate of
//!   the 2-D extension (paper §VII).
//! * [`dispersion`] — the two-stream kinetic dispersion relation for two
//!   symmetric cold beams; produces the "Linear Theory" growth-rate line of
//!   Fig. 4 and the stability boundary used by the cold-beam experiment of
//!   Fig. 6.
//! * [`fit`] — log-linear growth-rate fitting with automatic selection of
//!   the exponential-growth window.
//! * [`series`] — time-series recording and CSV export.
//! * [`stats`] — small statistics helpers (MAE, max error, variation).
//! * [`plot`] — ASCII line plots / scatter densities / heatmaps used by the
//!   experiment binaries to render figure-equivalents in the terminal.

#![warn(missing_docs)]

pub mod complex;
pub mod dft;
pub mod dft2;
pub mod dispersion;
pub mod fit;
pub mod plot;
pub mod series;
pub mod stats;

pub use complex::Complex64;
pub use dispersion::TwoStreamDispersion;
pub use fit::GrowthFit;
pub use series::TimeSeries;

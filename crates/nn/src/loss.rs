//! Loss functions.

use crate::tensor::Tensor;

/// A differentiable scalar loss over a batch.
pub trait Loss: Sync {
    /// Computes the loss value and writes `∂loss/∂pred` into `grad`.
    ///
    /// # Panics
    /// Implementations panic on shape mismatches.
    fn loss_and_grad(&self, pred: &Tensor, target: &Tensor, grad: &mut Tensor) -> f32;

    /// Loss name for logs.
    fn name(&self) -> &'static str;
}

/// Mean squared error over every element of the batch — the regression
/// loss behind the paper's multi-variate electric-field output.
pub struct Mse;

impl Loss for Mse {
    fn loss_and_grad(&self, pred: &Tensor, target: &Tensor, grad: &mut Tensor) -> f32 {
        assert_eq!(pred.shape(), target.shape(), "pred/target shape mismatch");
        assert_eq!(pred.shape(), grad.shape(), "grad shape mismatch");
        let n = pred.len() as f32;
        let mut acc = 0.0f64;
        for ((&p, &t), g) in pred.data().iter().zip(target.data()).zip(grad.data_mut()) {
            let d = p - t;
            acc += (d * d) as f64;
            *g = 2.0 * d / n;
        }
        (acc / n as f64) as f32
    }

    fn name(&self) -> &'static str {
        "mse"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_error_gives_zero_loss_and_grad() {
        let p = Tensor::new(vec![1.0, 2.0], &[1, 2]);
        let mut g = Tensor::zeros(&[1, 2]);
        let v = Mse.loss_and_grad(&p, &p.clone(), &mut g);
        assert_eq!(v, 0.0);
        assert!(g.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn known_value_and_gradient() {
        let p = Tensor::new(vec![1.0, 3.0], &[1, 2]);
        let t = Tensor::new(vec![0.0, 1.0], &[1, 2]);
        let mut g = Tensor::zeros(&[1, 2]);
        let v = Mse.loss_and_grad(&p, &t, &mut g);
        assert!((v - (1.0 + 4.0) / 2.0).abs() < 1e-6);
        assert!((g.data()[0] - 2.0 * 1.0 / 2.0).abs() < 1e-6);
        assert!((g.data()[1] - 2.0 * 2.0 / 2.0).abs() < 1e-6);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let p = Tensor::new(vec![0.3, -0.7, 1.1], &[1, 3]);
        let t = Tensor::new(vec![0.0, 0.5, 1.0], &[1, 3]);
        let mut g = Tensor::zeros(&[1, 3]);
        let base = Mse.loss_and_grad(&p, &t, &mut g);
        let eps = 1e-3;
        for i in 0..3 {
            let mut pp = p.clone();
            pp.data_mut()[i] += eps;
            let mut scratch = Tensor::zeros(&[1, 3]);
            let plus = Mse.loss_and_grad(&pp, &t, &mut scratch);
            let fd = (plus - base) / eps;
            assert!(
                (fd - g.data()[i]).abs() < 1e-2,
                "elem {i}: fd {fd} vs {}",
                g.data()[i]
            );
        }
    }
}

//! Time-sequence inputs for the DL field solver — the paper's §VII
//! observes that "phase space and electric field values at a certain time
//! step are very similar to the values in the previous and next time
//! steps" and conjectures that architectures which "encode time
//! sequences" would fit the problem better.
//!
//! This module tests the cheapest version of that idea: stack the last
//! `k` phase-space histograms as the network input (`k = 1` is exactly
//! the paper's method). The `ablation_temporal` experiment measures
//! whether the extra history improves field accuracy and in-loop
//! conservation.

use crate::normalize::NormStats;
use crate::phase_space::{bin_phase_space, BinningShape, PhaseGridSpec};
use dlpic_nn::network::Sequential;
use dlpic_nn::tensor::Tensor;
use dlpic_pic::grid::Grid1D;
use dlpic_pic::particles::Particles;
use dlpic_pic::simulation::{PicConfig, Simulation};
use dlpic_pic::solver::{FieldSolver, TraditionalSolver};

/// Harvested time-ordered samples of one traditional run: consecutive
/// (histogram, E-field) pairs, kept in step order so windows can be built.
#[derive(Debug, Clone, Default)]
pub struct TemporalTrace {
    /// Histogram of each step, concatenated (`step * cells ..`).
    pub histograms: Vec<f32>,
    /// E-field of each step, concatenated (`step * ncells ..`).
    pub efields: Vec<f32>,
    /// Bins per histogram.
    pub cells: usize,
    /// Grid cells per field.
    pub ncells: usize,
    /// Number of steps recorded.
    pub steps: usize,
}

/// Runs a traditional simulation and records every step's histogram and
/// field in order.
pub fn harvest_trace(cfg: PicConfig, spec: &PhaseGridSpec, binning: BinningShape) -> TemporalTrace {
    let grid = cfg.grid.clone();
    let n_steps = cfg.n_steps;
    let ncells = grid.ncells();
    let mut sim = Simulation::new(cfg, Box::new(TraditionalSolver::paper_default()));
    let mut trace = TemporalTrace {
        cells: spec.cells(),
        ncells,
        ..Default::default()
    };
    let mut hist = vec![0.0f32; spec.cells()];
    for _ in 0..n_steps {
        sim.step();
        bin_phase_space(sim.particles(), &grid, spec, binning, &mut hist);
        trace.histograms.extend_from_slice(&hist);
        trace.efields.extend(sim.efield().iter().map(|&v| v as f32));
        trace.steps += 1;
    }
    trace
}

/// Builds windowed training pairs from traces: the input of step `t` is
/// the concatenation `[h_{t-k+1} … h_t]` (oldest first), the target is
/// `E_t`. The first `k − 1` steps of each trace are skipped, so windows
/// never straddle two runs. Returns `(inputs, targets, n_samples)`.
///
/// # Panics
/// Panics for `window == 0` or traces with inconsistent geometry.
pub fn windowed_pairs(traces: &[TemporalTrace], window: usize) -> (Vec<f32>, Vec<f32>, usize) {
    assert!(window > 0, "window must be at least 1");
    assert!(!traces.is_empty(), "no traces");
    let cells = traces[0].cells;
    let ncells = traces[0].ncells;
    let mut inputs = Vec::new();
    let mut targets = Vec::new();
    let mut n = 0;
    for trace in traces {
        assert_eq!(trace.cells, cells, "inconsistent histogram geometry");
        assert_eq!(trace.ncells, ncells, "inconsistent field geometry");
        for t in (window - 1)..trace.steps {
            for s in (t + 1 - window)..=t {
                inputs.extend_from_slice(&trace.histograms[s * cells..(s + 1) * cells]);
            }
            targets.extend_from_slice(&trace.efields[t * ncells..(t + 1) * ncells]);
            n += 1;
        }
    }
    (inputs, targets, n)
}

/// A DL field solver that feeds the network the last `window` histograms
/// (ring-buffered across calls). With `window = 1` it behaves exactly
/// like [`crate::field_solver::DlFieldSolver`] with flat input.
pub struct TemporalDlSolver {
    net: Sequential,
    spec: PhaseGridSpec,
    binning: BinningShape,
    norm: NormStats,
    window: usize,
    /// Most recent histograms, oldest first; shorter than `window` until
    /// warmed up.
    history: Vec<Vec<f32>>,
    scratch: Vec<f32>,
}

impl TemporalDlSolver {
    /// Wraps a trained network expecting `window · spec.cells()` inputs.
    ///
    /// # Panics
    /// Panics for a zero window.
    pub fn new(
        net: Sequential,
        spec: PhaseGridSpec,
        binning: BinningShape,
        norm: NormStats,
        window: usize,
    ) -> Self {
        assert!(window > 0, "window must be at least 1");
        Self {
            net,
            spec,
            binning,
            norm,
            window,
            history: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// The window length.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Clears the ring buffer (e.g. between runs).
    pub fn reset(&mut self) {
        self.history.clear();
    }
}

impl FieldSolver for TemporalDlSolver {
    fn solve(&mut self, particles: &Particles, grid: &Grid1D, e: &mut [f64]) {
        let cells = self.spec.cells();
        let mut hist = vec![0.0f32; cells];
        bin_phase_space(particles, grid, &self.spec, self.binning, &mut hist);
        if self.history.len() == self.window {
            self.history.remove(0);
        }
        self.history.push(hist);

        // Until warmed up, pad by repeating the oldest available step —
        // the same convention a deployed solver must adopt at t = 0.
        self.scratch.clear();
        let missing = self.window - self.history.len();
        for _ in 0..missing {
            self.scratch.extend_from_slice(&self.history[0]);
        }
        for h in &self.history {
            self.scratch.extend_from_slice(h);
        }
        self.norm.apply(&mut self.scratch);

        let input = Tensor::new(self.scratch.clone(), &[1, self.window * cells]);
        let pred = self.net.predict(&input).into_data();
        assert_eq!(pred.len(), e.len(), "output width mismatch");
        for (dst, &src) in e.iter_mut().zip(&pred) {
            *dst = src as f64;
        }
    }

    fn name(&self) -> &'static str {
        "dl-temporal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ArchSpec;
    use dlpic_pic::init::TwoStreamInit;
    use dlpic_pic::shape::Shape;

    fn small_cfg(n_steps: usize, seed: u64) -> PicConfig {
        PicConfig {
            grid: Grid1D::paper(),
            init: Some(TwoStreamInit::quiet(0.2, 0.0, 2_000, 1e-3, seed)),
            dt: 0.2,
            n_steps,
            gather_shape: Shape::Cic,
            tracked_modes: vec![],
        }
    }

    #[test]
    fn trace_records_every_step() {
        let spec = PhaseGridSpec::smoke();
        let trace = harvest_trace(small_cfg(12, 1), &spec, BinningShape::Ngp);
        assert_eq!(trace.steps, 12);
        assert_eq!(trace.histograms.len(), 12 * spec.cells());
        assert_eq!(trace.efields.len(), 12 * 64);
    }

    #[test]
    fn window_one_reproduces_flat_samples() {
        let spec = PhaseGridSpec::smoke();
        let trace = harvest_trace(small_cfg(8, 2), &spec, BinningShape::Ngp);
        let (inputs, targets, n) = windowed_pairs(std::slice::from_ref(&trace), 1);
        assert_eq!(n, 8);
        assert_eq!(inputs, trace.histograms);
        assert_eq!(targets, trace.efields);
    }

    #[test]
    fn window_k_stacks_consecutive_steps() {
        let spec = PhaseGridSpec::smoke();
        let cells = spec.cells();
        let trace = harvest_trace(small_cfg(6, 3), &spec, BinningShape::Ngp);
        let (inputs, targets, n) = windowed_pairs(std::slice::from_ref(&trace), 3);
        assert_eq!(n, 4); // steps 2..=5
        assert_eq!(inputs.len(), 4 * 3 * cells);
        // First window = steps [0, 1, 2]; target = E_2.
        assert_eq!(&inputs[..cells], &trace.histograms[..cells]);
        assert_eq!(
            &inputs[2 * cells..3 * cells],
            &trace.histograms[2 * cells..3 * cells]
        );
        assert_eq!(&targets[..64], &trace.efields[2 * 64..3 * 64]);
    }

    #[test]
    fn windows_do_not_straddle_traces() {
        let spec = PhaseGridSpec::smoke();
        let t1 = harvest_trace(small_cfg(5, 4), &spec, BinningShape::Ngp);
        let t2 = harvest_trace(small_cfg(5, 5), &spec, BinningShape::Ngp);
        let (_, _, n) = windowed_pairs(&[t1, t2], 3);
        assert_eq!(n, 2 * 3); // (5 − 2) per trace
    }

    #[test]
    fn temporal_solver_runs_in_the_loop() {
        let spec = PhaseGridSpec::smoke();
        let window = 2;
        let arch = ArchSpec::Mlp {
            input: window * spec.cells(),
            hidden: vec![8],
            output: 64,
        };
        let solver = TemporalDlSolver::new(
            arch.build(0),
            spec,
            BinningShape::Ngp,
            NormStats::identity(),
            window,
        );
        let mut sim = Simulation::new(small_cfg(5, 6), Box::new(solver));
        sim.run();
        assert_eq!(sim.history().len(), 6);
        assert!(sim.efield().iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "window must be at least 1")]
    fn zero_window_rejected() {
        let spec = PhaseGridSpec::smoke();
        let arch = ArchSpec::Mlp {
            input: spec.cells(),
            hidden: vec![4],
            output: 64,
        };
        let _ = TemporalDlSolver::new(
            arch.build(0),
            spec,
            BinningShape::Ngp,
            NormStats::identity(),
            0,
        );
    }
}

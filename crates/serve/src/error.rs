//! The crate-wide error type: engine failures, I/O, and protocol-level
//! rejections funneled into one `Result` for the client library and the
//! binaries.

use dlpic_repro::engine::EngineError;

use crate::protocol::ProtoError;

/// Anything that can go wrong serving or consuming the service.
#[derive(Debug)]
pub enum ServeError {
    /// An engine-side failure (bad spec, checkpoint mismatch, …).
    Engine(EngineError),
    /// Socket or spool I/O.
    Io(std::io::Error),
    /// A structured protocol rejection — either produced locally while
    /// parsing a peer's line, or relayed from a server error response.
    Protocol(ProtoError),
    /// The server closed the connection mid-exchange.
    Disconnected,
    /// A connect or read deadline expired (the client's configured
    /// timeout) — distinguishable from other I/O so callers can retry
    /// with backoff instead of failing hard.
    Timeout,
}

impl ServeError {
    /// The server's retry advice, when this is an overload rejection
    /// (`overloaded`, `quota-exceeded`, `circuit-open`) that carried
    /// `retry_after_ms`. `None` for every other failure — those either
    /// retry on the transport schedule ([`Backoff`]) or not at all.
    ///
    /// [`Backoff`]: crate::client::Backoff
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            Self::Protocol(e) => e.retry_after_ms,
            _ => None,
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Engine(e) => write!(f, "engine: {e}"),
            Self::Io(e) => write!(f, "i/o: {e}"),
            Self::Protocol(e) => write!(f, "protocol: {e}"),
            Self::Disconnected => write!(f, "server closed the connection"),
            Self::Timeout => write!(f, "timed out waiting for the server"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Engine(e) => Some(e),
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        Self::Engine(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        // A read on a socket with a deadline set reports the expiry as
        // WouldBlock (unix) or TimedOut (windows); both mean "timeout".
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => Self::Timeout,
            _ => Self::Io(e),
        }
    }
}

impl From<ProtoError> for ServeError {
    fn from(e: ProtoError) -> Self {
        Self::Protocol(e)
    }
}

//! **§VII distributed-memory discussion** — the paper argues the DL field
//! solver "does not need communication when running … on distributed
//! memory systems as all neural networks can be loaded on each process",
//! unlike the traditional method's global linear system. This binary puts
//! numbers on that claim: it runs the domain-decomposed PIC
//! (`dlpic-ddecomp`) under both field-solve strategies at 1–8 ranks and
//! tabulates the *measured* per-step communication volume by traffic
//! class, plus wall-time per step.
//!
//! What the table shows (and the paper's prose predicts):
//!
//! * **gather/scatter** (traditional): field-solve bytes grow linearly
//!   with both grid size and rank count; deposition halos add a small
//!   constant per rank.
//! * **replicated-DL**: the only field-solve traffic is the fixed-size
//!   histogram all-reduce — independent of the particle count and the
//!   field-grid size; there is *no* E-field exchange at all.
//! * **migration** is common to both and dominated by physics
//!   (beam speed), not by the solver choice.
//!
//! Run: `cargo run -p dlpic-bench --release --bin perf_dist [--scale ...]`

use dlpic_analytics::series::Table;
use dlpic_bench::{get_or_train_mlp, out_dir, Cli};
use dlpic_core::builder::ArchSpec;
use dlpic_core::field_solver::DlFieldSolver;
use dlpic_core::normalize::NormStats;
use dlpic_core::phase_space::BinningShape;
use dlpic_core::presets::Scale;
use dlpic_ddecomp::sim::{DistConfig, DistSimulation};
use dlpic_ddecomp::strategy::{DistFieldStrategy, GatherScatter, ReplicatedDl};
use dlpic_pic::grid::Grid1D;
use dlpic_pic::init::TwoStreamInit;
use dlpic_pic::shape::Shape;
use std::time::Instant;

fn sizing(scale: Scale) -> (usize, usize) {
    // (particles, steps)
    match scale {
        Scale::Smoke => (8_000, 20),
        Scale::Scaled => (64_000, 100),
        Scale::Paper => (64_000, 200),
    }
}

fn config(n_ranks: usize, n_part: usize, n_steps: usize) -> DistConfig {
    config_on(Grid1D::paper(), n_ranks, n_part, n_steps)
}

fn config_on(grid: Grid1D, n_ranks: usize, n_part: usize, n_steps: usize) -> DistConfig {
    DistConfig {
        grid,
        init: TwoStreamInit::quiet(0.2, 0.025, n_part, 1e-3, 11),
        dt: 0.2,
        n_steps,
        gather_shape: Shape::Cic,
        n_ranks,
        tracked_modes: vec![1],
    }
}

struct RunResult {
    strategy: &'static str,
    n_ranks: usize,
    field_bytes_per_step: f64,
    halo_bytes_per_step: f64,
    migrate_bytes_per_step: f64,
    total_bytes_per_step: f64,
    ms_per_step: f64,
}

fn run(
    n_ranks: usize,
    n_part: usize,
    n_steps: usize,
    make: impl Fn() -> Box<dyn DistFieldStrategy>,
) -> RunResult {
    let mut sim = DistSimulation::new(config(n_ranks, n_part, n_steps), make());
    let start = Instant::now();
    sim.run();
    let elapsed = start.elapsed().as_secs_f64();
    let phases = sim.comm_phases();
    let by = |names: &[&str]| -> f64 {
        phases
            .iter()
            .filter(|(p, _)| names.contains(p))
            .map(|(_, s)| s.bytes)
            .sum::<u64>() as f64
            / (n_steps + 1) as f64 // +1: the initial field solve
    };
    RunResult {
        strategy: sim.strategy_name(),
        n_ranks,
        field_bytes_per_step: by(&["rho-gather", "e-scatter", "hist-reduce", "hist-bcast"]),
        halo_bytes_per_step: by(&["deposit-halo"]),
        migrate_bytes_per_step: by(&["migration"]),
        total_bytes_per_step: sim.comm_stats().bytes as f64 / (n_steps + 1) as f64,
        ms_per_step: elapsed * 1e3 / n_steps as f64,
    }
}

fn main() {
    let cli = Cli::parse();
    let (n_part, n_steps) = sizing(cli.scale);
    println!(
        "== §VII distributed-memory: communication per step [{} scale: {n_part} particles, {n_steps} steps] ==\n",
        cli.scale.name()
    );

    // The DL strategy runs the real trained model of the 1-D experiments
    // so its histogram size matches the published pipeline.
    let bundle = get_or_train_mlp(cli.scale, cli.retrain, true);
    let hist_cells = cli.scale.phase_spec().cells();
    eprintln!("model loaded ({hist_cells}-bin histogram all-reduce)\n");

    let mut results = Vec::new();
    for n_ranks in [1usize, 2, 4, 8] {
        eprintln!("ranks = {n_ranks}: gather-scatter...");
        results.push(run(n_ranks, n_part, n_steps, || {
            Box::new(GatherScatter::new(Shape::Cic, 1.0))
        }));
        eprintln!("ranks = {n_ranks}: replicated-dl...");
        let bundle = bundle.clone();
        results.push(run(n_ranks, n_part, n_steps, move || {
            Box::new(ReplicatedDl::new(
                bundle.clone().into_solver().expect("bundle -> solver"),
            ))
        }));
    }

    let mut table = Table::new(&[
        "strategy",
        "ranks",
        "field B/step",
        "halo B/step",
        "migrate B/step",
        "total B/step",
        "ms/step",
    ]);
    for r in &results {
        table.row(&[
            r.strategy.into(),
            r.n_ranks.to_string(),
            format!("{:.0}", r.field_bytes_per_step),
            format!("{:.0}", r.halo_bytes_per_step),
            format!("{:.0}", r.migrate_bytes_per_step),
            format!("{:.0}", r.total_bytes_per_step),
            format!("{:.2}", r.ms_per_step),
        ]);
    }
    println!("{}", table.render());

    println!("notes:");
    println!(
        "  - replicated-dl field traffic = 2·(R−1)·{hist_cells} words \
         (histogram reduce + broadcast), zero E-field exchange;"
    );
    println!(
        "  - gather-scatter field traffic = (R−1)·ncells + R·(ncells/R + 4) \
         words and keeps growing with the grid;"
    );
    println!(
        "  - ms/step times R ranks serially in one process; divide by R \
         for the per-rank compute a real machine would see."
    );

    let path = out_dir().join(format!("perf-dist-{}.csv", cli.scale.name()));
    let csv = table.to_csv();
    std::fs::write(&path, csv).expect("write csv");
    println!("\ntable written to {}", path.display());

    // Second sweep: where the §VII claim pays off. At the paper's 64-cell
    // 1-D grid the fixed histogram all-reduce can *exceed* the field
    // exchange; the DL advantage is asymptotic — the grid grows with the
    // physics while the histogram does not. Sweep the grid at fixed
    // ranks until the crossover shows.
    println!("\n== field-solve traffic vs grid size (4 ranks) ==\n");
    let mut sweep = Table::new(&[
        "ncells",
        "gather-scatter field B/step",
        "replicated-dl field B/step",
        "winner",
    ]);
    let sweep_steps = 10usize;
    for ncells in [64usize, 128, 256, 512, 1024, 2048, 4096, 8192] {
        let field_bytes = |dl: bool| -> f64 {
            let cfg = config_on(Grid1D::new(ncells, 2.0532), 4, 8_000, sweep_steps);
            let strat: Box<dyn DistFieldStrategy> = if dl {
                // Width-matched network per grid size (untrained is fine:
                // the traffic does not depend on the weights, only on the
                // histogram geometry, which stays that of the real model).
                let spec = cli.scale.phase_spec();
                let arch = ArchSpec::Mlp {
                    input: spec.cells(),
                    hidden: vec![16],
                    output: ncells,
                };
                Box::new(ReplicatedDl::new(DlFieldSolver::new(
                    arch.build(0),
                    spec,
                    BinningShape::Ngp,
                    NormStats::identity(),
                    arch.input_kind(),
                    "dl-mlp",
                )))
            } else {
                Box::new(GatherScatter::new(Shape::Cic, 1.0))
            };
            let mut sim = DistSimulation::new(cfg, strat);
            sim.run();
            sim.comm_phases()
                .iter()
                .filter(|(p, _)| {
                    ["rho-gather", "e-scatter", "hist-reduce", "hist-bcast"].contains(p)
                })
                .map(|(_, s)| s.bytes)
                .sum::<u64>() as f64
                / (sweep_steps + 1) as f64
        };
        let gs = field_bytes(false);
        let dl = field_bytes(true);
        sweep.row(&[
            ncells.to_string(),
            format!("{gs:.0}"),
            format!("{dl:.0}"),
            if dl < gs {
                "replicated-dl"
            } else {
                "gather-scatter"
            }
            .into(),
        ]);
    }
    println!("{}", sweep.render());
    let sweep_path = out_dir().join(format!("perf-dist-sweep-{}.csv", cli.scale.name()));
    std::fs::write(&sweep_path, sweep.to_csv()).expect("write csv");
    println!("sweep written to {}", sweep_path.display());
}

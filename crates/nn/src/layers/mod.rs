//! Layer implementations.

pub mod conv2d;
pub mod dense;
pub mod flatten;
pub mod maxpool2;
pub mod relu;
pub mod residual;

pub use conv2d::Conv2d;
pub use dense::Dense;
pub use flatten::Flatten;
pub use maxpool2::MaxPool2;
pub use relu::Relu;
pub use residual::ResidualDense;

//! [`Backend`]: which solver runs a scenario. Any scenario×backend pairing
//! that passes [`Backend::supports`] is one enum value away — the paper's
//! drop-in-replacement design made into an API.

use super::error::EngineError;
use super::spec::{Dim, ScenarioSpec};

/// The solver families the engine can drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Traditional 1-D PIC: deposit → Poisson → gradient (the paper's
    /// baseline).
    Traditional1D,
    /// DL-based 1-D PIC: phase-space binning → network inference (the
    /// paper's contribution).
    Dl1D,
    /// Traditional 2-D PIC (the §VII extension).
    Traditional2D,
    /// DL-based 2-D PIC: density binning → network inference.
    Dl2D,
    /// Continuum Vlasov–Poisson (noise-free kinetic reference).
    Vlasov,
    /// Domain-decomposed 1-D PIC with exact communication accounting.
    Ddecomp {
        /// Number of ranks; must divide the cell count.
        n_ranks: usize,
    },
}

impl Backend {
    /// Every backend family, with defaults for parameterized variants —
    /// the iteration order used by [`compatible_backends`].
    pub fn all() -> Vec<Backend> {
        vec![
            Backend::Traditional1D,
            Backend::Dl1D,
            Backend::Traditional2D,
            Backend::Dl2D,
            Backend::Vlasov,
            Backend::Ddecomp { n_ranks: 4 },
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::Traditional1D => "traditional-1d",
            Backend::Dl1D => "dl-1d",
            Backend::Traditional2D => "traditional-2d",
            Backend::Dl2D => "dl-2d",
            Backend::Vlasov => "vlasov",
            Backend::Ddecomp { .. } => "ddecomp",
        }
    }

    /// Parses a display spelling back into a backend — the inverse of
    /// [`std::fmt::Display`] (`"traditional-1d"`, `"vlasov"`,
    /// `"ddecomp[4]"`; the bare `"ddecomp"` means the default 4 ranks).
    /// Session checkpoints persist backends in this form.
    pub fn parse(text: &str) -> Option<Backend> {
        match text {
            "traditional-1d" => Some(Backend::Traditional1D),
            "dl-1d" => Some(Backend::Dl1D),
            "traditional-2d" => Some(Backend::Traditional2D),
            "dl-2d" => Some(Backend::Dl2D),
            "vlasov" => Some(Backend::Vlasov),
            "ddecomp" => Some(Backend::Ddecomp { n_ranks: 4 }),
            other => {
                let inner = other.strip_prefix("ddecomp[")?.strip_suffix(']')?;
                let n_ranks: usize = inner.parse().ok()?;
                (n_ranks > 0).then_some(Backend::Ddecomp { n_ranks })
            }
        }
    }

    /// True for the neural-network-backed field solvers.
    pub fn is_dl(&self) -> bool {
        matches!(self, Backend::Dl1D | Backend::Dl2D)
    }

    /// True for backends whose field solve conserves momentum to rounding
    /// noise (matched-shape deposit/gather). DL backends trade exact
    /// momentum conservation for noise-robustness, as the paper reports.
    pub fn conserves_momentum(&self) -> bool {
        !self.is_dl()
    }

    /// The dimensionality this backend simulates.
    pub fn dim(&self) -> Dim {
        match self {
            Backend::Traditional2D | Backend::Dl2D => Dim::TwoD,
            _ => Dim::OneD,
        }
    }

    /// Checks that `spec` can run on this backend.
    pub fn supports(&self, spec: &ScenarioSpec) -> Result<(), EngineError> {
        let incompatible = |why: String| {
            Err(EngineError::Incompatible {
                scenario: spec.name.clone(),
                backend: self.name(),
                why,
            })
        };
        if spec.dim() != self.dim() {
            return incompatible(format!(
                "{} scenario on a {} backend",
                spec.dim(),
                self.dim()
            ));
        }
        match self {
            Backend::Traditional1D | Backend::Dl1D => Ok(()),
            Backend::Traditional2D | Backend::Dl2D | Backend::Vlasov => {
                if spec.species.as_two_stream().is_none() {
                    return incompatible(format!(
                        "species {:?} is not expressible as a symmetric two-beam load",
                        spec.species
                    ));
                }
                if matches!(self, Backend::Vlasov) {
                    // The continuum solver needs a smooth f: a thermal
                    // spread of at least a few velocity cells. Rejecting
                    // here (instead of silently clamping) keeps "same spec,
                    // same physics" true across backends.
                    let (_, vth) = spec.species.as_two_stream().expect("checked above");
                    if vth < super::session::VLASOV_MIN_VTH {
                        return incompatible(format!(
                            "the continuum solver needs vth >= {} for a smooth f (got {vth})",
                            super::session::VLASOV_MIN_VTH
                        ));
                    }
                    // VlasovSolver seeds its density perturbation on grid
                    // mode 1 only; a quiet loading asking for another mode
                    // would run different physics than the PIC backends.
                    if let crate::engine::LoadingSpec::Quiet { mode, .. } = spec.loading {
                        if mode > 1 {
                            return incompatible(format!(
                                "the continuum solver seeds mode 1 only (quiet loading asked for mode {mode})"
                            ));
                        }
                    }
                }
                Ok(())
            }
            Backend::Ddecomp { n_ranks } => {
                if spec.species.as_two_stream().is_none() {
                    return incompatible(
                        "the distributed driver loads via TwoStreamInit".to_string(),
                    );
                }
                let ncells = spec.domain.cells();
                if *n_ranks == 0 || !ncells.is_multiple_of(*n_ranks) {
                    return incompatible(format!("{n_ranks} ranks do not divide {ncells} cells"));
                }
                let halo = crate::ddecomp::halo::HALO;
                if ncells / n_ranks < 2 * halo {
                    return incompatible(format!(
                        "slabs of {} cells are narrower than 2×HALO = {}",
                        ncells / n_ranks,
                        2 * halo
                    ));
                }
                Ok(())
            }
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::Ddecomp { n_ranks } => write!(f, "ddecomp[{n_ranks}]"),
            other => f.write_str(other.name()),
        }
    }
}

/// All backends (from [`Backend::all`]) this scenario can run on.
pub fn compatible_backends(spec: &ScenarioSpec) -> Vec<Backend> {
    Backend::all()
        .into_iter()
        .filter(|b| b.supports(spec).is_ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::presets::Scale;
    use crate::engine::registry;
    use crate::engine::spec::{DomainSpec, LoadingSpec, SpeciesSpec};

    fn spec_1d() -> ScenarioSpec {
        registry::scenario("two_stream", Scale::Smoke).unwrap()
    }

    #[test]
    fn dimensionality_is_enforced() {
        let spec = spec_1d();
        assert!(Backend::Traditional1D.supports(&spec).is_ok());
        assert!(Backend::Traditional2D.supports(&spec).is_err());
        let spec2d = registry::scenario("two_stream_2d", Scale::Smoke).unwrap();
        assert!(Backend::Traditional2D.supports(&spec2d).is_ok());
        assert!(Backend::Vlasov.supports(&spec2d).is_err());
    }

    #[test]
    fn bump_on_tail_runs_only_on_1d_pic() {
        let spec = registry::scenario("bump_on_tail", Scale::Smoke).unwrap();
        let names: Vec<&str> = compatible_backends(&spec)
            .iter()
            .map(|b| b.name())
            .collect();
        assert_eq!(names, vec!["traditional-1d", "dl-1d"]);
    }

    #[test]
    fn ddecomp_rank_constraints() {
        let mut spec = spec_1d();
        assert!(Backend::Ddecomp { n_ranks: 4 }.supports(&spec).is_ok());
        assert!(Backend::Ddecomp { n_ranks: 5 }.supports(&spec).is_err());
        assert!(Backend::Ddecomp { n_ranks: 0 }.supports(&spec).is_err());
        // Slabs narrower than the halo are rejected.
        spec.domain = DomainSpec::OneD {
            ncells: 8,
            length: 2.0,
        };
        assert!(Backend::Ddecomp { n_ranks: 4 }.supports(&spec).is_err());
    }

    #[test]
    fn vlasov_needs_thermal_spread() {
        let spec = registry::scenario("cold_beam", Scale::Smoke).unwrap();
        assert!(Backend::Vlasov.supports(&spec).is_err());
        let mut warm = spec;
        warm.species = SpeciesSpec::TwoStream { v0: 0.4, vth: 0.02 };
        assert!(Backend::Vlasov.supports(&warm).is_ok());
        // Quiet loading maps to the Vlasov perturbation seed.
        warm.loading = LoadingSpec::Quiet {
            mode: 1,
            amplitude: 1e-3,
        };
        assert!(Backend::Vlasov.supports(&warm).is_ok());
        // Under-resolved thermal spreads are rejected, not silently
        // clamped…
        warm.species = SpeciesSpec::TwoStream {
            v0: 0.4,
            vth: 0.005,
        };
        assert!(Backend::Vlasov.supports(&warm).is_err());
        // …and so are quiet seeds on modes the continuum solver cannot
        // excite.
        warm.species = SpeciesSpec::TwoStream { v0: 0.4, vth: 0.02 };
        warm.loading = LoadingSpec::Quiet {
            mode: 2,
            amplitude: 1e-3,
        };
        assert!(Backend::Vlasov.supports(&warm).is_err());
    }

    #[test]
    fn display_names() {
        assert_eq!(Backend::Dl1D.to_string(), "dl-1d");
        assert_eq!(Backend::Ddecomp { n_ranks: 8 }.to_string(), "ddecomp[8]");
    }

    #[test]
    fn parse_inverts_display() {
        for backend in Backend::all() {
            assert_eq!(Backend::parse(&backend.to_string()), Some(backend));
        }
        assert_eq!(
            Backend::parse("ddecomp[16]"),
            Some(Backend::Ddecomp { n_ranks: 16 })
        );
        for bad in ["", "dl", "ddecomp[]", "ddecomp[0]", "ddecomp[x]"] {
            assert_eq!(Backend::parse(bad), None, "accepted {bad:?}");
        }
    }
}

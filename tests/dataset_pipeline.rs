//! Integration test: the dataset pipeline end to end — generation from
//! PIC runs, normalization, shuffle/split, storage, and conversion to
//! trainable tensors (paper §IV.A.1).

use dlpic_repro::core::builder::InputKind;
use dlpic_repro::core::phase_space::{BinningShape, PhaseGridSpec};
use dlpic_repro::core::Scale;
use dlpic_repro::dataset::generator::{generate, GeneratorConfig};
use dlpic_repro::dataset::spec::SweepSpec;
use dlpic_repro::dataset::split::{shuffle_split, SplitSizes};
use dlpic_repro::dataset::{stats, store};

fn smoke_dataset() -> dlpic_repro::dataset::PhaseDataset {
    let mut cfg = GeneratorConfig::new(
        SweepSpec::training_for(Scale::Smoke),
        PhaseGridSpec::smoke(),
    );
    cfg.ppc = 50;
    generate(&cfg)
}

#[test]
fn generated_dataset_is_clean_and_complete() {
    let ds = smoke_dataset();
    let sweep = SweepSpec::training_for(Scale::Smoke);
    assert_eq!(ds.len(), sweep.total_samples());

    // The paper's inspection step: no numerical artifacts.
    let s = stats::compute(&ds);
    assert!(s.all_finite, "non-finite values in dataset");
    assert!(s.input_min >= 0.0, "negative histogram count");
    assert!(
        s.max_abs_field > 0.0 && s.max_abs_field < 1.0,
        "field scale implausible: {}",
        s.max_abs_field
    );

    // Histogram mass = particle count for every sample.
    let expected_mass = (50 * 64) as f32;
    for i in 0..ds.len() {
        let mass: f32 = ds.input_row(i).iter().sum();
        assert!((mass - expected_mass).abs() < 0.5, "sample {i} mass {mass}");
    }
}

#[test]
fn split_preserves_pairs_and_partitions() {
    let ds = smoke_dataset();
    let sizes = SplitSizes::paper_proportions(ds.len());
    let (train, val, test) = shuffle_split(&ds, sizes, 42);
    assert_eq!(train.len() + val.len() + test.len(), ds.len());
    assert_eq!(val.len(), (ds.len() / 40).max(1));

    // Determinism.
    let (train2, ..) = shuffle_split(&ds, sizes, 42);
    assert_eq!(train.inputs(), train2.inputs());
    assert_eq!(train.targets(), train2.targets());
}

#[test]
fn normalization_from_train_split_bounds_inputs() {
    let ds = smoke_dataset();
    let sizes = SplitSizes::paper_proportions(ds.len());
    let (train, _, test) = shuffle_split(&ds, sizes, 1);
    let norm = train.input_norm_stats();

    let train_nn = train.to_nn_dataset(&norm, InputKind::Flat);
    assert!(train_nn.x.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    // Test inputs may exceed [0,1] slightly (their min/max was not used),
    // but must stay near it for a same-distribution split.
    let test_nn = test.to_nn_dataset(&norm, InputKind::Flat);
    assert!(test_nn.x.data().iter().all(|&v| (-0.5..=1.5).contains(&v)));
}

#[test]
fn image_tensors_match_phase_grid_geometry() {
    let ds = smoke_dataset();
    let norm = ds.input_norm_stats();
    let img = ds.to_nn_dataset(&norm, InputKind::Image);
    assert_eq!(img.x.shape(), &[ds.len(), 1, 16, 16]);
    assert_eq!(img.y.shape(), &[ds.len(), 64]);
    let flat = ds.to_nn_dataset(&norm, InputKind::Flat);
    // Same data, different shape.
    assert_eq!(img.x.data(), flat.x.data());
}

#[test]
fn store_round_trip_through_filesystem() {
    let ds = smoke_dataset();
    let dir = std::env::temp_dir().join(format!("dlpic-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pipeline.dlds");
    store::save(&ds, &path).expect("save");
    let loaded = store::load(&path).expect("load");
    assert_eq!(loaded.len(), ds.len());
    assert_eq!(loaded.inputs(), ds.inputs());
    assert_eq!(loaded.targets(), ds.targets());
    assert_eq!(loaded.spec, ds.spec);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn test_set_ii_sweep_is_disjoint_and_generates() {
    let mut cfg = GeneratorConfig::new(
        SweepSpec::test_set_ii_for(Scale::Smoke),
        PhaseGridSpec::smoke(),
    );
    cfg.ppc = 50;
    cfg.binning = BinningShape::Cic;
    let ds = generate(&cfg);
    assert!(!ds.is_empty());
    assert_eq!(ds.binning, BinningShape::Cic);
}

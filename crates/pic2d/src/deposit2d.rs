//! Charge deposition in two dimensions.
//!
//! Two-dimensional shape functions factorize into products of the 1-D
//! assignment functions, so the deposition weight of particle `p` on node
//! `(i, j)` is `Wx_i(x_p/dx) · Wy_j(y_p/dy)` with the [`Shape`] hierarchy
//! (NGP/CIC/TSC) of the 1-D crate reused per axis.

use crate::grid2d::Grid2D;
use crate::particles2d::Particles2D;
use dlpic_pic::deposit::{scatter_reduce_parallel, DepositScratch, PAR_THRESHOLD};
use dlpic_pic::shape::Shape;

/// Deposits macro-particle charge onto the node array `rho`
/// (units: charge / area — node density). Allocates fresh partial grids
/// when the parallel path fires; stepping loops use
/// [`deposit_charge_with_scratch`] to reuse a caller-owned scratch.
///
/// # Panics
/// Panics if `rho` length differs from the grid node count.
pub fn deposit_charge(particles: &Particles2D, grid: &Grid2D, shape: Shape, rho: &mut [f64]) {
    let mut scratch = DepositScratch::new();
    deposit_charge_with_scratch(particles, grid, shape, rho, &mut scratch);
}

/// [`deposit_charge`] with a caller-owned scratch: the parallel path
/// scatters into the scratch's reused per-worker partial grids and
/// reduces them into `rho`, performing no allocation once the scratch is
/// warm. The sequential path ignores the scratch entirely.
///
/// # Panics
/// Panics if `rho` length differs from the grid node count.
pub fn deposit_charge_with_scratch(
    particles: &Particles2D,
    grid: &Grid2D,
    shape: Shape,
    rho: &mut [f64],
    scratch: &mut DepositScratch,
) {
    assert_eq!(rho.len(), grid.nodes(), "rho length mismatch");
    let q_over_area = particles.charge() / grid.cell_area();
    if particles.len() >= PAR_THRESHOLD && rayon::current_num_threads() > 1 {
        scatter_reduce_parallel(particles.len(), rho, scratch, |range, partial| {
            scatter_chunk(
                &particles.x[range.clone()],
                &particles.y[range],
                grid,
                shape,
                q_over_area,
                partial,
            )
        });
    } else {
        scatter_chunk(&particles.x, &particles.y, grid, shape, q_over_area, rho);
    }
}

/// Sequential scatter of one chunk of positions. Node indices wrap by
/// compare-and-fold (`wrap_cell`) — the same values `wrap_ix`/`wrap_iy`
/// produce, without the per-node integer division.
fn scatter_chunk(
    xs: &[f64],
    ys: &[f64],
    grid: &Grid2D,
    shape: Shape,
    q_over_area: f64,
    rho: &mut [f64],
) {
    use dlpic_pic::fused::wrap_cell;
    let inv_dx = 1.0 / grid.dx();
    let inv_dy = 1.0 / grid.dy();
    let nx = grid.nx();
    let nxi = nx as i64;
    let nyi = grid.ny() as i64;
    let support = shape.support();

    for (&x, &y) in xs.iter().zip(ys) {
        let ax = shape.assign(x * inv_dx);
        let ay = shape.assign(y * inv_dy);
        for jy in 0..support {
            let wy = ay.w[jy];
            if wy == 0.0 {
                continue;
            }
            let row = wrap_cell(ay.leftmost + jy as i64, nyi) * nx;
            for jx in 0..support {
                let wx = ax.w[jx];
                if wx == 0.0 {
                    continue;
                }
                let ix = wrap_cell(ax.leftmost + jx as i64, nxi);
                rho[row + ix] += q_over_area * wx * wy;
            }
        }
    }
}

/// Adds the uniform neutralizing ion background (+1 in the paper's
/// normalized units) to every node.
pub fn add_uniform_background(rho: &mut [f64], background: f64) {
    for r in rho.iter_mut() {
        *r += background;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn single_particle(x: f64, y: f64, q: f64) -> Particles2D {
        Particles2D::new(vec![x], vec![y], vec![0.0], vec![0.0], q, 1.0)
    }

    #[test]
    fn particle_on_node_deposits_all_charge_there_cic() {
        let grid = Grid2D::new(8, 8, 2.0, 2.0);
        let mut rho = grid.zeros();
        let p = single_particle(2.0 * grid.dx(), 3.0 * grid.dy(), -1.0);
        deposit_charge(&p, &grid, Shape::Cic, &mut rho);
        let expected = -1.0 / grid.cell_area();
        assert!((rho[grid.index(2, 3)] - expected).abs() < 1e-12);
        let total: f64 = rho.iter().sum();
        assert!((total * grid.cell_area() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn cell_center_cic_splits_four_ways() {
        let grid = Grid2D::new(8, 8, 2.0, 2.0);
        let mut rho = grid.zeros();
        let p = single_particle(1.5 * grid.dx(), 2.5 * grid.dy(), -1.0);
        deposit_charge(&p, &grid, Shape::Cic, &mut rho);
        let quarter = -0.25 / grid.cell_area();
        for (ix, iy) in [(1, 2), (2, 2), (1, 3), (2, 3)] {
            assert!((rho[grid.index(ix, iy)] - quarter).abs() < 1e-12);
        }
    }

    #[test]
    fn deposition_wraps_at_corners() {
        let grid = Grid2D::new(8, 8, 2.0, 2.0);
        let mut rho = grid.zeros();
        // Just inside the far corner: CIC support wraps in both axes.
        let eps = 0.25;
        let p = single_particle(
            grid.lx() - eps * grid.dx(),
            grid.ly() - eps * grid.dy(),
            -1.0,
        );
        deposit_charge(&p, &grid, Shape::Cic, &mut rho);
        // The particle sits eps·dx short of the wrapped node in each axis,
        // so CIC puts weight (1−eps)² there.
        let expect = -(1.0 - eps) * (1.0 - eps) / grid.cell_area();
        assert!((rho[grid.index(0, 0)] - expect).abs() < 1e-12);
        let total: f64 = rho.iter().sum::<f64>() * grid.cell_area();
        assert!((total + 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_lattice_with_background_is_neutral() {
        let grid = Grid2D::new(8, 8, 2.0, 2.0);
        // 4 particles per cell on a regular sub-lattice.
        let per_axis = 16;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for j in 0..per_axis {
            for i in 0..per_axis {
                xs.push((i as f64 + 0.5) / per_axis as f64 * grid.lx());
                ys.push((j as f64 + 0.5) / per_axis as f64 * grid.ly());
            }
        }
        let n = xs.len();
        let p = Particles2D::electrons_normalized(xs, ys, vec![0.0; n], vec![0.0; n], grid.area());
        let mut rho = grid.zeros();
        deposit_charge(&p, &grid, Shape::Cic, &mut rho);
        add_uniform_background(&mut rho, 1.0);
        for (i, r) in rho.iter().enumerate() {
            assert!(r.abs() < 1e-12, "node {i}: residual {r}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn total_charge_conserved_all_shapes(
            xs in proptest::collection::vec(0.0f64..2.0, 1..40),
            ys in proptest::collection::vec(0.0f64..2.0, 1..40),
        ) {
            let n = xs.len().min(ys.len());
            let xs = xs[..n].to_vec();
            let ys = ys[..n].to_vec();
            let grid = Grid2D::new(8, 16, 2.0, 2.0);
            let p = Particles2D::electrons_normalized(
                xs, ys, vec![0.0; n], vec![0.0; n], grid.area());
            for shape in [Shape::Ngp, Shape::Cic, Shape::Tsc] {
                let mut rho = grid.zeros();
                deposit_charge(&p, &grid, shape, &mut rho);
                let total: f64 = rho.iter().sum::<f64>() * grid.cell_area();
                prop_assert!((total - p.total_charge()).abs() < 1e-9,
                    "{shape:?}: deposited {total} vs {}", p.total_charge());
            }
        }

        #[test]
        fn deposition_never_negative_for_positive_charge(
            x in 0.0f64..2.0, y in 0.0f64..2.0,
        ) {
            let grid = Grid2D::new(8, 8, 2.0, 2.0);
            let p = single_particle(x, y, 1.0);
            for shape in [Shape::Ngp, Shape::Cic, Shape::Tsc] {
                let mut rho = grid.zeros();
                deposit_charge(&p, &grid, shape, &mut rho);
                for (i, r) in rho.iter().enumerate() {
                    prop_assert!(*r >= -1e-12, "{shape:?} node {i}: {r}");
                }
            }
        }
    }
}

//! Fixture: every emission tagged with a `PHASE_*` constant, including
//! one with nested call arguments around it.

pub const PHASE_HALO_LEFT: &str = "halo-left";
pub const PHASE_RHO_GATHER: &str = "rho-gather";

pub fn exchange(fabric: &mut Fabric, rank: usize, buf: &[f64]) {
    fabric.send(rank, 0, PHASE_HALO_LEFT, buf.to_vec());
    fabric.send(peer(rank, 1), 0, PHASE_RHO_GATHER, buf.to_vec());
}

fn peer(rank: usize, offset: usize) -> usize {
    rank + offset
}

pub struct Fabric;

impl Fabric {
    pub fn send(&mut self, _to: usize, _from: usize, _phase: &str, _payload: Vec<f64>) {}
}

//! Fixture: timing threaded in from the caller (who may read the clock —
//! it sits outside the engine scope), plus an annotated diagnostics-only
//! read. Both pass.

use std::time::Instant;

pub struct Stepper {
    started: Instant,
}

impl Stepper {
    /// The caller reads the clock; the engine only stores the value.
    pub fn new(started: Instant) -> Self {
        Self { started }
    }

    pub fn elapsed_seconds(&self) -> f64 {
        // analyze:allow(no-wallclock-in-engine): feeds only a human-facing diagnostic, never simulation state
        let now = Instant::now();
        now.duration_since(self.started).as_secs_f64()
    }
}

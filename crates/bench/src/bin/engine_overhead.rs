//! Measures the engine facade's overhead against driving the solver
//! crates directly, and records the baseline to `BENCH_engine.json`.
//!
//! The facade adds per-step work of one `Sample` allocation and observer
//! dispatch on top of `Simulation::step` — this binary proves that is
//! noise (<1%) at physics-relevant particle counts, in 1-D and 2-D.
//!
//! Run: `cargo run -p dlpic-bench --release --bin engine_overhead`

use dlpic_pic::init::TwoStreamInit;
use dlpic_pic::simulation::{PicConfig, Simulation};
use dlpic_pic::solver::TraditionalSolver;
use dlpic_pic::{Grid1D, Shape};
use dlpic_pic2d::init2d::TwoStream2DInit;
use dlpic_pic2d::simulation2d::Pic2DConfig;
use dlpic_pic2d::{Grid2D, Simulation2D, TraditionalSolver2D};
use dlpic_repro::core::Scale;
use dlpic_repro::engine::{self, Backend, LoadingSpec};
use std::time::Instant;

const REPS: usize = 7;
const STEPS_1D: usize = 100;
const PPC_1D: usize = 300;
const STEPS_2D: usize = 40;
const PPC_2D: usize = 64;

/// Median seconds of `REPS` timed calls.
fn median_secs(mut run: impl FnMut()) -> f64 {
    // One warm-up.
    run();
    let mut times: Vec<f64> = (0..REPS)
        .map(|_| {
            let t0 = Instant::now();
            run();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

fn spec_1d() -> engine::ScenarioSpec {
    let mut spec = engine::scenario("two_stream", Scale::Smoke).expect("registry");
    spec.ppc = PPC_1D;
    spec.n_steps = STEPS_1D;
    spec.seed = 9;
    spec
}

fn spec_2d() -> engine::ScenarioSpec {
    let mut spec = engine::scenario("two_stream_2d", Scale::Smoke).expect("registry");
    spec.ppc = PPC_2D;
    spec.n_steps = STEPS_2D;
    spec.loading = LoadingSpec::Quiet {
        mode: 1,
        amplitude: 1e-3,
    };
    spec.seed = 9;
    spec
}

fn main() {
    println!("== engine facade overhead vs direct crate drivers ==\n");

    // --- 1-D: engine vs pic::Simulation with the identical setup. ------
    let direct_1d = median_secs(|| {
        let cfg = PicConfig {
            grid: Grid1D::paper(),
            init: TwoStreamInit::random(0.2, 0.025, 64 * PPC_1D, 9),
            dt: 0.2,
            n_steps: STEPS_1D,
            gather_shape: Shape::Cic,
            tracked_modes: vec![1, 2, 3],
        };
        let mut sim = Simulation::new(cfg, Box::new(TraditionalSolver::paper_default()));
        sim.run();
        std::hint::black_box(sim.history().len());
    });
    let spec = spec_1d();
    let engine_1d = median_secs(|| {
        let summary = engine::run(&spec, Backend::Traditional1D).expect("run");
        std::hint::black_box(summary.history.len());
    });

    // --- 2-D: engine vs pic2d::Simulation2D. ---------------------------
    let direct_2d = median_secs(|| {
        let grid = Grid2D::default_square();
        let n = grid.nx() * grid.ny() * PPC_2D;
        let cfg = Pic2DConfig {
            grid,
            init: TwoStream2DInit::quiet(0.2, 0.0, n, 1e-3, 9),
            dt: 0.2,
            n_steps: STEPS_2D,
            gather_shape: Shape::Cic,
            tracked_modes: vec![(1, 0), (2, 0)],
        };
        let mut sim = Simulation2D::new(cfg, Box::new(TraditionalSolver2D::default_config()));
        sim.run();
        std::hint::black_box(sim.history().len());
    });
    let spec2 = spec_2d();
    let engine_2d = median_secs(|| {
        let summary = engine::run(&spec2, Backend::Traditional2D).expect("run");
        std::hint::black_box(summary.history.len());
    });

    let pct = |direct: f64, facade: f64| (facade / direct - 1.0) * 100.0;
    let oh_1d = pct(direct_1d, engine_1d);
    let oh_2d = pct(direct_2d, engine_2d);

    println!(
        "1-D ({} particles, {STEPS_1D} steps, median of {REPS}):",
        64 * PPC_1D
    );
    println!("  direct pic::Simulation : {:.2} ms", direct_1d * 1e3);
    println!(
        "  engine facade          : {:.2} ms  ({oh_1d:+.2}%)",
        engine_1d * 1e3
    );
    println!(
        "2-D ({} particles, {STEPS_2D} steps, median of {REPS}):",
        32 * 32 * PPC_2D
    );
    println!("  direct Simulation2D    : {:.2} ms", direct_2d * 1e3);
    println!(
        "  engine facade          : {:.2} ms  ({oh_2d:+.2}%)",
        engine_2d * 1e3
    );

    let json = format!(
        "{{\n  \"bench\": \"engine_overhead\",\n  \"reps\": {REPS},\n  \"oned\": {{\n    \"particles\": {},\n    \"steps\": {STEPS_1D},\n    \"direct_ms\": {:.3},\n    \"engine_ms\": {:.3},\n    \"overhead_pct\": {:.3}\n  }},\n  \"twod\": {{\n    \"particles\": {},\n    \"steps\": {STEPS_2D},\n    \"direct_ms\": {:.3},\n    \"engine_ms\": {:.3},\n    \"overhead_pct\": {:.3}\n  }}\n}}\n",
        64 * PPC_1D,
        direct_1d * 1e3,
        engine_1d * 1e3,
        oh_1d,
        32 * 32 * PPC_2D,
        direct_2d * 1e3,
        engine_2d * 1e3,
        oh_2d,
    );
    std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");
    println!("\nwrote BENCH_engine.json");

    let pass = oh_1d < 1.0 && oh_2d < 1.0;
    println!(
        "verdict: {}",
        if pass {
            "PASS — facade overhead under 1%"
        } else {
            "CHECK"
        }
    );
}

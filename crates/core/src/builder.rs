//! Network-architecture specifications and builders (paper §IV.A).
//!
//! * **MLP** — "three hidden layers. Each hidden layer is fully connected
//!   and contains 1,024 neurons with a Relu activation function. The output
//!   layer consists of 64 neurons with a Linear activation".
//! * **CNN** — "two blocks of convolutional layers followed by three fully
//!   connected layers. Each convolutional layer block was composed of two
//!   convolutional layers followed by a MaxPooling layer"; dense head as in
//!   the MLP.
//! * **ResMLP** — the §VII ResNet suggestion, for the architecture
//!   ablation.
//!
//! Kernel size (3×3) and channel counts are not given in the paper; the
//! choices here are recorded in DESIGN.md as inferred defaults.

use bytes::{Buf, BufMut};
use dlpic_nn::init::Init;
use dlpic_nn::layers::{Conv2d, Dense, Flatten, MaxPool2, Relu, ResidualDense};
use dlpic_nn::network::Sequential;

/// How the phase-space histogram is presented to the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputKind {
    /// Flattened `[batch, nv·nx]` vector (MLP).
    Flat,
    /// Single-channel image `[batch, 1, nv, nx]` (CNN).
    Image,
}

/// A serializable description of a network architecture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchSpec {
    /// Fully connected: `input → hidden… (ReLU) → output (linear)`.
    Mlp {
        /// Input width (`nv·nx`).
        input: usize,
        /// Hidden-layer widths.
        hidden: Vec<usize>,
        /// Output width (grid cells; 64 in the paper).
        output: usize,
    },
    /// Two conv blocks `[conv, conv, pool]` with ReLU, then a dense head.
    Cnn {
        /// Velocity bins of the input image.
        nv: usize,
        /// Position bins of the input image.
        nx: usize,
        /// Channels of (block 1, block 2).
        channels: (usize, usize),
        /// Square kernel size (odd).
        kernel: usize,
        /// Dense-head hidden widths.
        hidden: Vec<usize>,
        /// Output width.
        output: usize,
    },
    /// Residual MLP: input projection, `blocks` residual dense blocks,
    /// linear output.
    ResMlp {
        /// Input width.
        input: usize,
        /// Residual-block width.
        width: usize,
        /// Number of residual blocks.
        blocks: usize,
        /// Output width.
        output: usize,
    },
}

impl ArchSpec {
    /// The paper's MLP at full scale for a `nv·nx` input: 3×1024 hidden,
    /// 64 outputs.
    pub fn paper_mlp(input: usize, output: usize) -> Self {
        ArchSpec::Mlp {
            input,
            hidden: vec![1024, 1024, 1024],
            output,
        }
    }

    /// The paper's CNN at full scale: blocks of (16, 32) channels, 3×3
    /// kernels, 3×1024 dense head.
    pub fn paper_cnn(nv: usize, nx: usize, output: usize) -> Self {
        ArchSpec::Cnn {
            nv,
            nx,
            channels: (16, 32),
            kernel: 3,
            hidden: vec![1024, 1024, 1024],
            output,
        }
    }

    /// How inputs must be shaped for this architecture.
    pub fn input_kind(&self) -> InputKind {
        match self {
            ArchSpec::Cnn { .. } => InputKind::Image,
            _ => InputKind::Flat,
        }
    }

    /// Input element count (`nv·nx` for images).
    pub fn input_len(&self) -> usize {
        match self {
            ArchSpec::Mlp { input, .. } | ArchSpec::ResMlp { input, .. } => *input,
            ArchSpec::Cnn { nv, nx, .. } => nv * nx,
        }
    }

    /// Output width.
    pub fn output_len(&self) -> usize {
        match self {
            ArchSpec::Mlp { output, .. }
            | ArchSpec::Cnn { output, .. }
            | ArchSpec::ResMlp { output, .. } => *output,
        }
    }

    /// Short name for tables and file names.
    pub fn kind_name(&self) -> &'static str {
        match self {
            ArchSpec::Mlp { .. } => "mlp",
            ArchSpec::Cnn { .. } => "cnn",
            ArchSpec::ResMlp { .. } => "resmlp",
        }
    }

    /// Trainable parameter count of the network [`Self::build`] would
    /// construct (weights + biases), layer by layer. Drives memory-budget
    /// estimates: an f32 network occupies `4 * param_count()` bytes of
    /// weight storage.
    pub fn param_count(&self) -> usize {
        let dense = |inp: usize, out: usize| inp * out + out;
        match self {
            ArchSpec::Mlp {
                input,
                hidden,
                output,
            } => {
                let mut prev = *input;
                let mut total = 0usize;
                for &h in hidden {
                    total += dense(prev, h);
                    prev = h;
                }
                total + dense(prev, *output)
            }
            ArchSpec::Cnn {
                nv,
                nx,
                channels,
                kernel,
                hidden,
                output,
            } => {
                let (c1, c2) = *channels;
                let conv = |ic: usize, oc: usize| ic * oc * kernel * kernel + oc;
                // Two blocks of [conv, conv, pool], then the dense head on
                // the twice-pooled image.
                let mut total = conv(1, c1) + conv(c1, c1) + conv(c1, c2) + conv(c2, c2);
                let mut prev = c2 * (nv / 4) * (nx / 4);
                for &h in hidden {
                    total += dense(prev, h);
                    prev = h;
                }
                total + dense(prev, *output)
            }
            ArchSpec::ResMlp {
                input,
                width,
                blocks,
                output,
            } => dense(*input, *width) + blocks * dense(*width, *width) + dense(*width, *output),
        }
    }

    /// Builds the network with deterministic initialization from `seed`.
    ///
    /// # Panics
    /// Panics for invalid geometry (e.g. CNN spatial dims not divisible by
    /// 4 — two pooling stages).
    pub fn build(&self, seed: u64) -> Sequential {
        match self {
            ArchSpec::Mlp {
                input,
                hidden,
                output,
            } => {
                let mut net = Sequential::new();
                let mut prev = *input;
                for (i, &h) in hidden.iter().enumerate() {
                    net.push_boxed(Box::new(Dense::new(
                        prev,
                        h,
                        Init::HeNormal,
                        seed + i as u64,
                    )));
                    net.push_boxed(Box::new(Relu::new()));
                    prev = h;
                }
                net.push_boxed(Box::new(Dense::new(
                    prev,
                    *output,
                    Init::GlorotUniform,
                    seed + hidden.len() as u64,
                )));
                net
            }
            ArchSpec::Cnn {
                nv,
                nx,
                channels,
                kernel,
                hidden,
                output,
            } => {
                assert!(
                    nv % 4 == 0 && nx % 4 == 0,
                    "CNN needs spatial dims divisible by 4 (two pools), got {nv}x{nx}"
                );
                let (c1, c2) = *channels;
                let mut net = Sequential::new();
                let mut s = seed;
                let mut push_conv = |net: &mut Sequential, ic: usize, oc: usize| {
                    net.push_boxed(Box::new(Conv2d::new(ic, oc, *kernel, Init::HeNormal, s)));
                    net.push_boxed(Box::new(Relu::new()));
                    s += 1;
                };
                // Block 1.
                push_conv(&mut net, 1, c1);
                push_conv(&mut net, c1, c1);
                net.push_boxed(Box::new(MaxPool2::new()));
                // Block 2.
                push_conv(&mut net, c1, c2);
                push_conv(&mut net, c2, c2);
                net.push_boxed(Box::new(MaxPool2::new()));
                net.push_boxed(Box::new(Flatten::new()));
                // Dense head.
                let mut prev = c2 * (nv / 4) * (nx / 4);
                for &h in hidden {
                    net.push_boxed(Box::new(Dense::new(prev, h, Init::HeNormal, s)));
                    net.push_boxed(Box::new(Relu::new()));
                    s += 1;
                    prev = h;
                }
                net.push_boxed(Box::new(Dense::new(prev, *output, Init::GlorotUniform, s)));
                net
            }
            ArchSpec::ResMlp {
                input,
                width,
                blocks,
                output,
            } => {
                let mut net = Sequential::new();
                net.push_boxed(Box::new(Dense::new(*input, *width, Init::HeNormal, seed)));
                net.push_boxed(Box::new(Relu::new()));
                for i in 0..*blocks {
                    net.push_boxed(Box::new(ResidualDense::new(
                        *width,
                        Init::HeNormal,
                        seed + 1 + i as u64,
                    )));
                }
                net.push_boxed(Box::new(Dense::new(
                    *width,
                    *output,
                    Init::GlorotUniform,
                    seed + 1 + *blocks as u64,
                )));
                net
            }
        }
    }

    /// Binary encoding (for model bundles).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            ArchSpec::Mlp {
                input,
                hidden,
                output,
            } => {
                buf.put_u8(0);
                buf.put_u32_le(*input as u32);
                buf.put_u32_le(hidden.len() as u32);
                for &h in hidden {
                    buf.put_u32_le(h as u32);
                }
                buf.put_u32_le(*output as u32);
            }
            ArchSpec::Cnn {
                nv,
                nx,
                channels,
                kernel,
                hidden,
                output,
            } => {
                buf.put_u8(1);
                buf.put_u32_le(*nv as u32);
                buf.put_u32_le(*nx as u32);
                buf.put_u32_le(channels.0 as u32);
                buf.put_u32_le(channels.1 as u32);
                buf.put_u32_le(*kernel as u32);
                buf.put_u32_le(hidden.len() as u32);
                for &h in hidden {
                    buf.put_u32_le(h as u32);
                }
                buf.put_u32_le(*output as u32);
            }
            ArchSpec::ResMlp {
                input,
                width,
                blocks,
                output,
            } => {
                buf.put_u8(2);
                buf.put_u32_le(*input as u32);
                buf.put_u32_le(*width as u32);
                buf.put_u32_le(*blocks as u32);
                buf.put_u32_le(*output as u32);
            }
        }
    }

    /// Binary decoding. Returns `None` for a malformed buffer.
    pub fn decode(buf: &mut &[u8]) -> Option<Self> {
        if buf.remaining() < 1 {
            return None;
        }
        let tag = buf.get_u8();
        let get = |buf: &mut &[u8]| -> Option<usize> {
            if buf.remaining() < 4 {
                None
            } else {
                Some(buf.get_u32_le() as usize)
            }
        };
        match tag {
            0 => {
                let input = get(buf)?;
                let n = get(buf)?;
                if n > 64 {
                    return None; // sanity bound
                }
                let mut hidden = Vec::with_capacity(n);
                for _ in 0..n {
                    hidden.push(get(buf)?);
                }
                let output = get(buf)?;
                Some(ArchSpec::Mlp {
                    input,
                    hidden,
                    output,
                })
            }
            1 => {
                let nv = get(buf)?;
                let nx = get(buf)?;
                let c1 = get(buf)?;
                let c2 = get(buf)?;
                let kernel = get(buf)?;
                let n = get(buf)?;
                if n > 64 {
                    return None;
                }
                let mut hidden = Vec::with_capacity(n);
                for _ in 0..n {
                    hidden.push(get(buf)?);
                }
                let output = get(buf)?;
                Some(ArchSpec::Cnn {
                    nv,
                    nx,
                    channels: (c1, c2),
                    kernel,
                    hidden,
                    output,
                })
            }
            2 => {
                let input = get(buf)?;
                let width = get(buf)?;
                let blocks = get(buf)?;
                let output = get(buf)?;
                Some(ArchSpec::ResMlp {
                    input,
                    width,
                    blocks,
                    output,
                })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlpic_nn::tensor::Tensor;

    #[test]
    fn paper_mlp_has_stated_structure() {
        let spec = ArchSpec::paper_mlp(64 * 64, 64);
        let mut net = spec.build(0);
        // 3 hidden ReLU pairs + output = 7 layers.
        assert_eq!(net.len(), 7);
        // Parameter count: 4096·1024 + 1024 + 2·(1024² + 1024) + 1024·64 + 64.
        let expect = 4096 * 1024 + 1024 + 2 * (1024 * 1024 + 1024) + 1024 * 64 + 64;
        assert_eq!(net.param_count(), expect);
        let y = net.predict(&Tensor::zeros(&[1, 4096]));
        assert_eq!(y.shape(), &[1, 64]);
    }

    #[test]
    fn param_count_matches_built_network() {
        let specs = [
            ArchSpec::paper_mlp(64 * 64, 64),
            ArchSpec::Mlp {
                input: 48,
                hidden: vec![32, 32],
                output: 16,
            },
            ArchSpec::Cnn {
                nv: 16,
                nx: 16,
                channels: (4, 8),
                kernel: 3,
                hidden: vec![32, 32, 32],
                output: 64,
            },
            ArchSpec::ResMlp {
                input: 64,
                width: 48,
                blocks: 3,
                output: 16,
            },
        ];
        for spec in specs {
            assert_eq!(
                spec.param_count(),
                spec.build(0).param_count(),
                "{}: spec-level count disagrees with the built network",
                spec.kind_name()
            );
        }
    }

    #[test]
    fn paper_cnn_shape_flow() {
        let spec = ArchSpec::Cnn {
            nv: 16,
            nx: 16,
            channels: (4, 8),
            kernel: 3,
            hidden: vec![32, 32, 32],
            output: 64,
        };
        let mut net = spec.build(1);
        let y = net.predict(&Tensor::zeros(&[2, 1, 16, 16]));
        assert_eq!(y.shape(), &[2, 64]);
        assert_eq!(spec.input_kind(), InputKind::Image);
        assert_eq!(spec.input_len(), 256);
    }

    #[test]
    fn resmlp_builds_and_runs() {
        let spec = ArchSpec::ResMlp {
            input: 64,
            width: 32,
            blocks: 2,
            output: 16,
        };
        let mut net = spec.build(3);
        let y = net.predict(&Tensor::zeros(&[1, 64]));
        assert_eq!(y.shape(), &[1, 16]);
    }

    #[test]
    fn encode_decode_round_trip() {
        let specs = [
            ArchSpec::paper_mlp(1024, 64),
            ArchSpec::Cnn {
                nv: 32,
                nx: 32,
                channels: (8, 16),
                kernel: 3,
                hidden: vec![128, 128, 128],
                output: 64,
            },
            ArchSpec::ResMlp {
                input: 256,
                width: 64,
                blocks: 3,
                output: 64,
            },
        ];
        for spec in specs {
            let mut buf = Vec::new();
            spec.encode(&mut buf);
            let mut slice = buf.as_slice();
            let decoded = ArchSpec::decode(&mut slice).unwrap();
            assert_eq!(decoded, spec);
            assert!(slice.is_empty(), "trailing bytes after decode");
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        let mut garbage: &[u8] = &[9, 1, 2, 3];
        assert!(ArchSpec::decode(&mut garbage).is_none());
        let mut empty: &[u8] = &[];
        assert!(ArchSpec::decode(&mut empty).is_none());
    }

    #[test]
    fn deterministic_build() {
        let spec = ArchSpec::Mlp {
            input: 8,
            hidden: vec![4],
            output: 2,
        };
        let mut a = spec.build(5);
        let mut b = spec.build(5);
        let x = Tensor::full(&[1, 8], 0.5);
        assert_eq!(a.predict(&x).data(), b.predict(&x).data());
    }

    #[test]
    #[should_panic(expected = "divisible by 4")]
    fn cnn_rejects_unpoolable_dims() {
        let spec = ArchSpec::Cnn {
            nv: 6,
            nx: 16,
            channels: (2, 2),
            kernel: 3,
            hidden: vec![8],
            output: 4,
        };
        let _ = spec.build(0);
    }
}

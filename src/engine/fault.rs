//! Deterministic fault injection for supervision tests: wrap a built
//! [`BackendSession`] so a chosen run panics or goes non-finite at a
//! chosen step. `dlpic-serve --inject` and the containment tests use this
//! to stage one sick run inside an otherwise healthy fleet without
//! touching any solver code.

use super::error::EngineError;
use super::observer::Sample;
use super::session::BackendSession;

/// What an injected fault does when its step arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the step (exercises panic containment).
    Panic,
    /// Poison the step's recorded field-energy diagnostic with NaN
    /// (exercises divergence quarantine).
    NanField,
}

impl FaultKind {
    fn parse(s: &str) -> Option<Self> {
        match s {
            "panic" => Some(Self::Panic),
            "nan" => Some(Self::NanField),
            _ => None,
        }
    }
}

/// One injection rule: runs whose spec name contains `name` trip `kind`
/// when their step counter reaches `at_step`.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// Substring matched against the expanded spec name
    /// (`two_stream[v0=0.12]` matches rule name `v0=0.12`).
    pub name: String,
    /// What happens.
    pub kind: FaultKind,
    /// The step counter value that trips the rule.
    pub at_step: usize,
}

/// A set of [`FaultRule`]s an [`Engine`](super::Engine) applies when
/// starting sessions; parseable from the `--inject` flag syntax
/// `NAME=KIND@STEP[;NAME=KIND@STEP…]` where `KIND` is `panic` or `nan`
/// (`NAME` may itself contain `=`; the split is at the last one).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// A plan with no rules (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one rule.
    pub fn rule(mut self, name: impl Into<String>, kind: FaultKind, at_step: usize) -> Self {
        self.rules.push(FaultRule {
            name: name.into(),
            kind,
            at_step,
        });
        self
    }

    /// True when no rule is configured.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Parses the `--inject` syntax (see the type docs). Errors name the
    /// offending `;`-separated segment by its 1-based position, so a typo
    /// buried in a long multi-rule plan is findable from the message
    /// alone.
    pub fn parse(text: &str) -> Result<Self, EngineError> {
        let mut plan = Self::new();
        for (idx, part) in text.split(';').enumerate() {
            if part.trim().is_empty() {
                continue;
            }
            let bad = |what: String| EngineError::InvalidSpec {
                scenario: String::new(),
                what: format!("inject segment {} (`{}`): {what}", idx + 1, part.trim()),
            };
            let (name, action) = part
                .rsplit_once('=')
                .ok_or_else(|| bad("not NAME=KIND@STEP".to_string()))?;
            let (kind, step) = action
                .split_once('@')
                .ok_or_else(|| bad(format!("action `{action}` is not KIND@STEP")))?;
            let kind = FaultKind::parse(kind)
                .ok_or_else(|| bad(format!("kind `{kind}` (knows panic, nan)")))?;
            let at_step = step
                .parse()
                .map_err(|_| bad(format!("step `{step}` is not a number")))?;
            plan = plan.rule(name.trim(), kind, at_step);
        }
        Ok(plan)
    }

    /// Wraps `inner` in a [`FaultInjector`] when a rule matches
    /// `spec_name`; hands it back untouched otherwise.
    pub fn wrap(&self, spec_name: &str, inner: Box<dyn BackendSession>) -> Box<dyn BackendSession> {
        match self
            .rules
            .iter()
            .find(|r| !r.name.is_empty() && spec_name.contains(&r.name))
        {
            Some(rule) => Box::new(FaultInjector {
                inner,
                kind: rule.kind,
                at_step: rule.at_step,
            }),
            None => inner,
        }
    }
}

/// A [`BackendSession`] decorator that trips its configured fault when the
/// wrapped session's step counter reaches `at_step`, and is transparent
/// everywhere else (checkpoints, phase splitting, batched inference all
/// delegate).
pub struct FaultInjector {
    inner: Box<dyn BackendSession>,
    kind: FaultKind,
    at_step: usize,
}

impl FaultInjector {
    fn maybe_panic(&self) {
        if self.kind == FaultKind::Panic && self.inner.steps_done() == self.at_step {
            panic!("injected fault: panic at step {}", self.at_step);
        }
    }

    fn maybe_poison(&self, sample: &mut Sample) {
        if self.kind == FaultKind::NanField && sample.step == self.at_step {
            sample.field = f64::NAN;
        }
    }
}

impl BackendSession for FaultInjector {
    fn step(&mut self) -> Sample {
        self.maybe_panic();
        let mut sample = self.inner.step();
        self.maybe_poison(&mut sample);
        sample
    }

    fn sample(&mut self) -> Sample {
        self.inner.sample()
    }

    fn finish(&mut self) -> Sample {
        self.inner.finish()
    }

    fn time(&self) -> f64 {
        self.inner.time()
    }

    fn steps_done(&self) -> usize {
        self.inner.steps_done()
    }

    fn phase_space(&self) -> Option<super::observer::PhaseSpace> {
        self.inner.phase_space()
    }

    fn state_checkpoint(&self) -> super::json::Json {
        self.inner.state_checkpoint()
    }

    fn restore(&mut self, state: &super::json::Json) -> Result<(), EngineError> {
        self.inner.restore(state)
    }

    fn extras(&self) -> Vec<(String, f64)> {
        self.inner.extras()
    }

    fn weight_storage(&self) -> Option<(usize, usize)> {
        self.inner.weight_storage()
    }

    fn infer_shape(&mut self) -> Option<(usize, usize)> {
        self.inner.infer_shape()
    }

    fn step_prepare(&mut self, input: &mut [f32]) -> Sample {
        self.maybe_panic();
        let mut sample = self.inner.step_prepare(input);
        self.maybe_poison(&mut sample);
        sample
    }

    fn infer_batch(&mut self, input: &[f32], rows: usize, output: &mut [f32]) {
        self.inner.infer_batch(input, rows, output);
    }

    fn step_apply(&mut self, output: &[f32]) {
        self.inner.step_apply(output);
    }
}

//! Criterion benches of phase-space binning — the extra stage the DL-based
//! PIC adds to the computational cycle (paper Fig. 2, first grey box).

use criterion::{criterion_group, criterion_main, Criterion};
use dlpic_core::phase_space::{bin_phase_space, BinningShape, PhaseGridSpec};
use dlpic_pic::grid::Grid1D;
use dlpic_pic::init::TwoStreamInit;
use std::time::Duration;

fn bench_binning(c: &mut Criterion) {
    let grid = Grid1D::paper();
    let particles = TwoStreamInit::random(0.2, 0.025, 64_000, 9).build(&grid);
    let mut group = c.benchmark_group("binning_64k");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for (label, spec) in [
        ("scaled_32x32", PhaseGridSpec::scaled()),
        ("paper_64x64", PhaseGridSpec::paper()),
    ] {
        for shape in [BinningShape::Ngp, BinningShape::Cic] {
            let mut hist = vec![0.0f32; spec.cells()];
            group.bench_function(format!("{label}_{shape:?}"), |b| {
                b.iter(|| bin_phase_space(&particles, &grid, &spec, shape, &mut hist));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_binning);
criterion_main!(benches);

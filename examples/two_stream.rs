//! Traditional vs DL-based PIC on the two-stream instability — the
//! paper's headline validation (Figs. 4–5), on the engine facade.
//!
//! Both methods run the *same* [`ScenarioSpec`] from the registry; only
//! the [`Backend`] value differs. The DL model comes from the bundle
//! written by `train_field_solver` when available, else a quick one is
//! trained on the spot.
//!
//! ```sh
//! cargo run --release --example train_field_solver   # once (optional)
//! cargo run --release --example two_stream
//! ```

use dlpic_repro::analytics::dispersion::TwoStreamDispersion;
use dlpic_repro::analytics::plot::{line_plot, scatter_density, PlotOptions};
use dlpic_repro::core::{ModelBundle, Scale};
use dlpic_repro::engine::{self, Backend, Engine, EngineError};

/// Loads a cached example bundle, else trains a quick smoke-scale one.
fn load_bundle() -> ModelBundle {
    for name in [
        "out/models/example-mlp-scaled.dlpb",
        "out/models/mlp-scaled.dlpb",
        "out/models/example-mlp-smoke.dlpb",
        "out/models/mlp-smoke.dlpb",
    ] {
        if let Ok(b) = ModelBundle::load(name) {
            println!("using model {name}");
            return b;
        }
    }
    println!("no cached model found; training a quick smoke-scale one...");
    engine::dl::quick_train_1d(Scale::Smoke, 1)
}

fn main() -> Result<(), EngineError> {
    println!("== two-stream instability: traditional vs DL-based PIC ==\n");

    // The registry scenario, sized up for a physical comparison: 500
    // particles/cell keeps the example under a few seconds.
    let mut spec = engine::scenario("two_stream", Scale::Smoke)?;
    spec.ppc = 500;
    spec.n_steps = 200;
    spec.seed = 7;

    let mut eng = Engine::new().with_model_1d(load_bundle());
    let trad = eng.run(&spec, Backend::Traditional1D)?;
    let dl = eng.run(&spec, Backend::Dl1D)?;

    // Phase space at t = 40 (the paper's Fig. 4 top panels).
    let l = dlpic_repro::pic::constants::paper_box_length();
    for summary in [&trad, &dl] {
        if let Some(ps) = &summary.phase_space {
            println!(
                "{}",
                scatter_density(
                    &ps.x,
                    &ps.v,
                    (0.0, l),
                    (-0.4, 0.4),
                    64,
                    14,
                    &format!("{} (t = 40)", summary.backend),
                )
            );
        }
    }

    // E1 growth (Fig. 4 bottom).
    let mut e1t = trad.history.mode_series(1).expect("mode 1 tracked");
    e1t.name = "traditional".into();
    let mut e1d = dl.history.mode_series(1).expect("mode 1 tracked");
    e1d.name = "dl-based".into();
    println!(
        "{}",
        line_plot(
            &[('*', &e1t), ('o', &e1d)],
            &PlotOptions::titled("E1 amplitude (log)").log_y(true)
        )
    );

    let gamma = TwoStreamDispersion::new(0.2).mode_growth_rate(1, l);
    println!("growth rates (theory γ = {gamma:.4}):");
    for summary in [&trad, &dl] {
        match summary.growth_rate(1) {
            Ok(f) => println!(
                "  {:<14}: γ = {:.4} ({:+.1}% vs theory)",
                summary.backend,
                f.gamma,
                (f.gamma - gamma) / gamma * 100.0
            ),
            Err(e) => println!("  {:<14}: no growth fit ({e})", summary.backend),
        }
    }

    println!("\nconservation:");
    println!(
        "  energy variation : traditional {:.2}%, dl-based {:.2}%",
        trad.energy_variation() * 100.0,
        dl.energy_variation() * 100.0
    );
    println!(
        "  momentum drift   : traditional {:.2e}, dl-based {:.2e}",
        trad.momentum_drift(),
        dl.momentum_drift()
    );
    println!("\n(the paper's full-scale version of this comparison: `cargo run -p dlpic-bench --release --bin fig4`)");
    Ok(())
}

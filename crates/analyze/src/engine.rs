//! The analysis driver: walk the tree, run the configured rules per
//! file, apply inline suppressions and the baseline, and assemble the
//! sorted [`Report`].

use std::fs;
use std::path::{Path, PathBuf};

use crate::config::{Config, Level};
use crate::report::{Baseline, Finding, Report};
use crate::rules::run_rule;
use crate::source::SourceFile;

/// Recursively collects every `.rs` file under `root` that the config
/// does not exclude, as workspace-relative `/`-separated paths, sorted —
/// scan order (and therefore report order) is deterministic by
/// construction.
pub fn collect_files(root: &Path, config: &Config) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    walk(root, root, config, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, config: &Config, out: &mut Vec<String>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let rel = relative(root, &path);
        if config.is_excluded(&rel) {
            continue;
        }
        let ty = entry
            .file_type()
            .map_err(|e| format!("file_type {}: {e}", path.display()))?;
        if ty.is_dir() {
            // Skip hidden directories (.git is also in the exclude list).
            if entry.file_name().to_string_lossy().starts_with('.') {
                continue;
            }
            walk(root, &path, config, out)?;
        } else if ty.is_file() && rel.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

fn relative(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Analyzes one already-loaded source file. Exposed for the fixture
/// tests; [`analyze_tree`] is the production entry point.
pub fn analyze_source(
    file: &SourceFile,
    config: &Config,
    baseline: &Baseline,
    report: &mut Report,
) {
    let rules = config.rules_for(&file.path);
    let mut hits = Vec::new();
    for (rule, _) in &rules {
        run_rule(rule, file, &mut hits);
    }
    // A typo'd `analyze:allow` must not silently disable anything.
    for &line in &file.malformed_allows {
        hits.push(crate::rules::RuleHit {
            rule: "malformed-suppression",
            line,
            message: "unparseable `analyze:allow` — the syntax is \
                      `// analyze:allow(rule-name): reason` with a non-empty reason"
                .to_string(),
        });
    }
    for hit in hits {
        if file.is_allowed(hit.rule, hit.line) {
            report.suppressed += 1;
            continue;
        }
        let level = if hit.rule == "malformed-suppression" {
            Level::Deny
        } else {
            rules
                .iter()
                .find(|(r, _)| *r == hit.rule)
                .map(|(_, l)| *l)
                .unwrap_or(Level::Warn)
        };
        let snippet = file.snippet(hit.line).to_string();
        let baselined = baseline.covers(hit.rule, &file.path, &snippet);
        report.findings.push(Finding {
            rule: hit.rule.to_string(),
            level,
            path: file.path.clone(),
            line: hit.line,
            message: hit.message,
            snippet,
            baselined,
        });
    }
}

/// Analyzes the whole tree under `root`.
pub fn analyze_tree(root: &Path, config: &Config, baseline: &Baseline) -> Result<Report, String> {
    let files = collect_files(root, config)?;
    let mut report = Report::default();
    for rel in files {
        let abs = root.join(&rel);
        let source =
            fs::read_to_string(&abs).map_err(|e| format!("read {}: {e}", abs.display()))?;
        let file = SourceFile::parse(&rel, &source);
        analyze_source(&file, config, baseline, &mut report);
        report.files_scanned += 1;
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_and_levels_flow_through() {
        let src = "\
            use std::collections::HashMap;\n\
            // analyze:allow(no-hashmap-iter-in-state): transient cache, never serialized\n\
            type Cache = HashMap<String, u32>;\n\
            // analyze:allow(oops\n";
        let file = SourceFile::parse("state.rs", src);
        let cfg = Config::all_paths();
        let mut report = Report::default();
        analyze_source(&file, &cfg, &Baseline::default(), &mut report);
        // Line 1 fires, line 3 is suppressed, line 4 is malformed.
        assert_eq!(report.suppressed, 1);
        let rules: Vec<&str> = report.findings.iter().map(|f| f.rule.as_str()).collect();
        assert_eq!(
            rules,
            vec!["no-hashmap-iter-in-state", "malformed-suppression"],
            "{:?}",
            report.findings
        );
        assert_eq!(report.deny_count(), 2);
    }

    #[test]
    fn baseline_downgrades_known_findings() {
        let src = "use std::collections::HashMap;\n";
        let file = SourceFile::parse("state.rs", src);
        let cfg = Config::all_paths();
        let baseline =
            Baseline::parse("no-hashmap-iter-in-state\tstate.rs\tuse std::collections::HashMap;\n")
                .unwrap();
        let mut report = Report::default();
        analyze_source(&file, &cfg, &baseline, &mut report);
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0].baselined);
        assert_eq!(report.deny_count(), 0);
    }
}

//! The cold-beam numerical instability (paper Fig. 6), on the engine
//! facade.
//!
//! The registry's `cold_beam` scenario — two cold beams at `v0 = ±0.4` —
//! is *linearly stable*: physically nothing should happen. The explicit
//! momentum-conserving PIC nevertheless heats (aliasing between beam
//! modes and the grid, Birdsall & Langdon ch. 8). This example
//! demonstrates and quantifies it; when a trained model is cached it also
//! shows the DL-based PIC gliding through unaffected, as the paper
//! reports.
//!
//! ```sh
//! cargo run --release --example cold_beam
//! ```

use dlpic_repro::analytics::dispersion::TwoStreamDispersion;
use dlpic_repro::analytics::plot::{line_plot, scatter_density, PlotOptions};
use dlpic_repro::analytics::stats;
use dlpic_repro::core::{ModelBundle, Scale};
use dlpic_repro::engine::{self, Backend, Engine, EngineError};

fn beam_spread(vs: &[f64]) -> f64 {
    let beam: Vec<f64> = vs.iter().copied().filter(|v| *v > 0.0).collect();
    stats::std_dev(&beam)
}

fn main() -> Result<(), EngineError> {
    println!("== cold-beam numerical instability, v0 = ±0.4, vth = 0 ==\n");

    // Linear theory says: stable.
    let disp = TwoStreamDispersion::new(0.4);
    let l = dlpic_repro::pic::constants::paper_box_length();
    println!("linear growth rates of the first grid modes (all should be 0):");
    for m in 1..=4 {
        println!("  mode {m}: γ = {}", disp.mode_growth_rate(m, l));
    }

    let mut spec = engine::scenario("cold_beam", Scale::Smoke)?;
    spec.ppc = 1000;
    spec.n_steps = 200;
    spec.seed = 13;

    let trad = engine::run(&spec, Backend::Traditional1D)?;
    let ps = trad.phase_space.as_ref().expect("particle backend");
    println!(
        "\n{}",
        scatter_density(
            &ps.x,
            &ps.v,
            (0.0, l),
            (-0.6, 0.6),
            64,
            14,
            "Traditional PIC at t = 40: ripples = numerical instability"
        )
    );

    let te = trad.history.total_energy_series("traditional");
    println!(
        "{}",
        line_plot(
            &[('*', &te)],
            &PlotOptions::titled("Total energy (should be flat!)")
        )
    );
    let spread = beam_spread(&ps.v);
    println!(
        "energy variation  : {:.2}% (paper Fig. 6: visible rise)",
        trad.energy_variation() * 100.0
    );
    println!("beam velocity spread at t = 40: {spread:.4} (started at exactly 0)");

    // DL comparison when a trained model is on disk.
    let model = [
        "out/models/mlp-scaled.dlpb",
        "out/models/example-mlp-scaled.dlpb",
    ]
    .iter()
    .find_map(|p| ModelBundle::load(p).ok());
    match model {
        Some(bundle) => {
            let mut eng = Engine::new().with_model_1d(bundle);
            let dl = eng.run(&spec, Backend::Dl1D)?;
            let dps = dl.phase_space.as_ref().expect("particle backend");
            println!(
                "{}",
                scatter_density(
                    &dps.x,
                    &dps.v,
                    (0.0, l),
                    (-0.6, 0.6),
                    64,
                    14,
                    "DL-based PIC at t = 40: stable against the cold-beam instability"
                )
            );
            println!(
                "DL beam velocity spread: {:.4} vs traditional {spread:.4}",
                beam_spread(&dps.v)
            );
            println!(
                "DL momentum drift      : {:.2e} (the price the paper reports)",
                dl.momentum_drift()
            );
        }
        None => {
            println!("\n(no trained model found — run `--example train_field_solver` or");
            println!(" `cargo run -p dlpic-bench --release --bin fig6` for the DL comparison)");
        }
    }
    Ok(())
}

//! In-process contracts of the serving daemon: submitted jobs produce
//! histories bit-identical to solo `Engine::run` calls, watch streams
//! every new diagnostics row exactly once, stop policies end runs early
//! with `stopped` state, bad sweeps are rejected at submit time, cancel
//! leaves the server serving, and the tenant round-robin is observable
//! through `finish_seq`.

use std::time::Duration;

use dlpic_repro::core::Scale;
use dlpic_repro::engine::json::Json;
use dlpic_repro::engine::{self, Backend, EnergyHistory, Engine, SweepSpec};
use dlpic_serve::client::Client;
use dlpic_serve::job::{JobRequest, StopPolicy};
use dlpic_serve::server::{ServeConfig, Server};
use dlpic_serve::ServeError;

fn spec(scenario: &str, n_steps: usize, seed: u64) -> engine::ScenarioSpec {
    let mut spec = engine::scenario(scenario, Scale::Smoke).expect("registry");
    spec.n_steps = n_steps;
    spec.seed = seed;
    spec.name = format!("{scenario}[seed={seed}]");
    spec
}

fn history_of(summary: &Json) -> EnergyHistory {
    EnergyHistory::from_json_value(summary.field("history").expect("summary history"))
        .expect("history parses")
}

#[test]
fn submitted_scenario_matches_solo_engine_run_bit_exactly() {
    let server = Server::start(ServeConfig::default()).expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");

    let spec = spec("two_stream", 8, 42);
    let solo = Engine::new().run(&spec, Backend::Dl1D).expect("solo");

    let (job, runs) = client
        .submit(&JobRequest::scenario(spec, Backend::Dl1D), "alice")
        .expect("submit");
    assert_eq!(runs, 1);
    let results = client
        .wait_for(&job, Duration::from_millis(5))
        .expect("wait");
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].state, "done");
    assert_eq!(
        history_of(&results[0].summary),
        solo.history,
        "served history must be bit-identical to the solo run"
    );

    client.drain().expect("drain");
    server.wait();
}

#[test]
fn submitted_sweep_expands_and_matches_solo_runs() {
    let server = Server::start(ServeConfig::default()).expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");

    let sweep = SweepSpec::grid("two_stream", Scale::Smoke)
        .axis("v0", [0.15, 0.2])
        .seeds([7, 8]);
    let job = JobRequest::sweep(sweep.clone(), Backend::Traditional1D).with_steps(10);
    let (id, runs) = client.submit(&job, "alice").expect("submit");
    assert_eq!(runs, 4);

    let results = client
        .wait_for(&id, Duration::from_millis(5))
        .expect("wait");
    let mut solo_specs = sweep.specs().expect("sweep expands");
    for spec in &mut solo_specs {
        spec.n_steps = 10;
    }
    assert_eq!(results.len(), solo_specs.len());
    for (result, spec) in results.iter().zip(&solo_specs) {
        assert_eq!(result.name, spec.name);
        assert_eq!(result.state, "done");
        let solo = Engine::new()
            .run(spec, Backend::Traditional1D)
            .expect("solo");
        assert_eq!(history_of(&result.summary), solo.history, "{}", spec.name);
    }

    client.drain().expect("drain");
    server.wait();
}

#[test]
fn watch_streams_each_row_once_then_run_done_and_job_done() {
    let server = Server::start(ServeConfig::default().max_sessions(1)).expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");

    // A blocker holds the only slot so the watched job cannot step (or
    // finish) before the watch subscription is registered — without it
    // the subscription races the run on a loaded machine.
    let (blocker, _) = client
        .submit(
            &JobRequest::scenario(spec("two_stream", 200_000, 9), Backend::Traditional1D),
            "blocker",
        )
        .expect("submit blocker");
    let (job, _) = client
        .submit(
            &JobRequest::scenario(spec("two_stream", 400, 3), Backend::Traditional1D),
            "alice",
        )
        .expect("submit");

    let (watch_addr, watch_job) = (server.addr().to_string(), job.clone());
    let watcher = std::thread::spawn(move || {
        let mut samples = Vec::new();
        let mut run_done = 0usize;
        let mut job_done = 0usize;
        let mut client = Client::connect(&watch_addr).expect("watch connect");
        client
            .watch(&watch_job, |event| {
                match event.field("event").and_then(Json::as_str).unwrap() {
                    "sample" => {
                        samples.push(event.field("step").and_then(Json::as_usize).expect("step"))
                    }
                    "run_done" => run_done += 1,
                    "job_done" => job_done += 1,
                    other => panic!("unexpected event kind {other}"),
                }
            })
            .expect("watch");
        (samples, run_done, job_done)
    });

    // Release the slot only once `status` shows the subscription landed.
    loop {
        let doc = client.status(Some(&job)).expect("status");
        let watchers = doc.field("jobs").and_then(Json::as_arr).expect("jobs")[0]
            .field("watchers")
            .and_then(Json::as_usize)
            .expect("watchers");
        if watchers >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    client.cancel(&blocker).expect("cancel blocker");

    let (samples, run_done, job_done) = watcher.join().expect("watcher thread");
    assert_eq!(run_done, 1);
    assert_eq!(job_done, 1);
    // The subscription predates the run's first step, so the stream is
    // the complete history: row 0 through the final row, in order, each
    // exactly once.
    assert_eq!(
        samples.first().copied(),
        Some(0),
        "stream must start at row 0"
    );
    for pair in samples.windows(2) {
        assert_eq!(pair[1], pair[0] + 1, "gap or duplicate in stream");
    }
    assert_eq!(*samples.last().unwrap(), 399);

    client.drain().expect("drain");
    server.wait();
}

#[test]
fn time_stop_policy_ends_runs_early_with_stopped_state() {
    let server = Server::start(ServeConfig::default()).expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");

    let job = JobRequest::scenario(spec("two_stream", 500, 1), Backend::Traditional1D)
        .with_stop(StopPolicy::Time { t: 0.5 });
    let (id, _) = client.submit(&job, "alice").expect("submit");
    let results = client
        .wait_for(&id, Duration::from_millis(5))
        .expect("wait");
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].state, "stopped");
    let steps = results[0]
        .summary
        .field("steps")
        .and_then(Json::as_usize)
        .expect("steps");
    assert!(steps < 500, "policy should fire well before the budget");
    assert!(steps > 0);
    let history = history_of(&results[0].summary);
    assert!(*history.times.last().expect("rows") >= 0.5);

    client.drain().expect("drain");
    server.wait();
}

#[test]
fn bad_sweep_axis_is_rejected_at_submit_with_known_names() {
    let server = Server::start(ServeConfig::default()).expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");

    let sweep = SweepSpec::grid("two_stream", Scale::Smoke).axis("warp_factor", [9.0]);
    let err = client
        .submit(&JobRequest::sweep(sweep, Backend::Traditional1D), "alice")
        .expect_err("bogus axis must be rejected");
    let ServeError::Protocol(proto) = err else {
        panic!("expected a protocol rejection, got {err}");
    };
    assert_eq!(proto.code, "bad-job");
    assert!(proto.message.contains("warp_factor"), "{}", proto.message);
    assert!(
        proto.message.contains("not a sweepable parameter"),
        "{}",
        proto.message
    );
    // The rejection names the valid axes so the client can self-correct.
    assert!(proto.message.contains("v0"), "{}", proto.message);

    // The connection and the server both survive the rejection.
    let (id, _) = client
        .submit(
            &JobRequest::scenario(spec("two_stream", 4, 1), Backend::Traditional1D),
            "alice",
        )
        .expect("server still serves");
    client
        .wait_for(&id, Duration::from_millis(5))
        .expect("wait");
    client.drain().expect("drain");
    server.wait();
}

#[test]
fn cancel_finalizes_runs_and_server_keeps_serving() {
    let server = Server::start(ServeConfig::default().max_sessions(1)).expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");

    // Two sizable runs: one active, one queued when the cancel lands.
    let sweep = SweepSpec::grid("two_stream", Scale::Smoke).seeds([1, 2]);
    let job = JobRequest::sweep(sweep, Backend::Traditional1D).with_steps(200_000);
    let (id, runs) = client.submit(&job, "alice").expect("submit");
    assert_eq!(runs, 2);
    let cancelled = client.cancel(&id).expect("cancel");
    assert_eq!(cancelled, 2);

    let doc = client.status(Some(&id)).expect("status");
    let jobs = doc.field("jobs").and_then(Json::as_arr).expect("jobs");
    let runs = jobs[0].field("runs").and_then(Json::as_arr).expect("runs");
    for run in runs {
        assert_eq!(
            run.field("state").and_then(Json::as_str).expect("state"),
            "cancelled"
        );
    }

    // Subsequent jobs still run to completion.
    let (id, _) = client
        .submit(
            &JobRequest::scenario(spec("two_stream", 4, 9), Backend::Traditional1D),
            "alice",
        )
        .expect("submit after cancel");
    let results = client
        .wait_for(&id, Duration::from_millis(5))
        .expect("wait");
    assert_eq!(results[0].state, "done");

    client.drain().expect("drain");
    server.wait();
}

/// With one slot and tenant `a` holding a two-run job, a later one-run
/// job from tenant `b` must finish before `a`'s second run: admission
/// rotates across tenants, not submission order. `finish_seq` makes the
/// order a stored fact rather than a timing guess.
#[test]
fn admission_round_robins_across_tenants() {
    let server = Server::start(ServeConfig::default().max_sessions(1)).expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");

    let sweep_a = SweepSpec::grid("two_stream", Scale::Smoke).seeds([1, 2]);
    let job_a = JobRequest::sweep(sweep_a, Backend::Traditional1D).with_steps(30_000);
    let (id_a, _) = client.submit(&job_a, "a").expect("submit a");
    // Wait until a's first run is admitted so b queues behind a live run.
    loop {
        let doc = client.status(Some(&id_a)).expect("status");
        let state = doc.field("jobs").unwrap().as_arr().unwrap()[0]
            .field("runs")
            .unwrap()
            .as_arr()
            .unwrap()[0]
            .field("state")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        assert_ne!(state, "done", "budget too small for the race window");
        if state == "active" {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let job_b = JobRequest::scenario(spec("two_stream", 30_000, 5), Backend::Traditional1D);
    let (id_b, _) = client.submit(&job_b, "b").expect("submit b");

    client.wait_for(&id_a, Duration::from_millis(5)).expect("a");
    client.wait_for(&id_b, Duration::from_millis(5)).expect("b");

    let seq = |doc: &Json, run: usize| -> u64 {
        doc.field("jobs").unwrap().as_arr().unwrap()[0]
            .field("runs")
            .unwrap()
            .as_arr()
            .unwrap()[run]
            .field("finish_seq")
            .and_then(Json::as_usize)
            .expect("finished runs carry finish_seq") as u64
    };
    let status_a = client.status(Some(&id_a)).expect("status a");
    let status_b = client.status(Some(&id_b)).expect("status b");
    assert!(
        seq(&status_b, 0) < seq(&status_a, 1),
        "tenant b's only run must finish before tenant a's second run \
         (b={}, a[1]={})",
        seq(&status_b, 0),
        seq(&status_a, 1)
    );

    client.drain().expect("drain");
    server.wait();
}

#[test]
fn unix_socket_transport_serves_requests() {
    let path = std::env::temp_dir().join(format!("dlpic-serve-test-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let server = Server::start(ServeConfig::default().listen(format!("unix:{}", path.display())))
        .expect("start on unix socket");
    let mut client = Client::connect(server.addr()).expect("connect");
    let (id, _) = client
        .submit(
            &JobRequest::scenario(spec("two_stream", 4, 1), Backend::Traditional1D),
            "alice",
        )
        .expect("submit");
    let results = client
        .wait_for(&id, Duration::from_millis(5))
        .expect("wait");
    assert_eq!(results[0].state, "done");
    client.drain().expect("drain");
    server.wait();
    let _ = std::fs::remove_file(&path);
}

//! Fixture: suppressions that do not parse. A typo'd `analyze:allow`
//! must surface as a deny finding — never silently suppress nothing.

use std::time::Instant;

pub fn stamp() -> Instant {
    // analyze:allow(no-wallclock-in-engine)
    Instant::now()
}

pub fn stamp_again() -> Instant {
    // analyze:allow(): empty rule name
    Instant::now()
}

//! Landau damping — the second classic kinetic benchmark, via the
//! registry's `landau_damping` scenario on the continuum Vlasov backend.
//!
//! The scenario is a single Maxwellian with `k·λ_D = 0.5` and a quiet
//! mode-1 density perturbation. Linear theory gives the textbook root
//! `ω ≈ 1.4156`, `γ ≈ −0.1533`: the field oscillates at the Langmuir
//! frequency while its envelope decays by collisionless phase mixing —
//! physics no fluid model captures. The same spec runs on the PIC
//! backends too (`Backend::Traditional1D`), where the damping drowns in
//! shot noise — which is exactly the paper §VII's argument for Vlasov
//! training data.
//!
//! ```sh
//! cargo run --release --example landau_damping
//! ```

use dlpic_repro::core::Scale;
use dlpic_repro::engine::{self, Backend, EngineError};

/// Textbook least-damped root of the electrostatic dispersion relation at
/// `k·λ_D = 0.5` (e.g. Chen, *Introduction to Plasma Physics*): ω ± iγ.
const OMEGA_THEORY: f64 = 1.4156;
const GAMMA_THEORY: f64 = -0.1533;

fn main() -> Result<(), EngineError> {
    println!("== Landau damping at k·λ_D = 0.5 (Vlasov backend) ==\n");

    // The registry entry at scaled size: dt = 0.1, 350 steps (t = 35,
    // ~5 damping times), 64×256 phase grid.
    let spec = engine::scenario("landau_damping", Scale::Scaled)?;
    println!(
        "spec: Maxwellian vth = {:.4}, quiet mode-1 seed, dt = {}, {} steps",
        match spec.species {
            engine::SpeciesSpec::Maxwellian { vth } => vth,
            _ => unreachable!(),
        },
        spec.dt,
        spec.n_steps
    );

    let start = std::time::Instant::now();
    let summary = engine::run(&spec, Backend::Vlasov)?;
    println!(
        "ran {} Vlasov steps in {:.2?}\n",
        summary.steps,
        start.elapsed()
    );

    // The envelope: local maxima of |E1|(t). |E| peaks twice per wave
    // period, so ω = π / (peak spacing); γ is the slope of ln(peaks).
    let e1 = summary.history.mode_series(1).expect("mode 1 tracked");
    let (times, amps) = (&e1.times, &e1.values);
    let peaks: Vec<(f64, f64)> = (1..amps.len() - 1)
        .filter(|&i| amps[i] > amps[i - 1] && amps[i] >= amps[i + 1] && amps[i] > 1e-12)
        .map(|i| (times[i], amps[i]))
        .collect();
    assert!(peaks.len() >= 6, "too few envelope peaks: {}", peaks.len());

    // Skip the first few peaks (the cosine perturbation is not a pure
    // eigenmode; its ballistic transient decays faster than the Landau
    // root) and stop before the numerical floor.
    let skip = 3.min(peaks.len() - 6);
    let used = &peaks[skip..peaks.len().min(skip + 10)];
    let n = used.len() as f64;
    let (mut st, mut sy, mut stt, mut sty) = (0.0, 0.0, 0.0, 0.0);
    for &(t, p) in used {
        let y = p.ln();
        st += t;
        sy += y;
        stt += t * t;
        sty += t * y;
    }
    let gamma = (n * sty - st * sy) / (n * stt - st * st);
    let mean_spacing = (used.last().unwrap().0 - used[0].0) / (used.len() as f64 - 1.0);
    let omega = std::f64::consts::PI / mean_spacing;

    println!("measured from the E1 envelope ({} peaks):", used.len());
    println!(
        "  damping rate γ = {gamma:.4}   (theory {GAMMA_THEORY:.4}, {:+.1}%)",
        100.0 * (gamma - GAMMA_THEORY) / GAMMA_THEORY.abs()
    );
    println!(
        "  frequency    ω = {omega:.4}   (theory {OMEGA_THEORY:.4}, {:+.1}%)\n",
        100.0 * (omega - OMEGA_THEORY) / OMEGA_THEORY
    );

    println!("conservation over the damped phase:");
    println!(
        "  energy variation : {:.3}%",
        summary.energy_variation() * 100.0
    );
    println!("  momentum drift   : {:.2e}", summary.momentum_drift());

    let gamma_ok = (gamma - GAMMA_THEORY).abs() / GAMMA_THEORY.abs() < 0.15;
    let omega_ok = (omega - OMEGA_THEORY).abs() / OMEGA_THEORY < 0.05;
    println!(
        "\nverdict: {}",
        if gamma_ok && omega_ok {
            "PASS — collisionless damping at the textbook rate"
        } else {
            "CHECK — outside expected bands"
        }
    );
    Ok(())
}

//! bf16 weight storage and the GEMM/GEMV kernels that consume it.
//!
//! bfloat16 keeps f32's 8-bit exponent and truncates the mantissa to
//! 7 bits — a `u16` holding the upper half of the f32 bit pattern. For
//! inference weights that halves storage and, on the memory-bound
//! DL-solver GEMV shapes (megabytes of weights streamed per solve),
//! halves the bytes the kernel must pull from DRAM. Activations and
//! accumulation stay f32: only the B operand (the weights) is bf16,
//! decoded lane-by-lane inside the kernel.
//!
//! Numerics contract: encoding is round-to-nearest-even, decoding is the
//! exact `(u16 as u32) << 16` bit shift (every bf16 value is exactly
//! representable in f32). Results therefore differ from the f32 kernels
//! by the weight quantization — the engine gates the bf16 path on a
//! *physics* tolerance (growth rate / saturation energy), not
//! bit-identity. Within the bf16 path the kernels keep the f32 path's
//! **row-stability** guarantee: row `i` of an `m`-row [`matmul_nn_bf16`]
//! is bitwise identical for every `m` on a given machine, because every
//! element is one sequential product-sum over `k` with the same
//! contraction in the 8-row zmm tiles, the [`gemv_bf16`] remainder-row
//! kernel and the portable tile/edge paths (no zero-skips anywhere). The
//! ensemble scheduler batches bf16 cohorts under the same contract as
//! f32 ones.

// analyze:hot — bf16 GEMM/GEMV kernels are the reduced-precision
// inference hot path; loop bodies here must stay allocation-free.

/// Rows per register tile of the portable kernel (matches `linalg`).
const MR: usize = 4;
/// Columns per register tile of the portable kernel (matches `linalg`).
const NR: usize = 16;

/// Encodes one f32 as bf16 with round-to-nearest-even.
///
/// NaNs are quieted (the mantissa MSB is forced on) so a truncated NaN
/// cannot collapse to infinity.
#[inline]
pub fn f32_to_bf16(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        return ((bits >> 16) as u16) | 0x0040;
    }
    // Round to nearest even on the truncated 16 bits.
    let round = 0x7fff + ((bits >> 16) & 1);
    ((bits + round) >> 16) as u16
}

/// Decodes one bf16 back to f32 (exact).
#[inline]
pub fn bf16_to_f32(b: u16) -> f32 {
    f32::from_bits((b as u32) << 16)
}

/// Encodes a slice of f32 weights to bf16 (round-to-nearest-even).
pub fn encode_bf16(src: &[f32]) -> Vec<u16> {
    src.iter().map(|&v| f32_to_bf16(v)).collect()
}

/// Decodes a bf16 slice back to f32 (exact).
pub fn decode_bf16(src: &[u16]) -> Vec<f32> {
    src.iter().map(|&b| bf16_to_f32(b)).collect()
}

/// `C = A·B` where A is `m×k` f32, B is `k×n` **bf16**, C is `m×n` f32.
/// C is overwritten. f32 accumulation; B lanes are decoded on the fly.
///
/// Row-stable like [`crate::linalg::matmul_nn`]: row `i` is bitwise
/// identical for every `m` on a given machine (see the module docs).
///
/// # Panics
/// Panics if slice lengths disagree with the dimensions.
pub fn matmul_nn_bf16(a: &[f32], b: &[u16], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A size");
    assert_eq!(b.len(), k * n, "B size");
    assert_eq!(c.len(), m * n, "C size");
    if n == 0 || m == 0 {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if n >= 16 && crate::linalg::avx512_available() {
        let (m8, n16) = (m - m % 8, n - n % 16);
        if m8 > 0 {
            // SAFETY: avx512f was detected and the slice sizes were
            // asserted.
            unsafe { avx512::nn_main_bf16(a, b, c, m, k, n) };
        }
        // Remainder rows run the GEMV kernel; its per-element FMA chains
        // match the 8-row tiles exactly (row stability).
        for i in m8..m {
            // SAFETY: avx512f was detected and the row slices have the
            // lengths gemv_main_bf16 requires (asserted above).
            unsafe {
                avx512::gemv_main_bf16(&a[i * k..(i + 1) * k], b, &mut c[i * n..(i + 1) * n], n)
            };
        }
        if n16 < n {
            for i in 0..m {
                edge_rows_bf16(a, b, &mut c[i * n..(i + 1) * n], i, 1, k, n, n16);
            }
        }
        return;
    }
    matmul_nn_bf16_portable(a, b, c, m, k, n);
}

/// `c = a·B` for one row with bf16 weights — the batch-1 inference shape.
/// Equivalent to `matmul_nn_bf16(a, b, c, 1, k, n)`.
///
/// # Panics
/// Panics if slice lengths disagree with the dimensions.
pub fn gemv_bf16(a: &[f32], b: &[u16], c: &mut [f32], k: usize, n: usize) {
    matmul_nn_bf16(a, b, c, 1, k, n);
}

/// The portable register-tiled path of [`matmul_nn_bf16`] — public so
/// equivalence tests can pin the AVX-512 path against it.
///
/// # Panics
/// Panics if slice lengths disagree with the dimensions.
pub fn matmul_nn_bf16_portable(a: &[f32], b: &[u16], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A size");
    assert_eq!(b.len(), k * n, "B size");
    assert_eq!(c.len(), m * n, "C size");
    if n == 0 || m == 0 {
        return;
    }
    let main_n = n - n % NR;
    let mut i0 = 0;
    for c_block in c.chunks_mut(MR * n) {
        let rows = c_block.len() / n;
        if rows == MR {
            let a_rows: [&[f32]; MR] = [
                &a[i0 * k..(i0 + 1) * k],
                &a[(i0 + 1) * k..(i0 + 2) * k],
                &a[(i0 + 2) * k..(i0 + 3) * k],
                &a[(i0 + 3) * k..(i0 + 4) * k],
            ];
            let mut j0 = 0;
            while j0 < main_n {
                let mut acc = [[0.0f32; NR]; MR];
                for kk in 0..k {
                    let braw: &[u16; NR] = b[kk * n + j0..kk * n + j0 + NR].try_into().unwrap();
                    let mut bb = [0.0f32; NR];
                    for (bv, &raw) in bb.iter_mut().zip(braw) {
                        *bv = bf16_to_f32(raw);
                    }
                    for r in 0..MR {
                        let av = a_rows[r][kk];
                        for (ac, &bv) in acc[r].iter_mut().zip(&bb) {
                            *ac += av * bv;
                        }
                    }
                }
                for (r, acc_row) in acc.iter().enumerate() {
                    c_block[r * n + j0..r * n + j0 + NR].copy_from_slice(acc_row);
                }
                j0 += NR;
            }
            if main_n < n {
                edge_rows_bf16(a, b, c_block, i0, rows, k, n, main_n);
            }
        } else {
            edge_rows_bf16(a, b, c_block, i0, rows, k, n, 0);
        }
        i0 += rows;
    }
}

/// Edge path of the portable kernel (`C_row += a_ik·B_row`), restricted
/// to columns `j_start..n`. No zero-skip: every element must be the same
/// sequential chain as the tile path for row stability.
#[allow(clippy::too_many_arguments)]
fn edge_rows_bf16(
    a: &[f32],
    b: &[u16],
    c_block: &mut [f32],
    i0: usize,
    rows: usize,
    k: usize,
    n: usize,
    j_start: usize,
) {
    for r in 0..rows {
        let c_row = &mut c_block[r * n + j_start..r * n + n];
        c_row.fill(0.0);
        let a_row = &a[(i0 + r) * k..(i0 + r + 1) * k];
        for (kk, &aik) in a_row.iter().enumerate() {
            let b_row = &b[kk * n + j_start..kk * n + n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += aik * bf16_to_f32(bv);
            }
        }
    }
}

/// The explicit AVX-512 bf16 micro-kernels: the f32 tiles of
/// `linalg::avx512` with the B loads widened from bf16 on the fly
/// (`vpmovzxwd` + shift-left 16 reinterpreted as packed f32 — the exact
/// decode). Every output element is one sequential FMA chain over `k` in
/// the same order in both kernels, which is what keeps
/// [`matmul_nn_bf16`] row-stable across batch sizes.
#[cfg(target_arch = "x86_64")]
mod avx512 {
    use std::arch::x86_64::*;

    /// Loads 16 bf16 lanes at `p` and widens them to packed f32.
    ///
    /// # Safety
    /// `avx512f` must be available and `p..p+16` must be in bounds.
    #[target_feature(enable = "avx512f")]
    #[inline]
    unsafe fn load_bf16x16(p: *const u16) -> __m512 {
        let raw = _mm256_loadu_si256(p as *const __m256i);
        _mm512_castsi512_ps(_mm512_slli_epi32(_mm512_cvtepu16_epi32(raw), 16))
    }

    /// `C = A·B` main region with bf16 B: rows `0..m - m%8`, columns
    /// `0..n - n%16`, in 8×32 (and one trailing 8×16) zmm tiles.
    ///
    /// # Safety
    /// `avx512f` must be available and the slices must satisfy the
    /// [`super::matmul_nn_bf16`] size contract.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn nn_main_bf16(a: &[f32], b: &[u16], c: &mut [f32], m: usize, k: usize, n: usize) {
        let (ap, bp, cp) = (a.as_ptr(), b.as_ptr(), c.as_mut_ptr());
        let (m8, n16, n32) = (m - m % 8, n - n % 16, n - n % 32);
        let mut i0 = 0;
        while i0 < m8 {
            let mut j0 = 0;
            while j0 < n32 {
                let mut acc0 = [_mm512_setzero_ps(); 8];
                let mut acc1 = [_mm512_setzero_ps(); 8];
                for kk in 0..k {
                    let b0 = load_bf16x16(bp.add(kk * n + j0));
                    let b1 = load_bf16x16(bp.add(kk * n + j0 + 16));
                    for r in 0..8 {
                        let av = _mm512_set1_ps(*ap.add((i0 + r) * k + kk));
                        acc0[r] = _mm512_fmadd_ps(av, b0, acc0[r]);
                        acc1[r] = _mm512_fmadd_ps(av, b1, acc1[r]);
                    }
                }
                for r in 0..8 {
                    _mm512_storeu_ps(cp.add((i0 + r) * n + j0), acc0[r]);
                    _mm512_storeu_ps(cp.add((i0 + r) * n + j0 + 16), acc1[r]);
                }
                j0 += 32;
            }
            if j0 < n16 {
                let mut acc = [_mm512_setzero_ps(); 8];
                for kk in 0..k {
                    let b0 = load_bf16x16(bp.add(kk * n + j0));
                    for (r, ac) in acc.iter_mut().enumerate() {
                        let av = _mm512_set1_ps(*ap.add((i0 + r) * k + kk));
                        *ac = _mm512_fmadd_ps(av, b0, *ac);
                    }
                }
                for (r, ac) in acc.iter().enumerate() {
                    _mm512_storeu_ps(cp.add((i0 + r) * n + j0), *ac);
                }
            }
            i0 += 8;
        }
    }

    /// One-row bf16 GEMV main region: columns `0..n - n%16` of `c = a·B`,
    /// `k`-outer / `j`-inner so the bf16 weight row streams contiguously
    /// at half the f32 byte traffic. The accumulator row lives in `c`
    /// (L1-resident); every element is one FMA chain over ascending `kk`
    /// identical to a row of [`nn_main_bf16`]'s tiles. No zero-skip, for
    /// the same reason as the f32 kernel.
    ///
    /// # Safety
    /// `avx512f` must be available, `a.len() == k`, `b.len() == k·n`,
    /// `c.len() == n`, and `n >= 16`.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn gemv_main_bf16(a: &[f32], b: &[u16], c: &mut [f32], n: usize) {
        let k = a.len();
        let (ap, bp, cp) = (a.as_ptr(), b.as_ptr(), c.as_mut_ptr());
        let (n16, n64) = (n - n % 16, n - n % 64);
        let mut j = 0;
        while j < n16 {
            _mm512_storeu_ps(cp.add(j), _mm512_setzero_ps());
            j += 16;
        }
        for kk in 0..k {
            let av = _mm512_set1_ps(*ap.add(kk));
            let brow = bp.add(kk * n);
            let mut j = 0;
            // 64 columns per iteration: four independent FMA chains in
            // flight while the bf16 row streams.
            while j < n64 {
                let c0 = _mm512_fmadd_ps(av, load_bf16x16(brow.add(j)), _mm512_loadu_ps(cp.add(j)));
                let c1 = _mm512_fmadd_ps(
                    av,
                    load_bf16x16(brow.add(j + 16)),
                    _mm512_loadu_ps(cp.add(j + 16)),
                );
                let c2 = _mm512_fmadd_ps(
                    av,
                    load_bf16x16(brow.add(j + 32)),
                    _mm512_loadu_ps(cp.add(j + 32)),
                );
                let c3 = _mm512_fmadd_ps(
                    av,
                    load_bf16x16(brow.add(j + 48)),
                    _mm512_loadu_ps(cp.add(j + 48)),
                );
                _mm512_storeu_ps(cp.add(j), c0);
                _mm512_storeu_ps(cp.add(j + 16), c1);
                _mm512_storeu_ps(cp.add(j + 32), c2);
                _mm512_storeu_ps(cp.add(j + 48), c3);
                j += 64;
            }
            while j < n16 {
                let c0 = _mm512_fmadd_ps(av, load_bf16x16(brow.add(j)), _mm512_loadu_ps(cp.add(j)));
                _mm512_storeu_ps(cp.add(j), c0);
                j += 16;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::matmul_naive;

    fn gen(len: usize, s: u64) -> Vec<f32> {
        (0..len)
            .map(|i| (((i as u64 + s) * 2654435761 % 1000) as f32 / 500.0) - 1.0)
            .collect()
    }

    #[test]
    fn round_trip_is_exact_for_bf16_values() {
        for v in [0.0f32, -0.0, 1.0, -1.0, 0.5, 1.5, f32::INFINITY, 65280.0] {
            assert_eq!(bf16_to_f32(f32_to_bf16(v)).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn encode_rounds_to_nearest_even() {
        // 1.0 + 2^-8 sits exactly between bf16(1.0) and the next value
        // up; nearest-even rounds down to 1.0.
        let half_ulp = f32::from_bits(0x3f80_8000);
        assert_eq!(bf16_to_f32(f32_to_bf16(half_ulp)), 1.0);
        // A hair above the midpoint rounds up.
        let above = f32::from_bits(0x3f80_8001);
        assert_eq!(bf16_to_f32(f32_to_bf16(above)), f32::from_bits(0x3f81_0000));
        // Midpoint with odd low bit rounds up to even.
        let odd_mid = f32::from_bits(0x3f81_8000);
        assert_eq!(
            bf16_to_f32(f32_to_bf16(odd_mid)),
            f32::from_bits(0x3f82_0000)
        );
    }

    #[test]
    fn nan_encoding_stays_nan() {
        assert!(bf16_to_f32(f32_to_bf16(f32::NAN)).is_nan());
        // A signaling-pattern NaN whose payload lives only in the low
        // mantissa bits must not truncate to infinity.
        let low_payload_nan = f32::from_bits(0x7f80_0001);
        assert!(bf16_to_f32(f32_to_bf16(low_payload_nan)).is_nan());
    }

    #[test]
    fn matmul_matches_oracle_on_decoded_weights() {
        // The bf16 product must equal the f32 product of the *decoded*
        // weights (quantization is in the encode, not the kernel).
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 2),
            (5, 17, 18),
            (8, 72, 64),
            (9, 8, 17),
            (13, 21, 19),
            (1, 100, 37),
        ] {
            let a = gen(m * k, 5);
            let b16 = encode_bf16(&gen(k * n, 9));
            let b32 = decode_bf16(&b16);
            let mut c = vec![0.0f32; m * n];
            matmul_nn_bf16(&a, &b16, &mut c, m, k, n);
            let oracle = matmul_naive(&a, &b32, m, k, n);
            for (i, (x, y)) in c.iter().zip(&oracle).enumerate() {
                assert!(
                    (x - y).abs() <= 1e-4 * (1.0 + x.abs().max(y.abs())),
                    "m={m} k={k} n={n} elem {i}: {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn rows_bit_identical_across_batch_sizes() {
        // The same contract as the f32 kernels: batching m rows must
        // reproduce each solo row bit-for-bit, so bf16 cohorts batch
        // under the ensemble scheduler like f32 ones.
        for &(k, n) in &[(48usize, 64usize), (37, 50), (64, 16), (20, 7), (100, 33)] {
            const M_MAX: usize = 13;
            let a = gen(M_MAX * k, 3);
            let b = encode_bf16(&gen(k * n, 7));
            let mut solo = vec![0.0f32; M_MAX * n];
            for i in 0..M_MAX {
                gemv_bf16(
                    &a[i * k..(i + 1) * k],
                    &b,
                    &mut solo[i * n..(i + 1) * n],
                    k,
                    n,
                );
            }
            for m in [1usize, 2, 3, 5, 8, 9, 12, 13] {
                let mut c = vec![0.0f32; m * n];
                matmul_nn_bf16(&a[..m * k], &b, &mut c, m, k, n);
                for (i, (x, y)) in c.iter().zip(&solo[..m * n]).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "k={k} n={n} m={m} elem {i}: batched {x} != solo {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn avx512_path_matches_portable_kernel() {
        if !crate::linalg::avx512_available() {
            eprintln!("skipping: no avx512f on this machine");
            return;
        }
        for &(m, k, n) in &[(8usize, 72usize, 256usize), (16, 9, 48), (9, 17, 35)] {
            let a = gen(m * k, 3);
            let b = encode_bf16(&gen(k * n, 7));
            let mut fast = vec![0.0f32; m * n];
            let mut portable = vec![0.0f32; m * n];
            matmul_nn_bf16(&a, &b, &mut fast, m, k, n);
            matmul_nn_bf16_portable(&a, &b, &mut portable, m, k, n);
            for (i, (x, y)) in fast.iter().zip(&portable).enumerate() {
                assert!(
                    (x - y).abs() <= 1e-5 * (1.0 + x.abs().max(y.abs())),
                    "elem {i}: {x} vs {y}"
                );
            }
        }
    }
}

//! **Table I** — "MAE and maximum error with each network".
//!
//! Trains the paper's MLP and CNN on the two-stream sweep and reports Mean
//! Absolute Error and max error on Test Set I (seen parameters) and Test
//! Set II (unseen parameters). Paper reference values (max E ≈ 0.1):
//!
//! ```text
//! Metric               Test Set   MLP       CNN
//! Mean Absolute Error  I          0.0019    0.0020
//! Max Error            I          0.06899   0.0463
//! Mean Absolute Error  II         0.0015    0.0032
//! Max Error            II         0.0286    0.073
//! ```
//!
//! Run: `cargo run -p dlpic-bench --release --bin table1 [--scale ...]`

use dlpic_analytics::series::Table;
use dlpic_bench::{models_dir, out_dir, prepare_data, train_arch, Cli};
use dlpic_core::phase_space::BinningShape;
use dlpic_dataset::stats;
use dlpic_nn::loss::Mse;

fn main() {
    let cli = Cli::parse();
    let scale = cli.scale;
    println!(
        "== Table I: MAE and maximum error with each network [{} scale] ==\n",
        scale.name()
    );

    let t0 = std::time::Instant::now();
    eprintln!("generating datasets (traditional PIC sweep)...");
    let data = prepare_data(scale, BinningShape::Ngp, true);
    eprintln!(
        "\ndataset ready in {:.1?}: {} train / {} val / {} test-I / {} test-II\n{}",
        t0.elapsed(),
        data.train.len(),
        data.val.len(),
        data.test1.len(),
        data.test2.len(),
        stats::summary(&data.train)
    );

    eprintln!("training MLP ({} epochs)...", scale.mlp_epochs());
    let mlp = train_arch(
        &scale.mlp_arch(),
        &data,
        &Mse,
        scale.mlp_epochs(),
        scale.learning_rate(),
        0xD1,
        5,
    );
    eprintln!(
        "MLP done in {:.1}s (final train loss {:.3e})\n",
        mlp.history.seconds,
        mlp.history.final_loss().unwrap_or(f64::NAN)
    );
    mlp.bundle
        .save(models_dir().join(format!("mlp-{}.dlpb", scale.name())))
        .expect("save mlp");

    eprintln!("training CNN ({} epochs)...", scale.cnn_epochs());
    let cnn = train_arch(
        &scale.cnn_arch(),
        &data,
        &Mse,
        scale.cnn_epochs(),
        scale.learning_rate(),
        0xC1,
        2,
    );
    eprintln!(
        "CNN done in {:.1}s (final train loss {:.3e})\n",
        cnn.history.seconds,
        cnn.history.final_loss().unwrap_or(f64::NAN)
    );
    cnn.bundle
        .save(models_dir().join(format!("cnn-{}.dlpb", scale.name())))
        .expect("save cnn");

    let fmt = |v: f32| format!("{v:.5}");
    let mut table = Table::new(&["Metric", "Test Set", "MLP", "CNN"]);
    table.row(&[
        "Mean Absolute Error".into(),
        "I".into(),
        fmt(mlp.mae1),
        fmt(cnn.mae1),
    ]);
    table.row(&["Max Error".into(), "I".into(), fmt(mlp.max1), fmt(cnn.max1)]);
    table.row(&[
        "Mean Absolute Error".into(),
        "II".into(),
        fmt(mlp.mae2),
        fmt(cnn.mae2),
    ]);
    table.row(&[
        "Max Error".into(),
        "II".into(),
        fmt(mlp.max2),
        fmt(cnn.max2),
    ]);
    println!("{}", table.render());
    println!(
        "reference max |E| in the dataset: {:.4} (paper: ~0.1)\n",
        data.train.max_abs_field()
    );

    println!("paper values: MLP 0.0019/0.06899 (I), 0.0015/0.0286 (II);");
    println!("              CNN 0.0020/0.0463 (I), 0.0032/0.073 (II)\n");

    let csv_path = out_dir().join(format!("table1-{}.csv", scale.name()));
    std::fs::write(&csv_path, table.to_csv()).expect("write table CSV");
    println!("wrote {}", csv_path.display());

    // Shape checks the paper emphasizes: errors are small relative to the
    // field scale, and the CNN degrades on unseen parameters more than the
    // MLP does.
    let field_scale = data.train.max_abs_field();
    let verdict_small = mlp.mae1 < 0.1 * field_scale && cnn.mae1 < 0.1 * field_scale;
    let verdict_cnn_gap = cnn.mae2 > cnn.mae1;
    println!(
        "shape check: MAE << max|E| : {}   CNN set-II degradation: {}",
        if verdict_small { "PASS" } else { "CHECK" },
        if verdict_cnn_gap {
            "PASS"
        } else {
            "CHECK (paper saw CNN worsen on unseen params)"
        },
    );
}

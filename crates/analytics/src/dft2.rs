//! Two-dimensional discrete Fourier transforms on row-major grids.
//!
//! Used by the 2-D Poisson solver of `dlpic-pic2d` (the paper's §VII
//! "extend the method to study two- and three-dimensional systems") and by
//! the 2-D field diagnostics. The transform is separable: a radix-2 FFT
//! over every row followed by one over every column.

use crate::complex::Complex64;
use crate::dft::{fft_in_place, ifft_in_place, is_power_of_two};

/// In-place 2-D FFT of a row-major `ny × nx` array (`data[iy * nx + ix]`).
///
/// # Panics
/// Panics when `data.len() != nx * ny` or either dimension is not a power
/// of two.
pub fn fft2_in_place(data: &mut [Complex64], nx: usize, ny: usize) {
    let mut col = Vec::new();
    fft2_in_place_scratch(data, nx, ny, &mut col);
}

/// [`fft2_in_place`] with a caller-owned column scratch (grown to `ny` on
/// first use) so repeated transforms perform no allocation — the per-step
/// path of the 2-D spectral Poisson solver.
pub fn fft2_in_place_scratch(
    data: &mut [Complex64],
    nx: usize,
    ny: usize,
    col: &mut Vec<Complex64>,
) {
    check_dims(data.len(), nx, ny);
    // Rows are contiguous.
    for row in data.chunks_exact_mut(nx) {
        fft_in_place(row);
    }
    transform_columns(data, nx, ny, fft_in_place, col);
}

/// In-place inverse 2-D FFT (normalized so that `ifft2(fft2(a)) == a`).
///
/// # Panics
/// Panics on dimension mismatch or non-power-of-two sizes.
pub fn ifft2_in_place(data: &mut [Complex64], nx: usize, ny: usize) {
    let mut col = Vec::new();
    ifft2_in_place_scratch(data, nx, ny, &mut col);
}

/// [`ifft2_in_place`] with a caller-owned column scratch (see
/// [`fft2_in_place_scratch`]).
pub fn ifft2_in_place_scratch(
    data: &mut [Complex64],
    nx: usize,
    ny: usize,
    col: &mut Vec<Complex64>,
) {
    check_dims(data.len(), nx, ny);
    for row in data.chunks_exact_mut(nx) {
        ifft_in_place(row);
    }
    transform_columns(data, nx, ny, ifft_in_place, col);
}

/// Forward 2-D DFT of a real row-major array.
pub fn rdft2(signal: &[f64], nx: usize, ny: usize) -> Vec<Complex64> {
    check_dims(signal.len(), nx, ny);
    let mut data: Vec<Complex64> = signal.iter().map(|&v| Complex64::new(v, 0.0)).collect();
    fft2_in_place(&mut data, nx, ny);
    data
}

/// Amplitude of the real-signal mode `(mx, my)`: the coefficient of
/// `exp(i·2π(mx·x/Lx + my·y/Ly))` plus its conjugate partner, i.e.
/// `2·|F[my·nx + mx]| / (nx·ny)` for any mode other than the mean
/// (and Nyquist pairs), `|F|/(nx·ny)` for the mean.
///
/// # Panics
/// Panics on dimension mismatch or out-of-range mode indices.
pub fn mode_amplitude2(signal: &[f64], nx: usize, ny: usize, mx: usize, my: usize) -> f64 {
    assert!(mx < nx, "mx {mx} out of range for nx {nx}");
    assert!(my < ny, "my {my} out of range for ny {ny}");
    let norm = (nx * ny) as f64;
    let coeff = single_mode_dft2(signal, nx, ny, mx, my).abs() / norm;
    // The conjugate of mode (mx,my) of a real signal sits at
    // (nx-mx, ny-my); when the mode is its own conjugate (mean or a
    // Nyquist pairing) the coefficient is already the full amplitude.
    let self_conjugate = (mx == 0 || 2 * mx == nx) && (my == 0 || 2 * my == ny);
    if self_conjugate {
        coeff
    } else {
        2.0 * coeff
    }
}

/// Single 2-D DFT bin `F[my·nx + mx] = Σ_y Σ_x f·exp(-2πi(mx·x/nx + my·y/ny))`
/// of a real row-major array — O(nx·ny), allocation-free. Each row is
/// reduced with the 1-D Goertzel projection, then the per-row bins are
/// combined with the y-phase. This is what the per-step 2-D mode
/// diagnostics use instead of a full transform.
///
/// # Panics
/// Panics when `signal.len() != nx * ny` (any sizes are accepted — no
/// power-of-two requirement).
pub fn single_mode_dft2(signal: &[f64], nx: usize, ny: usize, mx: usize, my: usize) -> Complex64 {
    assert_eq!(signal.len(), nx * ny, "array length != {nx}×{ny}");
    let omega_y = 2.0 * std::f64::consts::PI * my as f64 / ny as f64;
    let mut acc = Complex64::ZERO;
    for (iy, row) in signal.chunks_exact(nx).enumerate() {
        let row_bin = crate::dft::single_mode_dft(row, mx);
        let (sin_y, cos_y) = (omega_y * iy as f64).sin_cos();
        acc += row_bin * Complex64::new(cos_y, -sin_y);
    }
    acc
}

fn check_dims(len: usize, nx: usize, ny: usize) {
    assert_eq!(len, nx * ny, "array length {len} != {nx}×{ny}");
    assert!(is_power_of_two(nx), "nx = {nx} must be a power of two");
    assert!(is_power_of_two(ny), "ny = {ny} must be a power of two");
}

/// Applies a 1-D in-place transform to every column via the caller's
/// scratch buffer (resized to `ny`; no allocation once warm).
fn transform_columns(
    data: &mut [Complex64],
    nx: usize,
    ny: usize,
    f: fn(&mut [Complex64]),
    col: &mut Vec<Complex64>,
) {
    col.clear();
    col.resize(ny, Complex64::ZERO);
    for ix in 0..nx {
        for iy in 0..ny {
            col[iy] = data[iy * nx + ix];
        }
        f(col);
        for iy in 0..ny {
            data[iy * nx + ix] = col[iy];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::PI;

    #[test]
    fn fft2_of_constant_is_dc_only() {
        let nx = 8;
        let ny = 4;
        let mut data = vec![Complex64::new(3.0, 0.0); nx * ny];
        fft2_in_place(&mut data, nx, ny);
        assert!((data[0].re - 3.0 * (nx * ny) as f64).abs() < 1e-9);
        for (i, v) in data.iter().enumerate().skip(1) {
            assert!(v.abs() < 1e-9, "bin {i}: {v:?}");
        }
    }

    #[test]
    fn round_trip_recovers_signal() {
        let nx = 16;
        let ny = 8;
        let signal: Vec<f64> = (0..nx * ny)
            .map(|i| ((i * 37 + 11) % 101) as f64 / 101.0 - 0.5)
            .collect();
        let mut data: Vec<Complex64> = signal.iter().map(|&v| Complex64::new(v, 0.0)).collect();
        fft2_in_place(&mut data, nx, ny);
        ifft2_in_place(&mut data, nx, ny);
        for (orig, back) in signal.iter().zip(&data) {
            assert!((orig - back.re).abs() < 1e-10);
            assert!(back.im.abs() < 1e-10);
        }
    }

    #[test]
    fn planted_plane_wave_lands_in_single_bin() {
        let nx = 16;
        let ny = 16;
        let (mx, my) = (3, 5);
        let signal: Vec<f64> = (0..nx * ny)
            .map(|i| {
                let (ix, iy) = (i % nx, i / nx);
                (2.0 * PI * (mx * ix) as f64 / nx as f64 + 2.0 * PI * (my * iy) as f64 / ny as f64)
                    .cos()
            })
            .collect();
        let amp = mode_amplitude2(&signal, nx, ny, mx, my);
        assert!((amp - 1.0).abs() < 1e-9, "amplitude {amp}");
        // An untouched mode stays empty.
        assert!(mode_amplitude2(&signal, nx, ny, 1, 0) < 1e-9);
    }

    #[test]
    fn mode_amplitude_of_mean_is_unscaled() {
        let signal = vec![2.5; 8 * 8];
        assert!((mode_amplitude2(&signal, 8, 8, 0, 0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn separable_modes_in_x_match_1d_result() {
        // A y-independent signal: every row identical. The (m, 0)
        // amplitude must equal the 1-D mode amplitude of one row.
        let nx = 32;
        let ny = 8;
        let row: Vec<f64> = (0..nx)
            .map(|ix| 0.07 * (2.0 * PI * 2.0 * ix as f64 / nx as f64).sin())
            .collect();
        let mut signal = Vec::with_capacity(nx * ny);
        for _ in 0..ny {
            signal.extend_from_slice(&row);
        }
        let amp2 = mode_amplitude2(&signal, nx, ny, 2, 0);
        let amp1 = crate::dft::mode_amplitude(&row, 2);
        assert!((amp2 - amp1).abs() < 1e-12, "{amp2} vs {amp1}");
        assert!((amp2 - 0.07).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut data = vec![Complex64::ZERO; 12];
        fft2_in_place(&mut data, 3, 4);
    }

    #[test]
    fn single_bin_matches_full_transform() {
        let (nx, ny) = (16, 8);
        let signal: Vec<f64> = (0..nx * ny)
            .map(|i| ((i * 53 + 17) % 97) as f64 / 97.0 - 0.5)
            .collect();
        let spec = rdft2(&signal, nx, ny);
        for my in 0..ny {
            for mx in 0..nx {
                let bin = single_mode_dft2(&signal, nx, ny, mx, my);
                let full = spec[my * nx + mx];
                assert!(
                    (bin - full).abs() < 1e-9,
                    "({mx},{my}): {bin:?} vs {full:?}"
                );
            }
        }
    }

    #[test]
    fn single_bin_works_on_non_power_of_two_grids() {
        // The projection has no power-of-two requirement, unlike the FFT.
        let (nx, ny) = (12, 6);
        let signal: Vec<f64> = (0..nx * ny).map(|i| (i as f64 * 0.7).cos()).collect();
        let input: Vec<Complex64> = signal.iter().map(|&v| Complex64::new(v, 0.0)).collect();
        // Oracle: naive 2-D DFT assembled from row DFTs.
        let (mx, my) = (5, 2);
        let mut oracle = Complex64::ZERO;
        for iy in 0..ny {
            let row = &input[iy * nx..(iy + 1) * nx];
            let row_dft = crate::dft::dft_naive(row);
            let ang = -2.0 * PI * (my * iy) as f64 / ny as f64;
            oracle += row_dft[mx] * Complex64::from_polar(1.0, ang);
        }
        let bin = single_mode_dft2(&signal, nx, ny, mx, my);
        assert!((bin - oracle).abs() < 1e-9, "{bin:?} vs {oracle:?}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn parseval_holds_in_2d(values in proptest::collection::vec(-1.0f64..1.0, 64)) {
            let (nx, ny) = (8, 8);
            let time_energy: f64 = values.iter().map(|v| v * v).sum();
            let spec = rdft2(&values, nx, ny);
            let freq_energy: f64 =
                spec.iter().map(|c| c.norm_sqr()).sum::<f64>() / (nx * ny) as f64;
            prop_assert!((time_energy - freq_energy).abs() < 1e-8 * (1.0 + time_energy));
        }

        #[test]
        fn linearity(a in proptest::collection::vec(-1.0f64..1.0, 32),
                     b in proptest::collection::vec(-1.0f64..1.0, 32)) {
            let (nx, ny) = (8, 4);
            let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
            let fa = rdft2(&a, nx, ny);
            let fb = rdft2(&b, nx, ny);
            let fs = rdft2(&sum, nx, ny);
            for i in 0..nx * ny {
                let lhs = fs[i];
                let rhs = fa[i] + fb[i];
                prop_assert!((lhs - rhs).abs() < 1e-9);
            }
        }
    }
}

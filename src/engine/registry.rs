//! The named scenario registry: every classic experiment of this
//! reproduction as a ready-made [`ScenarioSpec`], sized by [`Scale`].
//!
//! | name            | physics                                            |
//! |-----------------|----------------------------------------------------|
//! | `two_stream`    | the paper's validation run (Figs. 4–5)             |
//! | `two_stream_2d` | the §VII two-dimensional extension                 |
//! | `landau_damping`| collisionless damping at `k·λ_D = 0.5`             |
//! | `cold_beam`     | the linearly *stable* cold-beam stress (Fig. 6)    |
//! | `bump_on_tail`  | gentle-bump beam–plasma instability                |
//! | `thermal_noise` | quiescent Maxwellian: fluctuation floor, no growth |
//! | `warm_two_stream` | two-stream with thermal spread (Vlasov-friendly) |
//! | `ion_acoustic`  | drifting Maxwellian carrying a seeded density wave |
//!
//! All entries reuse the paper's standard domains
//! ([`DomainSpec::paper_1d`], [`DomainSpec::default_2d`]) and the
//! `pic`/`pic2d` loading machinery underneath.
//!
//! For parameter sweeps, [`sweep_params`] lists the numeric knobs each
//! scenario exposes and [`apply_sweep_param`] applies one by name —
//! `engine::ensemble::SweepSpec` consumes both to expand grids of specs.

use super::error::EngineError;
use super::spec::{DomainSpec, LoadingSpec, ScenarioSpec, SpeciesSpec};
use crate::core::presets::Scale;
use crate::pic::constants;

/// Names this registry serves, in canonical order.
pub const SCENARIO_NAMES: [&str; 8] = [
    "two_stream",
    "two_stream_2d",
    "landau_damping",
    "cold_beam",
    "bump_on_tail",
    "thermal_noise",
    "warm_two_stream",
    "ion_acoustic",
];

/// The names this registry serves, as an enumerable slice — use this (or
/// [`all_scenarios`]) to iterate the catalogue instead of guessing
/// strings; [`EngineError::UnknownScenario`] carries the same list in its
/// suggestions.
pub fn names() -> &'static [&'static str] {
    &SCENARIO_NAMES
}

/// Particles-per-cell / step-count sizing per scale for 1-D entries.
fn size_1d(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Smoke => (60, 30),
        Scale::Scaled => (500, constants::PAPER_NSTEPS),
        Scale::Paper => (constants::PAPER_PARTICLES_PER_CELL, constants::PAPER_NSTEPS),
    }
}

/// Particles-per-cell / step-count sizing per scale for 2-D entries.
fn size_2d(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Smoke => (16, 25),
        Scale::Scaled => (64, 150),
        Scale::Paper => (128, 200),
    }
}

/// Builds the named scenario at the given scale.
pub fn scenario(name: &str, scale: Scale) -> Result<ScenarioSpec, EngineError> {
    let (ppc, n_steps) = size_1d(scale);
    let spec = match name {
        "two_stream" => ScenarioSpec {
            name: name.into(),
            domain: DomainSpec::paper_1d(),
            species: SpeciesSpec::TwoStream {
                v0: constants::PAPER_VALIDATION_V0,
                vth: constants::PAPER_VALIDATION_VTH,
            },
            loading: LoadingSpec::Random,
            scale,
            ppc,
            dt: constants::PAPER_DT,
            n_steps,
            seed: 20210705,
            tracked_modes: vec![1, 2, 3],
        },
        "two_stream_2d" => {
            let (ppc2, steps2) = size_2d(scale);
            ScenarioSpec {
                name: name.into(),
                domain: DomainSpec::default_2d(),
                species: SpeciesSpec::TwoStream { v0: 0.2, vth: 0.0 },
                loading: LoadingSpec::Quiet {
                    mode: 1,
                    amplitude: 1e-3,
                },
                scale,
                ppc: ppc2,
                dt: constants::PAPER_DT,
                n_steps: steps2,
                seed: 11,
                tracked_modes: vec![1, 2],
            }
        }
        "landau_damping" => {
            // k·λ_D = 0.5 at the box's fundamental: vth = 0.5/k₁.
            let vth = 0.5 / constants::PAPER_K1;
            ScenarioSpec {
                name: name.into(),
                domain: DomainSpec::paper_1d(),
                species: SpeciesSpec::Maxwellian { vth },
                loading: LoadingSpec::Quiet {
                    mode: 1,
                    amplitude: 1e-3,
                },
                scale,
                ppc,
                // Resolve the ω ≈ 1.4 Langmuir oscillation.
                dt: 0.1,
                n_steps: match scale {
                    Scale::Smoke => 40,
                    Scale::Scaled => 350,
                    Scale::Paper => 700,
                },
                seed: 42,
                tracked_modes: vec![1, 2],
            }
        }
        "cold_beam" => ScenarioSpec {
            name: name.into(),
            domain: DomainSpec::paper_1d(),
            species: SpeciesSpec::TwoStream {
                v0: constants::PAPER_COLD_BEAM_V0,
                vth: 0.0,
            },
            loading: LoadingSpec::Random,
            scale,
            ppc,
            dt: constants::PAPER_DT,
            n_steps,
            seed: 13,
            tracked_modes: vec![1, 2, 3],
        },
        "bump_on_tail" => ScenarioSpec {
            name: name.into(),
            domain: DomainSpec::paper_1d(),
            // Gentle bump: 10% of the density drifting at 3× the resonant
            // spread of the bulk — unstable to waves resonant with the
            // beam's leading edge.
            species: SpeciesSpec::BumpOnTail {
                bulk_vth: 0.05,
                beam_v: 0.3,
                beam_vth: 0.02,
                beam_fraction: 0.1,
            },
            loading: LoadingSpec::Random,
            scale,
            ppc,
            dt: constants::PAPER_DT,
            n_steps,
            seed: 17,
            tracked_modes: vec![1, 2, 3],
        },
        "thermal_noise" => ScenarioSpec {
            name: name.into(),
            domain: DomainSpec::paper_1d(),
            species: SpeciesSpec::Maxwellian { vth: 0.05 },
            loading: LoadingSpec::Random,
            scale,
            ppc,
            dt: constants::PAPER_DT,
            n_steps,
            seed: 23,
            tracked_modes: vec![1],
        },
        "warm_two_stream" => ScenarioSpec {
            name: name.into(),
            domain: DomainSpec::paper_1d(),
            // The paper's validation drift with a finite thermal spread:
            // the instability still grows (v0 ≫ vth) but f is smooth
            // enough for the continuum backend (vth ≥ its 0.01 floor),
            // so sweeps can include Vlasov cross-checks.
            species: SpeciesSpec::TwoStream {
                v0: constants::PAPER_VALIDATION_V0,
                vth: 0.02,
            },
            loading: LoadingSpec::Random,
            scale,
            ppc,
            dt: constants::PAPER_DT,
            n_steps,
            seed: 29,
            tracked_modes: vec![1, 2, 3],
        },
        "ion_acoustic" => ScenarioSpec {
            name: name.into(),
            domain: DomainSpec::paper_1d(),
            // Electron picture of a current-carrying plasma: one
            // Maxwellian drifting as a whole, with a quietly seeded
            // mode-1 density wave riding on it (ion-acoustic-style
            // propagating structure rather than a two-beam instability).
            species: SpeciesSpec::DriftingMaxwellian {
                drift: 0.15,
                vth: 0.05,
            },
            loading: LoadingSpec::Quiet {
                mode: 1,
                amplitude: 1e-3,
            },
            scale,
            ppc,
            dt: constants::PAPER_DT,
            n_steps,
            seed: 31,
            tracked_modes: vec![1, 2],
        },
        other => {
            return Err(EngineError::UnknownScenario {
                name: other.to_string(),
                known: names().to_vec(),
            })
        }
    };
    spec.validate()?;
    Ok(spec)
}

/// Every registry scenario at the given scale.
pub fn all_scenarios(scale: Scale) -> Vec<ScenarioSpec> {
    SCENARIO_NAMES
        .iter()
        .map(|name| scenario(name, scale).expect("registry entries validate"))
        .collect()
}

// ---------------------------------------------------------------------
// Sweepable-parameter metadata (consumed by `ensemble::SweepSpec`).
// ---------------------------------------------------------------------

/// One numeric knob of a scenario that a parameter sweep may vary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepParam {
    /// The name [`apply_sweep_param`] accepts.
    pub name: &'static str,
    /// What the knob controls.
    pub what: &'static str,
}

const fn param(name: &'static str, what: &'static str) -> SweepParam {
    SweepParam { name, what }
}

/// The numeric knobs sweepable on `spec`, derived from its species and
/// loading (so ad-hoc specs get the same metadata as registry entries).
/// Every listed name is accepted by [`apply_sweep_param`].
pub fn sweepable_params(spec: &ScenarioSpec) -> Vec<SweepParam> {
    let mut params = vec![
        param("dt", "time step"),
        param("ppc", "macro-particles per cell (rounded to an integer)"),
    ];
    match spec.species {
        SpeciesSpec::TwoStream { .. } => {
            params.push(param("v0", "beam drift speed"));
            params.push(param("vth", "per-beam thermal spread"));
        }
        SpeciesSpec::Maxwellian { .. } => {
            params.push(param("vth", "thermal spread"));
        }
        SpeciesSpec::BumpOnTail { .. } => {
            params.push(param("bulk_vth", "bulk thermal spread"));
            params.push(param("beam_v", "beam drift speed"));
            params.push(param("beam_vth", "beam thermal spread"));
            params.push(param("beam_fraction", "beam density fraction"));
        }
        SpeciesSpec::DriftingMaxwellian { .. } => {
            params.push(param("drift", "bulk drift speed"));
            params.push(param("vth", "thermal spread"));
        }
    }
    if matches!(spec.loading, LoadingSpec::Quiet { .. }) {
        params.push(param("amplitude", "quiet-loading displacement amplitude"));
    }
    params
}

/// The sweepable knobs of a registry scenario by name (the metadata
/// `SweepSpec` validates its axes against).
pub fn sweep_params(name: &str) -> Result<Vec<SweepParam>, EngineError> {
    Ok(sweepable_params(&scenario(name, Scale::Smoke)?))
}

/// Sets the named knob on `spec` (see [`sweepable_params`]); the caller
/// re-validates the spec afterwards (sweeps validate every expanded
/// point).
// `!(value >= 1.0)` also rejects NaN where `value < 1.0` would accept it
// (same convention as `ScenarioSpec::validate`).
#[allow(clippy::neg_cmp_op_on_partial_ord)]
pub fn apply_sweep_param(
    spec: &mut ScenarioSpec,
    name: &str,
    value: f64,
) -> Result<(), EngineError> {
    let unknown = |spec: &ScenarioSpec| {
        let known: Vec<&str> = sweepable_params(spec).iter().map(|p| p.name).collect();
        Err(EngineError::InvalidSpec {
            scenario: spec.name.clone(),
            what: format!(
                "`{name}` is not a sweepable parameter of this scenario (knows {})",
                known.join(", ")
            ),
        })
    };
    match name {
        "dt" => spec.dt = value,
        "ppc" => {
            if !(value >= 1.0) || value > 1e9 {
                return Err(EngineError::InvalidSpec {
                    scenario: spec.name.clone(),
                    what: format!("ppc = {value} is not a positive particle count"),
                });
            }
            spec.ppc = value.round() as usize;
        }
        "v0" => match &mut spec.species {
            SpeciesSpec::TwoStream { v0, .. } => *v0 = value,
            _ => return unknown(spec),
        },
        "vth" => match &mut spec.species {
            SpeciesSpec::TwoStream { vth, .. }
            | SpeciesSpec::Maxwellian { vth }
            | SpeciesSpec::DriftingMaxwellian { vth, .. } => *vth = value,
            SpeciesSpec::BumpOnTail { .. } => return unknown(spec),
        },
        "drift" => match &mut spec.species {
            SpeciesSpec::DriftingMaxwellian { drift, .. } => *drift = value,
            _ => return unknown(spec),
        },
        "bulk_vth" => match &mut spec.species {
            SpeciesSpec::BumpOnTail { bulk_vth, .. } => *bulk_vth = value,
            _ => return unknown(spec),
        },
        "beam_v" => match &mut spec.species {
            SpeciesSpec::BumpOnTail { beam_v, .. } => *beam_v = value,
            _ => return unknown(spec),
        },
        "beam_vth" => match &mut spec.species {
            SpeciesSpec::BumpOnTail { beam_vth, .. } => *beam_vth = value,
            _ => return unknown(spec),
        },
        "beam_fraction" => match &mut spec.species {
            SpeciesSpec::BumpOnTail { beam_fraction, .. } => *beam_fraction = value,
            _ => return unknown(spec),
        },
        "amplitude" => match &mut spec.loading {
            LoadingSpec::Quiet { amplitude, .. } => *amplitude = value,
            LoadingSpec::Random => return unknown(spec),
        },
        _ => return unknown(spec),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_entry_validates_at_every_scale() {
        for scale in [Scale::Smoke, Scale::Scaled, Scale::Paper] {
            for name in SCENARIO_NAMES {
                let spec = scenario(name, scale).unwrap();
                assert_eq!(spec.name, name);
                assert_eq!(spec.scale, scale);
            }
            assert_eq!(all_scenarios(scale).len(), SCENARIO_NAMES.len());
        }
    }

    #[test]
    fn unknown_names_list_the_registry() {
        match scenario("warp_drive", Scale::Smoke) {
            Err(EngineError::UnknownScenario { name, known }) => {
                assert_eq!(name, "warp_drive");
                assert_eq!(known, names().to_vec());
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn names_enumerates_every_entry() {
        assert_eq!(names(), &SCENARIO_NAMES);
        for name in names() {
            assert!(scenario(name, Scale::Smoke).is_ok(), "{name} missing");
        }
    }

    #[test]
    fn new_presets_have_expected_physics() {
        let warm = scenario("warm_two_stream", Scale::Smoke).unwrap();
        assert!(matches!(
            warm.species,
            SpeciesSpec::TwoStream { vth, .. } if vth >= 0.01
        ));
        // Thermal spread above the continuum floor: Vlasov-compatible.
        assert!(crate::engine::Backend::Vlasov.supports(&warm).is_ok());

        let ion = scenario("ion_acoustic", Scale::Smoke).unwrap();
        assert!(matches!(
            ion.species,
            SpeciesSpec::DriftingMaxwellian { .. }
        ));
        // Asymmetric drift: 1-D particle backends only, like bump-on-tail.
        let names: Vec<&str> = crate::engine::compatible_backends(&ion)
            .iter()
            .map(|b| b.name())
            .collect();
        assert_eq!(names, vec!["traditional-1d", "dl-1d"]);
    }

    #[test]
    fn sweep_metadata_names_are_applicable() {
        for name in SCENARIO_NAMES {
            let params = sweep_params(name).unwrap();
            assert!(params.iter().any(|p| p.name == "dt"), "{name}");
            let mut spec = scenario(name, Scale::Smoke).unwrap();
            for p in &params {
                // Application never validates physics ranges (the sweep
                // validates each expanded spec); 2.0 satisfies the only
                // applied-side check (ppc >= 1).
                apply_sweep_param(&mut spec, p.name, 2.0)
                    .unwrap_or_else(|e| panic!("{name}: listed param {} rejected: {e}", p.name));
            }
            // Unlisted names are rejected with the known list.
            let err = apply_sweep_param(&mut spec, "warp_factor", 9.0).unwrap_err();
            assert!(err.to_string().contains("dt"), "{err}");
        }
    }

    #[test]
    fn paper_scale_two_stream_matches_the_paper() {
        let spec = scenario("two_stream", Scale::Paper).unwrap();
        assert_eq!(spec.n_particles(), 64_000);
        assert_eq!(spec.n_steps, 200);
        assert!((spec.dt - 0.2).abs() < 1e-15);
    }
}

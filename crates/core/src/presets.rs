//! Experiment scale presets.
//!
//! Every experiment in this reproduction runs at one of three scales:
//!
//! * [`Scale::Paper`] — full fidelity as published: 64×64 phase grids,
//!   3×1024 MLP, 150/100 training epochs. Sized for the authors' 24-core +
//!   K80 node; runnable here but slow on one CPU core.
//! * [`Scale::Scaled`] — the default for the experiment binaries: 32×32
//!   phase grids, 3×256 MLP, fewer epochs. Preserves every qualitative
//!   result (see EXPERIMENTS.md for side-by-side numbers).
//! * [`Scale::Smoke`] — seconds-fast settings for tests and CI.
//!
//! The *PIC physics* configuration (64 cells, 1000 electrons/cell,
//! Δt = 0.2) is identical at `Paper` and `Scaled`; only the learning
//! problem shrinks.

use crate::builder::ArchSpec;
use crate::phase_space::PhaseGridSpec;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Tiny settings for tests.
    Smoke,
    /// 1-core-friendly defaults.
    #[default]
    Scaled,
    /// Full paper fidelity.
    Paper,
}

impl Scale {
    /// Parses "smoke" / "scaled" / "paper" (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "smoke" => Some(Self::Smoke),
            "scaled" => Some(Self::Scaled),
            "paper" => Some(Self::Paper),
            _ => None,
        }
    }

    /// Reads `DLPIC_SCALE` from the environment, defaulting to `Scaled`.
    pub fn from_env() -> Self {
        Self::from_env_or(Self::default())
    }

    /// Reads `DLPIC_SCALE` from the environment with a caller-chosen
    /// default (examples default to `Smoke` so they finish in seconds).
    pub fn from_env_or(default: Self) -> Self {
        std::env::var("DLPIC_SCALE")
            .ok()
            .and_then(|s| Self::parse(&s))
            .unwrap_or(default)
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Smoke => "smoke",
            Self::Scaled => "scaled",
            Self::Paper => "paper",
        }
    }

    /// Phase-space histogram geometry at this scale.
    pub fn phase_spec(self) -> PhaseGridSpec {
        match self {
            Self::Smoke => PhaseGridSpec::smoke(),
            Self::Scaled => PhaseGridSpec::scaled(),
            Self::Paper => PhaseGridSpec::paper(),
        }
    }

    /// MLP architecture (paper §IV.A at `Paper` scale).
    pub fn mlp_arch(self) -> ArchSpec {
        let input = self.phase_spec().cells();
        let output = dlpic_pic::constants::PAPER_NCELLS;
        match self {
            Self::Smoke => ArchSpec::Mlp {
                input,
                hidden: vec![32, 32],
                output,
            },
            Self::Scaled => ArchSpec::Mlp {
                input,
                hidden: vec![256, 256, 256],
                output,
            },
            Self::Paper => ArchSpec::paper_mlp(input, output),
        }
    }

    /// CNN architecture (paper §IV.A block structure).
    pub fn cnn_arch(self) -> ArchSpec {
        let spec = self.phase_spec();
        let output = dlpic_pic::constants::PAPER_NCELLS;
        match self {
            Self::Smoke => ArchSpec::Cnn {
                nv: spec.nv,
                nx: spec.nx,
                channels: (2, 4),
                kernel: 3,
                hidden: vec![32, 32],
                output,
            },
            Self::Scaled => ArchSpec::Cnn {
                nv: spec.nv,
                nx: spec.nx,
                channels: (8, 16),
                kernel: 3,
                hidden: vec![128, 128, 128],
                output,
            },
            Self::Paper => ArchSpec::paper_cnn(spec.nv, spec.nx, output),
        }
    }

    /// Residual-MLP architecture for the §VII architecture ablation.
    pub fn resmlp_arch(self) -> ArchSpec {
        let input = self.phase_spec().cells();
        let output = dlpic_pic::constants::PAPER_NCELLS;
        match self {
            Self::Smoke => ArchSpec::ResMlp {
                input,
                width: 32,
                blocks: 2,
                output,
            },
            Self::Scaled => ArchSpec::ResMlp {
                input,
                width: 256,
                blocks: 3,
                output,
            },
            Self::Paper => ArchSpec::ResMlp {
                input,
                width: 1024,
                blocks: 3,
                output,
            },
        }
    }

    /// MLP training epochs (paper: 150).
    pub fn mlp_epochs(self) -> usize {
        match self {
            Self::Smoke => 6,
            Self::Scaled => 60,
            Self::Paper => 150,
        }
    }

    /// CNN training epochs (paper: 100).
    pub fn cnn_epochs(self) -> usize {
        match self {
            Self::Smoke => 4,
            Self::Scaled => 14,
            Self::Paper => 100,
        }
    }

    /// Electrons per PIC cell used when generating training data. The
    /// physics runs of the figures always use the paper's 1000.
    pub fn dataset_ppc(self) -> usize {
        match self {
            Self::Smoke => 100,
            Self::Scaled | Self::Paper => 1000,
        }
    }

    /// Adam learning rate. `Paper` uses the published 1e-4; the reduced
    /// scales take ~40× fewer optimizer steps (smaller dataset × fewer
    /// epochs), so they compensate with a proportionally larger rate —
    /// recorded as a substitution in DESIGN.md.
    pub fn learning_rate(self) -> f32 {
        match self {
            Self::Smoke => 3e-3,
            Self::Scaled => 1e-3,
            Self::Paper => 1e-4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::InputKind;

    #[test]
    fn parse_and_names() {
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("SCALED"), Some(Scale::Scaled));
        assert_eq!(Scale::parse("smoke"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("huge"), None);
        assert_eq!(Scale::Paper.name(), "paper");
    }

    #[test]
    fn paper_scale_matches_section_iv() {
        let s = Scale::Paper;
        match s.mlp_arch() {
            ArchSpec::Mlp { hidden, output, .. } => {
                assert_eq!(hidden, vec![1024, 1024, 1024]);
                assert_eq!(output, 64);
            }
            other => panic!("unexpected arch {other:?}"),
        }
        assert_eq!(s.mlp_epochs(), 150);
        assert_eq!(s.cnn_epochs(), 100);
        assert_eq!(s.phase_spec().cells(), 64 * 64);
    }

    #[test]
    fn architectures_are_buildable_at_every_scale() {
        for scale in [Scale::Smoke, Scale::Scaled, Scale::Paper] {
            // Building allocates the parameters; paper MLP is ~6M params
            // (~25 MB) which is fine to touch once here.
            let mlp = scale.mlp_arch().build(0);
            assert!(mlp.param_count() > 0, "{scale:?}");
            if scale != Scale::Paper {
                let cnn = scale.cnn_arch().build(0);
                assert!(cnn.param_count() > 0, "{scale:?}");
                let res = scale.resmlp_arch().build(0);
                assert!(res.param_count() > 0, "{scale:?}");
            }
        }
    }

    #[test]
    fn input_kinds_are_consistent() {
        for scale in [Scale::Smoke, Scale::Scaled] {
            assert_eq!(scale.mlp_arch().input_kind(), InputKind::Flat);
            assert_eq!(scale.cnn_arch().input_kind(), InputKind::Image);
            assert_eq!(scale.mlp_arch().input_len(), scale.phase_spec().cells());
        }
    }
}

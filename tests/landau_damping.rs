//! Integration test: Landau damping on the Vlasov–Poisson substrate.
//!
//! With zero drift the solver's two-stream initial condition reduces to a
//! perturbed Maxwellian; at `k·λ_D = 0.5` the least-damped root of the
//! kinetic dispersion relation is the textbook `ω ≈ 1.4156`,
//! `γ ≈ −0.1533`. Reproducing *damping* (not just growth) pins down the
//! solver's phase-space fidelity: numerical diffusion shows up directly
//! as excess damping, which is how the linear-interpolation variant of
//! the advection was caught (≈ 30% over-damped) and replaced with the
//! cubic Cheng–Knorr scheme.

use dlpic_repro::pic::grid::Grid1D;
use dlpic_repro::vlasov::solver::{VlasovConfig, VlasovSolver};

const OMEGA_THEORY: f64 = 1.4156;
const GAMMA_THEORY: f64 = -0.1533;

fn measure(nv: usize, dt: f64) -> (f64, f64) {
    let grid = Grid1D::paper();
    let k = grid.mode_wavenumber(1);
    let vth = 0.5 / k;
    let cfg = VlasovConfig {
        grid,
        nv,
        vmax: 6.0 * vth,
        dt,
        v0: 0.0,
        vth,
        perturbation: 1e-3,
    };
    let mut solver = VlasovSolver::new(cfg);
    let n_steps = (35.0 / dt) as usize;
    let mut times = Vec::with_capacity(n_steps);
    let mut e1 = Vec::with_capacity(n_steps);
    for _ in 0..n_steps {
        times.push(solver.time());
        e1.push(solver.field_mode(1));
        solver.step();
    }
    let peaks: Vec<(f64, f64)> = (1..e1.len() - 1)
        .filter(|&i| e1[i] > e1[i - 1] && e1[i] >= e1[i + 1] && e1[i] > 1e-12)
        .map(|i| (times[i], e1[i]))
        .collect();
    assert!(peaks.len() >= 8, "too few envelope peaks: {}", peaks.len());
    let used = &peaks[3..peaks.len().min(13)];
    let n = used.len() as f64;
    let (mut st, mut sy, mut stt, mut sty) = (0.0, 0.0, 0.0, 0.0);
    for &(t, p) in used {
        let y = p.ln();
        st += t;
        sy += y;
        stt += t * t;
        sty += t * y;
    }
    let gamma = (n * sty - st * sy) / (n * stt - st * st);
    let spacing = (used.last().unwrap().0 - used[0].0) / (used.len() as f64 - 1.0);
    (gamma, std::f64::consts::PI / spacing)
}

#[test]
fn landau_damping_matches_textbook_root() {
    let (gamma, omega) = measure(512, 0.025);
    assert!(
        (gamma - GAMMA_THEORY).abs() / GAMMA_THEORY.abs() < 0.05,
        "γ = {gamma} vs {GAMMA_THEORY}"
    );
    assert!(
        (omega - OMEGA_THEORY).abs() / OMEGA_THEORY < 0.02,
        "ω = {omega} vs {OMEGA_THEORY}"
    );
}

#[test]
fn damping_rate_converges_with_velocity_resolution() {
    // Coarser velocity grids damp more (residual numerical diffusion);
    // the error must shrink as the grid refines.
    let (g_coarse, _) = measure(128, 0.025);
    let (g_fine, _) = measure(512, 0.025);
    let err_coarse = (g_coarse - GAMMA_THEORY).abs();
    let err_fine = (g_fine - GAMMA_THEORY).abs();
    assert!(
        err_fine <= err_coarse + 1e-4,
        "refinement did not help: {err_coarse} → {err_fine}"
    );
}

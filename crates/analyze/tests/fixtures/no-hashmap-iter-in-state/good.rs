//! Fixture: the same index on BTreeMap — iteration is key-ordered, so the
//! rendered bytes are a pure function of the contents. Test code may use
//! HashMap freely; the rule masks `#[cfg(test)]` modules.

use std::collections::BTreeMap;

pub struct RunIndex {
    runs: BTreeMap<String, u64>,
}

impl RunIndex {
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (id, steps) in &self.runs {
            out.push_str(&format!("{id}={steps}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn scratch_maps_are_fine_in_tests() {
        let mut m = HashMap::new();
        m.insert("a", 1);
        assert_eq!(m["a"], 1);
    }
}

//! Fixture: the same work with allocations hoisted out of the loop and a
//! caller-owned scratch buffer — plus an `impl … for …` to prove the
//! `for` keyword there is not mistaken for a loop header.

// analyze:hot — per-particle loop, must stay allocation-free

pub struct Scratch {
    buf: Vec<f32>,
}

impl Default for Scratch {
    fn default() -> Self {
        Self { buf: Vec::new() }
    }
}

pub fn step(xs: &[f32], scratch: &mut Scratch) -> f32 {
    scratch.buf.clear();
    scratch.buf.extend_from_slice(xs);
    let mut acc = 0.0;
    for &x in &scratch.buf {
        acc += x * x;
    }
    acc
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_allocate_in_loops() {
        for i in 0..3 {
            let v = vec![i as f32];
            assert_eq!(v.len(), 1);
        }
    }
}
